"""Experiment harness: every table/figure regenerates and holds its shape.

Experiments run at a reduced element order so the suite stays quick; the
paper-scale order-7 runs are the benchmark harness's job.
"""

import numpy as np
import pytest

from repro.eval import EXPERIMENTS, Table, format_table, run_experiment
from repro.eval.experiments import (
    PAPER_FIG11_AVG,
    PAPER_FIG14_SHARES,
    PAPER_NO_PIPELINE_THROUGHPUT,
)

ORDER = 3


class TestReport:
    def test_table_add_and_render(self):
        t = Table("Demo", ["a", "b"])
        t.add(a=1, b=2.5)
        out = t.render()
        assert "Demo" in out and "2.5" in out

    def test_missing_column_rejected(self):
        t = Table("Demo", ["a", "b"])
        with pytest.raises(ValueError):
            t.add(a=1)

    def test_format_large_numbers(self):
        t = Table("Demo", ["x"])
        t.add(x=1_234_567)
        assert "1,234,567" in format_table(t)


class TestRegistry:
    def test_all_registered(self):
        assert set(EXPERIMENTS) == {
            "table2",
            "table3",
            "table4",
            "table5",
            "table6",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "sec31",
            "sec7_summary",
            "energy_breakdown",
            "plan_throughput",
            "fault_sweep",
        }

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")


class TestStaticTables:
    def test_table2(self):
        t = run_experiment("table2")
        platforms = t.column("platform")
        assert "Tesla V100" in platforms and "Wave-PIM 2GB" in platforms
        pim = [r for r in t.rows if r["platform"] == "Wave-PIM 2GB"][0]
        assert pim["peak_tflops"] > 1.0

    def test_table3_within_2pct_of_paper(self):
        t = run_experiment("table3")
        for row in t.rows:
            if not np.isnan(row["paper_w"]) and row["paper_w"] > 0:
                assert row["value_w"] == pytest.approx(row["paper_w"], rel=0.03), row

    def test_table4_derived_counts(self):
        t = run_experiment("table4")
        quantities = t.column("quantity")
        assert "fp32 mul (derived)" in quantities

    def test_table5_matches_paper(self):
        t = run_experiment("table5")
        assert all(t.column("matches_paper"))

    def test_table6_ratios_bounded(self):
        t = run_experiment("table6", order=ORDER)
        # reduced order -> lower counts, but the cross-benchmark ordering
        # must match the paper's
        ours = t.column("fp_ops")
        paper = t.column("paper_fp_ops")
        assert np.argsort(ours).tolist() == np.argsort(paper).tolist()


class TestModelExperiments:
    def test_fig11_pim_wins(self):
        t = run_experiment("fig11", order=ORDER, n_steps=64)
        for row in t.rows:
            assert row["Unfused-1080Ti"] == pytest.approx(1.0)
            # the scaled 16GB PIM beats the baseline on every benchmark
            assert row["PIM-16GB-12nm"] < 1.0

    def test_fig11_scaling_monotone(self):
        """Bigger PIM is never slower (same benchmark, same node)."""
        t = run_experiment("fig11", order=ORDER, n_steps=64)
        for row in t.rows:
            assert row["PIM-16GB-12nm"] <= row["PIM-2GB-12nm"] * 1.01
            assert row["PIM-2GB-12nm"] <= row["PIM-512MB-12nm"] * 1.01

    def test_fig11_12nm_faster_than_28nm(self):
        t = run_experiment("fig11", order=ORDER, n_steps=64)
        for row in t.rows:
            assert row["PIM-2GB-12nm"] < row["PIM-2GB-28nm"]

    def test_fig12_energy_savings(self):
        t = run_experiment("fig12", order=ORDER, n_steps=64)
        for row in t.rows:
            assert row["PIM-2GB-12nm"] < 1.0  # saves energy vs baseline

    def test_fig12_small_chip_more_efficient_on_small_problem(self):
        """§7.4's trade-off: on level-4 problems the small chips win on
        energy (less static power)."""
        t = run_experiment("fig12", order=ORDER, n_steps=64)
        lvl4 = [r for r in t.rows if r["benchmark"].endswith("_4")]
        for row in lvl4:
            assert row["PIM-2GB-28nm"] < row["PIM-16GB-28nm"]

    def test_fig13_pipeline(self):
        t = run_experiment("fig13", order=ORDER)
        lanes = set(t.column("lane"))
        assert {"cpu_host", "volume", "flux_fetch", "flux_compute", "integration"} <= lanes
        # the §7.5 regime: unpipelined throughput in (0.5, 1.0)
        note = t.notes[0]
        ratio = float(note.split("=")[1].split("x")[0])
        assert 0.5 < ratio < 1.0
        assert abs(ratio - PAPER_NO_PIPELINE_THROUGHPUT) < 0.25

    def test_fig14_shapes(self):
        t = run_experiment("fig14", order=ORDER)
        rows = {(r["case"], r["interconnect"]): r for r in t.rows}
        for (case, ic), r in rows.items():
            assert 0 < r["inter_share"] < 1
        # bus always spends a larger share on inter-element transfer
        for case in {r["case"] for r in t.rows}:
            assert rows[(case, "bus")]["inter_share"] > rows[(case, "htree")]["inter_share"]

    def test_sec31_speedups_grow_with_gpu(self):
        t = run_experiment("sec31", order=ORDER, n_steps=64)
        by_level = {}
        for r in t.rows:
            by_level.setdefault(r["level"], []).append(r["speedup"])
        for level, sps in by_level.items():
            assert sps == sorted(sps)  # 1080Ti < P100 < V100

    def test_sec31_level5_widens(self):
        t = run_experiment("sec31", order=ORDER, n_steps=64)
        v4 = [r["speedup"] for r in t.rows if r["level"] == 4][-1]
        v5 = [r["speedup"] for r in t.rows if r["level"] == 5][-1]
        assert v5 > v4

    def test_sec7_summary_pim_wins(self):
        t = run_experiment("sec7_summary", order=ORDER, n_steps=64)
        for row in t.rows:
            assert row["avg_speedup"] > 1.0
            assert row["avg_energy_saving"] > 1.0
        # V100 is the hardest target
        sps = {r["gpu"]: r["avg_speedup"] for r in t.rows}
        assert sps["Tesla V100"] < sps["GTX 1080Ti"]
