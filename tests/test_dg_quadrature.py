"""GLL quadrature: nodes, weights, exactness, Lagrange interpolation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dg.quadrature import (
    gauss_points_weights,
    gll_points_weights,
    lagrange_basis_at,
    legendre_poly_and_deriv,
)


class TestLegendre:
    def test_p0_p1(self):
        x = np.linspace(-1, 1, 7)
        p, dp = legendre_poly_and_deriv(0, x)
        assert np.allclose(p, 1.0) and np.allclose(dp, 0.0)
        p, dp = legendre_poly_and_deriv(1, x)
        assert np.allclose(p, x) and np.allclose(dp, 1.0)

    def test_p2_closed_form(self):
        x = np.linspace(-0.9, 0.9, 5)
        p, dp = legendre_poly_and_deriv(2, x)
        assert np.allclose(p, 0.5 * (3 * x**2 - 1))
        assert np.allclose(dp, 3 * x)

    def test_endpoint_values(self):
        for n in range(1, 9):
            p, dp = legendre_poly_and_deriv(n, np.array([1.0, -1.0]))
            assert p[0] == pytest.approx(1.0)
            assert p[1] == pytest.approx((-1.0) ** n)
            assert dp[0] == pytest.approx(n * (n + 1) / 2)

    def test_orthogonality(self):
        x, w = gauss_points_weights(20)
        for m in range(5):
            for n in range(5):
                pm, _ = legendre_poly_and_deriv(m, x)
                pn, _ = legendre_poly_and_deriv(n, x)
                integral = np.sum(w * pm * pn)
                expected = 2.0 / (2 * n + 1) if m == n else 0.0
                assert integral == pytest.approx(expected, abs=1e-12)


class TestGll:
    def test_rejects_order_zero(self):
        with pytest.raises(ValueError):
            gll_points_weights(0)

    def test_order_one(self):
        x, w = gll_points_weights(1)
        assert np.allclose(x, [-1, 1]) and np.allclose(w, [1, 1])

    def test_order_two_known(self):
        x, w = gll_points_weights(2)
        assert np.allclose(x, [-1, 0, 1])
        assert np.allclose(w, [1 / 3, 4 / 3, 1 / 3])

    def test_order_three_known(self):
        x, w = gll_points_weights(3)
        assert np.allclose(x, [-1, -np.sqrt(1 / 5), np.sqrt(1 / 5), 1])
        assert np.allclose(w, [1 / 6, 5 / 6, 5 / 6, 1 / 6])

    @pytest.mark.parametrize("order", range(1, 12))
    def test_weights_sum_to_two(self, order):
        _, w = gll_points_weights(order)
        assert np.sum(w) == pytest.approx(2.0, rel=1e-13)

    @pytest.mark.parametrize("order", range(1, 12))
    def test_symmetry(self, order):
        x, w = gll_points_weights(order)
        assert np.allclose(x, -x[::-1])
        assert np.allclose(w, w[::-1])

    @pytest.mark.parametrize("order", range(2, 10))
    def test_nodes_sorted_and_include_endpoints(self, order):
        x, _ = gll_points_weights(order)
        assert x[0] == -1.0 and x[-1] == 1.0
        assert np.all(np.diff(x) > 0)

    @pytest.mark.parametrize("order", range(1, 10))
    def test_exactness_degree(self, order):
        """GLL with N+1 points integrates degree 2N-1 exactly."""
        x, w = gll_points_weights(order)
        for deg in range(2 * order):
            exact = 2.0 / (deg + 1) if deg % 2 == 0 else 0.0
            assert np.sum(w * x**deg) == pytest.approx(exact, abs=1e-11), deg

    def test_not_exact_beyond_guarantee(self):
        """Degree 2N is generally NOT integrated exactly (x^{2N} term)."""
        order = 4
        x, w = gll_points_weights(order)
        deg = 2 * order
        exact = 2.0 / (deg + 1)
        assert abs(np.sum(w * x**deg) - exact) > 1e-6

    @given(st.integers(min_value=1, max_value=15))
    @settings(max_examples=15, deadline=None)
    def test_interior_points_are_dp_roots(self, order):
        x, _ = gll_points_weights(order)
        if order >= 2:
            _, dp = legendre_poly_and_deriv(order, x[1:-1])
            assert np.max(np.abs(dp)) < 1e-9


class TestGauss:
    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            gauss_points_weights(0)

    @pytest.mark.parametrize("n", [1, 2, 5, 10])
    def test_exactness(self, n):
        x, w = gauss_points_weights(n)
        for deg in range(2 * n):
            exact = 2.0 / (deg + 1) if deg % 2 == 0 else 0.0
            assert np.sum(w * x**deg) == pytest.approx(exact, abs=1e-12)


class TestLagrange:
    def test_cardinal_property(self):
        nodes, _ = gll_points_weights(4)
        b = lagrange_basis_at(nodes, nodes)
        assert np.allclose(b, np.eye(len(nodes)), atol=1e-12)

    def test_partition_of_unity(self):
        nodes, _ = gll_points_weights(5)
        x = np.linspace(-1, 1, 33)
        b = lagrange_basis_at(nodes, x)
        assert np.allclose(b.sum(axis=1), 1.0, atol=1e-10)

    def test_reproduces_polynomials(self):
        nodes, _ = gll_points_weights(4)
        x = np.linspace(-1, 1, 17)
        f = lambda t: 3 * t**4 - 2 * t**2 + t - 0.5  # noqa: E731
        b = lagrange_basis_at(nodes, x)
        assert np.allclose(b @ f(nodes), f(x), atol=1e-11)
