"""Element layout (Fig. 5) and element-to-block mapping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.layout import ElementLayout, ScratchAllocator
from repro.core.mapper import ElementMapper, morton3_decode, morton3_encode
from repro.pim.params import CHIP_CONFIGS


class TestScratchAllocator:
    def test_alloc_sequence(self):
        s = ScratchAllocator(10, 15)
        assert s.alloc() == 10
        assert s.alloc(2) == 11
        assert s.in_use == 3

    def test_exhaustion(self):
        s = ScratchAllocator(10, 12)
        s.alloc(2)
        with pytest.raises(RuntimeError):
            s.alloc()

    def test_free_all(self):
        s = ScratchAllocator(0, 4)
        s.alloc(4)
        s.free_all()
        assert s.alloc() == 0


class TestElementLayout:
    def test_acoustic_fig5_columns(self):
        """Fig. 5: mass inverse | variables | auxiliaries | contributions."""
        lay = ElementLayout(7)
        assert lay.n_nodes == 512
        assert lay.col_mass == 0
        assert lay.col_var == {"p": 1, "vx": 2, "vy": 3, "vz": 4}
        assert lay.col_aux == {"p": 5, "vx": 6, "vy": 7, "vz": 8}
        assert lay.col_contrib == {"p": 9, "vx": 10, "vy": 11, "vz": 12}
        assert lay.storage0 == 512  # paper: upper half is storage space

    def test_elastic_nine_vars_rejected(self):
        """§5.1: 'The 1K memory block row size is not enough for the nine
        variables in the elastic wave simulation' — the layout proves it."""
        with pytest.raises(ValueError):
            ElementLayout(7, variables=tuple(f"v{i}" for i in range(9)))

    def test_order_too_big_rejected(self):
        with pytest.raises(ValueError):
            ElementLayout(8)  # 729 nodes > 512 compute rows

    def test_single_variable_layout(self):
        lay = ElementLayout(7, variables=("v",))
        assert lay.col_var == {"v": 1}
        assert lay.scratch0 < 10  # lots of scratch for the expanded form

    def test_tap_row_map_x(self):
        lay = ElementLayout(1)  # 8 nodes
        # node (i,j,k), tap a along x -> node (a,j,k)
        m = lay.tap_row_map(0, 1)
        # nodes 0..7 = (i + 2j + 4k); tap 1 along x -> odd-index nodes
        assert list(m) == [1, 1, 3, 3, 5, 5, 7, 7]

    def test_tap_row_map_z(self):
        lay = ElementLayout(1)
        m = lay.tap_row_map(2, 0)
        assert list(m) == [0, 1, 2, 3, 0, 1, 2, 3]

    @given(st.integers(min_value=1, max_value=4), st.integers(min_value=0, max_value=2))
    @settings(max_examples=30, deadline=None)
    def test_tap_row_map_in_range(self, order, axis):
        lay = ElementLayout(order)
        for tap in range(lay.npts):
            m = lay.tap_row_map(axis, tap)
            assert m.min() >= 0 and m.max() < lay.n_nodes
            # the tap coordinate along the axis must equal `tap`
            assert np.all(lay.axis_index(axis)[m] == tap)

    def test_tap_out_of_range(self):
        with pytest.raises(IndexError):
            ElementLayout(2).tap_row_map(0, 3)

    def test_dshape_row_map(self):
        lay = ElementLayout(2)
        m = lay.dshape_row_map(0)
        assert np.all(m == lay.row_dshape0 + lay.axis_index(0))

    def test_describe(self):
        d = ElementLayout(2).describe()
        assert d["n_nodes"] == 27 and "col_var" in d


class TestMorton3:
    @given(*(st.integers(min_value=0, max_value=63) for _ in range(3)))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip(self, x, y, z):
        assert morton3_decode(morton3_encode(x, y, z)) == (x, y, z)

    def test_octant_locality(self):
        codes = sorted(
            morton3_encode(x, y, z) for x in (0, 1) for y in (0, 1) for z in (0, 1)
        )
        assert codes == list(range(8))


class TestElementMapper:
    def test_basic_placement(self):
        m = ElementMapper(4, CHIP_CONFIGS["512MB"], 1)
        assert m.n_elements == 64
        blocks = sorted(m.block_of(e) for e in range(64))
        assert blocks == list(range(64))  # a bijection onto 0..63

    def test_group_placement(self):
        m = ElementMapper(2, CHIP_CONFIGS["512MB"], 4)
        for e in range(8):
            ids = m.block_ids(int(m.elements[0]) if False else e)
            assert len(ids) == 4
            assert ids[0] % 4 == 0  # quad-aligned -> shares an S0 switch

    def test_capacity_enforced(self):
        with pytest.raises(ValueError):
            ElementMapper(32, CHIP_CONFIGS["512MB"], 4)  # 32768*4 >> 4096

    def test_batch_subset(self):
        m = ElementMapper(4, CHIP_CONFIGS["512MB"], 1, elements=np.arange(16))
        assert m.n_elements == 16
        assert 20 not in m
        with pytest.raises(KeyError):
            m.rank(20)

    def test_morton_neighbors_nearby(self):
        """Face neighbors should usually map to nearby block ids."""
        m = ElementMapper(8, CHIP_CONFIGS["512MB"], 1)
        from repro.dg.mesh import HexMesh

        mesh = HexMesh(m=8)
        dists = []
        for e in range(mesh.n_elements):
            for f in range(6):
                nbr = int(mesh.neighbors[e, f])
                dists.append(abs(m.block_of(e) - m.block_of(nbr)))
        # median neighbor distance stays small thanks to Morton ordering
        assert np.median(dists) <= 8

    def test_utilization(self):
        m = ElementMapper(4, CHIP_CONFIGS["512MB"], 1)
        assert m.utilization == pytest.approx(64 / 4096)

    def test_elements_in_tile(self):
        m = ElementMapper(8, CHIP_CONFIGS["512MB"], 1)
        tile0 = m.elements_in_tile(0)
        assert len(tile0) == 256
        for e in tile0:
            assert m.tile_of(int(e)) == 0

    def test_part_bounds(self):
        m = ElementMapper(2, CHIP_CONFIGS["512MB"], 4)
        with pytest.raises(IndexError):
            m.block_of(0, 4)
