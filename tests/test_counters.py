"""Hardware counters: zero-divergence recording + makespan attribution.

The contract under test (DESIGN.md §14): :class:`HardwareCounters` is a
*passive* side-channel — a counters-on run is bit-identical to a
counters-off run (reports, state digests, both plan replay and the serial
audit path), its totals equal the :class:`TimingReport`'s interconnect
aggregates, the scheduler's resource model agrees with the measured
occupancy, and :func:`attribute_makespan` partitions the makespan exactly
among the recorded resources.
"""

import dataclasses
import hashlib

import numpy as np
import pytest

from repro.analysis.programs import build_check_program
from repro.analysis.tracecheck import validate_counters
from repro.eval.bench import (
    history_summary,
    regression_failures,
    render_history,
)
from repro.obs.counters import (
    HardwareCounters,
    attribute_makespan,
    counters_enabled,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeline import COUNTERS_PID, counter_track_events
from repro.pim.chip import PimChip
from repro.pim.executor import ChipExecutor
from repro.pim.params import CHIP_CONFIGS
from repro.pim.schedule import plan_slack, verify_resource_model
from repro.workloads.benchmarks import BENCHMARKS


def _benchmark_program(key):
    spec = BENCHMARKS[key]
    return build_check_program(
        spec.physics, spec.refinement_level, chip="2GB",
        flux_kind=spec.flux_kind, order=2,
    ).program


def _run(program, counters, serial=False, functional=False):
    chip = PimChip(CHIP_CONFIGS["2GB"])
    ex = ChipExecutor(chip, counters=counters)
    rep = ex.run(program, functional=functional, serial=serial)
    return chip, ex, rep


def _state_digest(chip):
    h = hashlib.sha256()
    for tid in sorted(chip._tiles):
        tile = chip._tiles[tid]
        for lid in sorted(tile._blocks):
            h.update(tile._blocks[lid].data.tobytes())
    return h.hexdigest()


def _assert_reports_identical(a, b, what):
    for f in dataclasses.fields(a):
        va, vb = getattr(a, f.name), getattr(b, f.name)
        assert va == vb, f"{what}: TimingReport.{f.name} diverged"
        if isinstance(va, dict):
            assert list(va) == list(vb), f"{what}: {f.name} key order diverged"


# --------------------------------------------------------------------- #
# zero divergence: counters on == counters off, bit for bit
# --------------------------------------------------------------------- #


class TestOnOffBitIdentity:
    """Recording must never perturb execution: same reports, same state."""

    @pytest.mark.parametrize("key", sorted(BENCHMARKS))
    def test_plan_replay_identical(self, key):
        program = _benchmark_program(key)
        chip_off, _, off = _run(program, counters=False, functional=True)
        chip_on, ex_on, on = _run(program, counters=True, functional=True)
        _assert_reports_identical(off, on, f"{key} counters-on")
        assert _state_digest(chip_on) == _state_digest(chip_off)
        # and the recorder actually saw the run
        assert ex_on.counters.block_busy_s

    @pytest.mark.parametrize("key", ["acoustic_4", "elastic_central_4"])
    def test_serial_audit_identical(self, key):
        program = _benchmark_program(key)
        chip_off, _, off = _run(program, counters=False, serial=True,
                                functional=True)
        chip_on, _, on = _run(program, counters=True, serial=True,
                              functional=True)
        _assert_reports_identical(off, on, f"{key} serial counters-on")
        assert _state_digest(chip_on) == _state_digest(chip_off)

    def test_env_knob_default_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_COUNTERS", raising=False)
        assert not counters_enabled()
        ex = ChipExecutor(PimChip(CHIP_CONFIGS["512MB"]))
        assert ex.counters is None
        monkeypatch.setenv("REPRO_COUNTERS", "1")
        assert counters_enabled()
        ex = ChipExecutor(PimChip(CHIP_CONFIGS["512MB"]))
        assert ex.counters is not None


# --------------------------------------------------------------------- #
# counter totals == TimingReport aggregates
# --------------------------------------------------------------------- #


class TestTotalsMatchReport:
    @pytest.mark.parametrize("key", sorted(BENCHMARKS))
    def test_plan_totals(self, key):
        program = _benchmark_program(key)
        _, ex, rep = _run(program, counters=True)
        c = ex.counters
        assert c.transfers == rep.transfers
        assert c.flits == rep.flits
        assert c.hops == rep.hops
        assert c.bytes_moved == rep.bytes_moved

    def test_serial_equals_plan_recording(self):
        """The deferred replay records and the eager serial records must
        agree exactly — same intervals, same NOR counts, per block."""
        program = _benchmark_program("acoustic_4")
        _, exp, rp = _run(program, counters=True)
        _, exs, rs = _run(program, counters=True, serial=True)
        assert rp == rs
        assert exp.counters.block_busy_s == exs.counters.block_busy_s
        assert exp.counters.block_nors == exs.counters.block_nors
        assert exp.counters.block_ops == exs.counters.block_ops

    def test_busy_matches_plan_footprint(self):
        """Counter busy == the plan's static footprint per block.

        Both are left-folds of the same durations but from different
        origins (runtime starts vs zero), so agreement is to float
        rounding, not bit-exact."""
        program = _benchmark_program("acoustic_4")
        chip = PimChip(CHIP_CONFIGS["2GB"])
        ex = ChipExecutor(chip, counters=True)
        plan = ex.lower(program)
        ex.run(plan, functional=False)
        fp = plan.footprint()
        busy = ex.counters.block_busy_s
        for b, expected in fp["block_busy_s"].items():
            assert busy.get(b, 0.0) == pytest.approx(expected, rel=1e-9)

    def test_queue_and_channel_counters_nonnegative(self):
        program = _benchmark_program("elastic_central_4")
        _, ex, _ = _run(program, counters=True)
        c = ex.counters
        assert c.transfer_queue_s >= 0.0
        assert 0 <= c.transfers_queued <= c.transfers
        assert c.host_busy_s >= 0.0 and c.host_stall_s >= 0.0
        assert c.dram_busy_s >= 0.0 and c.dram_stall_s >= 0.0
        assert all(v > 0.0 for v in c.link_busy_s.values())
        as_dict = c.as_dict(link_label=ex.chip.link_label)
        assert as_dict["transfers"] == c.transfers
        assert all(k.startswith("link:") for k in as_dict["link_busy_s"])


# --------------------------------------------------------------------- #
# scheduler resource model vs measured occupancy
# --------------------------------------------------------------------- #


class TestSchedulerCrossCheck:
    @pytest.mark.parametrize("key", ["acoustic_4", "elastic_central_4"])
    def test_resource_model_agrees(self, key):
        program = _benchmark_program(key)
        chip = PimChip(CHIP_CONFIGS["2GB"])
        ex = ChipExecutor(chip)
        plan = ex.lower(program)
        mismatches = verify_resource_model(ex, plan)
        assert mismatches == [], "\n".join(mismatches)

    def test_plan_slack_nonnegative(self):
        program = _benchmark_program("acoustic_4")
        chip = PimChip(CHIP_CONFIGS["2GB"])
        ex = ChipExecutor(chip)
        plan = ex.lower(program)
        slack = plan_slack(ex, plan)
        assert len(slack) == len(plan.instructions)
        assert float(np.min(slack)) >= -1e-12


# --------------------------------------------------------------------- #
# makespan attribution
# --------------------------------------------------------------------- #


class TestAttribution:
    @pytest.mark.parametrize("key", sorted(BENCHMARKS))
    def test_shares_partition_makespan(self, key):
        program = _benchmark_program(key)
        _, ex, rep = _run(program, counters=True)
        at = ex.attribution()
        assert at.makespan_cycles == pytest.approx(
            rep.total_time_s * ex.chip.config.clock_hz, rel=1e-12
        )
        # acceptance invariant: shares sum to the makespan within 1%
        # (measured: exact to float rounding)
        assert sum(at.shares.values()) == pytest.approx(
            at.makespan_cycles, rel=1e-2
        )
        assert at.binding_resource != "idle"
        assert at.binding_resource in at.shares
        assert 0.0 < at.binding_share <= 1.0
        assert 0.0 <= at.idle_fraction < 1.0

    def test_utilization_and_render(self):
        program = _benchmark_program("acoustic_4")
        _, ex, _ = _run(program, counters=True)
        at = ex.attribution()
        assert 0.0 < at.block_util <= 1.0
        assert 0.0 < at.link_util <= 1.0
        out = at.render()
        assert "binding resource" in out and at.binding_resource in out
        d = at.as_dict()
        assert d["binding_resource"] == at.binding_resource
        assert d["block_util"] == at.block_util

    def test_attribution_without_counters_raises(self):
        ex = ChipExecutor(PimChip(CHIP_CONFIGS["512MB"]))
        with pytest.raises(ValueError, match="no counters attached"):
            ex.attribution()

    def test_empty_recording_attributes_idle(self):
        at = attribute_makespan(HardwareCounters(), total_time_s=2.0,
                                clock_hz=10.0)
        assert at.shares == {"idle": 20.0}
        assert at.binding_resource == "idle"
        assert at.idle_fraction == 1.0


# --------------------------------------------------------------------- #
# merge (the --jobs path)
# --------------------------------------------------------------------- #


class TestMerge:
    def test_counters_merge_is_additive(self):
        program = _benchmark_program("acoustic_4")
        _, ex1, _ = _run(program, counters=True)
        _, ex2, _ = _run(program, counters=True)
        solo = ex1.counters.as_dict()
        ex1.counters.merge(ex2.counters)
        merged = ex1.counters.as_dict()
        assert merged["transfers"] == 2 * solo["transfers"]
        assert merged["flits"] == 2 * solo["flits"]
        for k, v in solo["block_busy_s"].items():
            assert merged["block_busy_s"][k] == pytest.approx(2 * v, rel=1e-12)
        for k, v in solo["block_nors"].items():
            assert merged["block_nors"][k] == 2 * v

    def test_metrics_merge_across_workers(self):
        """Simulated --jobs: per-worker registries fold into the parent."""
        parent = MetricsRegistry(enabled=True)
        for worker in range(3):
            reg = MetricsRegistry(enabled=True)
            reg.inc("counters.runs")
            reg.inc("counters.transfers_queued", 4)
            reg.observe("counters.block_util", 0.25 * (worker + 1))
            parent.merge(reg.snapshot())
        snap = parent.snapshot()
        assert snap["counters"]["counters.runs"] == 3
        assert snap["counters"]["counters.transfers_queued"] == 12
        util = snap["histograms"]["counters.block_util"]
        assert util["count"] == 3
        assert util["max"] == pytest.approx(0.75)


# --------------------------------------------------------------------- #
# Gantt timeline + trace validation
# --------------------------------------------------------------------- #


class TestTimeline:
    def _counters(self):
        program = _benchmark_program("acoustic_4")
        _, ex, rep = _run(program, counters=True)
        return ex, rep

    def test_counter_track_events_shape(self):
        ex, rep = self._counters()
        events = counter_track_events(ex.counters,
                                      link_label=ex.chip.link_label)
        assert all(e["pid"] == COUNTERS_PID for e in events)
        meta = [e for e in events if e["ph"] == "M"]
        assert any(e["name"] == "process_name"
                   and e["args"]["name"] == "hardware counters" for e in meta)
        thread_names = {e["args"]["name"] for e in meta
                        if e["name"] == "thread_name"}
        assert any(n.startswith("block:") for n in thread_names)
        slices = [e for e in events if e["ph"] == "X"]
        assert slices
        horizon = rep.total_time_s * 1e6  # ts is in microseconds
        for e in slices:
            assert e["dur"] >= 0.0
            assert 0.0 <= e["ts"] <= horizon * (1 + 1e-9)

    def test_truncation_cap(self):
        ex, _ = self._counters()
        events = counter_track_events(ex.counters, max_events=5)
        slices = [e for e in events if e["ph"] == "X"]
        assert len(slices) == 5
        assert any(e["ph"] == "i" for e in events)  # "dropped N" marker

    def test_validate_counters(self):
        ex, _ = self._counters()
        chrome = {"traceEvents": counter_track_events(ex.counters)}
        doc = {"metrics": {"counters": {"counters.runs": {"count": 1}}}}
        assert validate_counters(doc, chrome) == []
        # negative: no counters.* metrics, no Gantt tracks
        errs = validate_counters({"metrics": {}}, {"traceEvents": []})
        assert any("counters.*" in e for e in errs)
        assert any("hardware counters" in e for e in errs)


# --------------------------------------------------------------------- #
# bench history: backfill tolerance
# --------------------------------------------------------------------- #


def _entry(**overrides):
    base = {
        "timestamp": "2026-08-08T00:00:00",
        "executor_step_s": 0.003,
        "executor_serial_step_s": 0.5,
        "lower_s": 0.01,
        "speedup_vs_seed": {"executor_step_s": 1.5},
        "cache_hit_rate": 1.0,
        "makespan_cycles": 1e6,
        "scheduler_speedup": 1.0,
        "block_util": 0.8,
        "link_util": 0.1,
        "binding_resource": "block:1",
        "counters_overhead": 1.01,
        "optimality_gap": 1.2,
    }
    base.update(overrides)
    return base


class TestBenchHistory:
    def test_render_marks_backfilled_rows(self):
        old = _entry(block_util=None, link_util=None, binding_resource=None,
                     counters_overhead=None)
        del old["makespan_cycles"]
        doc = {"history": [old, _entry()]}
        out = render_history(doc)
        assert "backfill(5)" in out
        assert "--" in out          # unmeasured cells render as --
        assert "block:1" in out
        assert "2 entries" in out

    def test_render_flags_regressions(self):
        bad = _entry(executor_step_s=10.0)
        out = render_history({"history": [bad]})
        assert "REGRESSION" in out

    def test_render_empty_history(self):
        # stays a table: header row, placeholder row, seed-baseline footer
        out = render_history({})
        assert "(no entries yet)" in out
        assert "step_ms" in out and "repro bench" in out

    def test_backfilled_entries_never_fail_the_guard(self):
        old = _entry(block_util=None, counters_overhead=None)
        assert regression_failures(old) == []
        doc = {"history": [old, _entry()]}
        summary = history_summary(doc)
        assert summary["entries"] == 2
