"""H-tree and Bus topologies + the conflict-aware transfer scheduler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interconnect import Bus, HTree, Transfer, schedule_transfers
from repro.interconnect.htree import morton_decode, morton_encode
from repro.interconnect.routing import transfer_duration

blocks256 = st.integers(min_value=0, max_value=255)


class TestMorton:
    @given(st.integers(min_value=0, max_value=1023), st.integers(min_value=0, max_value=1023))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip(self, r, c):
        assert morton_decode(morton_encode(r, c)) == (r, c)

    def test_quad_locality(self):
        """The four blocks of each 2x2 quad have consecutive codes."""
        codes = sorted(morton_encode(r, c) for r in (0, 1) for c in (0, 1))
        assert codes == [0, 1, 2, 3]


class TestHTree:
    def test_paper_switch_count(self):
        """256-block tile: 64 + 16 + 4 + 1 = 85 switches (§4.2.2)."""
        h = HTree(256)
        assert h.switches_per_level == [64, 16, 4, 1]
        assert h.n_switches == 85

    def test_16_block_example(self):
        """Fig. 3's example: 4 S0 switches and 1 S1."""
        h = HTree(16)
        assert h.switches_per_level == [4, 1]

    def test_same_quad_single_switch(self):
        """Blocks under one S0 use exactly that one switch (§4.2.1)."""
        h = HTree(256)
        assert h.path(0, 1) == (h.switch_id(0, 0),)
        assert h.path(2, 3) == (h.switch_id(0, 0),)

    def test_paper_fig3_path_lengths(self):
        """Fig. 3: Block 0 -> Block 5 crosses S0, S1, S0 (3 switches)."""
        h = HTree(16)
        assert len(h.path(0, 5)) == 3

    def test_path_symmetric_length(self):
        h = HTree(256)
        for a, b in ((0, 255), (13, 200), (64, 65)):
            assert len(h.path(a, b)) == len(h.path(b, a))

    def test_self_path_empty(self):
        assert HTree(64).path(7, 7) == ()

    def test_path_to_root_chain(self):
        h = HTree(256)
        chain = h.path_to_root(0)
        assert len(chain) == h.levels
        assert chain[-1] == h.switch_id(h.levels - 1, 0)

    @given(blocks256, blocks256)
    @settings(max_examples=100, deadline=None)
    def test_path_endpoints_ancestors(self, a, b):
        """Every switch on the path is an ancestor of a or b."""
        h = HTree(256)
        path = h.path(a, b)
        anc = set(h.path_to_root(a)) | set(h.path_to_root(b))
        assert set(path) <= anc

    def test_fanout_generalization(self):
        """§4.2.1: 'the number of children of a tree node does not have
        to be 4' — a fanout-16 tree over 256 blocks has 2 levels."""
        h = HTree(256, fanout=16)
        assert h.switches_per_level == [16, 1]
        assert h.n_switches == 17

    def test_switch_power_scales(self):
        full = HTree(256).switch_power_w
        assert full == pytest.approx(0.10713)
        small = HTree(16).switch_power_w
        assert small == pytest.approx(0.10713 * 5 / 85)

    def test_rejects_bad_fanout(self):
        with pytest.raises(ValueError):
            HTree(16, fanout=1)

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            HTree(16).path(0, 16)


class TestBus:
    def test_single_switch(self):
        b = Bus(256)
        assert b.n_switches == 1
        assert b.path(0, 200) == (0,)
        assert b.path(5, 5) == ()
        assert b.switch_power_w == pytest.approx(0.0172)
        assert b.exclusive

    def test_power_cheaper_than_htree(self):
        assert Bus(256).switch_power_w < HTree(256).switch_power_w


class TestScheduler:
    def test_disjoint_quads_parallel_on_htree(self):
        """Fig. 3 bottom: Block 0->2 and 5->7 overlap on the H-tree but
        serialize on the Bus."""
        t1 = Transfer(src=0, dst=2, words=32)
        t2 = Transfer(src=5, dst=7, words=32)
        h = schedule_transfers(HTree(16), [t1, t2])
        b = schedule_transfers(Bus(16), [t1, t2])
        d_h = transfer_duration(HTree(16), t1, 1.5e-9, 1.5e-9)
        assert h.makespan == pytest.approx(d_h)  # fully parallel
        assert b.makespan > h.makespan  # bus serializes through switch 0

    def test_same_switch_serializes(self):
        t1 = Transfer(src=0, dst=1, words=32)
        t2 = Transfer(src=2, dst=3, words=32)  # same S0 quad
        res = schedule_transfers(HTree(16), [t1, t2])
        d = transfer_duration(HTree(16), t1, 1.5e-9, 1.5e-9)
        assert res.makespan > d

    def test_port_conflicts(self):
        """Two transfers into the same destination serialize."""
        t1 = Transfer(src=0, dst=8, words=32)
        t2 = Transfer(src=4, dst=8, words=32)
        res = schedule_transfers(HTree(16), [t1, t2])
        assert res.scheduled[1].start >= res.scheduled[0].finish

    def test_makespan_nonnegative_and_bounded(self):
        rng = np.random.default_rng(0)
        transfers = [
            Transfer(int(rng.integers(0, 16)), int(rng.integers(0, 16)), 32)
            for _ in range(20)
        ]
        res = schedule_transfers(HTree(16), transfers)
        serial = sum(
            transfer_duration(HTree(16), t, 1.5e-9, 1.5e-9) for t in transfers
        )
        assert 0 <= res.makespan <= serial + 1e-12

    def test_tag_attribution(self):
        transfers = [
            Transfer(0, 1, 32, tag="inter"),
            Transfer(2, 3, 32, tag="intra"),
        ]
        res = schedule_transfers(HTree(16), transfers)
        by_tag = res.time_by_tag()
        assert set(by_tag) == {"inter", "intra"}
        assert all(v > 0 for v in by_tag.values())

    def test_switch_busy_accounting(self):
        t = Transfer(0, 5, words=32)
        res = schedule_transfers(HTree(16), [t])
        # 3 switches on the path, each busy for the transfer's duration
        assert res.switch_busy_time == pytest.approx(3 * res.scheduled[0].duration)
