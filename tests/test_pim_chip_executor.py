"""Chip geometry, executor timing/energy semantics, HBM, power tables."""

import numpy as np
import pytest

from repro.pim.chip import PimChip
from repro.pim.energy import EnergyAccount, chip_power_table
from repro.pim.executor import ChipExecutor
from repro.pim.hbm import HbmModel
from repro.pim.isa import Instruction, Opcode
from repro.pim.params import CHIP_CONFIGS, ChipConfig, GB, MB


class TestChipConfig:
    def test_geometry_2gb(self):
        cfg = CHIP_CONFIGS["2GB"]
        assert cfg.block_bytes == 128 * 1024
        assert cfg.tile_bytes == 32 * MB
        assert cfg.n_tiles == 64
        assert cfg.n_blocks == 16384
        assert cfg.row_words == 32

    def test_max_parallelism_paper(self):
        """§7.1: 2GB / 1024b = 16M parallel operations."""
        assert CHIP_CONFIGS["2GB"].max_parallel_ops == 16 * 1024 * 1024

    def test_all_sizes(self):
        for name, blocks in (("512MB", 4096), ("2GB", 16384), ("8GB", 65536), ("16GB", 131072)):
            assert CHIP_CONFIGS[name].n_blocks == blocks

    def test_rejects_partial_tile(self):
        with pytest.raises(ValueError):
            ChipConfig(name="odd", capacity_bytes=33 * MB)

    def test_rejects_bad_interconnect(self):
        with pytest.raises(ValueError):
            ChipConfig(name="x", capacity_bytes=GB, interconnect="mesh")

    def test_with_interconnect(self):
        cfg = CHIP_CONFIGS["2GB"].with_interconnect("bus")
        assert cfg.interconnect == "bus"
        assert CHIP_CONFIGS["2GB"].interconnect == "htree"  # original untouched


class TestChip:
    def test_locate_roundtrip(self):
        chip = PimChip(CHIP_CONFIGS["512MB"])
        for g in (0, 255, 256, 4095):
            t, l = chip.locate(g)
            assert t * 256 + l == g

    def test_locate_bounds(self):
        chip = PimChip(CHIP_CONFIGS["512MB"])
        with pytest.raises(IndexError):
            chip.locate(4096)

    def test_lazy_blocks(self):
        chip = PimChip(CHIP_CONFIGS["512MB"])
        chip.block(0)
        chip.block(300)
        assert chip.tile(0).materialized_blocks == 1
        assert chip.tile(1).materialized_blocks == 1

    def test_static_power_recomputes_table3(self):
        chip = PimChip(CHIP_CONFIGS["2GB"])
        total = chip.static_power_w()
        # paper prints 115.02 W; component re-derivation lands within 2%
        assert total == pytest.approx(115.02, rel=0.02)
        bus = PimChip(CHIP_CONFIGS["2GB"].with_interconnect("bus")).static_power_w()
        assert bus == pytest.approx(109.25, rel=0.02)
        assert bus < total


class TestPowerTable:
    def test_block_power_sums(self):
        rows = chip_power_table(CHIP_CONFIGS["2GB"])
        assert rows["memory_block_w"] == pytest.approx(8.83e-3)
        assert rows["tile_memory_w"] == pytest.approx(1.57, rel=0.01)
        assert rows["htree_switch_count"] == 85

    def test_htree_vs_bus_delta(self):
        """The paper's 115.02 - 109.25 = 5.77 W gap is 64 tiles' switch
        power difference — exactly reproduced."""
        rows = chip_power_table(CHIP_CONFIGS["2GB"])
        delta = rows["total_w_htree"] - rows["total_w_bus"]
        expect = 64 * (rows["htree_switches_w"] - rows["bus_switch_w"])
        assert delta == pytest.approx(expect)
        assert delta == pytest.approx(115.02 - 109.25, rel=0.01)


class TestEnergyAccount:
    def test_accumulates(self):
        acc = EnergyAccount()
        acc.add("static", 1.0)
        acc.add("dynamic", 2.0)
        acc.add("static", 0.5)
        assert acc.total_j == pytest.approx(3.5)
        assert acc.breakdown()["static"] == pytest.approx(1.5 / 3.5)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            EnergyAccount().add("x", -1.0)

    def test_merge(self):
        a, b = EnergyAccount(), EnergyAccount()
        a.add("x", 1.0)
        b.add("x", 2.0)
        b.add("y", 3.0)
        a.merge(b)
        assert a.components == {"x": 3.0, "y": 3.0}


class TestHbm:
    def test_bandwidth(self):
        h = HbmModel()
        t = h.transfer_time_s(900e9)
        assert t == pytest.approx(1.0 + h.latency_s)

    def test_zero_bytes_free(self):
        assert HbmModel().transfer_time_s(0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            HbmModel().transfer_time_s(-1)

    def test_energy(self):
        h = HbmModel()
        assert h.transfer_energy_j(1e9) == pytest.approx(h.transfer_time_s(1e9) * h.power_w)


class TestExecutor:
    def _chip(self):
        return PimChip(CHIP_CONFIGS["512MB"])

    def test_arith_functional_and_timing(self):
        chip = self._chip()
        ex = ChipExecutor(chip)
        blk = chip.block(0)
        blk.broadcast((0, 4), 1, np.array([1, 2, 3, 4], dtype=np.float32))
        blk.broadcast((0, 4), 2, 10.0)
        rep = ex.run([Instruction(Opcode.ADD, block=0, rows=(0, 4), dst=3, src1=1, src2=2)])
        assert np.allclose(chip.block(0).data[0:4, 3], [11, 12, 13, 14])
        assert rep.total_time_s == pytest.approx(ex.costs.time_s("add"))
        assert rep.dynamic_energy_j > 0

    def test_latency_independent_of_rows(self):
        chip = self._chip()
        ex = ChipExecutor(chip)
        r1 = ex.run([Instruction(Opcode.ADD, block=0, rows=(0, 4), dst=3, src1=1, src2=2)],
                    functional=False)
        ex2 = ChipExecutor(self._chip())
        r2 = ex2.run([Instruction(Opcode.ADD, block=0, rows=(0, 512), dst=3, src1=1, src2=2)],
                     functional=False)
        assert r1.total_time_s == pytest.approx(r2.total_time_s)

    def test_energy_scales_with_rows(self):
        ex = ChipExecutor(self._chip())
        r1 = ex.run([Instruction(Opcode.ADD, block=0, rows=(0, 4), dst=3, src1=1, src2=2)],
                    functional=False)
        ex2 = ChipExecutor(self._chip())
        r2 = ex2.run([Instruction(Opcode.ADD, block=0, rows=(0, 8), dst=3, src1=1, src2=2)],
                     functional=False)
        assert r2.dynamic_energy_j == pytest.approx(2 * r1.dynamic_energy_j)

    def test_blocks_run_in_parallel(self):
        ex = ChipExecutor(self._chip())
        insts = [
            Instruction(Opcode.ADD, block=b, rows=(0, 4), dst=3, src1=1, src2=2)
            for b in range(8)
        ]
        rep = ex.run(insts, functional=False)
        assert rep.total_time_s == pytest.approx(ex.costs.time_s("add"))

    def test_same_block_serializes(self):
        ex = ChipExecutor(self._chip())
        insts = [
            Instruction(Opcode.ADD, block=0, rows=(0, 4), dst=3, src1=1, src2=2)
            for _ in range(3)
        ]
        rep = ex.run(insts, functional=False)
        assert rep.total_time_s == pytest.approx(3 * ex.costs.time_s("add"))

    def test_transfer_moves_data(self):
        chip = self._chip()
        ex = ChipExecutor(chip)
        chip.block(2).broadcast((0, 4), 5, np.array([1, 2, 3, 4], dtype=np.float32))
        rep = ex.run([
            Instruction(Opcode.TRANSFER, block=7, src_block=2, rows=(0, 4),
                        src_rows=(0, 4), dst=1, src1=5, words=1)
        ])
        assert np.allclose(chip.block(7).data[0:4, 1], [1, 2, 3, 4])
        assert rep.total_time_s > 0

    def test_transfer_row_maps(self):
        chip = self._chip()
        ex = ChipExecutor(chip)
        chip.block(0).broadcast((0, 8), 2, np.arange(8, dtype=np.float32))
        src_rows = np.array([7, 5, 3])
        dst_rows = np.array([0, 1, 2])
        ex.run([
            Instruction(Opcode.TRANSFER, block=1, src_block=0, rows=dst_rows,
                        src_rows=src_rows, dst=0, src1=2, words=1)
        ])
        assert np.allclose(chip.block(1).data[0:3, 0], [7, 5, 3])

    def test_transfer_requires_src(self):
        ex = ChipExecutor(self._chip())
        with pytest.raises(ValueError):
            ex.run([Instruction(Opcode.TRANSFER, block=1, rows=(0, 4), dst=0, src1=0)])

    def test_barrier_synchronizes(self):
        ex = ChipExecutor(self._chip())
        insts = [
            Instruction(Opcode.ADD, block=0, rows=(0, 4), dst=3, src1=1, src2=2),
            Instruction(Opcode.BARRIER),
            Instruction(Opcode.ADD, block=1, rows=(0, 4), dst=3, src1=1, src2=2),
        ]
        rep = ex.run(insts, functional=False)
        assert rep.total_time_s == pytest.approx(2 * ex.costs.time_s("add"))

    def test_gather_cost_uses_unique_sources(self):
        ex = ChipExecutor(self._chip())
        same = np.zeros(64, dtype=np.int64)
        spread = np.arange(64, dtype=np.int64)
        r1 = ex.run([Instruction(Opcode.GATHER, block=0, rows=(0, 64), dst=1, src1=0,
                                 row_map=same)], functional=False)
        ex2 = ChipExecutor(self._chip())
        r2 = ex2.run([Instruction(Opcode.GATHER, block=0, rows=(0, 64), dst=1, src1=0,
                                  row_map=spread)], functional=False)
        assert r1.total_time_s < r2.total_time_s

    def test_hostop_and_dram_lanes(self):
        ex = ChipExecutor(self._chip())
        rep = ex.run([
            Instruction(Opcode.HOSTOP, count=1000, tag="host"),
            Instruction(Opcode.DRAM_LOAD, block=0, meta={"bytes": 1e6}, tag="dram"),
        ], functional=False)
        assert rep.host_busy_s > 0
        assert rep.dram_busy_s > 0

    def test_lut_instruction_functional(self):
        chip = self._chip()
        ex = ChipExecutor(chip)
        lut_block = chip.block(3)
        lut_block.data[0, :4] = [10.0, 11.0, 12.0, 13.0]
        req = chip.block(0)
        req.data[5, 2] = 3  # index
        rep = ex.run([
            Instruction(Opcode.LUT, block=0, src_block=3, rows=(5, 6), src1=2, dst=4)
        ])
        assert req.data[5, 4] == 13.0
        assert rep.total_time_s > 0

    def test_report_merge(self):
        ex = ChipExecutor(self._chip())
        r1 = ex.run([Instruction(Opcode.ADD, block=0, rows=(0, 4), dst=3, src1=1, src2=2)],
                    functional=False)
        n1 = r1.n_instructions
        r1.merge(r1)
        assert r1.n_instructions == 2 * n1


class TestTimingReportMerge:
    def _report(self, seed: int):
        ex = ChipExecutor(PimChip(CHIP_CONFIGS["512MB"]))
        insts = [
            Instruction(Opcode.ADD, block=seed % 4, rows=(0, 4), dst=3, src1=1,
                        src2=2, tag="volume"),
            Instruction(Opcode.MUL, block=(seed + 1) % 4, rows=(0, 8), dst=4,
                        src1=3, src2=2, tag="flux"),
            Instruction(Opcode.COPY, block=seed % 4, rows=(0, 4), dst=5, src1=3,
                        tag="volume"),
        ]
        return ex.run(insts, functional=False)

    def test_merge_covers_all_accounting_dicts(self):
        a, b = self._report(0), self._report(1)
        expect_time = {t: a.time_by_tag.get(t, 0.0) + b.time_by_tag.get(t, 0.0)
                       for t in set(a.time_by_tag) | set(b.time_by_tag)}
        expect_energy = {t: a.energy_by_tag.get(t, 0.0) + b.energy_by_tag.get(t, 0.0)
                         for t in set(a.energy_by_tag) | set(b.energy_by_tag)}
        expect_ops = {o: a.op_counts.get(o, 0) + b.op_counts.get(o, 0)
                      for o in set(a.op_counts) | set(b.op_counts)}
        expect_busy = {k: a.block_busy_s.get(k, 0.0) + b.block_busy_s.get(k, 0.0)
                       for k in set(a.block_busy_s) | set(b.block_busy_s)}
        total = a.total_time_s + b.total_time_s
        energy = a.dynamic_energy_j + b.dynamic_energy_j
        n = a.n_instructions + b.n_instructions

        a.merge(b)
        assert dict(a.time_by_tag) == expect_time
        assert dict(a.energy_by_tag) == expect_energy
        assert dict(a.op_counts) == expect_ops
        assert dict(a.block_busy_s) == expect_busy
        assert a.total_time_s == total
        assert a.dynamic_energy_j == energy
        assert a.n_instructions == n

    def test_merge_accepts_plain_dict_report(self):
        from repro.pim.executor import TimingReport

        a = TimingReport(time_by_tag={"x": 1.0}, energy_by_tag={"x": 2.0},
                         op_counts={"add": 1}, block_busy_s={0: 1.0})
        b = TimingReport(time_by_tag={"y": 3.0}, energy_by_tag={"x": 1.0},
                         op_counts={"mul": 2}, block_busy_s={1: 2.0})
        a.merge(b)
        assert dict(a.time_by_tag) == {"x": 1.0, "y": 3.0}
        assert dict(a.energy_by_tag) == {"x": 3.0}
        assert dict(a.op_counts) == {"add": 1, "mul": 2}
        assert dict(a.block_busy_s) == {0: 1.0, 1: 2.0}


class TestPlanVsSerialExecutor:
    """Plan replay must be float-identical to the serial audit dispatcher."""

    def _stream(self):
        insts = []
        # long same-shape runs (the batchable case) ...
        for _ in range(100):
            insts.append(Instruction(Opcode.ADD, block=0, rows=(0, 64), dst=3,
                                     src1=1, src2=2, tag="volume"))
        for _ in range(70):
            insts.append(Instruction(Opcode.COPY, block=1, rows=(0, 32), dst=2,
                                     src1=1, tag="flux"))
        # ... interrupted by non-batchable / shape-changing instructions
        insts.append(Instruction(Opcode.BARRIER))
        for b in range(4):
            insts.append(Instruction(Opcode.SUB, block=b, rows=(0, 16), dst=4,
                                     src1=3, src2=1, tag="volume"))
        insts.append(Instruction(Opcode.TRANSFER, block=5, src_block=0,
                                 rows=(0, 8), src_rows=(0, 8), dst=1, src1=3,
                                 words=1, tag="fetch"))
        for _ in range(33):
            insts.append(Instruction(Opcode.MUL, block=2, rows=(0, 64), dst=5,
                                     src1=3, src2=1, tag="integration"))
        insts.append(Instruction(Opcode.HOSTOP, count=100, tag="host"))
        return insts

    def _boot(self, chip):
        rng = np.random.default_rng(7)
        for b in range(6):
            blk = chip.block(b)
            blk.data[0:64, 1:4] = rng.standard_normal((64, 3)).astype(np.float32)
        return ChipExecutor(chip)

    @pytest.mark.parametrize("functional", [False, True])
    def test_plan_matches_serial_exactly(self, functional):
        chip_s = PimChip(CHIP_CONFIGS["512MB"])
        chip_b = PimChip(CHIP_CONFIGS["512MB"])
        ex_s, ex_b = self._boot(chip_s), self._boot(chip_b)
        serial = ex_s.run(self._stream(), functional=functional, serial=True)
        plan = ex_b.run(self._stream(), functional=functional)

        assert plan.total_time_s == serial.total_time_s
        assert plan.dynamic_energy_j == serial.dynamic_energy_j
        assert dict(plan.time_by_tag) == dict(serial.time_by_tag)
        assert dict(plan.energy_by_tag) == dict(serial.energy_by_tag)
        assert dict(plan.op_counts) == dict(serial.op_counts)
        assert dict(plan.block_busy_s) == dict(serial.block_busy_s)
        assert plan.host_busy_s == serial.host_busy_s
        assert plan.n_instructions == serial.n_instructions
        if functional:
            for b in range(6):
                assert np.array_equal(chip_s.block(b).data, chip_b.block(b).data)

    def test_plan_compile_stream_identical(self):
        """A real kernel stream (the compiler's hot path) prices identically."""
        from repro.core.kernels.acoustic import AcousticOneBlockKernels
        from repro.core.mapper import ElementMapper
        from repro.dg import AcousticMaterial, HexMesh, ReferenceElement

        mesh = HexMesh.from_refinement_level(1)
        elem = ReferenceElement(2)
        mat = AcousticMaterial.homogeneous(mesh.n_elements)
        chip_cfg = CHIP_CONFIGS["512MB"]
        mapper = ElementMapper(mesh.m, chip_cfg, 1)
        kern = AcousticOneBlockKernels(mesh, elem, mat, mapper, "riemann")
        insts = kern.volume() + kern.flux() + kern.integration(0, 1e-4)

        serial = ChipExecutor(PimChip(chip_cfg)).run(insts, functional=False,
                                                     serial=True)
        plan = ChipExecutor(PimChip(chip_cfg)).run(insts, functional=False)
        assert plan.total_time_s == serial.total_time_s
        assert plan.dynamic_energy_j == serial.dynamic_energy_j
        assert dict(plan.time_by_tag) == dict(serial.time_by_tag)
        assert dict(plan.energy_by_tag) == dict(serial.energy_by_tag)
        assert dict(plan.op_counts) == dict(serial.op_counts)
        assert dict(plan.block_busy_s) == dict(serial.block_busy_s)
