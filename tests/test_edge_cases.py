"""Edge cases and failure injection across the stack.

The functional executor doubles as a validator: malformed instruction
streams must fail loudly (index checks, size mismatches), not corrupt
neighbouring state — the property that let the kernel generators be
debugged against the numpy reference in the first place.
"""

import numpy as np
import pytest

from repro.core.layout import ElementLayout
from repro.core.mapper import ElementMapper
from repro.dg import AcousticMaterial, HexMesh, ReferenceElement
from repro.dg.mesh import BoundaryKind
from repro.pim.block import MemoryBlock
from repro.pim.chip import PimChip
from repro.pim.executor import ChipExecutor
from repro.pim.isa import Instruction, Opcode
from repro.pim.params import CHIP_CONFIGS, MB, ChipConfig


class TestExecutorFailureInjection:
    def _ex(self):
        return ChipExecutor(PimChip(CHIP_CONFIGS["512MB"]))

    def test_bad_column_rejected(self):
        ex = self._ex()
        with pytest.raises(IndexError):
            ex.run([Instruction(Opcode.ADD, block=0, rows=(0, 4), dst=32, src1=0, src2=1)])

    def test_bad_row_range_rejected(self):
        ex = self._ex()
        with pytest.raises(IndexError):
            ex.run([Instruction(Opcode.ADD, block=0, rows=(0, 2048), dst=0, src1=1, src2=2)])

    def test_bad_block_rejected(self):
        ex = self._ex()
        with pytest.raises(IndexError):
            ex.run([Instruction(Opcode.ADD, block=99999, rows=(0, 4), dst=0, src1=1, src2=2)])

    def test_transfer_size_mismatch_rejected(self):
        ex = self._ex()
        with pytest.raises(ValueError):
            ex.run([
                Instruction(Opcode.TRANSFER, block=1, src_block=0, rows=(0, 4),
                            src_rows=(0, 8), dst=0, src1=0, words=1)
            ])

    def test_gather_map_out_of_block_rejected(self):
        ex = self._ex()
        with pytest.raises(IndexError):
            ex.run([
                Instruction(Opcode.GATHER, block=0, rows=(0, 4), dst=0, src1=1,
                            row_map=np.array([0, 1, 2, 5000]))
            ])

    def test_failure_leaves_other_blocks_untouched(self):
        """A rejected instruction must not have side effects elsewhere."""
        ex = self._ex()
        ex.chip.block(1).broadcast((0, 4), 0, 7.0)
        bad = [
            Instruction(Opcode.ADD, block=1, rows=(0, 4), dst=1, src1=0, src2=0),
            Instruction(Opcode.ADD, block=0, rows=(0, 4), dst=99, src1=0, src2=1),
        ]
        # plan replay validates the whole stream before any state changes:
        # a rejected stream executes nothing at all.
        with pytest.raises(IndexError):
            ex.run(bad)
        assert np.allclose(ex.chip.block(1).data[0:4, 1], 0.0)
        # the serial audit dispatcher keeps per-instruction semantics: the
        # first (valid) instruction executed, the second was rejected.
        with pytest.raises(IndexError):
            ex.run(bad, serial=True)
        assert np.allclose(ex.chip.block(1).data[0:4, 1], 14.0)

    def test_timing_mode_skips_functional_validation_of_contents(self):
        """functional=False still validates structure via cost lookups."""
        ex = self._ex()
        rep = ex.run(
            [Instruction(Opcode.ADD, block=0, rows=(0, 4), dst=1, src1=2, src2=3)],
            functional=False,
        )
        assert rep.total_time_s > 0
        # data untouched in timing mode
        assert np.all(ex.chip.block(0).data == 0)


class TestNumericalEdgeCases:
    def test_float32_overflow_propagates_as_inf(self):
        b = MemoryBlock(rows=4, row_words=4)
        b.broadcast((0, 4), 0, 3e38)
        b.broadcast((0, 4), 1, 3e38)
        with np.errstate(over="ignore"), np.testing.suppress_warnings() as sup:
            sup.filter(RuntimeWarning)
            b.add((0, 4), 2, 0, 1)
        assert np.all(np.isinf(b.data[0:4, 2]))

    def test_denormal_inputs_survive(self):
        b = MemoryBlock(rows=4, row_words=4)
        b.broadcast((0, 4), 0, 1e-40)
        b.mul((0, 4), 1, 0, 0)
        assert np.all(np.isfinite(b.data[0:4, 1]))

    def test_single_element_mesh(self):
        """m=1 periodic mesh: every neighbor is the element itself."""
        mesh = HexMesh(m=1)
        assert np.all(mesh.neighbors == 0)
        from repro.dg import AcousticOperator

        elem = ReferenceElement(2)
        mat = AcousticMaterial.homogeneous(1)
        op = AcousticOperator(mesh, mat, elem, flux="riemann")
        q = np.zeros((4, 1, 27))
        q[0] = 2.0
        # self-periodic constant state is steady
        assert np.max(np.abs(op.rhs(q))) < 1e-12

    def test_order_one_elements_work_end_to_end(self):
        from repro.core.kernels.acoustic import AcousticOneBlockKernels
        from repro.dg import AcousticOperator

        mesh = HexMesh.from_refinement_level(1)
        elem = ReferenceElement(1)  # 8 nodes, minimal
        mat = AcousticMaterial.homogeneous(mesh.n_elements)
        mapper = ElementMapper(mesh.m, CHIP_CONFIGS["512MB"], 1)
        kern = AcousticOneBlockKernels(mesh, elem, mat, mapper, "central")
        op = AcousticOperator(mesh, mat, elem, flux="central")
        rng = np.random.default_rng(0)
        state = rng.standard_normal((4, 8, 8)).astype(np.float32)
        chip = PimChip(CHIP_CONFIGS["512MB"])
        ex = ChipExecutor(chip)
        ex.run(kern.setup() + kern.load_state(state), functional=True)
        ex.run(kern.volume() + kern.flux(), functional=True)
        got = kern.read_contributions(chip)
        ref = op.rhs(state.astype(np.float64))
        assert np.max(np.abs(got - ref)) / np.max(np.abs(ref)) < 5e-6

    def test_high_order_quadrature_stability(self):
        """Order-12 GLL nodes still converge and integrate exactly."""
        elem = ReferenceElement(12)
        assert np.all(np.isfinite(elem.diff_1d))
        x = elem.nodes_1d
        d = elem.diff_1d @ (x**12)
        assert np.allclose(d, 12 * x**11, atol=1e-6)


class TestCapacityEdges:
    def test_exact_fit_plan(self):
        """elastic_4 on 2GB is an exact 100% fit — no batching, no E_p."""
        from repro.core.planner import plan_configuration

        plan = plan_configuration("elastic", 4, CHIP_CONFIGS["2GB"])
        assert plan.utilization == 1.0
        assert not plan.batched and not plan.expansion_parallel

    def test_tiny_custom_chip_config(self):
        cfg = ChipConfig(name="tiny", capacity_bytes=4 * MB, blocks_per_tile=32)
        assert cfg.n_blocks == 32
        chip = PimChip(cfg)
        assert chip.locate(31) == (0, 31)
        with pytest.raises(IndexError):
            chip.locate(32)

    def test_layout_boundary_orders(self):
        """Order 7 exactly fills the paper's 512 compute rows; order 8
        overflows and must be rejected."""
        assert ElementLayout(7).n_nodes == 512
        with pytest.raises(ValueError):
            ElementLayout(8)

    def test_mapper_exact_capacity(self):
        cfg = ChipConfig(name="t64", capacity_bytes=8 * MB, blocks_per_tile=64)
        m = ElementMapper(4, cfg, 1)  # 64 elements on 64 blocks
        assert m.utilization == 1.0
        with pytest.raises(ValueError):
            ElementMapper(4, cfg, 4)


class TestBoundaryPhysicsEdges:
    @pytest.mark.parametrize("kind", [BoundaryKind.FREE_SURFACE, BoundaryKind.RIGID])
    def test_reflecting_walls_conserve_energy_with_central_flux(self, kind):
        """Free-surface and rigid walls reflect without creating energy."""
        from repro.dg import SolverConfig, WaveSolver

        s = WaveSolver(
            SolverConfig(physics="acoustic", refinement_level=1, order=3,
                         flux="central", boundary=kind)
        )
        rng = np.random.default_rng(0)
        s.set_state(0.01 * rng.standard_normal(s.state.shape))
        e0 = s.energy()
        s.run(20)
        assert s.energy() <= e0 * 1.001

    def test_pim_kernels_refuse_physical_boundaries(self):
        """PIM kernel generation is periodic-only by design (documented)."""
        from repro.core.kernels.acoustic import AcousticOneBlockKernels

        mesh = HexMesh.from_refinement_level(1, boundary=BoundaryKind.FREE_SURFACE)
        elem = ReferenceElement(1)
        mat = AcousticMaterial.homogeneous(mesh.n_elements)
        mapper = ElementMapper(mesh.m, CHIP_CONFIGS["512MB"], 1)
        kern = AcousticOneBlockKernels(mesh, elem, mat, mapper, "central")
        with pytest.raises(NotImplementedError):
            kern.flux(elements=[0])
