"""Memory block functional semantics, ISA encoding, LUT instruction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pim.block import MemoryBlock
from repro.pim.isa import Instruction, LutInstructionFormat, Opcode
from repro.pim.lut import LookupTable


class TestMemoryBlock:
    def test_shape(self):
        b = MemoryBlock(rows=64, row_words=8)
        assert b.data.shape == (64, 8)
        assert b.data.dtype == np.float32

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            MemoryBlock(rows=0)

    def test_arithmetic_range(self):
        b = MemoryBlock(rows=16, row_words=8)
        b.broadcast((0, 16), 1, np.arange(16, dtype=np.float32))
        b.broadcast((0, 16), 2, 10.0)
        b.add((4, 8), 3, 1, 2)
        assert np.allclose(b.data[4:8, 3], np.arange(4, 8) + 10)
        assert np.allclose(b.data[0:4, 3], 0.0)  # untouched rows

    def test_sub_mul(self):
        b = MemoryBlock(rows=8, row_words=8)
        b.broadcast((0, 8), 0, 6.0)
        b.broadcast((0, 8), 1, 2.0)
        b.sub((0, 8), 2, 0, 1)
        b.mul((0, 8), 3, 0, 1)
        assert np.allclose(b.data[:, 2], 4.0)
        assert np.allclose(b.data[:, 3], 12.0)

    def test_row_set_selection(self):
        b = MemoryBlock(rows=16, row_words=4)
        rows = np.array([1, 5, 9])
        b.broadcast(rows, 0, 7.0)
        assert np.allclose(b.data[rows, 0], 7.0)
        assert b.data[0, 0] == 0.0

    def test_gather_permutation(self):
        b = MemoryBlock(rows=8, row_words=4)
        b.broadcast((0, 8), 0, np.arange(8, dtype=np.float32))
        perm = np.array([7, 6, 5, 4, 3, 2, 1, 0])
        b.gather((0, 8), 1, 0, perm)
        assert np.allclose(b.data[:, 1], perm)

    def test_gather_validates_map(self):
        b = MemoryBlock(rows=8, row_words=4)
        with pytest.raises(ValueError):
            b.gather((0, 8), 1, 0, np.arange(4))
        with pytest.raises(IndexError):
            b.gather((0, 4), 1, 0, np.array([0, 1, 2, 99]))

    def test_column_bounds(self):
        b = MemoryBlock(rows=8, row_words=4)
        with pytest.raises(IndexError):
            b.add((0, 4), 4, 0, 1)

    def test_row_bounds(self):
        b = MemoryBlock(rows=8, row_words=4)
        with pytest.raises(IndexError):
            b.add((0, 9), 0, 1, 2)

    def test_read_write_roundtrip(self):
        b = MemoryBlock(rows=8, row_words=4)
        vals = np.linspace(0, 1, 8).astype(np.float32)
        b.write((0, 8), 2, vals)
        assert np.allclose(b.read((0, 8), 2), vals)

    def test_copy_column(self):
        b = MemoryBlock(rows=8, row_words=4)
        b.broadcast((0, 8), 0, 3.5)
        b.copy_column((2, 6), 1, 0)
        assert np.allclose(b.data[2:6, 1], 3.5)
        assert b.data[0, 1] == 0.0


class TestInstruction:
    def test_requires_opcode(self):
        with pytest.raises(TypeError):
            Instruction("add")

    def test_n_rows_tuple_and_array(self):
        i = Instruction(Opcode.ADD, rows=(3, 10))
        assert i.n_rows == 7
        i = Instruction(Opcode.ADD, rows=np.array([1, 5, 9]))
        assert i.n_rows == 3


class TestLutFormat:
    def test_field_layout_matches_fig4(self):
        f = LutInstructionFormat
        assert f.OPCODE_SHIFT == 57
        assert f.ROW_SHIFT == 31
        assert f.OFFSET_S_SHIFT == 26
        assert f.LUT_BLOCK_SHIFT == 5
        # 7 + 26 + 5 + 21 + 5 bits = 64
        assert (
            f.OPCODE_BITS + f.ROW_BITS + 2 * f.OFFSET_BITS + f.LUT_BLOCK_BITS == 64
        )

    @given(
        st.integers(min_value=0, max_value=(1 << 26) - 1),
        st.integers(min_value=0, max_value=31),
        st.integers(min_value=0, max_value=(1 << 21) - 1),
        st.integers(min_value=0, max_value=31),
    )
    @settings(max_examples=200, deadline=None)
    def test_roundtrip(self, row, offs, lut, offd):
        word = LutInstructionFormat.encode(row, offs, lut, offd)
        assert 0 <= word < (1 << 64)
        f = LutInstructionFormat.decode(word)
        assert f["row_id"] == row
        assert f["offset_s"] == offs
        assert f["lut_block_id"] == lut
        assert f["offset_d"] == offd
        assert f["opcode"] == LutInstructionFormat.LUT_OPCODE

    def test_rejects_overflow_fields(self):
        with pytest.raises(ValueError):
            LutInstructionFormat.encode(1 << 26, 0, 0, 0)
        with pytest.raises(ValueError):
            LutInstructionFormat.encode(0, 32, 0, 0)

    def test_decode_rejects_non_64bit(self):
        with pytest.raises(ValueError):
            LutInstructionFormat.decode(1 << 64)


class TestLookupTable:
    def _lut(self):
        block = MemoryBlock(rows=32, row_words=8, block_id=5)
        return LookupTable(block)

    def test_load_and_entry(self):
        lut = self._lut()
        n = lut.load(np.arange(20) * 2.0)
        assert n == 20
        assert lut.entry(7) == 14.0

    def test_load_capacity(self):
        lut = self._lut()
        with pytest.raises(ValueError):
            lut.load(np.zeros(lut.capacity + 1))

    def test_entry_bounds(self):
        lut = self._lut()
        with pytest.raises(IndexError):
            lut.entry(lut.capacity)

    def test_algorithm1_execution(self):
        """Alg. 1 literally: index fetch, content fetch, write back."""
        lut = self._lut()
        lut.load(np.arange(32) * 1.5)
        requester = MemoryBlock(rows=16, row_words=8)
        requester.data[3, 2] = 10  # the index, stored as a float
        word = LutInstructionFormat.encode(row_id=3, offset_s=2, lut_block_id=5, offset_d=6)
        content = lut.execute(requester, word)
        assert content == 15.0
        assert requester.data[3, 6] == np.float32(15.0)

    def test_execute_fields_wrapper(self):
        lut = self._lut()
        lut.load([1.0, 2.0, 3.0])
        requester = MemoryBlock(rows=16, row_words=8)
        requester.data[0, 0] = 2
        assert lut.execute_fields(requester, 0, 0, 1) == 3.0

    def test_execute_row_bounds(self):
        lut = self._lut()
        requester = MemoryBlock(rows=4, row_words=8)
        word = LutInstructionFormat.encode(row_id=9, offset_s=0, lut_block_id=5, offset_d=1)
        with pytest.raises(IndexError):
            lut.execute(requester, word)

    def test_index_truncation(self):
        """Float index 4.9 truncates to entry 4 (32-bit datapath)."""
        lut = self._lut()
        lut.load(np.arange(10, dtype=np.float32))
        requester = MemoryBlock(rows=4, row_words=8)
        requester.data[0, 0] = 4.9
        assert lut.execute_fields(requester, 0, 0, 1) == 4.0
