"""Multi-chip sharding: partition/halo correctness, bit-identity, scaling.

The correctness chain the tentpole rests on:

1. the partition covers the mesh and its halos/exchanges are exactly the
   cross-shard face closure (PL005 audit, also exercised on broken
   shardings);
2. 1-shard sharded execution is bit-identical to plain plan replay
   (same clocks, same block images);
3. N-shard execution is bit-identical to single-chip execution across a
   six-configuration sweep of the kernel families (analytic makespans
   via digests of the *full* block state, functional via read_state);
4. the capacity-axis step workload records >= 1.5x modeled-makespan
   speedup at 4 shards with the exchange overlap *measured* from
   hardware counters;
5. the r=6 mesh the single-chip mapper rejects is held by the
   partitioner.
"""

import hashlib

import numpy as np
import pytest

from repro.analysis.halo import audit_sharding
from repro.core.kernels.acoustic import (
    AcousticFourBlockKernels,
    AcousticOneBlockKernels,
)
from repro.core.kernels.elastic import ElasticFourBlockKernels
from repro.core.kernels.maxwell import MaxwellOneBlockKernels
from repro.core.mapper import ElementMapper, ShardMapper
from repro.dg import AcousticMaterial, HexMesh, ReferenceElement
from repro.dg.materials import ElasticMaterial
from repro.dg.maxwell import ElectromagneticMaterial
from repro.pim.chip import PimChip
from repro.pim.executor import ChipExecutor
from repro.pim.multichip import (
    InterChipLink,
    ShardedExecutor,
    Sharding,
    partition_mesh,
    shards_needed,
    single_chip_batched_makespan,
)
from repro.pim.params import CHIP_CONFIGS

CHIP = CHIP_CONFIGS["512MB"]
DT = 1e-4


def _factory(physics, flux, mesh, element):
    """(kernel_factory, g, n_vars) for one sweep configuration."""
    if physics == "acoustic1":
        mat = AcousticMaterial.homogeneous(mesh.n_elements)
        return (lambda m: AcousticOneBlockKernels(mesh, element, mat, m, flux)), 1
    if physics == "acoustic4":
        mat = AcousticMaterial.homogeneous(mesh.n_elements)
        return (lambda m: AcousticFourBlockKernels(mesh, element, mat, m, flux)), 4
    if physics == "elastic":
        mat = ElasticMaterial.homogeneous(mesh.n_elements)
        return (lambda m: ElasticFourBlockKernels(mesh, element, mat, m, flux)), 4
    mat = ElectromagneticMaterial.homogeneous(mesh.n_elements)
    return (lambda m: MaxwellOneBlockKernels(mesh, element, mat, m,
                                             flux_kind=flux, alpha=1.0)), 1


def _single_chip_run(mesh, element, factory, g, state, n_steps=1):
    """Plain plan-replay reference: makespan + per-element block digests."""
    mapper = ElementMapper(mesh.m, CHIP, g)
    kern = factory(mapper)
    chip = PimChip(CHIP)
    ex = ChipExecutor(chip)
    ex.run(kern.setup() + kern.load_state(state), functional=True)
    plan = ex.lower(kern.time_step(DT))
    for _ in range(n_steps):
        ex.run(plan, functional=True)
    digests = {}
    for e in mapper.elements:
        h = hashlib.sha256()
        for part in range(g):
            h.update(chip.block(mapper.block_of(e, part)).data.tobytes())
        digests[int(e)] = h.hexdigest()
    return ex.now(), digests, kern.read_state(chip)


def _state(mesh, element, n_vars, seed=0):
    rng = np.random.default_rng(seed)
    return (0.1 * rng.standard_normal(
        (n_vars, mesh.n_elements, element.n_nodes))).astype(np.float32)


class TestPartition:
    def test_partition_covers_mesh(self):
        mesh = HexMesh.from_refinement_level(2)
        sharding = partition_mesh(mesh, 4)
        owned_all = np.sort(np.concatenate(sharding.owned))
        assert np.array_equal(owned_all, np.arange(mesh.n_elements))
        for s in range(4):
            assert np.array_equal(sharding.halo[s],
                                  mesh.halo_of(sharding.owned[s]))
            # owner map is consistent with the owned sets
            assert np.all(sharding.owner[sharding.owned[s]] == s)

    def test_exchanges_partition_each_halo(self):
        mesh = HexMesh.from_refinement_level(2)
        sharding = partition_mesh(mesh, 4)
        for s in range(4):
            inbound = [e for (src, dst), e in sharding.exchanges.items()
                       if dst == s]
            got = np.sort(np.concatenate(inbound))
            assert np.array_equal(got, sharding.halo[s])

    def test_partition_rejects_bad_order(self):
        mesh = HexMesh.from_refinement_level(1)
        with pytest.raises(ValueError):
            mesh.partition_elements(2, order=np.zeros(8, dtype=np.int64))
        with pytest.raises(ValueError):
            mesh.partition_elements(0)

    def test_halo_of_is_face_closure(self):
        mesh = HexMesh.from_refinement_level(2)
        owned = mesh.slice_elements(0)  # one y-slice
        halo = mesh.halo_of(owned)
        # periodic mesh: the neighboring slices on both sides
        expect = np.sort(np.concatenate(
            [mesh.slice_elements(1), mesh.slice_elements(3)]))
        assert np.array_equal(halo, expect)

    def test_shard_mapper_owned_halo_disjoint(self):
        mesh = HexMesh.from_refinement_level(1)
        sharding = partition_mesh(mesh, 2)
        m = ShardMapper(mesh.m, CHIP, 1, owned=sharding.owned[0],
                        halo=sharding.halo[0], shard_id=0)
        assert m.n_owned + m.n_halo == m.n_elements
        assert all(m.is_owned(e) for e in sharding.owned[0])
        assert not any(m.is_owned(e) for e in sharding.halo[0])
        with pytest.raises(ValueError):
            ShardMapper(mesh.m, CHIP, 1, owned=sharding.owned[0],
                        halo=sharding.owned[0])


class TestHaloAudit:
    def test_clean_partitions_audit_clean(self):
        for level, n in ((1, 2), (2, 4), (2, 8)):
            mesh = HexMesh.from_refinement_level(level)
            assert audit_sharding(mesh, partition_mesh(mesh, n)) == []

    def test_catches_lost_halo_and_broken_exchange(self):
        mesh = HexMesh.from_refinement_level(2)
        sh = partition_mesh(mesh, 4)
        # drop a halo element of shard 0 and truncate one exchange set
        exchanges = dict(sh.exchanges)
        key = sorted(exchanges)[0]
        exchanges[key] = exchanges[key][:-1]
        broken = Sharding(sh.n_shards, sh.owned,
                          (sh.halo[0][1:],) + sh.halo[1:], sh.owner,
                          exchanges)
        findings = audit_sharding(mesh, broken)
        assert findings and all(f.code == "PL005" for f in findings)
        assert any("lost halo rows" in f.message for f in findings)
        assert any("no exchange delivers" in f.message for f in findings)

    def test_catches_double_ownership(self):
        mesh = HexMesh.from_refinement_level(1)
        sh = partition_mesh(mesh, 2)
        dup = np.concatenate([sh.owned[0], sh.owned[1][:1]])
        broken = Sharding(2, (dup, sh.owned[1]), sh.halo, sh.owner,
                          sh.exchanges)
        assert any("multiple shards" in f.message
                   for f in audit_sharding(mesh, broken))

    def test_sharded_executor_rejects_broken_sharding(self):
        mesh = HexMesh.from_refinement_level(1)
        sh = partition_mesh(mesh, 2)
        broken = Sharding(2, sh.owned, (sh.halo[0][1:],) + sh.halo[1:],
                          sh.owner, sh.exchanges)
        mat = AcousticMaterial.homogeneous(mesh.n_elements)
        elem = ReferenceElement(1)

        def factory(m):
            return AcousticOneBlockKernels(mesh, elem, mat, m, "riemann")

        with pytest.raises(ValueError, match="PL005"):
            ShardedExecutor(mesh, CHIP, factory, sharding=broken)


class TestBitIdentity:
    def test_one_shard_bit_identical_to_plain_replay(self):
        mesh = HexMesh.from_refinement_level(1)
        elem = ReferenceElement(2)
        factory, g = _factory("acoustic1", "riemann", mesh, elem)
        state = _state(mesh, elem, 4, seed=7)
        makespan, digests, ref_state = _single_chip_run(
            mesh, elem, factory, g, state, n_steps=2)

        sx = ShardedExecutor(mesh, CHIP, factory, n_shards=1)
        sx.setup(state)
        res = sx.run_steps(DT, n_steps=2)
        assert res.makespan_s == makespan          # clocks, bit-exact
        assert sx.state_digests() == digests       # full block images
        assert np.array_equal(sx.read_state(), ref_state)
        assert res.n_exchanges == 0 and res.exchange_bytes == 0

    # the six-configuration sweep: every kernel family x flux kind the
    # paper benchmarks exercise, each run N-shard vs single chip.
    SWEEP = [
        ("acoustic1", "riemann", 2, 4, 4),
        ("acoustic1", "central", 1, 2, 4),
        ("acoustic4", "riemann", 1, 2, 4),
        ("elastic", "central", 1, 2, 9),
        ("elastic", "riemann", 1, 2, 9),
        ("maxwell", "upwind", 1, 2, 6),
    ]

    @pytest.mark.parametrize("physics,flux,level,n_shards,n_vars", SWEEP)
    def test_n_shard_bit_identical_sweep(self, physics, flux, level,
                                         n_shards, n_vars):
        mesh = HexMesh.from_refinement_level(level)
        elem = ReferenceElement(1)
        factory, g = _factory(physics, flux, mesh, elem)
        state = _state(mesh, elem, n_vars, seed=3)
        _, digests, ref_state = _single_chip_run(mesh, elem, factory, g, state)

        sx = ShardedExecutor(mesh, CHIP, factory, n_shards=n_shards,
                             blocks_per_element=g)
        sx.setup(state)
        sx.run_steps(DT, n_steps=1)
        # full block images (vars + scratch + aux) of every owned element
        assert sx.state_digests() == digests
        # functional path: the assembled global state
        assert np.array_equal(sx.read_state(), ref_state)

    def test_threaded_replay_matches_sequential(self):
        mesh = HexMesh.from_refinement_level(1)
        elem = ReferenceElement(1)
        factory, g = _factory("acoustic1", "riemann", mesh, elem)
        state = _state(mesh, elem, 4, seed=5)
        results = []
        for jobs in (None, 2):
            sx = ShardedExecutor(mesh, CHIP, factory, n_shards=2, jobs=jobs)
            sx.setup(state)
            res = sx.run_steps(DT, n_steps=1)
            results.append((res.makespan_s, sx.state_digests(),
                            res.link_events))
        assert results[0] == results[1]


class TestScaling:
    def test_step_workload_shard_speedup(self):
        from repro.eval.bench import SHARD_SPEEDUP_FLOOR
        from repro.workloads.sharding import shard_step_workload

        wl = shard_step_workload()
        single_s, n_batches = single_chip_batched_makespan(
            wl["mesh"], wl["chip"], wl["kernel_factory"], dt=wl["dt"])
        assert n_batches == 2  # 64 elements overflow the 48-block proxy
        sx = ShardedExecutor(wl["mesh"], wl["chip"], wl["kernel_factory"],
                             n_shards=4, counters=True)
        res = sx.run_steps(wl["dt"], n_steps=1, functional=False)
        speedup = single_s / res.makespan_s
        assert speedup >= SHARD_SPEEDUP_FLOOR
        # overlap is measured from counters, not asserted from the schedule
        assert res.exchange_overlap_s is not None
        assert res.overlap_fraction is not None
        assert 0.0 < res.overlap_fraction <= 1.0
        assert res.n_exchanges > 0 and res.exchange_busy_s > 0.0

    def test_overlap_unmeasured_without_counters(self):
        mesh = HexMesh.from_refinement_level(1)
        elem = ReferenceElement(1)
        factory, g = _factory("acoustic1", "riemann", mesh, elem)
        sx = ShardedExecutor(mesh, CHIP, factory, n_shards=2)
        res = sx.run_steps(DT, n_steps=1, functional=False)
        assert res.exchange_overlap_s is None
        assert res.overlap_fraction is None

    def test_report_folds_link_accounting(self):
        mesh = HexMesh.from_refinement_level(1)
        elem = ReferenceElement(1)
        factory, g = _factory("acoustic1", "riemann", mesh, elem)
        link = InterChipLink(latency_s=1e-6, bandwidth_bps=1e9)
        sx = ShardedExecutor(mesh, CHIP, factory, n_shards=2, link=link)
        res = sx.run_steps(DT, n_steps=1, functional=False)
        rep = res.report
        assert rep.time_by_tag["halo:exchange"] == res.exchange_busy_s
        assert rep.energy_by_tag["halo:exchange"] == pytest.approx(
            link.transfer_energy_j(res.exchange_bytes))
        assert rep.total_time_s == res.makespan_s
        # block busy keys are namespaced by shard
        assert all(isinstance(k, tuple) for k in rep.block_busy_s)

    def test_slow_link_shows_up_as_halo_wait(self):
        mesh = HexMesh.from_refinement_level(1)
        elem = ReferenceElement(1)
        factory, g = _factory("acoustic1", "riemann", mesh, elem)
        slow = InterChipLink(latency_s=5e-3, bandwidth_bps=1e6)
        sx = ShardedExecutor(mesh, CHIP, factory, n_shards=2, link=slow,
                             verify_halo=False)
        sx.setup(_state(mesh, elem, 4))
        res = sx.run_steps(DT, n_steps=2)
        assert res.halo_wait_s > 0.0  # exchange no longer hides under compute


class TestCapacity:
    def test_r6_single_chip_cannot_hold_it(self):
        mesh = HexMesh.from_refinement_level(6)
        assert mesh.n_elements == 262_144
        with pytest.raises(ValueError, match="exceeds chip capacity"):
            ElementMapper(mesh.m, CHIP, 1)

    def test_r6_sharding_holds_it(self):
        mesh = HexMesh.from_refinement_level(6)
        n = shards_needed(mesh, CHIP, 1)
        assert n is not None and n > 1
        sharding = partition_mesh(mesh, n)
        worst = max((len(o) + len(h))
                    for o, h in zip(sharding.owned, sharding.halo))
        assert worst <= CHIP.n_blocks
        # and a shard mapper actually constructs at that size
        m0 = ShardMapper(mesh.m, CHIP, 1, owned=sharding.owned[0],
                         halo=sharding.halo[0], shard_id=0)
        assert m0.n_blocks_needed <= CHIP.n_blocks

    def test_shard_mapper_overflow_names_the_shard(self):
        mesh = HexMesh.from_refinement_level(6)
        sharding = partition_mesh(mesh, 2)
        with pytest.raises(ValueError, match="shard 1: .*more shards"):
            ShardMapper(mesh.m, CHIP, 1, owned=sharding.owned[1],
                        halo=sharding.halo[1], shard_id=1)


class TestGantt:
    def test_sharded_track_events_merge_lanes(self):
        from repro.obs import INTERCHIP_PID, SHARD_PID0, sharded_track_events
        from repro.workloads.sharding import shard_step_workload

        wl = shard_step_workload()
        sx = ShardedExecutor(wl["mesh"], wl["chip"], wl["kernel_factory"],
                             n_shards=4, counters=True)
        res = sx.run_steps(wl["dt"], n_steps=1, functional=False)
        events = sharded_track_events(
            [sh.executor.counters for sh in sx.shards],
            link_events=res.link_events)
        pids = {e["pid"] for e in events}
        assert {SHARD_PID0 + k for k in range(4)} <= pids
        assert INTERCHIP_PID in pids
        link_slices = [e for e in events
                       if e["pid"] == INTERCHIP_PID and e["ph"] == "X"]
        assert len(link_slices) == res.n_exchanges
        names = {e["args"]["name"] for e in events
                 if e["name"] == "process_name"}
        assert "shard 0" in names and "inter-chip links" in names
