"""Time-reversal imaging: the repeated-solve FWI building block (§1)."""

import numpy as np
import pytest

from repro.apps import TimeReversalImager
from repro.dg.solver import SolverConfig


@pytest.fixture(scope="module")
def imager():
    return TimeReversalImager(
        SolverConfig(physics="acoustic", refinement_level=2, order=3, flux="riemann")
    )


class TestForward:
    def test_traces_recorded(self, imager):
        traces, dt = imager.forward((0.5, 0.5, 0.5), n_steps=60)
        assert len(traces) == 6
        assert all(len(t) == 60 for t in traces)
        assert dt > 0
        # the wave reaches at least the nearest receivers
        assert max(float(np.max(np.abs(t))) for t in traces) > 0.1

    def test_rejects_elastic(self):
        with pytest.raises(ValueError):
            TimeReversalImager(SolverConfig(physics="elastic", refinement_level=1))


class TestLocalization:
    def test_refocuses_at_source_time(self, imager):
        """The reverse field's amplitude at the true source peaks inside
        the predicted focus window (the physics behind the imaging)."""
        true = (0.62, 0.4, 0.55)
        n = 120
        traces, dt = imager.forward(true, n)
        from repro.dg.solver import WaveSolver
        from repro.apps.time_reversal import _TraceSource

        solver = WaveSolver(imager.config)
        coords = solver.mesh.node_coordinates(solver.element.node_coords)
        for pos, trace in zip(imager.receiver_positions, traces):
            d2 = np.sum((coords - np.asarray(pos)) ** 2, axis=-1)
            en = np.unravel_index(np.argmin(d2), d2.shape)
            solver.sources.append(_TraceSource((int(en[0]), int(en[1])), trace[::-1], dt))
        d2t = np.sum((coords - np.asarray(true)) ** 2, axis=-1)
        et, nt = np.unravel_index(np.argmin(d2t), d2t.shape)
        amps = []
        for _ in range(n):
            solver.run(1, dt=dt)
            amps.append(abs(float(solver.state[0][et, nt])))
        focus_step = n - int(round(1.5 / 6.0 / dt))
        peak_step = int(np.argmax(amps))
        assert abs(peak_step - focus_step) < 20

    def test_coherent_localization_subelement(self, imager):
        res = imager.locate((0.3, 0.7, 0.45), n_steps=150)
        h = 1.0 / 4  # level-2 element width
        assert res.error < 1.0 * h
        assert res.focus_amplitude > 0

    def test_result_fields(self, imager):
        res = imager.locate((0.5, 0.5, 0.5), n_steps=100)
        assert res.n_steps == 100
        assert res.estimated_position.shape == (3,)
        assert res.error >= 0
