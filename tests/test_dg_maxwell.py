"""Maxwell extension: the paper's §1 claim that the machinery generalizes
to electromagnetic waves."""

import numpy as np
import pytest

from repro.dg.maxwell import (
    ElectromagneticMaterial,
    MaxwellOperator,
    maxwell_plane_wave,
)
from repro.dg.mesh import BoundaryKind, HexMesh
from repro.dg.reference_element import ReferenceElement
from repro.dg.timestepping import LSRK45, cfl_timestep


@pytest.fixture(scope="module")
def setup():
    mesh = HexMesh.from_refinement_level(1)
    elem = ReferenceElement(4)
    mat = ElectromagneticMaterial.homogeneous(mesh.n_elements)
    return mesh, elem, mat


class TestMaterial:
    def test_vacuumlike(self):
        m = ElectromagneticMaterial.homogeneous(8, eps=1.0, mu=1.0)
        assert np.allclose(m.c, 1.0)
        assert np.allclose(m.impedance, 1.0)

    def test_dielectric(self):
        m = ElectromagneticMaterial.homogeneous(8, eps=4.0, mu=1.0)
        assert np.allclose(m.c, 0.5)
        assert np.allclose(m.impedance, 0.5)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ElectromagneticMaterial.homogeneous(4, eps=-1.0)


class TestOperator:
    def test_rejects_bad_flux(self, setup):
        mesh, elem, mat = setup
        with pytest.raises(ValueError):
            MaxwellOperator(mesh, mat, elem, flux="fancy")

    def test_rejects_nonperiodic(self):
        mesh = HexMesh.from_refinement_level(1, boundary=BoundaryKind.FREE_SURFACE)
        elem = ReferenceElement(2)
        mat = ElectromagneticMaterial.homogeneous(mesh.n_elements)
        with pytest.raises(NotImplementedError):
            MaxwellOperator(mesh, mat, elem)

    def test_static_uniform_field_is_steady(self, setup):
        mesh, elem, mat = setup
        op = MaxwellOperator(mesh, mat, elem, flux="upwind")
        q = op.zero_state()
        q[0] = 1.0  # uniform Ex
        q[4] = -2.0  # uniform Hy
        assert np.max(np.abs(op.rhs(q))) < 1e-12

    def test_rhs_matches_plane_wave(self, setup):
        mesh, _, mat = setup
        elem = ReferenceElement(6)
        op = MaxwellOperator(mesh, mat, elem, flux="central")
        eps = 1e-6
        q0 = maxwell_plane_wave(mesh, elem, mat, (1, 0, 0), (0, 1, 0), t=0.3)
        q1 = maxwell_plane_wave(mesh, elem, mat, (1, 0, 0), (0, 1, 0), t=0.3 + eps)
        err = np.max(np.abs(op.rhs(q0) - (q1 - q0) / eps))
        assert err < 2e-2

    def test_spectral_convergence(self, setup):
        mesh, _, mat = setup
        errs = []
        for order in (2, 4, 6):
            elem = ReferenceElement(order)
            op = MaxwellOperator(mesh, mat, elem, flux="central")
            eps = 1e-6
            q0 = maxwell_plane_wave(mesh, elem, mat, (1, 0, 0), (0, 1, 0), t=0.3)
            q1 = maxwell_plane_wave(mesh, elem, mat, (1, 0, 0), (0, 1, 0), t=0.3 + eps)
            errs.append(np.max(np.abs(op.rhs(q0) - (q1 - q0) / eps)))
        assert errs[0] > 5 * errs[1] > 25 * errs[2]

    def test_central_conserves_energy(self, setup):
        """Semidiscrete conservation: <eps E, rhs_E> + <mu H, rhs_H> = 0."""
        mesh, elem, mat = setup
        op = MaxwellOperator(mesh, mat, elem, flux="central")
        rng = np.random.default_rng(0)
        q = rng.standard_normal((6, mesh.n_elements, elem.n_nodes))
        r = op.rhs(q)
        jac = (mesh.h / 2.0) ** 3
        de = jac * np.sum(
            elem.integrate(
                mat.eps[:, None] * np.sum(q[0:3] * r[0:3], axis=0)
                + mat.mu[:, None] * np.sum(q[3:6] * r[3:6], axis=0)
            )
        )
        assert abs(de) / op.energy(q) < 1e-12

    def test_upwind_dissipates(self, setup):
        mesh, elem, mat = setup
        op = MaxwellOperator(mesh, mat, elem, flux="upwind")
        rng = np.random.default_rng(1)
        q = rng.standard_normal((6, mesh.n_elements, elem.n_nodes))
        e0 = op.energy(q)
        q1 = q + 1e-4 * op.rhs(q)
        assert op.energy(q1) < e0

    def test_plane_wave_evolution(self, setup):
        mesh, elem, mat = setup
        op = MaxwellOperator(mesh, mat, elem, flux="upwind")
        q = maxwell_plane_wave(mesh, elem, mat, (1, 0, 0), (0, 1, 0))
        T = 0.2
        dt = cfl_timestep(mesh.h, mat.max_speed, elem.order, 0.4)
        n = int(np.ceil(T / dt))
        stepper = LSRK45(lambda s: op.rhs(s))
        aux = np.zeros_like(q)
        for _ in range(n):
            stepper.step(q, 0.0, T / n, aux)
        ref = maxwell_plane_wave(mesh, elem, mat, (1, 0, 0), (0, 1, 0), t=T)
        assert np.max(np.abs(q - ref)) < 0.05

    def test_polarization_orthogonality(self, setup):
        """E, H and k of the analytic wave form a right-handed triad."""
        mesh, elem, mat = setup
        q = maxwell_plane_wave(mesh, elem, mat, (1, 1, 0), (0, 0, 1))
        e = q[0:3].reshape(3, -1)
        h = q[3:6].reshape(3, -1)
        dot = np.sum(e * h, axis=0)
        assert np.max(np.abs(dot)) < 1e-12

    def test_six_variables_fit_one_pim_block(self):
        """Unlike the elastic 9-variable case, Maxwell's 6 variables fit
        the Fig. 5 single-block row layout."""
        from repro.core.layout import ElementLayout

        lay = ElementLayout(7, variables=tuple(f"f{i}" for i in range(6)))
        assert lay.scratch0 + 4 <= lay.row_words
