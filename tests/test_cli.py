"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import _cache_status, main


class TestCli:
    def test_experiments_listing(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "table5" in out and "fig14" in out

    def test_plan(self, capsys):
        assert main(["plan", "elastic", "5", "512MB"]) == 0
        out = capsys.readouterr().out
        assert "E_r&B" in out and "32" in out

    def test_plan_unknown_chip(self):
        with pytest.raises(SystemExit):
            main(["plan", "acoustic", "4", "3GB"])  # argparse choices

    def test_run_table5(self, capsys):
        assert main(["run", "table5"]) == 0
        assert "matches_paper" in capsys.readouterr().out

    def test_run_unknown(self, capsys):
        assert main(["run", "fig99"]) == 2

    def test_run_with_order(self, capsys):
        assert main(["run", "table6", "--order", "2"]) == 0
        assert "Acoustic_4" in capsys.readouterr().out

    def test_simulate(self, capsys):
        assert main(["simulate", "--level", "1", "--order", "2", "--steps", "5"]) == 0
        assert "energy" in capsys.readouterr().out

    def test_log_level_flag_accepted(self, capsys):
        assert main(["run", "table5", "--log-level", "warning"]) == 0
        assert "matches_paper" in capsys.readouterr().out


class TestPerfHistory:
    def test_history_table(self, tmp_path, capsys):
        import json

        doc = {"history": [{
            "timestamp": "2026-08-08T00:00:00",
            "executor_step_s": 0.003,
            "block_util": 0.8, "link_util": 0.1,
            "binding_resource": "block:1", "counters_overhead": 1.01,
        }]}
        path = tmp_path / "BENCH_perf.json"
        path.write_text(json.dumps(doc))
        assert main(["perf", "history", "--json", str(path)]) == 0
        out = capsys.readouterr().out
        assert "block:1" in out and "1 entries" in out

    def test_missing_file(self, tmp_path, capsys):
        assert main(["perf", "history", "--json",
                     str(tmp_path / "nope.json")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_empty_history_renders_placeholder(self, tmp_path, capsys):
        import json

        path = tmp_path / "BENCH_perf.json"
        path.write_text(json.dumps({"history": []}))
        assert main(["perf", "history", "--json", str(path)]) == 0
        out = capsys.readouterr().out
        assert "(no entries yet)" in out
        assert "0 entries" in out and "repro bench" in out

    def test_missing_default_path_is_empty_table(self, tmp_path, capsys,
                                                 monkeypatch):
        # a fresh checkout has no BENCH_perf.json at all: the default
        # path (no --json) must render the placeholder, not exit 2.
        import repro.eval.bench as bench

        monkeypatch.setattr(bench, "default_bench_path",
                            lambda: tmp_path / "absent.json")
        assert main(["perf", "history"]) == 0
        assert "(no entries yet)" in capsys.readouterr().out

    def test_counters_flag_sets_env(self, monkeypatch, capsys):
        import os

        # seed a falsy value so monkeypatch restores the pre-test state
        # even though main() itself rewrites the variable
        monkeypatch.setenv("REPRO_COUNTERS", "0")
        assert main(["run", "table5", "--counters"]) == 0
        assert os.environ.get("REPRO_COUNTERS") == "1"


class TestCacheStatus:
    """Satellite: sub-second runs must not print ``elapsed 0.00s``."""

    def test_subsecond_uses_milliseconds(self):
        line = _cache_status(0.0042)
        assert line.startswith("[compile cache:")
        assert "4.2ms" in line
        assert "0.00s" not in line

    def test_seconds_keep_two_decimals(self):
        assert "elapsed 2.50s" in _cache_status(2.5)

    def test_microseconds(self):
        assert "250.0us" in _cache_status(2.5e-4)
