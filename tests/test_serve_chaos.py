"""Deterministic chaos: seeded failure injection against the job service.

The heavyweight acceptance configuration (20 jobs / 5 kills over two
benchmarks) runs in the ``serve-chaos`` CI job via ``repro serve chaos``;
here a scaled-down instance of the same harness keeps the invariants
under pytest: kills actually land (workers restart, victims retry), no
result is lost or computed twice, resumed results stay bit-identical to
an uninterrupted baseline, and identical seeds reproduce identical
journals.
"""

import pytest

from repro.serve import ChaosSchedule, Injection, compute_job_id
from repro.serve.chaos import build_workload, run_chaos_check


class TestChaosSchedule:
    def test_plan_is_deterministic(self):
        ids = [f"{i:016x}" for i in range(12)]
        a = ChaosSchedule.plan_kills(7, ids, kills=4, mid_checkpoint=1,
                                     steps=10, checkpoint_every=4)
        b = ChaosSchedule.plan_kills(7, ids, kills=4, mid_checkpoint=1,
                                     steps=10, checkpoint_every=4)
        assert a.plan == b.plan
        c = ChaosSchedule.plan_kills(8, ids, kills=4, mid_checkpoint=1,
                                     steps=10, checkpoint_every=4)
        assert a.plan != c.plan

    def test_plan_shape(self):
        ids = [f"{i:016x}" for i in range(12)]
        sched = ChaosSchedule.plan_kills(3, ids, kills=5, mid_checkpoint=2,
                                         hangs=1, steps=10, checkpoint_every=4)
        kinds = [inj.kind for inj in sched.plan.values()]
        assert kinds.count("kill_in_checkpoint") == 2
        assert kinds.count("kill") == 3
        assert kinds.count("hang") == 1
        assert sched.n_kills == 5
        # all injections target attempt 1 so retries always run clean
        assert all(attempt == 1 for (_j, attempt) in sched.plan)
        # kill steps dodge checkpoint boundaries (those die *in* the write)
        for inj in sched.plan.values():
            if inj.kind == "kill":
                assert 1 <= inj.at_step < 10 and inj.at_step % 4 != 0

    def test_too_many_injections_rejected(self):
        with pytest.raises(ValueError, match="at most one injection"):
            ChaosSchedule.plan_kills(0, ["a", "b"], kills=3)

    def test_mid_checkpoint_requires_a_checkpoint(self):
        ids = [f"{i:016x}" for i in range(4)]
        with pytest.raises(ValueError, match="at least one checkpoint"):
            ChaosSchedule.plan_kills(0, ids, kills=1, mid_checkpoint=1,
                                     steps=3, checkpoint_every=4)

    def test_injection_roundtrips_through_dict(self):
        inj = Injection("kill_in_checkpoint", at_step=2, hold_s=1.5)
        assert Injection.from_dict(inj.as_dict()) == inj


class TestWorkload:
    def test_jobs_distinct_and_reproducible(self):
        jobs = build_workload(["acoustic_4"], n_jobs=8)
        ids = [compute_job_id(j["kind"], j["params"]) for j in jobs]
        assert len(set(ids)) == 8
        again = build_workload(["acoustic_4"], n_jobs=8)
        assert jobs == again

    def test_benchmarks_round_robin(self):
        jobs = build_workload(["acoustic_4", "elastic_central_4"], n_jobs=4)
        physics = [j["params"]["physics"] for j in jobs]
        assert physics == ["acoustic", "elastic", "acoustic", "elastic"]


class TestMetricsIsolation:
    def test_run_workload_uses_a_private_registry(self, tmp_path):
        # baseline and chaos run in the same process: each run's counters
        # (and its metrics.json) must reflect that run only, or the
        # restarts >= kills invariant could pass off baseline noise.
        import json

        from repro.obs import get_metrics
        from repro.serve.chaos import _run_workload
        from repro.serve.queue import DONE

        jobs = [{"kind": "_test_sleep", "params": {"seconds": 0, "n": i}}
                for i in range(3)]
        before = get_metrics().snapshot()["counters"].get("serve.done", 0)
        out = _run_workload(tmp_path / "run", jobs, workers=1, seed=0,
                            chaos=None, max_wall_s=60.0)
        assert out["counts"][DONE] == 3
        assert out["metrics"]["counters"].get("serve.done", 0) == 3
        exported = json.loads((tmp_path / "run" / "metrics.json").read_text())
        assert exported["metrics"]["counters"].get("serve.done", 0) == 3
        # the process-global registry saw none of it
        after = get_metrics().snapshot()["counters"].get("serve.done", 0)
        assert after == before


@pytest.mark.slow
class TestChaosInvariants:
    """Scaled-down acceptance run: real workers, real kills, real solver."""

    def _check(self, tmp_path, **kw):
        defaults = dict(benchmarks=["acoustic_4"], n_jobs=6, kills=2,
                        mid_checkpoint=1, seed=11, steps=8, level=1, order=1,
                        checkpoint_every=3, workers=2,
                        workdir=tmp_path, max_wall_s=300.0)
        defaults.update(kw)
        return run_chaos_check(**defaults)

    def test_invariants_hold_under_kills(self, tmp_path):
        report = self._check(tmp_path / "a")
        assert report["violations"] == []
        assert report["chaos"]["worker_restarts"] >= 2
        # every chaos victim retried at least once
        victims = [e["job"] for e in report["schedule"]["plan"]
                   if e["kind"].startswith("kill")]
        assert victims and all(
            report["chaos"]["attempts"][v] >= 2 for v in victims)

    def test_same_seed_reproduces_journal_digest(self, tmp_path):
        a = self._check(tmp_path / "a")
        b = self._check(tmp_path / "b")
        assert a["violations"] == [] and b["violations"] == []
        assert a["chaos"]["journal_digest"] == b["chaos"]["journal_digest"]
        assert a["baseline"]["journal_digest"] == b["baseline"]["journal_digest"]
        # chaos adds retries, so its journal differs from the clean one
        assert a["chaos"]["journal_digest"] != a["baseline"]["journal_digest"]
