"""Compiler + runtime: plans execute, costs compose, shapes hold.

All compilations here use small element orders so the suite stays fast;
the order-7 paper geometry is exercised by the benchmark harness.
"""

import numpy as np
import pytest

from repro.core.compiler import CompiledBenchmark, WavePimCompiler
from repro.core.runtime import estimate_benchmark
from repro.pim.params import CHIP_CONFIGS

ORDER = 3


@pytest.fixture(scope="module")
def compiler():
    return WavePimCompiler(order=ORDER)


class TestCompile:
    def test_acoustic_naive(self, compiler):
        cb = compiler.compile("acoustic", 4, CHIP_CONFIGS["512MB"], "riemann")
        assert cb.plan.label == "N"
        st = cb.stage_times
        assert st.volume > 0 and st.integration > 0
        assert st.flux_fetch_minus > 0 and st.flux_compute_minus > 0

    def test_acoustic_expanded_volume_faster(self, compiler):
        naive = compiler.compile("acoustic", 4, CHIP_CONFIGS["512MB"], "riemann")
        expanded = compiler.compile("acoustic", 4, CHIP_CONFIGS["2GB"], "riemann")
        assert expanded.plan.expansion_parallel
        assert expanded.stage_times.volume < naive.stage_times.volume

    def test_elastic_heavier_than_acoustic(self, compiler):
        ac = compiler.compile("acoustic", 4, CHIP_CONFIGS["2GB"], "riemann")
        el = compiler.compile("elastic", 4, CHIP_CONFIGS["2GB"], "riemann")
        assert el.stage_times.volume > ac.stage_times.volume

    def test_riemann_flux_heavier_than_central(self, compiler):
        c = compiler.compile("elastic", 4, CHIP_CONFIGS["2GB"], "central")
        r = compiler.compile("elastic", 4, CHIP_CONFIGS["2GB"], "riemann")
        assert r.stage_times.flux_compute_minus > c.stage_times.flux_compute_minus

    def test_bus_fetch_slower_than_htree(self, compiler):
        h = compiler.compile("acoustic", 4, CHIP_CONFIGS["512MB"], "riemann")
        b = compiler.compile(
            "acoustic", 4, CHIP_CONFIGS["512MB"].with_interconnect("bus"), "riemann"
        )
        assert b.stage_times.flux_fetch_minus > h.stage_times.flux_fetch_minus
        # compute lanes are interconnect-independent
        assert b.stage_times.flux_compute_minus == pytest.approx(
            h.stage_times.flux_compute_minus
        )

    def test_batched_benchmark_compiles(self, compiler):
        cb = compiler.compile("elastic", 5, CHIP_CONFIGS["512MB"], "central")
        assert cb.plan.n_batches == 32
        assert cb.dram_bytes_per_step > 0

    def test_unbatched_no_dram(self, compiler):
        cb = compiler.compile("acoustic", 4, CHIP_CONFIGS["2GB"], "riemann")
        assert cb.dram_bytes_per_step == 0.0

    def test_names(self, compiler):
        cb = compiler.compile("elastic", 4, CHIP_CONFIGS["2GB"], "riemann")
        assert cb.name == "Elastic-Riemann_4"

    def test_energy_and_opcounts_recorded(self, compiler):
        cb = compiler.compile("acoustic", 4, CHIP_CONFIGS["512MB"], "riemann")
        assert sum(cb.stage_energy_per_element.values()) > 0
        assert cb.op_counts_per_element.get("mul", 0) > 0


class TestEstimate:
    def test_time_scales_with_steps(self, compiler):
        cb = compiler.compile("acoustic", 4, CHIP_CONFIGS["2GB"], "riemann")
        e1 = estimate_benchmark(cb, n_steps=100)
        e2 = estimate_benchmark(cb, n_steps=200)
        assert e2.time_s == pytest.approx(2 * e1.time_s)

    def test_pipelining_helps(self, compiler):
        cb = compiler.compile("acoustic", 4, CHIP_CONFIGS["2GB"], "riemann")
        piped = estimate_benchmark(cb, n_steps=64, pipelined=True)
        serial = estimate_benchmark(cb, n_steps=64, pipelined=False)
        ratio = piped.time_s / serial.time_s
        assert 0.4 < ratio < 1.0  # §7.5 regime (paper: 0.77)

    def test_process_scaling(self, compiler):
        cb = compiler.compile("acoustic", 4, CHIP_CONFIGS["2GB"], "riemann")
        base = estimate_benchmark(cb, n_steps=64, scale_to_12nm=False)
        scaled = estimate_benchmark(cb, n_steps=64, scale_to_12nm=True)
        assert scaled.time_s == pytest.approx(base.time_s / 3.81)
        assert scaled.energy_j == pytest.approx(base.energy_j / 2.0)

    def test_batching_adds_dram_time(self, compiler):
        cb = compiler.compile("acoustic", 5, CHIP_CONFIGS["2GB"], "riemann")
        est = estimate_benchmark(cb, n_steps=16)
        assert est.dram_time_per_step_s > 0
        assert est.hbm_energy_j > 0

    def test_bigger_chip_same_problem_more_energy(self, compiler):
        """§7.4: small problems on large chips waste static power."""
        small = estimate_benchmark(
            compiler.compile("acoustic", 4, CHIP_CONFIGS["2GB"], "riemann"), n_steps=64
        )
        big = estimate_benchmark(
            compiler.compile("acoustic", 4, CHIP_CONFIGS["16GB"], "riemann"), n_steps=64
        )
        assert big.time_s <= small.time_s * 1.01  # no slower...
        assert big.energy_j > small.energy_j  # ...but hungrier

    def test_energy_components_sum(self, compiler):
        cb = compiler.compile("elastic", 5, CHIP_CONFIGS["512MB"], "central")
        est = estimate_benchmark(cb, n_steps=16)
        total = (
            est.dynamic_energy_j + est.static_energy_j + est.hbm_energy_j + est.host_energy_j
        )
        assert est.energy_j == pytest.approx(total)

    def test_name_and_power(self, compiler):
        cb = compiler.compile("acoustic", 4, CHIP_CONFIGS["2GB"], "riemann")
        est = estimate_benchmark(cb, n_steps=16, scale_to_12nm=True)
        assert est.name == "PIM-2GB-12nm"
        assert est.power_w > 0
