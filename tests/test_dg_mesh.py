"""HexMesh: refinement levels, neighbor tables, slices, boundaries."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dg.mesh import BoundaryKind, HexMesh
from repro.dg.reference_element import ReferenceElement, opposite_face


class TestConstruction:
    def test_refinement_level_counts(self):
        for level in range(4):
            m = HexMesh.from_refinement_level(level)
            assert m.n_elements == (2**level) ** 3

    def test_paper_levels(self):
        assert HexMesh.from_refinement_level(4).n_elements == 4096
        assert HexMesh.from_refinement_level(5).n_elements == 32768

    def test_rejects_bad_m(self):
        with pytest.raises(ValueError):
            HexMesh(m=0)

    def test_rejects_negative_level(self):
        with pytest.raises(ValueError):
            HexMesh.from_refinement_level(-1)

    def test_rejects_bad_boundary(self):
        with pytest.raises(ValueError):
            HexMesh(m=2, boundary="weird")

    def test_h(self):
        m = HexMesh(m=4, extent=2.0)
        assert m.h == pytest.approx(0.5)


class TestIndexing:
    def test_roundtrip(self):
        m = HexMesh(m=3)
        for e in range(m.n_elements):
            assert m.element_id(*m.element_index(e)) == e

    def test_out_of_range(self):
        m = HexMesh(m=2)
        with pytest.raises(IndexError):
            m.element_id(2, 0, 0)
        with pytest.raises(IndexError):
            m.element_index(8)

    def test_center_and_origin(self):
        m = HexMesh(m=2, extent=2.0)
        assert np.allclose(m.element_origin(0), [0, 0, 0])
        assert np.allclose(m.element_center(0), [0.5, 0.5, 0.5])
        e = m.element_id(1, 1, 1)
        assert np.allclose(m.element_center(e), [1.5, 1.5, 1.5])

    def test_node_coordinates_cover_domain(self):
        m = HexMesh(m=2, extent=1.0)
        el = ReferenceElement(2)
        xyz = m.node_coordinates(el.node_coords)
        assert xyz.shape == (8, 27, 3)
        assert xyz.min() == pytest.approx(0.0)
        assert xyz.max() == pytest.approx(1.0)


class TestNeighbors:
    def test_periodic_symmetry(self):
        """e's neighbor across f sees e back across the opposite face."""
        m = HexMesh(m=4)
        for e in range(m.n_elements):
            for f in range(6):
                nbr = m.neighbors[e, f]
                assert m.neighbors[nbr, opposite_face(f)] == e

    @given(st.integers(min_value=2, max_value=6))
    @settings(max_examples=5, deadline=None)
    def test_periodic_every_face_paired(self, mm):
        m = HexMesh(m=mm)
        assert np.all(m.neighbors >= 0)

    def test_nonperiodic_boundaries(self):
        m = HexMesh(m=2, boundary=BoundaryKind.FREE_SURFACE)
        # corner element 0 has three boundary faces (-x, -y, -z)
        assert m.neighbors[0, 0] == -1
        assert m.neighbors[0, 2] == -1
        assert m.neighbors[0, 4] == -1
        assert m.neighbors[0, 1] == 1

    def test_boundary_count(self):
        m = HexMesh(m=3, boundary=BoundaryKind.ABSORBING)
        n_boundary = int(np.sum(m.neighbors < 0))
        assert n_boundary == 6 * 3 * 3  # 6 faces x m^2 each

    def test_periodic_wrap(self):
        m = HexMesh(m=4)
        e = m.element_id(0, 2, 2)
        assert m.neighbors[e, 0] == m.element_id(3, 2, 2)

    def test_interfaces_unique_and_complete(self):
        m = HexMesh(m=2)
        inter = m.interfaces()
        # periodic m^3 mesh: 3 axes x m^3 interfaces
        assert len(inter) == 3 * m.n_elements
        seen = set()
        for e, f, nbr in inter:
            key = (int(e), int(f))
            assert key not in seen
            seen.add(key)


class TestSlices:
    def test_slice_sizes(self):
        m = HexMesh(m=4)
        for axis in range(3):
            for s in range(4):
                assert len(m.slice_elements(s, axis)) == 16

    def test_slices_partition(self):
        m = HexMesh(m=3)
        all_ids = np.sort(np.concatenate([m.slice_elements(s, 1) for s in range(3)]))
        assert np.array_equal(all_ids, np.arange(m.n_elements))

    def test_slice_out_of_range(self):
        with pytest.raises(IndexError):
            HexMesh(m=2).slice_elements(2)

    def test_y_slice_is_constant_iy(self):
        m = HexMesh(m=4)
        for e in m.slice_elements(2, axis=1):
            assert m.element_index(int(e))[1] == 2
