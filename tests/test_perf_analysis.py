"""Static performance analysis (``repro.analysis.perf``, DESIGN.md §15).

Three layers under test:

* the cost-bound machinery (``dependency_graph``/``earliest_starts``/
  ``critical_path_span``/``cost_bounds``) must be *sound* — on every
  paper benchmark the static lower bound brackets the measured makespan
  from below and the occupancy prediction matches the hardware counters
  to float fold-order tolerance;
* each PF anti-pattern finding fires on a hand-built trigger program and
  stays silent on the clean variant;
* the surfaces: ``repro perf audit`` (CLI + JSON schema) and the bench
  gap gate (``regression_failures``).
"""

import json

import numpy as np
import pytest

from repro.analysis.perf import (
    PerfOptions,
    _dead_segments,
    _overfencing_barriers,
    audit_program,
    cost_bounds,
    emission_timings,
    measure_plan,
)
from repro.pim.chip import PimChip
from repro.pim.executor import ChipExecutor
from repro.pim.isa import Instruction, Opcode, barrier
from repro.pim.params import CHIP_CONFIGS
from repro.pim.schedule import (
    critical_path_span,
    dependency_graph,
    earliest_starts,
    sim_items,
)

BENCHMARK_KEYS = [
    "acoustic_4", "acoustic_5",
    "elastic_central_4", "elastic_central_5",
    "elastic_riemann_4", "elastic_riemann_5",
]


def codes(audit):
    return [f.code for f in audit.findings]


def arith(block=0, rows=(0, 4), dst=3, src1=1, src2=2, tag="volume"):
    return Instruction(Opcode.ADD, block=block, rows=rows, dst=dst,
                       src1=src1, src2=src2, tag=tag)


def bcast(block=0, rows=(0, 4), dst=1, value=1.0, tag="setup"):
    return Instruction(Opcode.BROADCAST, block=block, rows=rows, dst=dst,
                       value=value, tag=tag)


def transfer(block=1, src_block=0, rows=(0, 4), dst=5, src1=5, words=1,
             tag="flux:fetch"):
    return Instruction(Opcode.TRANSFER, block=block, src_block=src_block,
                       rows=rows, dst=dst, src1=src1, words=words, tag=tag)


@pytest.fixture(scope="module")
def ex():
    return ChipExecutor(PimChip(CHIP_CONFIGS["512MB"]))


@pytest.fixture(scope="module")
def ex_bus():
    return ChipExecutor(
        PimChip(CHIP_CONFIGS["512MB"].with_interconnect("bus"))
    )


# --------------------------------------------------------------------- #
# dependency graph + typed-latency span
# --------------------------------------------------------------------- #


class TestSpanMachinery:
    def test_dependency_graph_shape(self, ex):
        prog = [bcast(dst=1), bcast(dst=2), arith(dst=3, src1=1, src2=2),
                arith(dst=4, src1=3, src2=3)]
        plan = ex.lower(prog)
        g = dependency_graph(plan.instructions)
        assert g.n == len(sim_items(ex, plan)) == 4
        assert g.preds == [[], [], [0, 1], [3 - 1]]
        # succs is the exact transpose of preds
        assert sorted(g.succs[0]) == [2] and sorted(g.succs[2]) == [3]
        assert g.n_edges == 3

    def test_serial_chain_span_is_sum(self, ex):
        prog = [bcast(dst=1), arith(dst=3, src1=1, src2=1),
                arith(dst=4, src1=3, src2=3)]
        plan = ex.lower(prog)
        est = earliest_starts(ex, plan)
        assert np.all(np.diff(est) > 0)  # strictly serializing chain
        items = sim_items(ex, plan)
        durs = [it[2] for it in items]  # ("c", block, dur)
        assert critical_path_span(ex, plan) == pytest.approx(sum(durs))

    def test_parallel_blocks_halve_span(self, ex):
        serial = [bcast(block=0, dst=1),
                  arith(block=0, dst=3, src1=1, src2=1)]
        wide = serial + [bcast(block=1, dst=1),
                         arith(block=1, dst=3, src1=1, src2=1)]
        span_serial = critical_path_span(ex, ex.lower(serial))
        span_wide = critical_path_span(ex, ex.lower(wide))
        b = cost_bounds(ex, ex.lower(wide))
        # the second block's chain is independent: span does not grow,
        # work doubles
        assert span_wide == pytest.approx(span_serial)
        assert b.work_s == pytest.approx(2 * span_serial, rel=1e-6)

    def test_bounds_internal_invariants(self, ex):
        prog = [bcast(dst=1), bcast(dst=2), arith(dst=3, src1=1, src2=2)]
        plan = ex.lower(prog)
        b = cost_bounds(ex, plan)
        assert 0.0 < b.span_s <= b.work_s
        assert b.makespan_lower_bound_s == pytest.approx(
            max(b.span_s, max(b.resource_bounds_s.values()))
        )
        assert b.n_instructions == len(plan.instructions)
        assert b.predicted_binding_resource in (
            {"span"} | set(b.resource_bounds_s)
        )
        d = b.as_dict()
        assert json.dumps(d)
        assert d["makespan_lower_bound_s"] == b.makespan_lower_bound_s


# --------------------------------------------------------------------- #
# soundness on the paper benchmarks (predict-then-measure)
# --------------------------------------------------------------------- #


class TestBenchmarkSoundness:
    @pytest.mark.parametrize("key", BENCHMARK_KEYS)
    def test_bounds_bracket_reality(self, key):
        from repro.analysis.programs import build_check_program
        from repro.workloads.benchmarks import BENCHMARKS

        spec = BENCHMARKS[key]
        checked = build_check_program(
            spec.physics, spec.refinement_level, chip="2GB",
            flux_kind=spec.flux_kind, order=3, interconnect="htree",
        )
        ex = ChipExecutor(checked.context.chip)
        audit = audit_program(checked.program, ex,
                              block_rows=checked.context.block_rows)
        # the bound is a true lower bound and the audit is clean: no
        # PF006 (soundness/occupancy), no anti-pattern warnings.
        assert audit.optimality_gap >= 1.0 - 1e-9
        assert (audit.bounds.makespan_lower_bound_s
                <= audit.measured_makespan_s * (1 + 1e-9))
        assert audit.findings == []
        assert audit.bounds.n_edges > 0
        assert audit.measured_binding_resource != "idle"

    def test_occupancy_prediction_matches_counters(self, ex):
        # the PF006 cross-check must also hold on a hand-built stream
        prog = [bcast(dst=1), bcast(dst=2), arith(dst=3, src1=1, src2=2),
                transfer(block=1, src_block=0, dst=5, src1=3)]
        plan = ex.lower(prog)
        b = cost_bounds(ex, plan)
        _t, counters = measure_plan(ex, plan)
        assert counters.compare_occupancy(b.predicted_occupancy_s) == []

    def test_compare_occupancy_flags_divergence(self, ex):
        prog = [bcast(dst=1), arith(dst=3, src1=1, src2=1)]
        plan = ex.lower(prog)
        b = cost_bounds(ex, plan)
        _t, counters = measure_plan(ex, plan)
        wrong = dict(b.predicted_occupancy_s)
        some = next(iter(wrong))
        wrong[some] *= 2.0
        wrong["block:999"] = 1.0  # resource the run never touched
        msgs = counters.compare_occupancy(wrong)
        assert len(msgs) == 2
        assert any(some in m for m in msgs)
        assert any("block:999" in m for m in msgs)


# --------------------------------------------------------------------- #
# anti-pattern findings (one trigger + one clean program per code)
# --------------------------------------------------------------------- #


class TestAntiPatterns:
    def test_pf001_gap_over_tolerance(self, ex):
        prog = [bcast(dst=1), arith(dst=3, src1=1, src2=1)]
        tight = audit_program(prog, ex,
                              options=PerfOptions(gap_tolerance=0.5))
        assert "PF001" in codes(tight)
        default = audit_program(prog, ex)
        assert "PF001" not in codes(default)

    def test_pf002_overfencing_barrier(self, ex):
        fenced = [bcast(block=0, dst=1), barrier(), bcast(block=1, dst=1)]
        audit = audit_program(fenced, ex)
        hits = [f for f in audit.findings if f.code == "PF002"]
        assert [f.index for f in hits] == [1]
        # a dependency crossing the fence makes it load-bearing
        needed = [bcast(block=0, dst=1), barrier(),
                  arith(block=0, dst=3, src1=1, src2=1)]
        assert _overfencing_barriers(needed) == []

    def test_pf003_serialized_transfer(self, ex_bus):
        prog = [bcast(block=0, dst=5), bcast(block=2, dst=5), barrier(),
                transfer(block=1, src_block=0),
                transfer(block=3, src_block=2)]
        # the second transfer queues behind the first on the shared bus
        audit = audit_program(
            prog, ex_bus,
            options=PerfOptions(queue_factor=0.0, queue_floor_s=0.0),
        )
        hits = [f for f in audit.findings if f.code == "PF003"]
        assert [f.index for f in hits] == [4]
        # default thresholds tolerate one bus conflict
        assert "PF003" not in codes(audit_program(prog, ex_bus))

    def test_emission_timings_queue_free_when_unshared(self, ex):
        prog = [bcast(block=0, dst=5), barrier(),
                transfer(block=1, src_block=0)]
        plan = ex.lower(prog)
        starts, queues = emission_timings(ex, plan)
        assert np.all(queues >= 0.0) and np.all(starts >= 0.0)
        assert float(queues[-1]) == pytest.approx(0.0, abs=1e-15)

    def test_pf004_dead_segment(self, ex):
        prog = [bcast(dst=5, value=1.0), barrier(),
                bcast(dst=5, value=2.0),
                arith(dst=6, src1=5, src2=5)]
        audit = audit_program(prog, ex)
        hits = [f for f in audit.findings if f.code == "PF004"]
        assert [f.index for f in hits] == [0]
        # reading col 5 between the writes keeps the first segment live
        live = [bcast(dst=5, value=1.0), barrier(),
                arith(dst=6, src1=5, src2=5), barrier(),
                bcast(dst=5, value=2.0)]
        plan = ex.lower(live)
        assert _dead_segments(live, plan,
                              ex.chip.config.block_rows) == []

    def test_pf005_degenerate_vectorization(self, ex):
        narrow = [bcast(dst=1), bcast(dst=2), arith(dst=3, src1=1, src2=2)]
        audit = audit_program(narrow, ex)
        assert "PF005" in codes(audit)
        # widening the option's floor silences it
        wide_ok = audit_program(
            narrow, ex, options=PerfOptions(narrow_width=1))
        assert "PF005" not in codes(wide_ok)

    def test_findings_carry_passname(self, ex):
        audit = audit_program([bcast(dst=1), barrier(), bcast(block=1, dst=1)],
                              ex)
        assert audit.findings and all(
            f.passname == "perf" for f in audit.findings)


# --------------------------------------------------------------------- #
# surfaces: bench gap gate, CLI, JSON schemas
# --------------------------------------------------------------------- #


class TestBenchGapGate:
    def entry(self, gap):
        return {"optimality_gap": gap}

    def test_gap_regression_fails(self):
        from repro.eval.bench import GAP_TOLERANCE, regression_failures

        msgs = regression_failures(self.entry(GAP_TOLERANCE * 1.5))
        assert any("optimality_gap" in m for m in msgs)

    def test_unsound_gap_fails(self):
        from repro.eval.bench import regression_failures

        msgs = regression_failures(self.entry(0.5))
        assert any("unsound" in m for m in msgs)

    def test_healthy_and_unmeasured_pass(self):
        from repro.eval.bench import regression_failures

        assert regression_failures(self.entry(1.5)) == []
        assert regression_failures(self.entry(None)) == []

    def test_history_summary_prefers_small_gaps(self):
        from repro.eval.bench import history_summary

        doc = {"history": [{"optimality_gap": 2.0},
                           {"optimality_gap": 1.2}]}
        s = history_summary(doc)["optimality_gap"]
        assert s["best"] == 1.2 and s["latest"] == 1.2


class TestPerfAuditCLI:
    def test_audit_clean_with_json_report(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "audit.json"
        assert main(["perf", "audit", "acoustic_4", "--order", "2",
                     "--interconnect", "htree", "--strict",
                     "--json", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert set(doc) == {"kind", "schema", "strict", "errors",
                            "warnings", "benchmarks"}
        assert doc["kind"] == "repro-perf-audit" and doc["schema"] == 1
        assert doc["errors"] == 0 and doc["warnings"] == 0
        entry = doc["benchmarks"][0]
        assert entry["benchmark"] == "acoustic_4"
        assert entry["optimality_gap"] >= 1.0
        assert entry["makespan_lower_bound_s"] > 0.0
        assert entry["findings"] == []
        text = capsys.readouterr().out
        assert "gap=" in text and "audited 1 program" in text

    def test_unknown_benchmark_exits_2(self, capsys):
        from repro.__main__ import main

        assert main(["perf", "audit", "nope"]) == 2

    def test_bench_entry_carries_gap_fields(self, ex):
        # the bench surface computes the same fields from the same bound
        from repro.analysis.perf import cost_bounds as cb
        from repro.pim.schedule import schedule_plan

        prog = [bcast(dst=1), bcast(dst=2), arith(dst=3, src1=1, src2=2)]
        plan = ex.lower(prog)
        ex.reset_clocks()
        sched = schedule_plan(ex, plan)
        bounds = cb(ex, plan)
        gap = (sched.schedule_stats["scheduled_makespan_s"]
               / bounds.makespan_lower_bound_s)
        assert gap >= 1.0 - 1e-9
