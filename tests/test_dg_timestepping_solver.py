"""LSRK45 integrator, CFL, sources, receivers, WaveSolver driver."""

import numpy as np
import pytest

from repro.dg import (
    LSRK45,
    RickerSource,
    SolverConfig,
    WaveSolver,
    cfl_timestep,
    ricker_wavelet,
)
from repro.dg.solver import Receiver


class TestLSRK45:
    def test_coefficients_consistency(self):
        """Low-storage RK consistency: sum of B = 1 (first order cond.)."""
        # For low-storage schemes sum(B_i * prod of A factors) gives the
        # classical weights; the simplest verifiable condition is exact
        # integration of dq/dt = const.
        stepper = LSRK45(lambda q: np.ones_like(q))
        q = np.zeros(3)
        stepper.step(q, 0.0, 0.1)
        assert np.allclose(q, 0.1)

    def test_exact_on_linear_time(self):
        stepper = LSRK45(lambda q, t: np.full_like(q, 2.0 * t))
        q = np.zeros(1)
        t = 0.0
        for _ in range(10):
            stepper.step(q, t, 0.1)
            t += 0.1
        assert q[0] == pytest.approx(t * t, rel=1e-12)

    def test_fourth_order_convergence(self):
        """Exponential decay integrated with halving dt: error ~ dt^4."""

        def rhs(q):
            return -q

        errs = []
        for n in (10, 20, 40):
            q = np.array([1.0])
            stepper = LSRK45(rhs)
            dt = 1.0 / n
            for _ in range(n):
                stepper.step(q, 0.0, dt)
            errs.append(abs(q[0] - np.exp(-1.0)))
        r1 = errs[0] / errs[1]
        r2 = errs[1] / errs[2]
        assert 12 < r1 < 20  # ~2^4
        assert 12 < r2 < 20

    def test_integrate_callback(self):
        seen = []
        stepper = LSRK45(lambda q: -q)
        q = np.array([1.0])
        stepper.integrate(q, 0.0, 0.01, 5, callback=lambda s, t, st: seen.append((s, t)))
        assert len(seen) == 5
        assert seen[-1][1] == pytest.approx(0.05)

    def test_oscillator_energy_stable(self):
        """Harmonic oscillator: |q| stays ~1 over many steps (A-stability
        region contains the imaginary axis segment used)."""

        def rhs(q):
            return np.array([q[1], -q[0]])

        stepper = LSRK45(rhs)
        q = np.array([1.0, 0.0])
        for _ in range(200):
            stepper.step(q, 0.0, 0.05)
        assert np.hypot(*q) == pytest.approx(1.0, abs=1e-6)


class TestCfl:
    def test_scaling(self):
        assert cfl_timestep(0.1, 2.0, 3) == pytest.approx(0.5 * 0.1 / (2.0 * 16))

    def test_monotone_in_order(self):
        dts = [cfl_timestep(0.1, 1.0, n) for n in (1, 2, 4, 8)]
        assert all(a > b for a, b in zip(dts, dts[1:]))

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            cfl_timestep(0.0, 1.0, 2)
        with pytest.raises(ValueError):
            cfl_timestep(0.1, -1.0, 2)
        with pytest.raises(ValueError):
            cfl_timestep(0.1, 1.0, 0)


class TestRicker:
    def test_peak_at_delay(self):
        f = 10.0
        t = np.linspace(0, 0.4, 4001)
        w = ricker_wavelet(t, f)
        assert t[np.argmax(w)] == pytest.approx(1.5 / f, abs=1e-3)

    def test_peak_value_one(self):
        assert ricker_wavelet(1.5 / 10.0, 10.0) == pytest.approx(1.0)

    def test_zero_mean(self):
        t = np.linspace(0, 1.0, 20001)
        w = ricker_wavelet(t, 10.0)
        assert abs(np.trapezoid(w, t)) < 1e-6

    def test_rejects_bad_frequency(self):
        with pytest.raises(ValueError):
            ricker_wavelet(0.0, -5.0)


class TestWaveSolver:
    def test_bad_physics(self):
        with pytest.raises(ValueError):
            SolverConfig(physics="quantum")

    def test_state_shapes(self):
        s = WaveSolver(SolverConfig(physics="acoustic", refinement_level=1, order=2))
        assert s.state.shape == (4, 8, 27)
        s = WaveSolver(SolverConfig(physics="elastic", refinement_level=1, order=2))
        assert s.state.shape == (9, 8, 27)

    def test_set_state_validates(self):
        s = WaveSolver(SolverConfig(refinement_level=1, order=2))
        with pytest.raises(ValueError):
            s.set_state(np.zeros((4, 8, 26)))

    def test_source_injects_energy(self):
        s = WaveSolver(SolverConfig(refinement_level=1, order=2, flux="riemann"))
        s.add_source(RickerSource(position=(0.5, 0.5, 0.5), peak_frequency=4.0))
        assert s.energy() == 0.0
        s.run(10)
        assert s.energy() > 0.0

    def test_receiver_records(self):
        s = WaveSolver(SolverConfig(refinement_level=1, order=2))
        s.add_source(RickerSource(position=(0.5, 0.5, 0.5), peak_frequency=4.0))
        r = Receiver(position=(0.25, 0.5, 0.5), variable=0)
        s.add_receiver(r)
        s.run(8)
        assert len(r.trace) == 8

    def test_run_advances_time(self):
        s = WaveSolver(SolverConfig(refinement_level=1, order=2))
        dt = s.dt
        s.run(4)
        assert s.time == pytest.approx(4 * dt)
        assert s.steps_taken == 4

    def test_explosive_elastic_source(self):
        s = WaveSolver(SolverConfig(physics="elastic", refinement_level=1, order=2))
        s.add_source(
            RickerSource(position=(0.5, 0.5, 0.5), peak_frequency=4.0, explosive=True)
        )
        s.run(5)
        # isotropic injection: normal stresses nonzero, energy positive
        assert s.energy() > 0
        assert np.max(np.abs(s.state[0])) > 0

    def test_central_flux_energy_bounded_free_run(self):
        """Periodic + central flux: energy conserved to RK dissipation."""
        s = WaveSolver(SolverConfig(refinement_level=1, order=3, flux="central"))
        rng = np.random.default_rng(0)
        state = 0.01 * rng.standard_normal(s.state.shape)
        s.set_state(state)
        e0 = s.energy()
        s.run(20)
        assert abs(s.energy() - e0) / e0 < 1e-3

    def test_riemann_flux_decays_free_run(self):
        s = WaveSolver(SolverConfig(refinement_level=1, order=3, flux="riemann"))
        rng = np.random.default_rng(0)
        s.set_state(0.01 * rng.standard_normal(s.state.shape))
        e0 = s.energy()
        s.run(20)
        assert s.energy() < e0
