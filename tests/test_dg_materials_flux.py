"""Materials and interface flux solvers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dg.flux import (
    acoustic_central,
    acoustic_riemann,
    elastic_central,
    elastic_riemann,
)
from repro.dg.materials import (
    AcousticMaterial,
    ElasticMaterial,
    layered_acoustic,
    layered_elastic,
)
from repro.dg.mesh import HexMesh

pos = st.floats(min_value=0.1, max_value=10.0, allow_nan=False)
val = st.floats(min_value=-5.0, max_value=5.0, allow_nan=False)


class TestAcousticMaterial:
    def test_homogeneous(self):
        m = AcousticMaterial.homogeneous(8, kappa=4.0, rho=1.0)
        assert m.n_elements == 8
        assert np.allclose(m.c, 2.0)
        assert np.allclose(m.impedance, 2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            AcousticMaterial.homogeneous(4, kappa=-1.0)

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            AcousticMaterial(kappa=np.ones(3), rho=np.ones(3)).__class__(
                kappa=np.ones((3, 1)), rho=np.ones(3)
            )

    def test_host_precomputed_keys(self):
        m = AcousticMaterial.homogeneous(2)
        pre = m.host_precomputed()
        assert set(pre) >= {"c", "impedance", "inv_rho"}

    def test_layered(self):
        mesh = HexMesh(m=2, extent=1.0)
        mat = layered_acoustic(mesh, [0.5], kappas=[1.0, 4.0], rhos=[1.0, 1.0])
        # bottom layer (z<0.5) has c=1, top has c=2
        for e in range(mesh.n_elements):
            z = mesh.element_center(e)[2]
            assert mat.c[e] == pytest.approx(1.0 if z < 0.5 else 2.0)

    def test_layered_wrong_lengths(self):
        mesh = HexMesh(m=2)
        with pytest.raises(ValueError):
            layered_acoustic(mesh, [0.5], kappas=[1.0], rhos=[1.0])


class TestElasticMaterial:
    def test_speeds(self):
        m = ElasticMaterial.homogeneous(4, lam=2.0, mu=1.0, rho=1.0)
        assert np.allclose(m.cp, 2.0)
        assert np.allclose(m.cs, 1.0)
        assert np.allclose(m.zp, 2.0)
        assert np.allclose(m.zs, 1.0)

    def test_fluid_limit(self):
        m = ElasticMaterial.homogeneous(4, lam=1.0, mu=0.0, rho=1.0)
        assert np.allclose(m.cs, 0.0)
        assert m.max_speed == pytest.approx(1.0)

    def test_negative_mu_rejected(self):
        with pytest.raises(ValueError):
            ElasticMaterial.homogeneous(4, mu=-0.1)

    def test_layered(self):
        mesh = HexMesh(m=2)
        mat = layered_elastic(mesh, [0.5], lams=[1, 2], mus=[1, 2], rhos=[1, 1])
        assert len(np.unique(mat.lam)) == 2


class TestAcousticFlux:
    def test_central_is_average(self):
        p, vn = acoustic_central(1.0, 3.0, -1.0, 5.0)
        assert p == 2.0 and vn == 2.0

    def test_riemann_consistency(self):
        """Equal states -> star state equals that state (consistency)."""
        p, vn = acoustic_riemann(2.0, 2.0, 0.5, 0.5, 1.5, 1.5)
        assert p == pytest.approx(2.0)
        assert vn == pytest.approx(0.5)

    def test_riemann_matches_central_for_equal_impedance_symmetric_jump(self):
        """With Z-=Z+ the star mean terms match the central average."""
        z = 2.0
        p_s, vn_s = acoustic_riemann(1.0, 3.0, 0.0, 0.0, z, z)
        assert p_s == pytest.approx(2.0)  # average
        assert vn_s == pytest.approx((1.0 - 3.0) / (2 * z))  # upwind term

    @given(val, val, val, val, pos, pos)
    @settings(max_examples=100, deadline=None)
    def test_riemann_characteristics_preserved(self, pm, pp, vm, vp, zm, zp):
        """w+ = p + Z- vn is preserved from the left; w- from the right."""
        p_s, vn_s = acoustic_riemann(pm, pp, vm, vp, zm, zp)
        assert p_s + zm * vn_s == pytest.approx(pm + zm * vm, abs=1e-8, rel=1e-8)
        assert p_s - zp * vn_s == pytest.approx(pp - zp * vp, abs=1e-8, rel=1e-8)


class TestElasticFlux:
    def _states(self, seed=0):
        rng = np.random.default_rng(seed)
        t_m, t_p = rng.standard_normal((2, 3, 4))
        v_m, v_p = rng.standard_normal((2, 3, 4))
        return t_m, t_p, v_m, v_p

    def test_central(self):
        t_m, t_p, v_m, v_p = self._states()
        t_s, v_s = elastic_central(t_m, t_p, v_m, v_p)
        assert np.allclose(t_s, 0.5 * (t_m + t_p))
        assert np.allclose(v_s, 0.5 * (v_m + v_p))

    def test_riemann_consistency(self):
        t_m, _, v_m, _ = self._states()
        n = np.array([1.0, 0.0, 0.0])
        t_s, v_s = elastic_riemann(t_m, t_m, v_m, v_m, n, 2.0, 2.0, 1.0, 1.0)
        assert np.allclose(t_s, t_m, atol=1e-12)
        assert np.allclose(v_s, v_m, atol=1e-12)

    def test_riemann_normal_characteristics(self):
        t_m, t_p, v_m, v_p = self._states(3)
        n = np.array([0.0, 1.0, 0.0])
        zp_m, zp_p = 2.0, 3.0
        t_s, v_s = elastic_riemann(t_m, t_p, v_m, v_p, n, zp_m, zp_p, 1.0, 1.5)
        tn_s = np.sum(t_s * n[:, None], axis=0)
        vn_s = np.sum(v_s * n[:, None], axis=0)
        tn_m = np.sum(t_m * n[:, None], axis=0)
        vn_m = np.sum(v_m * n[:, None], axis=0)
        tn_p = np.sum(t_p * n[:, None], axis=0)
        vn_p = np.sum(v_p * n[:, None], axis=0)
        # with p = -tn: p + Z vn preserved from the minus side
        assert np.allclose(-tn_s + zp_m * vn_s, -tn_m + zp_m * vn_m, atol=1e-10)
        assert np.allclose(-tn_s - zp_p * vn_s, -tn_p - zp_p * vn_p, atol=1e-10)

    def test_fluid_fluid_no_shear(self):
        t_m, t_p, v_m, v_p = self._states(7)
        n = np.array([1.0, 0.0, 0.0])
        t_s, v_s = elastic_riemann(t_m, t_p, v_m, v_p, n, 2.0, 2.0, 0.0, 0.0)
        # tangential traction must vanish
        tt = t_s - np.sum(t_s * n[:, None], axis=0) * n[:, None]
        assert np.allclose(tt, 0.0, atol=1e-12)

    def test_broadcast_normal_shapes(self):
        t_m, t_p, v_m, v_p = self._states(9)
        n = np.array([0.0, 0.0, 1.0])
        t_s, v_s = elastic_riemann(t_m, t_p, v_m, v_p, n, 1.0, 2.0, 0.5, 0.7)
        assert t_s.shape == (3, 4) and v_s.shape == (3, 4)
