"""Shared fixtures: small meshes/elements keep the functional tests fast."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dg import (
    AcousticMaterial,
    AcousticOperator,
    ElasticMaterial,
    ElasticOperator,
    HexMesh,
    ReferenceElement,
)
from repro.pim.chip import PimChip
from repro.pim.params import CHIP_CONFIGS


@pytest.fixture(scope="session")
def elem2() -> ReferenceElement:
    """Order-2 element (27 nodes) — cheap but non-trivial."""
    return ReferenceElement(2)


@pytest.fixture(scope="session")
def elem3() -> ReferenceElement:
    return ReferenceElement(3)


@pytest.fixture(scope="session")
def mesh_l1() -> HexMesh:
    """Level-1 periodic mesh: 8 elements."""
    return HexMesh.from_refinement_level(1)


@pytest.fixture(scope="session")
def mesh_l2() -> HexMesh:
    return HexMesh.from_refinement_level(2)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture()
def het_acoustic(mesh_l1, rng) -> AcousticMaterial:
    """Heterogeneous acoustic material on the level-1 mesh."""
    k = mesh_l1.n_elements
    return AcousticMaterial(
        kappa=rng.uniform(1.0, 2.0, k), rho=rng.uniform(0.5, 1.5, k)
    )


@pytest.fixture()
def het_elastic(mesh_l1, rng) -> ElasticMaterial:
    k = mesh_l1.n_elements
    return ElasticMaterial(
        lam=rng.uniform(1.0, 2.0, k),
        mu=rng.uniform(0.5, 1.5, k),
        rho=rng.uniform(0.8, 1.2, k),
    )


@pytest.fixture()
def chip_512():
    return PimChip(CHIP_CONFIGS["512MB"])


def rel_err(a, b) -> float:
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    denom = max(1e-300, float(np.max(np.abs(b))))
    return float(np.max(np.abs(a - b))) / denom
