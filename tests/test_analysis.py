"""The static program checker (``repro.analysis``).

Each checker pass is proven to *fire* on a hand-built known-bad program
(asserting the exact finding code) and to stay silent on the clean
variant; the six paper benchmarks must check clean under ``repro check
--strict``; and the opt-in ``verify=True`` paths of the executor and the
compiler must reject broken streams.
"""

import json

import numpy as np
import pytest

from repro.analysis import (
    ERROR,
    FINDING_CODES,
    WARNING,
    CheckContext,
    CheckOptions,
    Finding,
    ProgramCheckError,
    accesses,
    check_benchmark,
    check_program,
    raise_on_errors,
)
from repro.pim.chip import PimChip
from repro.pim.executor import ChipExecutor
from repro.pim.isa import Instruction, Opcode, barrier
from repro.pim.params import CHIP_CONFIGS


def codes(findings):
    return {f.code for f in findings}


def ctx(**kw):
    defaults = dict(n_blocks=8, block_rows=1024, row_words=32)
    defaults.update(kw)
    return CheckContext(**defaults)


def arith(block=0, rows=(0, 4), dst=3, src1=1, src2=2, op=Opcode.ADD, tag="volume"):
    return Instruction(op, block=block, rows=rows, dst=dst, src1=src1,
                       src2=src2, tag=tag)


def bcast(block=0, rows=(0, 4), dst=1, value=1.0, tag="setup"):
    return Instruction(Opcode.BROADCAST, block=block, rows=rows, dst=dst,
                       value=value, tag=tag)


def transfer(block=1, src_block=0, rows=(0, 4), src_rows=None, dst=5, src1=5,
             words=1, tag="flux:fetch"):
    return Instruction(Opcode.TRANSFER, block=block, src_block=src_block,
                       rows=rows, src_rows=src_rows, dst=dst, src1=src1,
                       words=words, tag=tag)


# --------------------------------------------------------------------- #
# finding model
# --------------------------------------------------------------------- #


class TestFindingModel:
    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            Finding("XX999", "nope")

    def test_bad_severity_rejected(self):
        with pytest.raises(ValueError):
            Finding("DF001", "msg", severity="fatal")

    def test_format_and_dict(self):
        f = Finding("LY001", "row 2000", index=7, block=3, tag="volume",
                    passname="layout")
        line = f.format()
        assert "LY001" in line and "inst 7" in line and "block 3" in line
        d = f.as_dict()
        assert d["code"] == "LY001" and d["severity"] == ERROR
        assert json.dumps(d)  # serializable

    def test_catalogue_covers_all_passes(self):
        prefixes = {c[:2] for c in FINDING_CODES}
        # RL* are the repo-invariant lint rules (scripts/lint_repo.py),
        # registered here so the catalogue is the one namespace authority.
        assert prefixes == {"DF", "LY", "TR", "PH", "HZ", "FT", "PL", "PF",
                            "RL"}


# --------------------------------------------------------------------- #
# dataflow pass (DF*)
# --------------------------------------------------------------------- #


class TestDataflowPass:
    def test_df001_read_before_write_strict_mode(self):
        strict = ctx(options=CheckOptions(assume_zero_init=False))
        findings = check_program([arith()], strict)
        assert "DF001" in codes(findings)

    def test_df001_suppressed_by_zero_init_default(self):
        assert "DF001" not in codes(check_program([arith()], ctx()))

    def test_df001_clean_after_writes(self):
        strict = ctx(options=CheckOptions(assume_zero_init=False))
        prog = [bcast(dst=1), bcast(dst=2), arith(src1=1, src2=2, dst=3)]
        assert "DF001" not in codes(check_program(prog, strict))

    def test_df002_dead_store_is_warning(self):
        prog = [bcast(dst=1, tag="volume"), bcast(dst=1, tag="volume")]
        findings = [f for f in check_program(prog, ctx()) if f.code == "DF002"]
        assert findings and all(f.severity == WARNING for f in findings)

    def test_df002_not_raised_across_barrier_or_after_read(self):
        across = [bcast(dst=1, tag="volume"), barrier(), bcast(dst=1, tag="volume")]
        assert "DF002" not in codes(check_program(across, ctx()))
        consumed = [bcast(dst=1, tag="volume"), bcast(dst=2, tag="volume"),
                    arith(src1=1, src2=2, dst=3), bcast(dst=1, tag="volume")]
        assert "DF002" not in codes(check_program(consumed, ctx()))

    def test_df003_storage_write_outside_setup(self):
        prog = [bcast(rows=(600, 601), dst=0, tag="volume")]
        assert "DF003" in codes(check_program(prog, ctx()))

    def test_df003_allows_setup_and_load(self):
        prog = [bcast(rows=(600, 601), dst=0, tag="setup"),
                bcast(rows=(700, 701), dst=1, tag="load")]
        assert "DF003" not in codes(check_program(prog, ctx()))

    def test_df003_respects_layout_storage_boundary(self):
        custom = ctx(storage0=800)
        prog = [bcast(rows=(600, 601), dst=0, tag="volume")]
        assert "DF003" not in codes(check_program(prog, custom))


# --------------------------------------------------------------------- #
# layout pass (LY*)
# --------------------------------------------------------------------- #


class TestLayoutPass:
    def test_ly001_row_overflow(self):
        assert "LY001" in codes(check_program([arith(rows=(1000, 1100))], ctx()))
        gather = Instruction(Opcode.GATHER, block=0, rows=(0, 4), dst=3, src1=1,
                             row_map=np.array([0, 1, 2, 5000]), tag="volume")
        assert "LY001" in codes(check_program([gather], ctx()))

    def test_ly002_column_overflow(self):
        assert "LY002" in codes(check_program([arith(dst=40)], ctx()))
        wide = transfer(dst=30, src1=0, words=4)  # cols [30, 34) > 32
        assert "LY002" in codes(check_program([wide], ctx()))

    def test_ly003_lut_offset_beyond_5_bits(self):
        lut = Instruction(Opcode.LUT, block=0, src_block=1, rows=(0, 4),
                          src1=40, dst=2, tag="lut")
        assert "LY003" in codes(check_program([lut], ctx()))

    def test_ly004_block_out_of_chip(self):
        assert "LY004" in codes(check_program([arith(block=99)], ctx()))
        assert "LY004" in codes(check_program([arith(block=None)], ctx()))

    def test_ly005_occupancy_beyond_plan(self):
        bounded = ctx(allowed_blocks=4)
        assert "LY005" in codes(check_program([arith(block=5)], bounded))
        assert "LY005" not in codes(check_program([arith(block=3)], bounded))

    def test_ly006_broadcast_shape_mismatch(self):
        bad = bcast(rows=(0, 4), value=np.arange(3, dtype=np.float32))
        assert "LY006" in codes(check_program([bad], ctx()))
        good = bcast(rows=(0, 4), value=np.arange(4, dtype=np.float32))
        assert "LY006" not in codes(check_program([good], ctx()))


# --------------------------------------------------------------------- #
# transfer pass (TR*)
# --------------------------------------------------------------------- #


class TestTransferPass:
    def test_tr001_missing_source(self):
        assert "TR001" in codes(check_program([transfer(src_block=None)], ctx()))

    def test_tr002_endpoint_outside_chip(self):
        assert "TR002" in codes(check_program([transfer(src_block=99)], ctx()))

    def test_tr003_unroutable_on_chip_model(self):
        cfg = CHIP_CONFIGS["512MB"]
        # the declared topology is larger than the chip model: the route
        # for the extra block cannot resolve.
        phantom = ctx(n_blocks=cfg.n_blocks + 8, chip=PimChip(cfg))
        bad = transfer(block=0, src_block=cfg.n_blocks + 1)
        assert "TR003" in codes(check_program([bad], phantom))

    def test_tr004_row_count_mismatch(self):
        bad = transfer(rows=(0, 4), src_rows=(0, 2))
        assert "TR004" in codes(check_program([bad], ctx()))

    def test_routable_transfer_is_clean(self):
        cfg = CHIP_CONFIGS["512MB"]
        good = transfer(block=1, src_block=0)
        findings = check_program([good], CheckContext.for_chip(PimChip(cfg)))
        assert not codes(findings) & {"TR001", "TR002", "TR003", "TR004"}


# --------------------------------------------------------------------- #
# phase pass (PH*)
# --------------------------------------------------------------------- #


class TestPhasePass:
    def test_ph001_uncovered_tag(self):
        findings = check_program([arith(tag="bogus_tag")], ctx())
        assert "PH001" in codes(findings)

    def test_ph001_covers_kernel_vocabulary(self):
        prog = [arith(tag=t) for t in
                ("volume", "flux:fetch", "flux:compute", "integration",
                 "setup", "load", "sync", "host")]
        assert "PH001" not in codes(check_program(prog, ctx()))

    def test_ph002_missing_barrier_between_phases(self):
        prog = [arith(tag="volume"), arith(tag="integration")]
        assert "PH002" in codes(check_program(prog, ctx()))

    def test_ph002_clean_with_barrier(self):
        prog = [arith(tag="volume"), barrier(), arith(tag="integration")]
        assert "PH002" not in codes(check_program(prog, ctx()))

    def test_ph002_allows_fetch_compute_interleave(self):
        prog = [transfer(tag="flux:fetch"), arith(block=1, tag="flux:compute")]
        assert "PH002" not in codes(check_program(prog, ctx()))


# --------------------------------------------------------------------- #
# hazard pass (HZ001)
# --------------------------------------------------------------------- #


class TestHazardPass:
    def test_hz001_lost_slice_update(self):
        prog = [transfer(), transfer()]  # same destination, nothing read
        assert "HZ001" in codes(check_program(prog, ctx()))

    def test_hz001_clean_when_consumed(self):
        prog = [transfer(dst=5),
                arith(block=1, src1=5, src2=5, dst=6, tag="flux:compute"),
                transfer(dst=5)]
        assert "HZ001" not in codes(check_program(prog, ctx()))

    def test_hz001_clean_across_barrier(self):
        prog = [transfer(), barrier(), transfer()]
        assert "HZ001" not in codes(check_program(prog, ctx()))

    def test_hz001_tolerates_partial_overfetch_clobber(self):
        # face A fetches 2 words, consumes only the first; face B's fetch
        # overwrites the unread second word at shared edge rows — the
        # kernels over-fetch on purpose, so this must stay clean.
        prog = [
            transfer(rows=(0, 4), dst=5, words=2),
            arith(block=1, src1=5, src2=5, dst=8, tag="flux:compute"),
            transfer(rows=(2, 6), dst=5, words=2),
        ]
        assert "HZ001" not in codes(check_program(prog, ctx()))


class TestFaultReadinessPass:
    def test_ft001_no_spare_rows_for_parity(self):
        # the block's layout runs all the way to the last row: nowhere
        # left to put even one parity row.
        prog = [arith(rows=(0, 1024), dst=3)]
        findings = check_program(prog, ctx(parity_rows=1))
        ft = [f for f in findings if f.code == "FT001"]
        assert len(ft) == 1
        assert ft[0].severity == WARNING
        assert ft[0].block == 0

    def test_ft001_silent_by_default(self):
        # parity_rows defaults to 0: the pass is inert.
        prog = [arith(rows=(0, 1024), dst=3)]
        assert "FT001" not in codes(check_program(prog, ctx()))

    def test_ft001_silent_with_spare_rows(self):
        prog = [arith(rows=(0, 1020), dst=3)]
        assert "FT001" not in codes(check_program(prog, ctx(parity_rows=4)))

    def test_ft001_fires_when_budget_exceeds_spare(self):
        # 4 spare rows cannot hold 5 parity rows.
        prog = [arith(rows=(0, 1020), dst=3)]
        assert "FT001" in codes(check_program(prog, ctx(parity_rows=5)))

    def test_ft001_once_per_offending_block(self):
        prog = [
            arith(block=0, rows=(0, 1024), dst=3),
            arith(block=0, rows=(0, 1024), dst=4),
            arith(block=1, rows=(0, 1024), dst=3),
            arith(block=2, rows=(0, 512), dst=3),
        ]
        ft = [f for f in check_program(prog, ctx(parity_rows=2))
              if f.code == "FT001"]
        assert sorted(f.block for f in ft) == [0, 1]

    def test_ft001_skips_data_dependent_lut_block(self):
        # the LUT block is read at data-dependent rows (rows=None =
        # whole block); it is storage, not protectable compute layout.
        lut = Instruction(Opcode.LUT, block=0, src_block=7, rows=(0, 4),
                          dst=3, src1=1, tag="lut")
        ft = [f for f in check_program([lut], ctx(parity_rows=1))
              if f.code == "FT001"]
        assert ft == []

    def test_ft001_index_array_rows(self):
        prog = [arith(rows=np.array([0, 5, 1023]), dst=3)]
        assert "FT001" in codes(check_program(prog, ctx(parity_rows=1)))

    def test_benchmark_layout_has_parity_headroom(self):
        # the paper layouts keep the top half for constants/storage, so a
        # small parity budget must check clean on a real benchmark.
        _, findings = check_benchmark(
            "acoustic_4", chip="2GB", interconnect="htree", order=2,
            parity_rows=1,
        )
        assert "FT001" not in codes(findings)


# --------------------------------------------------------------------- #
# access model
# --------------------------------------------------------------------- #


class TestAccessModel:
    def test_arith_reads_and_writes(self):
        reads, writes = accesses(arith(src1=1, src2=2, dst=3))
        assert {a.col for a in reads} == {1, 2}
        assert [a.col for a in writes] == [3]

    def test_transfer_spans_words(self):
        reads, writes = accesses(transfer(dst=4, src1=8, words=3))
        assert reads[0].words == 3 and writes[0].words == 3
        assert reads[0].block == 0 and writes[0].block == 1

    def test_barrier_touches_nothing(self):
        assert accesses(barrier()) == ([], [])


# --------------------------------------------------------------------- #
# benchmarks + the verify paths
# --------------------------------------------------------------------- #


class TestBenchmarksClean:
    def test_all_six_benchmarks_check_clean_strict(self, capsys):
        from repro.__main__ import main

        assert main(["check", "--strict"]) == 0
        out = capsys.readouterr().out
        assert "0 errors, 0 warnings" in out
        # six benchmarks x both interconnects
        assert "checked 12 programs" in out

    def test_check_benchmark_reports_plan(self):
        checked, findings = check_benchmark("acoustic_4", chip="2GB", order=3,
                                            interconnect="htree")
        assert findings == []
        assert checked.plan_label
        assert len(checked.program) > 100

    def test_json_report(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "findings.json"
        assert main(["check", "acoustic_4", "--order", "2",
                     "--interconnect", "htree", "--json", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["kind"] == "repro-check" and doc["errors"] == 0
        assert doc["benchmarks"][0]["benchmark"] == "acoustic_4"
        assert doc["benchmarks"][0]["findings"] == []

    def test_json_report_golden_schema(self, tmp_path, capsys):
        """``repro check --json`` is a consumed interface (CI artifact,
        downstream tooling): its top-level keys, per-benchmark entry keys,
        finding fields and the code catalogue's shape are frozen."""
        import re

        from repro.__main__ import main

        out = tmp_path / "findings.json"
        assert main(["check", "acoustic_4", "--order", "2",
                     "--interconnect", "htree", "--strict",
                     "--json", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert set(doc) == {"kind", "schema", "strict", "errors",
                            "warnings", "benchmarks"}
        assert doc["kind"] == "repro-check" and doc["schema"] == 1
        assert doc["strict"] is True
        entry = doc["benchmarks"][0]
        assert set(entry) == {"benchmark", "chip", "interconnect", "plan",
                              "instructions", "findings"}
        # a finding record always serializes exactly these fields
        rec = Finding("DF002", "probe", severity=WARNING, index=1, block=0,
                      tag="t", passname="dataflow").as_dict()
        assert set(rec) == {"code", "message", "severity", "index", "block",
                            "tag", "passname"}
        # every registered code has a known pass prefix + 3-digit number
        assert all(re.fullmatch(r"(DF|LY|TR|PH|HZ|FT|PL|PF|RL)\d{3}", c)
                   for c in FINDING_CODES)

    def test_unknown_benchmark_exits_2(self, capsys):
        from repro.__main__ import main

        assert main(["check", "nope"]) == 2

    def test_trace_validation_mode(self, tmp_path, capsys):
        from repro.__main__ import main

        bad = tmp_path / "t.json"
        bad.write_text("{}")
        assert main(["check", "--trace", str(bad)]) == 1


class TestVerifyPaths:
    def test_raise_on_errors(self):
        with pytest.raises(ProgramCheckError) as exc:
            raise_on_errors([Finding("LY001", "row 2000")])
        assert "LY001" in str(exc.value)

    def test_warnings_pass_through(self):
        fs = [Finding("DF002", "dead store", severity=WARNING)]
        assert raise_on_errors(fs) == fs

    def test_executor_verify_rejects_bad_stream(self):
        chip = PimChip(CHIP_CONFIGS["512MB"])
        ex = ChipExecutor(chip, verify=True)
        with pytest.raises(ProgramCheckError):
            ex.run([arith(rows=(1000, 1100))], functional=False)

    def test_executor_verify_accepts_clean_stream(self):
        chip = PimChip(CHIP_CONFIGS["512MB"])
        ex = ChipExecutor(chip, verify=True)
        report = ex.run([bcast(dst=1), bcast(dst=2),
                         arith(src1=1, src2=2, dst=3)], functional=False)
        assert report.n_instructions == 3

    def test_executor_verify_off_by_default(self):
        chip = PimChip(CHIP_CONFIGS["512MB"])
        report = ChipExecutor(chip).run([arith(rows=(1000, 1024))],
                                        functional=False)
        assert report.n_instructions == 1

    def test_run_verify_override_per_call(self):
        chip = PimChip(CHIP_CONFIGS["512MB"])
        ex = ChipExecutor(chip)  # verify off at construction
        with pytest.raises(ProgramCheckError):
            ex.run([arith(block=9999)], functional=False, verify=True)

    def test_compiler_verify_runs_on_cache_hits(self, tmp_path, monkeypatch):
        from repro.core.cache import CompileCache
        from repro.core.compiler import WavePimCompiler
        import repro.analysis.programs as programs

        calls = []
        real = programs.verify_benchmark

        def counting(*args, **kwargs):
            calls.append(args)
            return real(*args, **kwargs)

        monkeypatch.setattr(programs, "verify_benchmark", counting)
        cache = CompileCache(tmp_path)
        compiler = WavePimCompiler(order=2)
        chip = CHIP_CONFIGS["2GB"]
        first = compiler.compile("acoustic", 4, chip, cache=cache, verify=True)
        second = compiler.compile("acoustic", 4, chip, cache=cache, verify=True)
        assert len(calls) == 2  # the hit is verified too
        assert second.stage_times.volume == first.stage_times.volume

    def test_compiler_verify_default_off(self, monkeypatch):
        import repro.analysis.programs as programs

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("verify hook ran without verify=True")

        monkeypatch.setattr(programs, "verify_benchmark", boom)
        from repro.core.compiler import WavePimCompiler

        WavePimCompiler(order=2).compile("acoustic", 4, CHIP_CONFIGS["2GB"])
