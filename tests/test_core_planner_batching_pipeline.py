"""Planner (Table 5), batching schedules (Figs. 6/7), pipeline (Fig. 10)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batching import (
    BatchStep,
    batch_dram_traffic,
    covered_y_interfaces,
    flux_slice_schedule,
    volume_batch_steps,
)
from repro.core.pipeline import (
    StageTimes,
    pipeline_speedup,
    pipeline_timeline,
    pipelined_stage_time,
    serial_stage_time,
)
from repro.core.planner import PAPER_TABLE5, full_table5, plan_configuration
from repro.pim.params import CHIP_CONFIGS


class TestPlanner:
    def test_reproduces_paper_table5_exactly(self):
        """All sixteen cells of Table 5 from first principles."""
        assert full_table5() == PAPER_TABLE5

    def test_acoustic4_on_2gb_utilization(self):
        """§6.2.1: 'deploying a refinement-level 4 model on a 2GB chip will
        only utilize 25% of available PIM resources' — before expansion."""
        plan = plan_configuration("acoustic", 4, CHIP_CONFIGS["2GB"])
        naive_util = plan.n_elements * 1 / CHIP_CONFIGS["2GB"].n_blocks
        assert naive_util == pytest.approx(0.25)
        assert plan.expansion_parallel  # and the planner fixes it
        assert plan.utilization == pytest.approx(1.0)

    def test_elastic5_512mb_32_batches(self):
        """§7.3: 'the inputs have to be divided into 32 batches for the
        refinement-level 5 of elastic wave simulation' on 512 MB."""
        plan = plan_configuration("elastic", 5, CHIP_CONFIGS["512MB"])
        assert plan.n_batches == 32
        assert plan.label == "E_r&B"

    def test_acoustic5_2gb_two_batches(self):
        plan = plan_configuration("acoustic", 5, CHIP_CONFIGS["2GB"])
        assert plan.n_batches == 2

    def test_elastic4_2gb_exact_fit(self):
        plan = plan_configuration("elastic", 4, CHIP_CONFIGS["2GB"])
        assert plan.blocks_per_element == 4
        assert plan.utilization == pytest.approx(1.0)

    def test_rejects_unknown_physics(self):
        with pytest.raises(ValueError):
            plan_configuration("thermal", 4, CHIP_CONFIGS["2GB"])

    def test_elements_per_batch(self):
        plan = plan_configuration("elastic", 5, CHIP_CONFIGS["512MB"])
        assert plan.elements_per_batch == 1024


class TestFluxSliceSchedule:
    def test_unbatched_degenerate(self):
        steps = flux_slice_schedule(8, 8)
        actions = [s.action for s in steps]
        assert actions == ["load", "flux", "flux", "flux", "flux", "store"]

    def test_paper_example_32_16(self):
        """Fig. 7's 32-slice model with 16 resident slices."""
        steps = flux_slice_schedule(32, 16)
        # the first three flux steps are x, z (intra-slice) and y(-1)
        flux_steps = [s for s in steps if s.action == "flux"]
        assert flux_steps[0].axis == "x"
        assert flux_steps[1].axis == "z"
        assert flux_steps[2].axis == "y" and flux_steps[2].normals == (-1,)
        # a single slice (16) is prefetched before the +1 pass (step 5)
        loads = [s for s in steps if s.action == "load"]
        assert any(s.slices == (16,) for s in loads)

    @pytest.mark.parametrize("n,w", [(8, 4), (16, 4), (32, 16), (32, 8), (8, 8)])
    def test_all_y_interfaces_covered_once(self, n, w):
        steps = flux_slice_schedule(n, w)
        covered = covered_y_interfaces(steps, n)
        expected = [(s, s + 1) for s in range(n - 1)]
        assert sorted(covered) == expected
        assert len(covered) == len(set(covered))  # exactly once

    @pytest.mark.parametrize("n,w", [(8, 4), (32, 16)])
    def test_window_residency_invariant(self, n, w):
        """No flux step touches a slice that is not currently resident."""
        resident: set = set()
        for s in flux_slice_schedule(n, w):
            if s.action == "load":
                resident |= set(s.slices)
                assert len(resident) <= w + 1  # one prefetch slice allowed
            elif s.action == "store":
                resident -= set(s.slices)
            elif s.action == "flux":
                assert set(s.slices) <= resident

    def test_rejects_odd_window(self):
        with pytest.raises(ValueError):
            flux_slice_schedule(8, 3)

    def test_rejects_tiny_window(self):
        with pytest.raises(ValueError):
            flux_slice_schedule(8, 1)

    def test_step_str(self):
        s = BatchStep("flux", (0, 1), "y", (-1,))
        assert "y" in str(s)


class TestVolumeBatching:
    def test_constants_broadcast_once(self):
        """Fig. 6: 'broadcasting constants can be removed' after batch 0."""
        steps = volume_batch_steps(3)
        broadcasts = [s for s in steps if s.action == "broadcast"]
        assert len(broadcasts) == 1
        loads = [s for s in steps if s.action == "load"]
        assert len(loads) == 3

    def test_dram_traffic_zero_unbatched(self):
        """§7.4: 'zero overhead DRAM data transfer since batching is not
        needed' with a big enough chip."""
        t = batch_dram_traffic(4096, 512, 4, n_batches=1)
        assert t.bytes_per_step == 0.0

    def test_dram_traffic_scales(self):
        t2 = batch_dram_traffic(4096, 512, 4, n_batches=2)
        t8 = batch_dram_traffic(4096, 512, 4, n_batches=8)
        assert t2.bytes_per_step > 0
        # bytes per step are set by total model size, not batch count...
        assert t8.bytes_per_step == t2.bytes_per_step
        # ...but transaction count (fixed overheads) grows
        assert t8.transactions_per_step > t2.transactions_per_step

    def test_rejects_zero_batches(self):
        with pytest.raises(ValueError):
            batch_dram_traffic(64, 27, 4, 0)


class TestPipeline:
    def _stage(self):
        return StageTimes(
            volume=100e-6,
            flux_fetch_minus=30e-6,
            flux_compute_minus=40e-6,
            flux_fetch_plus=30e-6,
            flux_compute_plus=40e-6,
            integration=20e-6,
            host=50e-6,
        )

    def test_pipelined_shorter_than_serial(self):
        st_ = self._stage()
        assert pipelined_stage_time(st_) < serial_stage_time(st_)

    def test_overlap_formula(self):
        st_ = self._stage()
        expect = max(100, 50, 30) + max(40, 30) + 40 + 20
        assert pipelined_stage_time(st_) == pytest.approx(expect * 1e-6)

    def test_serial_is_sum(self):
        st_ = self._stage()
        assert serial_stage_time(st_) == pytest.approx(310e-6)

    def test_paper_no_pipeline_ratio_regime(self):
        """§7.5: without pipelining only ~0.77x throughput; our formula
        puts the ratio in (0.5, 1)."""
        ratio = 1.0 / pipeline_speedup(self._stage())
        assert 0.5 < ratio < 1.0

    def test_timeline_consistency(self):
        st_ = self._stage()
        entries = pipeline_timeline(st_)
        assert entries[-1].lane == "integration"
        assert entries[-1].end == pytest.approx(pipelined_stage_time(st_))
        for e in entries:
            assert e.end >= e.start >= 0

    def test_fetch_hidden_when_short(self):
        """A fetch shorter than the parallel compute adds zero time."""
        st_fast = StageTimes(100e-6, 1e-6, 40e-6, 1e-6, 40e-6, 20e-6, 1e-6)
        st_zero = StageTimes(100e-6, 0.0, 40e-6, 0.0, 40e-6, 20e-6, 0.0)
        assert pipelined_stage_time(st_fast) == pytest.approx(pipelined_stage_time(st_zero))

    @given(st.floats(min_value=1e-9, max_value=1e-3), st.floats(min_value=1e-9, max_value=1e-3))
    @settings(max_examples=50, deadline=None)
    def test_pipeline_never_slower(self, vol, fetch):
        st_ = StageTimes(vol, fetch, vol / 2, fetch, vol / 2, vol / 4, fetch)
        assert pipelined_stage_time(st_) <= serial_stage_time(st_) + 1e-15

    def test_scaled(self):
        st_ = self._stage().scaled(0.5)
        assert st_.volume == pytest.approx(50e-6)
