"""Fault injection & fault-tolerant execution (``repro.faults``).

The contract under test, in order of importance:

1. **zero-overhead default** — with no fault model (or an all-zero
   config) every report and every block is bit-identical to the
   fault-free build;
2. **determinism** — same seed, same instruction stream => identical
   fault events, counts and digests;
3. **mitigation wins** — protected runs recover (``uncorrected == 0``,
   bit-exact solutions), unprotected runs visibly corrupt state;
4. **graceful degradation** — the spare-block remap shrinks capacity
   and eventually refuses with a clear error, never wrong answers;
5. **checkpoint/restart** — resuming from any step boundary reproduces
   the uninterrupted run bit-identically.
"""

import math

import numpy as np
import pytest

from repro.core.mapper import ElementMapper
from repro.dg.solver import SolverConfig, WaveSolver
from repro.faults import (
    Checkpoint,
    FaultConfig,
    FaultModel,
    read_checkpoint,
    write_checkpoint,
)
from repro.faults.campaign import (
    DEFAULT_RATES,
    STRICT_REL_TOL,
    run_campaign,
    strict_violations,
)
from repro.interconnect import HTree, Transfer, schedule_transfers
from repro.pim.chip import PimChip
from repro.pim.executor import ChipExecutor
from repro.pim.isa import Instruction, Opcode
from repro.pim.magic import NorMachine
from repro.pim.params import CHIP_CONFIGS
from repro.workloads.benchmarks import BENCHMARKS

CFG = CHIP_CONFIGS["512MB"]


def bcast(block=0, rows=(0, 8), dst=0, value=1.0, tag="setup"):
    return Instruction(Opcode.BROADCAST, block=block, rows=rows, dst=dst,
                       value=value, tag=tag)


def arith(block=0, rows=(0, 8), dst=2, src1=0, src2=1, op=Opcode.ADD,
          tag="volume"):
    return Instruction(op, block=block, rows=rows, dst=dst, src1=src1,
                       src2=src2, tag=tag)


def transfer(block=1, src_block=0, rows=(0, 8), dst=4, src1=2, words=1,
             tag="flux:fetch"):
    return Instruction(Opcode.TRANSFER, block=block, src_block=src_block,
                       rows=rows, src_rows=rows, dst=dst, src1=src1,
                       words=words, tag=tag)


def small_program(n_ops=10, distinct_dst=False):
    """BROADCAST two operands, then ``n_ops`` ADDs (+ one cross-block
    TRANSFER so the interconnect path is exercised too)."""
    prog = [bcast(dst=0, value=1.5), bcast(dst=1, value=2.25)]
    for i in range(n_ops):
        prog.append(arith(dst=2 + i if distinct_dst else 2))
    prog.append(transfer(src1=2, dst=4))
    return prog


def run_prog(prog, model=None, serial=False):
    chip = PimChip(CFG)
    ex = ChipExecutor(chip, faults=model)
    rep = ex.run(prog, functional=True, serial=serial)
    return chip, rep


# --------------------------------------------------------------------- #
# config + model basics
# --------------------------------------------------------------------- #


class TestFaultConfig:
    def test_default_is_disabled(self):
        assert not FaultConfig().enabled

    def test_at_rate_enables_everything(self):
        cfg = FaultConfig.at_rate(1e-6, seed=3)
        assert cfg.enabled and cfg.any_transfer_faults
        assert cfg.stuck_cell_rate == cfg.flip_rate == 1e-6
        assert cfg.seed == 3 and cfg.protect

    def test_wearout_alone_enables(self):
        assert FaultConfig(wearout_nor_cycles=1e6).enabled

    def test_as_dict_serializes_infinite_budget(self):
        d = FaultConfig().as_dict()
        assert d["wearout_nor_cycles"] is None
        assert FaultConfig(wearout_nor_cycles=5.0).as_dict()["wearout_nor_cycles"] == 5.0


class TestDeterminism:
    def test_stuck_cells_reproducible_and_order_independent(self):
        a = FaultModel(FaultConfig(stuck_cell_rate=1e-5, seed=7))
        b = FaultModel(FaultConfig(stuck_cell_rate=1e-5, seed=7))
        # query in different orders: keyed substreams must not care
        blocks = [3, 0, 11]
        for blk in blocks:
            a.stuck_cells(blk, CFG.block_rows, CFG.row_words)
        for blk in reversed(blocks):
            b.stuck_cells(blk, CFG.block_rows, CFG.row_words)
        for blk in blocks:
            sa = a.stuck_cells(blk, CFG.block_rows, CFG.row_words)
            sb = b.stuck_cells(blk, CFG.block_rows, CFG.row_words)
            assert sa.keys() == sb.keys()
            for c in sa:
                for x, y in zip(sa[c], sb[c]):
                    assert np.array_equal(x, y)

    def test_different_seeds_differ(self):
        a = FaultModel(FaultConfig(stuck_cell_rate=1e-4, seed=0))
        b = FaultModel(FaultConfig(stuck_cell_rate=1e-4, seed=1))
        pattern = lambda m: {
            blk: {c: tuple(map(tuple, v)) for c, v in
                  m.stuck_cells(blk, CFG.block_rows, CFG.row_words).items()}
            for blk in range(4)
        }
        assert pattern(a) != pattern(b)

    def test_executor_run_digest_reproducible(self):
        prog = small_program(n_ops=30)
        digests, counts = [], []
        for _ in range(2):
            m = FaultModel(FaultConfig.at_rate(1e-3, seed=5))
            run_prog(prog, model=m)
            digests.append(m.event_digest())
            counts.append(dict(m.counts))
        assert digests[0] == digests[1]
        assert counts[0] == counts[1]

    def test_wearout_flags_blocks(self):
        m = FaultModel(FaultConfig(wearout_nor_cycles=100))
        m.record_nor(4, 60)
        assert m.worn_blocks == set()
        m.record_nor(4, 60)
        assert m.worn_blocks == {4}
        assert m.counts["wearouts"] == 1
        # flagged once, even with more wear
        m.record_nor(4, 60)
        assert m.counts["wearouts"] == 1


class TestBlockBitOps:
    def test_flip_bit_is_involutive(self):
        chip = PimChip(CFG)
        blk = chip.block(0)
        blk.data[3, 2] = 1.0
        before = blk.data[3, 2].copy()
        blk.flip_bit(3, 2, 31)
        assert blk.data[3, 2] != before  # sign bit flipped
        blk.flip_bit(3, 2, 31)
        assert blk.data[3, 2] == before

    def test_force_bits_sets_and_clears(self):
        chip = PimChip(CFG)
        blk = chip.block(0)
        rows = np.array([0, 1])
        bits = np.array([0, 0], dtype=np.uint32)
        blk.force_bits(rows, 5, bits, np.array([1, 0], dtype=np.uint32))
        u = blk.data.view(np.uint32)
        assert u[0, 5] & 1 == 1
        assert u[1, 5] & 1 == 0


# --------------------------------------------------------------------- #
# zero-overhead default
# --------------------------------------------------------------------- #


class TestZeroOverheadDefault:
    def test_disabled_model_is_bit_identical(self):
        prog = small_program(n_ops=20)
        chip0, rep0 = run_prog(prog, model=None)
        chip1, rep1 = run_prog(prog, model=FaultModel(FaultConfig()))
        assert rep1.total_time_s == rep0.total_time_s
        assert rep1.dynamic_energy_j == rep0.dynamic_energy_j
        assert rep1.time_by_tag == rep0.time_by_tag
        assert rep1.retries == 0 and rep1.faults_injected == 0
        for b in (0, 1):
            assert np.array_equal(chip1.block(b).data, chip0.block(b).data)

    def test_disabled_model_keeps_plan_mode(self):
        prog = small_program(n_ops=20)
        _, rep0 = run_prog(prog, model=None)
        _, rep1 = run_prog(prog, model=FaultModel(FaultConfig()))
        assert rep1.total_time_s == rep0.total_time_s

    def test_benchmark_proxy_bit_identical(self):
        # a real kernel program end to end, not just the micro stream
        from repro.faults.campaign import _Proxy

        spec = BENCHMARKS["acoustic_4"]
        base = _Proxy(spec, "htree", 1, 2, "512MB", 1)
        rep0, state0 = base.execute()
        withm = _Proxy(spec, "htree", 1, 2, "512MB", 1)
        rep1, state1 = withm.execute(fault_model=FaultModel(FaultConfig()))
        assert rep1.total_time_s == rep0.total_time_s
        assert rep1.dynamic_energy_j == rep0.dynamic_energy_j
        assert np.array_equal(state1, state0)


# --------------------------------------------------------------------- #
# transient flips
# --------------------------------------------------------------------- #


class TestFlips:
    def test_protected_flips_recompute_exactly(self):
        prog = small_program(n_ops=40)
        chip0, rep0 = run_prog(prog)
        m = FaultModel(FaultConfig(flip_rate=1e-5, seed=2, protect=True))
        chip1, rep1 = run_prog(prog, model=m)
        assert m.counts["injected"] > 0
        assert m.counts["corrected"] == m.counts["injected"]
        assert m.counts["uncorrected"] == 0
        # recompute + parity upkeep cost time, never correctness
        assert rep1.total_time_s > rep0.total_time_s
        for b in (0, 1):
            assert np.array_equal(chip1.block(b).data, chip0.block(b).data)

    def test_unprotected_flips_corrupt_state(self):
        # distinct destination columns so corrupted outputs survive to the
        # end instead of being overwritten by the next op
        prog = small_program(n_ops=20, distinct_dst=True)
        chip0, _ = run_prog(prog)
        m = FaultModel(FaultConfig(flip_rate=1e-4, seed=0, protect=False))
        chip1, rep1 = run_prog(prog, model=m)
        assert m.counts["uncorrected"] == m.counts["injected"] > 0
        assert rep1.faults_uncorrected == m.counts["uncorrected"]
        assert not np.array_equal(chip1.block(0).data, chip0.block(0).data)


# --------------------------------------------------------------------- #
# stuck cells + spare-block remap
# --------------------------------------------------------------------- #


class TestStuckCells:
    def _stuck_target(self, model):
        """(block, column) with at least one stuck cell."""
        for blk in range(64):
            stuck = model.stuck_cells(blk, CFG.block_rows, CFG.row_words)
            for col in stuck:
                return blk, col
        pytest.fail("no stuck cells drawn at this rate/seed")

    def test_stuck_cells_corrupt_writes(self):
        m = FaultModel(FaultConfig(stuck_cell_rate=1e-5, seed=1))
        blk, col = self._stuck_target(m)
        prog = [bcast(block=blk, rows=(0, CFG.block_rows), dst=0, value=1.5),
                bcast(block=blk, rows=(0, CFG.block_rows), dst=1, value=2.0),
                arith(block=blk, rows=(0, CFG.block_rows), dst=col,
                      src1=0, src2=1)]
        chip0, _ = run_prog(prog)
        chip1, _ = run_prog(prog, model=m)
        assert m.counts["uncorrected"] > 0
        assert not np.array_equal(chip1.block(blk).data, chip0.block(blk).data)

    def test_mapper_avoids_bad_blocks(self):
        # ~0.1 expected stuck cells per 1M-cell block: ~10% of blocks bad,
        # plenty of healthy spares left for 64 elements
        m = FaultModel(FaultConfig(stuck_cell_rate=1e-7, seed=4))
        bad = m.bad_blocks(CFG.n_blocks, CFG.block_rows, CFG.row_words)
        assert bad  # at this rate some blocks have a stuck cell
        mapper = ElementMapper(4, CFG, 1, fault_model=m)
        used = {mapper.block_of(int(e)) for e in mapper.elements}
        assert used.isdisjoint(bad)
        if m.counts["remaps"]:
            assert any(e.kind == "remap" for e in m.events)

    def test_identity_fast_path_without_faults(self):
        mapper = ElementMapper(8, CFG, 1)
        assert mapper._phys is None

    def test_graceful_degradation_raises_with_context(self):
        # at 1e-3 per cell every block has stuck cells: nothing is healthy
        m = FaultModel(FaultConfig(stuck_cell_rate=1e-3, seed=0))
        with pytest.raises(ValueError, match="healthy blocks"):
            ElementMapper(8, CFG, 1, fault_model=m)

    def test_worn_blocks_join_bad_set(self):
        m = FaultModel(FaultConfig(wearout_nor_cycles=10))
        m.record_nor(2, 100)
        assert 2 in m.bad_blocks(CFG.n_blocks, CFG.block_rows, CFG.row_words)


# --------------------------------------------------------------------- #
# interconnect faults: retry, backoff, dead switches
# --------------------------------------------------------------------- #


class TestTransferFaults:
    def test_drops_are_retried_and_charged(self):
        prog = [bcast(dst=2, value=1.0)] + [
            transfer(block=1 + i, src1=2, dst=4) for i in range(20)
        ]
        _, rep0 = run_prog(prog)
        m = FaultModel(FaultConfig(transfer_drop_rate=0.3, seed=0, protect=True))
        chip1, rep1 = run_prog(prog, model=m)
        assert rep1.retries > 0
        assert m.counts["corrected"] > 0
        assert rep1.total_time_s > rep0.total_time_s
        # every payload still arrived (drop 0.3, 4 attempts: ~1% residual
        # per transfer; this seed delivers all of them)
        if m.counts["uncorrected"] == 0:
            for i in range(20):
                assert np.array_equal(
                    chip1.block(1 + i).data[0:8, 4],
                    np.full(8, 1.0, dtype=np.float32),
                )

    def test_dead_switch_leaves_destination_stale(self):
        prog = [bcast(dst=2, value=3.0), transfer(src1=2, dst=4)]
        m = FaultModel(FaultConfig(switch_fail_rate=1.0, seed=0))
        chip1, rep1 = run_prog(prog, model=m)
        assert rep1.faults_uncorrected >= 1
        # undelivered: the destination column was never written
        assert np.all(chip1.block(1).data[:, 4] == 0.0)

    def test_unprotected_corruption_is_delivered_wrong(self):
        prog = [bcast(dst=2, value=3.0), transfer(src1=2, dst=4)]
        m = FaultModel(FaultConfig(transfer_corrupt_rate=1.0, seed=0,
                                   protect=False))
        chip1, _ = run_prog(prog, model=m)
        assert m.counts["uncorrected"] == 1
        got = chip1.block(1).data[0:8, 4]
        assert not np.array_equal(got, np.full(8, 3.0, dtype=np.float32))

    def test_plan_run_matches_serial_faults(self):
        prog = small_program(n_ops=30)
        ms = FaultModel(FaultConfig.at_rate(1e-3, seed=9))
        _, rep_serial = run_prog(prog, model=ms, serial=True)
        mp = FaultModel(FaultConfig.at_rate(1e-3, seed=9))
        _, rep_plan = run_prog(prog, model=mp)
        assert rep_plan.total_time_s == rep_serial.total_time_s
        assert mp.event_digest() == ms.event_digest()

    def test_scheduler_accounts_retries(self):
        h = HTree(256)
        transfers = [Transfer(i, 128 + i, 32) for i in range(50)]
        res0 = schedule_transfers(h, transfers)
        m = FaultModel(FaultConfig(transfer_drop_rate=0.4, seed=0))
        res1 = schedule_transfers(h, transfers, fault_model=m)
        assert res1.retries > 0
        assert res1.makespan > res0.makespan

    def test_scheduler_counts_undelivered_on_dead_fabric(self):
        h = HTree(256)
        m = FaultModel(FaultConfig(switch_fail_rate=1.0, seed=0))
        res = schedule_transfers(h, [Transfer(0, 9, 32)], fault_model=m)
        assert res.undelivered == 1

    def test_switch_level_api(self):
        from repro.interconnect.bus import Bus

        h = HTree(256)
        assert set(h.switch_ids()) == set(range(h.n_switches))
        assert all(h.switch_level(s) >= 0 for s in h.switch_ids())
        b = Bus(256)
        assert b.switch_level(0) == 0
        with pytest.raises(IndexError):
            b.switch_level(1)


# --------------------------------------------------------------------- #
# gate-level flips
# --------------------------------------------------------------------- #


class TestNorMachineFlips:
    def test_flip_prob_one_inverts_every_gate(self):
        nm = NorMachine(flip_prob=1.0, rng=np.random.default_rng(0))
        assert nm.nor(0, 0) == 0  # NOR(0,0)=1, flipped
        assert nm.nor(1, 0) == 1  # NOR(1,0)=0, flipped
        assert nm.flips == 2 and nm.steps == 2

    def test_default_machine_never_flips(self):
        nm = NorMachine()
        assert nm.nor(0, 0) == 1 and nm.flips == 0


# --------------------------------------------------------------------- #
# checkpoint / restart
# --------------------------------------------------------------------- #


def _tiny_solver(seed=0):
    solver = WaveSolver(SolverConfig(physics="acoustic", refinement_level=1,
                                     order=2, flux="riemann"))
    rng = np.random.default_rng(seed)
    solver.set_state(0.1 * rng.standard_normal(solver.state.shape))
    return solver


class TestCheckpoint:
    def test_roundtrip_preserves_bits_and_meta(self, tmp_path):
        state = np.random.default_rng(0).standard_normal((3, 4)).astype(np.float32)
        p = tmp_path / "c.npz"
        write_checkpoint(p, Checkpoint(state=state, time=1.25, steps=7,
                                       meta={"order": 2}))
        got = read_checkpoint(p)
        assert np.array_equal(got.state, state) and got.state.dtype == state.dtype
        assert got.time == 1.25 and got.steps == 7
        got.validate_against({"order": 2})
        with pytest.raises(ValueError, match="incompatible"):
            got.validate_against({"order": 3})

    def test_resume_is_bit_identical(self, tmp_path):
        p = tmp_path / "solver.npz"
        straight = _tiny_solver()
        straight.run(10)

        interrupted = _tiny_solver()
        interrupted.run(6, checkpoint_every=3, checkpoint_path=p)
        resumed = _tiny_solver(seed=99)  # wrong state on purpose
        assert resumed.restore_checkpoint(p) == 6
        resumed.run(10 - resumed.steps_taken)
        assert resumed.steps_taken == 10
        assert np.array_equal(resumed.state, straight.state)
        assert resumed.time == straight.time

    def test_resume_from_mid_run_kill(self, tmp_path):
        # the checkpoint at step 3 survives a "crash" during steps 4-5:
        # restart from the file alone reproduces the full run
        p = tmp_path / "solver.npz"
        victim = _tiny_solver()
        victim.run(5, checkpoint_every=3, checkpoint_path=p)
        assert read_checkpoint(p).steps == 3

        resumed = _tiny_solver()
        resumed.restore_checkpoint(p)
        resumed.run(7)
        straight = _tiny_solver()
        straight.run(10)
        assert np.array_equal(resumed.state, straight.state)

    def test_restore_rejects_mismatched_solver(self, tmp_path):
        p = tmp_path / "solver.npz"
        _tiny_solver().save_checkpoint(p)
        other = WaveSolver(SolverConfig(physics="acoustic",
                                        refinement_level=1, order=3))
        with pytest.raises(ValueError, match="incompatible"):
            other.restore_checkpoint(p)


class TestCheckpointCorruption:
    """Torn/truncated checkpoint files raise ``CheckpointCorrupt`` and the
    ``.prev`` rotation recovers to the previous complete checkpoint."""

    def _write(self, path, steps, keep_previous=False):
        state = np.full((2, 3), float(steps), dtype=np.float32)
        write_checkpoint(path, Checkpoint(state=state, time=0.5 * steps,
                                          steps=steps, meta={"order": 2}),
                         keep_previous=keep_previous)

    def test_truncated_file_raises_corrupt(self, tmp_path):
        from repro.faults import CheckpointCorrupt

        p = tmp_path / "c.npz"
        self._write(p, steps=3)
        raw = p.read_bytes()
        # chop the archive at every quartile: all of them must surface as
        # CheckpointCorrupt, never a bare zipfile/KeyError leak.
        for frac in (0.25, 0.5, 0.75):
            p.write_bytes(raw[: int(len(raw) * frac)])
            with pytest.raises(CheckpointCorrupt):
                read_checkpoint(p)

    def test_garbage_and_missing_keys_raise_corrupt(self, tmp_path):
        from repro.faults import CheckpointCorrupt

        p = tmp_path / "c.npz"
        p.write_bytes(b"this is not an npz archive")
        with pytest.raises(CheckpointCorrupt):
            read_checkpoint(p)
        np.savez(p, state=np.zeros(3))  # valid zip, wrong schema
        with pytest.raises(CheckpointCorrupt):
            read_checkpoint(p)

    def test_keep_previous_rotates(self, tmp_path):
        from repro.faults.checkpoint import previous_path

        p = tmp_path / "c.npz"
        self._write(p, steps=3)
        self._write(p, steps=6, keep_previous=True)
        assert read_checkpoint(p).steps == 6
        assert read_checkpoint(previous_path(p)).steps == 3

    def test_recovery_falls_back_to_previous(self, tmp_path):
        from repro.faults import CheckpointCorrupt, read_checkpoint_with_recovery
        from repro.faults.checkpoint import previous_path

        p = tmp_path / "c.npz"
        self._write(p, steps=3)
        self._write(p, steps=6, keep_previous=True)
        raw = p.read_bytes()
        p.write_bytes(raw[: len(raw) // 2])  # torn newest checkpoint
        got = read_checkpoint_with_recovery(p)
        assert got.steps == 3  # the rotated .prev survives

        # with the previous copy also gone, corruption is terminal
        previous_path(p).unlink()
        with pytest.raises(CheckpointCorrupt):
            read_checkpoint_with_recovery(p)

    def test_recovery_missing_file_raises_filenotfound(self, tmp_path):
        from repro.faults import read_checkpoint_with_recovery

        with pytest.raises(FileNotFoundError):
            read_checkpoint_with_recovery(tmp_path / "absent.npz")


# --------------------------------------------------------------------- #
# runtime estimation overhead
# --------------------------------------------------------------------- #


class TestEstimateOverhead:
    @pytest.fixture(scope="class")
    def compiled(self):
        from repro.core.compiler import WavePimCompiler

        return WavePimCompiler(order=2).compile("acoustic", 2, CFG)

    def test_no_faults_means_zero_overhead(self, compiled):
        from repro.core.runtime import estimate_benchmark

        est = estimate_benchmark(compiled, n_steps=8)
        assert est.fault_overhead_s == 0.0
        assert est.checkpoint_overhead_s == 0.0

    def test_fault_model_adds_expected_overhead(self, compiled):
        from repro.core.runtime import estimate_benchmark

        base = estimate_benchmark(compiled, n_steps=8)
        est = estimate_benchmark(
            compiled, n_steps=8,
            faults=FaultModel(FaultConfig.at_rate(1e-4)),
        )
        assert est.fault_overhead_s > 0.0
        assert est.time_s == pytest.approx(base.time_s + est.fault_overhead_s)

    def test_checkpoints_add_hbm_time(self, compiled):
        from repro.core.runtime import estimate_benchmark

        base = estimate_benchmark(compiled, n_steps=8)
        est = estimate_benchmark(compiled, n_steps=8, checkpoint_every=2)
        assert est.checkpoint_overhead_s > 0.0
        assert est.time_s == pytest.approx(base.time_s + est.checkpoint_overhead_s)


# --------------------------------------------------------------------- #
# campaigns
# --------------------------------------------------------------------- #


class TestCampaign:
    @pytest.fixture(scope="class")
    def report(self):
        return run_campaign(["acoustic_4"], rates=[1e-6], steps=1)

    def test_reproducible(self, report):
        again = run_campaign(["acoustic_4"], rates=[1e-6], steps=1)
        r0, r1 = report["runs"][0], again["runs"][0]
        assert r0["event_digest"] == r1["event_digest"]
        assert r0["counts"] == r1["counts"]
        assert r0["solution_rel_err"] == r1["solution_rel_err"]

    def test_low_rate_fully_recovers(self, report):
        run = report["runs"][0]
        assert run["status"] == "ok"
        assert run["counts"]["uncorrected"] == 0
        assert run["solution_rel_err"] <= STRICT_REL_TOL
        assert run["time_overhead"] >= 1.0
        assert strict_violations(report) == []

    def test_stress_rate_degrades_gracefully(self):
        report = run_campaign(["acoustic_4"], rates=[1e-3], steps=1)
        run = report["runs"][0]
        assert run["status"] == "degraded"
        assert "healthy blocks" in run["error"]
        assert strict_violations(report) == [
            f"acoustic_4@htree rate=0.001: degraded — {run['error']}"
        ]

    def test_strict_flags_uncorrected(self):
        fake = {
            "config": {"rates": [1e-6]},
            "runs": [{"benchmark": "b", "interconnect": "htree",
                      "rate": 1e-6, "status": "ok",
                      "counts": {"uncorrected": 2},
                      "solution_rel_err": 0.0}],
        }
        out = strict_violations(fake)
        assert out == ["b@htree rate=1e-06: 2 uncorrected faults"]

    def test_default_rates_span_recovery_and_stress(self):
        assert min(DEFAULT_RATES) <= 1e-6 and max(DEFAULT_RATES) >= 1e-3

    def test_all_six_benchmarks_recover_at_low_rate(self):
        # the acceptance sweep: every paper benchmark, production rate
        report = run_campaign(list(BENCHMARKS), rates=[1e-6], steps=1)
        assert strict_violations(report) == []
        for run in report["runs"]:
            assert run["status"] == "ok"
            assert run["counts"]["uncorrected"] == 0
            assert run["solution_rel_err"] <= STRICT_REL_TOL
