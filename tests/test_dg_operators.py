"""Acoustic and elastic dG operators: analytic RHS checks, energy behavior."""

import numpy as np
import pytest

from repro.dg import (
    AcousticMaterial,
    AcousticOperator,
    ElasticMaterial,
    ElasticOperator,
    HexMesh,
    ReferenceElement,
)
from repro.dg.analytic import (
    acoustic_plane_wave,
    elastic_plane_p_wave,
    elastic_plane_s_wave,
)
from repro.dg.mesh import BoundaryKind


@pytest.fixture(scope="module")
def setup_acoustic():
    mesh = HexMesh.from_refinement_level(1)
    elem = ReferenceElement(3)
    mat = AcousticMaterial.homogeneous(mesh.n_elements, kappa=2.0, rho=0.5)
    return mesh, elem, mat


@pytest.fixture(scope="module")
def setup_elastic():
    mesh = HexMesh.from_refinement_level(1)
    elem = ReferenceElement(3)
    mat = ElasticMaterial.homogeneous(mesh.n_elements, lam=2.0, mu=1.0, rho=1.0)
    return mesh, elem, mat


class TestAcousticOperator:
    def test_rejects_bad_flux(self, setup_acoustic):
        mesh, elem, mat = setup_acoustic
        with pytest.raises(ValueError):
            AcousticOperator(mesh, mat, elem, flux="fancy")

    def test_rejects_material_mismatch(self, setup_acoustic):
        mesh, elem, _ = setup_acoustic
        with pytest.raises(ValueError):
            AcousticOperator(mesh, AcousticMaterial.homogeneous(5), elem)

    def test_zero_state_shape(self, setup_acoustic):
        mesh, elem, mat = setup_acoustic
        op = AcousticOperator(mesh, mat, elem)
        assert op.zero_state().shape == (4, mesh.n_elements, elem.n_nodes)

    def test_rhs_zero_on_constants(self, setup_acoustic):
        """Constant pressure and zero velocity is a steady state."""
        mesh, elem, mat = setup_acoustic
        for flux in ("central", "riemann"):
            op = AcousticOperator(mesh, mat, elem, flux=flux)
            state = op.zero_state()
            state[0] = 3.0
            state[1:] = 0.0
            assert np.max(np.abs(op.rhs(state))) < 1e-12

    def test_rhs_matches_plane_wave_time_derivative(self, setup_acoustic):
        """rhs(q) must equal dq/dt of the analytic plane wave (order 5)."""
        mesh, _, mat = setup_acoustic
        elem = ReferenceElement(5)
        op = AcousticOperator(mesh, mat, elem, flux="central")
        eps = 1e-6
        q0 = acoustic_plane_wave(mesh, elem, mat, (1, 0, 0), t=0.3)
        q1 = acoustic_plane_wave(mesh, elem, mat, (1, 0, 0), t=0.3 + eps)
        dqdt_fd = (q1 - q0) / eps
        rhs = op.rhs(q0)
        err = np.max(np.abs(rhs - dqdt_fd)) / np.max(np.abs(dqdt_fd))
        assert err < 2e-2

    def test_rhs_spectral_convergence_with_order(self, setup_acoustic):
        """The RHS error against the analytic time derivative collapses as
        the element order grows (spectral accuracy)."""
        mesh, _, mat = setup_acoustic
        errs = []
        for order in (2, 4, 6):
            elem = ReferenceElement(order)
            op = AcousticOperator(mesh, mat, elem, flux="central")
            eps = 1e-6
            q0 = acoustic_plane_wave(mesh, elem, mat, (1, 0, 0), t=0.3)
            q1 = acoustic_plane_wave(mesh, elem, mat, (1, 0, 0), t=0.3 + eps)
            rhs = op.rhs(q0)
            errs.append(np.max(np.abs(rhs - (q1 - q0) / eps)))
        assert errs[0] > 10 * errs[1] > 100 * errs[2]

    def test_flux_vanishes_on_smooth_continuous_field(self, setup_acoustic):
        """Plane wave is continuous across faces -> flux corrections ~ 0
        for the central flux (jump terms vanish)."""
        mesh, elem, mat = setup_acoustic
        op = AcousticOperator(mesh, mat, elem, flux="central")
        q = acoustic_plane_wave(mesh, elem, mat, (1, 1, 0))
        corr = op.flux_rhs(q)
        assert np.max(np.abs(corr)) < 1e-8

    def test_energy_positive(self, setup_acoustic):
        mesh, elem, mat = setup_acoustic
        op = AcousticOperator(mesh, mat, elem)
        rng = np.random.default_rng(0)
        q = rng.standard_normal((4, mesh.n_elements, elem.n_nodes))
        assert op.energy(q) > 0

    def test_central_semidiscrete_energy_conservation(self, setup_acoustic):
        """d/dt E = <q, rhs>_M = 0 for the central flux (skew-symmetry)."""
        mesh, elem, mat = setup_acoustic
        op = AcousticOperator(mesh, mat, elem, flux="central")
        rng = np.random.default_rng(1)
        q = rng.standard_normal((4, mesh.n_elements, elem.n_nodes))
        r = op.rhs(q)
        jac = (mesh.h / 2.0) ** 3
        # dE/dt = sum over vars of <dE/dq_i, rhs_i>
        de = (
            np.sum(elem.integrate(q[0] * r[0] / mat.kappa[:, None]))
            + np.sum(
                elem.integrate(
                    mat.rho[:, None] * (q[1] * r[1] + q[2] * r[2] + q[3] * r[3])
                )
            )
        ) * jac
        scale = abs(op.energy(q)) + 1.0
        assert abs(de) / scale < 1e-10

    def test_riemann_semidiscrete_energy_dissipation(self, setup_acoustic):
        mesh, elem, mat = setup_acoustic
        op = AcousticOperator(mesh, mat, elem, flux="riemann")
        rng = np.random.default_rng(2)
        q = rng.standard_normal((4, mesh.n_elements, elem.n_nodes))
        r = op.rhs(q)
        jac = (mesh.h / 2.0) ** 3
        de = (
            np.sum(elem.integrate(q[0] * r[0] / mat.kappa[:, None]))
            + np.sum(
                elem.integrate(
                    mat.rho[:, None] * (q[1] * r[1] + q[2] * r[2] + q[3] * r[3])
                )
            )
        ) * jac
        assert de < 0  # strictly dissipative on rough data


class TestAcousticBoundaries:
    @pytest.mark.parametrize(
        "kind", [BoundaryKind.FREE_SURFACE, BoundaryKind.RIGID, BoundaryKind.ABSORBING]
    )
    def test_rhs_finite(self, kind):
        mesh = HexMesh.from_refinement_level(1, boundary=kind)
        elem = ReferenceElement(2)
        mat = AcousticMaterial.homogeneous(mesh.n_elements)
        op = AcousticOperator(mesh, mat, elem, flux="riemann")
        rng = np.random.default_rng(0)
        q = rng.standard_normal((4, mesh.n_elements, elem.n_nodes))
        assert np.all(np.isfinite(op.rhs(q)))

    def test_absorbing_dissipates(self):
        mesh = HexMesh.from_refinement_level(1, boundary=BoundaryKind.ABSORBING)
        elem = ReferenceElement(2)
        mat = AcousticMaterial.homogeneous(mesh.n_elements)
        op = AcousticOperator(mesh, mat, elem, flux="riemann")
        rng = np.random.default_rng(3)
        q = rng.standard_normal((4, mesh.n_elements, elem.n_nodes))
        r = op.rhs(q)
        jac = (mesh.h / 2.0) ** 3
        de = (
            np.sum(elem.integrate(q[0] * r[0] / mat.kappa[:, None]))
            + np.sum(elem.integrate(mat.rho[:, None] * np.sum(q[1:4] * r[1:4], axis=0)))
        ) * jac
        assert de < 0


class TestElasticOperator:
    def test_zero_state_shape(self, setup_elastic):
        mesh, elem, mat = setup_elastic
        op = ElasticOperator(mesh, mat, elem)
        assert op.zero_state().shape == (9, mesh.n_elements, elem.n_nodes)

    def test_rhs_zero_on_equilibrium(self, setup_elastic):
        """Uniform hydrostatic stress, zero velocity: steady state."""
        mesh, elem, mat = setup_elastic
        for flux in ("central", "riemann"):
            op = ElasticOperator(mesh, mat, elem, flux=flux)
            q = op.zero_state()
            q[0] = q[1] = q[2] = -2.0  # isotropic stress
            assert np.max(np.abs(op.rhs(q))) < 1e-12

    @pytest.mark.parametrize("wave,k", [("p", (1, 0, 0)), ("s", (0, 1, 0))])
    def test_rhs_matches_analytic_time_derivative(self, setup_elastic, wave, k):
        mesh, elem, mat = setup_elastic
        op = ElasticOperator(mesh, mat, elem, flux="central")
        elem = ReferenceElement(5)
        op = ElasticOperator(mesh, mat, elem, flux="central")
        fn = elastic_plane_p_wave if wave == "p" else elastic_plane_s_wave
        kw = {} if wave == "p" else {"polarization": (0, 0, 1)}
        eps = 1e-6
        q0 = fn(mesh, elem, mat, k, t=0.1, **kw)
        q1 = fn(mesh, elem, mat, k, t=0.1 + eps, **kw)
        dqdt = (q1 - q0) / eps
        rhs = op.rhs(q0)
        err = np.max(np.abs(rhs - dqdt)) / np.max(np.abs(dqdt))
        assert err < 3e-2

    def test_central_energy_conservation_semidiscrete(self, setup_elastic):
        mesh, elem, mat = setup_elastic
        op = ElasticOperator(mesh, mat, elem, flux="central")
        rng = np.random.default_rng(5)
        q = rng.standard_normal((9, mesh.n_elements, elem.n_nodes))
        e0 = op.energy(q)
        dt = 1e-5
        q1 = q + dt * op.rhs(q)  # forward Euler probe
        e1 = op.energy(q1)
        # energy change should be O(dt^2) for a conservative semidiscretization
        assert abs(e1 - e0) / e0 < 1e-7

    def test_riemann_dissipates(self, setup_elastic):
        mesh, elem, mat = setup_elastic
        op = ElasticOperator(mesh, mat, elem, flux="riemann")
        rng = np.random.default_rng(6)
        q = rng.standard_normal((9, mesh.n_elements, elem.n_nodes))
        e0 = op.energy(q)
        dt = 1e-4
        q1 = q + dt * op.rhs(q)
        assert op.energy(q1) < e0

    def test_traction_computation(self, setup_elastic):
        mesh, elem, mat = setup_elastic
        q = np.zeros((9, 1, 4))
        q[0] = 2.0  # sxx
        q[5] = 1.0  # sxy
        t = ElasticOperator.traction(q, np.array([1.0, 0.0, 0.0]))
        assert np.allclose(t[0], 2.0)
        assert np.allclose(t[1], 1.0)
        assert np.allclose(t[2], 0.0)

    def test_energy_positive_definite(self, setup_elastic):
        mesh, elem, mat = setup_elastic
        op = ElasticOperator(mesh, mat, elem)
        rng = np.random.default_rng(8)
        for _ in range(5):
            q = rng.standard_normal((9, mesh.n_elements, elem.n_nodes))
            assert op.energy(q) > 0
