"""Smoke-run the runnable examples under a tiny configuration.

The examples are the repo's front door; a refactor that breaks their
imports or output paths would otherwise go unnoticed until a human runs
them.  ``quickstart.py`` honours the ``REPRO_QS_*`` environment knobs so
the smoke run shrinks its geometry to seconds; ``pim_program_inspection``
is already tiny.  Each example runs in a subprocess (its own interpreter,
like a user would) with an isolated compile-cache directory.
"""

import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
EXAMPLES = REPO / "examples"


def _run(script: str, tmp_path, extra_env=None) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    # keep the user's persistent compile cache out of the test
    env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
    env.update(extra_env or {})
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True, text=True, timeout=600, env=env, cwd=str(REPO),
    )


class TestExamplesSmoke:
    def test_quickstart_tiny(self, tmp_path):
        proc = _run("quickstart.py", tmp_path, extra_env={
            "REPRO_QS_STEPS": "5",
            "REPRO_QS_LEVEL": "1",
            "REPRO_QS_ORDER": "2",
            "REPRO_QS_PIM_ORDER": "2",
        })
        assert proc.returncode == 0, proc.stderr[-2000:]
        assert "Wave simulation" in proc.stdout
        assert "plan on 2GB" in proc.stdout
        assert "PIM speedup" in proc.stdout

    def test_pim_program_inspection(self, tmp_path):
        proc = _run("pim_program_inspection.py", tmp_path)
        assert proc.returncode == 0, proc.stderr[-2000:]
        assert "sqrt(49)" in proc.stdout
        assert "7.0" in proc.stdout
