"""Maxwell-on-PIM: the §1 generalization verified down to the hardware map."""

import numpy as np
import pytest

from repro.core.kernels.maxwell import MaxwellOneBlockKernels
from repro.core.mapper import ElementMapper
from repro.dg import HexMesh, ReferenceElement, cfl_timestep
from repro.dg.maxwell import ElectromagneticMaterial, MaxwellOperator
from repro.dg.timestepping import LSRK45
from repro.pim.chip import PimChip
from repro.pim.executor import ChipExecutor
from repro.pim.params import CHIP_CONFIGS

ORDER = 2
TOL = 5e-6


def _setup(flux, alpha, seed=0):
    mesh = HexMesh.from_refinement_level(1)
    elem = ReferenceElement(ORDER)
    rng = np.random.default_rng(seed)
    mat = ElectromagneticMaterial.homogeneous(mesh.n_elements, eps=1.3, mu=0.8)
    chip = PimChip(CHIP_CONFIGS["512MB"])
    mapper = ElementMapper(mesh.m, chip.config, 1)
    kern = MaxwellOneBlockKernels(mesh, elem, mat, mapper, flux_kind=flux, alpha=alpha)
    op = MaxwellOperator(mesh, mat, elem, flux=flux, alpha=alpha)
    state = (0.1 * rng.standard_normal((6, mesh.n_elements, elem.n_nodes))).astype(
        np.float32
    ).astype(np.float64)
    return mesh, elem, mat, chip, kern, op, state


class TestConstruction:
    def test_six_variables_fit_one_block(self):
        mesh, elem, mat, chip, kern, op, state = _setup("central", 0.0)
        assert kern.layout.scratch0 + 10 <= 32  # and scratch for the kernels

    def test_rejects_bad_flux(self):
        mesh = HexMesh.from_refinement_level(1)
        elem = ReferenceElement(ORDER)
        mat = ElectromagneticMaterial.homogeneous(mesh.n_elements)
        mapper = ElementMapper(mesh.m, CHIP_CONFIGS["512MB"], 1)
        with pytest.raises(ValueError):
            MaxwellOneBlockKernels(mesh, elem, mat, mapper, flux_kind="fancy")


@pytest.mark.parametrize("flux,alpha", [("central", 0.0), ("upwind", 1.0)])
class TestEquivalence:
    def test_volume_matches_numpy(self, flux, alpha):
        mesh, elem, mat, chip, kern, op, state = _setup(flux, alpha)
        ex = ChipExecutor(chip)
        ex.run(kern.setup() + kern.load_state(state.astype(np.float32)), functional=True)
        ex.run(kern.volume(), functional=True)
        got = kern.read_contributions(chip)
        ref = op.volume_rhs(state)
        assert np.max(np.abs(got - ref)) / np.max(np.abs(ref)) < TOL

    def test_full_rhs_matches_numpy(self, flux, alpha):
        mesh, elem, mat, chip, kern, op, state = _setup(flux, alpha, seed=1)
        ex = ChipExecutor(chip)
        ex.run(kern.setup() + kern.load_state(state.astype(np.float32)), functional=True)
        ex.run(kern.volume() + kern.flux(), functional=True)
        got = kern.read_contributions(chip)
        ref = op.rhs(state)
        assert np.max(np.abs(got - ref)) / np.max(np.abs(ref)) < TOL

    def test_time_step_plan_replay_bit_identical_to_serial(self, flux, alpha):
        """The lowered plan is *bit*-identical to the serial audit path."""
        mesh, elem, mat, chip, kern, op, state = _setup(flux, alpha, seed=4)
        dt = cfl_timestep(mesh.h, mat.max_speed, ORDER, cfl=0.3)
        prologue = kern.setup() + kern.load_state(state.astype(np.float32))
        step = kern.time_step(dt)

        ex = ChipExecutor(chip)
        ex.run(prologue, functional=True)
        rep = ex.run(ex.lower(step), functional=True)

        chip2 = PimChip(CHIP_CONFIGS["512MB"])
        ex2 = ChipExecutor(chip2)
        ex2.run(prologue, functional=True)
        raw = ex2.run(step, functional=True, serial=True)

        assert rep.total_time_s == raw.total_time_s
        assert rep.dynamic_energy_j == raw.dynamic_energy_j
        assert rep.time_by_tag == raw.time_by_tag
        for b in range(chip.config.n_blocks):
            got, ref = chip.block(b).data, chip2.block(b).data
            if got is not None or ref is not None:
                assert np.array_equal(got, ref)
        assert np.array_equal(kern.read_state(chip), kern.read_state(chip2))

    def test_two_time_steps(self, flux, alpha):
        mesh, elem, mat, chip, kern, op, state = _setup(flux, alpha, seed=2)
        dt = cfl_timestep(mesh.h, mat.max_speed, ORDER, cfl=0.3)
        ref = state.copy()
        stepper = LSRK45(lambda s: op.rhs(s))
        aux = np.zeros_like(ref)
        for _ in range(2):
            stepper.step(ref, 0.0, dt, aux)
        ex = ChipExecutor(chip)
        ex.run(kern.setup() + kern.load_state(state.astype(np.float32)), functional=True)
        ex.run(kern.time_step(dt) + kern.time_step(dt), functional=True)
        got = kern.read_state(chip)
        assert np.max(np.abs(got - ref)) / np.max(np.abs(ref)) < 5e-5
