"""Execution-plan lowering: bit-identity, reuse, and stale-route safety.

The contract under test (DESIGN.md "Execution plans"): replaying a lowered
:class:`~repro.pim.plan.ExecutionPlan` through ``ChipExecutor.run`` yields
a :class:`TimingReport` *bit-identical* to per-instruction serial dispatch
— same totals, same phase split, same interconnect accounting — on every
paper benchmark; the plan transparently re-lowers when the chip's routing
epoch moved; and the plan path steps aside for fault models and functional
execution.
"""

import dataclasses

import numpy as np
import pytest

from repro.analysis.programs import build_check_program
from repro.pim.chip import PimChip
from repro.pim.executor import ChipExecutor, ExecutionPlan
from repro.pim.isa import Opcode
from repro.pim.params import CHIP_CONFIGS
from repro.pim.plan import fold_array, lower_program, plan_enabled
from repro.workloads.benchmarks import BENCHMARKS


def _run_mode(program, mode, chip_name="2GB"):
    """One fresh executor per mode: clocks all start at t=0."""
    ex = ChipExecutor(PimChip(CHIP_CONFIGS[chip_name]))
    if mode == "plan":
        return ex.run(ex.lower(program), functional=False)
    return ex.run(program, functional=False, batched=(mode == "batched"))


def _assert_reports_identical(a, b, what):
    """Field-by-field bit-identity, incl. dict key order (fold order)."""
    for f in dataclasses.fields(a):
        va, vb = getattr(a, f.name), getattr(b, f.name)
        assert va == vb, f"{what}: TimingReport.{f.name} diverged"
        if isinstance(va, dict):
            assert list(va) == list(vb), f"{what}: {f.name} key order diverged"
    assert a.phase_times() == b.phase_times(), f"{what}: phase_times diverged"
    assert list(a.phase_times()) == list(b.phase_times())


class TestBenchmarkBitIdentity:
    """All six paper benchmarks: serial == batched == plan, bit for bit."""

    @pytest.mark.parametrize("key", sorted(BENCHMARKS))
    def test_plan_matches_serial_and_batched(self, key):
        spec = BENCHMARKS[key]
        checked = build_check_program(
            spec.physics, spec.refinement_level, chip="2GB",
            flux_kind=spec.flux_kind, order=2,
        )
        serial = _run_mode(checked.program, "serial")
        batched = _run_mode(checked.program, "batched")
        plan = _run_mode(checked.program, "plan")
        _assert_reports_identical(serial, batched, f"{key} batched")
        _assert_reports_identical(serial, plan, f"{key} plan")
        # the headline fields the acceptance criteria name, explicitly:
        assert plan.total_time_s == serial.total_time_s
        assert plan.dynamic_energy_j == serial.dynamic_energy_j
        assert plan.transfers == serial.transfers
        assert plan.flits == serial.flits
        assert plan.hops == serial.hops


@pytest.fixture
def acoustic_program():
    checked = build_check_program("acoustic", 4, chip="2GB", order=2)
    return checked.program


class TestLowering:
    def test_plan_shape(self, acoustic_program):
        ex = ChipExecutor(PimChip(CHIP_CONFIGS["2GB"]))
        plan = ex.lower(acoustic_program)
        assert isinstance(plan, ExecutionPlan)
        assert plan.n_instructions == len(acoustic_program)
        n_xfer = sum(1 for i in acoustic_program if i.op is Opcode.TRANSFER)
        assert plan.n_transfers == n_xfer
        # every instruction lands in exactly one step
        covered = plan.n_dispatch + plan.n_transfers + sum(
            p.n for kind, p in plan.steps if kind == 0
        )
        assert covered == len(acoustic_program)
        assert 0.0 < plan.vectorized_fraction <= 1.0
        assert plan.chip_name == "2GB"

    def test_opcode_rows_match_stream(self, acoustic_program):
        from repro.pim.plan import OP_IDS

        ex = ChipExecutor(PimChip(CHIP_CONFIGS["2GB"]))
        plan = ex.lower(acoustic_program)
        for row, inst in zip(plan.array, acoustic_program):
            assert int(row["op"]) == OP_IDS[inst.op]

    def test_plan_reuse_counts(self, acoustic_program):
        from repro.obs import get_metrics

        m = get_metrics()
        ex = ChipExecutor(PimChip(CHIP_CONFIGS["2GB"]))
        runs0 = m.value("executor.plan.runs")
        lowered0 = m.value("executor.plan.lowered")
        plan = ex.lower(acoustic_program)
        ex.run(plan, functional=False)
        ex.run(plan, functional=False)
        ex.run(plan, functional=False)
        assert plan.replays == 3
        assert m.value("executor.plan.runs") - runs0 == 3
        assert m.value("executor.plan.lowered") - lowered0 == 1

    def test_replays_are_self_identical(self, acoustic_program):
        ex = ChipExecutor(PimChip(CHIP_CONFIGS["2GB"]))
        plan = ex.lower(acoustic_program)
        first = ex.run(plan, functional=False)
        ex.reset_clocks()
        second = ex.run(plan, functional=False)
        _assert_reports_identical(first, second, "replay")

    def test_lower_verify_runs_checker(self, acoustic_program):
        ex = ChipExecutor(PimChip(CHIP_CONFIGS["2GB"]))
        plan = ex.lower(acoustic_program, verify=True)
        assert plan.n_instructions == len(acoustic_program)


class TestFallbacks:
    """The plan path must step aside whenever it cannot be exact."""

    def test_functional_run_ignores_plan_path(self, acoustic_program):
        from repro.obs import get_metrics

        m = get_metrics()
        ex = ChipExecutor(PimChip(CHIP_CONFIGS["2GB"]))
        plan = ex.lower(acoustic_program)
        runs0 = m.value("executor.plan.runs")
        rep = ex.run(plan, functional=True)
        ex2 = ChipExecutor(PimChip(CHIP_CONFIGS["2GB"]))
        raw = ex2.run(acoustic_program, functional=True)
        assert rep.n_instructions == raw.n_instructions
        assert m.value("executor.plan.runs") == runs0

    def test_fault_model_falls_back_to_dispatch(self, acoustic_program):
        from repro.faults.model import FaultConfig, FaultModel
        from repro.obs import get_metrics

        m = get_metrics()
        # an *enabled* fault model (nonzero rate) must disable the plan path
        cfg = FaultConfig(seed=7, flip_rate=1e-5)
        ex = ChipExecutor(PimChip(CHIP_CONFIGS["2GB"]),
                          faults=FaultModel(cfg))
        plan = ex.lower(acoustic_program)
        runs0 = m.value("executor.plan.runs")
        rep = ex.run(plan, functional=False)
        assert m.value("executor.plan.runs") == runs0
        # the fallback is the ordinary dispatch path: same seed, same report
        ex2 = ChipExecutor(PimChip(CHIP_CONFIGS["2GB"]),
                           faults=FaultModel(FaultConfig(seed=7, flip_rate=1e-5)))
        raw = ex2.run(acoustic_program, functional=False)
        _assert_reports_identical(rep, raw, "fault fallback")

    def test_repro_plan_knob(self, monkeypatch):
        for off in ("off", "0", "false", "no", " OFF "):
            monkeypatch.setenv("REPRO_PLAN", off)
            assert not plan_enabled()
        for on in ("on", "1", "yes", ""):
            monkeypatch.setenv("REPRO_PLAN", on)
            assert plan_enabled()
        monkeypatch.delenv("REPRO_PLAN")
        assert plan_enabled()

    def test_compiler_honours_knob(self, monkeypatch, tmp_path):
        """REPRO_PLAN=off restores the batched path, bit-identically."""
        from repro.core.cache import CompileCache
        from repro.core.compiler import WavePimCompiler

        def compile_once():
            return WavePimCompiler(order=2).compile(
                "acoustic", 2, CHIP_CONFIGS["512MB"],
                cache=CompileCache(tmp_path / "c", enabled=False),
            )

        with_plan = compile_once()
        monkeypatch.setenv("REPRO_PLAN", "off")
        without = compile_once()
        assert with_plan.stage_times == without.stage_times


class TestStaleRoutes:
    """Satellite 1: a routing-epoch bump must never replay stale paths."""

    def test_invalidate_routes_bumps_epoch(self):
        chip = PimChip(CHIP_CONFIGS["512MB"])
        e0 = chip.routing_epoch
        chip.transfer_path(0, 5)  # populate the memo
        chip.invalidate_routes()
        assert chip.routing_epoch == e0 + 1

    def test_stale_plan_relowers_transparently(self, acoustic_program):
        from repro.obs import get_metrics

        m = get_metrics()
        ex = ChipExecutor(PimChip(CHIP_CONFIGS["2GB"]))
        plan = ex.lower(acoustic_program)
        fresh = ex.run(plan, functional=False)
        ex.chip.invalidate_routes()
        relowered0 = m.value("executor.plan.relowered")
        ex.reset_clocks()
        after = ex.run(plan, functional=False)
        assert m.value("executor.plan.relowered") == relowered0 + 1
        # same topology, so the re-lowered schedule is the same schedule
        _assert_reports_identical(fresh, after, "re-lowered")

    def test_mapper_remap_invalidates_chip_routes(self):
        """An ElementMapper spare-block remap bumps the live chip's epoch."""
        from repro.core.mapper import ElementMapper

        class _RemapFaults:
            """Stub: block 0 is bad, so every mapped block shifts by one."""

            def __init__(self):
                self.recorded = []

            def bad_blocks(self, n_blocks, block_rows, row_words):
                return {0}

            def record_remaps(self, n, detail=""):
                self.recorded.append((n, detail))

        cfg = CHIP_CONFIGS["512MB"]
        chip = PimChip(cfg)
        e0 = chip.routing_epoch
        faults = _RemapFaults()
        mapper = ElementMapper(2, cfg, 1, fault_model=faults,
                               chip_model=chip)
        assert faults.recorded, "stub never saw the remap"
        assert chip.routing_epoch == e0 + 1
        assert mapper.block_of(int(mapper.elements[0])) != 0

    def test_plan_records_lowering_epoch(self, acoustic_program):
        ex = ChipExecutor(PimChip(CHIP_CONFIGS["2GB"]))
        ex.chip.invalidate_routes()
        plan = ex.lower(acoustic_program)
        assert plan.routing_epoch == ex.chip.routing_epoch == 1


class TestFoldArray:
    """fold_array is the plan-side twin of the executor's _fold_add."""

    def test_matches_sequential_left_fold(self):
        rng = np.random.default_rng(3)
        for n in (1, 7, 64, 65, 500):
            vals = rng.standard_normal(n) * 1e-6
            base = 0.125
            acc = base
            for v in vals:
                acc = acc + v
            assert fold_array(base, vals) == acc  # bitwise, not approx

    def test_empty_values(self):
        assert fold_array(1.5, np.array([])) == 1.5


class TestLintRL004:
    """The repo lint rejects new per-instruction dispatch loops."""

    @staticmethod
    def _lint(tmp_path, rel, source):
        import importlib.util
        from pathlib import Path

        spec = importlib.util.spec_from_file_location(
            "lint_repo", Path(__file__).resolve().parents[1] / "scripts" / "lint_repo.py"
        )
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
        return [v[2] for v in mod._lint_file(path, tmp_path)]

    def test_flags_dispatch_loop(self, tmp_path):
        codes = self._lint(tmp_path, "src/repro/core/bad.py",
                           "def f(insts):\n"
                           "    for i in insts:\n"
                           "        if i.op == 1:\n"
                           "            pass\n")
        assert "RL004" in codes

    def test_allows_executor_and_comprehensions(self, tmp_path):
        codes = self._lint(tmp_path, "src/repro/pim/executor.py",
                           "def f(insts):\n"
                           "    for i in insts:\n"
                           "        x = i.op\n")
        assert "RL004" not in codes
        codes = self._lint(tmp_path, "src/repro/core/ok.py",
                           "def f(insts):\n"
                           "    return [i for i in insts if i.op == 1]\n")
        assert "RL004" not in codes


class TestRouteTable:
    def test_matches_inline_resolution(self):
        from repro.interconnect import HTree, Transfer, schedule_transfers
        from repro.interconnect.routing import RouteTable

        h = HTree(64)
        transfers = [Transfer(i, (i * 7 + 3) % 64, 32) for i in range(50)]
        plain = schedule_transfers(h, transfers)
        routes = RouteTable(h)
        memo = schedule_transfers(h, transfers, routes=routes)
        assert plain.makespan == memo.makespan
        assert plain.switch_busy_time == memo.switch_busy_time
        assert plain.n_transfers == memo.n_transfers
        assert len(routes._paths) > 0

    def test_invalidate_clears_and_bumps(self):
        from repro.interconnect import HTree
        from repro.interconnect.routing import RouteTable

        routes = RouteTable(HTree(64))
        routes.path(0, 9)
        assert routes._paths
        e0 = routes.epoch
        routes.invalidate()
        assert not routes._paths
        assert routes.epoch == e0 + 1

    def test_rejects_foreign_interconnect(self):
        from repro.interconnect import HTree, Transfer, schedule_transfers
        from repro.interconnect.routing import RouteTable

        with pytest.raises(ValueError):
            schedule_transfers(HTree(64), [Transfer(0, 1, 32)],
                               routes=RouteTable(HTree(16)))


class TestLowerProgramDirect:
    def test_rejects_transfer_without_source(self):
        from repro.pim.isa import Instruction

        chip = PimChip(CHIP_CONFIGS["512MB"])
        ex = ChipExecutor(chip)
        bad = [Instruction(op=Opcode.TRANSFER, block=1, dst=0, src1=0,
                           rows=(0, 4), words=1)]
        with pytest.raises(ValueError):
            lower_program(chip, ex.costs, bad)
