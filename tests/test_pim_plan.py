"""Execution plans as the universal execution path: bit-identity everywhere.

The contract under test (DESIGN.md §13): *every* ``ChipExecutor.run`` —
analytic, functional, and fault-injecting — replays a lowered
:class:`~repro.pim.plan.ExecutionPlan`; the per-instruction serial
dispatcher survives only as the audit reference behind
``run(..., serial=True)``.  Plan replay must be *bit-identical* to that
reference on every paper benchmark: same :class:`TimingReport` (totals,
phase split, interconnect accounting, dict key order), same block states
after functional execution, same fault-event digests under a seeded fault
model.  Plans transparently re-lower when the chip's routing epoch moves,
and the MASIM-style makespan scheduler (:mod:`repro.pim.schedule`) may
only emit permutations the dependency DAG proves legal (PL004).
"""

import dataclasses
import hashlib

import numpy as np
import pytest

from repro.analysis.programs import build_check_program
from repro.pim.chip import PimChip
from repro.pim.executor import ChipExecutor, ExecutionPlan
from repro.pim.isa import Opcode
from repro.pim.params import CHIP_CONFIGS
from repro.pim.plan import fold_array, lower_program, plan_enabled
from repro.workloads.benchmarks import BENCHMARKS


def _run_mode(program, mode, chip_name="2GB", functional=False, fault_cfg=None):
    """One fresh executor per mode: clocks all start at t=0.

    Returns ``(chip, executor, report)`` so callers can compare block
    states and fault-event digests, not just reports.
    """
    chip = PimChip(CHIP_CONFIGS[chip_name])
    faults = None
    if fault_cfg is not None:
        from repro.faults.model import FaultModel

        faults = FaultModel(fault_cfg)
    ex = ChipExecutor(chip, faults=faults)
    rep = ex.run(program, functional=functional, serial=(mode == "serial"))
    return chip, ex, rep


def _state_digest(chip):
    """sha256 over every materialized block's data, in (tile, block) order."""
    h = hashlib.sha256()
    for tid in sorted(chip._tiles):
        tile = chip._tiles[tid]
        for lid in sorted(tile._blocks):
            h.update(tile._blocks[lid].data.tobytes())
    return h.hexdigest()


def _assert_reports_identical(a, b, what):
    """Field-by-field bit-identity, incl. dict key order (fold order)."""
    for f in dataclasses.fields(a):
        va, vb = getattr(a, f.name), getattr(b, f.name)
        assert va == vb, f"{what}: TimingReport.{f.name} diverged"
        if isinstance(va, dict):
            assert list(va) == list(vb), f"{what}: {f.name} key order diverged"
    assert a.phase_times() == b.phase_times(), f"{what}: phase_times diverged"
    assert list(a.phase_times()) == list(b.phase_times())


def _benchmark_program(key):
    spec = BENCHMARKS[key]
    return build_check_program(
        spec.physics, spec.refinement_level, chip="2GB",
        flux_kind=spec.flux_kind, order=2,
    ).program


class TestBenchmarkBitIdentity:
    """All six paper benchmarks: serial audit == plan replay, bit for bit —
    analytic, functional, and under a seeded fault model (the satellite
    sweep that proves plan replay is safe as the only execution path)."""

    @pytest.mark.parametrize("key", sorted(BENCHMARKS))
    def test_analytic_plan_matches_serial(self, key):
        program = _benchmark_program(key)
        _, _, serial = _run_mode(program, "serial")
        _, _, plan = _run_mode(program, "plan")
        _assert_reports_identical(serial, plan, f"{key} plan")
        # the headline fields the acceptance criteria name, explicitly:
        assert plan.total_time_s == serial.total_time_s
        assert plan.dynamic_energy_j == serial.dynamic_energy_j
        assert plan.transfers == serial.transfers
        assert plan.flits == serial.flits
        assert plan.hops == serial.hops

    @pytest.mark.parametrize("key", sorted(BENCHMARKS))
    def test_functional_plan_matches_serial(self, key):
        program = _benchmark_program(key)
        chip_s, _, serial = _run_mode(program, "serial", functional=True)
        chip_p, _, plan = _run_mode(program, "plan", functional=True)
        _assert_reports_identical(serial, plan, f"{key} functional")
        assert _state_digest(chip_p) == _state_digest(chip_s)

    @pytest.mark.parametrize("key", sorted(BENCHMARKS))
    def test_faulty_plan_matches_serial(self, key):
        from repro.faults.model import FaultConfig

        program = _benchmark_program(key)
        cfg = FaultConfig.at_rate(1e-4, seed=11)
        chip_s, ex_s, serial = _run_mode(program, "serial", functional=True,
                                         fault_cfg=cfg)
        chip_p, ex_p, plan = _run_mode(program, "plan", functional=True,
                                       fault_cfg=cfg)
        _assert_reports_identical(serial, plan, f"{key} faulty")
        assert ex_p.faults.event_digest() == ex_s.faults.event_digest()
        assert _state_digest(chip_p) == _state_digest(chip_s)


@pytest.fixture
def acoustic_program():
    checked = build_check_program("acoustic", 4, chip="2GB", order=2)
    return checked.program


class TestLowering:
    def test_plan_shape(self, acoustic_program):
        ex = ChipExecutor(PimChip(CHIP_CONFIGS["2GB"]))
        plan = ex.lower(acoustic_program)
        assert isinstance(plan, ExecutionPlan)
        assert plan.n_instructions == len(acoustic_program)
        n_xfer = sum(1 for i in acoustic_program if i.op is Opcode.TRANSFER)
        assert plan.n_transfers == n_xfer
        # every instruction lands in exactly one step
        covered = plan.n_dispatch + plan.n_transfers + sum(
            p.n for kind, p in plan.steps if kind == 0
        )
        assert covered == len(acoustic_program)
        assert 0.0 < plan.vectorized_fraction <= 1.0
        assert plan.chip_name == "2GB"

    def test_opcode_rows_match_stream(self, acoustic_program):
        from repro.pim.plan import OP_IDS

        ex = ChipExecutor(PimChip(CHIP_CONFIGS["2GB"]))
        plan = ex.lower(acoustic_program)
        for row, inst in zip(plan.array, acoustic_program):
            assert int(row["op"]) == OP_IDS[inst.op]

    def test_plan_reuse_counts(self, acoustic_program):
        from repro.obs import get_metrics

        m = get_metrics()
        ex = ChipExecutor(PimChip(CHIP_CONFIGS["2GB"]))
        runs0 = m.value("executor.plan.runs")
        lowered0 = m.value("executor.plan.lowered")
        plan = ex.lower(acoustic_program)
        ex.run(plan, functional=False)
        ex.run(plan, functional=False)
        ex.run(plan, functional=False)
        assert plan.replays == 3
        assert m.value("executor.plan.runs") - runs0 == 3
        assert m.value("executor.plan.lowered") - lowered0 == 1

    def test_replays_are_self_identical(self, acoustic_program):
        ex = ChipExecutor(PimChip(CHIP_CONFIGS["2GB"]))
        plan = ex.lower(acoustic_program)
        first = ex.run(plan, functional=False)
        ex.reset_clocks()
        second = ex.run(plan, functional=False)
        _assert_reports_identical(first, second, "replay")

    def test_lower_verify_runs_checker(self, acoustic_program):
        ex = ChipExecutor(PimChip(CHIP_CONFIGS["2GB"]))
        plan = ex.lower(acoustic_program, verify=True)
        assert plan.n_instructions == len(acoustic_program)


class TestUniversalPath:
    """Plan replay is the only execution path; ``serial=True`` is the audit."""

    def test_functional_run_takes_plan_path(self, acoustic_program):
        from repro.obs import get_metrics

        m = get_metrics()
        ex = ChipExecutor(PimChip(CHIP_CONFIGS["2GB"]))
        plan = ex.lower(acoustic_program)
        runs0 = m.value("executor.plan.runs")
        rep = ex.run(plan, functional=True)
        assert m.value("executor.plan.runs") == runs0 + 1
        # ...and it matches the serial audit reference exactly.
        chip2 = PimChip(CHIP_CONFIGS["2GB"])
        ex2 = ChipExecutor(chip2)
        raw = ex2.run(acoustic_program, functional=True, serial=True)
        _assert_reports_identical(rep, raw, "functional plan")
        assert _state_digest(ex.chip) == _state_digest(chip2)

    def test_fault_model_stays_on_plan_path(self, acoustic_program):
        from repro.faults.model import FaultConfig, FaultModel
        from repro.obs import get_metrics

        m = get_metrics()
        # an *enabled* fault model (nonzero rate) also replays the plan
        cfg = FaultConfig(seed=7, flip_rate=1e-5)
        ex = ChipExecutor(PimChip(CHIP_CONFIGS["2GB"]),
                          faults=FaultModel(cfg))
        plan = ex.lower(acoustic_program)
        runs0 = m.value("executor.plan.runs")
        rep = ex.run(plan, functional=False)
        assert m.value("executor.plan.runs") == runs0 + 1
        # bit-identical to the serial audit: same seed, same report
        ex2 = ChipExecutor(PimChip(CHIP_CONFIGS["2GB"]),
                           faults=FaultModel(FaultConfig(seed=7, flip_rate=1e-5)))
        raw = ex2.run(acoustic_program, functional=False, serial=True)
        _assert_reports_identical(rep, raw, "fault plan")
        assert ex.faults.event_digest() == ex2.faults.event_digest()

    def test_serial_runs_are_counted(self, acoustic_program):
        from repro.obs import get_metrics

        m = get_metrics()
        ex = ChipExecutor(PimChip(CHIP_CONFIGS["2GB"]))
        serial0 = m.value("executor.serial.runs")
        plan0 = m.value("executor.plan.runs")
        ex.run(acoustic_program, functional=False, serial=True)
        assert m.value("executor.serial.runs") == serial0 + 1
        assert m.value("executor.plan.runs") == plan0

    def test_repro_plan_knob(self, monkeypatch):
        for off in ("off", "0", "false", "no", " OFF "):
            monkeypatch.setenv("REPRO_PLAN", off)
            assert not plan_enabled()
        for on in ("on", "1", "yes", ""):
            monkeypatch.setenv("REPRO_PLAN", on)
            assert plan_enabled()
        monkeypatch.delenv("REPRO_PLAN")
        assert plan_enabled()

    def test_compiler_honours_knob(self, monkeypatch, tmp_path):
        """REPRO_PLAN=off restores the serial audit path, bit-identically."""
        from repro.core.cache import CompileCache
        from repro.core.compiler import WavePimCompiler

        def compile_once():
            return WavePimCompiler(order=2).compile(
                "acoustic", 2, CHIP_CONFIGS["512MB"],
                cache=CompileCache(tmp_path / "c", enabled=False),
            )

        with_plan = compile_once()
        monkeypatch.setenv("REPRO_PLAN", "off")
        without = compile_once()
        assert with_plan.stage_times == without.stage_times


class TestStaleRoutes:
    """Satellite 1: a routing-epoch bump must never replay stale paths."""

    def test_invalidate_routes_bumps_epoch(self):
        chip = PimChip(CHIP_CONFIGS["512MB"])
        e0 = chip.routing_epoch
        chip.transfer_path(0, 5)  # populate the memo
        chip.invalidate_routes()
        assert chip.routing_epoch == e0 + 1

    def test_stale_plan_relowers_transparently(self, acoustic_program):
        from repro.obs import get_metrics

        m = get_metrics()
        ex = ChipExecutor(PimChip(CHIP_CONFIGS["2GB"]))
        plan = ex.lower(acoustic_program)
        fresh = ex.run(plan, functional=False)
        ex.chip.invalidate_routes()
        relowered0 = m.value("executor.plan.relowered")
        ex.reset_clocks()
        after = ex.run(plan, functional=False)
        assert m.value("executor.plan.relowered") == relowered0 + 1
        # same topology, so the re-lowered schedule is the same schedule
        _assert_reports_identical(fresh, after, "re-lowered")

    def test_mapper_remap_invalidates_chip_routes(self):
        """An ElementMapper spare-block remap bumps the live chip's epoch."""
        from repro.core.mapper import ElementMapper

        class _RemapFaults:
            """Stub: block 0 is bad, so every mapped block shifts by one."""

            def __init__(self):
                self.recorded = []

            def bad_blocks(self, n_blocks, block_rows, row_words):
                return {0}

            def record_remaps(self, n, detail=""):
                self.recorded.append((n, detail))

        cfg = CHIP_CONFIGS["512MB"]
        chip = PimChip(cfg)
        e0 = chip.routing_epoch
        faults = _RemapFaults()
        mapper = ElementMapper(2, cfg, 1, fault_model=faults,
                               chip_model=chip)
        assert faults.recorded, "stub never saw the remap"
        assert chip.routing_epoch == e0 + 1
        assert mapper.block_of(int(mapper.elements[0])) != 0

    def test_plan_records_lowering_epoch(self, acoustic_program):
        ex = ChipExecutor(PimChip(CHIP_CONFIGS["2GB"]))
        ex.chip.invalidate_routes()
        plan = ex.lower(acoustic_program)
        assert plan.routing_epoch == ex.chip.routing_epoch >= 1


class TestScheduler:
    """MASIM-style makespan scheduling: legal, deterministic, never worse."""

    @staticmethod
    def _lowered(program, chip_name="2GB"):
        ex = ChipExecutor(PimChip(CHIP_CONFIGS[chip_name]))
        return ex, ex.lower(program)

    def test_dependency_edges_raw_waw_war(self):
        from repro.pim.isa import Instruction
        from repro.pim.schedule import dependency_edges

        prog = [
            Instruction(Opcode.BROADCAST, block=0, rows=(0, 8), dst=1, value=1.0),
            Instruction(Opcode.BROADCAST, block=0, rows=(0, 8), dst=2, value=2.0),
            Instruction(Opcode.ADD, block=0, rows=(0, 8), dst=3, src1=1, src2=2),
            Instruction(Opcode.BROADCAST, block=0, rows=(0, 8), dst=1, value=9.0),
            Instruction(Opcode.BROADCAST, block=1, rows=(0, 8), dst=1, value=5.0),
        ]
        preds = dependency_edges(prog)
        assert preds[0] == [] and preds[1] == []
        assert preds[2] == [0, 1]           # RAW on cols 1 and 2
        assert 2 in preds[3]                # WAR: rewrite col 1 after the read
        assert preds[4] == []               # different block: independent

    def test_barrier_is_a_full_fence(self):
        from repro.pim.isa import Instruction, barrier
        from repro.pim.schedule import dependency_edges

        prog = [
            Instruction(Opcode.BROADCAST, block=0, rows=(0, 4), dst=1, value=1.0),
            barrier(),
            Instruction(Opcode.BROADCAST, block=7, rows=(0, 4), dst=1, value=2.0),
        ]
        preds = dependency_edges(prog)
        assert preds[1] == [0]
        assert preds[2] == [1]  # fenced even though the blocks are disjoint

    def test_verify_order_rejects_violations(self):
        from repro.pim.schedule import verify_order

        preds = [[], [0], [1]]
        assert verify_order(preds, [0, 1, 2]) == []
        assert verify_order(preds, [1, 0, 2])  # 1 before its dep 0
        assert verify_order(preds, [0, 0, 2])  # not a permutation

    def test_schedule_order_is_legal_and_deterministic(self, acoustic_program):
        from repro.pim.schedule import dependency_edges, schedule_order, verify_order

        ex, plan = self._lowered(acoustic_program)
        preds = dependency_edges(plan.instructions)
        order = schedule_order(ex, plan, preds)
        assert verify_order(preds, order) == []
        assert order == schedule_order(ex, plan, preds)

    def test_schedule_plan_never_worse_and_reports_stats(self, acoustic_program):
        from repro.pim.schedule import schedule_plan

        ex, plan = self._lowered(acoustic_program)
        sched = schedule_plan(ex, plan)
        stats = sched.schedule_stats
        assert stats is not None
        assert stats["scheduled_makespan_s"] <= stats["emission_makespan_s"]
        assert stats["improvement"] >= 1.0
        assert stats["kept"] == (stats["improvement"] > 1.0)
        assert len(stats["permutation"]) == plan.n_instructions
        # the scheduled plan replays like any other plan
        ex.reset_clocks()
        rep = ex.run(sched, functional=False)
        clock = ex.chip.config.clock_hz
        assert rep.total_time_s == pytest.approx(
            stats["scheduled_makespan_s"], rel=1e-12)
        assert rep.makespan_cycles == pytest.approx(
            rep.total_time_s * clock, rel=1e-12)
        assert rep.emission_makespan_cycles == pytest.approx(
            stats["emission_makespan_s"] * clock, rel=1e-12)

    def test_scheduled_functional_state_matches_serial(self, acoustic_program):
        from repro.pim.schedule import schedule_plan

        chip_s, _, _ = _run_mode(acoustic_program, "serial", functional=True)
        chip_p = PimChip(CHIP_CONFIGS["2GB"])
        ex = ChipExecutor(chip_p)
        sched = schedule_plan(ex, ex.lower(acoustic_program))
        ex.reset_clocks()
        ex.run(sched, functional=True)
        assert _state_digest(chip_p) == _state_digest(chip_s)

    def test_repro_sched_knob(self, monkeypatch):
        from repro.pim.schedule import schedule_enabled

        monkeypatch.delenv("REPRO_SCHED", raising=False)
        assert not schedule_enabled()  # default off
        for on in ("on", "1", "true", "yes", " ON "):
            monkeypatch.setenv("REPRO_SCHED", on)
            assert schedule_enabled()
        monkeypatch.setenv("REPRO_SCHED", "off")
        assert not schedule_enabled()

    @pytest.mark.parametrize("key", sorted(BENCHMARKS)[:2])
    def test_pl004_clean_on_benchmarks(self, key):
        from repro.analysis.checker import CheckContext
        from repro.analysis.lowering import LoweringPass

        program = _benchmark_program(key)
        chip = PimChip(CHIP_CONFIGS["2GB"])
        findings = LoweringPass().run(program, CheckContext.for_chip(chip))
        assert [f for f in findings if f.code == "PL004"] == []


class TestFoldArray:
    """fold_array is the plan-side twin of the executor's _fold_add."""

    def test_matches_sequential_left_fold(self):
        rng = np.random.default_rng(3)
        for n in (1, 7, 64, 65, 500):
            vals = rng.standard_normal(n) * 1e-6
            base = 0.125
            acc = base
            for v in vals:
                acc = acc + v
            assert fold_array(base, vals) == acc  # bitwise, not approx

    def test_empty_values(self):
        assert fold_array(1.5, np.array([])) == 1.5


class TestLintRules:
    """The repo lint rejects dispatch loops (RL004) and _dispatch leaks (RL005)."""

    @staticmethod
    def _lint(tmp_path, rel, source):
        import importlib.util
        from pathlib import Path

        spec = importlib.util.spec_from_file_location(
            "lint_repo", Path(__file__).resolve().parents[1] / "scripts" / "lint_repo.py"
        )
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
        return [v[2] for v in mod._lint_file(path, tmp_path)]

    def test_flags_dispatch_loop(self, tmp_path):
        codes = self._lint(tmp_path, "src/repro/core/bad.py",
                           "def f(insts):\n"
                           "    for i in insts:\n"
                           "        if i.op == 1:\n"
                           "            pass\n")
        assert "RL004" in codes

    def test_allows_executor_and_comprehensions(self, tmp_path):
        codes = self._lint(tmp_path, "src/repro/pim/executor.py",
                           "def f(insts):\n"
                           "    for i in insts:\n"
                           "        x = i.op\n")
        assert "RL004" not in codes
        codes = self._lint(tmp_path, "src/repro/core/ok.py",
                           "def f(insts):\n"
                           "    return [i for i in insts if i.op == 1]\n")
        assert "RL004" not in codes

    def test_scheduler_may_walk_streams(self, tmp_path):
        codes = self._lint(tmp_path, "src/repro/pim/schedule.py",
                           "def f(insts):\n"
                           "    for i in insts:\n"
                           "        x = i.op\n")
        assert "RL004" not in codes

    def test_flags_dispatch_reference_outside_executor(self, tmp_path):
        codes = self._lint(tmp_path, "src/repro/core/bad.py",
                           "def f(ex, inst):\n"
                           "    return ex._dispatch(inst, True, None)\n")
        assert "RL005" in codes

    def test_allows_dispatch_inside_executor(self, tmp_path):
        codes = self._lint(tmp_path, "src/repro/pim/executor.py",
                           "def f(ex, inst):\n"
                           "    return ex._dispatch(inst, True, None)\n")
        assert "RL005" not in codes

    def test_flags_silent_broad_except(self, tmp_path):
        codes = self._lint(tmp_path, "src/repro/core/bad.py",
                           "def f():\n"
                           "    try:\n"
                           "        g()\n"
                           "    except Exception:\n"
                           "        pass\n")
        assert "RL007" in codes

    def test_flags_bare_except_and_tuple(self, tmp_path):
        codes = self._lint(tmp_path, "src/repro/core/bad.py",
                           "def f():\n"
                           "    try:\n"
                           "        g()\n"
                           "    except:\n"
                           "        ...\n")
        assert "RL007" in codes
        codes = self._lint(tmp_path, "src/repro/core/bad2.py",
                           "def f():\n"
                           "    try:\n"
                           "        g()\n"
                           "    except (ValueError, Exception):\n"
                           "        pass\n")
        assert "RL007" in codes

    def test_allows_narrow_or_logging_except(self, tmp_path):
        codes = self._lint(tmp_path, "src/repro/core/ok.py",
                           "def f():\n"
                           "    try:\n"
                           "        g()\n"
                           "    except ValueError:\n"
                           "        pass\n")
        assert "RL007" not in codes
        codes = self._lint(tmp_path, "src/repro/core/ok2.py",
                           "def f(log):\n"
                           "    try:\n"
                           "        g()\n"
                           "    except Exception:\n"
                           "        log.warning('g failed')\n")
        assert "RL007" not in codes


class TestRouteTable:
    def test_matches_inline_resolution(self):
        from repro.interconnect import HTree, Transfer, schedule_transfers
        from repro.interconnect.routing import RouteTable

        h = HTree(64)
        transfers = [Transfer(i, (i * 7 + 3) % 64, 32) for i in range(50)]
        plain = schedule_transfers(h, transfers)
        routes = RouteTable(h)
        memo = schedule_transfers(h, transfers, routes=routes)
        assert plain.makespan == memo.makespan
        assert plain.switch_busy_time == memo.switch_busy_time
        assert plain.n_transfers == memo.n_transfers
        assert len(routes._paths) > 0

    def test_invalidate_clears_and_bumps(self):
        from repro.interconnect import HTree
        from repro.interconnect.routing import RouteTable

        routes = RouteTable(HTree(64))
        routes.path(0, 9)
        assert routes._paths
        e0 = routes.epoch
        routes.invalidate()
        assert not routes._paths
        assert routes.epoch == e0 + 1

    def test_rejects_foreign_interconnect(self):
        from repro.interconnect import HTree, Transfer, schedule_transfers
        from repro.interconnect.routing import RouteTable

        with pytest.raises(ValueError):
            schedule_transfers(HTree(64), [Transfer(0, 1, 32)],
                               routes=RouteTable(HTree(16)))


class TestLowerProgramDirect:
    def test_rejects_transfer_without_source(self):
        from repro.pim.isa import Instruction

        chip = PimChip(CHIP_CONFIGS["512MB"])
        ex = ChipExecutor(chip)
        bad = [Instruction(op=Opcode.TRANSFER, block=1, dst=0, src1=0,
                           rows=(0, 4), words=1)]
        with pytest.raises(ValueError):
            lower_program(chip, ex.costs, bad)
