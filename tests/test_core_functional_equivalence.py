"""The flagship verification: the compiled PIM kernels compute the same
wavefield as the numpy dG solver (up to float32 rounding).

Covers both mappings (one-block naive and Fig. 8/9 four-block expansion),
both flux kinds, heterogeneous materials, and multi-step evolution.
"""

import numpy as np
import pytest

from repro.core.kernels.acoustic import (
    AcousticFourBlockKernels,
    AcousticOneBlockKernels,
)
from repro.core.mapper import ElementMapper
from repro.dg import (
    AcousticMaterial,
    AcousticOperator,
    HexMesh,
    ReferenceElement,
    cfl_timestep,
)
from repro.dg.timestepping import LSRK45
from repro.pim.chip import PimChip
from repro.pim.executor import ChipExecutor
from repro.pim.params import CHIP_CONFIGS

ORDER = 2
LEVEL = 1
TOL = 5e-6  # float32 end-to-end


def _setup(flux, g, seed=0):
    mesh = HexMesh.from_refinement_level(LEVEL)
    elem = ReferenceElement(ORDER)
    rng = np.random.default_rng(seed)
    mat = AcousticMaterial(
        kappa=rng.uniform(1.0, 2.0, mesh.n_elements),
        rho=rng.uniform(0.5, 1.5, mesh.n_elements),
    )
    chip = PimChip(CHIP_CONFIGS["512MB"])
    mapper = ElementMapper(mesh.m, chip.config, g)
    cls = AcousticOneBlockKernels if g == 1 else AcousticFourBlockKernels
    kern = cls(mesh, elem, mat, mapper, flux_kind=flux)
    op = AcousticOperator(mesh, mat, elem, flux=flux)
    state = (0.1 * rng.standard_normal((4, mesh.n_elements, elem.n_nodes))).astype(
        np.float32
    ).astype(np.float64)
    return mesh, elem, mat, chip, kern, op, state


def _boot(chip, kern, state):
    ex = ChipExecutor(chip)
    ex.run(kern.setup() + kern.load_state(state.astype(np.float32)), functional=True)
    return ex


@pytest.mark.parametrize("g", [1, 4])
@pytest.mark.parametrize("flux", ["central", "riemann"])
class TestRhsEquivalence:
    def test_volume_matches_numpy(self, flux, g):
        mesh, elem, mat, chip, kern, op, state = _setup(flux, g)
        ex = _boot(chip, kern, state)
        ex.run(kern.volume(), functional=True)
        got = kern.read_contributions(chip)
        ref = op.volume_rhs(state)
        err = np.max(np.abs(got - ref)) / np.max(np.abs(ref))
        assert err < TOL

    def test_volume_plus_flux_matches_full_rhs(self, flux, g):
        mesh, elem, mat, chip, kern, op, state = _setup(flux, g)
        ex = _boot(chip, kern, state)
        ex.run(kern.volume() + kern.flux(), functional=True)
        got = kern.read_contributions(chip)
        ref = op.rhs(state)
        err = np.max(np.abs(got - ref)) / np.max(np.abs(ref))
        assert err < TOL

    def test_state_roundtrip(self, flux, g):
        mesh, elem, mat, chip, kern, op, state = _setup(flux, g)
        _boot(chip, kern, state)
        got = kern.read_state(chip)
        assert np.allclose(got, state.astype(np.float32))


@pytest.mark.parametrize("g", [1, 4])
class TestTimeStepEquivalence:
    def test_three_full_steps(self, g):
        flux = "riemann"
        mesh, elem, mat, chip, kern, op, state = _setup(flux, g, seed=3)
        dt = cfl_timestep(mesh.h, mat.max_speed, ORDER, cfl=0.3)

        ref = state.copy()
        stepper = LSRK45(lambda s: op.rhs(s))
        aux = np.zeros_like(ref)
        for _ in range(3):
            stepper.step(ref, 0.0, dt, aux)

        ex = _boot(chip, kern, state)
        insts = []
        for _ in range(3):
            insts += kern.time_step(dt)
        ex.run(insts, functional=True)
        got = kern.read_state(chip)
        err = np.max(np.abs(got - ref)) / np.max(np.abs(ref))
        assert err < 5e-5  # float32 accumulation over 15 RK stages

    def test_energy_trajectory_matches(self, g):
        """The PIM evolution dissipates energy like the reference (upwind)."""
        flux = "riemann"
        mesh, elem, mat, chip, kern, op, state = _setup(flux, g, seed=4)
        dt = cfl_timestep(mesh.h, mat.max_speed, ORDER, cfl=0.3)
        e0 = op.energy(state)
        ex = _boot(chip, kern, state)
        ex.run(kern.time_step(dt) + kern.time_step(dt), functional=True)
        e_pim = op.energy(kern.read_state(chip).astype(np.float64))
        assert e_pim < e0
        ref = state.copy()
        stepper = LSRK45(lambda s: op.rhs(s))
        aux = np.zeros_like(ref)
        for _ in range(2):
            stepper.step(ref, 0.0, dt, aux)
        assert e_pim == pytest.approx(op.energy(ref), rel=1e-4)


class TestExpansionBehaviour:
    def test_four_block_faster_than_one_block_per_stage(self):
        """§6.2.1: the expanded implementation beats the naive one."""
        _, _, _, chip1, kern1, _, state = _setup("riemann", 1, seed=5)
        ex1 = _boot(chip1, kern1, state)
        rep1 = ex1.run(kern1.volume(elements=[0]), functional=True)

        _, _, _, chip4, kern4, _, _ = _setup("riemann", 4, seed=5)
        ex4 = _boot(chip4, kern4, state)
        rep4 = ex4.run(kern4.volume(elements=[0]), functional=True)
        assert rep4.total_time_s < rep1.total_time_s

    def test_four_block_uses_more_transfers(self):
        """...at the price of 'data duplication and inter-block data
        movement' (§6.2.1)."""
        _, _, _, chip1, kern1, _, state = _setup("riemann", 1, seed=6)
        _, _, _, chip4, kern4, _, _ = _setup("riemann", 4, seed=6)
        from repro.pim.isa import Opcode

        n1 = sum(i.op is Opcode.TRANSFER for i in kern1.volume(elements=[0]))
        n4 = sum(i.op is Opcode.TRANSFER for i in kern4.volume(elements=[0]))
        assert n4 > n1


# ------------------------------------------------------------------------- #
# Elastic (E_r four-block) functional equivalence
# ------------------------------------------------------------------------- #

from repro.core.kernels.elastic import ElasticFourBlockKernels  # noqa: E402
from repro.dg import ElasticMaterial, ElasticOperator  # noqa: E402


def _setup_elastic(flux, seed=0):
    mesh = HexMesh.from_refinement_level(LEVEL)
    elem = ReferenceElement(ORDER)
    rng = np.random.default_rng(seed)
    mat = ElasticMaterial(
        lam=rng.uniform(1.0, 2.0, mesh.n_elements),
        mu=rng.uniform(0.5, 1.5, mesh.n_elements),
        rho=rng.uniform(0.8, 1.2, mesh.n_elements),
    )
    chip = PimChip(CHIP_CONFIGS["512MB"])
    mapper = ElementMapper(mesh.m, chip.config, 4)
    kern = ElasticFourBlockKernels(mesh, elem, mat, mapper, flux_kind=flux)
    op = ElasticOperator(mesh, mat, elem, flux=flux)
    state = (0.1 * rng.standard_normal((9, mesh.n_elements, elem.n_nodes))).astype(
        np.float32
    ).astype(np.float64)
    return mesh, elem, mat, chip, kern, op, state


@pytest.mark.parametrize("flux", ["central", "riemann"])
class TestElasticRhsEquivalence:
    def test_volume_matches_numpy(self, flux):
        mesh, elem, mat, chip, kern, op, state = _setup_elastic(flux)
        ex = ChipExecutor(chip)
        ex.run(kern.setup() + kern.load_state(state.astype(np.float32)), functional=True)
        ex.run(kern.volume(), functional=True)
        got = kern.read_contributions(chip)
        ref = op.volume_rhs(state)
        err = np.max(np.abs(got - ref)) / np.max(np.abs(ref))
        assert err < TOL

    def test_full_rhs_matches_numpy(self, flux):
        """Nine-variable heterogeneous elastic RHS on four blocks =
        the numpy operator, for central AND exact-Riemann fluxes."""
        mesh, elem, mat, chip, kern, op, state = _setup_elastic(flux, seed=1)
        ex = ChipExecutor(chip)
        ex.run(kern.setup() + kern.load_state(state.astype(np.float32)), functional=True)
        ex.run(kern.volume() + kern.flux(), functional=True)
        got = kern.read_contributions(chip)
        ref = op.rhs(state)
        err = np.max(np.abs(got - ref)) / np.max(np.abs(ref))
        assert err < TOL

    def test_two_full_time_steps(self, flux):
        mesh, elem, mat, chip, kern, op, state = _setup_elastic(flux, seed=2)
        dt = cfl_timestep(mesh.h, mat.max_speed, ORDER, cfl=0.3)
        ref = state.copy()
        stepper = LSRK45(lambda s: op.rhs(s))
        aux = np.zeros_like(ref)
        for _ in range(2):
            stepper.step(ref, 0.0, dt, aux)
        ex = ChipExecutor(chip)
        ex.run(kern.setup() + kern.load_state(state.astype(np.float32)), functional=True)
        ex.run(kern.time_step(dt) + kern.time_step(dt), functional=True)
        got = kern.read_state(chip)
        err = np.max(np.abs(got - ref)) / np.max(np.abs(ref))
        assert err < 5e-5
