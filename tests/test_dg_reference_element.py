"""Reference element: differentiation, faces, integration, node maps."""

import numpy as np
import pytest

from repro.dg.reference_element import (
    FACE_AXIS,
    FACE_NORMALS,
    FACE_SIDE,
    ReferenceElement,
    opposite_face,
)


@pytest.fixture(scope="module")
def e3():
    return ReferenceElement(3)


class TestConstruction:
    def test_rejects_order_zero(self):
        with pytest.raises(ValueError):
            ReferenceElement(0)

    @pytest.mark.parametrize("order", [1, 2, 3, 7])
    def test_counts(self, order):
        e = ReferenceElement(order)
        assert e.npts == order + 1
        assert e.n_nodes == (order + 1) ** 3
        assert e.face_nodes.shape == (6, (order + 1) ** 2)

    def test_order7_is_paper_element(self):
        assert ReferenceElement(7).n_nodes == 512

    def test_node_weights_sum(self, e3):
        """Tensor weights integrate the unit reference volume (= 8)."""
        assert np.sum(e3.node_weights) == pytest.approx(8.0)

    def test_node_coords_flat_order(self, e3):
        p = e3.npts
        # node n = i + p j + p^2 k
        for n in (0, 1, p, p * p, e3.n_nodes - 1):
            i, j, k = n % p, (n // p) % p, n // (p * p)
            expect = [e3.nodes_1d[i], e3.nodes_1d[j], e3.nodes_1d[k]]
            assert np.allclose(e3.node_coords[n], expect)


class TestDifferentiation:
    def test_rows_sum_to_zero(self, e3):
        assert np.allclose(e3.diff_1d.sum(axis=1), 0.0, atol=1e-12)

    def test_exact_on_monomials_1d(self, e3):
        x = e3.nodes_1d
        for deg in range(e3.order + 1):
            d = e3.diff_1d @ (x**deg)
            expect = deg * x ** max(deg - 1, 0) if deg else np.zeros_like(x)
            assert np.allclose(d, expect, atol=1e-10)

    @pytest.mark.parametrize("axis", [0, 1, 2])
    def test_deriv_exact_on_polynomials(self, e3, axis):
        x, y, z = (e3.node_coords[:, i] for i in range(3))
        f = x**2 * y + y * z**2 + x * y * z
        grads = {0: 2 * x * y + y * z, 1: x**2 + z**2 + x * z, 2: 2 * y * z + x * y}
        got = e3.deriv(f[None, :], axis)[0]
        assert np.allclose(got, grads[axis], atol=1e-10)

    def test_deriv_invalid_axis(self, e3):
        with pytest.raises(ValueError):
            e3.deriv(np.zeros((1, e3.n_nodes)), 3)

    def test_grad_stacks_derivs(self, e3, ):
        rng = np.random.default_rng(0)
        f = rng.standard_normal((2, e3.n_nodes))
        g = e3.grad(f)
        assert g.shape == (3, 2, e3.n_nodes)
        for a in range(3):
            assert np.allclose(g[a], e3.deriv(f, a))

    def test_div_of_gradient_symmetric(self, e3):
        """div(grad f) equals the trace of the Hessian operator applied."""
        x, y, z = (e3.node_coords[:, i] for i in range(3))
        f = (x**2 + y**2 + z**2)[None, :]
        lap = e3.div(e3.deriv(f, 0), e3.deriv(f, 1), e3.deriv(f, 2))
        assert np.allclose(lap, 6.0, atol=1e-9)

    def test_integrate_constant(self, e3):
        assert e3.integrate(np.ones(e3.n_nodes)) == pytest.approx(8.0)

    def test_integrate_polynomial(self, e3):
        x = e3.node_coords[:, 0]
        # integral of x^2 over [-1,1]^3 = (2/3)*2*2
        assert e3.integrate(x**2) == pytest.approx(8.0 / 3.0)


class TestFaces:
    def test_opposite_face_involution(self):
        for f in range(6):
            assert opposite_face(opposite_face(f)) == f
            assert FACE_AXIS[f] == FACE_AXIS[opposite_face(f)]
            assert FACE_SIDE[f] != FACE_SIDE[opposite_face(f)]

    def test_normals_unit(self):
        assert np.allclose(np.linalg.norm(FACE_NORMALS, axis=1), 1.0)

    @pytest.mark.parametrize("face", range(6))
    def test_face_nodes_on_face(self, e3, face):
        axis = FACE_AXIS[face]
        value = -1.0 if FACE_SIDE[face] == 0 else 1.0
        coords = e3.node_coords[e3.face_nodes[face]]
        assert np.allclose(coords[:, axis], value)

    @pytest.mark.parametrize("face", range(6))
    def test_face_nodes_unique(self, e3, face):
        fn = e3.face_nodes[face]
        assert len(np.unique(fn)) == len(fn)

    @pytest.mark.parametrize("pair", [(0, 1), (2, 3), (4, 5)])
    def test_opposite_faces_align(self, e3, pair):
        """Matching index -> same in-face coordinates (transfer property)."""
        a, b = pair
        ca = e3.node_coords[e3.face_nodes[a]]
        cb = e3.node_coords[e3.face_nodes[b]]
        axis = FACE_AXIS[a]
        keep = [i for i in range(3) if i != axis]
        assert np.allclose(ca[:, keep], cb[:, keep])

    def test_face_weights_sum(self, e3):
        assert np.sum(e3.face_weights) == pytest.approx(4.0)

    def test_lift_scale(self, e3):
        assert e3.lift_scale == pytest.approx(1.0 / e3.weights_1d[0])
