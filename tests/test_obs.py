"""Observability: tracer, metrics, exporters, logging, trace validation.

Also the satellite coverage for :class:`TimingReport` phase accounting —
the per-phase cycle totals must equal the sum of per-instruction cycles
under both the serial audit and plan-replay executor modes.
"""

import importlib.util
import json
import logging
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.core.kernels.acoustic import AcousticOneBlockKernels
from repro.core.mapper import ElementMapper
from repro.dg import AcousticMaterial, HexMesh, ReferenceElement
from repro.obs import (
    NULL_SPAN,
    MetricsRegistry,
    Span,
    Tracer,
    build_document,
    chrome_trace,
    configure_logging,
    format_duration,
    get_logger,
    get_tracer,
    load_trace,
    render_tree,
    set_tracer,
    summarize,
    write_trace,
)
from repro.pim.chip import PimChip
from repro.pim.executor import PHASES, ChipExecutor, TimingReport, tag_phase
from repro.pim.params import CHIP_CONFIGS

_SPEC = importlib.util.spec_from_file_location(
    "validate_trace",
    Path(__file__).resolve().parents[1] / "scripts" / "validate_trace.py",
)
validate_trace = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(validate_trace)


# --------------------------------------------------------------------- #
# tracer
# --------------------------------------------------------------------- #


class TestTracer:
    def test_disabled_returns_shared_null_span(self):
        t = Tracer(enabled=False)
        sp = t.span("anything", foo=1)
        assert sp is NULL_SPAN
        with sp as inner:
            assert inner is NULL_SPAN
        assert t.roots == []

    def test_nesting(self):
        t = Tracer(enabled=True)
        with t.span("outer", a=1):
            with t.span("inner"):
                pass
            with t.span("inner2") as sp:
                sp.set(k="v").inc("n", 3).inc("n")
        (root,) = t.roots
        assert root.name == "outer"
        assert [c.name for c in root.children] == ["inner", "inner2"]
        assert root.children[1].attrs == {"k": "v", "n": 4}
        assert root.attrs == {"a": 1}
        assert root.end_s >= root.children[1].end_s >= root.start_s

    def test_exception_records_error_attr(self):
        t = Tracer(enabled=True)
        with pytest.raises(ValueError):
            with t.span("boom"):
                raise ValueError("nope")
        (root,) = t.roots
        assert root.attrs["error"] == "ValueError"
        assert root.end_s is not None

    def test_current(self):
        t = Tracer(enabled=True)
        assert t.current() is NULL_SPAN
        with t.span("a") as sp:
            assert t.current() is sp
        assert t.current() is NULL_SPAN

    def test_clear(self):
        t = Tracer(enabled=True)
        with t.span("x"):
            pass
        t.clear()
        assert t.roots == []

    def test_thread_spans_become_separate_roots(self):
        t = Tracer(enabled=True)

        def work():
            with t.span("worker"):
                pass

        with t.span("main-root"):
            th = threading.Thread(target=work)
            th.start()
            th.join()
        names = sorted(s.name for s in t.roots)
        assert names == ["main-root", "worker"]

    def test_export_round_trip(self):
        t = Tracer(enabled=True)
        with t.span("root", x=1):
            with t.span("child"):
                pass
        (payload,) = t.export()
        sp = Span.from_dict(payload)
        assert sp.name == "root"
        assert sp.attrs == {"x": 1}
        assert sp.children[0].name == "child"
        assert sp.to_dict() == payload

    def test_adopt_rebases_and_grafts(self):
        worker = Tracer(enabled=True)
        with worker.span("w-compile"):
            pass
        payload = worker.export()

        parent = Tracer(enabled=True)
        with parent.span("fanout") as sp:
            n = parent.adopt(payload, worker=True)
            assert n == 1
            (child,) = sp.children
        assert child.name == "w-compile"
        assert child.attrs["worker"] is True
        # re-based: earliest adopted start aligns with the adopting span
        assert child.start_s == pytest.approx(sp.start_s)
        assert child.end_s >= child.start_s

    def test_adopt_empty_payload(self):
        t = Tracer(enabled=True)
        assert t.adopt(None) == 0
        assert t.adopt([]) == 0

    def test_set_tracer_swap(self):
        fresh = Tracer(enabled=True)
        old = set_tracer(fresh)
        try:
            assert get_tracer() is fresh
        finally:
            set_tracer(old)
        assert get_tracer() is old


# --------------------------------------------------------------------- #
# metrics
# --------------------------------------------------------------------- #


class TestMetrics:
    def test_counters(self):
        m = MetricsRegistry()
        m.inc("a")
        m.inc("a", 4)
        m.inc("b", 2.5)
        assert m.value("a") == 5
        assert m.value("b") == 2.5
        assert m.value("missing") == 0
        assert m.value("missing", None) is None

    def test_disabled_is_noop(self):
        m = MetricsRegistry(enabled=False)
        m.inc("a")
        m.observe("h", 3)
        snap = m.snapshot()
        assert snap["counters"] == {} and snap["histograms"] == {}

    def test_histogram(self):
        m = MetricsRegistry()
        for v in (1, 2, 100, 10**9):
            m.observe("h", v)
        h = m.snapshot()["histograms"]["h"]
        assert h["count"] == 4
        assert h["min"] == 1 and h["max"] == 10**9
        assert sum(h["buckets"]) == 4
        assert h["buckets"][-1] == 1  # the overflow bucket caught 1e9

    def test_merge_is_associative(self):
        snaps = []
        for base in (0, 10):
            m = MetricsRegistry()
            m.inc("c", base + 1)
            m.observe("h", base + 2)
            snaps.append(m.snapshot())

        folded = MetricsRegistry()
        for snap in snaps:
            folded.merge(snap)
        assert folded.value("c") == 12
        h = folded.snapshot()["histograms"]["h"]
        assert h["count"] == 2 and h["min"] == 2 and h["max"] == 12

    def test_merge_skips_mismatched_bounds(self):
        m = MetricsRegistry()
        m.histogram("h", bounds=(1, 2, 3))
        m.merge({"histograms": {"h": {"bounds": [5, 6], "count": 9, "sum": 1.0}}})
        assert m.snapshot()["histograms"]["h"]["count"] == 0

    def test_reset(self):
        m = MetricsRegistry()
        m.inc("a")
        m.reset()
        assert m.value("a") == 0


# --------------------------------------------------------------------- #
# exporters
# --------------------------------------------------------------------- #


def _sample_doc():
    t = Tracer(enabled=True)
    m = MetricsRegistry()
    with t.span("run/test", experiment="test"):
        with t.span("compile", cache="miss"):
            pass
        with t.span("execute"):
            m.inc("executor.runs")
        with t.span("report"):
            pass
    return build_document(t, m, meta={"command": "run test"})


class TestExport:
    def test_format_duration_adaptive(self):
        assert format_duration(2.5) == "2.50s"
        assert format_duration(0.0123) == "12.3ms"
        assert format_duration(4.56e-5) == "45.6us"
        assert format_duration(7.8e-8) == "78ns"

    def test_document_shape(self):
        doc = _sample_doc()
        assert doc["schema"] == 1 and doc["kind"] == "repro-trace"
        assert doc["meta"]["command"] == "run test"
        (root,) = doc["spans"]
        assert [c["name"] for c in root["children"]] == ["compile", "execute", "report"]
        assert doc["metrics"]["counters"]["executor.runs"] == 1

    def test_write_and_load_round_trip(self, tmp_path):
        doc = _sample_doc()
        json_path, chrome_path = write_trace(doc, tmp_path / "t.json")
        assert json_path.exists() and chrome_path.exists()
        assert chrome_path.name == "t.chrome.json"
        assert load_trace(json_path)["spans"] == doc["spans"]
        with pytest.raises(ValueError):
            other = tmp_path / "other.json"
            other.write_text("{}")
            load_trace(other)

    def test_render_tree(self):
        out = render_tree(_sample_doc())
        assert "run/test" in out and "compile" in out and "cache=miss" in out
        assert render_tree({"spans": []}).endswith("(no spans recorded)")

    def test_chrome_trace(self):
        chrome = chrome_trace(_sample_doc())
        events = chrome["traceEvents"]
        assert {e["name"] for e in events} >= {"run/test", "compile", "execute", "report"}
        meta = [e for e in events if e["ph"] == "M"]
        assert {e["name"] for e in meta} >= {"process_name"}
        for e in events:
            if e["ph"] == "M":
                continue
            assert e["ph"] == "X"
            assert e["dur"] >= 0 and isinstance(e["ts"], float)

    def test_chrome_events_smuggling(self):
        t = Tracer(enabled=True)
        lane = {"name": "Volume", "ph": "X", "ts": 0, "dur": 5, "pid": 0, "tid": 101}
        with t.span("stage") as sp:
            sp.set(chrome_events=[lane])
        chrome = chrome_trace(build_document(t))
        names = [e["name"] for e in chrome["traceEvents"]]
        assert "Volume" in names
        stage = next(e for e in chrome["traceEvents"] if e["name"] == "stage")
        assert "chrome_events" not in stage["args"]

    def test_summarize(self):
        out = summarize(_sample_doc())
        assert "top spans by total time" in out
        assert "executor.runs" in out


# --------------------------------------------------------------------- #
# logging
# --------------------------------------------------------------------- #


class TestLogging:
    def test_get_logger_prefixes(self):
        assert get_logger("repro.core.compiler").name == "repro.core.compiler"
        assert get_logger("compiler").name == "repro.compiler"

    def test_configure_idempotent(self):
        configure_logging("info")
        configure_logging("warning")
        root = logging.getLogger("repro")
        tagged = [h for h in root.handlers if getattr(h, "_repro_handler", False)]
        assert len(tagged) == 1
        assert root.level == logging.WARNING

    def test_level_filters(self):
        configure_logging("warning")
        assert not logging.getLogger("repro.eval.experiments").isEnabledFor(logging.INFO)
        configure_logging("debug")
        assert logging.getLogger("repro.core.planner").isEnabledFor(logging.DEBUG)
        configure_logging("info")


# --------------------------------------------------------------------- #
# trace validator (scripts/validate_trace.py, used by CI)
# --------------------------------------------------------------------- #


class TestValidator:
    def test_valid_document_passes(self):
        assert validate_trace.validate(_sample_doc()) == []
        assert validate_trace.validate(
            _sample_doc(), require=("compile", "execute", "report")
        ) == []

    def test_empty_and_malformed_fail(self):
        assert validate_trace.validate({}) != []
        assert validate_trace.validate({"schema": 1, "kind": "repro-trace", "spans": []})
        bad = _sample_doc()
        bad["spans"][0]["children"][0]["end_s"] = -1e9
        assert any("end_s < start_s" in e for e in validate_trace.validate(bad))

    def test_missing_required_phase_fails(self):
        errors = validate_trace.validate(_sample_doc(), require=("nonexistent",))
        assert any("nonexistent" in e for e in errors)

    def test_chrome_validation(self):
        assert validate_trace.validate_chrome(chrome_trace(_sample_doc())) == []
        assert validate_trace.validate_chrome({"traceEvents": []}) != []
        assert validate_trace.validate_chrome(
            {"traceEvents": [{"name": "x", "ph": "X", "ts": "bad"}]}
        ) != []

    def test_cli_exit_codes(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        write_trace(_sample_doc(), path)
        assert validate_trace.main([str(path), "--require", "compile"]) == 0
        assert validate_trace.main([str(path), "--require", "bogus"]) == 1
        empty = tmp_path / "empty.json"
        empty.write_text('{"schema": 1, "kind": "repro-trace", "spans": []}')
        assert validate_trace.main([str(empty), "--no-chrome"]) == 1
        assert validate_trace.main([str(tmp_path / "missing.json")]) == 2


# --------------------------------------------------------------------- #
# TimingReport phase accounting (satellite: serial audit vs plan replay)
# --------------------------------------------------------------------- #


def _acoustic_step():
    mesh = HexMesh.from_refinement_level(1)
    elem = ReferenceElement(2)
    mat = AcousticMaterial.homogeneous(mesh.n_elements)
    mapper = ElementMapper(mesh.m, CHIP_CONFIGS["512MB"], 1)
    kern = AcousticOneBlockKernels(mesh, elem, mat, mapper, "riemann")
    state = np.zeros((4, mesh.n_elements, elem.n_nodes), dtype=np.float32)
    return kern.setup() + kern.load_state(state) + kern.time_step(1e-4)


class TestTimingReportPhases:
    def test_tag_phase_partition(self):
        for tag, phase in [
            ("volume", "volume"), ("flux:fetch", "transfer"), ("flux", "flux"),
            ("integration", "integration"), ("lut_sqrt", "lut"),
            ("setup", "dram"), ("host_sqrt", "host"), ("sync", "sync"),
            ("weird_tag", "other"),
        ]:
            assert tag_phase(tag) == phase
            assert tag_phase(tag) in PHASES or tag_phase(tag) == "other"

    @pytest.mark.parametrize("serial", [True, False], ids=["serial", "plan"])
    def test_phase_totals_equal_instruction_totals(self, serial):
        ex = ChipExecutor(PimChip(CHIP_CONFIGS["512MB"]))
        rep = ex.run(_acoustic_step(), functional=False, serial=serial)
        assert rep.n_instructions > 0
        phase_t = rep.phase_times()
        # the phases partition time_by_tag completely: sums must agree
        assert sum(phase_t.values()) == pytest.approx(
            sum(rep.time_by_tag.values()), rel=1e-12)
        clock = CHIP_CONFIGS["512MB"].clock_hz
        cycles = rep.phase_cycles(clock)
        for phase, t in phase_t.items():
            assert cycles[phase] == pytest.approx(t * clock, rel=1e-12)
        assert rep.transfers > 0 and rep.hops > 0
        assert rep.flits > 0 and rep.bytes_moved > 0

    def test_serial_and_plan_agree(self):
        ex = ChipExecutor(PimChip(CHIP_CONFIGS["512MB"]))
        step = _acoustic_step()
        serial = ex.run(step, functional=False, serial=True)
        plan = ex.run(step, functional=False)
        assert serial.n_instructions == plan.n_instructions
        assert serial.transfers == plan.transfers
        assert serial.hops == plan.hops
        for phase, t in serial.phase_times().items():
            assert plan.phase_times()[phase] == pytest.approx(t, rel=1e-9)

    def test_merge_folds_interconnect_fields(self):
        a = TimingReport()
        a.transfers, a.hops, a.flits, a.bytes_moved = 1, 2, 3, 4
        a.time_by_tag["volume"] = 1.0
        b = TimingReport()
        b.transfers, b.hops, b.flits, b.bytes_moved = 10, 20, 30, 40
        b.time_by_tag["flux"] = 2.0
        a.merge(b)
        assert (a.transfers, a.hops, a.flits, a.bytes_moved) == (11, 22, 33, 44)
        assert a.phase_times() == {"volume": 1.0, "flux": 2.0}


# --------------------------------------------------------------------- #
# executor / compiler publish into the live tracer + metrics
# --------------------------------------------------------------------- #


@pytest.fixture
def fresh_obs():
    """Swap in a private enabled tracer + registry, restore afterwards."""
    from repro.obs import set_metrics

    tracer = Tracer(enabled=True)
    metrics = MetricsRegistry()
    old_t = set_tracer(tracer)
    old_m = set_metrics(metrics)
    try:
        yield tracer, metrics
    finally:
        set_tracer(old_t)
        set_metrics(old_m)


class TestInstrumentation:
    def test_executor_publishes(self, fresh_obs):
        tracer, metrics = fresh_obs
        ex = ChipExecutor(PimChip(CHIP_CONFIGS["512MB"]))
        rep = ex.run(_acoustic_step(), functional=False)
        # the raw stream auto-lowers first, so lowering traces its own root
        root = next(s for s in tracer.roots if s.name == "pim/run")
        assert root.attrs["n_instructions"] == rep.n_instructions
        clock = CHIP_CONFIGS["512MB"].clock_hz
        assert root.attrs["phase_cycles"] == rep.phase_cycles(clock)
        assert metrics.value("executor.runs") == 1
        assert metrics.value("executor.instructions") == rep.n_instructions
        # per-phase cycle counters sum to the report's per-tag busy cycles
        published = sum(metrics.value(f"executor.cycles.{p}") for p in PHASES)
        assert published == pytest.approx(
            sum(rep.time_by_tag.values()) * clock, rel=1e-9)
        assert metrics.value("interconnect.htree.transfers") == rep.transfers

    def test_compiler_publishes(self, fresh_obs):
        from repro.core.compiler import WavePimCompiler

        tracer, metrics = fresh_obs
        WavePimCompiler(order=2).compile("acoustic", 1, CHIP_CONFIGS["512MB"])
        root = next(s for s in tracer.roots if s.name == "compile/acoustic_1")
        assert root.attrs["cache"] == "off"
        child_names = [c.name for c in root.children]
        assert "compile/plan" in child_names
        assert "compile/volume_kernel" in child_names
        assert metrics.value("compiler.compiles") == 1
        assert metrics.value("compiler.instructions_emitted") > 0


# --------------------------------------------------------------------- #
# CLI --profile end-to-end
# --------------------------------------------------------------------- #


class TestCliProfile:
    def test_run_table5_profile(self, tmp_path, capsys):
        from repro.__main__ import main

        trace_path = tmp_path / "trace.json"
        old = set_tracer(Tracer(enabled=False))
        try:
            assert main(["run", "table5", "--profile",
                         "--trace-file", str(trace_path)]) == 0
        finally:
            set_tracer(old)
        err = capsys.readouterr().err
        assert "trace tree" in err
        doc = load_trace(trace_path)
        assert validate_trace.validate(
            doc, require=("compile", "execute", "report")) == []
        chrome = json.loads((tmp_path / "trace.chrome.json").read_text())
        assert validate_trace.validate_chrome(chrome) == []

    def test_trace_summary_subcommand(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "t.json"
        write_trace(_sample_doc(), path)
        assert main(["trace", "summary", str(path)]) == 0
        assert "top spans by total time" in capsys.readouterr().out
        assert main(["trace", "summary", str(tmp_path / "nope.json")]) == 2
