"""Cross-cutting property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batching import covered_y_interfaces, flux_slice_schedule
from repro.core.layout import ElementLayout
from repro.core.mapper import ElementMapper, morton3_decode, morton3_encode
from repro.dg.mesh import HexMesh
from repro.dg.quadrature import gll_points_weights
from repro.dg.reference_element import ReferenceElement, opposite_face
from repro.interconnect import Bus, HTree, Transfer, schedule_transfers
from repro.pim.block import MemoryBlock
from repro.pim.params import CHIP_CONFIGS


@given(st.integers(min_value=1, max_value=12))
@settings(max_examples=12, deadline=None)
def test_gll_weights_positive(order):
    _, w = gll_points_weights(order)
    assert np.all(w > 0)


@given(st.integers(min_value=1, max_value=5))
@settings(max_examples=5, deadline=None)
def test_diff_matrix_nilpotent_on_top_degree(order):
    """Applying D order+1 times annihilates every polynomial."""
    e = ReferenceElement(order)
    x = e.nodes_1d.copy()
    f = x**order
    for _ in range(order + 1):
        f = e.diff_1d @ f
    assert np.max(np.abs(f)) < 1e-6


@given(st.integers(min_value=1, max_value=6))
@settings(max_examples=6, deadline=None)
def test_mesh_neighbor_involution(m):
    mesh = HexMesh(m=m)
    for e in range(mesh.n_elements):
        for f in range(6):
            nbr = int(mesh.neighbors[e, f])
            assert int(mesh.neighbors[nbr, opposite_face(f)]) == e


@given(st.integers(min_value=4, max_value=64).filter(lambda n: n % 2 == 0),
       st.integers(min_value=1, max_value=5))
@settings(max_examples=30, deadline=None)
def test_flux_slice_schedule_complete(n_slices, half):
    window = max(2, 2 * ((n_slices // (2 * half)) // 2) * 1)
    if window > n_slices:
        window = n_slices if n_slices % 2 == 0 else n_slices - 1
    steps = flux_slice_schedule(n_slices, window)
    covered = covered_y_interfaces(steps, n_slices)
    assert sorted(covered) == [(s, s + 1) for s in range(n_slices - 1)]


@given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=255))
@settings(max_examples=100, deadline=None)
def test_htree_path_disjointness_criterion(a, b):
    """Blocks in different top-level quadrants share only the root."""
    h = HTree(256)
    if a // 64 != b // 64 and a != b:
        path = h.path(a, b)
        assert h.switch_id(h.levels - 1, 0) in path


@given(st.lists(
    st.tuples(st.integers(0, 15), st.integers(0, 15)), min_size=1, max_size=30,
))
@settings(max_examples=50, deadline=None)
def test_scheduler_invariants(pairs):
    """No transfer overlaps another on any shared switch; makespan is the
    max finish; bus makespan >= htree makespan for identical traffic."""
    transfers = [Transfer(s, d, 32) for s, d in pairs]
    h = schedule_transfers(HTree(16), transfers)
    b = schedule_transfers(Bus(16), transfers)
    assert h.makespan == pytest.approx(max(s.finish for s in h.scheduled))
    # switch-exclusive check on the H-tree schedule
    by_switch: dict = {}
    for s in h.scheduled:
        for sw in s.path:
            by_switch.setdefault(sw, []).append((s.start, s.finish))
    for intervals in by_switch.values():
        intervals.sort()
        for (s1, f1), (s2, f2) in zip(intervals, intervals[1:]):
            assert s2 >= f1 - 1e-15
    # the Bus serializes: its makespan is at least the sum of all
    # inter-block transfer durations (paper §4.2.2).  (It can still beat
    # the H-tree at low contention — shorter wires — which is exactly the
    # paper's argument for offering both.)
    from repro.interconnect.routing import transfer_duration

    serial = sum(
        transfer_duration(Bus(16), t, 1.5e-9, 1.5e-9)
        for t in transfers
        if t.src != t.dst
    )
    assert b.makespan >= serial - 1e-12


@given(st.integers(min_value=1, max_value=3), st.integers(min_value=0, max_value=2),
       st.data())
@settings(max_examples=50, deadline=None)
def test_tap_map_is_line_projection(order, axis, data):
    """Applying the tap map twice is idempotent along the axis."""
    lay = ElementLayout(order)
    tap = data.draw(st.integers(min_value=0, max_value=order))
    m = lay.tap_row_map(axis, tap)
    assert np.array_equal(m[m], m)  # projection onto the tap plane


@given(st.integers(min_value=1, max_value=4))
@settings(max_examples=4, deadline=None)
def test_mapper_is_injective(levelish):
    m = levelish * 2
    mapper = ElementMapper(m, CHIP_CONFIGS["16GB"], 4)
    blocks = [mapper.block_of(e, p) for e in range(m**3) for p in range(4)]
    assert len(set(blocks)) == len(blocks)


@given(st.integers(min_value=0, max_value=511), st.integers(min_value=0, max_value=511),
       st.integers(min_value=0, max_value=511))
@settings(max_examples=100, deadline=None)
def test_morton3_monotone_in_octants(x, y, z):
    code = morton3_encode(x, y, z)
    assert morton3_decode(code) == (x, y, z)
    # doubling all coordinates shifts the code by 3 bits
    assert morton3_encode(2 * x, 2 * y, 2 * z) == code << 3


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
                min_size=8, max_size=8),
       st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
                min_size=8, max_size=8))
@settings(max_examples=50, deadline=None)
def test_block_arithmetic_matches_float32(a_vals, b_vals):
    b = MemoryBlock(rows=8, row_words=4)
    a32 = np.array(a_vals, dtype=np.float32)
    b32 = np.array(b_vals, dtype=np.float32)
    b.broadcast((0, 8), 0, a32)
    b.broadcast((0, 8), 1, b32)
    b.add((0, 8), 2, 0, 1)
    b.mul((0, 8), 3, 0, 1)
    assert np.array_equal(b.data[:, 2], a32 + b32)
    assert np.array_equal(b.data[:, 3], a32 * b32)
