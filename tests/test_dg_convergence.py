"""End-to-end convergence of the wave solvers against analytic solutions.

These are the gold-standard correctness tests for the dG substrate: evolve
an exact plane wave and check the error shrinks at the expected rate under
h- (mesh) refinement for both physics and both fluxes.
"""

import numpy as np
import pytest

from repro.dg import SolverConfig, WaveSolver
from repro.dg.analytic import (
    acoustic_plane_wave,
    acoustic_standing_wave,
    elastic_plane_p_wave,
    elastic_plane_s_wave,
)


def _evolve_error(physics, flux, analytic, order, level, T, **kw):
    cfg = SolverConfig(physics=physics, refinement_level=level, order=order, flux=flux)
    s = WaveSolver(cfg)
    s.set_state(analytic(s.mesh, s.element, s.material, t=0.0, **kw))
    n = int(np.ceil(T / s.dt))
    s.run(n, dt=T / n)
    ref = analytic(s.mesh, s.element, s.material, t=T, **kw)
    return float(np.max(np.abs(s.state - ref)))


@pytest.mark.parametrize("flux", ["central", "riemann"])
def test_acoustic_h_convergence(flux):
    errs = [
        _evolve_error("acoustic", flux, acoustic_plane_wave, 3, lvl, 0.25, k_int=(1, 0, 0))
        for lvl in (1, 2)
    ]
    assert errs[0] / errs[1] > 4.0  # at least ~2nd order observed


def test_acoustic_standing_wave():
    err = _evolve_error(
        "acoustic", "central", acoustic_standing_wave, 5, 1, 0.2, modes=(1, 1, 0)
    )
    assert err < 1e-2


@pytest.mark.parametrize("flux", ["central", "riemann"])
def test_elastic_p_wave_h_convergence(flux):
    errs = [
        _evolve_error("elastic", flux, elastic_plane_p_wave, 3, lvl, 0.2, k_int=(1, 0, 0))
        for lvl in (1, 2)
    ]
    assert errs[0] / errs[1] > 4.0


@pytest.mark.parametrize("flux", ["central", "riemann"])
def test_elastic_s_wave_h_convergence(flux):
    errs = [
        _evolve_error(
            "elastic", flux, elastic_plane_s_wave, 3, lvl, 0.2,
            k_int=(1, 0, 0), polarization=(0, 1, 0),
        )
        for lvl in (1, 2)
    ]
    assert errs[0] / errs[1] > 4.0


def test_oblique_acoustic_wave():
    """Diagonal propagation exercises all three derivative directions."""
    err = _evolve_error(
        "acoustic", "riemann", acoustic_plane_wave, 5, 1, 0.15, k_int=(1, 1, 1)
    )
    assert err < 0.05


def test_p_convergence_acoustic():
    """Order refinement at fixed mesh: spectral error collapse."""
    errs = [
        _evolve_error("acoustic", "central", acoustic_plane_wave, order, 1, 0.2,
                      k_int=(1, 0, 0))
        for order in (2, 4)
    ]
    assert errs[0] / errs[1] > 10.0
