"""Elastic four-block kernel streams: structure, placement, op counts."""

import numpy as np
import pytest

from repro.core.kernels.elastic import (
    DIV_SIGMA,
    S1_VARS,
    S2_VARS,
    V_VARS,
    ElasticFourBlockKernels,
)
from repro.core.mapper import ElementMapper
from repro.dg import ElasticMaterial, HexMesh, ReferenceElement
from repro.pim.chip import PimChip
from repro.pim.executor import ChipExecutor
from repro.pim.isa import Opcode
from repro.pim.params import CHIP_CONFIGS

ORDER = 2


@pytest.fixture(scope="module")
def kernels():
    mesh = HexMesh.from_refinement_level(1)
    elem = ReferenceElement(ORDER)
    mat = ElasticMaterial.homogeneous(mesh.n_elements, lam=2.0, mu=1.0, rho=1.0)
    mapper = ElementMapper(mesh.m, CHIP_CONFIGS["512MB"], 4)
    return ElasticFourBlockKernels(mesh, elem, mat, mapper, flux_kind="central")


@pytest.fixture(scope="module")
def kernels_riemann():
    mesh = HexMesh.from_refinement_level(1)
    elem = ReferenceElement(ORDER)
    mat = ElasticMaterial.homogeneous(mesh.n_elements, lam=2.0, mu=1.0, rho=1.0)
    mapper = ElementMapper(mesh.m, CHIP_CONFIGS["512MB"], 4)
    return ElasticFourBlockKernels(mesh, elem, mat, mapper, flux_kind="riemann")


class TestPlacement:
    def test_requires_four_blocks(self):
        mesh = HexMesh.from_refinement_level(1)
        elem = ReferenceElement(ORDER)
        mat = ElasticMaterial.homogeneous(mesh.n_elements)
        mapper = ElementMapper(mesh.m, CHIP_CONFIGS["512MB"], 1)
        with pytest.raises(ValueError):
            ElasticFourBlockKernels(mesh, elem, mat, mapper)

    def test_variable_groups_cover_all_nine(self):
        assert set(S1_VARS) | set(S2_VARS) | set(V_VARS) == {
            "sxx", "syy", "szz", "syz", "sxz", "sxy", "vx", "vy", "vz",
        }
        assert not (set(S1_VARS) & set(S2_VARS))

    def test_part_of(self, kernels):
        part, col = kernels.part_of("sxx")
        assert part == kernels.S1 and col >= 1
        part, _ = kernels.part_of("vz")
        assert part == kernels.V
        with pytest.raises(KeyError):
            kernels.part_of("pressure")

    def test_div_sigma_uses_symmetric_components(self):
        """div(sigma) rows only reference the six Voigt components."""
        used = {v for terms in DIV_SIGMA.values() for v, _ in terms}
        assert used <= set(S1_VARS) | set(S2_VARS)


class TestStreams:
    def test_volume_has_cross_block_syncs(self, kernels):
        insts = kernels.volume(elements=[0])
        syncs = [i for i in insts if i.op is Opcode.TRANSFER]
        assert len(syncs) >= 9  # 6 stress contribs + 3 velocity partials

    def test_volume_nine_derivative_chains_on_v_block(self, kernels):
        insts = kernels.volume(elements=[0])
        vb = kernels.mapper.block_of(0, kernels.V)
        muls = [i for i in insts if i.op is Opcode.MUL and i.block == vb]
        # 9 chains x (order+1) taps, plus the per-Voigt combinations
        assert len(muls) >= 9 * (ORDER + 1)

    def test_flux_riemann_heavier(self, kernels, kernels_riemann):
        """The Riemann star states add the impedance cross terms: ~40%
        more flux arithmetic (Table 6's Riemann/Central flop gap)."""
        c = kernels.flux(elements=[0])
        r = kernels_riemann.flux(elements=[0])
        c_arith = sum(i.op in (Opcode.ADD, Opcode.SUB, Opcode.MUL) for i in c)
        r_arith = sum(i.op in (Opcode.ADD, Opcode.SUB, Opcode.MUL) for i in r)
        assert r_arith > 1.3 * c_arith

    def test_flux_fetches_through_buffer_block(self, kernels):
        insts = kernels.flux(elements=[0], faces=[0])
        bb = kernels.mapper.block_of(0, kernels.B)
        fetches = [i for i in insts if i.op is Opcode.TRANSFER and "intra" not in i.tag]
        assert fetches and all(i.block == bb for i in fetches)

    def test_integration_updates_all_nine(self, kernels):
        insts = kernels.integration(0, 1e-3, elements=[0])
        blocks = {i.block for i in insts}
        expected = {kernels.mapper.block_of(0, p) for p in (0, 1, 2)}
        assert blocks == expected

    def test_time_step_is_five_stages(self, kernels):
        one = len(kernels.rk_stage(0, 1e-3))
        # stages differ only in constants; a full step is five stages
        assert len(kernels.time_step(1e-3)) == pytest.approx(5 * one, abs=5)

    def test_streams_execute_functionally_without_error(self, kernels):
        """The streams are well-formed: every index in range, transfers
        size-consistent (executor validates everything)."""
        chip = PimChip(CHIP_CONFIGS["512MB"])
        ex = ChipExecutor(chip)
        state = np.zeros((9, kernels.mesh.n_elements, kernels.lay3.n_nodes), dtype=np.float32)
        ex.run(kernels.setup() + kernels.load_state(state), functional=True)
        rep = ex.run(kernels.time_step(1e-3), functional=True)
        assert rep.total_time_s > 0
        assert np.all(np.isfinite(kernels.read_state(chip)))

    def test_state_roundtrip(self, kernels):
        chip = PimChip(CHIP_CONFIGS["512MB"])
        ex = ChipExecutor(chip)
        rng = np.random.default_rng(0)
        state = rng.standard_normal(
            (9, kernels.mesh.n_elements, kernels.lay3.n_nodes)
        ).astype(np.float32)
        ex.run(kernels.setup() + kernels.load_state(state), functional=True)
        assert np.allclose(kernels.read_state(chip), state)
