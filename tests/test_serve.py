"""The crash-safe job service (``repro.serve``).

Layered like the module: pure-logic units first (job ids, backoff,
journal, store recovery), then supervised end-to-end runs with real
worker processes.  The process tests use the cheap ``_test_*`` job kinds
so the suite stays fast; the real simulate path is covered end-to-end by
``tests/test_serve_chaos.py``.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.serve import (
    Job,
    JobStore,
    Journal,
    QueueFull,
    ServiceConfig,
    Supervisor,
    backoff_delay,
    compute_job_id,
    journal_digest,
)
from repro.serve.queue import DONE, FAILED, PENDING, QUARANTINED, RUNNING


# --------------------------------------------------------------------- #
# job identity + backoff (pure logic)
# --------------------------------------------------------------------- #


class TestJobIdentity:
    def test_id_is_content_keyed_and_stable(self):
        a = compute_job_id("simulate", {"level": 1, "steps": 5})
        b = compute_job_id("simulate", {"steps": 5, "level": 1})
        assert a == b  # key order does not matter
        assert len(a) == 16 and int(a, 16) >= 0

    def test_id_differs_by_kind_and_params(self):
        base = compute_job_id("simulate", {"level": 1})
        assert compute_job_id("experiment", {"level": 1}) != base
        assert compute_job_id("simulate", {"level": 2}) != base


class TestBackoff:
    def test_deterministic_per_seed_job_attempt(self):
        a = backoff_delay(7, "cafe", 2)
        assert a == backoff_delay(7, "cafe", 2)
        assert a != backoff_delay(7, "cafe", 3)
        assert a != backoff_delay(8, "cafe", 2)
        assert a != backoff_delay(7, "beef", 2)

    def test_exponential_envelope_and_cap(self):
        base, cap = 0.05, 2.0
        for attempt in range(1, 12):
            d = backoff_delay(0, "job", attempt, base=base, cap=cap)
            hi = min(cap, base * 2 ** (attempt - 1))
            assert hi * 0.5 <= d < hi
        assert backoff_delay(0, "job", 50, base=base, cap=cap) < cap

    def test_schedule_identical_across_runs(self):
        jobs = [f"job{i}" for i in range(10)]
        sched1 = [backoff_delay(3, j, a) for j in jobs for a in (1, 2, 3)]
        sched2 = [backoff_delay(3, j, a) for j in jobs for a in (1, 2, 3)]
        assert sched1 == sched2


# --------------------------------------------------------------------- #
# journal durability + digest
# --------------------------------------------------------------------- #


class TestJournal:
    def test_append_load_roundtrip(self, tmp_path):
        p = tmp_path / "journal.jsonl"
        j = Journal(p)
        j.append({"event": "start", "job": "a", "attempt": 1})
        j.append({"event": "done", "job": "a", "attempt": 1})
        j.close()
        events = Journal.load(p)
        assert [e["event"] for e in events] == ["start", "done"]

    def test_torn_tail_line_is_tolerated(self, tmp_path):
        p = tmp_path / "journal.jsonl"
        j = Journal(p)
        j.append({"event": "start", "job": "a"})
        j.close()
        with open(p, "a") as fh:
            fh.write('{"event": "done", "job"')  # crash mid-append
        events = Journal.load(p)
        assert len(events) == 1 and events[0]["event"] == "start"

    def test_append_after_torn_tail_repairs_the_journal(self, tmp_path):
        # the crash-safety killer: SIGKILL mid-append leaves a torn line
        # with no newline; reopening for append must NOT write the next
        # record onto it (that merges two records into permanent mid-file
        # garbage that every later load() rejects).
        p = tmp_path / "journal.jsonl"
        j = Journal(p)
        j.append({"event": "submit", "job": "a"})
        j.close()
        with open(p, "a") as fh:
            fh.write('{"event": "done", "job"')  # torn: no newline

        j2 = Journal(p)  # reopen-for-append repairs the tail
        j2.append({"event": "recovered", "job": "a"})
        j2.append({"event": "start", "job": "a", "attempt": 1})
        j2.close()
        events = Journal.load(p)  # must not raise
        assert [e["event"] for e in events] == ["submit", "recovered", "start"]

    def test_repair_keeps_complete_record_missing_only_newline(self, tmp_path):
        # a record whose bytes fully reached disk but whose newline did
        # not is data, not damage: repair terminates it instead of
        # dropping the event.
        p = tmp_path / "journal.jsonl"
        j = Journal(p)
        j.append({"event": "submit", "job": "a"})
        j.close()
        with open(p, "a") as fh:
            fh.write('{"event":"done","job":"a"}')  # complete, unterminated

        j2 = Journal(p)
        j2.append({"event": "recovered", "job": "a"})
        j2.close()
        events = Journal.load(p)
        assert [e["event"] for e in events] == ["submit", "done", "recovered"]

    def test_store_survives_service_kill_mid_append(self, tmp_path):
        # the end-to-end crash shape: the service dies mid-append while a
        # job runs, so the restarted store both repairs the torn tail AND
        # appends a "recovered" record right away.  Two successive
        # restarts prove no append ever merges into the torn line (which
        # would become unreadable mid-file garbage one restart later).
        store = JobStore(tmp_path)
        job = store.submit("_test_sleep", {"seconds": 0})
        store.mark_started(job, worker=0)
        store.close()
        with open(tmp_path / "journal.jsonl", "a") as fh:
            fh.write('{"event": "fail", "job"')  # SIGKILL mid-append

        store2 = JobStore(tmp_path)  # requeues the job -> appends "recovered"
        assert store2.jobs[job.id].status == PENDING
        assert len(store2.digest()) == 64
        store2.close()
        store3 = JobStore(tmp_path)  # and again: no merged mid-file line
        assert store3.jobs[job.id].status == PENDING
        assert len(store3.digest()) == 64
        store3.close()
        events = Journal.load(tmp_path / "journal.jsonl")  # never raises
        assert sum(1 for e in events if e["event"] == "recovered") == 2

    def test_mid_file_corruption_raises(self, tmp_path):
        p = tmp_path / "journal.jsonl"
        p.write_text('{"event": "start"}\nGARBAGE\n{"event": "done"}\n')
        with pytest.raises(ValueError, match="journal"):
            Journal.load(p)

    def test_digest_ignores_timing_but_not_lifecycle(self):
        base = [
            {"event": "start", "job": "a", "attempt": 1, "ts": 1.0, "pid": 42},
            {"event": "done", "job": "a", "attempt": 1, "ts": 2.0,
             "result_digest": "d1"},
        ]
        jitter = [dict(e) for e in base]
        jitter[0]["ts"], jitter[1]["pid"] = 9.0, 77
        assert journal_digest(base) == journal_digest(jitter)
        changed = [dict(e) for e in base]
        changed[1]["result_digest"] = "d2"
        assert journal_digest(base) != journal_digest(changed)

    def test_digest_is_order_insensitive(self):
        ev = [
            {"event": "start", "job": "a", "attempt": 1},
            {"event": "start", "job": "b", "attempt": 1},
        ]
        assert journal_digest(ev) == journal_digest(list(reversed(ev)))


# --------------------------------------------------------------------- #
# the persistent store: idempotence, recovery, backpressure
# --------------------------------------------------------------------- #


class TestJobStore:
    def test_submit_is_idempotent(self, tmp_path):
        store = JobStore(tmp_path)
        a = store.submit("simulate", {"level": 1})
        b = store.submit("simulate", {"level": 1})
        assert a.id == b.id and len(store.jobs) == 1
        store.close()

    def test_unknown_kind_rejected(self, tmp_path):
        store = JobStore(tmp_path)
        with pytest.raises(ValueError, match="kind"):
            store.submit("frobnicate", {})
        store.close()

    def test_backpressure_queue_full(self, tmp_path):
        store = JobStore(tmp_path, max_pending=2)
        store.submit("_test_sleep", {"seconds": 0, "n": 1})
        store.submit("_test_sleep", {"seconds": 0, "n": 2})
        with pytest.raises(QueueFull):
            store.submit("_test_sleep", {"seconds": 0, "n": 3})
        store.close()

    def test_recovery_requeues_running_jobs(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.submit("_test_sleep", {"seconds": 0})
        store.mark_started(job, worker=0)
        assert store.jobs[job.id].status == RUNNING
        store.close()

        # a new store over the same journal: the in-flight job comes back
        # as pending with its attempt count preserved (the crashed attempt
        # is charged by the supervisor, not silently forgotten).
        store2 = JobStore(tmp_path)
        back = store2.jobs[job.id]
        assert back.status == PENDING
        assert back.attempt == 1
        events = Journal.load(store2.journal_path)
        assert any(e["event"] == "recovered" for e in events)
        store2.close()

    def test_recovery_preserves_terminal_states(self, tmp_path):
        store = JobStore(tmp_path)
        done = store.submit("_test_sleep", {"seconds": 0, "n": 1})
        store.mark_started(done, worker=0)
        store.mark_done(done, {"digest": "abc"})
        store.close()

        store2 = JobStore(tmp_path)
        assert store2.jobs[done.id].status == DONE
        assert store2.jobs[done.id].result == {"digest": "abc"}
        assert store2.all_terminal()
        store2.close()

    def test_failed_job_gets_backoff_window(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.submit("_test_flaky", {"fail_attempts": 1})
        store.mark_started(job, worker=0)
        delay = backoff_delay(5, job.id, 1)
        store.mark_failed(job, "boom", retry_delay_s=delay)
        j = store.jobs[job.id]
        assert j.status == FAILED
        assert j.not_before > time.time() - 0.1
        # not ready until the backoff window passes...
        assert job.id not in [x.id for x in store.ready_jobs(now=time.time())]
        # ...and ready again after it
        ready = store.ready_jobs(now=j.not_before + 0.01)
        assert job.id in [x.id for x in ready]
        store.close()

    def test_result_file_published_atomically(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.submit("_test_sleep", {"seconds": 0})
        store.mark_started(job, worker=0)
        store.mark_done(job, {"digest": "xyz"})
        out = json.loads((tmp_path / "results" / f"{job.id}.json").read_text())
        assert out["status"] == "done" and out["result"]["digest"] == "xyz"
        store.close()


# --------------------------------------------------------------------- #
# supervised end-to-end (real worker processes, cheap job kinds)
# --------------------------------------------------------------------- #


def _service(tmp_path, **kw):
    defaults = dict(workdir=tmp_path, workers=2, seed=0,
                    heartbeat_timeout_s=1.0, poll_s=0.01)
    defaults.update(kw)
    return Supervisor(ServiceConfig(**defaults))


class TestSupervised:
    def test_jobs_run_and_complete(self, tmp_path):
        sup = _service(tmp_path)
        try:
            ids = [sup.store.submit("_test_sleep",
                                    {"seconds": 0.01, "n": i}).id
                   for i in range(6)]
            sup.run(until_idle=True, max_wall_s=60.0)
            assert all(sup.store.jobs[i].status == DONE for i in ids)
        finally:
            sup.shutdown()

    def test_flaky_job_retries_then_succeeds(self, tmp_path):
        sup = _service(tmp_path)
        try:
            job = sup.store.submit("_test_flaky", {"fail_attempts": 2},
                                   max_retries=3)
            sup.run(until_idle=True, max_wall_s=60.0)
            j = sup.store.jobs[job.id]
            assert j.status == DONE and j.attempt == 3
        finally:
            sup.shutdown()

    def test_poison_job_is_quarantined(self, tmp_path):
        sup = _service(tmp_path)
        try:
            job = sup.store.submit("_test_flaky", {"fail_attempts": 99},
                                   max_retries=2)
            ok = sup.store.submit("_test_sleep", {"seconds": 0})
            sup.run(until_idle=True, max_wall_s=60.0)
            assert sup.store.jobs[job.id].status == QUARANTINED
            assert sup.store.jobs[job.id].attempt == 3  # 1 + max_retries
            assert sup.store.jobs[ok.id].status == DONE  # pool survived
            out = json.loads(
                (tmp_path / "results" / f"{job.id}.json").read_text())
            assert out["status"] == QUARANTINED
        finally:
            sup.shutdown()

    def test_deadline_kill_and_retry_budget(self, tmp_path):
        sup = _service(tmp_path, deadline_s=0.3)
        try:
            # beats while sleeping, so only the *deadline* can catch it
            job = sup.store.submit("_test_sleep", {"seconds": 30, "beat": True},
                                   max_retries=0, deadline_s=0.3)
            sup.run(until_idle=True, max_wall_s=60.0)
            assert sup.store.jobs[job.id].status == QUARANTINED
            assert sup.metrics_snapshot()["counters"].get(
                "serve.deadline_kills", 0) >= 1
        finally:
            sup.shutdown()

    def test_hung_worker_detected_by_heartbeat(self, tmp_path):
        sup = _service(tmp_path, heartbeat_timeout_s=0.5)
        try:
            # no heartbeats while sleeping: the monitor must SIGKILL it
            # long before the generous deadline.
            job = sup.store.submit("_test_sleep", {"seconds": 30, "beat": False},
                                   max_retries=0, deadline_s=120.0)
            t0 = time.time()
            sup.run(until_idle=True, max_wall_s=60.0)
            assert time.time() - t0 < 30
            assert sup.store.jobs[job.id].status == QUARANTINED
            assert sup.metrics_snapshot()["counters"].get(
                "serve.hang_kills", 0) >= 1
        finally:
            sup.shutdown()

    def test_worker_restarts_counted(self, tmp_path):
        sup = _service(tmp_path, heartbeat_timeout_s=0.5)
        try:
            sup.store.submit("_test_sleep", {"seconds": 30, "beat": False},
                             max_retries=0, deadline_s=120.0)
            sup.run(until_idle=True, max_wall_s=60.0)
            assert sup.metrics_snapshot()["counters"].get(
                "serve.worker_restarts", 0) >= 1
            # the pool is whole again after the restart
            assert len(sup.workers) == sup.config.workers
            assert all(h.process.is_alive() for h in sup.workers.values())
        finally:
            sup.shutdown()

    def test_metrics_exported_on_run(self, tmp_path):
        from repro.obs import get_metrics

        before = get_metrics().snapshot()["counters"].get("serve.done", 0)
        sup = _service(tmp_path)
        try:
            sup.store.submit("_test_sleep", {"seconds": 0})
            sup.run(until_idle=True, max_wall_s=60.0)
        finally:
            sup.shutdown()
        # counters are process-global, so compare against the pre-run value
        doc = json.loads((tmp_path / "metrics.json").read_text())
        assert doc["metrics"]["counters"].get("serve.done", 0) == before + 1


# --------------------------------------------------------------------- #
# result-vs-reaper races (driven by hand: no workers started)
# --------------------------------------------------------------------- #


class TestQuarantineRescue:
    def _drain_until(self, sup, job_id, status, timeout_s=5.0):
        deadline = time.time() + timeout_s
        while sup.store.jobs[job_id].status != status \
                and time.time() < deadline:
            sup._drain_results()  # mp queue feeder needs a beat
            time.sleep(0.01)

    def test_ok_result_racing_quarantine_supersedes_it(self, tmp_path):
        sup = _service(tmp_path)
        try:
            job = sup.store.submit("_test_sleep", {"seconds": 0},
                                   max_retries=0)
            sup.store.mark_started(job, worker=0)
            # the reaper charges a kill for attempt 1, pushing the job
            # past max_retries=0 into quarantine...
            sup._handle_failure(job, "worker died (SIGKILL/crash)", "")
            assert sup.store.jobs[job.id].status == QUARANTINED
            # ...while the completed result for that same attempt was
            # already in flight: it must rescue the job, not be dropped.
            sup.result_q.put({"job": job.id, "attempt": 1, "status": "ok",
                              "result": {"digest": "beef"}, "elapsed_s": 0.01})
            self._drain_until(sup, job.id, DONE)
            assert sup.store.jobs[job.id].status == DONE
            assert sup.store.jobs[job.id].result == {"digest": "beef"}
            out = json.loads(
                (tmp_path / "results" / f"{job.id}.json").read_text())
            assert out["status"] == DONE  # quarantine result file superseded
        finally:
            sup.shutdown()

    def test_stale_attempt_ok_result_stays_dropped(self, tmp_path):
        sup = _service(tmp_path)
        try:
            job = sup.store.submit("_test_sleep", {"seconds": 0},
                                   max_retries=0)
            sup.store.mark_started(job, worker=0)
            sup.store.mark_started(job, worker=1)  # attempt 2 in flight
            sup._handle_failure(job, "worker died (SIGKILL/crash)", "")
            assert sup.store.jobs[job.id].status == QUARANTINED
            # an ok result from the long-dead attempt 1 is NOT a rescue
            sup.result_q.put({"job": job.id, "attempt": 1, "status": "ok",
                              "result": {"digest": "old"}, "elapsed_s": 0.01})
            self._drain_until(sup, job.id, DONE, timeout_s=0.5)
            assert sup.store.jobs[job.id].status == QUARANTINED
        finally:
            sup.shutdown()


# --------------------------------------------------------------------- #
# file protocol client
# --------------------------------------------------------------------- #


class TestClient:
    def test_submit_wait_status(self, tmp_path):
        from repro.serve import client

        job_id = client.submit(tmp_path, "_test_sleep", {"seconds": 0.01})
        # identical submission drops the same request file (idempotent)
        assert client.submit(tmp_path, "_test_sleep", {"seconds": 0.01}) == job_id
        inbox = list((tmp_path / "inbox").glob("*.json"))
        assert len(inbox) == 1

        sup = _service(tmp_path)
        try:
            sup.run(until_idle=True, max_wall_s=60.0)
        finally:
            sup.shutdown()

        out = client.wait(tmp_path, job_id, timeout_s=10.0)
        assert out["status"] == DONE

        st = client.status(tmp_path)
        assert st["counts"].get(DONE, 0) == 1
        assert st["inbox_pending"] == []
        assert len(st["journal_digest"]) == 64

    def test_wait_times_out(self, tmp_path):
        from repro.serve import client

        (tmp_path / "results").mkdir(parents=True)
        with pytest.raises(TimeoutError):
            client.wait(tmp_path, "feedbeeffeedbeef", timeout_s=0.1)

    def test_rejected_submission_reports_error(self, tmp_path):
        from repro.serve import client

        # drop a request with an unknown kind directly into the inbox
        inbox = tmp_path / "inbox"
        inbox.mkdir(parents=True)
        bad = {"kind": "frobnicate", "params": {}}
        job_id = compute_job_id("frobnicate", {})
        (inbox / f"{job_id}.json").write_text(json.dumps(bad))

        sup = _service(tmp_path)
        try:
            sup.run(until_idle=True, max_wall_s=60.0)
        finally:
            sup.shutdown()
        out = client.wait(tmp_path, job_id, timeout_s=5.0)
        assert out["status"] == "rejected"
        assert "kind" in out["reason"]

    def test_malformed_inbox_request_is_rejected_not_poisonous(self, tmp_path):
        from repro.serve import client

        # valid JSON, invalid requests: a dict missing "kind", and a
        # non-dict payload.  Neither may crash the ingest loop or stay in
        # the inbox forever (a crash would recur on every restart).
        inbox = tmp_path / "inbox"
        inbox.mkdir(parents=True)
        (inbox / "nokind.json").write_text(json.dumps({"params": {}}))
        (inbox / "notadict.json").write_text(json.dumps([1, 2, 3]))
        good = client.submit(tmp_path, "_test_sleep", {"seconds": 0})

        sup = _service(tmp_path)
        try:
            sup.run(until_idle=True, max_wall_s=60.0)
            assert sup.store.jobs[good].status == DONE  # service survived
        finally:
            sup.shutdown()
        assert list(inbox.glob("*.json")) == []  # poison files unlinked
        for stem in ("nokind", "notadict"):
            out = json.loads(
                (tmp_path / "results" / f"{stem}.json").read_text())
            assert out["status"] == "rejected"
            assert "malformed" in out["reason"]


# --------------------------------------------------------------------- #
# journal recovery through the supervisor (service restart)
# --------------------------------------------------------------------- #


class TestServiceRestart:
    def test_restart_does_not_rerun_done_jobs(self, tmp_path):
        sup = _service(tmp_path)
        try:
            ids = [sup.store.submit("_test_sleep", {"seconds": 0, "n": i}).id
                   for i in range(4)]
            sup.run(until_idle=True, max_wall_s=60.0)
        finally:
            sup.shutdown()
        before = Journal.load(tmp_path / "journal.jsonl")

        sup2 = _service(tmp_path)
        try:
            assert all(sup2.store.jobs[i].status == DONE for i in ids)
            sup2.run(until_idle=True, max_wall_s=30.0)
        finally:
            sup2.shutdown()
        after = Journal.load(tmp_path / "journal.jsonl")
        lifecycle = [e for e in after[len(before):]
                     if e.get("event") in ("start", "done", "fail",
                                           "quarantine")]
        assert lifecycle == []

    def test_synthetic_running_job_runs_exactly_once(self, tmp_path):
        # forge a journal whose last word is "job X was running on a
        # worker that never reported back" — the restarted service must
        # run it exactly once.
        store = JobStore(tmp_path)
        job = store.submit("_test_sleep", {"seconds": 0.01})
        store.mark_started(job, worker=0)
        store.close()

        sup = _service(tmp_path)
        try:
            assert sup.store.jobs[job.id].status == PENDING
            sup.run(until_idle=True, max_wall_s=60.0)
            assert sup.store.jobs[job.id].status == DONE
        finally:
            sup.shutdown()
        events = Journal.load(tmp_path / "journal.jsonl")
        assert sum(1 for e in events if e.get("event") == "done") == 1


# --------------------------------------------------------------------- #
# retry determinism (satellite: same seed -> same schedule + digest)
# --------------------------------------------------------------------- #


class TestRetryDeterminism:
    def _run_once(self, workdir: Path) -> dict:
        sup = Supervisor(ServiceConfig(workdir=workdir, workers=2, seed=42,
                                       poll_s=0.01))
        try:
            for i in range(4):
                sup.store.submit("_test_flaky", {"fail_attempts": 2, "n": i},
                                 max_retries=3)
            sup.run(until_idle=True, max_wall_s=60.0)
            digest = sup.store.digest()
            attempts = {j.id: j.attempt for j in sup.store.jobs.values()}
        finally:
            sup.shutdown()
        events = Journal.load(workdir / "journal.jsonl")
        delays = sorted(
            (e["job"], e["attempt"], e["retry_delay_s"])
            for e in events if e.get("event") == "fail"
        )
        return {"digest": digest, "attempts": attempts, "delays": delays}

    def test_same_seed_same_backoff_and_digest(self, tmp_path):
        a = self._run_once(tmp_path / "run_a")
        b = self._run_once(tmp_path / "run_b")
        assert a["delays"] == b["delays"] and len(a["delays"]) == 8
        assert a["attempts"] == b["attempts"]
        assert a["digest"] == b["digest"]

    def test_journal_delays_match_backoff_formula(self, tmp_path):
        run = self._run_once(tmp_path / "run")
        for job_id, attempt, delay in run["delays"]:
            assert delay == pytest.approx(backoff_delay(42, job_id, attempt))


# --------------------------------------------------------------------- #
# misc invariants
# --------------------------------------------------------------------- #


class TestJobModel:
    def test_terminal_property(self):
        j = Job(id="x", kind="simulate", params={})
        assert not j.terminal
        for status in (DONE, QUARANTINED):
            j.status = status
            assert j.terminal
        for status in (PENDING, RUNNING, FAILED):
            j.status = status
            assert not j.terminal

    def test_store_counts(self, tmp_path):
        store = JobStore(tmp_path)
        store.submit("_test_sleep", {"seconds": 0, "n": 1})
        store.submit("_test_sleep", {"seconds": 0, "n": 2})
        counts = store.counts()
        assert counts[PENDING] == 2 and counts.get(DONE, 0) == 0
        store.close()

    def test_workdir_layout(self, tmp_path):
        store = JobStore(tmp_path)
        store.submit("_test_sleep", {"seconds": 0})
        store.close()
        assert (tmp_path / "journal.jsonl").exists()
        assert os.path.isdir(tmp_path / "results")
