"""MAGIC NOR netlists and the derived float32 op-cost tables."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pim.arithmetic import (
    HostOpModel,
    OpCosts,
    default_op_costs,
    float32_add_nors,
    float32_mul_nors,
    float32_mul_nors_serial,
)
from repro.pim.magic import (
    FULL_ADDER_STEPS,
    LANES,
    NorMachine,
    VectorNorMachine,
    int_add_steps,
    int_multiply_steps,
    nor_add,
    nor_add_vec,
    nor_multiply,
    nor_multiply_vec,
    pack_lanes,
    unpack_lanes,
)

u32 = st.integers(min_value=0, max_value=(1 << 32) - 1)
u16 = st.integers(min_value=0, max_value=(1 << 16) - 1)
u8 = st.integers(min_value=0, max_value=255)


class TestNorMachine:
    def test_nor_truth_table(self):
        m = NorMachine()
        assert m.nor(0, 0) == 1
        assert m.nor(0, 1) == 0
        assert m.nor(1, 0) == 0
        assert m.nor(1, 1) == 0
        assert m.steps == 4

    def test_multi_input(self):
        m = NorMachine()
        assert m.nor(0, 0, 0, 0) == 1
        assert m.nor(0, 0, 1, 0) == 0

    def test_nor_rejects_empty(self):
        with pytest.raises(ValueError):
            NorMachine().nor()

    def test_derived_gates(self):
        m = NorMachine()
        assert m.not_(0) == 1 and m.not_(1) == 0
        assert m.or_(0, 1) == 1 and m.or_(0, 0) == 0
        assert m.and_(1, 1) == 1 and m.and_(1, 0) == 0
        assert m.xor_(1, 0) == 1 and m.xor_(1, 1) == 0 and m.xor_(0, 0) == 0

    def test_full_adder_exhaustive(self):
        for a in (0, 1):
            for b in (0, 1):
                for c in (0, 1):
                    m = NorMachine()
                    s, cout = m.full_adder(a, b, c)
                    assert s == (a + b + c) % 2
                    assert cout == (a + b + c) // 2
                    assert m.steps == FULL_ADDER_STEPS


class TestNorAdd:
    @given(u32, u32)
    @settings(max_examples=200, deadline=None)
    def test_correct(self, a, b):
        r, carry, steps = nor_add(a, b, 32)
        assert r == (a + b) & 0xFFFFFFFF
        assert carry == (a + b) >> 32
        assert steps == int_add_steps(32)

    @given(u8, u8)
    @settings(max_examples=50, deadline=None)
    def test_width8(self, a, b):
        r, carry, steps = nor_add(a, b, 8)
        assert r == (a + b) & 0xFF
        assert steps == int_add_steps(8)

    def test_rejects_overflowing_operand(self):
        with pytest.raises(ValueError):
            nor_add(256, 0, 8)


class TestNorMultiply:
    @given(u16, u16)
    @settings(max_examples=100, deadline=None)
    def test_correct_16(self, a, b):
        p, steps = nor_multiply(a, b, 16)
        assert p == a * b
        assert steps == int_multiply_steps(16)

    @given(u8, u8)
    @settings(max_examples=50, deadline=None)
    def test_correct_8(self, a, b):
        p, steps = nor_multiply(a, b, 8)
        assert p == a * b

    def test_24bit_measured_matches_closed_form(self):
        p, steps = nor_multiply(0xABCDEF, 0x123456, 24)
        assert p == 0xABCDEF * 0x123456
        assert steps == int_multiply_steps(24)


class TestVectorNor:
    """Word-packed NOR: 64 lanes per Python op, cycle counts unchanged."""

    def test_pack_unpack_roundtrip(self):
        vals = [0, 1, 0xDEADBEEF, (1 << 32) - 1, 12345]
        assert unpack_lanes(pack_lanes(vals, 32), len(vals)) == vals

    def test_pack_rejects_overwide(self):
        with pytest.raises(ValueError):
            pack_lanes([256], 8)
        with pytest.raises(ValueError):
            pack_lanes(list(range(LANES + 1)), 32)

    def test_vector_full_adder_cycles_match_scalar(self):
        m = VectorNorMachine()
        m.full_adder(0, 0, 0)
        assert m.steps == FULL_ADDER_STEPS

    def test_add_vec_matches_scalar_lanes(self):
        import random

        rng = random.Random(11)
        avals = [rng.getrandbits(32) for _ in range(LANES)]
        bvals = [rng.getrandbits(32) for _ in range(LANES)]
        sums, carries, cycles = nor_add_vec(avals, bvals, 32)
        assert cycles == int_add_steps(32)  # 64 lanes, one machine's cycles
        for a, b, s, c in zip(avals, bvals, sums, carries):
            rs, rc, rcyc = nor_add(a, b, 32)
            assert (s, c) == (rs, rc)
            assert rcyc == cycles

    def test_multiply_vec_matches_scalar_lanes(self):
        import random

        rng = random.Random(13)
        avals = [rng.getrandbits(16) for _ in range(7)]
        bvals = [rng.getrandbits(16) for _ in range(7)]
        prods, cycles = nor_multiply_vec(avals, bvals, 16)
        assert cycles == int_multiply_steps(16)
        for a, b, p in zip(avals, bvals, prods):
            rp, rcyc = nor_multiply(a, b, 16)
            assert p == rp
            assert rcyc == cycles

    def test_scalar_machine_rejected(self):
        with pytest.raises(TypeError):
            nor_add_vec([1], [2], 8, machine=NorMachine())

    @given(u16, u16)
    @settings(max_examples=10, deadline=None)
    def test_multiply_vec_property(self, a, b):
        prods, _ = nor_multiply_vec([a], [b], 16)
        assert prods[0] == (a * b) & 0xFFFFFFFF


class TestOpCosts:
    def test_derived_counts_positive_and_ordered(self):
        costs = default_op_costs()
        assert 0 < costs.nor_count("add") < costs.nor_count("mul")
        assert costs.nor_count("mul") < costs.nor_count("mul_serial")

    def test_add_closed_form_stability(self):
        # the auditable decomposition should not silently change
        assert float32_add_nors() == default_op_costs().nor_count("add")
        assert float32_mul_nors() == default_op_costs().nor_count("mul")
        assert float32_mul_nors_serial() > 2 * float32_mul_nors()

    def test_time_scales_with_nor_count(self):
        costs = default_op_costs()
        t_ratio = costs.time_s("mul") / costs.time_s("add")
        n_ratio = costs.nor_count("mul") / costs.nor_count("add")
        assert t_ratio == pytest.approx(n_ratio)

    def test_energy_scales_with_rows(self):
        costs = default_op_costs()
        assert costs.energy_j("add", 100) == pytest.approx(100 * costs.energy_j("add", 1))

    def test_unknown_op_raises(self):
        with pytest.raises(KeyError):
            default_op_costs().time_s("div")

    def test_row_move_linear(self):
        costs = default_op_costs()
        assert costs.row_move_time_s(10) == pytest.approx(10 * costs.row_move_time_s(1))

    def test_gather_scales_with_unique_sources(self):
        costs = default_op_costs()
        assert costs.gather_time_s(64) < costs.row_move_time_s(512)
        assert costs.gather_time_s(8) < costs.gather_time_s(64)

    def test_mean_flop_time(self):
        costs = default_op_costs()
        expect = 0.5 * (costs.time_s("add") + costs.time_s("mul"))
        assert costs.mean_flop_time_s == pytest.approx(expect)

    def test_latency_row_independent_by_design(self):
        """Row-parallelism: latency comes from NOR count only."""
        costs = default_op_costs()
        assert costs.time_s("add") == costs.nor_count("add") * costs.device.t_nor_s


class TestHostModel:
    def test_linear(self):
        h = HostOpModel()
        assert h.time_s(1000) == pytest.approx(1000 * h.time_per_op_s)
        assert h.energy_j(1000) == pytest.approx(h.time_s(1000) * h.power_w)
