"""Functional batching (Figs. 6/7): folded execution == unbatched == numpy."""

import numpy as np
import pytest

from repro.core.folding import FoldedAcousticRunner
from repro.dg import (
    AcousticMaterial,
    AcousticOperator,
    HexMesh,
    ReferenceElement,
    cfl_timestep,
)
from repro.dg.timestepping import LSRK45
from repro.pim.params import CHIP_CONFIGS, MB, ChipConfig


def _setup(level=2, order=2, seed=0):
    mesh = HexMesh.from_refinement_level(level)
    elem = ReferenceElement(order)
    rng = np.random.default_rng(seed)
    mat = AcousticMaterial(
        kappa=rng.uniform(1.0, 2.0, mesh.n_elements),
        rho=rng.uniform(0.5, 1.5, mesh.n_elements),
    )
    state = (0.1 * rng.standard_normal((4, mesh.n_elements, elem.n_nodes))).astype(
        np.float32
    )
    return mesh, elem, mat, state


def _numpy_reference(mesh, elem, mat, state, dt, n_steps, flux="riemann"):
    op = AcousticOperator(mesh, mat, elem, flux=flux)
    ref = state.astype(np.float64)
    stepper = LSRK45(lambda s: op.rhs(s))
    aux = np.zeros_like(ref)
    for _ in range(n_steps):
        stepper.step(ref, 0.0, dt, aux)
    return ref


class TestValidation:
    def test_rejects_bad_window(self):
        mesh, elem, mat, _ = _setup()
        with pytest.raises(ValueError):
            FoldedAcousticRunner(mesh, elem, mat, CHIP_CONFIGS["512MB"], 3)
        with pytest.raises(ValueError):
            FoldedAcousticRunner(mesh, elem, mat, CHIP_CONFIGS["512MB"], 5)

    def test_rejects_too_small_chip(self):
        mesh, elem, mat, _ = _setup(level=3)
        tiny = ChipConfig(name="tiny", capacity_bytes=4 * MB, blocks_per_tile=32)
        # 32 blocks cannot hold even one slice window of the 8^3 mesh
        with pytest.raises(ValueError):
            FoldedAcousticRunner(mesh, elem, mat, tiny, 2)

    def test_set_state_validates(self):
        mesh, elem, mat, _ = _setup()
        r = FoldedAcousticRunner(mesh, elem, mat, CHIP_CONFIGS["512MB"], 2)
        with pytest.raises(ValueError):
            r.set_state(np.zeros((4, 1, 1)))


class TestEquivalence:
    def test_folded_matches_numpy_two_steps(self):
        mesh, elem, mat, state = _setup()
        dt = cfl_timestep(mesh.h, mat.max_speed, elem.order, 0.3)
        runner = FoldedAcousticRunner(mesh, elem, mat, CHIP_CONFIGS["512MB"], 2)
        runner.set_state(state)
        runner.step(dt)
        runner.step(dt)
        ref = _numpy_reference(mesh, elem, mat, state, dt, 2)
        err = np.max(np.abs(runner.read_state() - ref)) / np.max(np.abs(ref))
        assert err < 5e-6

    def test_window_size_invariance(self):
        """Different window sizes stream different batch schedules but must
        produce the identical wavefield."""
        mesh, elem, mat, state = _setup(seed=2)
        dt = cfl_timestep(mesh.h, mat.max_speed, elem.order, 0.3)
        outs = []
        for w in (1, 2, 4):
            r = FoldedAcousticRunner(mesh, elem, mat, CHIP_CONFIGS["512MB"], w)
            r.set_state(state)
            r.step(dt)
            outs.append(r.read_state())
        assert np.array_equal(outs[0], outs[1])
        assert np.array_equal(outs[1], outs[2])

    def test_genuinely_undersized_chip(self):
        """A 64-block chip streams a 64-element mesh (4 windows of 1 slice
        + 2 ghosts = 48 resident blocks max) — true §6.1 folding."""
        mesh, elem, mat, state = _setup(level=2, order=1, seed=3)
        small = ChipConfig(name="64blk", capacity_bytes=8 * MB, blocks_per_tile=64)
        assert small.n_blocks == 64 < mesh.n_elements + 2 * 16
        runner = FoldedAcousticRunner(mesh, elem, mat, small, 1)
        dt = cfl_timestep(mesh.h, mat.max_speed, elem.order, 0.3)
        runner.set_state(state)
        runner.step(dt)
        ref = _numpy_reference(mesh, elem, mat, state, dt, 1)
        err = np.max(np.abs(runner.read_state() - ref)) / np.max(np.abs(ref))
        assert err < 5e-6

    def test_central_flux_variant(self):
        mesh, elem, mat, state = _setup(seed=4)
        dt = cfl_timestep(mesh.h, mat.max_speed, elem.order, 0.3)
        runner = FoldedAcousticRunner(
            mesh, elem, mat, CHIP_CONFIGS["512MB"], 2, flux_kind="central"
        )
        runner.set_state(state)
        runner.step(dt)
        ref = _numpy_reference(mesh, elem, mat, state, dt, 1, flux="central")
        err = np.max(np.abs(runner.read_state() - ref)) / np.max(np.abs(ref))
        assert err < 5e-6

    def test_report_accumulates(self):
        mesh, elem, mat, state = _setup(seed=5)
        runner = FoldedAcousticRunner(mesh, elem, mat, CHIP_CONFIGS["512MB"], 2)
        runner.set_state(state)
        rep = runner.step(1e-3)
        assert rep.n_instructions > 0
        assert rep.time_by_tag.get("volume", 0) > 0
        assert runner.time == pytest.approx(1e-3)
