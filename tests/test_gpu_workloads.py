"""GPU/CPU baseline models and the Table 6 workload counts."""

import numpy as np
import pytest

from repro.gpu import (
    CPU_BASELINE,
    GPU_SPECS,
    benchmark_traffic,
    cpu_benchmark_time,
    gpu_benchmark_energy,
    gpu_benchmark_time,
)
from repro.gpu.cpu import cpu_benchmark_energy, cpu_stage_time
from repro.workloads import BENCHMARKS, PAPER_TABLE6, benchmark_list, count_benchmark

ORDER = 3  # keep counting fast; order-7 runs live in the bench harness


@pytest.fixture(scope="module")
def acoustic4_ops():
    return count_benchmark(BENCHMARKS["acoustic_4"], order=ORDER)


class TestBenchmarkSpecs:
    def test_six_benchmarks(self):
        specs = benchmark_list()
        assert len(specs) == 6
        assert [s.name for s in specs] == [
            "Acoustic_4",
            "Elastic-Central_4",
            "Elastic-Riemann_4",
            "Acoustic_5",
            "Elastic-Central_5",
            "Elastic-Riemann_5",
        ]

    def test_element_counts_match_paper(self):
        for spec in benchmark_list():
            assert spec.n_elements == PAPER_TABLE6[spec.key]["elements"]

    def test_paper_geometry(self):
        s = BENCHMARKS["acoustic_4"]
        assert s.n_nodes == 512 and s.n_vars == 4
        assert BENCHMARKS["elastic_central_4"].n_vars == 9

    def test_state_bytes(self):
        s = BENCHMARKS["acoustic_4"]
        assert s.state_bytes == 4096 * 512 * 4 * 4


class TestOpCount:
    def test_positive_components(self, acoustic4_ops):
        oc = acoustic4_ops
        assert oc.fp_ops_volume > 0
        assert oc.fp_ops_flux > 0
        assert oc.fp_ops_integration > 0
        assert oc.fp_ops == oc.fp_ops_volume + oc.fp_ops_flux + oc.fp_ops_integration

    def test_level5_is_8x_level4(self):
        l4 = count_benchmark(BENCHMARKS["acoustic_4"], order=ORDER)
        l5 = count_benchmark(BENCHMARKS["acoustic_5"], order=ORDER)
        assert l5.fp_ops == 8 * l4.fp_ops

    def test_riemann_heavier_than_central(self):
        c = count_benchmark(BENCHMARKS["elastic_central_4"], order=ORDER)
        r = count_benchmark(BENCHMARKS["elastic_riemann_4"], order=ORDER)
        assert r.fp_ops > c.fp_ops
        assert r.fp_ops_flux > c.fp_ops_flux

    def test_elastic_heavier_than_acoustic(self):
        a = count_benchmark(BENCHMARKS["acoustic_4"], order=ORDER)
        e = count_benchmark(BENCHMARKS["elastic_central_4"], order=ORDER)
        assert e.fp_ops > a.fp_ops

    def test_paper_ordering_preserved(self):
        """Our fp-op ordering across benchmarks matches Table 6's."""
        ours = {s.key: count_benchmark(s, order=ORDER).fp_ops for s in benchmark_list()}
        paper = {k: v["fp_ops"] for k, v in PAPER_TABLE6.items()}
        our_rank = sorted(ours, key=ours.get)
        paper_rank = sorted(paper, key=paper.get)
        assert our_rank == paper_rank

    def test_order7_fp_ops_within_2x_of_paper(self):
        """At the paper's element order the counts land in [0.4x, 2.5x]."""
        oc = count_benchmark(BENCHMARKS["acoustic_4"], order=7)
        ratio = oc.fp_ops / PAPER_TABLE6["acoustic_4"]["fp_ops"]
        assert 0.4 < ratio < 2.5


class TestTraffic:
    def test_fused_moves_less(self, acoustic4_ops):
        spec = BENCHMARKS["acoustic_4"]
        unfused = sum(k.bytes_moved for k in benchmark_traffic(spec, acoustic4_ops, False))
        fused = sum(k.bytes_moved for k in benchmark_traffic(spec, acoustic4_ops, True))
        assert fused < unfused

    def test_flops_conserved_by_fusion(self, acoustic4_ops):
        spec = BENCHMARKS["acoustic_4"]
        unfused = sum(k.flops for k in benchmark_traffic(spec, acoustic4_ops, False))
        fused = sum(k.flops for k in benchmark_traffic(spec, acoustic4_ops, True))
        assert fused == pytest.approx(unfused)

    def test_kernel_kinds(self, acoustic4_ops):
        spec = BENCHMARKS["acoustic_4"]
        kinds = [k.kind for k in benchmark_traffic(spec, acoustic4_ops, False)]
        assert kinds == ["volume", "flux", "integration"]


class TestRoofline:
    def test_memory_bound_regime(self, acoustic4_ops):
        """§3.1: the GPU implementation is memory-bandwidth bound."""
        spec = BENCHMARKS["acoustic_4"]
        t = gpu_benchmark_time(spec, acoustic4_ops, GPU_SPECS["V100"], fused=False)
        assert t.bound["volume"] == "memory"
        assert t.bound["integration"] == "memory"

    def test_gpu_ordering(self, acoustic4_ops):
        """V100 < P100 < 1080Ti runtime (bandwidth ordering)."""
        spec = BENCHMARKS["acoustic_4"]
        times = {
            k: gpu_benchmark_time(spec, acoustic4_ops, g, False).stage_time_s
            for k, g in GPU_SPECS.items()
        }
        assert times["V100"] < times["P100"] < times["1080Ti"]

    def test_fused_faster(self, acoustic4_ops):
        spec = BENCHMARKS["acoustic_4"]
        for g in GPU_SPECS.values():
            uf = gpu_benchmark_time(spec, acoustic4_ops, g, False).stage_time_s
            f = gpu_benchmark_time(spec, acoustic4_ops, g, True).stage_time_s
            assert f < uf

    def test_total_time_scales(self, acoustic4_ops):
        spec = BENCHMARKS["acoustic_4"]
        t = gpu_benchmark_time(spec, acoustic4_ops, GPU_SPECS["V100"], False)
        assert t.total_time_s(200) == pytest.approx(2 * t.total_time_s(100))


class TestGpuEnergy:
    def test_power_below_tdp_plus_host(self, acoustic4_ops):
        spec = BENCHMARKS["acoustic_4"]
        g = GPU_SPECS["V100"]
        timing = gpu_benchmark_time(spec, acoustic4_ops, g, False)
        e = gpu_benchmark_energy(timing, g, 100)
        assert 0 < e.gpu_energy_j
        gpu_power = e.gpu_energy_j / e.time_s
        assert gpu_power < g.tdp_w

    def test_energy_additive(self, acoustic4_ops):
        spec = BENCHMARKS["acoustic_4"]
        g = GPU_SPECS["1080Ti"]
        timing = gpu_benchmark_time(spec, acoustic4_ops, g, False)
        e = gpu_benchmark_energy(timing, g, 100)
        assert e.energy_j == pytest.approx(e.gpu_energy_j + e.host_energy_j)


class TestCpuBaseline:
    def test_cpu_much_slower_than_gpu(self, acoustic4_ops):
        spec = BENCHMARKS["acoustic_4"]
        cpu_t = cpu_benchmark_time(spec, acoustic4_ops, 64)
        gpu_t = gpu_benchmark_time(spec, acoustic4_ops, GPU_SPECS["1080Ti"], False)
        assert cpu_t / gpu_t.total_time_s(64) > 20

    def test_cache_cliff_level5(self):
        """Level 5 exceeds the LLC: CPU degrades superlinearly (§3.1's
        widening GPU speedups at level 5)."""
        l4 = count_benchmark(BENCHMARKS["acoustic_4"], order=ORDER)
        l5 = count_benchmark(BENCHMARKS["acoustic_5"], order=ORDER)
        t4 = cpu_stage_time(BENCHMARKS["acoustic_4"], l4)
        t5 = cpu_stage_time(BENCHMARKS["acoustic_5"], l5)
        assert t5 > 8 * t4 * 1.5  # more than the pure size ratio

    def test_cpu_energy(self, acoustic4_ops):
        spec = BENCHMARKS["acoustic_4"]
        e = cpu_benchmark_energy(spec, acoustic4_ops, 16)
        t = cpu_benchmark_time(spec, acoustic4_ops, 16)
        assert e == pytest.approx(0.85 * CPU_BASELINE.tdp_w * t)

    def test_spec_properties(self):
        assert CPU_BASELINE.peak_flops > 1e12
        assert CPU_BASELINE.effective_flops < CPU_BASELINE.peak_flops
