"""Persistent compile cache: fingerprints, hit/miss, recovery, knobs.

The cache must never change results — a hit returns exactly what a cold
compile would produce — and must never crash on a damaged entry: the
worst case is always a recompile.
"""

import dataclasses
import os

import pytest

from repro.core import cache as cachemod
from repro.core.cache import (
    CompileCache,
    cache_enabled,
    compile_fingerprint,
    default_cache,
)
from repro.core.compiler import WavePimCompiler
from repro.eval import experiments as expmod
from repro.pim.params import CHIP_CONFIGS

CHIP = CHIP_CONFIGS["512MB"]


@pytest.fixture(autouse=True)
def _isolated_cache(monkeypatch, tmp_path):
    """Point the process-wide cache at a throwaway dir for every test."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    default_cache(refresh=True)
    expmod.clear_compiled_cache()
    yield
    expmod.clear_compiled_cache()
    # forget the singleton so the next consumer re-reads the (restored) env
    cachemod._DEFAULT = None


class TestFingerprint:
    def test_deterministic(self):
        a = compile_fingerprint("acoustic", 2, CHIP, "riemann", 3)
        b = compile_fingerprint("acoustic", 2, CHIP, "riemann", 3)
        assert a == b

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"physics": "elastic"},
            {"level": 3},
            {"flux": "central"},
            {"order": 4},
        ],
    )
    def test_changes_on_each_input(self, kwargs):
        base = dict(physics="acoustic", level=2, flux="riemann", order=3)
        ref = compile_fingerprint(base["physics"], base["level"], CHIP,
                                  base["flux"], base["order"])
        base.update(kwargs)
        other = compile_fingerprint(base["physics"], base["level"], CHIP,
                                    base["flux"], base["order"])
        assert ref != other

    def test_changes_on_chip_params(self):
        ref = compile_fingerprint("acoustic", 2, CHIP, "riemann", 3)
        assert ref != compile_fingerprint(
            "acoustic", 2, CHIP_CONFIGS["2GB"], "riemann", 3
        )
        assert ref != compile_fingerprint(
            "acoustic", 2, CHIP.with_interconnect("bus"), "riemann", 3
        )
        # a single nested device knob must be enough to invalidate
        tweaked = dataclasses.replace(
            CHIP, device=dataclasses.replace(CHIP.device, e_nor_j=999.0)
        )
        assert ref != compile_fingerprint("acoustic", 2, tweaked, "riemann", 3)

    def test_changes_on_schema_version(self, monkeypatch):
        ref = compile_fingerprint("acoustic", 2, CHIP, "riemann", 3)
        monkeypatch.setattr(cachemod, "SCHEMA_VERSION", cachemod.SCHEMA_VERSION + 1)
        assert ref != compile_fingerprint("acoustic", 2, CHIP, "riemann", 3)


class TestCompileCache:
    def test_miss_then_hit(self, tmp_path):
        cache = CompileCache(tmp_path, enabled=True)
        assert cache.get("k") is None
        cache.put("k", {"x": 1})
        assert cache.get("k") == {"x": 1}
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1

    def test_disabled_never_touches_disk(self, tmp_path):
        cache = CompileCache(tmp_path, enabled=False)
        cache.put("k", {"x": 1})
        assert cache.get("k") is None
        assert cache.entries() == []

    def test_corrupted_entry_is_a_miss_and_removed(self, tmp_path):
        cache = CompileCache(tmp_path, enabled=True)
        cache.put("k", {"x": 1})
        path = cache.entries()[0]
        path.write_bytes(b"not a pickle at all")
        assert cache.get("k") is None
        assert cache.stats.errors == 1
        assert not path.exists()
        # and a fresh put recovers
        cache.put("k", {"x": 2})
        assert cache.get("k") == {"x": 2}

    def test_clear_and_disk_stats(self, tmp_path):
        cache = CompileCache(tmp_path, enabled=True)
        cache.put("a", 1)
        cache.put("b", 2)
        stats = cache.disk_stats()
        assert stats["entries"] == 2
        assert stats["bytes"] > 0
        assert cache.clear() == 2
        assert cache.entries() == []


class TestEnvKnobs:
    def test_no_cache_env_disables(self, monkeypatch):
        assert cache_enabled()
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert not cache_enabled()
        assert not default_cache(refresh=True).enabled

    def test_cache_dir_env_respected(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        cache = default_cache(refresh=True)
        assert cache.root == tmp_path / "elsewhere"


class TestCompilerIntegration:
    def test_second_compile_hits_and_matches(self, tmp_path):
        cache = CompileCache(tmp_path, enabled=True)
        compiler = WavePimCompiler(order=2)
        cold = compiler.compile("acoustic", 1, CHIP, "riemann", cache=cache)
        assert cache.stats.stores == 1
        warm = WavePimCompiler(order=2).compile("acoustic", 1, CHIP, "riemann", cache=cache)
        assert cache.stats.hits == 1
        assert warm.stage_times == cold.stage_times
        assert warm.stage_energy_per_element == cold.stage_energy_per_element
        assert warm.op_counts_per_element == cold.op_counts_per_element
        assert warm.dram_bytes_per_step == cold.dram_bytes_per_step
        assert warm.plan == cold.plan

    def test_distinct_cells_do_not_alias(self, tmp_path):
        cache = CompileCache(tmp_path, enabled=True)
        compiler = WavePimCompiler(order=2)
        a = compiler.compile("acoustic", 1, CHIP, "riemann", cache=cache)
        b = compiler.compile("acoustic", 1, CHIP, "central", cache=cache)
        assert len(cache.entries()) == 2
        assert a.flux_kind != b.flux_kind


class TestParallelFanout:
    CELLS = [
        ("acoustic", 1, "512MB", "riemann", 2, "htree"),
        ("acoustic", 1, "512MB", "central", 2, "htree"),
    ]

    def test_parallel_equals_serial(self, monkeypatch):
        # force the pool path (no disk hits to short-circuit it)
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        default_cache(refresh=True)
        n = expmod.warm_compile_grid(order=2, jobs=2, cells=list(self.CELLS))
        assert n == len(self.CELLS)
        parallel = {c: expmod._COMPILED[c] for c in self.CELLS}

        expmod.clear_compiled_cache()
        for cell in self.CELLS:
            expmod._compiled(*cell)
        for cell in self.CELLS:
            p, s = parallel[cell], expmod._COMPILED[cell]
            assert p.stage_times == s.stage_times
            assert p.stage_energy_per_element == s.stage_energy_per_element
            assert p.op_counts_per_element == s.op_counts_per_element
            assert p.dram_bytes_per_step == s.dram_bytes_per_step
            assert p.plan == s.plan

    def test_warm_grid_skips_disk_hits(self):
        cells = list(self.CELLS)
        assert expmod.warm_compile_grid(order=2, jobs=1, cells=cells) == 2
        expmod.clear_compiled_cache()
        # everything is on disk now: nothing left for the pool
        assert expmod.warm_compile_grid(order=2, jobs=2, cells=cells) == 0
        assert set(cells) <= set(expmod._COMPILED)

    def test_resolve_jobs(self, monkeypatch):
        assert expmod._resolve_jobs(3) == 3
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert expmod._resolve_jobs() == 5
        monkeypatch.delenv("REPRO_JOBS")
        assert expmod._resolve_jobs() == 1
        with pytest.raises(ValueError):
            expmod._resolve_jobs(0)


class TestCli:
    def test_cache_stats_and_clear(self, capsys):
        from repro.__main__ import main

        cache = default_cache()
        cache.put("deadbeef", {"x": 1})
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "entries" in out
        assert main(["cache", "clear"]) == 0
        assert "cleared 1" in capsys.readouterr().out
        assert cache.entries() == []

    def test_no_cache_flag_bypasses_disk(self, capsys):
        from repro.__main__ import main

        assert main(["run", "fig13", "--order", "2", "--no-cache"]) == 0
        err = capsys.readouterr().err
        assert "disabled" in err
        assert default_cache().entries() == []

    def test_run_reports_cache_status(self, capsys):
        from repro.__main__ import main

        assert main(["run", "fig13", "--order", "2"]) == 0
        err = capsys.readouterr().err
        assert "miss" in err
        expmod.clear_compiled_cache()
        assert main(["run", "fig13", "--order", "2"]) == 0
        err = capsys.readouterr().err
        assert "1 hit" in err
