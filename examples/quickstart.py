"""Quickstart: simulate a wave, then map the same workload onto Wave-PIM.

Runs in a few seconds:

1. build an acoustic dG solver (the paper's algorithm, small geometry),
   inject a Ricker source and record a seismogram;
2. plan the deployment of a paper-scale benchmark on a 2 GB PIM chip
   (Table 5's logic) and estimate its runtime/energy against three GPUs.

Usage: python examples/quickstart.py

For CI smoke runs the geometry can be shrunk via environment variables
(defaults reproduce the full demo): ``REPRO_QS_STEPS``, ``REPRO_QS_LEVEL``,
``REPRO_QS_ORDER`` (the dG solver) and ``REPRO_QS_PIM_ORDER`` (the PIM
compile).
"""

import os
import time

import numpy as np

from repro import (
    CHIP_CONFIGS,
    GPU_SPECS,
    RickerSource,
    SolverConfig,
    WavePimCompiler,
    WaveSolver,
    count_benchmark,
    estimate_benchmark,
)
from repro.core.cache import default_cache
from repro.dg.solver import Receiver
from repro.gpu import gpu_benchmark_time
from repro.workloads import BENCHMARKS

#: smoke-test knobs (see module docstring); defaults are the full demo.
QS_STEPS = int(os.environ.get("REPRO_QS_STEPS", "200"))
QS_LEVEL = int(os.environ.get("REPRO_QS_LEVEL", "2"))
QS_ORDER = int(os.environ.get("REPRO_QS_ORDER", "3"))
QS_PIM_ORDER = int(os.environ.get("REPRO_QS_PIM_ORDER", "7"))


def simulate():
    print("=" * 64)
    print("1. Wave simulation (numpy dG solver)")
    print("=" * 64)
    solver = WaveSolver(
        SolverConfig(physics="acoustic", refinement_level=QS_LEVEL,
                     order=QS_ORDER, flux="riemann")
    )
    solver.add_source(RickerSource(position=(0.5, 0.5, 0.75), peak_frequency=6.0))
    receiver = Receiver(position=(0.5, 0.5, 0.25), variable=0)
    solver.add_receiver(receiver)

    n_steps = QS_STEPS
    print(f"mesh: {solver.mesh.n_elements} elements, "
          f"{solver.element.n_nodes} nodes each, dt = {solver.dt:.2e}s")
    solver.run(n_steps)
    trace = np.array(receiver.trace)
    print(f"ran {n_steps} steps to t = {solver.time:.3f}s; "
          f"field energy = {solver.energy():.3e}")
    k = int(np.argmax(np.abs(trace)))
    print(f"receiver peak |p| = {np.abs(trace[k]):.3e} at step {k} "
          f"(direct arrival through half the domain)")


def deploy():
    print()
    print("=" * 64)
    print("2. Wave-PIM deployment of the paper-scale Acoustic_4 benchmark")
    print("=" * 64)
    compiler = WavePimCompiler(order=QS_PIM_ORDER)
    chip = CHIP_CONFIGS["2GB"]
    cache = default_cache()
    t0 = time.perf_counter()
    compiled = compiler.compile("acoustic", 4, chip, "riemann", cache=cache)
    elapsed = time.perf_counter() - t0
    status = "hit" if cache.stats.hits else ("off" if not cache.enabled else "miss")
    print(f"compile: {elapsed:.2f}s (persistent cache: {status} — "
          f"rerun is near-instant on a hit)")
    plan = compiled.plan
    print(f"plan on {chip.name}: technique={plan.label} "
          f"blocks/element={plan.blocks_per_element} batches={plan.n_batches} "
          f"chip utilization={plan.utilization:.0%}")
    st = compiled.stage_times
    print(f"per-RK-stage lanes: volume={st.volume*1e6:.0f}us "
          f"flux fetch={1e6*(st.flux_fetch_minus+st.flux_fetch_plus):.0f}us "
          f"flux compute={1e6*(st.flux_compute_minus+st.flux_compute_plus):.0f}us "
          f"integration={st.integration*1e6:.0f}us")

    est = estimate_benchmark(compiled, n_steps=1024, scale_to_12nm=True)
    print(f"\nPIM-2GB (12nm-scaled): {est.time_s:.2f}s, {est.energy_j:.0f}J "
          f"for 1024 time-steps")

    ops = count_benchmark(BENCHMARKS["acoustic_4"])
    for key, gpu in GPU_SPECS.items():
        t = gpu_benchmark_time(BENCHMARKS["acoustic_4"], ops, gpu, fused=True)
        total = t.total_time_s(1024)
        print(f"  vs fused {gpu.name:12s}: {total:6.2f}s  -> "
              f"PIM speedup {total / est.time_s:5.1f}x")


if __name__ == "__main__":
    simulate()
    deploy()
