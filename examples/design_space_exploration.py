"""Design-space exploration: pick a PIM configuration for your workload.

Sweeps all four chip capacities and both interconnects over the paper's
six benchmarks, printing runtime, energy and energy-delay product, then
recommends a configuration per benchmark — the §7.4 capacity/energy
trade-off made actionable ("small problems may not be able to take
performance advantage of large PIM chip").

Usage: python examples/design_space_exploration.py
"""

from repro import CHIP_CONFIGS, WavePimCompiler, benchmark_list, estimate_benchmark

N_STEPS = 1024


def main():
    compiler = WavePimCompiler(order=7)
    print("=" * 94)
    print(f"{'benchmark':20s} {'chip':6s} {'net':6s} {'plan':8s} "
          f"{'time (s)':>9s} {'energy (J)':>11s} {'EDP (J*s)':>10s}")
    print("=" * 94)

    recommendations = {}
    for spec in benchmark_list():
        best = None
        for chip_name in ("512MB", "2GB", "8GB", "16GB"):
            for interconnect in ("htree", "bus"):
                chip = CHIP_CONFIGS[chip_name].with_interconnect(interconnect)
                compiled = compiler.compile(
                    spec.physics, spec.refinement_level, chip, spec.flux_kind
                )
                est = estimate_benchmark(compiled, n_steps=N_STEPS, scale_to_12nm=True)
                edp = est.time_s * est.energy_j
                print(f"{spec.name:20s} {chip_name:6s} {interconnect:6s} "
                      f"{compiled.plan.label:8s} {est.time_s:9.2f} "
                      f"{est.energy_j:11.0f} {edp:10.1f}")
                if best is None or edp < best[0]:
                    best = (edp, chip_name, interconnect, compiled.plan.label)
        recommendations[spec.name] = best
        print("-" * 94)

    print("\nminimum energy-delay-product configuration per benchmark:")
    for name, (edp, chip, net, plan) in recommendations.items():
        print(f"  {name:20s} -> {chip} / {net} ({plan}), EDP = {edp:.1f} J*s")

    print("\ntakeaways (the paper's §7.4/7.6 trade-offs):")
    print(" * level-4 problems prefer the smaller chips: the 16GB part is no")
    print("   faster but burns static power in idle tiles;")
    print(" * level-5 problems want capacity: batching on small chips adds")
    print("   off-chip DRAM traffic every stage;")
    print(" * the H-tree earns its leakage premium only on flux-heavy runs.")


if __name__ == "__main__":
    main()
