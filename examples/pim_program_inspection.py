"""Under the hood: execute a Wave-PIM program functionally and inspect it.

Compiles a small acoustic problem into the real instruction stream, runs
it on the functional chip model, proves the wavefield matches the numpy
dG solver bit-for-bit (float32), and prints the instruction mix, the
per-kernel timing tags, and a live demo of the Fig. 4 LUT instruction.

Usage: python examples/pim_program_inspection.py
"""

from collections import Counter

import numpy as np

from repro import AcousticMaterial, AcousticOperator, CHIP_CONFIGS, HexMesh, ReferenceElement
from repro.core.kernels.acoustic import AcousticOneBlockKernels
from repro.core.mapper import ElementMapper
from repro.dg import cfl_timestep
from repro.dg.timestepping import LSRK45
from repro.pim.chip import PimChip
from repro.pim.executor import ChipExecutor
from repro.pim.isa import LutInstructionFormat
from repro.pim.lut import LookupTable


def main():
    print("=" * 70)
    print("Compiling a 8-element acoustic problem to PIM instructions")
    print("=" * 70)
    mesh = HexMesh.from_refinement_level(1)
    elem = ReferenceElement(2)
    rng = np.random.default_rng(7)
    mat = AcousticMaterial(
        kappa=rng.uniform(1, 2, mesh.n_elements), rho=rng.uniform(0.5, 1.5, mesh.n_elements)
    )
    chip = PimChip(CHIP_CONFIGS["512MB"])
    mapper = ElementMapper(mesh.m, chip.config, 1)
    kern = AcousticOneBlockKernels(mesh, elem, mat, mapper, flux_kind="riemann")

    dt = cfl_timestep(mesh.h, mat.max_speed, 2, cfl=0.3)
    program = kern.time_step(dt)
    mix = Counter(i.op.value for i in program)
    print(f"one time-step = {len(program)} instructions:")
    for op, n in mix.most_common():
        print(f"  {op:10s} x {n}")

    print("\nExecuting functionally on the chip model...")
    state = (0.1 * rng.standard_normal((4, mesh.n_elements, elem.n_nodes))).astype(np.float32)
    ex = ChipExecutor(chip)
    ex.run(kern.setup() + kern.load_state(state), functional=True)
    report = ex.run(program, functional=True)
    print(f"modeled chip time for one step: {report.total_time_s*1e6:.1f} us")
    print("per-tag busy time:")
    for tag, t in sorted(report.time_by_tag.items(), key=lambda kv: -kv[1]):
        print(f"  {tag:16s} {t*1e6:9.1f} us")

    print("\nVerifying against the numpy dG reference...")
    op = AcousticOperator(mesh, mat, elem, flux="riemann")
    ref = state.astype(np.float64)
    stepper = LSRK45(lambda s: op.rhs(s))
    stepper.step(ref, 0.0, dt)
    got = kern.read_state(chip)
    err = np.max(np.abs(got - ref)) / np.max(np.abs(ref))
    print(f"max relative deviation after one full RK step: {err:.2e} (float32)")
    assert err < 1e-5

    print("\n" + "=" * 70)
    print("Fig. 4 LUT instruction demo (host-precomputed sqrt table)")
    print("=" * 70)
    lut_block = chip.block(100)
    lut = LookupTable(lut_block, name="sqrt")
    table = np.sqrt(np.arange(256, dtype=np.float32))
    lut.load(table)
    requester = chip.block(0)
    requester.data[3, 20] = 49  # index written during computation
    word = LutInstructionFormat.encode(row_id=3, offset_s=20, lut_block_id=100, offset_d=21)
    print(f"encoded 64-bit instruction: 0x{word:016x}")
    print(f"decoded fields: {LutInstructionFormat.decode(word)}")
    value = lut.execute(requester, word)
    print(f"sqrt(49) served from the LUT block -> {value} "
          f"(written to row 3, word 21: {requester.data[3, 21]})")


if __name__ == "__main__":
    main()
