"""Seismic exploration scenario: a marine-style shot gather.

The paper's motivating application (§1: "oil and gas exploration").  A
Ricker source fires near the surface of a layered acoustic model; a line
of receivers records the pressure field.  The script prints arrival picks
per receiver and checks them against ray-theoretical travel times, then
sizes a Wave-PIM deployment for a production-scale version of the survey.

Usage: python examples/seismic_survey.py
"""

import numpy as np

from repro import CHIP_CONFIGS, RickerSource, SolverConfig, WavePimCompiler, WaveSolver
from repro.core.runtime import estimate_benchmark
from repro.dg.materials import layered_acoustic
from repro.dg.mesh import BoundaryKind
from repro.dg.solver import Receiver


def run_survey():
    print("=" * 70)
    print("Layered-earth shot gather (acoustic, absorbing boundaries)")
    print("=" * 70)

    cfg = SolverConfig(
        physics="acoustic",
        refinement_level=2,  # 64 elements; raise for production
        order=4,
        extent=1.0,
        flux="riemann",
        boundary=BoundaryKind.ABSORBING,
    )
    # two-layer model: slow overburden (c=1) over a fast basement (c=2)
    interface_depth = 0.5
    solver = WaveSolver(SolverConfig(**{**cfg.__dict__}))
    material = layered_acoustic(
        solver.mesh, [interface_depth], kappas=[4.0, 1.0], rhos=[1.0, 1.0]
    )
    # note: z < 0.5 -> kappa 4 (c=2 basement at the bottom)
    solver = WaveSolver(cfg, material=material)

    src_pos = (0.1, 0.5, 0.9)
    solver.add_source(RickerSource(position=src_pos, peak_frequency=8.0, amplitude=5.0))

    offsets = np.linspace(0.2, 0.8, 7)
    receivers = [Receiver(position=(x, 0.5, 0.9), variable=0) for x in offsets]
    for r in receivers:
        solver.add_receiver(r)

    n_steps = 400
    dt = solver.dt
    solver.run(n_steps)
    print(f"{solver.mesh.n_elements} elements, dt={dt:.2e}s, "
          f"{n_steps} steps -> t={solver.time:.2f}s\n")

    c_slow = 1.0  # receivers and source sit in the slow overburden
    onset = 0.5 / 8.0  # the Ricker wavelet rises ~0.5/f before its peak
    print(f"{'offset':>8} {'pick (s)':>9} {'direct onset ETA':>17}")
    picks = []
    for x, r in zip(offsets, receivers):
        trace = np.abs(np.array(r.trace))
        # first-arrival pick: first sample above 5% of the trace max
        thresh = 0.05 * trace.max()
        pick = float(np.argmax(trace > thresh) + 1) * dt
        picks.append(pick)
        dist = abs(x - src_pos[0])
        eta = dist / c_slow + onset
        print(f"{x:8.2f} {pick:9.3f} {eta:17.3f}")

    print("\nmoveout check: far offsets arrive later than near offsets ->",
          "OK" if picks[-1] > picks[0] else "UNEXPECTED")
    return solver


def size_production_run():
    print()
    print("=" * 70)
    print("Sizing the production survey on Wave-PIM (refinement level 5)")
    print("=" * 70)
    compiler = WavePimCompiler(order=7)
    for chip_name in ("2GB", "8GB", "16GB"):
        cb = compiler.compile("acoustic", 5, CHIP_CONFIGS[chip_name], "riemann")
        est = estimate_benchmark(cb, n_steps=1024, scale_to_12nm=True)
        shots_per_day = 86400.0 / est.time_s
        print(f"{chip_name:>6}: plan={cb.plan.label:4s} "
              f"{est.time_s:6.2f}s/shot {est.energy_j:8.0f}J/shot "
              f"-> {shots_per_day:8.0f} shots/day")


if __name__ == "__main__":
    run_survey()
    size_production_run()
