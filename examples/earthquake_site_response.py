"""Earthquake site response: soft-soil amplification (elastic solver).

The paper's second motivating application (§1: "earthquake hazard
mitigation", "site characterization").  A vertically propagating S-wave
crosses a soft near-surface layer; soft soil amplifies ground motion —
the classic site-response effect.  We quantify the amplification by
comparing the surface velocity against a uniform-rock reference run.

Usage: python examples/earthquake_site_response.py
"""

import numpy as np

from repro import ElasticMaterial, SolverConfig, WaveSolver
from repro.dg.analytic import elastic_plane_s_wave
from repro.dg.materials import layered_elastic


def run_case(material, label):
    cfg = SolverConfig(
        physics="elastic", refinement_level=2, order=3, flux="central"
    )
    solver = WaveSolver(cfg, material=material)
    # incident S-wave traveling along +z, polarized in x
    state = elastic_plane_s_wave(
        solver.mesh, solver.element,
        ElasticMaterial.homogeneous(solver.mesh.n_elements,
                                    lam=float(material.lam.max()),
                                    mu=float(material.mu.max()),
                                    rho=1.0),
        k_int=(0, 0, 1), polarization=(1, 0, 0),
    )
    solver.set_state(0.1 * state)
    n = 150
    peak = 0.0
    surface_nodes = None
    coords = solver.mesh.node_coordinates(solver.element.node_coords)
    surface_mask = coords[..., 2] > 0.9
    for _ in range(n):
        solver.run(1)
        vx = solver.state[6]
        peak = max(peak, float(np.max(np.abs(vx[surface_mask]))))
    print(f"{label:28s} peak surface |vx| = {peak:.4f}  energy = {solver.energy():.4f}")
    return peak


def main():
    print("=" * 70)
    print("Site response: soft layer over stiff halfspace (elastic S-wave)")
    print("=" * 70)

    # reference: uniform stiff rock
    def rock(K):
        return ElasticMaterial.homogeneous(K, lam=2.0, mu=2.0, rho=1.0)

    cfg_mesh = WaveSolver(SolverConfig(physics="elastic", refinement_level=2, order=3))
    K = cfg_mesh.mesh.n_elements

    rock_peak = run_case(rock(K), "uniform rock")

    # soft layer in the top quarter of the domain: 4x lower shear modulus
    soft = layered_elastic(
        cfg_mesh.mesh,
        [0.75],
        lams=[2.0, 0.5],
        mus=[2.0, 0.5],
        rhos=[1.0, 0.8],
    )
    soft_peak = run_case(soft, "soft layer over rock")

    amp = soft_peak / rock_peak
    print(f"\nsite amplification factor: {amp:.2f}x")
    print("soft near-surface soil amplifies ground motion (impedance contrast);")
    print("factors of 1.5-4x are typical of real sedimentary sites.")
    assert amp > 1.1, "expected amplification over the rock reference"


if __name__ == "__main__":
    main()
