"""Full-waveform-inversion building block: time-reversal source localization.

The paper's introduction motivates Wave-PIM with applications that need
"repeated solutions of the wave equation" — full-waveform inversion above
all (§1).  This example runs the canonical repeated-solve workflow:

1. a hidden source fires somewhere in the volume; six receivers record;
2. each receiver's trace is time-reversed and back-propagated (one full
   wave solve per receiver);
3. the coherence product of the refocused fields localizes the source.

Seven forward solves per image — then the script counts what a production
imaging campaign would cost and how a PIM deployment changes it.

Usage: python examples/fwi_source_localization.py
"""

import time

import numpy as np

from repro import CHIP_CONFIGS, WavePimCompiler
from repro.apps import TimeReversalImager
from repro.core.runtime import estimate_benchmark
from repro.dg.solver import SolverConfig


def localize():
    print("=" * 70)
    print("Time-reversal source localization (acoustic, 6 receivers)")
    print("=" * 70)
    imager = TimeReversalImager(
        SolverConfig(physics="acoustic", refinement_level=2, order=3, flux="riemann")
    )
    rng = np.random.default_rng(42)
    errors = []
    for trial in range(3):
        true = tuple(rng.uniform(0.3, 0.7, 3).round(2))
        t0 = time.time()
        res = imager.locate(true, n_steps=150)
        errors.append(res.error)
        print(f"trial {trial}: true={np.array(true)} -> "
              f"estimated={res.estimated_position.round(3)} "
              f"error={res.error:.3f} ({time.time()-t0:.1f}s, 7 wave solves)")
    h = 0.25
    print(f"\nmean error {np.mean(errors):.3f} vs element size h={h} "
          f"({np.mean(errors)/h:.2f} elements)")


def campaign_economics():
    print()
    print("=" * 70)
    print("Imaging-campaign economics on Wave-PIM (the paper's pitch)")
    print("=" * 70)
    # one production image = receivers+1 forward solves at level 5
    solves_per_image = 7
    compiler = WavePimCompiler(order=7)
    cb = compiler.compile("acoustic", 5, CHIP_CONFIGS["16GB"], "riemann")
    est = estimate_benchmark(cb, n_steps=1024, scale_to_12nm=True)
    from repro import GPU_SPECS, count_benchmark, BENCHMARKS
    from repro.gpu import gpu_benchmark_time

    ops = count_benchmark(BENCHMARKS["acoustic_5"])
    v100 = gpu_benchmark_time(
        BENCHMARKS["acoustic_5"], ops, GPU_SPECS["V100"], fused=True
    ).total_time_s(1024)
    print(f"one level-5 forward solve : PIM-16GB {est.time_s:.2f}s | fused V100 {v100:.2f}s")
    for name, solve_s in (("PIM-16GB-12nm", est.time_s), ("Fused V100", v100)):
        per_image = solves_per_image * solve_s
        per_day = 86400.0 / per_image
        print(f"  {name:14s}: {per_image:7.1f}s per image -> {per_day:7.0f} images/day")


if __name__ == "__main__":
    localize()
    campaign_economics()
