"""Benchmarks regenerating Tables 2-6 of the paper."""

import pytest

from repro.eval import (
    table2_hardware,
    table3_pim_power,
    table4_basic_ops,
    table5_configurations,
    table6_benchmarks,
)


@pytest.mark.benchmark(group="tables")
def test_table2_hardware(regenerate):
    t = regenerate(table2_hardware)
    assert len(t.rows) == 7  # 3 GPUs + 4 PIM sizes


@pytest.mark.benchmark(group="tables")
def test_table3_pim_power(regenerate):
    t = regenerate(table3_pim_power)
    totals = {r["component"]: r["value_w"] for r in t.rows}
    # paper: 115.02 W (H-tree) / 109.25 W (Bus) — re-derivation within 2%
    assert abs(totals["total_w_htree"] - 115.02) / 115.02 < 0.02
    assert abs(totals["total_w_bus"] - 109.25) / 109.25 < 0.02


@pytest.mark.benchmark(group="tables")
def test_table4_basic_ops(regenerate):
    t = regenerate(table4_basic_ops)
    assert any("mul" in str(r["quantity"]) for r in t.rows)


@pytest.mark.benchmark(group="tables")
def test_table5_configurations(regenerate):
    t = regenerate(table5_configurations)
    assert all(t.column("matches_paper"))  # exact reproduction


@pytest.mark.benchmark(group="tables")
def test_table6_benchmarks(regenerate):
    t = regenerate(table6_benchmarks)  # order-7 paper geometry
    for row in t.rows:
        # fp-op counts land within a factor ~2 of nvprof's (EXPERIMENTS.md)
        assert 0.3 < row["fp_ratio"] < 3.0
