"""Benchmarks regenerating Figures 11-14 and the §3.1/§7 numbers."""

import numpy as np
import pytest

from repro.eval import (
    fig11_performance,
    fig12_energy,
    fig13_pipeline,
    fig14_htree_vs_bus,
    sec31_gpu_vs_cpu,
    sec7_summary,
)


@pytest.mark.benchmark(group="figures")
def test_fig11_performance(regenerate):
    t = regenerate(fig11_performance)
    for row in t.rows:
        # every scaled PIM configuration beats the unfused baseline...
        assert row["PIM-16GB-12nm"] < 1.0
        # ...and capacity never hurts
        assert row["PIM-16GB-12nm"] <= row["PIM-512MB-12nm"] * 1.01


@pytest.mark.benchmark(group="figures")
def test_fig12_energy(regenerate):
    t = regenerate(fig12_energy)
    for row in t.rows:
        assert row["PIM-2GB-12nm"] < 1.0  # energy saved vs Unfused-1080Ti


@pytest.mark.benchmark(group="figures")
def test_fig13_pipeline(regenerate):
    t = regenerate(fig13_pipeline)
    ratio = float(t.notes[0].split("=")[1].split("x")[0])
    # paper §7.5: ~0.77x throughput without pipelining
    assert 0.5 < ratio < 1.0


@pytest.mark.benchmark(group="figures")
def test_fig14_htree_vs_bus(regenerate):
    t = regenerate(fig14_htree_vs_bus)
    rows = {(r["case"], r["interconnect"]): r for r in t.rows}
    for case in {r["case"] for r in t.rows}:
        assert rows[(case, "bus")]["inter_share"] > rows[(case, "htree")]["inter_share"]


@pytest.mark.benchmark(group="figures")
def test_sec31_gpu_vs_cpu(regenerate):
    t = regenerate(sec31_gpu_vs_cpu)
    for row in t.rows:
        # GPUs 1-3 orders of magnitude over the CPU, as in §3.1
        assert 20 < row["speedup"] < 1500


@pytest.mark.benchmark(group="figures")
def test_sec7_summary(regenerate):
    t = regenerate(sec7_summary)
    sps = [r["avg_speedup"] for r in t.rows]
    ens = [r["avg_energy_saving"] for r in t.rows]
    assert all(s > 1 for s in sps)
    assert all(e > 1 for e in ens)
    # headline shape: tens-of-x speedup on average (paper: 41.98x)
    assert 5 < np.mean(sps) < 200


@pytest.mark.benchmark(group="extensions")
def test_energy_breakdown(regenerate):
    """Extension: static/dynamic/HBM/host attribution (root cause of §7.4)."""
    from repro.eval.experiments import energy_breakdown

    t = regenerate(energy_breakdown)
    # the §7.4 mechanism: on level-4 problems the 16GB chip's static share
    # exceeds the 2GB chip's
    rows = {(r["benchmark"], r["chip"]): r for r in t.rows}
    assert (
        rows[("Acoustic_4", "16GB")]["static_share"]
        > rows[("Acoustic_4", "2GB")]["static_share"]
    )
