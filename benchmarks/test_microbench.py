"""Throughput micro-benchmarks of the library's own hot paths.

Unlike the table/figure regenerations these measure *our* simulator's
speed (real pytest-benchmark rounds): the numpy dG right-hand side, the
PIM functional executor, and the transfer scheduler.
"""

import numpy as np
import pytest

from repro.core.kernels.acoustic import AcousticOneBlockKernels
from repro.core.mapper import ElementMapper
from repro.dg import (
    AcousticMaterial,
    AcousticOperator,
    ElasticMaterial,
    ElasticOperator,
    HexMesh,
    ReferenceElement,
)
from repro.interconnect import HTree, Transfer, schedule_transfers
from repro.pim.chip import PimChip
from repro.pim.executor import ChipExecutor
from repro.pim.params import CHIP_CONFIGS


@pytest.mark.benchmark(group="micro")
def test_acoustic_rhs_throughput(benchmark):
    mesh = HexMesh.from_refinement_level(2)
    elem = ReferenceElement(4)
    mat = AcousticMaterial.homogeneous(mesh.n_elements)
    op = AcousticOperator(mesh, mat, elem, flux="riemann")
    q = np.random.default_rng(0).standard_normal((4, mesh.n_elements, elem.n_nodes))
    out = benchmark(op.rhs, q)
    assert np.all(np.isfinite(out))
    benchmark.extra_info["dofs"] = 4 * mesh.n_elements * elem.n_nodes


@pytest.mark.benchmark(group="micro")
def test_elastic_rhs_throughput(benchmark):
    mesh = HexMesh.from_refinement_level(1)
    elem = ReferenceElement(4)
    mat = ElasticMaterial.homogeneous(mesh.n_elements)
    op = ElasticOperator(mesh, mat, elem, flux="riemann")
    q = np.random.default_rng(0).standard_normal((9, mesh.n_elements, elem.n_nodes))
    out = benchmark(op.rhs, q)
    assert np.all(np.isfinite(out))


@pytest.mark.benchmark(group="micro")
def test_pim_functional_step_throughput(benchmark):
    mesh = HexMesh.from_refinement_level(1)
    elem = ReferenceElement(2)
    mat = AcousticMaterial.homogeneous(mesh.n_elements)
    mapper = ElementMapper(mesh.m, CHIP_CONFIGS["512MB"], 1)
    kern = AcousticOneBlockKernels(mesh, elem, mat, mapper, "riemann")
    chip = PimChip(CHIP_CONFIGS["512MB"])
    ex = ChipExecutor(chip)
    state = np.zeros((4, mesh.n_elements, elem.n_nodes), dtype=np.float32)
    ex.run(kern.setup() + kern.load_state(state), functional=True)
    step = kern.time_step(1e-4)

    def run():
        return ex.run(step, functional=True)

    rep = benchmark(run)
    benchmark.extra_info["pim_instructions"] = rep.n_instructions


@pytest.mark.benchmark(group="micro")
def test_scheduler_throughput(benchmark):
    rng = np.random.default_rng(1)
    transfers = [
        Transfer(int(rng.integers(0, 256)), int(rng.integers(0, 256)), 32)
        for _ in range(1000)
    ]
    h = HTree(256)
    res = benchmark(schedule_transfers, h, transfers)
    assert res.n_transfers == 1000


@pytest.mark.benchmark(group="micro")
def test_folded_step_throughput(benchmark):
    """Functional §6.1 folding: one full time-step streamed in windows."""
    from repro.core.folding import FoldedAcousticRunner

    mesh = HexMesh.from_refinement_level(2)
    elem = ReferenceElement(1)
    mat = AcousticMaterial.homogeneous(mesh.n_elements)
    runner = FoldedAcousticRunner(mesh, elem, mat, CHIP_CONFIGS["512MB"], 2)
    state = np.zeros((4, mesh.n_elements, elem.n_nodes), dtype=np.float32)
    state[0, 0, 0] = 1.0
    runner.set_state(state)

    def run():
        return runner.step(1e-3)

    rep = benchmark.pedantic(run, rounds=2, iterations=1)
    assert rep.n_instructions > 0


# --------------------------------------------------------------------- #
# perf-regression guard (methodology lives in repro.eval.bench, shared
# with the `repro bench` subcommand and the CI perf job)
# --------------------------------------------------------------------- #

from repro.eval.bench import (  # noqa: E402  (re-exported for back-compat)
    REGRESSION_FACTOR,
    SEED_BASELINE,
    append_entry,
    history_summary,
    measure_hot_paths,
    regression_failures,
)


def test_perf_regression_guard():
    """Time the hot paths, record the trajectory, fail only on >3x.

    Appends to ``BENCH_perf.json`` at the repo root: the seed baselines,
    this run's numbers (``executor_step_s`` is the warm plan-replay path),
    and the history so regressions are visible as a time series rather
    than a single boolean.  Older history entries may carry ``null`` for
    ``cache_hit_rate``/``plan_reuse_rate`` — those mean "not measured"
    and must never fail the guard.
    """
    entry = measure_hot_paths()
    assert entry["plan_reuse_rate"] is not None and entry["plan_reuse_rate"] > 0
    # hardware-counter roll-ups recorded alongside the timings
    assert 0.0 < entry["block_util"] <= 1.0
    assert 0.0 < entry["link_util"] <= 1.0
    assert entry["binding_resource"] and entry["binding_resource"] != "idle"
    assert entry["counters_overhead"] > 0.0
    doc = append_entry(entry)

    # the null-safe summary must digest the whole history, including
    # pre-plan entries that never recorded the rates.
    summary = history_summary(doc)
    assert summary["entries"] == len(doc["history"])
    for key in ("cache_hit_rate", "plan_reuse_rate"):
        assert summary[key]["measured"] <= summary["entries"]

    failures = regression_failures(entry)
    assert not failures, "\n".join(failures)
