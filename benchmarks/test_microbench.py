"""Throughput micro-benchmarks of the library's own hot paths.

Unlike the table/figure regenerations these measure *our* simulator's
speed (real pytest-benchmark rounds): the numpy dG right-hand side, the
PIM functional executor, and the transfer scheduler.
"""

import numpy as np
import pytest

from repro.core.kernels.acoustic import AcousticOneBlockKernels
from repro.core.mapper import ElementMapper
from repro.dg import (
    AcousticMaterial,
    AcousticOperator,
    ElasticMaterial,
    ElasticOperator,
    HexMesh,
    ReferenceElement,
)
from repro.interconnect import HTree, Transfer, schedule_transfers
from repro.pim.chip import PimChip
from repro.pim.executor import ChipExecutor
from repro.pim.params import CHIP_CONFIGS


@pytest.mark.benchmark(group="micro")
def test_acoustic_rhs_throughput(benchmark):
    mesh = HexMesh.from_refinement_level(2)
    elem = ReferenceElement(4)
    mat = AcousticMaterial.homogeneous(mesh.n_elements)
    op = AcousticOperator(mesh, mat, elem, flux="riemann")
    q = np.random.default_rng(0).standard_normal((4, mesh.n_elements, elem.n_nodes))
    out = benchmark(op.rhs, q)
    assert np.all(np.isfinite(out))
    benchmark.extra_info["dofs"] = 4 * mesh.n_elements * elem.n_nodes


@pytest.mark.benchmark(group="micro")
def test_elastic_rhs_throughput(benchmark):
    mesh = HexMesh.from_refinement_level(1)
    elem = ReferenceElement(4)
    mat = ElasticMaterial.homogeneous(mesh.n_elements)
    op = ElasticOperator(mesh, mat, elem, flux="riemann")
    q = np.random.default_rng(0).standard_normal((9, mesh.n_elements, elem.n_nodes))
    out = benchmark(op.rhs, q)
    assert np.all(np.isfinite(out))


@pytest.mark.benchmark(group="micro")
def test_pim_functional_step_throughput(benchmark):
    mesh = HexMesh.from_refinement_level(1)
    elem = ReferenceElement(2)
    mat = AcousticMaterial.homogeneous(mesh.n_elements)
    mapper = ElementMapper(mesh.m, CHIP_CONFIGS["512MB"], 1)
    kern = AcousticOneBlockKernels(mesh, elem, mat, mapper, "riemann")
    chip = PimChip(CHIP_CONFIGS["512MB"])
    ex = ChipExecutor(chip)
    state = np.zeros((4, mesh.n_elements, elem.n_nodes), dtype=np.float32)
    ex.run(kern.setup() + kern.load_state(state), functional=True)
    step = kern.time_step(1e-4)

    def run():
        return ex.run(step, functional=True)

    rep = benchmark(run)
    benchmark.extra_info["pim_instructions"] = rep.n_instructions


@pytest.mark.benchmark(group="micro")
def test_scheduler_throughput(benchmark):
    rng = np.random.default_rng(1)
    transfers = [
        Transfer(int(rng.integers(0, 256)), int(rng.integers(0, 256)), 32)
        for _ in range(1000)
    ]
    h = HTree(256)
    res = benchmark(schedule_transfers, h, transfers)
    assert res.n_transfers == 1000


@pytest.mark.benchmark(group="micro")
def test_folded_step_throughput(benchmark):
    """Functional §6.1 folding: one full time-step streamed in windows."""
    from repro.core.folding import FoldedAcousticRunner

    mesh = HexMesh.from_refinement_level(2)
    elem = ReferenceElement(1)
    mat = AcousticMaterial.homogeneous(mesh.n_elements)
    runner = FoldedAcousticRunner(mesh, elem, mat, CHIP_CONFIGS["512MB"], 2)
    state = np.zeros((4, mesh.n_elements, elem.n_nodes), dtype=np.float32)
    state[0, 0, 0] = 1.0
    runner.set_state(state)

    def run():
        return runner.step(1e-3)

    rep = benchmark.pedantic(run, rounds=2, iterations=1)
    assert rep.n_instructions > 0


# --------------------------------------------------------------------- #
# perf-regression guard
# --------------------------------------------------------------------- #

#: Wall-clock baselines of the pre-optimization (seed) tree, measured on
#: the reference machine with this file's best-of-3 methodology; kept for
#: the trajectory record in BENCH_perf.json.
SEED_BASELINE = {
    "compile_s": 0.0425,  # WavePimCompiler(order=3) acoustic level-2 on 512MB
    "executor_step_s": 0.133,  # level-1/order-2 acoustic time_step, ~7.4k insts
}

#: Only flag order-of-magnitude breakage, not machine-to-machine noise.
REGRESSION_FACTOR = 3.0


def _best_of(fn, rounds=3):
    import time as _time

    best = float("inf")
    for _ in range(rounds):
        t0 = _time.perf_counter()
        fn()
        best = min(best, _time.perf_counter() - t0)
    return best


def test_perf_regression_guard():
    """Time the two hot paths, record the trajectory, fail only on >3x.

    Writes ``BENCH_perf.json`` at the repo root: the seed baselines, this
    run's numbers, and an appended history so regressions are visible as a
    time series rather than a single boolean.
    """
    import json
    import platform
    import time as _time
    from pathlib import Path

    from repro.core.compiler import WavePimCompiler
    from repro.obs import get_metrics

    metrics = get_metrics()

    def compile_once():
        WavePimCompiler(order=3).compile("acoustic", 2, CHIP_CONFIGS["512MB"])

    emitted0 = metrics.value("compiler.instructions_emitted")
    compiles0 = metrics.value("compiler.compiles")
    compile_s = _best_of(compile_once)
    # Instructions are only emitted by *uncached* compiles, so normalize by
    # the number of compiles that actually ran rather than by rounds.
    emitted = metrics.value("compiler.instructions_emitted") - emitted0
    compiles = metrics.value("compiler.compiles") - compiles0
    instructions_emitted = emitted // compiles if compiles else None

    # The timed compiles above deliberately bypass the cache (they measure
    # the compiler); the hit rate comes from a dedicated fresh-dir cache
    # exercised with one cold and one warm compile, read off its own
    # CacheStats instead of the process-global counters (which would be
    # polluted by whatever earlier tests compiled).
    import tempfile

    from repro.core.cache import CompileCache

    with tempfile.TemporaryDirectory() as tmp:
        cc = CompileCache(root=tmp, enabled=True)
        compiler = WavePimCompiler(order=3)
        for _ in range(2):
            compiler.compile("acoustic", 2, CHIP_CONFIGS["512MB"], cache=cc)
        accesses = cc.stats.hits + cc.stats.misses
        cache_hit_rate = cc.stats.hits / accesses if accesses else None

    mesh = HexMesh.from_refinement_level(1)
    elem = ReferenceElement(2)
    mat = AcousticMaterial.homogeneous(mesh.n_elements)
    mapper = ElementMapper(mesh.m, CHIP_CONFIGS["512MB"], 1)
    kern = AcousticOneBlockKernels(mesh, elem, mat, mapper, "riemann")
    ex = ChipExecutor(PimChip(CHIP_CONFIGS["512MB"]))
    state = np.zeros((4, mesh.n_elements, elem.n_nodes), dtype=np.float32)
    ex.run(kern.setup() + kern.load_state(state), functional=True)
    step = kern.time_step(1e-4)
    executor_step_s = _best_of(lambda: ex.run(step, functional=True))

    current = {"compile_s": compile_s, "executor_step_s": executor_step_s}
    entry = {
        "timestamp": _time.strftime("%Y-%m-%dT%H:%M:%S"),
        "machine": platform.machine(),
        **current,
        "speedup_vs_seed": {
            k: SEED_BASELINE[k] / max(v, 1e-12) for k, v in current.items()
        },
        "instructions_emitted": instructions_emitted,
        "cache_hit_rate": cache_hit_rate,
    }

    path = Path(__file__).resolve().parents[1] / "BENCH_perf.json"
    doc = {"seed_baseline": SEED_BASELINE, "history": []}
    if path.exists():
        try:
            doc = json.loads(path.read_text())
        except (ValueError, OSError):
            pass
    doc["seed_baseline"] = SEED_BASELINE
    doc.setdefault("history", []).append(entry)
    doc["latest"] = entry
    path.write_text(json.dumps(doc, indent=2) + "\n")

    for key, now in current.items():
        limit = REGRESSION_FACTOR * SEED_BASELINE[key]
        assert now < limit, (
            f"{key} regressed: {now:.4f}s vs seed {SEED_BASELINE[key]:.4f}s "
            f"(>{REGRESSION_FACTOR}x; see BENCH_perf.json)"
        )
