"""Ablation benchmarks for the design choices DESIGN.md calls out.

These go beyond the paper's figures: each isolates one Wave-PIM design
decision and quantifies its contribution.
"""

import numpy as np
import pytest

from repro.core.compiler import WavePimCompiler
from repro.core.kernels.acoustic import (
    AcousticFourBlockKernels,
    AcousticOneBlockKernels,
)
from repro.core.mapper import ElementMapper
from repro.core.pipeline import pipelined_stage_time, serial_stage_time
from repro.core.runtime import estimate_benchmark
from repro.dg import AcousticMaterial, HexMesh, ReferenceElement
from repro.eval.report import Table
from repro.interconnect import HTree, Transfer, schedule_transfers
from repro.pim.arithmetic import default_op_costs
from repro.pim.chip import PimChip
from repro.pim.executor import ChipExecutor
from repro.pim.params import CHIP_CONFIGS

ORDER = 7


def _print(capsys, table):
    with capsys.disabled():
        print()
        print(table.render())


@pytest.mark.benchmark(group="ablations")
def test_ablation_multiplier(benchmark, capsys):
    """Serial shift-add vs FloatPIM-style row-parallel multiplication."""

    def run():
        costs = default_op_costs()
        t = Table("Ablation: multiplier microarchitecture", ["variant", "nors", "latency_us"])
        for op, label in (("mul", "row-parallel partial products"), ("mul_serial", "bit-serial shift-add")):
            t.add(variant=label, nors=costs.nor_count(op),
                  latency_us=round(costs.time_s(op) * 1e6, 2))
        return t

    t = benchmark.pedantic(run, rounds=1, iterations=1)
    _print(capsys, t)
    assert t.rows[0]["latency_us"] < t.rows[1]["latency_us"]


@pytest.mark.benchmark(group="ablations")
def test_ablation_expansion(benchmark, capsys):
    """Fig. 8/9 expansion: per-stage makespans, 1-block vs 4-block."""

    def run():
        mesh = HexMesh.from_refinement_level(2)
        elem = ReferenceElement(ORDER)
        mat = AcousticMaterial.homogeneous(mesh.n_elements)
        t = Table("Ablation: acoustic expansion (order 7)",
                  ["mapping", "volume_us", "flux_us", "total_us"])
        for g, cls, label in ((1, AcousticOneBlockKernels, "one block (naive)"),
                              (4, AcousticFourBlockKernels, "four blocks (E_p)")):
            mapper = ElementMapper(mesh.m, CHIP_CONFIGS["2GB"], g)
            kern = cls(mesh, elem, mat, mapper, "riemann")
            ex = ChipExecutor(PimChip(CHIP_CONFIGS["2GB"]))
            vol = ex.run(kern.volume(elements=[0]), functional=False).total_time_s
            ex2 = ChipExecutor(PimChip(CHIP_CONFIGS["2GB"]))
            flux = ex2.run(kern.flux(elements=[0]), functional=False).total_time_s
            t.add(mapping=label, volume_us=round(vol * 1e6, 1),
                  flux_us=round(flux * 1e6, 1),
                  total_us=round((vol + flux) * 1e6, 1))
        return t

    t = benchmark.pedantic(run, rounds=1, iterations=1)
    _print(capsys, t)
    assert t.rows[1]["volume_us"] < t.rows[0]["volume_us"]


@pytest.mark.benchmark(group="ablations")
def test_ablation_htree_fanout(benchmark, capsys):
    """§4.2.1: 'the number of children of a tree node does not have to be
    4' — sweep the fanout under a neighbor-heavy transfer pattern."""

    def run():
        rng = np.random.default_rng(0)
        transfers = [
            Transfer(int(a), int(min(255, a + rng.integers(1, 5))), 32)
            for a in rng.integers(0, 250, size=512)
        ]
        t = Table("Ablation: H-tree fanout sweep (512 neighbor transfers)",
                  ["fanout", "switches", "makespan_us", "switch_power_mw"])
        for fanout in (2, 4, 16):
            h = HTree(256, fanout=fanout)
            res = schedule_transfers(h, transfers)
            t.add(fanout=fanout, switches=h.n_switches,
                  makespan_us=round(res.makespan * 1e6, 2),
                  switch_power_mw=round(h.switch_power_w * 1e3, 2))
        return t

    t = benchmark.pedantic(run, rounds=1, iterations=1)
    _print(capsys, t)
    assert len(t.rows) == 3


@pytest.mark.benchmark(group="ablations")
def test_ablation_pipeline(benchmark, capsys):
    """§6.3 pipelining on/off across all six benchmarks (2 GB chip)."""

    def run():
        comp = WavePimCompiler(order=ORDER)
        t = Table("Ablation: pipelining (2GB)",
                  ["benchmark", "pipelined_us", "serial_us", "throughput_ratio"])
        from repro.workloads import benchmark_list

        for spec in benchmark_list():
            cb = comp.compile(spec.physics, spec.refinement_level,
                              CHIP_CONFIGS["2GB"], spec.flux_kind)
            p = pipelined_stage_time(cb.stage_times)
            s = serial_stage_time(cb.stage_times)
            t.add(benchmark=spec.name, pipelined_us=round(p * 1e6, 1),
                  serial_us=round(s * 1e6, 1), throughput_ratio=round(p / s, 3))
        return t

    t = benchmark.pedantic(run, rounds=1, iterations=1)
    _print(capsys, t)
    for row in t.rows:
        assert row["throughput_ratio"] < 1.0


@pytest.mark.benchmark(group="ablations")
def test_ablation_batching_overhead(benchmark, capsys):
    """Folding cost: the same benchmark across chip capacities."""

    def run():
        comp = WavePimCompiler(order=ORDER)
        t = Table("Ablation: batching overhead (Elastic-Central_5)",
                  ["chip", "batches", "dram_ms_per_step", "total_s"])
        for name in ("512MB", "2GB", "8GB", "16GB"):
            cb = comp.compile("elastic", 5, CHIP_CONFIGS[name], "central")
            est = estimate_benchmark(cb, n_steps=1024)
            t.add(chip=name, batches=cb.plan.n_batches,
                  dram_ms_per_step=round(est.dram_time_per_step_s * 1e3, 3),
                  total_s=round(est.time_s, 2))
        return t

    t = benchmark.pedantic(run, rounds=1, iterations=1)
    _print(capsys, t)
    totals = [r["total_s"] for r in t.rows]
    assert totals == sorted(totals, reverse=True)  # more capacity, less time
