"""Benchmark harness configuration.

Every benchmark regenerates one paper artifact at the paper's geometry
(order-7 elements, 1024 time-steps) and prints the resulting table so the
run log doubles as the EXPERIMENTS.md data source.  Model evaluations are
deterministic, so a single round is the honest measurement unit; the
wall-time measured is the cost of regenerating the artifact.
"""

from __future__ import annotations

import pytest


@pytest.fixture()
def regenerate(benchmark, capsys):
    """Run one experiment once under pytest-benchmark and print its table."""

    def _run(fn, *args, **kwargs):
        table = benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
        with capsys.disabled():
            print()
            print(table.render())
        return table

    return _run
