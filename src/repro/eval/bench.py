"""The perf-regression guard: measure the hot paths, track the trajectory.

One module owns the seed baselines, the best-of-N methodology and the
``BENCH_perf.json`` bookkeeping, shared by the pytest guard
(``benchmarks/test_microbench.py``) and the ``repro bench`` subcommand, so
CI and local runs append to the same time series with the same rules.

``executor_step_s`` measures the *plan path* warm: the per-element
instruction stream is lowered once (:meth:`ChipExecutor.lower`) and the
timed region is the vectorized replay — the configuration every timestep
of every figure actually runs after this PR.  ``executor_serial_step_s``
keeps the per-instruction dispatch number alongside for an honest
comparison on the same analytic workload.

History entries may carry ``null`` for rates that were not measured in
older runs (``cache_hit_rate`` predates PR 1's cache); every consumer here
treats ``None`` as "not measured", never as a regression.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

__all__ = [
    "SEED_BASELINE",
    "REGRESSION_FACTOR",
    "COMPILE_SPEEDUP_FLOOR",
    "SHARD_SPEEDUP_FLOOR",
    "best_of",
    "measure_hot_paths",
    "measure_shard_scaling",
    "append_entry",
    "history_summary",
    "regression_failures",
    "render_history",
    "default_bench_path",
]

#: Wall-clock baselines of the pre-optimization (seed) tree, measured on
#: the reference machine with this module's best-of-N methodology; kept
#: for the trajectory record in BENCH_perf.json.
SEED_BASELINE = {
    "compile_s": 0.0425,  # WavePimCompiler(order=3) acoustic level-2 on 512MB
    "executor_step_s": 0.133,  # level-1/order-2 acoustic time_step, ~7.4k insts
}

#: Only flag order-of-magnitude breakage, not machine-to-machine noise.
REGRESSION_FACTOR = 3.0

#: Ceiling on the scheduled plan's optimality gap (measured makespan over
#: the static work/span/occupancy lower bound of ``repro.analysis.perf``).
#: The bench step workload schedules to a ~1.0x gap today (block-bound,
#: emission order is ~3.2x); regressing past this means the scheduler
#: started leaving provably-available overlap on the table.  A gap *below*
#: 1.0 is a model-soundness failure either way.
GAP_TOLERANCE = 6.0

#: Floor on ``speedup_vs_seed["compile_s"]``: bench history hovered at
#: 0.8-1.2x vs seed for several PRs without tripping the 3x breakage
#: guard, so slow drift passed silently.  The top avoidable cost (per
#: ``repro perf audit`` profiling) was re-deriving identical TRANSFER
#: cost templates in ``lower_program``; with those memoized the compile
#: path sits at ~1.1x vs seed, and dropping under 0.9x now fails CI.
COMPILE_SPEEDUP_FLOOR = 0.9

#: Floor on the modeled-makespan speedup of the 4-shard step workload
#: over the single-chip batched baseline (``repro bench --shards``).
SHARD_SPEEDUP_FLOOR = 1.5


def default_bench_path() -> Path:
    """``BENCH_perf.json`` at the repo root (next to ``src/``)."""
    return Path(__file__).resolve().parents[3] / "BENCH_perf.json"


def best_of(fn, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure_hot_paths(rounds: int = 3) -> dict:
    """Time the hot paths; returns one BENCH_perf.json history entry."""
    import tempfile

    import numpy as np

    from repro.core.cache import CompileCache
    from repro.core.compiler import WavePimCompiler
    from repro.core.kernels.acoustic import AcousticOneBlockKernels
    from repro.core.mapper import ElementMapper
    from repro.dg import AcousticMaterial, HexMesh, ReferenceElement
    from repro.obs import get_metrics
    from repro.pim.chip import PimChip
    from repro.pim.executor import ChipExecutor
    from repro.pim.params import CHIP_CONFIGS

    metrics = get_metrics()
    # plan-coverage bookkeeping: every executor run in this process that is
    # not an explicit serial audit must take the plan path (satellite: the
    # perf guard fails the job if coverage drops below 1.0).
    cov_runs0 = metrics.value("executor.runs")
    cov_serial0 = metrics.value("executor.serial.runs")
    cov_plan0 = metrics.value("executor.plan.runs")

    def compile_once():
        WavePimCompiler(order=3).compile("acoustic", 2, CHIP_CONFIGS["512MB"])

    # compile_s tracks the *default* compiler configuration: pin the
    # opt-in scheduler pass off for the timed region so ``--schedule``
    # (REPRO_SCHED=on) does not fold its extra DAG/list-scheduling wall
    # time into the seed-baseline comparison — the scheduler's own win is
    # reported separately as modeled makespan below.
    import os

    sched_env = os.environ.get("REPRO_SCHED")
    os.environ["REPRO_SCHED"] = "off"
    try:
        emitted0 = metrics.value("compiler.instructions_emitted")
        compiles0 = metrics.value("compiler.compiles")
        compile_s = best_of(compile_once, rounds)
        # Instructions are only emitted by *uncached* compiles, so normalize
        # by the number of compiles that actually ran rather than by rounds.
        emitted = metrics.value("compiler.instructions_emitted") - emitted0
        compiles = metrics.value("compiler.compiles") - compiles0
        instructions_emitted = emitted // compiles if compiles else None

        # The timed compiles above deliberately bypass the cache (they
        # measure the compiler); the hit rate comes from a dedicated
        # fresh-dir cache exercised with one cold and one warm compile, read
        # off its own CacheStats instead of the process-global counters.
        with tempfile.TemporaryDirectory() as tmp:
            cc = CompileCache(root=tmp, enabled=True)
            compiler = WavePimCompiler(order=3)
            for _ in range(2):
                compiler.compile("acoustic", 2, CHIP_CONFIGS["512MB"], cache=cc)
            accesses = cc.stats.hits + cc.stats.misses
            cache_hit_rate = cc.stats.hits / accesses if accesses else None
    finally:
        if sched_env is None:
            os.environ.pop("REPRO_SCHED", None)
        else:
            os.environ["REPRO_SCHED"] = sched_env

    mesh = HexMesh.from_refinement_level(1)
    elem = ReferenceElement(2)
    mat = AcousticMaterial.homogeneous(mesh.n_elements)
    mapper = ElementMapper(mesh.m, CHIP_CONFIGS["512MB"], 1)
    kern = AcousticOneBlockKernels(mesh, elem, mat, mapper, "riemann")
    chip = PimChip(CHIP_CONFIGS["512MB"])
    ex = ChipExecutor(chip)
    state = np.zeros((4, mesh.n_elements, elem.n_nodes), dtype=np.float32)
    ex.run(kern.setup() + kern.load_state(state), functional=True)
    step = kern.time_step(1e-4)

    # the serial audit-reference number on the same analytic workload.
    executor_serial_step_s = best_of(
        lambda: ex.run(step, functional=False, serial=True), rounds
    )

    # the plan path, warm: lower once, replay (this is what the compiler
    # and every per-timestep consumer run after warmup).
    runs0 = metrics.value("executor.plan.runs")
    lowered0 = metrics.value("executor.plan.lowered")
    step_plan = ex.lower(step)
    ex.run(step_plan, functional=False)  # warm the replay path
    executor_step_s = best_of(lambda: ex.run(step_plan, functional=False), rounds)
    plan_runs = metrics.value("executor.plan.runs") - runs0
    plan_lowered = metrics.value("executor.plan.lowered") - lowered0
    plan_reuse_rate = (
        (plan_runs - plan_lowered) / plan_runs if plan_runs else None
    )

    # the MASIM-style makespan scheduler on the same step plan: modeled
    # makespan of emission order vs the list-scheduled order (real replay
    # both ways, best-of fallback inside schedule_plan).
    from repro.pim.schedule import schedule_plan

    ex.reset_clocks()
    sched_plan = schedule_plan(ex, step_plan)
    sched_stats = sched_plan.schedule_stats
    clock_hz = chip.config.clock_hz
    makespan_cycles = sched_stats["emission_makespan_s"] * clock_hz
    scheduled_makespan_cycles = sched_stats["scheduled_makespan_s"] * clock_hz
    scheduler_speedup = sched_stats["improvement"]

    # the static cost-bound side of the predict-then-measure loop
    # (repro.analysis.perf): the work/span/occupancy lower bound is
    # order-invariant, so the scheduled makespan over it is the scheduler's
    # optimality gap — 1.0 means provably optimal, and the CI gate fails
    # the entry when the gap regresses past GAP_TOLERANCE (or dips below
    # 1.0, which would mean the bound itself is unsound).
    from repro.analysis.perf import cost_bounds

    bounds = cost_bounds(ex, step_plan)
    makespan_lower_bound_cycles = bounds.makespan_lower_bound_s * clock_hz
    optimality_gap = (
        sched_stats["scheduled_makespan_s"] / bounds.makespan_lower_bound_s
        if bounds.makespan_lower_bound_s > 0.0 else None
    )

    # hardware counters on the same step plan: one recording executor
    # replays it, attribution names the binding resource, and the ratio of
    # counters-on to counters-off replay time is the enabled overhead the
    # ~2% budget (DESIGN.md §14) tracks.  Measured by toggling the recorder
    # on ONE executor in interleaved on/off pairs and comparing the best of
    # each side — separate executors (or separate loops) pick up machine
    # noise several times larger than the effect being measured.
    ex_cnt = ChipExecutor(chip, counters=True)
    ex_cnt.run(step_plan, functional=False)  # warm
    ex_cnt.reset_clocks()
    ex_cnt.run(step_plan, functional=False)  # the attributed recording
    attrib = ex_cnt.attribution()
    recorder = ex_cnt.counters
    best_on = best_off = float("inf")
    for pair in range(max(rounds, 3) * 8):
        for on in ((True, False) if pair % 2 else (False, True)):
            ex_cnt.counters = recorder if on else None
            t0 = time.perf_counter()
            ex_cnt.run(step_plan, functional=False)
            dt = time.perf_counter() - t0
            if on:
                best_on = min(best_on, dt)
            else:
                best_off = min(best_off, dt)
    ex_cnt.counters = recorder
    counters_overhead = best_on / max(best_off, 1e-12)

    # coverage over everything this function ran: plan runs / non-serial runs.
    cov_runs = metrics.value("executor.runs") - cov_runs0
    cov_serial = metrics.value("executor.serial.runs") - cov_serial0
    cov_plan = metrics.value("executor.plan.runs") - cov_plan0
    eligible = cov_runs - cov_serial
    plan_coverage = cov_plan / eligible if eligible else None

    current = {"compile_s": compile_s, "executor_step_s": executor_step_s}
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "machine": platform.machine(),
        **current,
        "speedup_vs_seed": {
            k: SEED_BASELINE[k] / max(v, 1e-12) for k, v in current.items()
        },
        "executor_mode": "plan",
        "executor_serial_step_s": executor_serial_step_s,
        "instructions_emitted": instructions_emitted,
        "cache_hit_rate": cache_hit_rate,
        "plan_reuse_rate": plan_reuse_rate,
        "plan_coverage": plan_coverage,
        "makespan_cycles": makespan_cycles,
        "scheduled_makespan_cycles": scheduled_makespan_cycles,
        "scheduler_speedup": scheduler_speedup,
        "makespan_lower_bound": makespan_lower_bound_cycles,
        "optimality_gap": optimality_gap,
        "predicted_binding_resource": bounds.predicted_binding_resource,
        "block_util": attrib.block_util,
        "link_util": attrib.link_util,
        "binding_resource": attrib.binding_resource,
        "counters_overhead": counters_overhead,
    }


def measure_shard_scaling(n_shards: int | None = None,
                          n_steps: int = 1,
                          trace_path: Path | str | None = None) -> dict:
    """Shard-scaling fields of a BENCH_perf.json entry (``--shards``).

    Runs the capacity-axis step workload (64 elements on a 48-block
    proxy chip, :mod:`repro.workloads.sharding`) both ways: single-chip
    Fig. 7 batching vs ``n_shards`` chips with pipelined halo exchange,
    counters on, so the compute/exchange overlap is measured from the
    recorded intervals.  Also records the r=6 capacity story: the mesh
    the single-chip mapper rejects outright and the shard count that
    holds it.  ``trace_path`` additionally writes the merged multi-chip
    Gantt (one Chrome process per shard + inter-chip link lanes).
    """
    from repro.dg import HexMesh
    from repro.pim.multichip import (
        ShardedExecutor,
        shards_needed,
        single_chip_batched_makespan,
    )
    from repro.pim.params import CHIP_CONFIGS
    from repro.workloads.sharding import (
        SHARD_WORKLOAD_SHARDS,
        shard_step_workload,
    )

    n_shards = n_shards or SHARD_WORKLOAD_SHARDS
    wl = shard_step_workload()
    single_s, n_batches = single_chip_batched_makespan(
        wl["mesh"], wl["chip"], wl["kernel_factory"],
        blocks_per_element=wl["blocks_per_element"], dt=wl["dt"],
        n_steps=n_steps,
    )
    sx = ShardedExecutor(
        wl["mesh"], wl["chip"], wl["kernel_factory"], n_shards=n_shards,
        blocks_per_element=wl["blocks_per_element"], counters=True,
    )
    res = sx.run_steps(wl["dt"], n_steps=n_steps, functional=False)

    if trace_path is not None:
        from repro.obs import sharded_track_events

        events = sharded_track_events(
            [sh.executor.counters for sh in sx.shards],
            link_events=res.link_events,
        )
        Path(trace_path).write_text(
            json.dumps({"traceEvents": events}, indent=1) + "\n")

    # the r=6 record: 262k elements overflow the 512MB chip's 4096 blocks
    # outright (the mapper raises); the partitioner finds the shard count
    # that holds it.  Construction-only — no 32 GB state is materialized.
    import numpy as np

    from repro.core.mapper import ElementMapper, ShardMapper
    from repro.pim.multichip import partition_mesh

    r6_mesh = HexMesh.from_refinement_level(6)
    chip = CHIP_CONFIGS["512MB"]
    try:
        ElementMapper(r6_mesh.m, chip, 1)
        r6_single_error = None
    except ValueError as exc:
        r6_single_error = str(exc)
    r6_shards = shards_needed(r6_mesh, chip, 1)
    r6_shard0_blocks = None
    if r6_shards is not None:
        sharding = partition_mesh(r6_mesh, r6_shards)
        m0 = ShardMapper(r6_mesh.m, chip, 1, owned=sharding.owned[0],
                         halo=sharding.halo[0], shard_id=0)
        r6_shard0_blocks = int(m0.n_blocks_needed)
        assert int(np.sum([len(o) for o in sharding.owned])) == r6_mesh.n_elements

    return {
        "shards": n_shards,
        "shard_makespan_s": res.makespan_s,
        "single_chip_makespan_s": single_s,
        "single_chip_batches": n_batches,
        "shard_speedup": single_s / max(res.makespan_s, 1e-12),
        "shard_exchange_busy_s": res.exchange_busy_s,
        "shard_exchange_overlap_s": res.exchange_overlap_s,
        "shard_overlap_fraction": res.overlap_fraction,
        "shard_halo_wait_s": res.halo_wait_s,
        "shard_exchange_bytes": res.exchange_bytes,
        "r6": {
            "level": 6,
            "n_elements": r6_mesh.n_elements,
            "single_chip_fits": r6_single_error is None,
            "single_chip_error": r6_single_error,
            "shards_needed": r6_shards,
            "shard0_blocks": r6_shard0_blocks,
            "chip": chip.name,
        },
    }


def append_entry(entry: dict, path: Path | str | None = None) -> dict:
    """Append ``entry`` to the BENCH_perf.json document; returns the doc."""
    path = Path(path) if path is not None else default_bench_path()
    doc = {"seed_baseline": SEED_BASELINE, "history": []}
    if path.exists():
        try:
            doc = json.loads(path.read_text())
        except (ValueError, OSError):
            pass
    doc["seed_baseline"] = SEED_BASELINE
    doc.setdefault("history", []).append(entry)
    doc["latest"] = entry
    path.write_text(json.dumps(doc, indent=2) + "\n")
    return doc


def history_summary(doc: dict) -> dict:
    """Null-safe trajectory summary of a BENCH_perf.json document.

    ``null``/missing values in history entries mean "not measured" (older
    entries predate some of the counters) and are excluded from the
    best/latest aggregation rather than treated as failures.
    """
    history = doc.get("history") or []
    out: dict = {"entries": len(history)}
    lower_is_better = set(SEED_BASELINE) | {"optimality_gap"}
    for key in (*SEED_BASELINE, "cache_hit_rate", "plan_reuse_rate",
                "plan_coverage", "scheduler_speedup", "optimality_gap"):
        vals = [
            e[key] for e in history
            if isinstance(e.get(key), (int, float))
        ]
        out[key] = {
            "measured": len(vals),
            "best": min(vals) if key in lower_is_better and vals else
                    (max(vals) if vals else None),
            "latest": vals[-1] if vals else None,
        }
    return out


def render_history(doc: dict) -> str:
    """Trend table of a BENCH_perf.json document (``repro perf history``).

    One row per history entry, oldest first.  Missing/``null`` values
    render as ``--`` ("not measured") and flag the row ``backfill`` —
    entries written before a counter existed must never crash the table.
    Rows that trip :func:`regression_failures` are flagged ``REGRESSION``.
    """
    history = doc.get("history") or []
    if not history:
        # stay a table, not a crash or an empty frame: a fresh checkout
        # (or a BENCH_perf.json with no bench entries yet) renders a
        # friendly placeholder with the seed baseline for context.
        return "\n".join([
            f"{'#':>3} {'timestamp':<19} {'step_ms':>8} {'serial_ms':>9} "
            f"{'speedup':>7}",
            f"{'--':>3} {'(no entries yet)':<19} {'--':>8} {'--':>9} "
            f"{'--':>7}",
            "",
            "0 entries; run `repro bench` to record the first one; "
            f"seed baseline {SEED_BASELINE['executor_step_s'] * 1e3:.2f} ms",
        ])

    def cell(value, width: int = 8, fmt: str = "{:.2f}", scale: float = 1.0):
        if isinstance(value, (int, float)):
            return fmt.format(value * scale).rjust(width)
        return "--".rjust(width)

    #: fields the current schema measures; older entries may lack them.
    current = ("cache_hit_rate", "makespan_cycles", "block_util",
               "link_util", "binding_resource", "counters_overhead",
               "optimality_gap")
    lines = [
        f"{'#':>3} {'timestamp':<19} {'step_ms':>8} {'serial_ms':>9} "
        f"{'speedup':>7} {'sched_x':>7} {'gap_x':>6} {'blk_util':>8} "
        f"{'lnk_util':>8} {'ovh_x':>6} {'shards':>6} {'shrd_x':>6}"
        f"  {'binding':<12} flags"
    ]
    n_backfill = n_regress = 0
    for i, e in enumerate(history):
        flags = []
        missing = [k for k in current if e.get(k) is None]
        if missing:
            n_backfill += 1
            flags.append(f"backfill({len(missing)})")
        if regression_failures(e):
            n_regress += 1
            flags.append("REGRESSION")
        speedup = (e.get("speedup_vs_seed") or {}).get("executor_step_s")
        lines.append(" ".join([
            f"{i:>3}",
            f"{str(e.get('timestamp') or '?'):<19}",
            cell(e.get("executor_step_s"), scale=1e3),
            cell(e.get("executor_serial_step_s"), width=9, scale=1e3),
            cell(speedup, width=7),
            cell(e.get("scheduler_speedup"), width=7),
            cell(e.get("optimality_gap"), width=6),
            cell(e.get("block_util"), width=8),
            cell(e.get("link_util"), width=8),
            cell(e.get("counters_overhead"), width=6, fmt="{:.3f}"),
            # shard columns are optional per run (only --shards entries
            # carry them), so absence renders -- without a backfill flag.
            cell(e.get("shards"), width=6, fmt="{:.0f}"),
            cell(e.get("shard_speedup"), width=6),
            f" {str(e.get('binding_resource') or '--'):<12}",
            " ".join(flags) if flags else "ok",
        ]))

    best = history_summary(doc)["executor_step_s"]["best"]
    best_s = (f"{best * 1e3:.2f} ms" if isinstance(best, (int, float))
              else "never measured")
    lines.append("")
    lines.append(
        f"{len(history)} entries; best executor_step_s {best_s}; "
        f"seed baseline {SEED_BASELINE['executor_step_s'] * 1e3:.2f} ms"
    )
    if n_backfill or n_regress:
        lines.append(
            f"{n_regress} flagged REGRESSION, {n_backfill} backfilled "
            "(older schema, missing fields render as --)"
        )
    return "\n".join(lines)


def regression_failures(entry: dict, min_speedup: float | None = None) -> list:
    """Failure messages for one entry; empty when the guard passes.

    Unmeasured (``None``) values never fail.  ``min_speedup`` optionally
    gates the ``executor_step_s`` speedup vs seed (the CI perf job uses
    1.0: never slower than the seed tree).
    """
    failures = []
    for key, seed in SEED_BASELINE.items():
        now = entry.get(key)
        if not isinstance(now, (int, float)):
            continue  # not measured
        limit = REGRESSION_FACTOR * seed
        if now >= limit:
            failures.append(
                f"{key} regressed: {now:.4f}s vs seed {seed:.4f}s "
                f"(>{REGRESSION_FACTOR}x; see BENCH_perf.json)"
            )
    if min_speedup is not None:
        speedup = (entry.get("speedup_vs_seed") or {}).get("executor_step_s")
        if isinstance(speedup, (int, float)) and speedup < min_speedup:
            failures.append(
                f"executor_step_s speedup {speedup:.2f}x below the required "
                f"{min_speedup:.2f}x vs seed"
            )
    compile_speedup = (entry.get("speedup_vs_seed") or {}).get("compile_s")
    if (isinstance(compile_speedup, (int, float))
            and compile_speedup < COMPILE_SPEEDUP_FLOOR):
        failures.append(
            f"compile_s speedup {compile_speedup:.2f}x vs seed below the "
            f"{COMPILE_SPEEDUP_FLOOR:.2f}x floor: the compile path drifted "
            "slow again (profile with repro perf audit)"
        )
    shard_speedup = entry.get("shard_speedup")
    if (isinstance(shard_speedup, (int, float))
            and shard_speedup < SHARD_SPEEDUP_FLOOR):
        failures.append(
            f"shard_speedup {shard_speedup:.2f}x below the "
            f"{SHARD_SPEEDUP_FLOOR:.2f}x floor at {entry.get('shards')} "
            "shards: sharded makespan regressed vs the single-chip "
            "batched baseline"
        )
    coverage = entry.get("plan_coverage")
    if isinstance(coverage, (int, float)) and coverage < 1.0:
        failures.append(
            f"plan_coverage {coverage:.3f} below 1.0: some non-serial runs "
            "bypassed the plan path"
        )
    sched = entry.get("scheduler_speedup")
    if isinstance(sched, (int, float)) and sched < 1.0:
        failures.append(
            f"scheduler_speedup {sched:.3f}x below 1.0: scheduled makespan "
            "exceeds emission order (best-of fallback broken)"
        )
    gap = entry.get("optimality_gap")
    if isinstance(gap, (int, float)):
        if gap > GAP_TOLERANCE:
            failures.append(
                f"optimality_gap {gap:.2f}x above the {GAP_TOLERANCE:.1f}x "
                "tolerance: the scheduled makespan regressed against the "
                "static lower bound (see repro perf audit)"
            )
        elif gap < 1.0 - 1e-9:
            failures.append(
                f"optimality_gap {gap:.4f} below 1.0: the static lower bound "
                "exceeds the measured makespan — the cost model is unsound"
            )
    return failures
