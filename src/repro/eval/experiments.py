"""The paper's tables and figures, regenerated from the models.

Every experiment returns a :class:`~repro.eval.report.Table` (or a dict of
them) whose rows put our measured value next to the paper's printed value
wherever the paper gives one, so EXPERIMENTS.md can be generated and the
tests can assert the *shape* of each result (orderings, ratios, crossover
points) rather than absolute numbers.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from functools import lru_cache

import numpy as np

from repro.core.cache import compile_fingerprint, default_cache
from repro.core.compiler import WavePimCompiler
from repro.core.pipeline import (
    pipeline_timeline,
    pipelined_stage_time,
    serial_stage_time,
    timeline_trace_events,
)
from repro.obs import (
    MetricsRegistry,
    Tracer,
    format_duration,
    get_logger,
    get_metrics,
    get_tracer,
    set_metrics,
    set_tracer,
)
from repro.core.planner import PAPER_TABLE5, full_table5
from repro.core.runtime import estimate_benchmark
from repro.eval.report import Table
from repro.gpu import (
    CPU_BASELINE,
    GPU_SPECS,
    cpu_benchmark_time,
    gpu_benchmark_energy,
    gpu_benchmark_time,
)
from repro.pim.arithmetic import default_op_costs
from repro.pim.energy import chip_power_table
from repro.pim.params import CHIP_CONFIGS, DEFAULT_DEVICE
from repro.workloads import PAPER_TABLE6, benchmark_list, count_benchmark

__all__ = [
    "EXPERIMENTS",
    "run_experiment",
    "warm_compile_grid",
    "clear_compiled_cache",
    "table2_hardware",
    "table3_pim_power",
    "table4_basic_ops",
    "table5_configurations",
    "table6_benchmarks",
    "fig11_performance",
    "fig12_energy",
    "fig13_pipeline",
    "fig14_htree_vs_bus",
    "sec31_gpu_vs_cpu",
    "sec7_summary",
    "energy_breakdown",
    "plan_throughput",
]

#: time-steps per benchmark run (paper §3.1 uses 1024).
N_STEPS = 1024

log = get_logger(__name__)

_COMPILER_CACHE: dict = {}

#: in-process memo of compiled cells; backed by the persistent on-disk
#: cache (repro.core.cache) so a *second process* starts warm too.
_COMPILED: dict = {}


def _compiler(order: int) -> WavePimCompiler:
    if order not in _COMPILER_CACHE:
        _COMPILER_CACHE[order] = WavePimCompiler(order=order)
    return _COMPILER_CACHE[order]


def _compiled(physics: str, level: int, chip_name: str, flux: str, order: int, interconnect: str):
    key = (physics, level, chip_name, flux, order, interconnect)
    cb = _COMPILED.get(key)
    if cb is None:
        chip = CHIP_CONFIGS[chip_name].with_interconnect(interconnect)
        cb = _compiler(order).compile(physics, level, chip, flux, cache=default_cache())
        _COMPILED[key] = cb
    return cb


def clear_compiled_cache() -> None:
    """Drop the in-process compile memo (does not touch the disk cache)."""
    _COMPILED.clear()


# --------------------------------------------------------------------- #
# parallel compile fan-out
# --------------------------------------------------------------------- #


def _resolve_jobs(jobs=None) -> int:
    """CLI/env job count: explicit arg wins, then ``REPRO_JOBS``, then 1."""
    if jobs is None:
        jobs = os.environ.get("REPRO_JOBS", "1")
    try:
        jobs = int(jobs)
    except (TypeError, ValueError):
        raise ValueError(f"jobs must be a positive integer, got {jobs!r}") from None
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def _grid_cells(order: int) -> list:
    return [
        (spec.physics, spec.refinement_level, cname, spec.flux_kind, order, "htree")
        for spec in benchmark_list()
        for cname in CHIP_CONFIGS
    ]


def _cells_for(name: str, order: int) -> list:
    """The compile cells one experiment needs (for parallel prewarm)."""
    if name in ("fig11", "fig12", "sec7_summary", "energy_breakdown"):
        return _grid_cells(order)
    if name == "fig13":
        return [("acoustic", 4, "2GB", "riemann", order, "htree")]
    if name == "fig14":
        return [
            (physics, level, chip, flux, order, ic)
            for physics, level, flux, chip, _kind in FIG14_CASES
            for ic in ("htree", "bus")
        ]
    return []


def _compile_cell(cell):
    """Worker-side compile of one cell (module-level: must pickle).

    Returns ``(cell, compiled, obs_payload)``.  When the parent enabled
    profiling (``REPRO_TRACE=1`` in the worker's environment), the compile
    runs against a *fresh* tracer and metrics registry — not the globals,
    which under ``fork`` contain a copy of the parent's recording — and the
    payload carries the worker's spans + metric counts back for merging.
    """
    physics, level, chip_name, flux, order, interconnect = cell
    chip = CHIP_CONFIGS[chip_name].with_interconnect(interconnect)
    profiling = os.environ.get("REPRO_TRACE", "") in ("1", "true", "yes")
    if not profiling:
        return cell, WavePimCompiler(order=order).compile(physics, level, chip, flux), None
    local_tracer = Tracer(enabled=True)
    local_metrics = MetricsRegistry()
    old_tracer = set_tracer(local_tracer)
    old_metrics = set_metrics(local_metrics)
    try:
        cb = WavePimCompiler(order=order).compile(physics, level, chip, flux)
    finally:
        set_tracer(old_tracer)
        set_metrics(old_metrics)
    payload = {"spans": local_tracer.export(), "metrics": local_metrics.snapshot()}
    return cell, cb, payload


def warm_compile_grid(order: int = 7, jobs=None, cells=None) -> int:
    """Fan the compile matrix out over worker processes.

    Compiles every missing cell (``cells`` defaults to the full 6-benchmark
    x 4-chip grid) with ``jobs`` workers, and lands the results in both the
    in-process memo and the persistent cache — ``compile`` is deterministic,
    so parallel results are exactly the serial ones.  Returns the number of
    cells compiled (0 when everything was already warm).
    """
    jobs = _resolve_jobs(jobs)
    if cells is None:
        cells = _grid_cells(order)
    cache = default_cache()
    missing = [c for c in cells if c not in _COMPILED]
    if cache.enabled:
        # pull disk hits in-process first; only true misses hit the pool
        still = []
        for cell in missing:
            physics, level, chip_name, flux, cell_order, ic = cell
            chip = CHIP_CONFIGS[chip_name].with_interconnect(ic)
            hit = cache.get(compile_fingerprint(physics, level, chip, flux, cell_order))
            if hit is not None:
                _COMPILED[cell] = hit
            else:
                still.append(cell)
        missing = still
    if not missing:
        return 0
    log.info("compile grid: %d missing cell(s), %d job(s)", len(missing), jobs)
    tracer = get_tracer()
    if jobs == 1:
        for cell in missing:
            _compiled(*cell)
        return len(missing)
    # propagate profiling into the worker processes via the environment
    # (ProcessPoolExecutor workers inherit os.environ at spawn/fork time).
    env_trace = os.environ.get("REPRO_TRACE")
    if tracer.enabled:
        os.environ["REPRO_TRACE"] = "1"
    try:
        with tracer.span("compile/fanout", jobs=jobs, cells=len(missing)):
            with ProcessPoolExecutor(max_workers=min(jobs, len(missing))) as pool:
                for cell, cb, payload in pool.map(_compile_cell, missing):
                    _COMPILED[cell] = cb
                    physics, level, chip_name, flux, cell_order, ic = cell
                    chip = CHIP_CONFIGS[chip_name].with_interconnect(ic)
                    cache.put(compile_fingerprint(physics, level, chip, flux, cell_order), cb)
                    if payload:
                        tracer.adopt(payload.get("spans"), worker=True)
                        get_metrics().merge(payload.get("metrics") or {})
    finally:
        if tracer.enabled:
            if env_trace is None:
                os.environ.pop("REPRO_TRACE", None)
            else:
                os.environ["REPRO_TRACE"] = env_trace
    return len(missing)


@lru_cache(maxsize=64)
def _ops(key: str, order: int):
    from repro.workloads.benchmarks import BENCHMARKS

    spec = BENCHMARKS[key]
    return count_benchmark(spec, order=order)


# --------------------------------------------------------------------- #
# Table 2
# --------------------------------------------------------------------- #


def table2_hardware(order: int = 7) -> Table:
    """Table 2: platform configurations, incl. the PIM peak throughput
    computed from max parallelism x the 50/50 add/mul op latency (§7.1)."""
    t = Table(
        "Table 2: hardware configurations",
        ["platform", "process", "clock_mhz", "memory", "bw_gbs", "peak_tflops"],
    )
    for g in GPU_SPECS.values():
        t.add(
            platform=g.name,
            process=g.process_node,
            clock_mhz=g.clock_mhz,
            memory=f"{g.memory_gb}GB {g.memory_type}",
            bw_gbs=g.memory_bw_gbs,
            peak_tflops=g.peak_tflops,
        )
    costs = default_op_costs()
    for name, cfg in CHIP_CONFIGS.items():
        tflops = cfg.max_parallel_ops / costs.mean_flop_time_s / 1e12
        t.add(
            platform=f"Wave-PIM {name}",
            process=cfg.process_node,
            clock_mhz=cfg.clock_hz / 1e6,
            memory=f"{name} ReRAM",
            bw_gbs=900.0,
            peak_tflops=round(tflops, 2),
        )
    t.notes.append(
        "PIM throughput = capacity/1Kb parallel ops over the mean 50% add / "
        "50% mul latency, as in paper §7.1"
    )
    return t


# --------------------------------------------------------------------- #
# Table 3
# --------------------------------------------------------------------- #

#: the paper's printed chip totals (W) for the 2 GB configuration.
PAPER_TABLE3_TOTALS = {"htree": 115.02, "bus": 109.25}


def table3_pim_power(chip_name: str = "2GB") -> Table:
    """Table 3: component power of the 2 GB chip, re-derived bottom-up."""
    cfg = CHIP_CONFIGS[chip_name]
    rows = chip_power_table(cfg)
    t = Table(
        f"Table 3: PIM parameters ({chip_name} capacity)",
        ["component", "value_w", "paper_w"],
    )
    paper = {
        "crossbar_array_w": 6.14e-3,
        "sense_amp_w": 2.38e-3,
        "decoder_w": 0.31e-3,
        "memory_block_w": 8.83e-3,
        "tile_memory_w": 1.57,
        "htree_switches_w": 0.10713,
        "bus_switch_w": 0.0172,
        "tile_w_htree": 1.68,
        "tile_w_bus": 1.59,
        "central_controller_w": 6.41,
        "cpu_host_w": 3.06,
        "total_w_htree": PAPER_TABLE3_TOTALS["htree"],
        "total_w_bus": PAPER_TABLE3_TOTALS["bus"],
    }
    for k, v in rows.items():
        if k in ("htree_switch_count", "n_tiles"):
            continue
        t.add(component=k, value_w=float(v), paper_w=paper.get(k, float("nan")))
    t.notes.append(f"{rows['htree_switch_count']} H-tree switches per tile (paper: 85)")
    return t


# --------------------------------------------------------------------- #
# Table 4
# --------------------------------------------------------------------- #


def table4_basic_ops() -> Table:
    """Table 4 device constants + the NOR counts we derive from them."""
    d = DEFAULT_DEVICE
    costs = default_op_costs()
    t = Table("Table 4: PIM basic operation energy and time", ["quantity", "value"])
    t.add(quantity="E_set", value=f"{d.e_set_j*1e15:.2f} fJ")
    t.add(quantity="E_reset", value=f"{d.e_reset_j*1e15:.2f} fJ")
    t.add(quantity="E_NOR", value=f"{d.e_nor_j*1e15:.2f} fJ")
    t.add(quantity="E_search", value=f"{d.e_search_j*1e12:.2f} pJ")
    t.add(quantity="T_NOR", value=f"{d.t_nor_s*1e9:.2f} ns")
    t.add(quantity="T_search", value=f"{d.t_search_s*1e9:.2f} ns")
    for op in ("add", "sub", "mul", "mul_serial"):
        t.add(
            quantity=f"fp32 {op} (derived)",
            value=f"{costs.nor_count(op)} NOR = {costs.time_s(op)*1e6:.2f} us",
        )
    return t


# --------------------------------------------------------------------- #
# Table 5
# --------------------------------------------------------------------- #


def table5_configurations() -> Table:
    """Table 5: the planner's technique matrix vs the paper's."""
    ours = full_table5()
    t = Table(
        "Table 5: PIM implementation configuration",
        ["benchmark", "512MB", "2GB", "8GB", "16GB", "matches_paper"],
    )
    for key, row in ours.items():
        physics, level = key
        t.add(
            benchmark=f"{physics}_{level}",
            **{k: row[k] for k in ("512MB", "2GB", "8GB", "16GB")},
            matches_paper=row == PAPER_TABLE5[key],
        )
    return t


# --------------------------------------------------------------------- #
# Table 6
# --------------------------------------------------------------------- #


def table6_benchmarks(order: int = 7) -> Table:
    """Table 6: benchmark characteristics, ours vs paper."""
    t = Table(
        "Table 6: benchmark characteristics (per kernel-launch set)",
        [
            "benchmark",
            "elements",
            "fp_ops",
            "paper_fp_ops",
            "fp_ratio",
            "instructions_est",
            "paper_instructions",
        ],
    )
    for spec in benchmark_list():
        oc = _ops(spec.key, order)
        paper = PAPER_TABLE6[spec.key]
        t.add(
            benchmark=spec.name,
            elements=spec.n_elements,
            fp_ops=oc.fp_ops,
            paper_fp_ops=paper["fp_ops"],
            fp_ratio=round(oc.fp_ops / paper["fp_ops"], 3),
            instructions_est=oc.gpu_instructions_est,
            paper_instructions=paper["instructions"],
        )
    return t


# --------------------------------------------------------------------- #
# Fig. 11 / Fig. 12
# --------------------------------------------------------------------- #

#: the paper's per-PIM-size average speedups over Unfused-1080Ti (§7.3).
PAPER_FIG11_AVG = {"512MB": 10.28, "2GB": 35.80, "8GB": 72.21, "16GB": 172.76}
PAPER_FIG11_VS_FUSED_V100 = {"512MB": 2.30, "2GB": 7.89, "8GB": 15.97, "16GB": 37.39}
PAPER_FIG12_AVG = {"512MB": 26.62, "2GB": 26.82, "8GB": 14.28, "16GB": 16.01}


def _platform_grid(order: int, n_steps: int):
    """(times, energies) per benchmark per platform series."""
    times: dict = {}
    energies: dict = {}
    for spec in benchmark_list():
        ops = _ops(spec.key, order)
        row_t: dict = {}
        row_e: dict = {}
        for gk, g in GPU_SPECS.items():
            for fused in (False, True):
                label = f"{'Fused' if fused else 'Unfused'}-{gk}"
                timing = gpu_benchmark_time(spec, ops, g, fused)
                row_t[label] = timing.total_time_s(n_steps)
                row_e[label] = gpu_benchmark_energy(timing, g, n_steps).energy_j
        for cname in CHIP_CONFIGS:
            cb = _compiled(spec.physics, spec.refinement_level, cname, spec.flux_kind,
                           order, "htree")
            for scaled in (False, True):
                est = estimate_benchmark(cb, n_steps=n_steps, scale_to_12nm=scaled)
                label = f"PIM-{cname}-{'12nm' if scaled else '28nm'}"
                row_t[label] = est.time_s
                row_e[label] = est.energy_j
        times[spec.name] = row_t
        energies[spec.name] = row_e
    return times, energies


def fig11_performance(order: int = 7, n_steps: int = N_STEPS) -> Table:
    """Fig. 11: runtime normalized to the Unfused GTX 1080Ti."""
    times, _ = _platform_grid(order, n_steps)
    series = list(next(iter(times.values())).keys())
    t = Table("Fig. 11: time normalized to Unfused-1080Ti", ["benchmark"] + series)
    for bench, row in times.items():
        base = row["Unfused-1080Ti"]
        t.add(benchmark=bench, **{s: round(row[s] / base, 4) for s in series})
    # paper-vs-ours averages
    for cname in CHIP_CONFIGS:
        ours = np.mean([times[b]["Unfused-1080Ti"] / times[b][f"PIM-{cname}-12nm"]
                        for b in times])
        t.notes.append(
            f"avg speedup PIM-{cname}-12nm vs Unfused-1080Ti: {ours:.1f}x "
            f"(paper {PAPER_FIG11_AVG[cname]}x)"
        )
    return t


def fig12_energy(order: int = 7, n_steps: int = N_STEPS) -> Table:
    """Fig. 12: energy normalized to the Unfused GTX 1080Ti."""
    _, energies = _platform_grid(order, n_steps)
    series = list(next(iter(energies.values())).keys())
    t = Table("Fig. 12: energy normalized to Unfused-1080Ti", ["benchmark"] + series)
    for bench, row in energies.items():
        base = row["Unfused-1080Ti"]
        t.add(benchmark=bench, **{s: round(row[s] / base, 4) for s in series})
    for cname in CHIP_CONFIGS:
        ours = np.mean([energies[b]["Unfused-1080Ti"] / energies[b][f"PIM-{cname}-12nm"]
                        for b in energies])
        t.notes.append(
            f"avg energy saving PIM-{cname}-12nm vs Unfused-1080Ti: {ours:.1f}x "
            f"(paper {PAPER_FIG12_AVG[cname]}x)"
        )
    return t


# --------------------------------------------------------------------- #
# Fig. 13 / §7.5
# --------------------------------------------------------------------- #

PAPER_NO_PIPELINE_THROUGHPUT = 0.77


def fig13_pipeline(order: int = 7, chip_name: str = "2GB") -> Table:
    """Fig. 13: pipeline breakdown of one RK stage (Acoustic_4)."""
    cb = _compiled("acoustic", 4, chip_name, "riemann", order, "htree")
    st = cb.stage_times
    t = Table(
        f"Fig. 13: pipeline breakdown (Acoustic_4 on {chip_name})",
        ["lane", "label", "start_us", "end_us", "duration_us"],
    )
    for entry in pipeline_timeline(st):
        t.add(
            lane=entry.lane,
            label=entry.label,
            start_us=round(entry.start * 1e6, 2),
            end_us=round(entry.end * 1e6, 2),
            duration_us=round(entry.duration * 1e6, 2),
        )
    ratio = pipelined_stage_time(st) / serial_stage_time(st)
    t.notes.append(
        f"no-pipeline throughput = {ratio:.2f}x of pipelined "
        f"(paper: {PAPER_NO_PIPELINE_THROUGHPUT}x)"
    )
    tracer = get_tracer()
    if tracer.enabled:
        # smuggle the Fig. 13 lanes into the Chrome export (see obs.export)
        sp = tracer.current()
        sp.set(chrome_events=timeline_trace_events(st, origin_s=sp.start_s))
    return t


# --------------------------------------------------------------------- #
# Fig. 14 / §7.6
# --------------------------------------------------------------------- #

#: paper §7.6: inter-element share of flux time.
PAPER_FIG14_SHARES = {
    ("naive", "htree"): 0.2162,
    ("naive", "bus"): 0.5841,
    ("expanded", "htree"): 0.4277,
    ("expanded", "bus"): 0.6996,
}
PAPER_HTREE_TIME_SAVING = 2.16

#: the four Fig. 14 cases: (physics, level, flux, chip, expanded?)
FIG14_CASES = (
    ("acoustic", 4, "riemann", "512MB", "naive"),
    ("acoustic", 4, "riemann", "2GB", "expanded"),
    ("elastic", 4, "central", "2GB", "naive"),
    ("elastic", 4, "central", "8GB", "expanded"),
)


def fig14_htree_vs_bus(order: int = 7) -> Table:
    """Fig. 14: flux intra- vs inter-element time, H-tree vs Bus."""
    t = Table(
        "Fig. 14: H-tree vs Bus flux time split",
        [
            "case",
            "interconnect",
            "inter_us",
            "intra_us",
            "inter_share",
            "paper_share",
        ],
    )
    savings = []
    for physics, level, flux, chip, kind in FIG14_CASES:
        totals = {}
        for ic in ("htree", "bus"):
            cb = _compiled(physics, level, chip, flux, order, ic)
            st = cb.stage_times
            inter = st.flux_fetch_minus + st.flux_fetch_plus
            intra = st.flux_compute_minus + st.flux_compute_plus
            totals[ic] = inter + intra
            t.add(
                case=f"{cb.name}-{chip}",
                interconnect=ic,
                inter_us=round(inter * 1e6, 1),
                intra_us=round(intra * 1e6, 1),
                inter_share=round(inter / (inter + intra), 4),
                paper_share=PAPER_FIG14_SHARES[(kind, ic)],
            )
        savings.append(totals["bus"] / totals["htree"])
    t.notes.append(
        f"mean H-tree flux-time saving vs Bus: {np.mean(savings):.2f}x "
        f"(paper ~{PAPER_HTREE_TIME_SAVING}x)"
    )
    return t


# --------------------------------------------------------------------- #
# §3.1
# --------------------------------------------------------------------- #

PAPER_SEC31 = {
    (4, "GTX 1080Ti"): 94.35,
    (4, "Tesla P100"): 100.25,
    (4, "Tesla V100"): 123.38,
    (5, "GTX 1080Ti"): 131.10,
    (5, "Tesla P100"): 223.95,
    (5, "Tesla V100"): 369.05,
}


def sec31_gpu_vs_cpu(order: int = 7, n_steps: int = N_STEPS) -> Table:
    """§3.1: GPU speedups over the dual-Xeon CPU baseline."""
    t = Table(
        "Sec 3.1: GPU speedup over dual Xeon 8160 (acoustic, 1024 steps)",
        ["level", "gpu", "speedup", "paper_speedup"],
    )
    for spec in benchmark_list():
        if spec.physics != "acoustic":
            continue
        ops = _ops(spec.key, order)
        cpu_t = cpu_benchmark_time(spec, ops, n_steps)
        for g in GPU_SPECS.values():
            gpu_t = gpu_benchmark_time(spec, ops, g, fused=False).total_time_s(n_steps)
            t.add(
                level=spec.refinement_level,
                gpu=g.name,
                speedup=round(cpu_t / gpu_t, 2),
                paper_speedup=PAPER_SEC31[(spec.refinement_level, g.name)],
            )
    t.notes.append(f"CPU model: {CPU_BASELINE.name}, efficiencies fit to paper (see specs.py)")
    return t


# --------------------------------------------------------------------- #
# §7 summary / abstract headline
# --------------------------------------------------------------------- #

PAPER_HEADLINE = {"speedup": 41.98, "energy": 12.66}
PAPER_PER_GPU = {
    "GTX 1080Ti": {"speedup": 45.31, "energy": 13.75},
    "Tesla P100": {"speedup": 34.52, "energy": 10.67},
    "Tesla V100": {"speedup": 15.89, "energy": 5.66},
}


def sec7_summary(order: int = 7, n_steps: int = N_STEPS) -> Table:
    """Abstract/§7: average speedup and energy saving of the 16 GB PIM
    against each GPU platform (fused implementations, 12 nm scaling)."""
    times, energies = _platform_grid(order, n_steps)
    t = Table(
        "Sec 7 summary: PIM-16GB-12nm vs each GPU (fused)",
        ["gpu", "avg_speedup", "paper_speedup", "avg_energy_saving", "paper_energy"],
    )
    sp_all, en_all = [], []
    for gk, g in GPU_SPECS.items():
        label = f"Fused-{gk}"
        sp = np.mean([times[b][label] / times[b]["PIM-16GB-12nm"] for b in times])
        en = np.mean([energies[b][label] / energies[b]["PIM-16GB-12nm"] for b in energies])
        sp_all.append(sp)
        en_all.append(en)
        t.add(
            gpu=g.name,
            avg_speedup=round(float(sp), 2),
            paper_speedup=PAPER_PER_GPU[g.name]["speedup"],
            avg_energy_saving=round(float(en), 2),
            paper_energy=PAPER_PER_GPU[g.name]["energy"],
        )
    t.notes.append(
        f"grand average: {np.mean(sp_all):.2f}x speedup (paper {PAPER_HEADLINE['speedup']}x), "
        f"{np.mean(en_all):.2f}x energy saving (paper {PAPER_HEADLINE['energy']}x)"
    )
    return t


# --------------------------------------------------------------------- #
# Extension: energy breakdown (beyond the paper's figures)
# --------------------------------------------------------------------- #


def energy_breakdown(order: int = 7, n_steps: int = N_STEPS) -> Table:
    """Where the joules go: static / dynamic / HBM / host per config.

    An extension of Fig. 12: the paper reports only totals, but the §7.4
    capacity trade-off is *caused* by the static-power share, which this
    table makes explicit.
    """
    t = Table(
        "Extension: PIM energy breakdown (28nm, 1024 steps)",
        ["benchmark", "chip", "static_J", "dynamic_J", "hbm_J", "host_J", "static_share"],
    )
    for spec in benchmark_list():
        for cname in CHIP_CONFIGS:
            cb = _compiled(spec.physics, spec.refinement_level, cname, spec.flux_kind,
                           order, "htree")
            est = estimate_benchmark(cb, n_steps=n_steps)
            total = est.energy_j
            t.add(
                benchmark=spec.name,
                chip=cname,
                static_J=round(est.static_energy_j, 1),
                dynamic_J=round(est.dynamic_energy_j, 1),
                hbm_J=round(est.hbm_energy_j, 1),
                host_J=round(est.host_energy_j, 1),
                static_share=round(est.static_energy_j / total, 3),
            )
    t.notes.append(
        "static power dominates on under-utilized large chips — the root "
        "cause of the paper's §7.4 small-chip energy advantage"
    )
    return t


# --------------------------------------------------------------------- #
# Extension: executor-mode throughput (plan lowering, beyond the paper)
# --------------------------------------------------------------------- #


def plan_throughput(order: int = 2, level: int = 1, rounds: int = 3) -> Table:
    """Wall-clock of the ChipExecutor paths on one analytic step.

    An extension beyond the paper's figures: the simulator's own timing
    engine run over the same compiled acoustic time-step stream as
    per-instruction serial dispatch (the audit reference), as the lowered
    :class:`~repro.pim.plan.ExecutionPlan` warm replay (the universal
    path), and as the makespan-scheduled plan — plus the one-time lowering
    and scheduling costs.  The serial and plan TimingReports are asserted
    equal before anything is tabulated, so every speedup row is also a
    bit-identity witness; the scheduled row additionally reports the
    modeled-makespan improvement.
    """
    from repro.core.kernels.acoustic import AcousticOneBlockKernels
    from repro.core.mapper import ElementMapper
    from repro.dg import AcousticMaterial, HexMesh, ReferenceElement
    from repro.eval.bench import best_of
    from repro.pim.chip import PimChip
    from repro.pim.executor import ChipExecutor
    from repro.pim.schedule import schedule_plan

    mesh = HexMesh.from_refinement_level(level)
    elem = ReferenceElement(order)
    mat = AcousticMaterial.homogeneous(mesh.n_elements)
    cfg = CHIP_CONFIGS["512MB"]
    mapper = ElementMapper(mesh.m, cfg, 1)
    kern = AcousticOneBlockKernels(mesh, elem, mat, mapper, "riemann")
    ex = ChipExecutor(PimChip(cfg))
    ex.run(kern.setup() + kern.load_state(
        np.zeros((4, mesh.n_elements, elem.n_nodes), dtype=np.float32)
    ), functional=True)
    step = kern.time_step(1e-4)
    plan = ex.lower(step)

    # block/port clocks persist across runs; reset so each mode scores the
    # stream from the same t=0 and the reports are comparable.
    reports = {}
    for mode, run in (
        ("serial", lambda: ex.run(step, functional=False, serial=True)),
        ("plan", lambda: ex.run(plan, functional=False)),
    ):
        ex.reset_clocks()
        reports[mode] = run()
    if reports["plan"] != reports["serial"]:
        raise AssertionError(
            "plan TimingReport diverged from serial on the same stream"
        )
    ex.reset_clocks()
    sched = schedule_plan(ex, plan)
    stats = sched.schedule_stats

    lower_s = best_of(lambda: ex.lower(step), rounds)
    times = {
        "serial": best_of(lambda: ex.run(step, functional=False, serial=True), rounds),
        "plan (warm)": best_of(lambda: ex.run(plan, functional=False), rounds),
        "scheduled (warm)": best_of(lambda: ex.run(sched, functional=False), rounds),
    }
    t = Table(
        f"Extension: executor-mode throughput (acoustic level-{level}, "
        f"order-{order}, {len(step)} instructions)",
        ["mode", "wall_ms", "speedup_vs_serial", "insts_per_s"],
    )
    for mode, wall in times.items():
        t.add(
            mode=mode,
            wall_ms=round(wall * 1e3, 3),
            speedup_vs_serial=round(times["serial"] / wall, 2),
            insts_per_s=int(len(step) / wall),
        )
    t.add(mode="lowering (one-time)", wall_ms=round(lower_s * 1e3, 3),
          speedup_vs_serial="-", insts_per_s="-")
    t.notes.append(
        f"plan: {plan.n_segments} segments + {plan.n_transfers} transfers + "
        f"{plan.n_dispatch} dispatched ({plan.vectorized_fraction:.0%} of the "
        "stream vectorized); serial and plan TimingReports verified "
        "bit-identical"
    )
    t.notes.append(
        f"scheduler: modeled makespan {stats['improvement']:.2f}x vs emission "
        f"order ({stats['n_reordered']} of {len(step)} instructions moved; "
        f"kept={stats['kept']})"
    )
    return t


# --------------------------------------------------------------------- #
# Extension: fault-injection sweep (robustness, beyond the paper)
# --------------------------------------------------------------------- #


def fault_sweep(order: int = 2, n_steps: int = 2) -> Table:
    """Seeded fault-injection campaign on functional benchmark proxies.

    Sweeps the default fault rates over one acoustic and one elastic
    benchmark on the H-tree, reporting injected/corrected/uncorrected
    counts, solution error vs. the fault-free baseline, and the
    time/energy overhead of the mitigation machinery.  At the low rate
    every fault must be absorbed (``uncorrected == 0``, exact solution);
    the high rate demonstrates graceful degradation.
    """
    from repro.faults.campaign import run_campaign

    report = run_campaign(
        ["acoustic_4", "elastic_central_4"],
        interconnects=("htree",),
        order=order,
        steps=n_steps,
    )
    t = Table(
        "Extension: fault-injection sweep (functional proxies, H-tree)",
        ["benchmark", "rate", "status", "injected", "corrected",
         "uncorrected", "remaps", "rel_err", "time_overhead"],
    )
    for run in report["runs"]:
        counts = run.get("counts", {})
        t.add(
            benchmark=run["benchmark"],
            rate=run["rate"],
            status=run["status"],
            injected=counts.get("injected", 0),
            corrected=counts.get("corrected", 0),
            uncorrected=counts.get("uncorrected", 0),
            remaps=counts.get("remaps", 0),
            rel_err=(
                f"{run['solution_rel_err']:.2e}"
                if "solution_rel_err" in run else "-"
            ),
            time_overhead=(
                round(run["time_overhead"], 4) if "time_overhead" in run else "-"
            ),
        )
    t.notes.append(
        "seeded and reproducible: same seed -> identical event log; "
        "'degraded' rows ran out of healthy spare blocks (reported, not crashed)"
    )
    return t


# --------------------------------------------------------------------- #

EXPERIMENTS = {
    "table2": table2_hardware,
    "table3": table3_pim_power,
    "table4": table4_basic_ops,
    "table5": table5_configurations,
    "table6": table6_benchmarks,
    "fig11": fig11_performance,
    "fig12": fig12_energy,
    "fig13": fig13_pipeline,
    "fig14": fig14_htree_vs_bus,
    "sec31": sec31_gpu_vs_cpu,
    "sec7_summary": sec7_summary,
    "energy_breakdown": energy_breakdown,
    "plan_throughput": plan_throughput,
    "fault_sweep": fault_sweep,
}


def run_experiment(name: str, jobs=None, **kwargs) -> Table:
    """Run one registered experiment by id (see DESIGN.md's index).

    ``jobs`` (default: ``REPRO_JOBS`` or 1) prewarms the experiment's
    compile cells with that many worker processes before the single-process
    table assembly; results are identical to the serial path.
    """
    try:
        fn = EXPERIMENTS[name]
    except KeyError:
        raise KeyError(f"unknown experiment {name!r}; known: {sorted(EXPERIMENTS)}") from None
    jobs = _resolve_jobs(jobs)
    order = kwargs.get("order", 7)
    tracer = get_tracer()
    t0 = time.perf_counter()
    log.info("experiment %s: starting (order=%d, jobs=%d)", name, order, jobs)
    with tracer.span(f"experiment/{name}", order=order, jobs=jobs):
        # the compile phase prewarms every cell the experiment needs; under
        # profiling it runs even with jobs=1 so compile time is attributed
        # to its own span instead of hiding inside the execute phase.
        with tracer.span("compile", experiment=name) as sp:
            cells = _cells_for(name, order)
            if cells and (jobs > 1 or tracer.enabled):
                compiled = warm_compile_grid(order=order, jobs=jobs, cells=cells)
                sp.set(cells=len(cells), compiled=compiled)
        with tracer.span("execute", experiment=name):
            table = fn(**kwargs)
    log.info("experiment %s: done in %s", name, format_duration(time.perf_counter() - t0))
    return table
