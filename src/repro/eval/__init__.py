"""Evaluation harness: one experiment per paper table/figure.

Each experiment is a callable object returning structured rows plus a
formatted text rendering; ``benchmarks/`` wraps them in pytest-benchmark
targets and ``EXPERIMENTS.md`` records paper-vs-measured values.
"""

from repro.eval.report import Table, format_table
from repro.eval.experiments import (
    EXPERIMENTS,
    run_experiment,
    table2_hardware,
    table3_pim_power,
    table4_basic_ops,
    table5_configurations,
    table6_benchmarks,
    fig11_performance,
    fig12_energy,
    fig13_pipeline,
    fig14_htree_vs_bus,
    sec31_gpu_vs_cpu,
    sec7_summary,
)

__all__ = [
    "Table",
    "format_table",
    "EXPERIMENTS",
    "run_experiment",
    "table2_hardware",
    "table3_pim_power",
    "table4_basic_ops",
    "table5_configurations",
    "table6_benchmarks",
    "fig11_performance",
    "fig12_energy",
    "fig13_pipeline",
    "fig14_htree_vs_bus",
    "sec31_gpu_vs_cpu",
    "sec7_summary",
]
