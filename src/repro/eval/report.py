"""Plain-text table rendering for the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Table", "format_table"]


@dataclass
class Table:
    """A titled table of rows (dicts) with a fixed column order."""

    title: str
    columns: list
    rows: list = field(default_factory=list)
    notes: list = field(default_factory=list)

    def add(self, **row) -> None:
        missing = set(self.columns) - set(row)
        if missing:
            raise ValueError(f"row missing columns {sorted(missing)}")
        self.rows.append(row)

    def column(self, name: str) -> list:
        return [r[name] for r in self.rows]

    def as_dict(self) -> dict:
        """JSON-able view (used by trace attributes and exporters)."""
        return {
            "title": self.title,
            "columns": list(self.columns),
            "rows": [dict(r) for r in self.rows],
            "notes": list(self.notes),
        }

    def render(self) -> str:
        return format_table(self)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:,.3f}".rstrip("0").rstrip(".")
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(table: Table) -> str:
    """Monospace rendering with per-column width fitting."""
    headers = [str(c) for c in table.columns]
    body = [[_fmt(r[c]) for c in table.columns] for r in table.rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in body)) if body else len(headers[i])
        for i in range(len(headers))
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = [table.title, "=" * len(table.title)]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in body:
        lines.append(" | ".join(v.rjust(w) for v, w in zip(row, widths)))
    for note in table.notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)
