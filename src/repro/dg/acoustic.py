"""Acoustic wave operator: the dG right-hand side for Eq. (1) of the paper.

The semidiscrete DG-SEM form per element is::

    dp/dt = -kappa div(v)           + lift * kappa   * (vn- - vn*)   on faces
    dv/dt = -(1/rho) grad(p)        + lift * (1/rho) * (p-  - p* ) n on faces

with ``lift = (2 / h) / w_end`` the diagonal GLL surface lift.  The two
terms are exactly the paper's *Volume* (local dot products) and *Flux*
(neighbor reconciliation) computations; the RK combination is its
*Integration* step.

State layout: ``(4, K, n_nodes)`` stacking ``[p, vx, vy, vz]`` — the four
unknowns Wave-PIM stores per node row (Fig. 5).
"""

from __future__ import annotations

import numpy as np

from repro.dg import flux as fluxmod
from repro.dg.materials import AcousticMaterial
from repro.dg.mesh import BoundaryKind, FaceExchange, HexMesh
from repro.dg.reference_element import ReferenceElement

__all__ = ["AcousticOperator", "ACOUSTIC_VARS"]

#: Variable names in state-stack order.
ACOUSTIC_VARS = ("p", "vx", "vy", "vz")


class AcousticOperator:
    """dG right-hand side evaluator for the acoustic wave equation.

    Parameters
    ----------
    mesh, material, element:
        The discretization; ``material`` is per-element (paper §5.1).
    flux:
        ``"central"`` or ``"riemann"``.
    """

    n_vars = 4
    var_names = ACOUSTIC_VARS

    def __init__(
        self,
        mesh: HexMesh,
        material: AcousticMaterial,
        element: ReferenceElement,
        flux: str = fluxmod.RIEMANN,
    ):
        if flux not in fluxmod.FLUX_KINDS:
            raise ValueError(f"unknown flux kind {flux!r}")
        if material.n_elements != mesh.n_elements:
            raise ValueError(
                f"material has {material.n_elements} elements, mesh has {mesh.n_elements}"
            )
        self.mesh = mesh
        self.material = material
        self.element = element
        self.flux_kind = flux

        self._dscale = 2.0 / mesh.h  # reference -> physical derivative
        self._lift = self._dscale / element.w_end
        self._z = material.impedance  # (K,)
        self._inv_rho = 1.0 / material.rho
        self._kappa = material.kappa
        self._fx = FaceExchange(mesh, element)

    # ------------------------------------------------------------------ #

    def max_wave_speed(self) -> float:
        return self.material.max_speed

    def zero_state(self, dtype=np.float64) -> np.ndarray:
        return np.zeros((self.n_vars, self.mesh.n_elements, self.element.n_nodes), dtype=dtype)

    # ------------------------------------------------------------------ #

    def volume_rhs(self, state: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """The *Volume* kernel: local derivatives only (paper Fig. 2 green).

        Every entry of ``out`` is overwritten (allocated if ``None``).
        """
        elem = self.element
        p, vx, vy, vz = state
        rhs = np.empty_like(state) if out is None else out
        div_v = elem.div(vx, vy, vz) * self._dscale
        grad_p = elem.grad(p) * self._dscale
        rhs[0] = -self._kappa[:, None] * div_v
        inv_rho = self._inv_rho[:, None]
        rhs[1] = -inv_rho * grad_p[0]
        rhs[2] = -inv_rho * grad_p[1]
        rhs[3] = -inv_rho * grad_p[2]
        return rhs

    def flux_rhs(self, state: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """The *Flux* kernel: inter-element reconciliation (Fig. 2 red).

        Adds the surface corrections into ``out`` (allocated if ``None``).
        All six faces are gathered at once through the precomputed
        :class:`~repro.dg.mesh.FaceExchange` tables; per-face work is
        reduced to the scatter-accumulate at the end.
        """
        if out is None:
            out = np.zeros_like(state)
        fx = self._fx
        sf = state.reshape(-1)

        sign = fx.sign[:, None, None]  # (6, 1, 1)
        voff = (1 + fx.axis)[:, None, None] * fx.k_nn  # velocity-var offsets
        p_m = sf[fx.gather_m]  # (6, K, nfn)
        vn_m = sign * sf[voff + fx.gather_m]
        z_m = self._z[None, :, None]

        boundary = fx.boundary  # (6, K)
        p_p = sf[fx.gather_p]
        vn_p = sign * sf[voff + fx.gather_p]
        z_p = self._z[fx.nbr_safe][:, :, None]

        if fx.any_boundary:
            p_p, vn_p, z_p = self._ghost(p_m, vn_m, z_m, p_p, vn_p, z_p, boundary)

        if self.flux_kind == fluxmod.CENTRAL and self.mesh.boundary != BoundaryKind.ABSORBING:
            p_s, vn_s = fluxmod.acoustic_central(p_m, p_p, vn_m, vn_p)
        elif self.flux_kind == fluxmod.CENTRAL:
            # central in the interior, upwind on absorbing boundaries
            p_c, vn_c = fluxmod.acoustic_central(p_m, p_p, vn_m, vn_p)
            p_u, vn_u = fluxmod.acoustic_riemann(p_m, p_p, vn_m, vn_p, z_m, z_p)
            bmask = boundary[..., None]
            p_s = np.where(bmask, p_u, p_c)
            vn_s = np.where(bmask, vn_u, vn_c)
        else:
            p_s, vn_s = fluxmod.acoustic_riemann(p_m, p_p, vn_m, vn_p, z_m, z_p)

        lift = self._lift
        dp = lift * self._kappa[None, :, None] * (vn_m - vn_s)
        dv = lift * self._inv_rho[None, :, None] * (p_m - p_s) * sign
        for face in range(6):
            fn = fx.face_nodes[face]
            out[0][:, fn] += dp[face]
            out[1 + fx.axis[face]][:, fn] += dv[face]
        return out

    def _ghost(self, p_m, vn_m, z_m, p_p, vn_p, z_p, boundary):
        """Synthesize exterior states on physical boundary faces."""
        kind = self.mesh.boundary
        bmask = boundary[..., None]
        if kind == BoundaryKind.FREE_SURFACE:
            p_p = np.where(bmask, -p_m, p_p)
            vn_p = np.where(bmask, vn_m, vn_p)
        elif kind == BoundaryKind.RIGID:
            p_p = np.where(bmask, p_m, p_p)
            vn_p = np.where(bmask, -vn_m, vn_p)
        elif kind == BoundaryKind.ABSORBING:
            p_p = np.where(bmask, 0.0, p_p)
            vn_p = np.where(bmask, 0.0, vn_p)
        z_p = np.where(bmask, z_m, z_p)
        return p_p, vn_p, z_p

    # ------------------------------------------------------------------ #

    def rhs(self, state: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Full semidiscrete right-hand side (Volume + Flux).

        ``out``, when given, is fully overwritten and returned — the time
        loop reuses one buffer instead of allocating per RK stage.
        """
        out = self.volume_rhs(state, out)
        self.flux_rhs(state, out)
        return out

    def energy(self, state: np.ndarray) -> float:
        """Discrete acoustic energy ``1/2 integral(p^2/kappa + rho |v|^2)``.

        Conserved by the central flux on periodic meshes, strictly
        dissipated by the upwind flux — both properties are unit tests.
        """
        elem = self.element
        jac = (self.mesh.h / 2.0) ** 3
        p, vx, vy, vz = state
        dens = p * p / self._kappa[:, None] + self.material.rho[:, None] * (
            vx * vx + vy * vy + vz * vz
        )
        return float(0.5 * jac * np.sum(elem.integrate(dens)))
