"""Maxwell's equations on the same dG substrate (paper §1's extension).

"One may observe structural similarities between Eq. (1), Eq. (2), and the
Maxwell equations ... successful strategies for efficient computation of
the acoustic wave motion can also be applied to the elastic and
electromagnetic waves."  This module demonstrates that claim: the
time-domain Maxwell system

    eps dE/dt =  curl H
    mu  dH/dt = -curl E

drops onto the identical mesh / reference-element / LSRK machinery, with
six unknowns per node (``Ex Ey Ez Hx Hy Hz`` — which *does* fit one PIM
memory-block row, unlike the nine-variable elastic case).

Fluxes: central (conservative) and upwind with penalty strength
``alpha`` (Hesthaven & Warburton's classic Maxwell flux; ``alpha=1`` is
fully upwind).  Homogeneous media per element, like the paper's acoustic
and elastic material treatment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dg.materials import _per_element
from repro.dg.mesh import BoundaryKind, HexMesh
from repro.dg.reference_element import FACE_NORMALS, ReferenceElement, opposite_face

__all__ = ["ElectromagneticMaterial", "MaxwellOperator", "MAXWELL_VARS", "maxwell_plane_wave"]

MAXWELL_VARS = ("Ex", "Ey", "Ez", "Hx", "Hy", "Hz")


@dataclass
class ElectromagneticMaterial:
    """Permittivity ``eps`` and permeability ``mu`` per element."""

    eps: np.ndarray
    mu: np.ndarray

    def __post_init__(self):
        self.eps = np.atleast_1d(np.asarray(self.eps, dtype=np.float64))
        n = self.eps.shape[0]
        self.eps = _per_element(self.eps, n, "eps")
        self.mu = _per_element(self.mu, n, "mu")

    @classmethod
    def homogeneous(cls, n_elements: int, eps: float = 1.0, mu: float = 1.0):
        return cls(eps=np.full(n_elements, eps), mu=np.full(n_elements, mu))

    @property
    def n_elements(self) -> int:
        return self.eps.shape[0]

    @property
    def c(self) -> np.ndarray:
        """Light speed per element."""
        return 1.0 / np.sqrt(self.eps * self.mu)

    @property
    def impedance(self) -> np.ndarray:
        """Wave impedance ``Z = sqrt(mu / eps)``."""
        return np.sqrt(self.mu / self.eps)

    @property
    def max_speed(self) -> float:
        return float(self.c.max())


def _cross_n(normal: np.ndarray, field: np.ndarray) -> np.ndarray:
    """``n x field`` for a constant normal and a (3, K, nfn) field."""
    nx, ny, nz = normal
    return np.stack(
        [
            ny * field[2] - nz * field[1],
            nz * field[0] - nx * field[2],
            nx * field[1] - ny * field[0],
        ]
    )


class MaxwellOperator:
    """dG right-hand side for the 3-D time-domain Maxwell system."""

    n_vars = 6
    var_names = MAXWELL_VARS

    def __init__(
        self,
        mesh: HexMesh,
        material: ElectromagneticMaterial,
        element: ReferenceElement,
        flux: str = "upwind",
        alpha: float = 1.0,
    ):
        if flux not in ("central", "upwind"):
            raise ValueError(f"flux must be 'central' or 'upwind', got {flux!r}")
        if material.n_elements != mesh.n_elements:
            raise ValueError("material/mesh element count mismatch")
        if mesh.boundary != BoundaryKind.PERIODIC:
            raise NotImplementedError("Maxwell demo supports periodic meshes")
        self.mesh = mesh
        self.material = material
        self.element = element
        self.flux_kind = flux
        self.alpha = float(alpha) if flux == "upwind" else 0.0
        self._dscale = 2.0 / mesh.h
        self._lift = self._dscale / element.w_end
        self._inv_eps = 1.0 / material.eps
        self._inv_mu = 1.0 / material.mu
        self._z = material.impedance

    def zero_state(self, dtype=np.float64) -> np.ndarray:
        return np.zeros((6, self.mesh.n_elements, self.element.n_nodes), dtype=dtype)

    def max_wave_speed(self) -> float:
        return self.material.max_speed

    # ------------------------------------------------------------------ #

    def _curl(self, f: np.ndarray) -> np.ndarray:
        e = self.element
        ds = self._dscale
        return np.stack(
            [
                (e.deriv(f[2], 1) - e.deriv(f[1], 2)) * ds,
                (e.deriv(f[0], 2) - e.deriv(f[2], 0)) * ds,
                (e.deriv(f[1], 0) - e.deriv(f[0], 1)) * ds,
            ]
        )

    def volume_rhs(self, state: np.ndarray) -> np.ndarray:
        ef, hf = state[0:3], state[3:6]
        rhs = np.empty_like(state)
        rhs[0:3] = self._inv_eps[:, None] * self._curl(hf)
        rhs[3:6] = -self._inv_mu[:, None] * self._curl(ef)
        return rhs

    def flux_rhs(self, state: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Hesthaven-Warburton Maxwell flux (central + upwind penalty)::

            dE += lift/eps * ( n x dH + alpha/Z * (dE - (n.dE) n) ) / 2
            dH += lift/mu  * (-n x dE + alpha*Z * (dH - (n.dH) n) ) / 2

        with ``d* = (exterior - interior)`` traces.
        """
        if out is None:
            out = np.zeros_like(state)
        elem, mesh = self.element, self.mesh
        for face in range(6):
            fn = elem.face_nodes[face]
            ofn = elem.face_nodes[opposite_face(face)]
            nbr = mesh.neighbors[:, face]
            normal = FACE_NORMALS[face]

            e_m = state[0:3][:, :, fn]
            h_m = state[3:6][:, :, fn]
            e_p = state[0:3][:, nbr][:, :, ofn]
            h_p = state[3:6][:, nbr][:, :, ofn]
            d_e = e_p - e_m
            d_h = h_p - h_m

            # interface impedance: harmonic combination degenerates to Z for
            # homogeneous media; we keep the local value (paper-style
            # per-element constants, exactness checked by tests)
            z = self._z[:, None]
            n_dot_de = normal[0] * d_e[0] + normal[1] * d_e[1] + normal[2] * d_e[2]
            n_dot_dh = normal[0] * d_h[0] + normal[1] * d_h[1] + normal[2] * d_h[2]
            tang_de = d_e - n_dot_de * normal.reshape(3, 1, 1)
            tang_dh = d_h - n_dot_dh * normal.reshape(3, 1, 1)

            corr_e = 0.5 * (_cross_n(normal, d_h) + (self.alpha / z) * tang_de)
            corr_h = 0.5 * (-_cross_n(normal, d_e) + (self.alpha * z) * tang_dh)

            lift = self._lift
            for i in range(3):
                out[i][:, fn] += lift * self._inv_eps[:, None] * corr_e[i]
                out[3 + i][:, fn] += lift * self._inv_mu[:, None] * corr_h[i]
        return out

    def rhs(self, state: np.ndarray) -> np.ndarray:
        out = self.volume_rhs(state)
        self.flux_rhs(state, out)
        return out

    def energy(self, state: np.ndarray) -> float:
        """Electromagnetic energy ``1/2 integral(eps|E|^2 + mu|H|^2)``."""
        elem = self.element
        jac = (self.mesh.h / 2.0) ** 3
        e2 = np.sum(state[0:3] ** 2, axis=0)
        h2 = np.sum(state[3:6] ** 2, axis=0)
        dens = self.material.eps[:, None] * e2 + self.material.mu[:, None] * h2
        return float(0.5 * jac * np.sum(elem.integrate(dens)))


def maxwell_plane_wave(
    mesh, element, material, k_int=(1, 0, 0), polarization=(0, 1, 0), t: float = 0.0
) -> np.ndarray:
    """Plane EM wave: ``E = d f(khat.x - ct)``, ``H = (khat x d)/Z f``."""
    eps = float(material.eps[0])
    mu = float(material.mu[0])
    c = 1.0 / np.sqrt(eps * mu)
    z = np.sqrt(mu / eps)
    k = 2.0 * np.pi * np.asarray(k_int, dtype=np.float64) / mesh.extent
    kmag = np.linalg.norm(k)
    khat = k / kmag
    d = np.asarray(polarization, dtype=np.float64)
    d = d - (d @ khat) * khat
    dn = np.linalg.norm(d)
    if dn < 1e-12:
        raise ValueError("polarization parallel to propagation direction")
    d /= dn
    hdir = np.cross(khat, d) / z
    coords = mesh.node_coordinates(element.node_coords)
    x, y, zc = coords[..., 0], coords[..., 1], coords[..., 2]
    f = np.sin(k[0] * x + k[1] * y + k[2] * zc - c * kmag * t)
    state = np.empty((6,) + f.shape)
    for i in range(3):
        state[i] = d[i] * f
        state[3 + i] = hdir[i] * f
    return state
