"""Gauss-Legendre-Lobatto (GLL) and Gauss-Legendre quadrature rules.

The dG discretization of the paper uses tensor-product hexahedral elements
whose nodes are GLL points (Table 1: "GLL Weight", "GLL Point").  GLL
collocation makes the element mass matrix diagonal ("Mass Inverse" in
Table 1), which is what lets Wave-PIM keep one scalar mass-inverse per node
row in the memory-block layout of Fig. 5.

Everything here is computed from scratch with Newton iteration on Legendre
polynomials; no table lookup, so arbitrary orders are supported.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "legendre_poly_and_deriv",
    "gll_points_weights",
    "gauss_points_weights",
    "lagrange_basis_at",
]

#: Newton-iteration convergence tolerance for node computation.
_NEWTON_TOL = 1e-15
_NEWTON_MAXIT = 100


def legendre_poly_and_deriv(n: int, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Evaluate the Legendre polynomial ``P_n`` and its derivative at ``x``.

    Uses the three-term recurrence; stable for the orders used in wave
    simulation (the paper's 512-node element is order 7).

    Parameters
    ----------
    n:
        Polynomial degree, ``n >= 0``.
    x:
        Evaluation points (any shape).

    Returns
    -------
    (P_n(x), P_n'(x)) with the same shape as ``x``.
    """
    x = np.asarray(x, dtype=np.float64)
    if n == 0:
        return np.ones_like(x), np.zeros_like(x)
    p_prev = np.ones_like(x)  # P_0
    p = x.copy()  # P_1
    for k in range(2, n + 1):
        p_prev, p = p, ((2 * k - 1) * x * p - (k - 1) * p_prev) / k
    # derivative from the standard identity (1-x^2) P_n' = n (P_{n-1} - x P_n)
    with np.errstate(divide="ignore", invalid="ignore"):
        dp = n * (p_prev - x * p) / (1.0 - x * x)
    # endpoints: P_n'(+-1) = (+-1)^{n-1} n(n+1)/2
    endpoint = np.isclose(np.abs(x), 1.0)
    if np.any(endpoint):
        sgn = np.where(x > 0, 1.0, (-1.0) ** (n - 1))
        dp = np.where(endpoint, sgn * n * (n + 1) / 2.0, dp)
    return p, dp


def gll_points_weights(order: int) -> tuple[np.ndarray, np.ndarray]:
    """Gauss-Legendre-Lobatto points and weights on ``[-1, 1]``.

    ``order`` is the polynomial order ``N``; ``N + 1`` points are returned,
    including both endpoints.  Interior points are the roots of ``P_N'``;
    the weights are ``w_i = 2 / (N (N+1) P_N(x_i)^2)``.

    The rule integrates polynomials up to degree ``2N - 1`` exactly, a
    property the test-suite checks.
    """
    n = int(order)
    if n < 1:
        raise ValueError(f"GLL rule needs order >= 1, got {order}")
    if n == 1:
        return np.array([-1.0, 1.0]), np.array([1.0, 1.0])

    # Chebyshev-Gauss-Lobatto initial guess, then Newton on q(x) = P_N'(x).
    x = -np.cos(np.pi * np.arange(n + 1) / n)
    for _ in range(_NEWTON_MAXIT):
        # q = P_N', q' from Legendre ODE: (1-x^2) P'' - 2x P' + N(N+1) P = 0
        p, dp = legendre_poly_and_deriv(n, x[1:-1])
        d2p = (2.0 * x[1:-1] * dp - n * (n + 1) * p) / (1.0 - x[1:-1] ** 2)
        dx = dp / d2p
        x[1:-1] -= dx
        if np.max(np.abs(dx)) < _NEWTON_TOL:
            break
    p, _ = legendre_poly_and_deriv(n, x)
    w = 2.0 / (n * (n + 1) * p * p)
    return x, w


def gauss_points_weights(npts: int) -> tuple[np.ndarray, np.ndarray]:
    """Classic Gauss-Legendre rule with ``npts`` interior points.

    Used only for verification (e.g. integrating reference solutions); the
    solver itself is GLL-collocated.
    """
    if npts < 1:
        raise ValueError(f"Gauss rule needs npts >= 1, got {npts}")
    x, w = np.polynomial.legendre.leggauss(npts)
    return x, w


def lagrange_basis_at(nodes: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Evaluate the Lagrange basis through ``nodes`` at points ``x``.

    Returns a matrix ``B`` with ``B[i, j] = l_j(x_i)`` so that
    ``f(x) = B @ f(nodes)`` interpolates.  Used for receiver sampling and
    cross-order comparisons in the tests.
    """
    nodes = np.asarray(nodes, dtype=np.float64)
    x = np.atleast_1d(np.asarray(x, dtype=np.float64))
    npts = nodes.size
    out = np.ones((x.size, npts))
    for j in range(npts):
        for m in range(npts):
            if m != j:
                out[:, j] *= (x - nodes[m]) / (nodes[j] - nodes[m])
    return out
