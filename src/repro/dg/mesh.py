"""Uniform hexahedral meshes with paper-style refinement levels.

Table 1: "Refinement Level n indicates the problem domain is discretized
into (2^n)^3 elements" — level 4 gives the 4,096-element benchmarks, level
5 the 32,768-element ones.

The mesh also knows the *slice* decomposition along the y axis used by the
Flux batching schedule of Fig. 7 (a slice is one plane of ``m x m``
elements; slices pair up ``(0,1), (2,3), ...`` for the -1 normal and
``(1,2), (3,4), ...`` for the +1 normal).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dg.reference_element import FACE_AXIS, FACE_NORMALS, FACE_SIDE, opposite_face

__all__ = ["HexMesh", "BoundaryKind", "FaceExchange"]


class BoundaryKind:
    """Boundary-condition tags understood by the operators."""

    PERIODIC = "periodic"
    FREE_SURFACE = "free"
    RIGID = "rigid"
    ABSORBING = "absorbing"

    ALL = (PERIODIC, FREE_SURFACE, RIGID, ABSORBING)


@dataclass
class HexMesh:
    """A uniform ``m x m x m`` hexahedral mesh of a cubic domain.

    Parameters
    ----------
    m:
        Elements per axis.  Use :meth:`from_refinement_level` for the
        paper's ``m = 2^level`` convention.
    extent:
        Physical edge length ``L`` of the cubic domain.
    boundary:
        One of :class:`BoundaryKind`; applied on all six domain faces.

    Element ``(ix, iy, iz)`` has id ``e = ix + m iy + m^2 iz``.
    """

    m: int
    extent: float = 1.0
    boundary: str = BoundaryKind.PERIODIC
    level: int | None = None
    #: (K, 6) neighbor element id per face; -1 marks a physical boundary
    #: (only for non-periodic meshes).
    neighbors: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.m < 1:
            raise ValueError(f"mesh needs m >= 1, got {self.m}")
        if self.boundary not in BoundaryKind.ALL:
            raise ValueError(f"unknown boundary kind {self.boundary!r}")
        self.n_elements = self.m**3
        self.h = self.extent / self.m
        self.neighbors = self._build_neighbors()

    # ------------------------------------------------------------------ #

    @classmethod
    def from_refinement_level(
        cls, level: int, extent: float = 1.0, boundary: str = BoundaryKind.PERIODIC
    ) -> "HexMesh":
        """Paper convention: refinement level ``n`` -> ``(2^n)^3`` elements."""
        if level < 0:
            raise ValueError(f"refinement level must be >= 0, got {level}")
        return cls(m=2**level, extent=extent, boundary=boundary, level=level)

    # ------------------------------------------------------------------ #
    # index helpers
    # ------------------------------------------------------------------ #

    def element_id(self, ix: int, iy: int, iz: int) -> int:
        """Flat element id of grid cell ``(ix, iy, iz)``."""
        m = self.m
        if not (0 <= ix < m and 0 <= iy < m and 0 <= iz < m):
            raise IndexError(f"element ({ix},{iy},{iz}) outside {m}^3 mesh")
        return ix + m * iy + m * m * iz

    def element_index(self, e: int) -> tuple[int, int, int]:
        """Grid cell ``(ix, iy, iz)`` of flat element id ``e``."""
        m = self.m
        if not 0 <= e < self.n_elements:
            raise IndexError(f"element id {e} outside mesh of {self.n_elements}")
        return e % m, (e // m) % m, e // (m * m)

    def element_center(self, e: int) -> np.ndarray:
        """Physical center coordinates of element ``e``."""
        ix, iy, iz = self.element_index(e)
        return (np.array([ix, iy, iz], dtype=np.float64) + 0.5) * self.h

    def element_origin(self, e: int) -> np.ndarray:
        """Physical coordinates of the low corner of element ``e``."""
        ix, iy, iz = self.element_index(e)
        return np.array([ix, iy, iz], dtype=np.float64) * self.h

    def node_coordinates(self, ref_coords: np.ndarray) -> np.ndarray:
        """Physical coordinates of every node of every element.

        ``ref_coords`` is the ``(n_nodes, 3)`` reference node table; the
        result has shape ``(K, n_nodes, 3)``.
        """
        e = np.arange(self.n_elements)
        origins = np.column_stack(
            [e % self.m, (e // self.m) % self.m, e // (self.m * self.m)]
        ).astype(np.float64)
        local = (np.asarray(ref_coords) + 1.0) * 0.5 * self.h  # [0, h]^3
        return origins[:, None, :] * self.h + local[None, :, :]

    # ------------------------------------------------------------------ #
    # connectivity
    # ------------------------------------------------------------------ #

    def _build_neighbors(self) -> np.ndarray:
        m = self.m
        k = self.n_elements
        nbr = np.empty((k, 6), dtype=np.int64)
        e = np.arange(k)
        ix, iy, iz = e % m, (e // m) % m, e // (m * m)
        periodic = self.boundary == BoundaryKind.PERIODIC
        for face in range(6):
            axis = FACE_AXIS[face]
            step = -1 if FACE_SIDE[face] == 0 else 1
            coord = (ix, iy, iz)[axis]
            target = coord + step
            if periodic:
                target = target % m
                valid = np.ones(k, dtype=bool)
            else:
                valid = (target >= 0) & (target < m)
                target = np.clip(target, 0, m - 1)
            parts = [ix.copy(), iy.copy(), iz.copy()]
            parts[axis] = target
            ids = parts[0] + m * parts[1] + m * m * parts[2]
            nbr[:, face] = np.where(valid, ids, -1)
        return nbr

    def interfaces(self) -> np.ndarray:
        """All unique interior interfaces as rows ``(e_minus, face, e_plus)``.

        Each physical interface appears exactly once, keyed by the element
        on its low side (the one whose ``+axis`` face it is).  Used by the
        tests to check Fig. 7's slice schedule covers every face pair.
        """
        rows = []
        for face in (1, 3, 5):  # +x, +y, +z
            plus = self.neighbors[:, face]
            for e in range(self.n_elements):
                if plus[e] >= 0:
                    # periodic wrap can pair an element with itself on m == 1
                    rows.append((e, face, plus[e]))
        return np.array(rows, dtype=np.int64).reshape(-1, 3)

    # ------------------------------------------------------------------ #
    # slice decomposition (Fig. 7)
    # ------------------------------------------------------------------ #

    def slice_elements(self, sl: int, axis: int = 1) -> np.ndarray:
        """Element ids in slice ``sl`` along ``axis`` (default y, as Fig. 7)."""
        if not 0 <= sl < self.m:
            raise IndexError(f"slice {sl} outside [0, {self.m})")
        e = np.arange(self.n_elements)
        coord = (e % self.m, (e // self.m) % self.m, e // (self.m * self.m))[axis]
        return e[coord == sl]

    @property
    def n_slices(self) -> int:
        return self.m

    # ------------------------------------------------------------------ #
    # multi-chip partitioning (repro.pim.multichip)
    # ------------------------------------------------------------------ #

    def partition_elements(self, n_parts: int,
                           order: np.ndarray | None = None) -> list:
        """Split the elements into ``n_parts`` contiguous balanced chunks.

        ``order`` is the element ranking to cut (default: natural id
        order; the multi-chip layer passes a Morton ranking so chunks are
        compact boxes with small face boundaries).  Chunk sizes differ by
        at most one element.
        """
        if not 1 <= n_parts <= self.n_elements:
            raise ValueError(
                f"n_parts must be in [1, {self.n_elements}], got {n_parts}")
        ids = (np.arange(self.n_elements, dtype=np.int64) if order is None
               else np.asarray(order, dtype=np.int64))
        if ids.shape != (self.n_elements,) or len(np.unique(ids)) != self.n_elements:
            raise ValueError("order must be a permutation of all element ids")
        return [chunk.copy() for chunk in np.array_split(ids, n_parts)]

    def halo_of(self, owned: np.ndarray) -> np.ndarray:
        """Face-neighbor closure of ``owned`` outside it (sorted ids).

        These are exactly the elements whose state a shard owning
        ``owned`` must receive to evaluate its flux kernels; physical
        boundary faces (no neighbor) contribute nothing.
        """
        owned = np.asarray(owned, dtype=np.int64)
        nbrs = np.unique(self.neighbors[owned])
        nbrs = nbrs[nbrs >= 0]
        return np.setdiff1d(nbrs, owned)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        lvl = f", level={self.level}" if self.level is not None else ""
        return f"HexMesh(m={self.m}, K={self.n_elements}{lvl}, boundary={self.boundary!r})"


class FaceExchange:
    """Precomputed whole-mesh face gather tables for the dG flux kernels.

    The topology (neighbors, face node lists) is static, so the per-face
    trace extraction of the flux kernels reduces to fancy-indexing a
    flattened ``(K * n_nodes,)`` scalar field with these tables:

    ``gather_m[face, k, i]``
        flat node index of face node ``i`` of element ``k`` (interior trace);
    ``gather_p[face, k, i]``
        flat node index of the matching node on the neighbor's opposite
        face (exterior trace; boundary faces point at element 0 and are
        overridden by the ghost-state synthesis, masked by ``boundary``).

    One ``field[gather_m]`` covers all six faces at once — the operators'
    former per-face ``state[nbr]`` reorderings copied the entire state
    array six times per variable per evaluation.
    """

    def __init__(self, mesh: "HexMesh", element):
        K, nn = mesh.n_elements, element.n_nodes
        fn = np.asarray(element.face_nodes)  # (6, nfn)
        ofn = np.stack([element.face_nodes[opposite_face(f)] for f in range(6)])
        self.face_nodes = fn
        self.normals = np.asarray(FACE_NORMALS, dtype=np.float64)  # (6, 3)
        self.axis = np.argmax(np.abs(self.normals), axis=1)  # (6,)
        self.sign = self.normals[np.arange(6), self.axis]  # (6,)
        nbr = mesh.neighbors.T  # (6, K)
        self.boundary = nbr < 0
        self.any_boundary = bool(self.boundary.any())
        self.nbr_safe = np.where(self.boundary, 0, nbr)
        ke = np.arange(K, dtype=np.int64)
        self.gather_m = ke[None, :, None] * nn + fn[:, None, :]  # (6, K, nfn)
        self.gather_p = self.nbr_safe[:, :, None] * nn + ofn[:, None, :]
        self.k_nn = K * nn
