"""Elastic wave operator: the dG right-hand side for Eq. (2) of the paper.

Velocity-stress first-order formulation with nine unknowns per node
(six Voigt stresses + three velocities) — the reason Wave-PIM cannot fit an
elastic element in one 1K-row memory block and must apply the *expansion*
technique (§5.1, §6.2)::

    d(sigma)/dt = lam (div v) I + mu (grad v + grad v^T)
    d(v)/dt     = (1/rho) div(sigma)

Surface corrections (strong-form DG-SEM, diagonal lift) enter through the
interface traction/velocity star states::

    d(sigma_ij) += lift * (lam d_ij dvn + mu (n_i dv_j + n_j dv_i))
    d(v_i)      += lift * (1/rho) dt_i

with ``dv = v* - v-``, ``dt = t* - t-``, ``dvn = n . dv``.
"""

from __future__ import annotations

import numpy as np

from repro.dg import flux as fluxmod
from repro.dg.materials import ElasticMaterial
from repro.dg.mesh import BoundaryKind, FaceExchange, HexMesh
from repro.dg.reference_element import ReferenceElement

__all__ = ["ElasticOperator", "ELASTIC_VARS", "VOIGT"]

#: Variable names in state-stack order; Voigt stresses then velocities.
ELASTIC_VARS = ("sxx", "syy", "szz", "syz", "sxz", "sxy", "vx", "vy", "vz")

#: Voigt index -> (i, j) tensor components.
VOIGT = ((0, 0), (1, 1), (2, 2), (1, 2), (0, 2), (0, 1))


class ElasticOperator:
    """dG right-hand side evaluator for the elastic wave equation."""

    n_vars = 9
    var_names = ELASTIC_VARS

    def __init__(
        self,
        mesh: HexMesh,
        material: ElasticMaterial,
        element: ReferenceElement,
        flux: str = fluxmod.CENTRAL,
    ):
        if flux not in fluxmod.FLUX_KINDS:
            raise ValueError(f"unknown flux kind {flux!r}")
        if material.n_elements != mesh.n_elements:
            raise ValueError(
                f"material has {material.n_elements} elements, mesh has {mesh.n_elements}"
            )
        self.mesh = mesh
        self.material = material
        self.element = element
        self.flux_kind = flux

        self._dscale = 2.0 / mesh.h
        self._lift = self._dscale / element.w_end
        self._lam = material.lam
        self._mu = material.mu
        self._inv_rho = 1.0 / material.rho
        self._zp = material.zp
        self._zs = material.zs
        self._fx = FaceExchange(mesh, element)

    # ------------------------------------------------------------------ #

    def max_wave_speed(self) -> float:
        return self.material.max_speed

    def zero_state(self, dtype=np.float64) -> np.ndarray:
        return np.zeros((self.n_vars, self.mesh.n_elements, self.element.n_nodes), dtype=dtype)

    # ------------------------------------------------------------------ #

    def volume_rhs(self, state: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """The *Volume* kernel: local derivatives (grad v, div sigma).

        Every entry of ``out`` is overwritten (allocated if ``None``).
        """
        elem = self.element
        ds = self._dscale
        v = state[6:9]
        # velocity gradient dv[i][j] = d v_i / d x_j
        dv = np.stack([elem.grad(v[i]) * ds for i in range(3)])  # (3,3,K,nn)
        rhs = np.empty_like(state) if out is None else out
        lam = self._lam[:, None]
        mu = self._mu[:, None]
        div_v = dv[0, 0] + dv[1, 1] + dv[2, 2]
        for voigt, (i, j) in enumerate(VOIGT):
            rhs[voigt] = mu * (dv[i, j] + dv[j, i])
            if i == j:
                rhs[voigt] += lam * div_v
        # div(sigma): row i -> sum_j d sigma_ij / dx_j, Voigt lookup
        sxx, syy, szz, syz, sxz, sxy = state[0:6]
        inv_rho = self._inv_rho[:, None]
        rhs[6] = inv_rho * (elem.deriv(sxx, 0) + elem.deriv(sxy, 1) + elem.deriv(sxz, 2)) * ds
        rhs[7] = inv_rho * (elem.deriv(sxy, 0) + elem.deriv(syy, 1) + elem.deriv(syz, 2)) * ds
        rhs[8] = inv_rho * (elem.deriv(sxz, 0) + elem.deriv(syz, 1) + elem.deriv(szz, 2)) * ds
        return rhs

    # ------------------------------------------------------------------ #

    @staticmethod
    def traction(state_faces: np.ndarray, normal: np.ndarray) -> np.ndarray:
        """Traction ``sigma . n`` from Voigt face values ``(9, ...)``.

        ``normal`` components may be scalars (one face) or broadcastable
        arrays (the fused all-faces path).
        """
        sxx, syy, szz, syz, sxz, sxy = state_faces[0:6]
        nx, ny, nz = normal
        return np.stack(
            [
                sxx * nx + sxy * ny + sxz * nz,
                sxy * nx + syy * ny + syz * nz,
                sxz * nx + syz * ny + szz * nz,
            ]
        )

    def flux_rhs(self, state: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """The *Flux* kernel: traction/velocity reconciliation on faces.

        All six faces are gathered at once through the precomputed
        :class:`~repro.dg.mesh.FaceExchange` tables — the former per-face
        loop reordered the full 9-variable state six times per call.
        """
        if out is None:
            out = np.zeros_like(state)
        fx = self._fx
        flat = state.reshape(self.n_vars, -1)

        q_m = flat[:, fx.gather_m]  # (9, 6, K, nfn)
        q_p = flat[:, fx.gather_p]
        normal = fx.normals.T[:, :, None, None]  # (3, 6, 1, 1)
        t_m = self.traction(q_m, normal)
        v_m = q_m[6:9]
        t_p = self.traction(q_p, normal)
        v_p = q_p[6:9]

        zp_m = self._zp[None, :, None]
        zs_m = self._zs[None, :, None]
        zp_p = self._zp[fx.nbr_safe][:, :, None]
        zs_p = self._zs[fx.nbr_safe][:, :, None]

        boundary = fx.boundary  # (6, K)
        if fx.any_boundary:
            t_p, v_p, zp_p, zs_p = self._ghost(
                t_m, v_m, zp_m, zs_m, t_p, v_p, zp_p, zs_p, boundary
            )

        if self.flux_kind == fluxmod.CENTRAL:
            t_s, v_s = fluxmod.elastic_central(t_m, t_p, v_m, v_p)
            if self.mesh.boundary == BoundaryKind.ABSORBING and fx.any_boundary:
                t_u, v_u = fluxmod.elastic_riemann(
                    t_m, t_p, v_m, v_p, normal, zp_m, zp_p, zs_m, zs_p
                )
                bmask = boundary[None, ..., None]
                t_s = np.where(bmask, t_u, t_s)
                v_s = np.where(bmask, v_u, v_s)
        else:
            t_s, v_s = fluxmod.elastic_riemann(
                t_m, t_p, v_m, v_p, normal, zp_m, zp_p, zs_m, zs_p
            )

        d_v = v_s - v_m  # (3, 6, K, nfn)
        d_t = t_s - t_m
        d_vn = normal[0] * d_v[0] + normal[1] * d_v[1] + normal[2] * d_v[2]

        lift = self._lift
        lam = self._lam[None, :, None]
        mu = self._mu[None, :, None]
        corr = []
        for voigt, (i, j) in enumerate(VOIGT):
            c = mu * (normal[i] * d_v[j] + normal[j] * d_v[i])
            if i == j:
                c = c + lam * d_vn
            corr.append(lift * c)
        inv_rho = self._inv_rho[None, :, None]
        d_vel = [lift * inv_rho * d_t[i] for i in range(3)]
        for face in range(6):
            fn = fx.face_nodes[face]
            for voigt in range(6):
                out[voigt][:, fn] += corr[voigt][face]
            for i in range(3):
                out[6 + i][:, fn] += d_vel[i][face]
        return out

    def _ghost(self, t_m, v_m, zp_m, zs_m, t_p, v_p, zp_p, zs_p, boundary):
        """Synthesize exterior traction/velocity on boundary faces."""
        kind = self.mesh.boundary
        bmask = boundary[None, ..., None]
        if kind == BoundaryKind.FREE_SURFACE:
            t_p = np.where(bmask, -t_m, t_p)
            v_p = np.where(bmask, v_m, v_p)
        elif kind == BoundaryKind.RIGID:
            t_p = np.where(bmask, t_m, t_p)
            v_p = np.where(bmask, -v_m, v_p)
        elif kind == BoundaryKind.ABSORBING:
            t_p = np.where(bmask, 0.0, t_p)
            v_p = np.where(bmask, 0.0, v_p)
        bm2 = boundary[..., None]
        zp_p = np.where(bm2, zp_m, zp_p)
        zs_p = np.where(bm2, zs_m, zs_p)
        return t_p, v_p, zp_p, zs_p

    # ------------------------------------------------------------------ #

    def rhs(self, state: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Full semidiscrete right-hand side (Volume + Flux).

        ``out``, when given, is fully overwritten and returned — the time
        loop reuses one buffer instead of allocating per RK stage.
        """
        out = self.volume_rhs(state, out)
        self.flux_rhs(state, out)
        return out

    def energy(self, state: np.ndarray) -> float:
        """Discrete elastic energy: strain energy + kinetic energy.

        ``E = 1/2 integral( sigma : C^-1 sigma + rho |v|^2 )`` with the
        isotropic compliance applied in Voigt form.  Conserved by the
        central flux on periodic meshes; dissipated by the Riemann flux.
        """
        elem = self.element
        jac = (self.mesh.h / 2.0) ** 3
        lam = self._lam[:, None]
        mu = self._mu[:, None]
        sxx, syy, szz, syz, sxz, sxy = state[0:6]
        vx, vy, vz = state[6:9]
        tr = sxx + syy + szz
        # isotropic compliance: eps = (sigma - lam/(3lam+2mu) tr I) / (2 mu)
        c1 = 1.0 / (2.0 * mu)
        c2 = lam / (2.0 * mu * (3.0 * lam + 2.0 * mu))
        strain_energy = c1 * (
            sxx * sxx + syy * syy + szz * szz + 2.0 * (syz * syz + sxz * sxz + sxy * sxy)
        ) - c2 * tr * tr
        kinetic = self.material.rho[:, None] * (vx * vx + vy * vy + vz * vz)
        dens = strain_energy + kinetic
        return float(0.5 * jac * np.sum(elem.integrate(dens)))
