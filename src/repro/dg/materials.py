"""Material models for acoustic and elastic wave propagation.

The paper assumes *constant materials within an element* (§5.1), which is
what lets Wave-PIM pre-process the per-element impedances (the sqrt and
inverse operations) on the host CPU and serve them from look-up tables.
Accordingly, materials here are per-element arrays of shape ``(K,)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["AcousticMaterial", "ElasticMaterial", "layered_acoustic", "layered_elastic"]


def _per_element(value, n_elements: int, name: str) -> np.ndarray:
    arr = np.asarray(value, dtype=np.float64)
    if arr.ndim == 0:
        arr = np.full(n_elements, float(arr))
    if arr.shape != (n_elements,):
        raise ValueError(f"{name} must be scalar or shape ({n_elements},), got {arr.shape}")
    if np.any(arr <= 0) and name != "mu":
        raise ValueError(f"{name} must be positive")
    if name == "mu" and np.any(arr < 0):
        raise ValueError("mu must be non-negative")
    return arr


@dataclass
class AcousticMaterial:
    """Bulk modulus ``kappa`` and density ``rho`` per element (Table 1: K, rho).

    Derived quantities: sound speed ``c = sqrt(kappa / rho)`` and acoustic
    impedance ``Z = rho c`` — exactly the sqrt/inverse computations the
    paper offloads to the host CPU (§5.1).
    """

    kappa: np.ndarray
    rho: np.ndarray

    def __post_init__(self):
        self.kappa = np.atleast_1d(np.asarray(self.kappa, dtype=np.float64))
        self.rho = np.atleast_1d(np.asarray(self.rho, dtype=np.float64))
        n = self.kappa.shape[0]
        self.kappa = _per_element(self.kappa, n, "kappa")
        self.rho = _per_element(self.rho, n, "rho")

    @classmethod
    def homogeneous(cls, n_elements: int, kappa: float = 1.0, rho: float = 1.0):
        return cls(
            kappa=_per_element(kappa, n_elements, "kappa"),
            rho=_per_element(rho, n_elements, "rho"),
        )

    @classmethod
    def from_fields(cls, kappa, rho, n_elements: int):
        return cls(
            kappa=_per_element(kappa, n_elements, "kappa"),
            rho=_per_element(rho, n_elements, "rho"),
        )

    @property
    def n_elements(self) -> int:
        return self.kappa.shape[0]

    @property
    def c(self) -> np.ndarray:
        """Sound speed per element."""
        return np.sqrt(self.kappa / self.rho)

    @property
    def impedance(self) -> np.ndarray:
        """Acoustic impedance ``Z = rho c`` per element."""
        return self.rho * self.c

    @property
    def max_speed(self) -> float:
        return float(self.c.max())

    def host_precomputed(self) -> dict:
        """The quantities the paper's host CPU pre-computes for the LUTs."""
        return {
            "c": self.c,
            "impedance": self.impedance,
            "inv_rho": 1.0 / self.rho,
            "inv_impedance_sum": None,  # filled per-interface by the flux kernel
        }


@dataclass
class ElasticMaterial:
    """Lame parameters ``lam``/``mu`` and density ``rho`` per element.

    Derived quantities: P- and S-wave speeds and impedances.  ``mu = 0``
    degenerates to a fluid (no shear waves), which the Riemann solver
    handles explicitly.
    """

    lam: np.ndarray
    mu: np.ndarray
    rho: np.ndarray

    def __post_init__(self):
        self.lam = np.atleast_1d(np.asarray(self.lam, dtype=np.float64))
        n = self.lam.shape[0]
        self.lam = _per_element(self.lam, n, "lam")
        self.mu = _per_element(self.mu, n, "mu")
        self.rho = _per_element(self.rho, n, "rho")

    @classmethod
    def homogeneous(cls, n_elements: int, lam: float = 1.0, mu: float = 1.0, rho: float = 1.0):
        return cls(
            lam=_per_element(lam, n_elements, "lam"),
            mu=_per_element(mu, n_elements, "mu"),
            rho=_per_element(rho, n_elements, "rho"),
        )

    @property
    def n_elements(self) -> int:
        return self.lam.shape[0]

    @property
    def cp(self) -> np.ndarray:
        """P-wave (compressional) speed per element."""
        return np.sqrt((self.lam + 2.0 * self.mu) / self.rho)

    @property
    def cs(self) -> np.ndarray:
        """S-wave (shear) speed per element."""
        return np.sqrt(self.mu / self.rho)

    @property
    def zp(self) -> np.ndarray:
        """P-wave impedance ``rho cp``."""
        return self.rho * self.cp

    @property
    def zs(self) -> np.ndarray:
        """S-wave impedance ``rho cs``."""
        return self.rho * self.cs

    @property
    def max_speed(self) -> float:
        return float(self.cp.max())

    def host_precomputed(self) -> dict:
        """Host-CPU pre-computed quantities served through PIM LUTs."""
        return {
            "cp": self.cp,
            "cs": self.cs,
            "zp": self.zp,
            "zs": self.zs,
            "inv_rho": 1.0 / self.rho,
        }


def layered_acoustic(mesh, interfaces_z, kappas, rhos) -> AcousticMaterial:
    """Horizontally layered acoustic model (the oil-and-gas motivation).

    ``interfaces_z`` lists layer-top depths (ascending, excluding domain
    bottom); layer ``i`` spans ``[interfaces_z[i-1], interfaces_z[i])``.
    """
    interfaces_z = list(interfaces_z)
    if len(kappas) != len(interfaces_z) + 1 or len(rhos) != len(kappas):
        raise ValueError("need one more (kappa, rho) pair than interface depths")
    centers = np.array([mesh.element_center(e)[2] for e in range(mesh.n_elements)])
    layer = np.searchsorted(np.asarray(interfaces_z), centers, side="right")
    return AcousticMaterial(
        kappa=np.asarray(kappas, dtype=np.float64)[layer],
        rho=np.asarray(rhos, dtype=np.float64)[layer],
    )


def layered_elastic(mesh, interfaces_z, lams, mus, rhos) -> ElasticMaterial:
    """Horizontally layered elastic model (site-response style)."""
    interfaces_z = list(interfaces_z)
    if not (len(lams) == len(mus) == len(rhos) == len(interfaces_z) + 1):
        raise ValueError("need one more (lam, mu, rho) triple than interface depths")
    centers = np.array([mesh.element_center(e)[2] for e in range(mesh.n_elements)])
    layer = np.searchsorted(np.asarray(interfaces_z), centers, side="right")
    return ElasticMaterial(
        lam=np.asarray(lams, dtype=np.float64)[layer],
        mu=np.asarray(mus, dtype=np.float64)[layer],
        rho=np.asarray(rhos, dtype=np.float64)[layer],
    )
