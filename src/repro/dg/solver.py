"""High-level wave-simulation driver.

``WaveSolver`` wires a mesh, a material, a reference element, an operator
(acoustic or elastic), sources and receivers into a time loop — the same
structure the paper's CUDA code has (Volume / Flux kernels inside an
LSRK Integration loop), and the object the examples and the PIM
verification tests drive.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dg.acoustic import AcousticOperator
from repro.dg.elastic import ElasticOperator
from repro.dg.materials import AcousticMaterial, ElasticMaterial
from repro.dg.mesh import BoundaryKind, HexMesh
from repro.dg.reference_element import ReferenceElement
from repro.dg.timestepping import LSRK45, cfl_timestep

__all__ = ["SolverConfig", "WaveSolver", "Receiver"]

ACOUSTIC = "acoustic"
ELASTIC = "elastic"


@dataclass
class SolverConfig:
    """Declarative configuration for :class:`WaveSolver`.

    ``refinement_level`` follows the paper's convention: the mesh has
    ``(2^level)^3`` elements.  ``order=7`` gives the paper's 512-node
    elements; smaller orders are used by the tests for speed.
    """

    physics: str = ACOUSTIC
    refinement_level: int = 2
    order: int = 3
    extent: float = 1.0
    flux: str = "riemann"
    boundary: str = BoundaryKind.PERIODIC
    cfl: float = 0.5
    dtype: str = "float64"

    def __post_init__(self):
        if self.physics not in (ACOUSTIC, ELASTIC):
            raise ValueError(f"physics must be 'acoustic' or 'elastic', got {self.physics!r}")


@dataclass
class Receiver:
    """Samples one state variable at the node nearest ``position``."""

    position: tuple
    variable: int = 0
    _element: int = -1
    _node: int = -1
    trace: list = field(default_factory=list)

    def locate(self, mesh, element) -> None:
        pos = np.asarray(self.position, dtype=np.float64)
        coords = mesh.node_coordinates(element.node_coords)
        d2 = np.sum((coords - pos) ** 2, axis=-1)
        e, n = np.unravel_index(np.argmin(d2), d2.shape)
        self._element, self._node = int(e), int(n)

    def record(self, state: np.ndarray) -> None:
        self.trace.append(float(state[self.variable, self._element, self._node]))


class WaveSolver:
    """End-to-end wave simulation: mesh + material + operator + time loop."""

    def __init__(self, config: SolverConfig, material=None):
        self.config = config
        self.mesh = HexMesh.from_refinement_level(
            config.refinement_level, extent=config.extent, boundary=config.boundary
        )
        self.element = ReferenceElement(config.order)
        if material is None:
            material = (
                AcousticMaterial.homogeneous(self.mesh.n_elements)
                if config.physics == ACOUSTIC
                else ElasticMaterial.homogeneous(self.mesh.n_elements)
            )
        self.material = material
        if config.physics == ACOUSTIC:
            self.operator = AcousticOperator(self.mesh, material, self.element, flux=config.flux)
        else:
            self.operator = ElasticOperator(self.mesh, material, self.element, flux=config.flux)
        self.sources: list = []
        self.receivers: list[Receiver] = []
        self.state = self.operator.zero_state(dtype=np.dtype(config.dtype))
        self.time = 0.0
        self.steps_taken = 0
        self._rhs_buf: np.ndarray | None = None
        self._stepper: LSRK45 | None = None
        self._aux_buf: np.ndarray | None = None

    # ------------------------------------------------------------------ #

    @property
    def dt(self) -> float:
        return cfl_timestep(
            self.mesh.h, self.operator.max_wave_speed(), self.config.order, self.config.cfl
        )

    def add_source(self, source) -> None:
        self.sources.append(source)

    def add_receiver(self, receiver: Receiver) -> None:
        receiver.locate(self.mesh, self.element)
        self.receivers.append(receiver)

    def set_state(self, state: np.ndarray) -> None:
        if state.shape != self.state.shape:
            raise ValueError(f"state shape {state.shape} != {self.state.shape}")
        self.state = state.astype(self.state.dtype, copy=True)

    # ------------------------------------------------------------------ #

    def _rhs(self, state: np.ndarray, t: float) -> np.ndarray:
        # one buffer reused across all RK stages and time-steps; the
        # operator overwrites every entry, so no clearing is needed
        buf = self._rhs_buf
        if buf is None or buf.shape != state.shape or buf.dtype != state.dtype:
            buf = self._rhs_buf = np.empty_like(state)
        out = self.operator.rhs(state, out=buf)
        for src in self.sources:
            src.add_to_rhs(out, t, self.mesh, self.element)
        return out

    def run(
        self,
        n_steps: int,
        dt: float | None = None,
        record_every: int = 1,
        checkpoint_every: int | None = None,
        checkpoint_path=None,
    ) -> np.ndarray:
        """Advance ``n_steps`` time-steps; returns the final state.

        Receivers record every ``record_every`` steps.  With
        ``checkpoint_every``/``checkpoint_path`` set, a restartable
        snapshot is written every that many steps — LSRK45 zeroes its aux
        register at stage 0 of every step, so resuming from a step
        boundary reproduces the uninterrupted run bit-identically (see
        :meth:`restore_checkpoint`).
        """
        from repro.obs import get_metrics, get_tracer

        dt = self.dt if dt is None else dt
        ckpt_on = checkpoint_every is not None and checkpoint_path is not None
        # the stepper and its aux register persist across run() calls (the
        # receiver/animation idiom calls run(1) in a loop): LSRK45 zeroes
        # aux at stage 0 of every step, so reuse is state-free as long as
        # the buffer still matches the state array.
        stepper = self._stepper
        if stepper is None:
            stepper = self._stepper = LSRK45(self._rhs)
        aux = self._aux_buf
        if aux is None or aux.shape != self.state.shape or aux.dtype != self.state.dtype:
            aux = self._aux_buf = np.zeros_like(self.state)
        with get_tracer().span(
            "solver/run", physics=self.config.physics, n_steps=n_steps,
            elements=self.mesh.n_elements, order=self.config.order,
        ):
            for step in range(n_steps):
                stepper.step(self.state, self.time, dt, aux)
                self.time += dt
                self.steps_taken += 1
                if self.receivers and (self.steps_taken % record_every == 0):
                    for r in self.receivers:
                        r.record(self.state)
                if ckpt_on and (self.steps_taken % checkpoint_every == 0):
                    self.save_checkpoint(checkpoint_path)
        get_metrics().inc("solver.steps", n_steps)
        return self.state

    # -- checkpoint/restart --------------------------------------------- #

    def _checkpoint_meta(self) -> dict:
        c = self.config
        return {
            "physics": c.physics,
            "refinement_level": c.refinement_level,
            "order": c.order,
            "extent": c.extent,
            "flux": c.flux,
            "boundary": c.boundary,
            "cfl": c.cfl,
            "dtype": c.dtype,
        }

    def save_checkpoint(self, path, keep_previous: bool = False):
        """Write an atomic restartable snapshot of ``(state, time, steps)``.

        ``keep_previous=True`` rotates an existing snapshot to
        ``<path>.prev`` first, so :meth:`restore_checkpoint` with
        ``recover=True`` can fall back if this file is later found
        corrupt on disk (the job-service resume path).
        """
        from repro.faults.checkpoint import Checkpoint, write_checkpoint
        from repro.obs import get_metrics, get_tracer

        with get_tracer().span("faults/checkpoint", step=self.steps_taken):
            out = write_checkpoint(
                path,
                Checkpoint(
                    state=self.state,
                    time=self.time,
                    steps=self.steps_taken,
                    meta=self._checkpoint_meta(),
                ),
                keep_previous=keep_previous,
            )
        get_metrics().inc("faults.checkpoints")
        return out

    def restore_checkpoint(self, path, recover: bool = False) -> int:
        """Rewind this solver to a snapshot written by :meth:`save_checkpoint`.

        Validates that the checkpoint came from an identically-configured
        solver, then restores ``(state, time, steps_taken)`` bit-exactly.
        Returns the step count resumed from.  ``recover=True`` falls back
        to the rotated ``.prev`` snapshot when the newest one is corrupt
        (see :class:`repro.faults.checkpoint.CheckpointCorrupt`).
        """
        from repro.faults.checkpoint import (
            read_checkpoint,
            read_checkpoint_with_recovery,
        )

        ckpt = (read_checkpoint_with_recovery(path) if recover
                else read_checkpoint(path))
        ckpt.validate_against(self._checkpoint_meta())
        if ckpt.state.shape != self.state.shape:
            raise ValueError(
                f"checkpoint state shape {ckpt.state.shape} != {self.state.shape}"
            )
        self.state = ckpt.state.astype(self.state.dtype, copy=True)
        self.time = ckpt.time
        self.steps_taken = ckpt.steps
        return ckpt.steps

    def energy(self) -> float:
        return self.operator.energy(self.state)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WaveSolver({self.config.physics}, level={self.config.refinement_level}, "
            f"order={self.config.order}, K={self.mesh.n_elements}, flux={self.config.flux!r})"
        )
