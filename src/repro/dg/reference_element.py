"""Tensor-product hexahedral reference element on ``[-1, 1]^3``.

Holds the 1-D GLL rule, the 1-D differentiation matrix (the paper's
``dshape`` constants), the 3-D node enumeration, face index maps, and the
tensor-contraction derivative operators that the Volume kernel evaluates
("the derivative computation involves a dot-product between a subset of the
element's nodes and a derivative vector", paper §1 footnote 2).

Node enumeration
----------------
Node ``(i, j, k)`` (x-, y-, z-index) flattens to ``n = i + (N+1) j +
(N+1)^2 k``; equivalently a C-ordered reshape to ``(..., N+1, N+1, N+1)``
exposes axes ``(z, y, x)`` last-to-first.

Faces are numbered ``0:-x, 1:+x, 2:-y, 3:+y, 4:-z, 5:+z`` and each face's
node list is ordered so that, on a uniform conforming mesh, face ``2f+1`` of
an element and face ``2f`` of its neighbor enumerate geometrically
coincident nodes in the same order — the property that makes the Flux
kernel's inter-block memcpy a straight row-range copy (§5.1).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.dg.quadrature import gll_points_weights

__all__ = ["ReferenceElement", "FACE_NORMALS", "FACE_AXIS", "FACE_SIDE", "opposite_face"]

#: Outward unit normal of each reference face, indexed by face id.
FACE_NORMALS = np.array(
    [
        [-1.0, 0.0, 0.0],
        [1.0, 0.0, 0.0],
        [0.0, -1.0, 0.0],
        [0.0, 1.0, 0.0],
        [0.0, 0.0, -1.0],
        [0.0, 0.0, 1.0],
    ]
)

#: Axis (0=x, 1=y, 2=z) each face is orthogonal to.
FACE_AXIS = np.array([0, 0, 1, 1, 2, 2])

#: Whether the face sits at the low (-1) or high (+1) end of its axis.
FACE_SIDE = np.array([0, 1, 0, 1, 0, 1])


def opposite_face(face: int) -> int:
    """The face id that touches ``face`` across a conforming interface."""
    return face ^ 1


class ReferenceElement:
    """Order-``N`` GLL tensor-product hexahedral element.

    Parameters
    ----------
    order:
        Polynomial order ``N``; the element has ``(N+1)^3`` nodes.  The
        paper's benchmarks use ``order=7`` (512 nodes, one per memory-block
        row half).
    """

    def __init__(self, order: int):
        if order < 1:
            raise ValueError(f"order must be >= 1, got {order}")
        self.order = int(order)
        self.npts = self.order + 1
        self.n_nodes = self.npts**3
        self.nodes_1d, self.weights_1d = gll_points_weights(self.order)
        self.diff_1d = self._differentiation_matrix(self.nodes_1d)
        #: GLL endpoint weight, the denominator of the diagonal surface lift.
        self.w_end = float(self.weights_1d[0])
        self._build_node_tables()

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #

    @staticmethod
    def _differentiation_matrix(x: np.ndarray) -> np.ndarray:
        """Lagrange differentiation matrix on nodes ``x`` (barycentric form).

        ``D[i, j] = l_j'(x_i)``; rows sum to zero (derivative of constants),
        which the tests assert.
        """
        n = x.size
        # barycentric weights
        c = np.ones(n)
        for j in range(n):
            for m in range(n):
                if m != j:
                    c[j] *= x[j] - x[m]
        d = np.zeros((n, n))
        for i in range(n):
            for j in range(n):
                if i != j:
                    d[i, j] = (c[i] / c[j]) / (x[i] - x[j])
        # diagonal via negative row-sum (exactness on constants)
        d[np.arange(n), np.arange(n)] = -d.sum(axis=1)
        return d

    def _build_node_tables(self) -> None:
        p = self.npts
        i, j, k = np.meshgrid(np.arange(p), np.arange(p), np.arange(p), indexing="ij")
        # flatten n = i + p j + p^2 k
        flat = (i + p * j + p * p * k).ravel()
        order = np.argsort(flat)
        #: (n_nodes, 3) reference coordinates of each node, in flat order.
        self.node_coords = np.column_stack(
            [
                self.nodes_1d[i.ravel()[order]],
                self.nodes_1d[j.ravel()[order]],
                self.nodes_1d[k.ravel()[order]],
            ]
        )
        #: (n_nodes,) tensor-product quadrature weight of each node.
        wi = self.weights_1d
        self.node_weights = (
            wi[i.ravel()[order]] * wi[j.ravel()[order]] * wi[k.ravel()[order]]
        )

        # face index maps: face_nodes[f] lists flat node ids on face f,
        # ordered by the two in-face axes in increasing-axis order.
        self.face_nodes = np.empty((6, p * p), dtype=np.int64)
        a = np.arange(p)
        bb, aa = np.meshgrid(a, a, indexing="ij")  # slow axis bb, fast axis aa
        for face in range(6):
            axis = FACE_AXIS[face]
            fixed = 0 if FACE_SIDE[face] == 0 else p - 1
            if axis == 0:  # in-face axes (y, z): n = fixed + p*j + p^2*k
                ids = fixed + p * aa + p * p * bb
            elif axis == 1:  # in-face axes (x, z)
                ids = aa + p * fixed + p * p * bb
            else:  # in-face axes (x, y)
                ids = aa + p * bb + p * p * fixed
            self.face_nodes[face] = ids.ravel()

        #: (n_face_nodes,) 2-D quadrature weight for each face node.
        self.face_weights = (wi[aa.ravel()] * wi[bb.ravel()]).astype(np.float64)

    # ------------------------------------------------------------------ #
    # derivative operators
    # ------------------------------------------------------------------ #

    def _as_grid(self, field: np.ndarray) -> np.ndarray:
        """View a ``(..., n_nodes)`` field as ``(..., z, y, x)``."""
        p = self.npts
        return field.reshape(field.shape[:-1] + (p, p, p))

    def deriv(self, field: np.ndarray, axis: int) -> np.ndarray:
        """Reference-space derivative along ``axis`` (0=x, 1=y, 2=z).

        ``field`` has shape ``(..., n_nodes)``; the result has the same
        shape.  Multiply by ``2 / h`` for a physical derivative on an
        element of width ``h``.
        """
        g = self._as_grid(field)
        d = self.diff_1d
        if axis == 0:
            out = np.einsum("ab,...zyb->...zya", d, g)
        elif axis == 1:
            out = np.einsum("ab,...zby->...zay", d, g)
        elif axis == 2:
            out = np.einsum("ab,...bzy->...azy", d, g)
        else:
            raise ValueError(f"axis must be 0, 1 or 2, got {axis}")
        return out.reshape(field.shape)

    def grad(self, field: np.ndarray) -> np.ndarray:
        """Reference-space gradient, shape ``(3, ..., n_nodes)``."""
        return np.stack([self.deriv(field, a) for a in range(3)])

    def div(self, fx: np.ndarray, fy: np.ndarray, fz: np.ndarray) -> np.ndarray:
        """Reference-space divergence of a vector field."""
        return self.deriv(fx, 0) + self.deriv(fy, 1) + self.deriv(fz, 2)

    # ------------------------------------------------------------------ #
    # interpolation / integration
    # ------------------------------------------------------------------ #

    def integrate(self, field: np.ndarray) -> np.ndarray:
        """Reference-element integral of a nodal field (GLL quadrature)."""
        return field @ self.node_weights

    @lru_cache(maxsize=8)
    def _face_lift_scale(self) -> float:
        """1 / w_endpoint — the diagonal lift factor at face nodes."""
        return 1.0 / self.w_end

    @property
    def lift_scale(self) -> float:
        """Diagonal DG-SEM surface-lift factor ``1 / w_end``.

        The full physical lift at a face node of an element of width ``h``
        is ``(2 / h) * lift_scale``.
        """
        return self._face_lift_scale()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ReferenceElement(order={self.order}, n_nodes={self.n_nodes})"
