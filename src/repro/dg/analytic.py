"""Closed-form reference solutions for solver verification.

Periodic plane waves for homogeneous acoustic and elastic media.  Each
returns a full state stack evaluated at the mesh's physical node
coordinates, so convergence and conservation tests can compare the dG
solution against the exact field at any time.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "acoustic_plane_wave",
    "elastic_plane_p_wave",
    "elastic_plane_s_wave",
    "acoustic_standing_wave",
]


def _node_xyz(mesh, element) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    coords = mesh.node_coordinates(element.node_coords)  # (K, nn, 3)
    return coords[..., 0], coords[..., 1], coords[..., 2]


def acoustic_plane_wave(mesh, element, material, k_int=(1, 0, 0), t: float = 0.0) -> np.ndarray:
    """Acoustic plane wave ``p = sin(k.x - w t)``, ``v = (p / Z) khat``.

    ``k_int`` are integer wavenumbers so ``k = 2 pi k_int / L`` is periodic
    on the domain.  Requires homogeneous material.
    """
    kappa = float(material.kappa[0])
    rho = float(material.rho[0])
    if not (np.allclose(material.kappa, kappa) and np.allclose(material.rho, rho)):
        raise ValueError("plane-wave solution requires homogeneous material")
    c = np.sqrt(kappa / rho)
    z = rho * c
    k = 2.0 * np.pi * np.asarray(k_int, dtype=np.float64) / mesh.extent
    kmag = np.linalg.norm(k)
    if kmag == 0:
        raise ValueError("k_int must be nonzero")
    khat = k / kmag
    omega = c * kmag
    x, y, zc = _node_xyz(mesh, element)
    phase = k[0] * x + k[1] * y + k[2] * zc - omega * t
    p = np.sin(phase)
    state = np.empty((4,) + p.shape)
    state[0] = p
    for i in range(3):
        state[1 + i] = (khat[i] / z) * p
    return state


def acoustic_standing_wave(mesh, element, material, modes=(1, 1, 1), t: float = 0.0) -> np.ndarray:
    """Standing acoustic mode ``p = cos(w t) prod cos(k_i x_i)`` (periodic).

    Velocities follow from ``v_t = -(1/rho) grad p``.
    """
    kappa = float(material.kappa[0])
    rho = float(material.rho[0])
    c = np.sqrt(kappa / rho)
    k = 2.0 * np.pi * np.asarray(modes, dtype=np.float64) / mesh.extent
    kmag = np.linalg.norm(k)
    omega = c * kmag
    x, y, zc = _node_xyz(mesh, element)
    cx, cy, cz = np.cos(k[0] * x), np.cos(k[1] * y), np.cos(k[2] * zc)
    sx, sy, sz = np.sin(k[0] * x), np.sin(k[1] * y), np.sin(k[2] * zc)
    state = np.empty((4,) + x.shape)
    state[0] = np.cos(omega * t) * cx * cy * cz
    # from v_t = -(1/rho) grad p: v_i = +(k_i/(rho w)) sin(w t) s_i prod(c)
    amp = np.sin(omega * t) / (rho * omega) if omega > 0 else 0.0
    state[1] = amp * k[0] * sx * cy * cz
    state[2] = amp * k[1] * cx * sy * cz
    state[3] = amp * k[2] * cx * cy * sz
    return state


def elastic_plane_p_wave(mesh, element, material, k_int=(1, 0, 0), t: float = 0.0) -> np.ndarray:
    """Elastic P-wave: ``u = khat g(khat.x - cp t)`` with ``g = sin``.

    Yields ``v = -cp khat g'`` and ``sigma = (lam I + 2 mu khat khat) g'``.
    """
    lam = float(material.lam[0])
    mu = float(material.mu[0])
    rho = float(material.rho[0])
    cp = np.sqrt((lam + 2.0 * mu) / rho)
    k = 2.0 * np.pi * np.asarray(k_int, dtype=np.float64) / mesh.extent
    kmag = np.linalg.norm(k)
    khat = k / kmag
    x, y, zc = _node_xyz(mesh, element)
    phase = k[0] * x + k[1] * y + k[2] * zc - cp * kmag * t
    gp = kmag * np.cos(phase)  # g' with chain rule absorbed into d/d(khat.x)
    # g(s) = sin(|k| s - ...) in the khat.x variable: g'(khat.x) = |k| cos(phase)
    state = np.empty((9,) + x.shape)
    voigt = ((0, 0), (1, 1), (2, 2), (1, 2), (0, 2), (0, 1))
    for q, (i, j) in enumerate(voigt):
        state[q] = (lam * (1.0 if i == j else 0.0) + 2.0 * mu * khat[i] * khat[j]) * gp
    for i in range(3):
        state[6 + i] = -cp * khat[i] * gp
    return state


def elastic_plane_s_wave(
    mesh, element, material, k_int=(1, 0, 0), polarization=(0, 1, 0), t: float = 0.0
) -> np.ndarray:
    """Elastic S-wave: ``u = d g(khat.x - cs t)`` with ``d`` orthogonal to ``khat``."""
    mu = float(material.mu[0])
    rho = float(material.rho[0])
    if mu <= 0:
        raise ValueError("S-wave needs mu > 0")
    cs = np.sqrt(mu / rho)
    k = 2.0 * np.pi * np.asarray(k_int, dtype=np.float64) / mesh.extent
    kmag = np.linalg.norm(k)
    khat = k / kmag
    d = np.asarray(polarization, dtype=np.float64)
    d = d - (d @ khat) * khat
    dn = np.linalg.norm(d)
    if dn < 1e-12:
        raise ValueError("polarization parallel to propagation direction")
    d /= dn
    x, y, zc = _node_xyz(mesh, element)
    phase = k[0] * x + k[1] * y + k[2] * zc - cs * kmag * t
    gp = kmag * np.cos(phase)
    state = np.empty((9,) + x.shape)
    voigt = ((0, 0), (1, 1), (2, 2), (1, 2), (0, 2), (0, 1))
    for q, (i, j) in enumerate(voigt):
        state[q] = mu * (khat[i] * d[j] + khat[j] * d[i]) * gp
    for i in range(3):
        state[6 + i] = -cs * d[i] * gp
    return state
