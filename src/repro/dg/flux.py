"""Interface (numerical) flux solvers: central and exact-Riemann (upwind).

These implement the paper's two flux choices — the benchmarks are
"elastic wave simulation with central flux solver" and "elastic wave
simulation with Riemann flux solver" (§7.2); the acoustic benchmarks use
the Riemann (upwind) flux.

The Riemann solvers solve the exact linear Riemann problem along the face
normal.  For the acoustic system with impedance ``Z = rho c``::

    p*  = (Z+ p- + Z- p+ + Z- Z+ (vn- - vn+)) / (Z- + Z+)
    vn* = (Z- vn- + Z+ vn+ + (p- - p+))       / (Z- + Z+)

For the elastic system the traction/velocity pair splits into a normal
(P-wave, impedance ``Zp``) and a tangential (S-wave, impedance ``Zs``)
subsystem, each an acoustic-like Riemann problem (cf. Wilcox et al. 2010,
the paper's reference [46]).  ``Zs = 0`` on both sides (fluid-fluid)
degenerates gracefully: no shear wave, tangential traction is zero.

All functions are shape-polymorphic over numpy broadcasting; scalars come
as ``(...,)`` arrays and vectors as ``(3, ...)`` stacks.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "acoustic_central",
    "acoustic_riemann",
    "elastic_central",
    "elastic_riemann",
    "CENTRAL",
    "RIEMANN",
    "FLUX_KINDS",
]

CENTRAL = "central"
RIEMANN = "riemann"
FLUX_KINDS = (CENTRAL, RIEMANN)


def acoustic_central(p_m, p_p, vn_m, vn_p, z_m=None, z_p=None):
    """Central (average) flux for the acoustic system.

    Impedances are accepted and ignored so both flux kinds share a call
    signature.  Returns ``(p_star, vn_star)``.
    """
    return 0.5 * (p_m + p_p), 0.5 * (vn_m + vn_p)


def acoustic_riemann(p_m, p_p, vn_m, vn_p, z_m, z_p):
    """Exact Riemann (upwind) flux for the acoustic system.

    ``z_m``/``z_p`` are the acoustic impedances of the interior/exterior
    elements.  Returns ``(p_star, vn_star)``.
    """
    denom = z_m + z_p
    p_star = (z_p * p_m + z_m * p_p + z_m * z_p * (vn_m - vn_p)) / denom
    vn_star = (z_m * vn_m + z_p * vn_p + (p_m - p_p)) / denom
    return p_star, vn_star


def elastic_central(t_m, t_p, v_m, v_p, normal=None, zp_m=None, zp_p=None, zs_m=None, zs_p=None):
    """Central flux for the elastic system: average traction and velocity."""
    return 0.5 * (t_m + t_p), 0.5 * (v_m + v_p)


def elastic_riemann(t_m, t_p, v_m, v_p, normal, zp_m, zp_p, zs_m, zs_p):
    """Exact Riemann flux for the elastic system.

    Parameters
    ----------
    t_m, t_p:
        Interior/exterior tractions ``sigma . n``, shape ``(3, ...)``.
    v_m, v_p:
        Interior/exterior velocities, shape ``(3, ...)``.
    normal:
        Outward unit normal of the interior element, shape ``(3,)`` or
        broadcastable ``(3, ...)``.
    zp_*, zs_*:
        P- and S-wave impedances on each side (broadcastable scalars).

    Returns
    -------
    ``(t_star, v_star)``, each of shape ``(3, ...)``.
    """
    normal = np.asarray(normal, dtype=np.float64)
    if normal.ndim == 1:
        normal = normal.reshape(3, *([1] * (t_m.ndim - 1)))

    tn_m = np.sum(t_m * normal, axis=0)
    tn_p = np.sum(t_p * normal, axis=0)
    vn_m = np.sum(v_m * normal, axis=0)
    vn_p = np.sum(v_p * normal, axis=0)

    tt_m = t_m - tn_m * normal
    tt_p = t_p - tn_p * normal
    vt_m = v_m - vn_m * normal
    vt_p = v_p - vn_p * normal

    # P-wave (normal) Riemann problem: acoustic-like with p = -tn.
    zp_sum = zp_m + zp_p
    tn_star = (zp_p * tn_m + zp_m * tn_p - zp_m * zp_p * (vn_m - vn_p)) / zp_sum
    vn_star = (zp_m * vn_m + zp_p * vn_p + (tn_p - tn_m)) / zp_sum

    # S-wave (tangential) Riemann problem; fluid-fluid (Zs sum == 0) has no
    # shear wave: zero tangential traction, averaged tangential slip.
    zs_sum = zs_m + zs_p
    shear = zs_sum > 0
    safe = np.where(shear, zs_sum, 1.0)
    tt_star = np.where(shear, (zs_p * tt_m + zs_m * tt_p - zs_m * zs_p * (vt_m - vt_p)) / safe, 0.0)
    vt_star = np.where(shear, (zs_m * vt_m + zs_p * vt_p + (tt_p - tt_m)) / safe, 0.5 * (vt_m + vt_p))

    t_star = tn_star * normal + tt_star
    v_star = vn_star * normal + vt_star
    return t_star, v_star
