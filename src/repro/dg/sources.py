"""Seismic source terms: Ricker wavelets and point injections.

Wave simulations in exploration geophysics are driven by band-limited
point sources; the Ricker wavelet (second derivative of a Gaussian) is the
de-facto standard.  Sources inject into the pressure field (acoustic) or
the stress trace (elastic, an explosive source).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ricker_wavelet", "RickerSource"]


def ricker_wavelet(t, peak_frequency: float, delay: float | None = None):
    """Ricker wavelet ``(1 - 2 a) exp(-a)`` with ``a = (pi f (t - t0))^2``.

    ``delay`` defaults to ``1.5 / f`` so the wavelet starts near zero.
    """
    if peak_frequency <= 0:
        raise ValueError("peak_frequency must be positive")
    t0 = 1.5 / peak_frequency if delay is None else delay
    a = (np.pi * peak_frequency * (np.asarray(t, dtype=np.float64) - t0)) ** 2
    return (1.0 - 2.0 * a) * np.exp(-a)


@dataclass
class RickerSource:
    """A Ricker point source injected at the node nearest ``position``.

    Parameters
    ----------
    position:
        Physical source location.
    peak_frequency:
        Ricker peak frequency.
    amplitude:
        Scale factor applied to the wavelet.
    variable:
        Index of the state variable receiving the injection (0 = pressure
        for acoustic; for elastic, trace injection hits variables 0-2).
    explosive:
        If True and the state has 9 variables, inject equally into the
        three normal stresses (an isotropic moment source).
    """

    position: tuple
    peak_frequency: float
    amplitude: float = 1.0
    variable: int = 0
    explosive: bool = False
    delay: float | None = None
    _element: int = field(default=-1, init=False)
    _node: int = field(default=-1, init=False)

    def locate(self, mesh, element) -> tuple[int, int]:
        """Find (element, node) nearest to the source position; cached."""
        if self._element >= 0:
            return self._element, self._node
        pos = np.asarray(self.position, dtype=np.float64)
        coords = mesh.node_coordinates(element.node_coords)  # (K, nn, 3)
        d2 = np.sum((coords - pos) ** 2, axis=-1)
        e, n = np.unravel_index(np.argmin(d2), d2.shape)
        self._element, self._node = int(e), int(n)
        return self._element, self._node

    def add_to_rhs(self, rhs: np.ndarray, t: float, mesh, element) -> None:
        """Accumulate the source contribution into a RHS evaluation.

        The injection is scaled by the inverse nodal mass so the source has
        a mesh-independent moment (point-source consistency).
        """
        e, n = self.locate(mesh, element)
        w = element.node_weights[n] * (mesh.h / 2.0) ** 3
        amp = self.amplitude * ricker_wavelet(t, self.peak_frequency, self.delay) / w
        if self.explosive and rhs.shape[0] >= 6:
            rhs[0, e, n] += amp
            rhs[1, e, n] += amp
            rhs[2, e, n] += amp
        else:
            rhs[self.variable, e, n] += amp
