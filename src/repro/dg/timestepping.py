"""Low-storage Runge-Kutta time integration.

The paper states "there are five integration steps in each time-step"
(§2.2) and reserves per-node *auxiliaries* storage "needed during the
temporal integration" (Table 1) — exactly the single extra register of a
five-stage low-storage Runge-Kutta scheme.  We use the classic
Carpenter-Kennedy LSRK(5,4) coefficients.
"""

from __future__ import annotations

import numpy as np

__all__ = ["LSRK45", "cfl_timestep"]

#: Carpenter & Kennedy (1994) five-stage fourth-order low-storage RK.
_LSRK45_A = np.array(
    [
        0.0,
        -567301805773.0 / 1357537059087.0,
        -2404267990393.0 / 2016746695238.0,
        -3550918686646.0 / 2091501179385.0,
        -1275806237668.0 / 842570457699.0,
    ]
)
_LSRK45_B = np.array(
    [
        1432997174477.0 / 9575080441755.0,
        5161836677717.0 / 13612068292357.0,
        1720146321549.0 / 2090206949498.0,
        3134564353537.0 / 4481467310338.0,
        2277821191437.0 / 14882151754819.0,
    ]
)
_LSRK45_C = np.array(
    [
        0.0,
        1432997174477.0 / 9575080441755.0,
        2526269341429.0 / 6820363962896.0,
        2006345519317.0 / 3224310063776.0,
        2802321613138.0 / 2924317926251.0,
    ]
)


class LSRK45:
    """Five-stage, fourth-order, low-storage Runge-Kutta integrator.

    Uses a single auxiliary register (the paper's *auxiliaries*)::

        k   <- A_s k + dt * rhs(q, t + C_s dt)
        q   <- q + B_s k

    ``rhs`` may be time-dependent (``rhs(state, t)``) or autonomous
    (``rhs(state)``); both call signatures are probed once.
    """

    n_stages = 5
    order = 4
    A = _LSRK45_A
    B = _LSRK45_B
    C = _LSRK45_C

    def __init__(self, rhs):
        self.rhs = rhs
        self._time_dependent: bool | None = None

    def _eval(self, state: np.ndarray, t: float) -> np.ndarray:
        if self._time_dependent is None:
            try:
                out = self.rhs(state, t)
                self._time_dependent = True
                return out
            except TypeError:
                self._time_dependent = False
                return self.rhs(state)
        if self._time_dependent:
            return self.rhs(state, t)
        return self.rhs(state)

    def step(self, state: np.ndarray, t: float, dt: float, aux: np.ndarray | None = None):
        """Advance ``state`` in place by one time-step; returns ``(state, aux)``."""
        if aux is None:
            aux = np.zeros_like(state)
        for s in range(self.n_stages):
            k = self._eval(state, t + self.C[s] * dt)
            aux *= self.A[s]
            aux += dt * k
            state += self.B[s] * aux
        return state, aux

    def integrate(self, state: np.ndarray, t0: float, dt: float, n_steps: int, callback=None):
        """Run ``n_steps`` time-steps; optional per-step ``callback(step, t, state)``."""
        aux = np.zeros_like(state)
        t = t0
        for step in range(n_steps):
            self.step(state, t, dt, aux)
            t = t0 + (step + 1) * dt
            if callback is not None:
                callback(step, t, state)
        return state, t


def cfl_timestep(h: float, max_speed: float, order: int, cfl: float = 0.5) -> float:
    """Stable time-step estimate for DG-SEM.

    ``dt = cfl * h / (c_max (N+1)^2)`` — the standard ``1/N^2`` spectral
    penalty of GLL collocation.
    """
    if h <= 0 or max_speed <= 0:
        raise ValueError("h and max_speed must be positive")
    if order < 1:
        raise ValueError("order must be >= 1")
    return cfl * h / (max_speed * (order + 1) ** 2)
