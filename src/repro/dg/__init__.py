"""Discontinuous-Galerkin wave-simulation substrate.

This subpackage is the *functional* wave simulator that Wave-PIM maps onto
hardware: a nodal DG-SEM solver on uniform hexahedral meshes with
Gauss-Legendre-Lobatto (GLL) collocation, supporting the acoustic and the
elastic (velocity-stress) wave equations, central and exact-Riemann (upwind)
interface fluxes, and low-storage five-stage Runge-Kutta time integration
(the paper's "five integration steps in each time-step").

It doubles as the single source of truth for operation counts used by both
the GPU roofline model and the PIM instruction-stream compiler.
"""

from repro.dg.quadrature import gll_points_weights, gauss_points_weights
from repro.dg.reference_element import ReferenceElement
from repro.dg.mesh import HexMesh
from repro.dg.materials import AcousticMaterial, ElasticMaterial
from repro.dg.acoustic import AcousticOperator, ACOUSTIC_VARS
from repro.dg.elastic import ElasticOperator, ELASTIC_VARS
from repro.dg.timestepping import LSRK45, cfl_timestep
from repro.dg.solver import WaveSolver, SolverConfig
from repro.dg.sources import RickerSource, ricker_wavelet
from repro.dg.maxwell import ElectromagneticMaterial, MaxwellOperator, MAXWELL_VARS

__all__ = [
    "gll_points_weights",
    "gauss_points_weights",
    "ReferenceElement",
    "HexMesh",
    "AcousticMaterial",
    "ElasticMaterial",
    "AcousticOperator",
    "ElasticOperator",
    "ACOUSTIC_VARS",
    "ELASTIC_VARS",
    "LSRK45",
    "cfl_timestep",
    "WaveSolver",
    "SolverConfig",
    "RickerSource",
    "ricker_wavelet",
    "ElectromagneticMaterial",
    "MaxwellOperator",
    "MAXWELL_VARS",
]
