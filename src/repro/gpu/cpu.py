"""Dual-Xeon CPU baseline for the §3.1 speedup comparison.

"Our CPU code uses p4est for mesh generation and workload distribution on
multiple CPUs.  It takes significant amount of time to run even a
small-sized problem on high-end processors." — a research dG code with
indirect addressing and little vectorization.  The model is the same
roofline as the GPUs with the CpuSpec's documented efficiency factors.
"""

from __future__ import annotations

from repro.gpu.kernels import benchmark_traffic
from repro.gpu.roofline import RK_STAGES_PER_STEP
from repro.gpu.specs import CPU_BASELINE, CpuSpec
from repro.workloads.benchmarks import BenchmarkSpec
from repro.workloads.opcount import OpCount

__all__ = ["cpu_benchmark_time", "cpu_benchmark_energy"]


def cpu_stage_time(spec: BenchmarkSpec, ops: OpCount, cpu: CpuSpec = CPU_BASELINE) -> float:
    """Roofline time of one RK stage on the CPU baseline (unfused)."""
    spill = cpu.cache_spill_factor if spec.state_bytes > cpu.llc_bytes else 1.0
    total = 0.0
    for k in benchmark_traffic(spec, ops, fused=False):
        t_compute = k.flops / (cpu.effective_flops * spill)
        t_memory = k.bytes_moved / (cpu.effective_bw * spill)
        total += max(t_compute, t_memory)
    return total


def cpu_benchmark_time(
    spec: BenchmarkSpec, ops: OpCount, n_steps: int, cpu: CpuSpec = CPU_BASELINE
) -> float:
    """Full-run wall time on the CPU baseline."""
    return cpu_stage_time(spec, ops, cpu) * RK_STAGES_PER_STEP * n_steps


def cpu_benchmark_energy(
    spec: BenchmarkSpec, ops: OpCount, n_steps: int, cpu: CpuSpec = CPU_BASELINE
) -> float:
    """Full-run energy: both sockets near-TDP (compute-saturated)."""
    return 0.85 * cpu.tdp_w * cpu_benchmark_time(spec, ops, n_steps, cpu)
