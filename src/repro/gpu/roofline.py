"""Roofline timing model for the GPU implementations.

``kernel_time = max(flops / (peak * ce), bytes / (bw * be)) + launch``

The efficiency pairs ``(ce, be)`` encode the paper's profiling findings
(§3.1): Volume scales with SMs until bandwidth saturates; Integration is
dominated by memory accesses; Flux "is the most inefficient kernel, since
it has a large divergence that degrades the parallelism"; the fused
kernel trades recomputation for locality.  They are fixed across GPUs and
benchmarks — per-platform differences come only from the Table 2 specs —
so relative orderings are genuine model output, not per-case tuning.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.kernels import benchmark_traffic
from repro.gpu.specs import GpuSpec
from repro.workloads.benchmarks import BenchmarkSpec
from repro.workloads.opcount import OpCount

__all__ = ["KERNEL_EFFICIENCY", "GpuTiming", "gpu_benchmark_time", "RK_STAGES_PER_STEP"]

RK_STAGES_PER_STEP = 5

#: kernel kind -> (compute efficiency, bandwidth efficiency)
KERNEL_EFFICIENCY = {
    "volume": (0.55, 0.75),
    "flux": (0.22, 0.40),  # divergence-crippled gather kernel
    "integration": (0.60, 0.80),  # pure streaming
    "fused": (0.45, 0.70),
}

#: fixed per-launch overhead (driver + grid launch), seconds.
KERNEL_LAUNCH_OVERHEAD_S = 5e-6


@dataclass(frozen=True)
class GpuTiming:
    """One benchmark's timing on one GPU platform."""

    gpu: str
    benchmark: str
    fused: bool
    stage_time_s: float
    kernel_times_s: dict
    bound: dict  # kernel -> "memory" | "compute"

    def total_time_s(self, n_steps: int) -> float:
        return self.stage_time_s * RK_STAGES_PER_STEP * n_steps


def gpu_benchmark_time(spec: BenchmarkSpec, ops: OpCount, gpu: GpuSpec, fused: bool) -> GpuTiming:
    """Roofline time of one RK stage of ``spec`` on ``gpu``."""
    kernel_times = {}
    bound = {}
    total = 0.0
    for k in benchmark_traffic(spec, ops, fused):
        ce, be = KERNEL_EFFICIENCY[k.kind]
        t_compute = k.flops / (gpu.peak_flops * ce)
        t_memory = k.bytes_moved / (gpu.memory_bw_bytes * be)
        t = max(t_compute, t_memory) + KERNEL_LAUNCH_OVERHEAD_S
        kernel_times[k.name] = t
        bound[k.name] = "compute" if t_compute > t_memory else "memory"
        total += t
    return GpuTiming(
        gpu=gpu.name,
        benchmark=spec.name,
        fused=fused,
        stage_time_s=total,
        kernel_times_s=kernel_times,
        bound=bound,
    )
