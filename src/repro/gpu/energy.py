"""GPU + host energy model (standing in for Nvidia-SMI / RAPL, §7.1-7.2).

Measured board power under a memory-bound HPC load sits well below TDP;
we model it as ``P = idle + utilization_factor * (tdp - idle)`` with the
utilization factor keyed to what binds the kernel (memory-bound kernels
keep the SMs partly idle).  The host is charged a constant activity
fraction — the CUDA driver spins while kernels run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.roofline import GpuTiming
from repro.gpu.specs import GpuSpec

__all__ = ["GpuEnergy", "gpu_benchmark_energy"]

#: fraction of TDP drawn at idle (fans, memory refresh, leakage).
IDLE_FRACTION = 0.20
#: activity factors by boundedness of the stage-dominant kernel.
ACTIVITY = {"memory": 0.65, "compute": 0.90}
#: host CPU busy fraction while the GPU runs (driver + MPI polling).
HOST_ACTIVITY = 0.45


@dataclass(frozen=True)
class GpuEnergy:
    gpu: str
    benchmark: str
    time_s: float
    gpu_energy_j: float
    host_energy_j: float

    @property
    def energy_j(self) -> float:
        return self.gpu_energy_j + self.host_energy_j

    @property
    def power_w(self) -> float:
        return self.energy_j / self.time_s if self.time_s else 0.0


def gpu_benchmark_energy(timing: GpuTiming, gpu: GpuSpec, n_steps: int) -> GpuEnergy:
    """Energy of a full run: GPU board + host CPU over the wall time."""
    time_s = timing.total_time_s(n_steps)
    # time-weighted activity across kernels
    total = sum(timing.kernel_times_s.values())
    act = sum(
        ACTIVITY[timing.bound[k]] * t for k, t in timing.kernel_times_s.items()
    ) / total if total else 0.0
    gpu_power = gpu.tdp_w * (IDLE_FRACTION + act * (1.0 - IDLE_FRACTION))
    host_power = gpu.host_tdp_w * HOST_ACTIVITY
    return GpuEnergy(
        gpu=gpu.name,
        benchmark=timing.benchmark,
        time_s=time_s,
        gpu_energy_j=gpu_power * time_s,
        host_energy_j=host_power * time_s,
    )
