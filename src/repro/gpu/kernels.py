"""Per-kernel GPU memory traffic and flop model.

Unfused (the paper's baseline on the GTX 1080Ti): three separate kernels
per RK stage, each streaming the state through DRAM:

* Volume: read variables + per-element constants, write contributions;
* Flux: read own and neighbor variables (gather-heavy), write
  contributions — the paper calls it "the most inefficient kernel" with
  "a large divergence";
* Integration: read contributions + auxiliaries + variables, write
  auxiliaries + variables ("the memory accesses dominate this kernel").

Fused (§7.2): Volume and Flux merged into one kernel ("to minimize the
data movements"), with better per-thread locality.

Flop counts come from :mod:`repro.workloads.opcount` — the same streams
the PIM compiler prices.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.benchmarks import BenchmarkSpec
from repro.workloads.opcount import OpCount

__all__ = ["KernelTraffic", "benchmark_traffic"]


@dataclass(frozen=True)
class KernelTraffic:
    """Bytes moved and flops executed by one kernel launch."""

    name: str
    bytes_moved: float
    flops: float
    #: kernel-specific efficiency class ("volume" | "flux" | "integration"
    #: | "fused") used by the roofline's efficiency table
    kind: str

    @property
    def arithmetic_intensity(self) -> float:
        return self.flops / self.bytes_moved if self.bytes_moved else float("inf")


def benchmark_traffic(spec: BenchmarkSpec, ops: OpCount, fused: bool) -> list:
    """Kernel launch set for one RK stage of one benchmark.

    State-equivalents per kernel (one state = all unknowns once):

    ========== ======================= =====================
    kernel      unfused                 fused
    ========== ======================= =====================
    Volume      vars+const in, contrib  (volume+flux): 2.5 in
                out -> 2.5 states       (own+neighb+const),
    Flux        own+neighbor+const in,  contrib out -> 3.5
                contrib accum -> 3.5
    Integration contrib+aux+vars in, aux+vars out -> 5 states (both)
    ========== ======================= =====================
    """
    state = float(spec.state_bytes)
    if fused:
        return [
            KernelTraffic(
                name="volume+flux",
                bytes_moved=3.5 * state,
                flops=float(ops.fp_ops_volume + ops.fp_ops_flux),
                kind="fused",
            ),
            KernelTraffic(
                name="integration",
                bytes_moved=5.0 * state,
                flops=float(ops.fp_ops_integration),
                kind="integration",
            ),
        ]
    return [
        KernelTraffic(
            name="volume",
            bytes_moved=2.5 * state,
            flops=float(ops.fp_ops_volume),
            kind="volume",
        ),
        KernelTraffic(
            name="flux",
            bytes_moved=3.5 * state,
            flops=float(ops.fp_ops_flux),
            kind="flux",
        ),
        KernelTraffic(
            name="integration",
            bytes_moved=5.0 * state,
            flops=float(ops.fp_ops_integration),
            kind="integration",
        ),
    ]
