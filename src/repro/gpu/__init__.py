"""GPU and CPU baselines (paper §3.1, §7, Table 2).

The paper measures three real GPUs (GTX 1080Ti, Tesla P100, Tesla V100)
and finds the wave kernels **memory-bandwidth bound** even at 900 GB/s
(§3.1) — precisely the regime a roofline model reproduces.  This package
prices the unfused and fused GPU implementations per kernel from the same
operation counts the PIM compiler uses, plus a dual-Xeon CPU baseline for
the §3.1 speedup table, and a power-state energy model standing in for
Nvidia-SMI / RAPL measurements.
"""

from repro.gpu.specs import GpuSpec, GPU_SPECS, CPU_BASELINE
from repro.gpu.kernels import KernelTraffic, benchmark_traffic
from repro.gpu.roofline import GpuTiming, gpu_benchmark_time, KERNEL_EFFICIENCY
from repro.gpu.energy import gpu_benchmark_energy
from repro.gpu.cpu import cpu_benchmark_time

__all__ = [
    "GpuSpec",
    "GPU_SPECS",
    "CPU_BASELINE",
    "KernelTraffic",
    "benchmark_traffic",
    "GpuTiming",
    "gpu_benchmark_time",
    "KERNEL_EFFICIENCY",
    "gpu_benchmark_energy",
    "cpu_benchmark_time",
]
