"""Hardware specifications: the GPU/CPU columns of Table 2.

Peak throughputs come from the Nvidia whitepapers the paper cites; power
figures are the published board/TDP values (the paper measured power with
Nvidia-SMI/RAPL; we model measured power as a utilization-dependent
fraction of TDP in :mod:`repro.gpu.energy`).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GpuSpec", "GPU_SPECS", "CPU_BASELINE", "CpuSpec"]


@dataclass(frozen=True)
class GpuSpec:
    """One GPU platform of Table 2."""

    name: str
    process_node: str
    clock_mhz: float
    memory_gb: int
    memory_type: str
    memory_bw_gbs: float
    fp32_cores: int
    peak_tflops: float
    tdp_w: float
    host_cpu: str
    host_tdp_w: float
    l2_kb: int
    register_kb: int

    @property
    def memory_bw_bytes(self) -> float:
        return self.memory_bw_gbs * 1e9

    @property
    def peak_flops(self) -> float:
        return self.peak_tflops * 1e12


GPU_SPECS = {
    "1080Ti": GpuSpec(
        name="GTX 1080Ti",
        process_node="16nm",
        clock_mhz=1530.0,
        memory_gb=11,
        memory_type="GDDR5X",
        memory_bw_gbs=484.0,
        fp32_cores=3584,
        peak_tflops=11.5,
        tdp_w=250.0,
        host_cpu="Xeon E5-2637 v4",
        host_tdp_w=135.0,
        l2_kb=2816,
        register_kb=7168,
    ),
    "P100": GpuSpec(
        name="Tesla P100",
        process_node="16nm",
        clock_mhz=1480.0,
        memory_gb=16,
        memory_type="HBM2",
        memory_bw_gbs=720.0,
        fp32_cores=3584,
        peak_tflops=10.6,
        tdp_w=300.0,
        host_cpu="Xeon Platinum 8160",
        host_tdp_w=2 * 150.0,
        l2_kb=4096,
        register_kb=14336,
    ),
    "V100": GpuSpec(
        name="Tesla V100",
        process_node="12nm",
        clock_mhz=1582.0,
        memory_gb=16,
        memory_type="HBM2",
        memory_bw_gbs=900.0,
        fp32_cores=5120,
        peak_tflops=15.7,
        tdp_w=300.0,
        host_cpu="Xeon Platinum 8160",
        host_tdp_w=2 * 150.0,
        l2_kb=6144,
        register_kb=20480,
    ),
}


@dataclass(frozen=True)
class CpuSpec:
    """The §3.1 CPU baseline: dual Xeon Platinum 8160 (48 cores)."""

    name: str = "2x Xeon Platinum 8160"
    cores: int = 48
    clock_ghz: float = 2.1
    #: AVX-512: 2 FMA units x 16 fp32 lanes x 2 flops
    flops_per_cycle_per_core: float = 64.0
    memory_bw_gbs: float = 256.0  # 12 DDR4-2666 channels
    tdp_w: float = 2 * 150.0
    #: achieved fraction of peak for the p4est-based research code — the
    #: paper notes it "takes significant amount of time to run even a
    #: small-sized problem" (§3.1).  Back-solving the paper's own §3.1
    #: speedups (94x for a memory-bound unfused 1080Ti at level 4) puts
    #: the CPU code at ~2 GFLOPS aggregate: scalar, indirection-bound,
    #: MPI-overheaded — so these factors are fit to the paper's numbers
    #: and documented as such in EXPERIMENTS.md.
    compute_efficiency: float = 0.00053
    bandwidth_efficiency: float = 0.018
    #: aggregate last-level cache; working sets beyond it fall off the
    #: cache cliff (the paper's level-5 runs degrade much faster on CPU
    #: than on GPU: 94x -> 131x vs 123x -> 369x for the V100).
    llc_bytes: float = 66e6
    cache_spill_factor: float = 0.5

    @property
    def peak_flops(self) -> float:
        return self.cores * self.clock_ghz * 1e9 * self.flops_per_cycle_per_core

    @property
    def effective_flops(self) -> float:
        return self.peak_flops * self.compute_efficiency

    @property
    def effective_bw(self) -> float:
        return self.memory_bw_gbs * 1e9 * self.bandwidth_efficiency


CPU_BASELINE = CpuSpec()
