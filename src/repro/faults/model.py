"""Seeded, deterministic fault model for the Wave-PIM simulator.

Fault taxonomy (DESIGN.md §11):

========== ============================ ==============================
kind       physical cause               model hook
========== ============================ ==============================
stuck      stuck-at-0/1 memristor cell  forced bit on every write to
                                        the cell's column
flip       transient bit flip during a  one flipped bit in the freshly
           bit-serial NOR sequence      written destination column
wearout    endurance exhaustion         per-block NOR-cycle budget
switch     permanent switch failure     every TRANSFER routed through
                                        it fails
drop       lost TRANSFER payload        retried with backoff
corrupt    corrupted TRANSFER payload   detected by checksum (protect)
                                        or silently delivered
========== ============================ ==============================

Determinism: every random decision comes from a
:class:`numpy.random.Generator` seeded with ``(seed, stream, key)``.
Per-block draws (stuck cells, switch failures) use keyed substreams and
are order-independent; per-instruction draws (flips, transfer outcomes)
use one sequential stream each, so replaying the same instruction stream
replays the same faults bit-for-bit.

Recovery counting convention: ``injected`` counts fault occurrences,
``detected``/``corrected`` count occurrences the mitigation layer caught
and repaired, and ``uncorrected`` counts *unrecovered outcomes* — a
transfer that was never delivered (or delivered corrupted), or a write
that a permanent stuck-at cell keeps corrupting.  ``--strict`` campaigns
gate on ``uncorrected == 0``.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

import numpy as np

from repro.obs import get_metrics

__all__ = ["FaultConfig", "FaultEvent", "FaultModel", "TransferPlan"]

#: substream discriminators (mixed into the RNG seed sequence).
_STREAM_STUCK = 0xA1
_STREAM_FLIP = 0xB2
_STREAM_TRANSFER = 0xC3
_STREAM_SWITCH = 0xD4

#: counters every model tracks (mirrored to the ``faults.*`` metrics).
COUNTER_KEYS = (
    "injected",
    "detected",
    "corrected",
    "uncorrected",
    "retries",
    "remaps",
    "wearouts",
)


@dataclass(frozen=True)
class FaultConfig:
    """Rates and mitigation knobs of one fault scenario.

    All rates default to zero — an attached model with the default config
    injects nothing and adds nothing to the timing accounting (proven by
    the serial==faultless tests).
    """

    seed: int = 0
    # -- device faults ------------------------------------------------- #
    #: probability that any given memristor cell is permanently stuck.
    stuck_cell_rate: float = 0.0
    #: transient flip probability per NOR cycle per active row.
    flip_rate: float = 0.0
    #: NOR cycles a block endures before it is flagged worn out.
    wearout_nor_cycles: float = math.inf
    # -- interconnect faults ------------------------------------------- #
    #: probability that any given tile switch has permanently failed.
    switch_fail_rate: float = 0.0
    #: per-TRANSFER-attempt probability of a lost payload.
    transfer_drop_rate: float = 0.0
    #: per-TRANSFER-attempt probability of a corrupted payload.
    transfer_corrupt_rate: float = 0.0
    # -- mitigation ----------------------------------------------------- #
    #: parity/checksum protection: detect-and-recompute for flips and
    #: corrupted transfers, parity-row upkeep charged per compute op.
    protect: bool = True
    #: TRANSFER retry attempts after the first failure.
    max_retries: int = 3
    #: base retry backoff (doubles per attempt), charged as wire time.
    retry_backoff_s: float = 100e-9
    #: stuck cells at which a block is excluded by the spare-block remap.
    remap_threshold: int = 1
    #: spare rows a protected block must reserve for parity (FT001).
    parity_rows: int = 1

    @classmethod
    def at_rate(
        cls,
        rate: float,
        seed: int = 0,
        protect: bool = True,
        switch_fail_rate: float = 0.0,
    ) -> "FaultConfig":
        """One-knob scenario: cell, flip and transfer faults all at ``rate``."""
        return cls(
            seed=seed,
            stuck_cell_rate=rate,
            flip_rate=rate,
            transfer_drop_rate=rate,
            transfer_corrupt_rate=rate,
            switch_fail_rate=switch_fail_rate,
            protect=protect,
        )

    @property
    def any_transfer_faults(self) -> bool:
        return (
            self.transfer_drop_rate > 0.0
            or self.transfer_corrupt_rate > 0.0
            or self.switch_fail_rate > 0.0
        )

    @property
    def enabled(self) -> bool:
        """True when the config can inject anything at all."""
        return (
            self.stuck_cell_rate > 0.0
            or self.flip_rate > 0.0
            or self.any_transfer_faults
            or math.isfinite(self.wearout_nor_cycles)
        )

    def as_dict(self) -> dict:
        d = asdict(self)
        if math.isinf(self.wearout_nor_cycles):
            d["wearout_nor_cycles"] = None
        return d


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault (or recovery action) in the deterministic log."""

    kind: str  # stuck | flip | drop | corrupt | switch | wearout | remap
    where: str  # "block:12", "switch:3/7", "transfer:5->9"
    corrected: bool
    detail: str = ""

    def as_dict(self) -> dict:
        return asdict(self)


@dataclass(frozen=True)
class TransferPlan:
    """Outcome of one TRANSFER under the fault model.

    ``attempts`` send attempts were made (``failed`` of them failed);
    ``delivered`` says whether the payload arrived, ``corrupt_payload``
    whether it arrived with a flipped bit (undetected corruption —
    ``protect=False`` only).  ``backoff_s`` is the total exponential
    backoff to charge on top of the repeated wire time.
    """

    attempts: int
    failed: int
    delivered: bool
    corrupt_payload: bool
    backoff_s: float


class FaultModel:
    """Deterministic fault injection + recovery bookkeeping.

    One model instance represents one fault scenario applied to one chip:
    share it between the :class:`~repro.core.mapper.ElementMapper` (which
    excludes its bad blocks) and the
    :class:`~repro.pim.executor.ChipExecutor` (which injects per-op
    faults and prices the recovery work).
    """

    def __init__(self, config: Optional[FaultConfig] = None, max_events: int = 10_000):
        self.config = config or FaultConfig()
        self.events: List[FaultEvent] = []
        self.counts: Dict[str, int] = {k: 0 for k in COUNTER_KEYS}
        self._max_events = max_events
        self.dropped_events = 0
        self._flip_rng = np.random.default_rng([self.config.seed, _STREAM_FLIP])
        self._transfer_rng = np.random.default_rng([self.config.seed, _STREAM_TRANSFER])
        #: block -> {column -> (rows, bits, values)} of stuck cells.
        self._stuck: Dict[int, Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]]] = {}
        self._wear: Dict[int, float] = {}
        self._worn: Set[int] = set()
        self._switch_fail: Dict[int, FrozenSet[int]] = {}

    # -- bookkeeping ---------------------------------------------------- #

    def count(self, key: str, n: int = 1) -> None:
        self.counts[key] += n
        get_metrics().inc(f"faults.{key}", n)

    def record(self, kind: str, where: str, corrected: bool, detail: str = "") -> None:
        if len(self.events) < self._max_events:
            self.events.append(FaultEvent(kind, where, corrected, detail))
        else:
            self.dropped_events += 1

    def event_digest(self) -> str:
        """Stable hash of the full event log (reproducibility checks)."""
        h = hashlib.sha256()
        for e in self.events:
            h.update(f"{e.kind}|{e.where}|{e.corrected}|{e.detail}\n".encode())
        h.update(str(self.dropped_events).encode())
        return h.hexdigest()

    def summary(self) -> dict:
        return {
            **dict(self.counts),
            "events": len(self.events) + self.dropped_events,
            "event_digest": self.event_digest(),
        }

    # -- device faults --------------------------------------------------- #

    def stuck_cells(
        self, block: int, rows: int = 1024, row_words: int = 32
    ) -> Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Per-column stuck cells of ``block``: ``col -> (rows, bits, values)``.

        Drawn lazily from the block's keyed substream, so the result is
        independent of the order blocks are first touched in.
        """
        got = self._stuck.get(block)
        if got is None:
            got = {}
            rate = self.config.stuck_cell_rate
            if rate > 0.0:
                n_cells = rows * row_words * 32
                rng = np.random.default_rng([self.config.seed, _STREAM_STUCK, block])
                n = int(rng.binomial(n_cells, min(rate, 1.0)))
                if n:
                    cells = rng.choice(n_cells, size=n, replace=False)
                    vals = rng.integers(0, 2, size=n, dtype=np.uint32)
                    cols = (cells // 32) % row_words
                    for c in np.unique(cols):
                        m = cols == c
                        got[int(c)] = (
                            (cells[m] // (row_words * 32)).astype(np.int64),
                            (cells[m] % 32).astype(np.uint32),
                            vals[m],
                        )
            self._stuck[block] = got
        return got

    def n_stuck(self, block: int, rows: int = 1024, row_words: int = 32) -> int:
        return sum(len(v[0]) for v in self.stuck_cells(block, rows, row_words).values())

    def bad_blocks(self, n_blocks: int, rows: int = 1024, row_words: int = 32) -> Set[int]:
        """Blocks the spare-block remap must avoid: too many stuck cells,
        or worn out by a previous run on this model."""
        thr = self.config.remap_threshold
        bad = set(self._worn)
        if self.config.stuck_cell_rate > 0.0:
            for b in range(n_blocks):
                if self.n_stuck(b, rows, row_words) >= thr:
                    bad.add(b)
        return bad

    def record_remaps(self, n: int, detail: str = "") -> None:
        if n:
            self.count("remaps", n)
            self.record("remap", "mapper", corrected=True, detail=detail)

    def record_nor(self, block: int, cycles: int) -> None:
        """Accumulate executed NOR cycles; flag wear-out past the budget."""
        budget = self.config.wearout_nor_cycles
        if not math.isfinite(budget):
            return
        w = self._wear.get(block, 0.0) + cycles
        self._wear[block] = w
        if w > budget and block not in self._worn:
            self._worn.add(block)
            self.count("wearouts")
            self.record(
                "wearout", f"block:{block}", corrected=False,
                detail=f"{w:.0f} NOR cycles > budget {budget:.0f}",
            )

    def wear(self, block: int) -> float:
        return self._wear.get(block, 0.0)

    @property
    def worn_blocks(self) -> Set[int]:
        return set(self._worn)

    def draw_flip(self, nor_cycles: int, n_rows: int) -> Optional[Tuple[int, int]]:
        """At most one transient flip per instruction.

        Returns ``(row offset within the selection, bit)`` or None.  The
        per-instruction event probability is ``1 - (1-r)^(cycles*rows)``
        evaluated as ``-expm1(...)`` for small-rate stability.
        """
        rate = self.config.flip_rate
        if rate <= 0.0 or nor_cycles <= 0 or n_rows <= 0:
            return None
        p = -math.expm1(math.log1p(-min(rate, 0.5)) * nor_cycles * n_rows)
        if self._flip_rng.random() >= p:
            return None
        off = int(self._flip_rng.integers(0, n_rows))
        bit = int(self._flip_rng.integers(0, 32))
        return off, bit

    def draw_flips(self, ps: np.ndarray, n_rows: np.ndarray) -> Dict[int, Tuple[int, int]]:
        """Batch :meth:`draw_flip` over a whole instruction stream.

        ``ps[k]`` is the per-instruction hit probability (the exact float
        :meth:`draw_flip` would compute) and ``n_rows[k]`` the row count of
        the ``k``-th flip-eligible instruction, in stream order.  Returns
        ``{k: (row offset, bit)}`` for the instructions that drew a flip.

        Bit-identical to ``k`` sequential scalar draws: PCG64 vector draws
        consume the identical stream as repeated scalar calls, so misses
        are drawn in one chunked ``random(m)``; on a hit the generator
        state is rewound to the chunk start, replayed up to the hit (so the
        two ``integers`` draws see the exact post-hit state), and drawing
        resumes after it.
        """
        out: Dict[int, Tuple[int, int]] = {}
        n = len(ps)
        if n == 0 or self.config.flip_rate <= 0.0:
            return out
        rng = self._flip_rng
        i = 0
        while i < n:
            state = rng.bit_generator.state
            u = rng.random(n - i)
            hits = np.flatnonzero(u < ps[i:])
            if hits.size == 0:
                break
            j = int(hits[0])
            # rewind and re-consume up to (and including) the hit draw, so
            # the integers() calls below read the same stream position the
            # scalar path would.
            rng.bit_generator.state = state
            rng.random(j + 1)
            k = i + j
            off = int(rng.integers(0, int(n_rows[k])))
            bit = int(rng.integers(0, 32))
            out[k] = (off, bit)
            i = k + 1
        return out

    # -- interconnect faults --------------------------------------------- #

    def failed_switches(self, tile: int, n_switches: int) -> FrozenSet[int]:
        """Permanently failed switch ids of ``tile`` (keyed substream)."""
        got = self._switch_fail.get(tile)
        if got is None:
            rate = self.config.switch_fail_rate
            if rate <= 0.0:
                got = frozenset()
            else:
                rng = np.random.default_rng([self.config.seed, _STREAM_SWITCH, tile])
                mask = rng.random(n_switches) < rate
                got = frozenset(int(i) for i in np.flatnonzero(mask))
            self._switch_fail[tile] = got
        return got

    def transfer_plan(
        self,
        keys: List[Tuple[int, int]],
        n_switches_of: Callable[[int], int],
        where: str = "",
    ) -> Optional[TransferPlan]:
        """Decide the fate of one TRANSFER occupying switch ``keys``.

        Returns None when no interconnect faults are configured (the
        executor then takes the exact fault-free accounting path).
        """
        cfg = self.config
        if not cfg.any_transfer_faults:
            return None
        budget = 1 + (cfg.max_retries if cfg.protect else 0)

        dead = None
        for tile, sw in keys:
            if sw in self.failed_switches(tile, n_switches_of(tile)):
                dead = (tile, sw)
                break
        if dead is not None:
            # no alternate route exists on a tree/bus: every attempt fails.
            self.count("injected", budget)
            self.count("detected", budget)  # timeouts are always detected
            self.count("retries", budget - 1)
            self.count("uncorrected")
            self.record(
                "switch", f"switch:{dead[0]}/{dead[1]}", corrected=False,
                detail=f"{where}: undeliverable, {budget} attempts",
            )
            backoff = cfg.retry_backoff_s * ((1 << (budget - 1)) - 1)
            return TransferPlan(
                attempts=budget, failed=budget, delivered=False,
                corrupt_payload=False, backoff_s=backoff,
            )

        p_drop = cfg.transfer_drop_rate
        p_corrupt = cfg.transfer_corrupt_rate
        failed = 0
        kinds: List[str] = []
        while failed < budget:
            u = float(self._transfer_rng.random())
            if u < p_drop:
                kinds.append("drop")
                failed += 1
                continue
            if u < p_drop + p_corrupt:
                if cfg.protect:
                    # checksum mismatch: detected, retransmit.
                    kinds.append("corrupt")
                    failed += 1
                    continue
                # undetected corruption: delivered with a flipped bit.
                self.count("injected")
                self.count("uncorrected")
                self.record("corrupt", where or "transfer", corrected=False,
                            detail="undetected (protection off)")
                return TransferPlan(
                    attempts=failed + 1, failed=failed, delivered=True,
                    corrupt_payload=True, backoff_s=0.0,
                )
            break
        if not failed:
            return None
        delivered = failed < budget
        attempts = failed + (1 if delivered else 0)
        self.count("injected", failed)
        self.count("detected", failed)
        self.count("retries", min(failed, budget - 1))
        if delivered:
            self.count("corrected", failed)
        else:
            self.count("uncorrected")
        for k in kinds:
            self.record(k, where or "transfer", corrected=delivered)
        backoff = cfg.retry_backoff_s * ((1 << failed) - 1)
        return TransferPlan(
            attempts=attempts, failed=failed, delivered=delivered,
            corrupt_payload=False, backoff_s=backoff,
        )

    def draw_corrupt_bit(self, n_rows: int, words: int) -> Tuple[int, int, int]:
        """Victim (row offset, word offset, bit) of a corrupted payload."""
        return (
            int(self._transfer_rng.integers(0, max(n_rows, 1))),
            int(self._transfer_rng.integers(0, max(words, 1))),
            int(self._transfer_rng.integers(0, 32)),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        c = self.counts
        return (
            f"FaultModel(seed={self.config.seed}, injected={c['injected']}, "
            f"corrected={c['corrected']}, uncorrected={c['uncorrected']})"
        )
