"""Periodic dG-state checkpointing for fault-tolerant campaigns.

Checkpoint format (``.npz``, schema 1):

========== ======================================================
``schema``    format version (int array, shape ())
``state``     the solver state array, dtype preserved bit-exactly
``time``      solver time as float64
``steps``     completed time steps as int64
``meta``      JSON (uint8 bytes) — solver config for compatibility
              validation on restore
========== ======================================================

Only ``(state, time, steps)`` are needed for a bit-identical resume:
LSRK45 zeroes its aux register at stage 0 of every step (``A[0] == 0``),
so no Runge-Kutta internals survive a step boundary.

Writes are atomic (tmp file + ``os.replace``) so a campaign killed
mid-checkpoint never leaves a truncated file behind.
"""

from __future__ import annotations

import io
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Union

import numpy as np

__all__ = ["CHECKPOINT_SCHEMA", "Checkpoint", "read_checkpoint", "write_checkpoint"]

CHECKPOINT_SCHEMA = 1


@dataclass
class Checkpoint:
    """One solver snapshot at a step boundary."""

    state: np.ndarray
    time: float
    steps: int
    meta: Dict[str, object] = field(default_factory=dict)

    def validate_against(self, meta: Dict[str, object]) -> None:
        """Raise if this checkpoint came from an incompatible solver setup."""
        for key, want in meta.items():
            have = self.meta.get(key)
            if have != want:
                raise ValueError(
                    f"checkpoint is incompatible with this solver: "
                    f"{key}={have!r} in checkpoint, {want!r} expected"
                )


def write_checkpoint(path: Union[str, Path], ckpt: Checkpoint) -> Path:
    """Atomically write ``ckpt`` to ``path`` (npz, schema 1)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    buf = io.BytesIO()
    np.savez(
        buf,
        schema=np.asarray(CHECKPOINT_SCHEMA),
        state=ckpt.state,
        time=np.float64(ckpt.time),
        steps=np.int64(ckpt.steps),
        meta=np.frombuffer(json.dumps(ckpt.meta, sort_keys=True).encode(), dtype=np.uint8),
    )
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as f:
            f.write(buf.getvalue())
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def read_checkpoint(path: Union[str, Path]) -> Checkpoint:
    """Read a checkpoint written by :func:`write_checkpoint`."""
    with np.load(Path(path)) as z:
        schema = int(z["schema"])
        if schema != CHECKPOINT_SCHEMA:
            raise ValueError(
                f"unsupported checkpoint schema {schema} (expected {CHECKPOINT_SCHEMA})"
            )
        meta = json.loads(z["meta"].tobytes().decode()) if z["meta"].size else {}
        return Checkpoint(
            state=z["state"].copy(),
            time=float(z["time"]),
            steps=int(z["steps"]),
            meta=meta,
        )
