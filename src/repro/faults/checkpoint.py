"""Periodic dG-state checkpointing for fault-tolerant campaigns.

Checkpoint format (``.npz``, schema 1):

========== ======================================================
``schema``    format version (int array, shape ())
``state``     the solver state array, dtype preserved bit-exactly
``time``      solver time as float64
``steps``     completed time steps as int64
``meta``      JSON (uint8 bytes) — solver config for compatibility
              validation on restore
========== ======================================================

Only ``(state, time, steps)`` are needed for a bit-identical resume:
LSRK45 zeroes its aux register at stage 0 of every step (``A[0] == 0``),
so no Runge-Kutta internals survive a step boundary.

Durability discipline (the same one ``repro.serve``'s job journal uses):
the payload is written to a temp file, fsynced, and atomically renamed
over the target, then the *directory* is fsynced so the rename itself
survives a power cut.  A campaign killed mid-checkpoint therefore never
leaves a truncated file behind — but media corruption or an unfsynced
filesystem still can, so :func:`read_checkpoint` validates the payload
and raises :class:`CheckpointCorrupt` (never a bare ``zipfile``/``json``
internal error) on a truncated or damaged file.  Writers that pass
``keep_previous=True`` rotate the prior snapshot to ``<path>.prev``;
:func:`read_checkpoint_with_recovery` falls back to it, giving
recovery-to-previous semantics on corruption.
"""

from __future__ import annotations

import io
import json
import os
import tempfile
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Union

import numpy as np

__all__ = [
    "CHECKPOINT_SCHEMA",
    "Checkpoint",
    "CheckpointCorrupt",
    "previous_path",
    "read_checkpoint",
    "read_checkpoint_with_recovery",
    "write_checkpoint",
]

CHECKPOINT_SCHEMA = 1

#: npz members a schema-1 checkpoint must carry.
_REQUIRED_KEYS = ("schema", "state", "time", "steps", "meta")


class CheckpointCorrupt(ValueError):
    """The checkpoint file exists but cannot be decoded (truncated/damaged).

    Distinct from ``FileNotFoundError`` (no snapshot yet) and from the
    compatibility ``ValueError`` raised for wrong-schema or wrong-config
    checkpoints: corruption means the *bytes* are bad, so falling back to
    the previous rotation (:func:`read_checkpoint_with_recovery`) is the
    right recovery, not a recompile or a config fix.
    """

    def __init__(self, path: Union[str, Path], reason: str):
        super().__init__(f"corrupt checkpoint {path}: {reason}")
        self.path = Path(path)
        self.reason = reason


@dataclass
class Checkpoint:
    """One solver snapshot at a step boundary."""

    state: np.ndarray
    time: float
    steps: int
    meta: Dict[str, object] = field(default_factory=dict)

    def validate_against(self, meta: Dict[str, object]) -> None:
        """Raise if this checkpoint came from an incompatible solver setup."""
        for key, want in meta.items():
            have = self.meta.get(key)
            if have != want:
                raise ValueError(
                    f"checkpoint is incompatible with this solver: "
                    f"{key}={have!r} in checkpoint, {want!r} expected"
                )


def previous_path(path: Union[str, Path]) -> Path:
    """Where ``write_checkpoint(..., keep_previous=True)`` rotates the old snapshot."""
    path = Path(path)
    return path.with_name(path.name + ".prev")


def _fsync_dir(directory: Path) -> None:
    """fsync a directory so a just-completed rename survives power loss."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open support
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - e.g. fsync on dirs unsupported
        pass
    finally:
        os.close(fd)


def write_checkpoint(
    path: Union[str, Path], ckpt: Checkpoint, keep_previous: bool = False
) -> Path:
    """Atomically write ``ckpt`` to ``path`` (npz, schema 1).

    With ``keep_previous=True`` an existing snapshot at ``path`` is first
    rotated (atomically) to :func:`previous_path`, so a reader holds a
    valid fallback even if this file is later found corrupt on disk.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    buf = io.BytesIO()
    np.savez(
        buf,
        schema=np.asarray(CHECKPOINT_SCHEMA),
        state=ckpt.state,
        time=np.float64(ckpt.time),
        steps=np.int64(ckpt.steps),
        meta=np.frombuffer(json.dumps(ckpt.meta, sort_keys=True).encode(), dtype=np.uint8),
    )
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as f:
            f.write(buf.getvalue())
            f.flush()
            os.fsync(f.fileno())
        if keep_previous and path.exists():
            os.replace(path, previous_path(path))
        os.replace(tmp, path)
        _fsync_dir(path.parent)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def read_checkpoint(path: Union[str, Path]) -> Checkpoint:
    """Read a checkpoint written by :func:`write_checkpoint`.

    Raises :class:`CheckpointCorrupt` when the file is truncated or
    otherwise undecodable, ``ValueError`` for a wrong schema version.
    """
    path = Path(path)
    try:
        z = np.load(path)
    except FileNotFoundError:
        raise
    except (zipfile.BadZipFile, OSError, EOFError, ValueError) as exc:
        # np.load surfaces truncation as BadZipFile/OSError/EOFError and
        # non-npz bytes as ValueError — normalize all of them to one type.
        raise CheckpointCorrupt(path, str(exc)) from exc
    try:
        with z:
            missing = [k for k in _REQUIRED_KEYS if k not in z.files]
            if missing:
                raise CheckpointCorrupt(path, f"missing members {missing}")
            schema = int(z["schema"])
            if schema != CHECKPOINT_SCHEMA:
                raise ValueError(
                    f"unsupported checkpoint schema {schema} (expected {CHECKPOINT_SCHEMA})"
                )
            meta_raw = z["meta"]
            try:
                meta = json.loads(meta_raw.tobytes().decode()) if meta_raw.size else {}
            except (ValueError, UnicodeDecodeError) as exc:
                raise CheckpointCorrupt(path, f"meta is not JSON: {exc}") from exc
            return Checkpoint(
                state=z["state"].copy(),
                time=float(z["time"]),
                steps=int(z["steps"]),
                meta=meta,
            )
    except (zipfile.BadZipFile, OSError, EOFError, KeyError) as exc:
        # a member can still tear mid-archive: decoding it raises
        # BadZipFile/KeyError even though the index loaded fine.
        raise CheckpointCorrupt(path, str(exc)) from exc


def read_checkpoint_with_recovery(path: Union[str, Path]) -> Checkpoint:
    """Read ``path``, falling back to the rotated previous snapshot on corruption.

    The fallback covers the ``keep_previous=True`` writer: a checkpoint
    found corrupt on disk recovers to the last good one instead of
    aborting the resume.  Raises the original :class:`CheckpointCorrupt`
    when no previous snapshot exists (or it is corrupt too), and plain
    ``FileNotFoundError`` when neither file exists.
    """
    path = Path(path)
    try:
        return read_checkpoint(path)
    except FileNotFoundError:
        prev = previous_path(path)
        if prev.exists():
            return read_checkpoint(prev)
        raise
    except CheckpointCorrupt as exc:
        prev = previous_path(path)
        if prev.exists():
            try:
                return read_checkpoint(prev)
            except (CheckpointCorrupt, FileNotFoundError):
                raise exc from None
        raise
