"""Deterministic fault injection and fault-tolerant execution.

The package models the failure modes real ReRAM-based PIM hardware
exhibits — stuck-at memristor cells, endurance wear-out, transient bit
flips in the bit-serial MAGIC pipeline, and interconnect switch/transfer
failures — together with the mitigation machinery the executor, mapper
and solver use to survive them (parity detect-and-recompute, transfer
retry with exponential backoff, spare-block remapping, periodic dG-state
checkpointing).

Everything is seeded and deterministic: the same :class:`FaultConfig`
seed reproduces the same injected-fault log and recovery counts, which is
what makes fault campaigns (``python -m repro faults``) regression-testable.

The campaign runner lives in :mod:`repro.faults.campaign` and is imported
lazily (it pulls in the whole compiler/executor stack).
"""

from repro.faults.checkpoint import (
    Checkpoint,
    CheckpointCorrupt,
    read_checkpoint,
    read_checkpoint_with_recovery,
    write_checkpoint,
)
from repro.faults.model import FaultConfig, FaultEvent, FaultModel, TransferPlan

__all__ = [
    "FaultConfig",
    "FaultEvent",
    "FaultModel",
    "TransferPlan",
    "Checkpoint",
    "CheckpointCorrupt",
    "read_checkpoint",
    "read_checkpoint_with_recovery",
    "write_checkpoint",
]
