"""Fault-injection campaigns: sweep fault rates x benchmarks x interconnects.

A campaign runs each benchmark as a small *functional proxy* — the real
acoustic/elastic PIM kernels on a coarse mesh (default level 1, order 2) so
every instruction executes functionally — once fault-free and once per
fault rate, and reports:

* injected / detected / corrected / uncorrected counts and the seeded
  event-log digest (two runs with the same seed must match exactly);
* the solution error against the fault-free baseline state;
* the time/energy overhead of the mitigation machinery.

``strict_violations`` is the CI gate: at the lowest swept rate every
benchmark must finish with ``uncorrected == 0`` and a solution within
fault-free tolerance.  Runs where the spare-block remap runs out of
healthy blocks are reported as ``status: "degraded"`` instead of
crashing — graceful degradation is the contract.

Exposed on the CLI as ``python -m repro faults``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.faults.model import FaultConfig, FaultModel
from repro.obs import get_logger, get_tracer

__all__ = [
    "REPORT_KIND",
    "REPORT_SCHEMA",
    "DEFAULT_RATES",
    "STRICT_REL_TOL",
    "run_campaign",
    "strict_violations",
]

REPORT_KIND = "repro-faults"
REPORT_SCHEMA = 1

#: default sweep: one "production" rate where mitigation must win, one
#: stress rate that exercises degradation.
DEFAULT_RATES = (1e-6, 1e-3)

#: solution tolerance vs. the fault-free baseline at the lowest swept rate.
#: Corrected faults recompute the exact result, so any drift means an
#: uncorrected escape; float32 noise alone stays far below this.
STRICT_REL_TOL = 1e-6

log = get_logger("faults")


class _Proxy:
    """One functional benchmark proxy: kernels + initial state + program."""

    def __init__(self, spec, interconnect: str, level: int, order: int,
                 chip_name: str, steps: int, fault_model=None):
        from repro.core.kernels.acoustic import AcousticOneBlockKernels
        from repro.core.kernels.elastic import ElasticFourBlockKernels
        from repro.core.mapper import ElementMapper
        from repro.dg import (
            AcousticMaterial,
            ElasticMaterial,
            HexMesh,
            ReferenceElement,
            cfl_timestep,
        )
        from repro.pim.chip import PimChip
        from repro.pim.params import CHIP_CONFIGS

        cfg = CHIP_CONFIGS[chip_name].with_interconnect(interconnect)
        mesh = HexMesh.from_refinement_level(level)
        elem = ReferenceElement(order)
        rng = np.random.default_rng(1234)
        self.chip = PimChip(cfg)
        if spec.physics == "acoustic":
            mat = AcousticMaterial(
                kappa=rng.uniform(1.0, 2.0, mesh.n_elements),
                rho=rng.uniform(0.5, 1.5, mesh.n_elements),
            )
            mapper = ElementMapper(
                mesh.m, cfg, 1, fault_model=fault_model, chip_model=self.chip
            )
            self.kern = AcousticOneBlockKernels(
                mesh, elem, mat, mapper, flux_kind=spec.flux_kind
            )
            n_vars = 4
        else:
            mat = ElasticMaterial(
                lam=rng.uniform(1.0, 2.0, mesh.n_elements),
                mu=rng.uniform(0.5, 1.5, mesh.n_elements),
                rho=rng.uniform(0.8, 1.2, mesh.n_elements),
            )
            mapper = ElementMapper(
                mesh.m, cfg, 4, fault_model=fault_model, chip_model=self.chip
            )
            self.kern = ElasticFourBlockKernels(
                mesh, elem, mat, mapper, flux_kind=spec.flux_kind
            )
            n_vars = 9
        self.state = (
            (0.1 * rng.standard_normal((n_vars, mesh.n_elements, elem.n_nodes)))
            .astype(np.float32)
            .astype(np.float64)
        )
        dt = cfl_timestep(mesh.h, mat.max_speed, order, cfl=0.3)
        self.program = self.kern.setup() + self.kern.load_state(
            self.state.astype(np.float32)
        )
        for _ in range(steps):
            self.program += self.kern.time_step(dt)

    def execute(self, fault_model=None):
        from repro.pim.executor import ChipExecutor

        ex = ChipExecutor(self.chip, faults=fault_model)
        report = ex.run(self.program, functional=True)
        return report, self.kern.read_state(self.chip)


def _rel_err(got: np.ndarray, ref: np.ndarray) -> float:
    denom = float(np.max(np.abs(ref)))
    if denom == 0.0:
        return float(np.max(np.abs(got - ref)))
    return float(np.max(np.abs(got - ref)) / denom)


def run_campaign(
    benchmarks: Sequence[str],
    rates: Iterable[float] = DEFAULT_RATES,
    interconnects: Sequence[str] = ("htree",),
    seed: int = 0,
    steps: int = 2,
    level: int = 1,
    order: int = 2,
    chip: str = "512MB",
    protect: bool = True,
    switch_fail_rate: float = 0.0,
) -> dict:
    """Run the sweep and return the JSON-ready campaign report."""
    from repro.workloads.benchmarks import BENCHMARKS

    rates = sorted(float(r) for r in rates)
    runs: List[dict] = []
    for key in benchmarks:
        spec = BENCHMARKS[key]
        for ic in interconnects:
            base_proxy = _Proxy(spec, ic, level, order, chip, steps)
            base_report, base_state = base_proxy.execute()
            for rate in rates:
                entry = {
                    "benchmark": key,
                    "interconnect": ic,
                    "rate": rate,
                    "seed": seed,
                    "baseline_time_s": base_report.total_time_s,
                    "baseline_energy_j": base_report.dynamic_energy_j,
                }
                fm = FaultModel(
                    FaultConfig.at_rate(
                        rate, seed=seed, protect=protect,
                        switch_fail_rate=switch_fail_rate,
                    )
                )
                with get_tracer().span(
                    "faults/campaign-run", benchmark=key, interconnect=ic, rate=rate
                ) as sp:
                    try:
                        proxy = _Proxy(
                            spec, ic, level, order, chip, steps, fault_model=fm
                        )
                    except ValueError as exc:
                        # spare-block remap ran out of healthy blocks:
                        # graceful degradation, reported not raised.
                        log.warning("%s @ %s rate=%g degraded: %s", key, ic, rate, exc)
                        entry.update(status="degraded", error=str(exc),
                                     **{"counts": dict(fm.counts)})
                        sp.set(status="degraded")
                        runs.append(entry)
                        continue
                    report, state = proxy.execute(fault_model=fm)
                    summary = fm.summary()
                    entry.update(
                        status="ok",
                        counts={k: fm.counts[k] for k in fm.counts},
                        events=summary["events"],
                        event_digest=summary["event_digest"],
                        retries=report.retries,
                        solution_rel_err=_rel_err(state, base_state),
                        time_s=report.total_time_s,
                        energy_j=report.dynamic_energy_j,
                        time_overhead=(
                            report.total_time_s / base_report.total_time_s
                            if base_report.total_time_s else 1.0
                        ),
                        energy_overhead=(
                            report.dynamic_energy_j / base_report.dynamic_energy_j
                            if base_report.dynamic_energy_j else 1.0
                        ),
                    )
                    sp.set(status="ok", uncorrected=fm.counts["uncorrected"])
                log.info(
                    "%s @ %s rate=%g: injected=%d corrected=%d uncorrected=%d "
                    "err=%.2e overhead=%.3fx",
                    key, ic, rate, fm.counts["injected"], fm.counts["corrected"],
                    fm.counts["uncorrected"], entry.get("solution_rel_err", -1.0),
                    entry.get("time_overhead", 1.0),
                )
                runs.append(entry)
    return {
        "kind": REPORT_KIND,
        "schema": REPORT_SCHEMA,
        "config": {
            "benchmarks": list(benchmarks),
            "rates": rates,
            "interconnects": list(interconnects),
            "seed": seed,
            "steps": steps,
            "level": level,
            "order": order,
            "chip": chip,
            "protect": protect,
            "switch_fail_rate": switch_fail_rate,
        },
        "runs": runs,
    }


def strict_violations(report: dict, tol: Optional[float] = None) -> List[str]:
    """The ``--strict`` gate: failures at the lowest swept rate.

    At the lowest rate the mitigation machinery must fully win: the run
    completes (no degradation), ``uncorrected == 0``, and the solution is
    bit-close to the fault-free baseline.  Higher rates are diagnostic.
    """
    tol = STRICT_REL_TOL if tol is None else tol
    rates = report["config"]["rates"]
    if not rates:
        return []
    low = min(rates)
    out: List[str] = []
    for run in report["runs"]:
        if run["rate"] != low:
            continue
        who = f"{run['benchmark']}@{run['interconnect']} rate={low:g}"
        if run.get("status") != "ok":
            out.append(f"{who}: degraded — {run.get('error', 'unknown')}")
            continue
        unc = run["counts"]["uncorrected"]
        if unc:
            out.append(f"{who}: {unc} uncorrected faults")
        if run["solution_rel_err"] > tol:
            out.append(
                f"{who}: solution error {run['solution_rel_err']:.3e} > {tol:g}"
            )
    return out
