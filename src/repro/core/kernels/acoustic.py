"""Acoustic wave kernels on PIM: one-block and expanded four-block forms.

One-block (naive): the whole 4-variable element lives in a single memory
block (Fig. 5); Volume, Flux and Integration execute serially inside it.

Four-block (E_p, Figs. 8/9): pressure lives in the *part-3* block — which
doubles as the Fig. 9 neighbor-data buffer — and each velocity component
in its own *axis block*.  Volume distributes the three directional
derivative chains across the axis blocks (div-v partial sums travel to
the p block); Flux fetches neighbor data into the buffer block, spreads
it over the short intra-quad H-tree paths, computes per-axis corrections
locally and returns the pressure corrections.  "With more dynamic power
consumption, the four-block implementation can achieve a better
performance than the one-block naive solution." (§6.2.1)

Both generators emit real :class:`~repro.pim.isa.Instruction` streams that
execute functionally — the test-suite proves them equal to the numpy dG
solver — and carry the cost tags behind Figs. 13/14.
"""

from __future__ import annotations

import numpy as np

from repro.core.kernels.base import KernelBase, face_sign_axis
from repro.core.layout import ElementLayout
from repro.core.mapper import ElementMapper
from repro.dg.materials import AcousticMaterial
from repro.dg.mesh import HexMesh
from repro.dg.reference_element import ReferenceElement
from repro.pim.isa import Instruction, Opcode

__all__ = ["AcousticOneBlockKernels", "AcousticFourBlockKernels"]

_VARS = ("p", "vx", "vy", "vz")


def acoustic_flux_coefficients(
    material: AcousticMaterial, mesh: HexMesh, lift: float, flux_kind: str
) -> np.ndarray:
    """Host-precomputed per-(element, face) flux coefficients ``c1..c4``.

    The correction applied at face nodes is::

        contrib_p   += c1 * (vax- - vax+) + c2 * (p- - p+)
        contrib_vax += c3 * (p-  - p+ ) + c4 * (vax- - vax+)

    These fold the impedances (sqrt) and the ``1/(Z- + Z+)`` inverse — the
    exact computations the paper offloads to the host CPU and serves from
    LUTs (§4.3/§5.1).  Returns shape ``(K, 6, 4)``.
    """
    z = material.impedance
    kappa = material.kappa
    rho = material.rho
    K = material.n_elements
    out = np.zeros((K, 6, 4), dtype=np.float64)
    for face in range(6):
        sign, _ = face_sign_axis(face)
        nbr = mesh.neighbors[:, face]
        interior = nbr >= 0
        zp = np.where(interior, z[np.where(interior, nbr, 0)], z)
        if flux_kind == "central":
            out[:, face, 0] = 0.5 * lift * kappa * sign
            out[:, face, 2] = 0.5 * lift * sign / rho
        else:
            zsum = z + zp
            out[:, face, 0] = lift * kappa * zp * sign / zsum
            out[:, face, 1] = -lift * kappa / zsum
            out[:, face, 2] = lift * sign * z / (rho * zsum)
            out[:, face, 3] = -lift * z * zp / (rho * zsum)
    return out


class AcousticOneBlockKernels(KernelBase):
    """Naive mapping: one element per memory block."""

    n_vars = 4

    def __init__(
        self,
        mesh: HexMesh,
        element: ReferenceElement,
        material: AcousticMaterial,
        mapper: ElementMapper,
        flux_kind: str = "riemann",
    ):
        super().__init__(mesh, element, mapper, flux_kind)
        self.material = material
        self.layout = ElementLayout(element.order, variables=_VARS)
        self.flux_coeffs = acoustic_flux_coefficients(material, mesh, self.lift, flux_kind)
        lay = self.layout
        s = lay.scratch
        s.free_all()
        # persistent scratch register file for the kernels
        self.r_tap = s.alloc()
        self.r_coeff = s.alloc()
        self.r_tmp = s.alloc()
        self.r_acc = s.alloc()
        self.r_nb = s.alloc(4)  # neighbor p, vx, vy, vz
        self.r_dp = s.alloc()
        self.r_dv = s.alloc()
        self.r_c = s.alloc(4)  # flux coefficients c1..c4
        self.r_t1 = s.alloc()
        self.r_t2 = s.alloc()
        # integration constants A_s, dt, B_s reuse the flux-coefficient
        # registers -- Integration and Flux never overlap inside a block.
        self.r_ic = self.r_c

    # ------------------------------------------------------------------ #
    # setup: constants + state  (Fig. 6 step 1 / Fig. 5 storage space)
    # ------------------------------------------------------------------ #

    def setup(self, elements=None) -> list:
        """Broadcast constants into every element block (executed once)."""
        lay = self.layout
        d = self.element.diff_1d
        insts = []
        for e in (self.mapper.elements if elements is None else elements):
            b = self.mapper.block_of(e)
            insts.append(
                Instruction(Opcode.DRAM_LOAD, block=b, tag="setup",
                            meta={"bytes": lay.n_nodes * 4 * 8})
            )
            # dshape into storage rows (column a holds D[:, a])
            rows = (lay.row_dshape0, lay.row_dshape0 + lay.npts)
            for a in range(lay.npts):
                insts.append(self._bcast(b, rows, a, d[:, a], "setup"))
            # per-element Volume constants, broadcast to the compute rows
            ck = -self.material.kappa[e] * self.dscale
            cr = -self.dscale / self.material.rho[e]
            insts.append(self._bcast(b, lay.compute_rows, lay.col_econst[0], float(ck), "setup"))
            insts.append(self._bcast(b, lay.compute_rows, lay.col_econst[1], float(cr), "setup"))
            # mass inverse (used by source injection / diagnostics)
            minv = 1.0 / (self.element.node_weights * (self.mesh.h / 2.0) ** 3)
            insts.append(self._bcast(b, lay.compute_rows, lay.col_mass, minv, "setup"))
            # host-precomputed flux coefficients into the six storage rows
            for face in range(6):
                row = (lay.row_flux0 + face, lay.row_flux0 + face + 1)
                for c in range(4):
                    insts.append(
                        self._bcast(b, row, c, float(self.flux_coeffs[e, face, c]), "setup")
                    )
        return insts

    def load_state(self, state: np.ndarray, elements=None) -> list:
        """Write a ``(4, K, n_nodes)`` state into the variable columns."""
        lay = self.layout
        insts = []
        for e in (self.mapper.elements if elements is None else elements):
            b = self.mapper.block_of(e)
            insts.append(
                Instruction(Opcode.DRAM_LOAD, block=b, tag="load",
                            meta={"bytes": lay.n_nodes * 4 * self.n_vars})
            )
            for i, v in enumerate(_VARS):
                insts.append(
                    self._bcast(b, lay.compute_rows, lay.col_var[v],
                                state[i, e].astype(np.float32), "load")
                )
        return insts

    def read_state(self, chip, elements=None) -> np.ndarray:
        """Host-side read-back of the full state."""
        lay = self.layout
        out = np.zeros((self.n_vars, self.mesh.n_elements, lay.n_nodes), dtype=np.float32)
        for e in (self.mapper.elements if elements is None else elements):
            blk = chip.block(self.mapper.block_of(e))
            for i, v in enumerate(_VARS):
                out[i, e] = blk.data[: lay.n_nodes, lay.col_var[v]]
        return out

    def read_contributions(self, chip, elements=None) -> np.ndarray:
        lay = self.layout
        out = np.zeros((self.n_vars, self.mesh.n_elements, lay.n_nodes), dtype=np.float32)
        for e in (self.mapper.elements if elements is None else elements):
            blk = chip.block(self.mapper.block_of(e))
            for i, v in enumerate(_VARS):
                out[i, e] = blk.data[: lay.n_nodes, lay.col_contrib[v]]
        return out

    # ------------------------------------------------------------------ #
    # Volume (Fig. 5 left timeline)
    # ------------------------------------------------------------------ #

    def _derivative_chain(self, b, axis, var_col, acc_col, accumulate, tag):
        """Emit the tap/coeff gather + multiply-accumulate dot product."""
        lay = self.layout
        rows = lay.compute_rows
        insts = []
        dmap = lay.dshape_row_map(axis)
        for a in range(lay.npts):
            insts.append(self._gather(b, rows, self.r_tap, var_col, lay.tap_row_map(axis, a), tag))
            insts.append(self._gather(b, rows, self.r_coeff, a, dmap, tag))
            first = (a == 0) and not accumulate
            dst = acc_col if first else self.r_tmp
            insts.append(self._arith(Opcode.MUL, b, rows, dst, self.r_tap, self.r_coeff, tag))
            if not first:
                insts.append(self._arith(Opcode.ADD, b, rows, acc_col, acc_col, self.r_tmp, tag))
        return insts

    def volume(self, tag: str = "volume", elements=None) -> list:
        """contrib_p = c_kappa * div(v); contrib_v = c_invrho * grad(p)."""
        lay = self.layout
        rows = lay.compute_rows
        insts = []
        for e in (self.mapper.elements if elements is None else elements):
            b = self.mapper.block_of(e)
            # div v into r_acc (accumulates across the three axes)
            for axis, v in enumerate(("vx", "vy", "vz")):
                insts += self._derivative_chain(
                    b, axis, lay.col_var[v], self.r_acc, accumulate=axis > 0, tag=tag
                )
            insts.append(self._arith(
                Opcode.MUL, b, rows, lay.col_contrib["p"], self.r_acc, lay.col_econst[0], tag))
            # grad p, one axis at a time, straight into the contributions
            for axis, v in enumerate(("vx", "vy", "vz")):
                insts += self._derivative_chain(
                    b, axis, lay.col_var["p"], self.r_acc, accumulate=False, tag=tag
                )
                insts.append(self._arith(
                    Opcode.MUL, b, rows, lay.col_contrib[v], self.r_acc, lay.col_econst[1], tag))
        return insts

    # ------------------------------------------------------------------ #
    # Flux
    # ------------------------------------------------------------------ #

    def flux(self, faces=range(6), fetch_tag="flux:fetch", compute_tag="flux:compute", elements=None) -> list:
        """Neighbor reconciliation for the given faces (default all six)."""
        lay = self.layout
        riemann = self.flux_kind != "central"
        insts = []
        for e in (self.mapper.elements if elements is None else elements):
            b = self.mapper.block_of(e)
            for face in faces:
                fr = self.face_rows(face)
                nfr = self.neighbor_face_rows(face)
                _, axis = face_sign_axis(face)
                nbr = self.neighbor(e, face)
                if nbr is None:
                    continue
                nb = self.mapper.block_of(nbr)
                # 1. fetch the neighbor's 4 variables at its matching face
                insts.append(self._transfer(
                    b, nb, fr, nfr, self.r_nb, lay.col_var["p"], 4, fetch_tag))
                # 2. flux coefficients from the face's storage row
                cmap = lay.face_row_map(fr, lay.row_flux0 + face)
                used = (0, 1, 2, 3) if riemann else (0, 2)
                for c in used:
                    insts.append(self._gather(b, fr, self.r_c + c, c, cmap, compute_tag))
                # 3. differences
                insts.append(self._arith(
                    Opcode.SUB, b, fr, self.r_dp, lay.col_var["p"], self.r_nb, compute_tag))
                vax = lay.col_var[_VARS[1 + axis]]
                insts.append(self._arith(
                    Opcode.SUB, b, fr, self.r_dv, vax, self.r_nb + 1 + axis, compute_tag))
                # 4. pressure correction: c1*dv (+ c2*dp)
                insts.append(self._arith(
                    Opcode.MUL, b, fr, self.r_t1, self.r_c + 0, self.r_dv, compute_tag))
                if riemann:
                    insts.append(self._arith(
                        Opcode.MUL, b, fr, self.r_t2, self.r_c + 1, self.r_dp, compute_tag))
                    insts.append(self._arith(
                        Opcode.ADD, b, fr, self.r_t1, self.r_t1, self.r_t2, compute_tag))
                cp = lay.col_contrib["p"]
                insts.append(self._arith(Opcode.ADD, b, fr, cp, cp, self.r_t1, compute_tag))
                # 5. axis-velocity correction: c3*dp (+ c4*dv)
                insts.append(self._arith(
                    Opcode.MUL, b, fr, self.r_t1, self.r_c + 2, self.r_dp, compute_tag))
                if riemann:
                    insts.append(self._arith(
                        Opcode.MUL, b, fr, self.r_t2, self.r_c + 3, self.r_dv, compute_tag))
                    insts.append(self._arith(
                        Opcode.ADD, b, fr, self.r_t1, self.r_t1, self.r_t2, compute_tag))
                cv = lay.col_contrib[_VARS[1 + axis]]
                insts.append(self._arith(Opcode.ADD, b, fr, cv, cv, self.r_t1, compute_tag))
        return insts

    # ------------------------------------------------------------------ #
    # Integration (one LSRK stage)
    # ------------------------------------------------------------------ #

    def integration(self, stage: int, dt: float, tag: str = "integration", elements=None) -> list:
        """aux = A_s aux + dt*contrib ; var += B_s aux — for all variables."""
        lay = self.layout
        rows = lay.compute_rows
        a_s = float(self.rk.A[stage])
        b_s = float(self.rk.B[stage])
        insts = []
        for e in (self.mapper.elements if elements is None else elements):
            b = self.mapper.block_of(e)
            insts.append(self._bcast(b, rows, self.r_ic + 0, a_s, tag))
            insts.append(self._bcast(b, rows, self.r_ic + 1, float(dt), tag))
            insts.append(self._bcast(b, rows, self.r_ic + 2, b_s, tag))
            for v in _VARS:
                aux, contrib, var = lay.col_aux[v], lay.col_contrib[v], lay.col_var[v]
                insts.append(self._arith(Opcode.MUL, b, rows, aux, aux, self.r_ic + 0, tag))
                insts.append(self._arith(Opcode.MUL, b, rows, self.r_tmp, contrib, self.r_ic + 1, tag))
                insts.append(self._arith(Opcode.ADD, b, rows, aux, aux, self.r_tmp, tag))
                insts.append(self._arith(Opcode.MUL, b, rows, self.r_tmp, aux, self.r_ic + 2, tag))
                insts.append(self._arith(Opcode.ADD, b, rows, var, var, self.r_tmp, tag))
        return insts

    # ------------------------------------------------------------------ #

    def rk_stage(self, stage: int, dt: float) -> list:
        """One full LSRK stage: Volume, Flux, Integration + barriers."""
        insts = self.volume()
        insts.append(Instruction(Opcode.BARRIER, tag="sync"))
        insts += self.flux()
        insts.append(Instruction(Opcode.BARRIER, tag="sync"))
        insts += self.integration(stage, dt)
        insts.append(Instruction(Opcode.BARRIER, tag="sync"))
        return insts

    def time_step(self, dt: float) -> list:
        """The paper's five integration steps per time-step."""
        insts = []
        for s in range(5):
            insts += self.rk_stage(s, dt)
        return insts


class AcousticFourBlockKernels(KernelBase):
    """Expanded mapping (E_p): p + one block per velocity axis (Figs. 8/9).

    Part assignment: parts 0..2 host ``vx, vy, vz``; part 3 hosts ``p``
    and doubles as the neighbor-data buffer of Fig. 9.
    """

    n_vars = 4
    P_PART = 3

    def __init__(
        self,
        mesh: HexMesh,
        element: ReferenceElement,
        material: AcousticMaterial,
        mapper: ElementMapper,
        flux_kind: str = "riemann",
    ):
        super().__init__(mesh, element, mapper, flux_kind)
        if mapper.g != 4:
            raise ValueError(f"four-block kernels need blocks_per_element=4, got {mapper.g}")
        self.material = material
        self.lay_v = ElementLayout(element.order, variables=("v",))
        self.lay_p = ElementLayout(element.order, variables=("p",))
        self.flux_coeffs = acoustic_flux_coefficients(material, mesh, self.lift, flux_kind)
        # scratch registers (same offsets valid in both layouts: the single-
        # variable layouts are identical column-wise)
        for lay in (self.lay_v, self.lay_p):
            lay.scratch.free_all()
        s = self.lay_v.scratch
        self.r_tap = s.alloc()
        self.r_coeff = s.alloc()
        self.r_tmp = s.alloc()
        self.r_acc = s.alloc()
        self.r_pcopy = s.alloc()  # axis blocks' copy of p
        self.r_div = s.alloc(3)  # p block: incoming div partial sums
        self.r_nb_p = s.alloc()
        self.r_nb_v = s.alloc()
        self.r_my_v = s.alloc()  # p-block copy of own face velocities
        self.r_dp = s.alloc()
        self.r_dv = s.alloc()
        self.r_c = s.alloc(4)
        self.r_t1 = s.alloc()
        self.r_t2 = s.alloc()
        self.r_ic = s.alloc(3)

    # -- placement helpers -------------------------------------------------- #

    def vblock(self, e: int, axis: int) -> int:
        return self.mapper.block_of(e, axis)

    def pblock(self, e: int) -> int:
        return self.mapper.block_of(e, self.P_PART)

    # ------------------------------------------------------------------ #

    def setup(self, elements=None) -> list:
        d = self.element.diff_1d
        insts = []
        minv = 1.0 / (self.element.node_weights * (self.mesh.h / 2.0) ** 3)
        for e in (self.mapper.elements if elements is None else elements):
            ck = -self.material.kappa[e] * self.dscale
            cr = -self.dscale / self.material.rho[e]
            for part in range(4):
                lay = self.lay_p if part == self.P_PART else self.lay_v
                b = self.mapper.block_of(e, part)
                insts.append(Instruction(Opcode.DRAM_LOAD, block=b, tag="setup",
                                         meta={"bytes": lay.n_nodes * 4 * 8}))
                rows = (lay.row_dshape0, lay.row_dshape0 + lay.npts)
                for a in range(lay.npts):
                    insts.append(self._bcast(b, rows, a, d[:, a], "setup"))
                const = ck if part == self.P_PART else cr
                insts.append(self._bcast(b, lay.compute_rows, lay.col_econst[0], float(const), "setup"))
                insts.append(self._bcast(b, lay.compute_rows, lay.col_mass, minv, "setup"))
                for face in range(6):
                    row = (lay.row_flux0 + face, lay.row_flux0 + face + 1)
                    for c in range(4):
                        insts.append(self._bcast(
                            b, row, c, float(self.flux_coeffs[e, face, c]), "setup"))
        return insts

    def load_state(self, state: np.ndarray, elements=None) -> list:
        insts = []
        for e in (self.mapper.elements if elements is None else elements):
            for part in range(4):
                lay = self.lay_p if part == self.P_PART else self.lay_v
                b = self.mapper.block_of(e, part)
                var = state[0, e] if part == self.P_PART else state[1 + part, e]
                insts.append(Instruction(Opcode.DRAM_LOAD, block=b, tag="load",
                                         meta={"bytes": lay.n_nodes * 4}))
                col = lay.col_var["p" if part == self.P_PART else "v"]
                insts.append(self._bcast(b, lay.compute_rows, col, var.astype(np.float32), "load"))
        return insts

    def read_state(self, chip, elements=None) -> np.ndarray:
        nn = self.lay_v.n_nodes
        out = np.zeros((4, self.mesh.n_elements, nn), dtype=np.float32)
        for e in (self.mapper.elements if elements is None else elements):
            out[0, e] = chip.block(self.pblock(e)).data[:nn, self.lay_p.col_var["p"]]
            for axis in range(3):
                out[1 + axis, e] = chip.block(self.vblock(e, axis)).data[
                    :nn, self.lay_v.col_var["v"]]
        return out

    def read_contributions(self, chip, elements=None) -> np.ndarray:
        nn = self.lay_v.n_nodes
        out = np.zeros((4, self.mesh.n_elements, nn), dtype=np.float32)
        for e in (self.mapper.elements if elements is None else elements):
            out[0, e] = chip.block(self.pblock(e)).data[:nn, self.lay_p.col_contrib["p"]]
            for axis in range(3):
                out[1 + axis, e] = chip.block(self.vblock(e, axis)).data[
                    :nn, self.lay_v.col_contrib["v"]]
        return out

    # ------------------------------------------------------------------ #

    def _derivative_chain(self, b, lay, axis, var_col, acc_col, tag):
        rows = lay.compute_rows
        insts = []
        dmap = lay.dshape_row_map(axis)
        for a in range(lay.npts):
            insts.append(self._gather(b, rows, self.r_tap, var_col, lay.tap_row_map(axis, a), tag))
            insts.append(self._gather(b, rows, self.r_coeff, a, dmap, tag))
            dst = acc_col if a == 0 else self.r_tmp
            insts.append(self._arith(Opcode.MUL, b, rows, dst, self.r_tap, self.r_coeff, tag))
            if a != 0:
                insts.append(self._arith(Opcode.ADD, b, rows, acc_col, acc_col, self.r_tmp, tag))
        return insts

    def volume(self, tag: str = "volume", elements=None) -> list:
        """Fig. 8: per-axis derivative chains + div partial-sum exchange."""
        lv, lp = self.lay_v, self.lay_p
        rows = lv.compute_rows
        insts = []
        for e in (self.mapper.elements if elements is None else elements):
            pb = self.pblock(e)
            # broadcast p to the axis blocks (the Fig. 8 data duplication)
            for axis in range(3):
                vb = self.vblock(e, axis)
                insts.append(self._transfer(
                    vb, pb, rows, rows, self.r_pcopy, lp.col_var["p"], 1, f"{tag}:sync"))
            for axis in range(3):
                vb = self.vblock(e, axis)
                # grad p along my axis -> my contribution
                insts += self._derivative_chain(vb, lv, axis, self.r_pcopy, self.r_acc, tag)
                insts.append(self._arith(
                    Opcode.MUL, vb, rows, lv.col_contrib["v"], self.r_acc, lv.col_econst[0], tag))
                # div v partial: derivative of my own velocity component
                insts += self._derivative_chain(vb, lv, axis, lv.col_var["v"], self.r_acc, tag)
                # ship the partial sum to the p block (Fig. 8 inter-block memcpy)
                insts.append(self._transfer(
                    pb, vb, rows, rows, self.r_div + axis, self.r_acc, 1, f"{tag}:sync"))
            # p block: combine the three partials
            insts.append(self._arith(
                Opcode.ADD, pb, rows, self.r_acc, self.r_div + 0, self.r_div + 1, tag))
            insts.append(self._arith(
                Opcode.ADD, pb, rows, self.r_acc, self.r_acc, self.r_div + 2, tag))
            insts.append(self._arith(
                Opcode.MUL, pb, rows, lp.col_contrib["p"], self.r_acc, lp.col_econst[0], tag))
        return insts

    def flux(self, faces=range(6), fetch_tag="flux:fetch", compute_tag="flux:compute", elements=None) -> list:
        """Fig. 9: buffer in part 3, compute per axis, return p corrections."""
        lv, lp = self.lay_v, self.lay_p
        riemann = self.flux_kind != "central"
        insts = []
        for e in (self.mapper.elements if elements is None else elements):
            pb = self.pblock(e)
            for face in faces:
                fr = self.face_rows(face)
                nfr = self.neighbor_face_rows(face)
                _, axis = face_sign_axis(face)
                nbr = self.neighbor(e, face)
                if nbr is None:
                    continue
                vb = self.vblock(e, axis)
                # 1. inter-element fetches into the buffer block (part 3)
                insts.append(self._transfer(
                    pb, self.pblock(nbr), fr, nfr, self.r_nb_p, lp.col_var["p"], 1, fetch_tag))
                insts.append(self._transfer(
                    pb, self.vblock(nbr, axis), fr, nfr, self.r_nb_v, lv.col_var["v"], 1,
                    fetch_tag))
                # 2. short intra-quad distribution to the axis block
                insts.append(self._transfer(
                    vb, pb, fr, fr, self.r_nb_p, self.r_nb_p, 1, f"{fetch_tag}:intra"))
                insts.append(self._transfer(
                    vb, pb, fr, fr, self.r_nb_v, self.r_nb_v, 1, f"{fetch_tag}:intra"))
                insts.append(self._transfer(
                    vb, pb, fr, fr, self.r_pcopy, lp.col_var["p"], 1, f"{fetch_tag}:intra"))
                # 3. axis block computes both corrections
                cmap = lv.face_row_map(fr, lv.row_flux0 + face)
                used = (0, 1, 2, 3) if riemann else (0, 2)
                for c in used:
                    insts.append(self._gather(vb, fr, self.r_c + c, c, cmap, compute_tag))
                insts.append(self._arith(
                    Opcode.SUB, vb, fr, self.r_dp, self.r_pcopy, self.r_nb_p, compute_tag))
                insts.append(self._arith(
                    Opcode.SUB, vb, fr, self.r_dv, lv.col_var["v"], self.r_nb_v, compute_tag))
                # velocity correction (kept local)
                insts.append(self._arith(
                    Opcode.MUL, vb, fr, self.r_t1, self.r_c + 2, self.r_dp, compute_tag))
                if riemann:
                    insts.append(self._arith(
                        Opcode.MUL, vb, fr, self.r_t2, self.r_c + 3, self.r_dv, compute_tag))
                    insts.append(self._arith(
                        Opcode.ADD, vb, fr, self.r_t1, self.r_t1, self.r_t2, compute_tag))
                cv = lv.col_contrib["v"]
                insts.append(self._arith(Opcode.ADD, vb, fr, cv, cv, self.r_t1, compute_tag))
                # pressure correction, then returned to the p block
                insts.append(self._arith(
                    Opcode.MUL, vb, fr, self.r_t1, self.r_c + 0, self.r_dv, compute_tag))
                if riemann:
                    insts.append(self._arith(
                        Opcode.MUL, vb, fr, self.r_t2, self.r_c + 1, self.r_dp, compute_tag))
                    insts.append(self._arith(
                        Opcode.ADD, vb, fr, self.r_t1, self.r_t1, self.r_t2, compute_tag))
                insts.append(self._transfer(
                    pb, vb, fr, fr, self.r_t1, self.r_t1, 1, f"{fetch_tag}:intra"))
                cp = lp.col_contrib["p"]
                insts.append(self._arith(Opcode.ADD, pb, fr, cp, cp, self.r_t1, compute_tag))
        return insts

    def integration(self, stage: int, dt: float, tag: str = "integration", elements=None) -> list:
        a_s, b_s = float(self.rk.A[stage]), float(self.rk.B[stage])
        insts = []
        for e in (self.mapper.elements if elements is None else elements):
            for part in range(4):
                lay = self.lay_p if part == self.P_PART else self.lay_v
                v = "p" if part == self.P_PART else "v"
                b = self.mapper.block_of(e, part)
                rows = lay.compute_rows
                insts.append(self._bcast(b, rows, self.r_ic + 0, a_s, tag))
                insts.append(self._bcast(b, rows, self.r_ic + 1, float(dt), tag))
                insts.append(self._bcast(b, rows, self.r_ic + 2, b_s, tag))
                aux, contrib, var = lay.col_aux[v], lay.col_contrib[v], lay.col_var[v]
                insts.append(self._arith(Opcode.MUL, b, rows, aux, aux, self.r_ic + 0, tag))
                insts.append(self._arith(
                    Opcode.MUL, b, rows, self.r_tmp, contrib, self.r_ic + 1, tag))
                insts.append(self._arith(Opcode.ADD, b, rows, aux, aux, self.r_tmp, tag))
                insts.append(self._arith(Opcode.MUL, b, rows, self.r_tmp, aux, self.r_ic + 2, tag))
                insts.append(self._arith(Opcode.ADD, b, rows, var, var, self.r_tmp, tag))
        return insts

    def rk_stage(self, stage: int, dt: float) -> list:
        insts = self.volume()
        insts.append(Instruction(Opcode.BARRIER, tag="sync"))
        insts += self.flux()
        insts.append(Instruction(Opcode.BARRIER, tag="sync"))
        insts += self.integration(stage, dt)
        insts.append(Instruction(Opcode.BARRIER, tag="sync"))
        return insts

    def time_step(self, dt: float) -> list:
        insts = []
        for s in range(5):
            insts += self.rk_stage(s, dt)
        return insts
