"""Instruction-stream generators for the Wave-PIM kernels.

Each generator turns one dG kernel (Fig. 2: Volume, Flux, Integration)
into the PIM instruction sequence of Fig. 5's execution timeline:
constant gathers, row-parallel float32 arithmetic, inter-block transfers
for neighbor data, and the per-stage RK update.  The same streams serve
three purposes: functional execution (verified against the numpy dG
solver), timing/energy estimation, and operation counting (Table 6).
"""

from repro.core.kernels.acoustic import AcousticOneBlockKernels, AcousticFourBlockKernels
from repro.core.kernels.elastic import ElasticFourBlockKernels

__all__ = [
    "AcousticOneBlockKernels",
    "AcousticFourBlockKernels",
    "ElasticFourBlockKernels",
]
