"""Elastic wave kernels on PIM: the forced four-block (E_r) mapping.

"The 1K memory block row size is not enough for the nine variables in the
elastic wave simulation" (Sec 5.1): nine variables x (variable + auxiliary
+ contribution) = 27 words plus mass inverse and constants overflow the
32-word row, so the element is split across four blocks (Sec 6.2.2):

* part 0 (``S1``): the x-traction row ``sxx, sxy, sxz``;
* part 1 (``S2``): the remaining stresses ``syy, syz, szz``;
* part 2 (``V``): the velocities ``vx, vy, vz``;
* part 3 (``B``): the Fig. 9 neighbor-data buffer, which also hosts the
  per-face flux arithmetic.

The streams are **functionally correct** for both flux kinds — executed on
the chip model they reproduce the numpy
:class:`~repro.dg.elastic.ElasticOperator` (the test-suite checks it) —
thanks to a componentwise star-state formulation.  For a face with axis
``a`` and outward-normal sign ``s``, with the *signed* velocity jump
``Dv_i = s (v+_i - v-_i)`` and the *raw* stress-column jump
``Dsig_i = sigma+_{ia} - sigma-_{ia}``::

    X   = a1 Dv_a + a2 Dsig_a        # normal (P-wave) star velocity delta
    Y_j = b1 Dv_j + b2 Dsig_j        # tangential (S-wave), j != a
    W_a = a3 Dsig_a + a4 Dv_a        # star traction deltas
    W_j = b3 Dsig_j + b4 Dv_j

    d sigma_ii += lift*lam * X   (+ 2 lift*mu * X  when i == a)
    d sigma_aj += lift*mu  * Y_j
    d v_i      += (lift*s/rho) * W_i

All outward-normal signs cancel into the two rules "swap the SUB operands
on negative faces" and "fold s into the velocity scale factor" — every
other coefficient is sign-free.  The ``a*/b*`` coefficients are
host-precomputed impedance combinations (central: ``a1=b1=a3=b3=1/2``,
rest zero) — the sqrt/inverse work the paper offloads to the host CPU and
serves through LUTs (Sec 4.3 / 5.1).
"""

from __future__ import annotations

import numpy as np

from repro.core.kernels.base import KernelBase, face_sign_axis
from repro.core.layout import ElementLayout
from repro.core.mapper import ElementMapper
from repro.dg.elastic import VOIGT
from repro.dg.materials import ElasticMaterial
from repro.dg.mesh import HexMesh
from repro.dg.reference_element import ReferenceElement
from repro.pim.isa import Instruction, Opcode

__all__ = ["ElasticFourBlockKernels", "elastic_flux_coefficients"]

#: variable placement: part -> hosted variables
S1_VARS = ("sxx", "sxy", "sxz")
S2_VARS = ("syy", "syz", "szz")
V_VARS = ("vx", "vy", "vz")

#: div(sigma) chains: velocity -> [(stress var, derivative axis), ...]
DIV_SIGMA = {
    "vx": (("sxx", 0), ("sxy", 1), ("sxz", 2)),
    "vy": (("sxy", 0), ("syy", 1), ("syz", 2)),
    "vz": (("sxz", 0), ("syz", 1), ("szz", 2)),
}

VOIGT_NAMES = ("sxx", "syy", "szz", "syz", "sxz", "sxy")

#: stress column ``a`` of the tensor (the axis-``a`` face's traction
#: components, before the outward sign): axis -> (s_xa, s_ya, s_za)
TRACTION_VARS = {
    0: ("sxx", "sxy", "sxz"),
    1: ("sxy", "syy", "syz"),
    2: ("sxz", "syz", "szz"),
}

#: Voigt name of tensor component (i, j)
TENSOR_TO_VOIGT = {
    (0, 0): "sxx", (1, 1): "syy", (2, 2): "szz",
    (1, 2): "syz", (2, 1): "syz",
    (0, 2): "sxz", (2, 0): "sxz",
    (0, 1): "sxy", (1, 0): "sxy",
}


def elastic_flux_coefficients(material: ElasticMaterial, mesh: HexMesh) -> np.ndarray:
    """Host-precomputed star-state coefficients, shape ``(K, 6, 8)``.

    Columns: ``a1 a2 a3 a4 b1 b2 b3 b4`` (see module docstring).  They
    fold the P/S impedances (sqrts) and the ``1/(Z- + Z+)`` inverses.
    Fluid-fluid interfaces (``Zs- + Zs+ == 0``) degenerate to averaged
    tangential slip and zero tangential traction.
    """
    zp = material.zp
    zs = material.zs
    K = material.n_elements
    out = np.zeros((K, 6, 8), dtype=np.float64)
    for face in range(6):
        nbr = mesh.neighbors[:, face]
        safe = np.where(nbr >= 0, nbr, 0)
        zp_p = np.where(nbr >= 0, zp[safe], zp)
        zs_p = np.where(nbr >= 0, zs[safe], zs)
        zp_sum = zp + zp_p
        zs_sum = zs + zs_p
        shear = zs_sum > 0
        zs_safe = np.where(shear, zs_sum, 1.0)
        out[:, face, 0] = zp_p / zp_sum                        # a1
        out[:, face, 1] = 1.0 / zp_sum                         # a2
        out[:, face, 2] = zp / zp_sum                          # a3
        out[:, face, 3] = zp * zp_p / zp_sum                   # a4
        out[:, face, 4] = np.where(shear, zs_p / zs_safe, 0.5)  # b1
        out[:, face, 5] = np.where(shear, 1.0 / zs_safe, 0.0)   # b2
        out[:, face, 6] = np.where(shear, zs / zs_safe, 0.5)    # b3
        out[:, face, 7] = np.where(shear, zs * zs_p / zs_safe, 0.0)  # b4
    return out


#: central-flux coefficient vector (a1 a2 a3 a4 b1 b2 b3 b4)
CENTRAL_COEFFS = np.array([0.5, 0.0, 0.5, 0.0, 0.5, 0.0, 0.5, 0.0])


class ElasticFourBlockKernels(KernelBase):
    """E_r mapping: one elastic element across four memory blocks."""

    n_vars = 9
    S1, S2, V, B = 0, 1, 2, 3
    _ABC = ("a", "b", "c")

    def __init__(
        self,
        mesh: HexMesh,
        element: ReferenceElement,
        material: ElasticMaterial,
        mapper: ElementMapper,
        flux_kind: str = "central",
    ):
        super().__init__(mesh, element, mapper, flux_kind)
        if mapper.g != 4:
            raise ValueError(f"elastic E_r needs blocks_per_element=4, got {mapper.g}")
        self.material = material
        self.lay3 = ElementLayout(element.order, variables=self._ABC)
        if flux_kind == "central":
            self.flux_coeffs = np.broadcast_to(
                CENTRAL_COEFFS, (mesh.n_elements, 6, 8)
            ).copy()
        else:
            self.flux_coeffs = elastic_flux_coefficients(material, mesh)

        # Register file over the 20 scratch columns.  Scratch columns are
        # per-block storage, so the flux registers (live on the buffer
        # block) deliberately ALIAS the volume registers (live on the V and
        # stress blocks); only r_tmp / r_c / r_t are shared across roles,
        # which the barrier-separated kernel phases make safe.
        s0 = self.lay3.scratch0
        # volume registers (V / S blocks)
        self.r_tap = s0 + 0
        self.r_coeff = s0 + 3
        self.r_grad = s0 + 6  # V block: the three diagonal dv_ii (3 cols)
        self.r_part = s0 + 9  # incoming cross-block partial sums (2 cols)
        self.r_tmp = s0 + 12
        self.r_acc = s0 + 13
        self.r_lam = s0 + 14  # V block, persistent: lam * dscale
        # flux registers (buffer block); own_* are overwritten by the star
        # deltas in step 4
        self.r_own_v = s0 + 0  # 3 cols
        self.r_own_t = s0 + 3  # 3 cols
        self.r_nb_v = s0 + 6  # 3 cols; becomes the signed velocity jump Dv
        self.r_nb_t = s0 + 9  # 3 cols; becomes the raw stress jump Dsig
        # shared temporaries (every block)
        self.r_c = s0 + 15  # 2 cols: coefficient gathers
        self.r_t = s0 + 17  # 2 cols: temporaries / outgoing corrections
        assert s0 + 19 <= self.lay3.row_words

    # -- placement -------------------------------------------------------- #

    def part_of(self, var: str) -> tuple[int, int]:
        """(part, local column) hosting ``var``."""
        for part, group in ((self.S1, S1_VARS), (self.S2, S2_VARS), (self.V, V_VARS)):
            if var in group:
                return part, self.lay3.col_var[self._ABC[group.index(var)]]
        raise KeyError(var)

    def block_of_var(self, e: int, var: str) -> tuple[int, int]:
        part, col = self.part_of(var)
        return self.mapper.block_of(e, part), col

    def _contrib_col(self, var: str) -> int:
        _, col = self.part_of(var)
        return self.lay3.col_contrib[self._ABC[col - 1]]

    # ------------------------------------------------------------------ #

    def setup(self, elements=None) -> list:
        """Constants broadcast: dshape, material constants, flux coeffs.

        Per-block material columns: S1/S2 get ``(lam*ds, mu*ds)``; V gets
        ``(ds/rho, mu*ds)`` plus ``lam*ds`` in a scratch register (its
        stress-contribution combos need all three).  The buffer block's
        storage rows carry, per face: the eight star coefficients, then
        ``lift*lam``, ``lift*mu`` and ``lift*s/rho``.
        """
        lay = self.lay3
        d = self.element.diff_1d
        insts = []
        for e in (self.mapper.elements if elements is None else elements):
            e = int(e)
            lam = self.material.lam[e]
            mu = self.material.mu[e]
            inv_rho = 1.0 / self.material.rho[e]
            for part in range(4):
                b = self.mapper.block_of(e, part)
                insts.append(Instruction(Opcode.DRAM_LOAD, block=b, tag="setup",
                                         meta={"bytes": lay.n_nodes * 4 * 8}))
                rows = (lay.row_dshape0, lay.row_dshape0 + lay.npts)
                for a in range(lay.npts):
                    insts.append(self._bcast(b, rows, a, d[:, a], "setup"))
                c0 = lam * self.dscale if part in (self.S1, self.S2) else inv_rho * self.dscale
                c1 = mu * self.dscale
                insts.append(self._bcast(
                    b, lay.compute_rows, lay.col_econst[0], float(c0), "setup"))
                insts.append(self._bcast(
                    b, lay.compute_rows, lay.col_econst[1], float(c1), "setup"))
                if part == self.V:
                    insts.append(self._bcast(
                        b, lay.compute_rows, self.r_lam, float(lam * self.dscale), "setup"))
            bb = self.mapper.block_of(e, self.B)
            for face in range(6):
                sign, _ = face_sign_axis(face)
                row = (lay.row_flux0 + face, lay.row_flux0 + face + 1)
                for c in range(8):
                    insts.append(self._bcast(
                        bb, row, c, float(self.flux_coeffs[e, face, c]), "setup"))
                insts.append(self._bcast(bb, row, 8, float(self.lift * lam), "setup"))
                insts.append(self._bcast(bb, row, 9, float(self.lift * mu), "setup"))
                insts.append(self._bcast(
                    bb, row, 10, float(self.lift * inv_rho * sign), "setup"))
        return insts

    def load_state(self, state: np.ndarray, elements=None) -> list:
        """Write a ``(9, K, n_nodes)`` state into the variable blocks."""
        lay = self.lay3
        order = VOIGT_NAMES + V_VARS
        insts = []
        for e in (self.mapper.elements if elements is None else elements):
            e = int(e)
            for i, var in enumerate(order):
                b, col = self.block_of_var(e, var)
                insts.append(self._bcast(
                    b, lay.compute_rows, col, state[i, e].astype(np.float32), "load"))
            for part in range(3):
                insts.append(Instruction(
                    Opcode.DRAM_LOAD, block=self.mapper.block_of(e, part), tag="load",
                    meta={"bytes": lay.n_nodes * 4 * 3}))
        return insts

    def read_state(self, chip, elements=None) -> np.ndarray:
        nn = self.lay3.n_nodes
        order = VOIGT_NAMES + V_VARS
        out = np.zeros((9, self.mesh.n_elements, nn), dtype=np.float32)
        for e in (self.mapper.elements if elements is None else elements):
            e = int(e)
            for i, var in enumerate(order):
                b, col = self.block_of_var(e, var)
                out[i, e] = chip.block(b).data[:nn, col]
        return out

    def read_contributions(self, chip, elements=None) -> np.ndarray:
        nn = self.lay3.n_nodes
        order = VOIGT_NAMES + V_VARS
        out = np.zeros((9, self.mesh.n_elements, nn), dtype=np.float32)
        for e in (self.mapper.elements if elements is None else elements):
            e = int(e)
            for i, var in enumerate(order):
                b, _ = self.block_of_var(e, var)
                out[i, e] = chip.block(b).data[:nn, self._contrib_col(var)]
        return out

    # ------------------------------------------------------------------ #
    # Volume
    # ------------------------------------------------------------------ #

    def _derivative_chain(self, b, axis, var_col, acc_col, tag):
        lay = self.lay3
        rows = lay.compute_rows
        insts = []
        dmap = lay.dshape_row_map(axis)
        for a in range(lay.npts):
            insts.append(self._gather(b, rows, self.r_tap, var_col, lay.tap_row_map(axis, a), tag))
            insts.append(self._gather(b, rows, self.r_coeff, a, dmap, tag))
            dst = acc_col if a == 0 else self.r_tmp
            insts.append(self._arith(Opcode.MUL, b, rows, dst, self.r_tap, self.r_coeff, tag))
            if a != 0:
                insts.append(self._arith(Opcode.ADD, b, rows, acc_col, acc_col, self.r_tmp, tag))
        return insts

    def volume(self, tag: str = "volume", elements=None) -> list:
        """Nine dv chains + six stress combos (V) and nine dsigma chains."""
        lay = self.lay3
        rows = lay.compute_rows
        insts = []
        for e in (self.mapper.elements if elements is None else elements):
            e = int(e)
            vb = self.mapper.block_of(e, self.V)
            s_blocks = {v: self.block_of_var(e, v) for v in VOIGT_NAMES}
            # --- V block: exactly nine dv_i/dx_j chains, combined per Voigt.
            for i in range(3):
                insts += self._derivative_chain(
                    vb, i, lay.col_var[self._ABC[i]], self.r_grad + i, tag)
            insts.append(self._arith(
                Opcode.ADD, vb, rows, self.r_acc, self.r_grad + 0, self.r_grad + 1, tag))
            insts.append(self._arith(
                Opcode.ADD, vb, rows, self.r_acc, self.r_acc, self.r_grad + 2, tag))
            for q, (vi, vj) in enumerate(VOIGT):
                if vi == vj:
                    # sigma_ii contribution = lam_ds * div v + 2 mu_ds * dv_ii
                    insts.append(self._arith(
                        Opcode.MUL, vb, rows, self.r_t + 0, self.r_acc, self.r_lam, tag))
                    insts.append(self._arith(
                        Opcode.MUL, vb, rows, self.r_t + 1,
                        self.r_grad + vi, lay.col_econst[1], tag))
                    insts.append(self._arith(
                        Opcode.ADD, vb, rows, self.r_t + 0, self.r_t + 0, self.r_t + 1, tag))
                    insts.append(self._arith(
                        Opcode.ADD, vb, rows, self.r_t + 0, self.r_t + 0, self.r_t + 1, tag))
                else:
                    # sigma_ij contribution = mu_ds * (dv_i/dx_j + dv_j/dx_i)
                    insts += self._derivative_chain(
                        vb, vj, lay.col_var[self._ABC[vi]], self.r_part + 0, tag)
                    insts += self._derivative_chain(
                        vb, vi, lay.col_var[self._ABC[vj]], self.r_part + 1, tag)
                    insts.append(self._arith(
                        Opcode.ADD, vb, rows, self.r_t + 0,
                        self.r_part + 0, self.r_part + 1, tag))
                    insts.append(self._arith(
                        Opcode.MUL, vb, rows, self.r_t + 0,
                        self.r_t + 0, lay.col_econst[1], tag))
                # ship the contribution to the hosting stress block
                sb, _ = s_blocks[VOIGT_NAMES[q]]
                insts.append(self._transfer(
                    sb, vb, rows, rows, self._contrib_col(VOIGT_NAMES[q]),
                    self.r_t + 0, 1, f"{tag}:sync"))
            # --- stress blocks: div(sigma) chains for velocity contribs ---
            for vi, v in enumerate(V_VARS):
                base_b = None
                for var, axis in DIV_SIGMA[v]:
                    sb, scol = s_blocks[var]
                    if base_b is None:
                        base_b = sb
                        insts += self._derivative_chain(sb, axis, scol, self.r_acc, tag)
                        continue
                    acc = self.r_part + 0
                    insts += self._derivative_chain(sb, axis, scol, acc, tag)
                    if sb != base_b:
                        insts.append(self._transfer(
                            base_b, sb, rows, rows, self.r_part + 1, acc, 1, f"{tag}:sync"))
                        acc = self.r_part + 1
                    insts.append(self._arith(
                        Opcode.ADD, base_b, rows, self.r_acc, self.r_acc, acc, tag))
                insts.append(self._transfer(
                    vb, base_b, rows, rows, self.r_part + 0, self.r_acc, 1, f"{tag}:sync"))
                insts.append(self._arith(
                    Opcode.MUL, vb, rows, lay.col_contrib[self._ABC[vi]],
                    self.r_part + 0, lay.col_econst[0], tag))
        return insts

    # ------------------------------------------------------------------ #
    # Flux (functional for central AND Riemann)
    # ------------------------------------------------------------------ #

    def _star_delta(self, bb, fr, face, dst, d_main, d_other, c_main, c_other,
                    tag, skip_other):
        """``dst = c[c_main] * d_main (+ c[c_other] * d_other)`` on face rows."""
        lay = self.lay3
        cmap = lay.face_row_map(fr, lay.row_flux0 + face)
        insts = [self._gather(bb, fr, self.r_c + 0, c_main, cmap, tag)]
        if not skip_other:
            insts.append(self._gather(bb, fr, self.r_c + 1, c_other, cmap, tag))
        insts.append(self._arith(Opcode.MUL, bb, fr, self.r_t + 1, self.r_c + 0, d_main, tag))
        if not skip_other:
            insts.append(self._arith(
                Opcode.MUL, bb, fr, dst if dst != d_other else self.r_t + 0,
                self.r_c + 1, d_other, tag))
            src2 = dst if dst != d_other else self.r_t + 0
            insts.append(self._arith(Opcode.ADD, bb, fr, dst, self.r_t + 1, src2, tag))
        else:
            insts.append(Instruction(Opcode.COPY, block=bb, rows=fr, dst=dst,
                                     src1=self.r_t + 1, tag=tag))
        return insts

    def flux(self, faces=range(6), fetch_tag="flux:fetch", compute_tag="flux:compute",
             elements=None) -> list:
        """Per-face star-state corrections through the buffer block."""
        lay = self.lay3
        riemann = self.flux_kind != "central"
        insts = []
        for e in (self.mapper.elements if elements is None else elements):
            e = int(e)
            bb = self.mapper.block_of(e, self.B)
            vb = self.mapper.block_of(e, self.V)
            for face in faces:
                fr = self.face_rows(face)
                nfr = self.neighbor_face_rows(face)
                sign, axis = face_sign_axis(face)
                nbr = self.neighbor(e, face)
                if nbr is None:
                    continue
                trac = TRACTION_VARS[axis]
                cmap = lay.face_row_map(fr, lay.row_flux0 + face)

                # 1. inter-element fetches into the buffer block
                insts.append(self._transfer(
                    bb, self.mapper.block_of(nbr, self.V), fr, nfr, self.r_nb_v,
                    lay.col_var["a"], 3, fetch_tag))
                for i, var in enumerate(trac):
                    nb_b, nb_col = self.block_of_var(nbr, var)
                    insts.append(self._transfer(
                        bb, nb_b, fr, nfr, self.r_nb_t + i, nb_col, 1, fetch_tag))
                # 2. own data over the short intra-quad paths (Fig. 9)
                insts.append(self._transfer(
                    bb, vb, fr, fr, self.r_own_v, lay.col_var["a"], 3,
                    f"{fetch_tag}:intra"))
                for i, var in enumerate(trac):
                    ob, ocol = self.block_of_var(e, var)
                    insts.append(self._transfer(
                        bb, ob, fr, fr, self.r_own_t + i, ocol, 1, f"{fetch_tag}:intra"))

                # 3. jumps, in place: Dv_i = s (v+ - v-) — the outward sign
                #    is folded in by swapping the SUB operands on negative
                #    faces; Dsig_i = sigma+ - sigma- stays raw.
                for i in range(3):
                    v1, v2 = (self.r_nb_v + i, self.r_own_v + i)
                    if sign < 0:
                        v1, v2 = v2, v1
                    insts.append(self._arith(
                        Opcode.SUB, bb, fr, self.r_nb_v + i, v1, v2, compute_tag))
                    insts.append(self._arith(
                        Opcode.SUB, bb, fr, self.r_nb_t + i, self.r_nb_t + i,
                        self.r_own_t + i, compute_tag))

                # 4. star deltas into the (now free) own_* registers:
                #    own_v[i] <- X (i==axis) or Y_i ; own_t[i] <- W_i
                for i in range(3):
                    cm, co = (0, 1) if i == axis else (4, 5)
                    insts += self._star_delta(
                        bb, fr, face, self.r_own_v + i, self.r_nb_v + i,
                        self.r_nb_t + i, cm, co, compute_tag, skip_other=not riemann)
                for i in range(3):
                    cm, co = (2, 3) if i == axis else (6, 7)
                    insts += self._star_delta(
                        bb, fr, face, self.r_own_t + i, self.r_nb_t + i,
                        self.r_nb_v + i, cm, co, compute_tag, skip_other=not riemann)

                # 5. corrections, shipped to the hosting blocks
                def correction(dst_var, emit):
                    local = []
                    emit(local)
                    db, _ = self.block_of_var(e, dst_var)
                    local.append(self._transfer(
                        db, bb, fr, fr, self.r_t + 0, self.r_t + 0, 1,
                        f"{fetch_tag}:intra"))
                    cc = self._contrib_col(dst_var)
                    local.append(self._arith(
                        Opcode.ADD, db, fr, cc, cc, self.r_t + 0, compute_tag))
                    return local

                # common diagonal term lift*lam*X (const col 8)
                insts.append(self._gather(bb, fr, self.r_c + 0, 8, cmap, compute_tag))
                insts.append(self._arith(
                    Opcode.MUL, bb, fr, self.r_tmp, self.r_c + 0,
                    self.r_own_v + axis, compute_tag))
                for i in range(3):
                    var = TENSOR_TO_VOIGT[(i, i)]

                    def emit_diag(out, i=i):
                        if i == axis:
                            # lift*lam*X + 2*lift*mu*X
                            out.append(self._gather(
                                bb, fr, self.r_c + 1, 9, cmap, compute_tag))
                            out.append(self._arith(
                                Opcode.MUL, bb, fr, self.r_t + 0, self.r_c + 1,
                                self.r_own_v + axis, compute_tag))
                            out.append(self._arith(
                                Opcode.ADD, bb, fr, self.r_t + 0, self.r_t + 0,
                                self.r_t + 0, compute_tag))
                            out.append(self._arith(
                                Opcode.ADD, bb, fr, self.r_t + 0, self.r_t + 0,
                                self.r_tmp, compute_tag))
                        else:
                            out.append(Instruction(
                                Opcode.COPY, block=bb, rows=fr, dst=self.r_t + 0,
                                src1=self.r_tmp, tag=compute_tag))

                    insts += correction(var, emit_diag)
                # off-diagonals sigma_{axis,j}: lift*mu*Y_j (const col 9)
                insts.append(self._gather(bb, fr, self.r_c + 1, 9, cmap, compute_tag))
                for j in range(3):
                    if j == axis:
                        continue
                    var = TENSOR_TO_VOIGT[(axis, j)]

                    def emit_off(out, j=j):
                        out.append(self._arith(
                            Opcode.MUL, bb, fr, self.r_t + 0, self.r_c + 1,
                            self.r_own_v + j, compute_tag))

                    insts += correction(var, emit_off)
                # velocities: (lift*s/rho) * W_i (const col 10)
                insts.append(self._gather(bb, fr, self.r_c + 0, 10, cmap, compute_tag))
                for i in range(3):
                    var = V_VARS[i]

                    def emit_vel(out, i=i):
                        out.append(self._arith(
                            Opcode.MUL, bb, fr, self.r_t + 0, self.r_c + 0,
                            self.r_own_t + i, compute_tag))

                    insts += correction(var, emit_vel)
        return insts

    # ------------------------------------------------------------------ #

    def integration(self, stage: int, dt: float, tag: str = "integration",
                    elements=None) -> list:
        lay = self.lay3
        rows = lay.compute_rows
        a_s, b_s = float(self.rk.A[stage]), float(self.rk.B[stage])
        insts = []
        r_ic = self.r_c  # two coefficient registers; B_s rides in r_t
        for e in (self.mapper.elements if elements is None else elements):
            e = int(e)
            for part in (self.S1, self.S2, self.V):
                b = self.mapper.block_of(e, part)
                insts.append(self._bcast(b, rows, r_ic + 0, a_s, tag))
                insts.append(self._bcast(b, rows, r_ic + 1, float(dt), tag))
                insts.append(self._bcast(b, rows, self.r_t + 0, b_s, tag))
                for v in self._ABC:
                    aux, contrib, var = lay.col_aux[v], lay.col_contrib[v], lay.col_var[v]
                    insts.append(self._arith(Opcode.MUL, b, rows, aux, aux, r_ic + 0, tag))
                    insts.append(self._arith(
                        Opcode.MUL, b, rows, self.r_tmp, contrib, r_ic + 1, tag))
                    insts.append(self._arith(Opcode.ADD, b, rows, aux, aux, self.r_tmp, tag))
                    insts.append(self._arith(
                        Opcode.MUL, b, rows, self.r_tmp, aux, self.r_t + 0, tag))
                    insts.append(self._arith(Opcode.ADD, b, rows, var, var, self.r_tmp, tag))
        return insts

    def rk_stage(self, stage: int, dt: float) -> list:
        insts = self.volume()
        insts.append(Instruction(Opcode.BARRIER, tag="sync"))
        insts += self.flux()
        insts.append(Instruction(Opcode.BARRIER, tag="sync"))
        insts += self.integration(stage, dt)
        insts.append(Instruction(Opcode.BARRIER, tag="sync"))
        return insts

    def time_step(self, dt: float) -> list:
        insts = []
        for s in range(5):
            insts += self.rk_stage(s, dt)
        return insts
