"""Maxwell kernels on PIM: the §1 generalization taken down to hardware.

"Successful strategies for efficient computation of the acoustic wave
motion can also be applied to the elastic and electromagnetic waves"
(§2.1).  This module proves it constructively: the six Maxwell unknowns
``Ex Ey Ez Hx Hy Hz`` fit a single 32-word block row (unlike the elastic
nine), so the electromagnetic element maps exactly like the acoustic
one-block case — same Fig. 5 layout, same gather/derivative chains, same
face-row flux corrections — and the streams are functionally exact
against :class:`~repro.dg.maxwell.MaxwellOperator` (tested for central
and upwind fluxes).

Per-face componentwise form for face axis ``a`` with outward sign ``s``
(``eps_ijk`` the Levi-Civita symbol, ``d* = exterior - interior``)::

    corr_E_i = lift/(2 eps) * ( s eps_iak dH_k + (alpha/Z) dE_i )   i != a
    corr_H_i = lift/(2 mu)  * ( -s eps_iak dE_k + (alpha*Z) dH_i )  i != a
    corr_E_a = corr_H_a = 0

so each face touches two E and two H components, each a two-term
multiply-accumulate with host-precomputed constants — structurally the
acoustic flux with twice the variables.
"""

from __future__ import annotations

import numpy as np

from repro.core.kernels.base import KernelBase, face_sign_axis
from repro.core.layout import ElementLayout
from repro.core.mapper import ElementMapper
from repro.dg.maxwell import ElectromagneticMaterial
from repro.dg.mesh import HexMesh
from repro.dg.reference_element import ReferenceElement
from repro.pim.isa import Instruction, Opcode

__all__ = ["MaxwellOneBlockKernels"]

_VARS = ("Ex", "Ey", "Ez", "Hx", "Hy", "Hz")

#: curl taps: curl(F)_i = dF_k/dx_j - dF_j/dx_k for (i, j, k) cyclic
_CYCLIC = ((0, 1, 2), (1, 2, 0), (2, 0, 1))


class MaxwellOneBlockKernels(KernelBase):
    """One electromagnetic element per memory block (6-variable Fig. 5)."""

    n_vars = 6

    def __init__(
        self,
        mesh: HexMesh,
        element: ReferenceElement,
        material: ElectromagneticMaterial,
        mapper: ElementMapper,
        flux_kind: str = "upwind",
        alpha: float = 1.0,
    ):
        super().__init__(mesh, element, mapper, flux_kind)
        if flux_kind not in ("central", "upwind"):
            raise ValueError(f"flux must be 'central' or 'upwind', got {flux_kind!r}")
        self.material = material
        self.alpha = float(alpha) if flux_kind == "upwind" else 0.0
        self.layout = ElementLayout(element.order, variables=_VARS)
        lay = self.layout
        s = lay.scratch
        s.free_all()
        self.r_tap = s.alloc()
        self.r_coeff = s.alloc()
        self.r_tmp = s.alloc()
        self.r_acc = s.alloc()
        self.r_nb = s.alloc(2)  # the two fetched neighbor values per corr
        self.r_d = s.alloc(2)  # jumps
        self.r_c = s.alloc(2)  # face constants
        self.r_t = s.alloc()
        self.r_ic = self.r_c  # integration constants reuse the face regs

    # -- helpers ----------------------------------------------------------- #

    def _var_col(self, i: int, field: str) -> int:
        """Column of E_i / H_i."""
        return self.layout.col_var[f"{field}{'xyz'[i]}"]

    def _face_constants(self, e: int, face: int):
        """(cE, cPenE, cH, cPenH) for one face of one element."""
        sign, _ = face_sign_axis(face)
        eps = self.material.eps[e]
        mu = self.material.mu[e]
        z = float(np.sqrt(mu / eps))
        c_e = 0.5 * self.lift / eps * sign
        c_pe = 0.5 * self.lift / eps * self.alpha / z
        c_h = -0.5 * self.lift / mu * sign
        c_ph = 0.5 * self.lift / mu * self.alpha * z
        return c_e, c_pe, c_h, c_ph

    # -- setup ----------------------------------------------------------- #

    def setup(self, elements=None) -> list:
        lay = self.layout
        d = self.element.diff_1d
        insts = []
        for e in (self.mapper.elements if elements is None else elements):
            e = int(e)
            b = self.mapper.block_of(e)
            insts.append(Instruction(Opcode.DRAM_LOAD, block=b, tag="setup",
                                     meta={"bytes": lay.n_nodes * 4 * 8}))
            rows = (lay.row_dshape0, lay.row_dshape0 + lay.npts)
            for a in range(lay.npts):
                insts.append(self._bcast(b, rows, a, d[:, a], "setup"))
            inv_eps = self.dscale / self.material.eps[e]
            inv_mu = self.dscale / self.material.mu[e]
            insts.append(self._bcast(
                b, lay.compute_rows, lay.col_econst[0], float(inv_eps), "setup"))
            insts.append(self._bcast(
                b, lay.compute_rows, lay.col_econst[1], float(inv_mu), "setup"))
            for face in range(6):
                row = (lay.row_flux0 + face, lay.row_flux0 + face + 1)
                for c, val in enumerate(self._face_constants(e, face)):
                    insts.append(self._bcast(b, row, c, float(val), "setup"))
        return insts

    def load_state(self, state: np.ndarray, elements=None) -> list:
        lay = self.layout
        insts = []
        for e in (self.mapper.elements if elements is None else elements):
            e = int(e)
            b = self.mapper.block_of(e)
            insts.append(Instruction(Opcode.DRAM_LOAD, block=b, tag="load",
                                     meta={"bytes": lay.n_nodes * 4 * 6}))
            for i, v in enumerate(_VARS):
                insts.append(self._bcast(
                    b, lay.compute_rows, lay.col_var[v], state[i, e].astype(np.float32),
                    "load"))
        return insts

    def read_state(self, chip, elements=None) -> np.ndarray:
        lay = self.layout
        out = np.zeros((6, self.mesh.n_elements, lay.n_nodes), dtype=np.float32)
        for e in (self.mapper.elements if elements is None else elements):
            e = int(e)
            blk = chip.block(self.mapper.block_of(e))
            for i, v in enumerate(_VARS):
                out[i, e] = blk.data[: lay.n_nodes, lay.col_var[v]]
        return out

    def read_contributions(self, chip, elements=None) -> np.ndarray:
        lay = self.layout
        out = np.zeros((6, self.mesh.n_elements, lay.n_nodes), dtype=np.float32)
        for e in (self.mapper.elements if elements is None else elements):
            e = int(e)
            blk = chip.block(self.mapper.block_of(e))
            for i, v in enumerate(_VARS):
                out[i, e] = blk.data[: lay.n_nodes, lay.col_contrib[v]]
        return out

    # -- Volume: the two curls --------------------------------------------- #

    def _derivative_chain(self, b, axis, var_col, acc_col, tag):
        lay = self.layout
        rows = lay.compute_rows
        insts = []
        dmap = lay.dshape_row_map(axis)
        for a in range(lay.npts):
            insts.append(self._gather(b, rows, self.r_tap, var_col, lay.tap_row_map(axis, a), tag))
            insts.append(self._gather(b, rows, self.r_coeff, a, dmap, tag))
            dst = acc_col if a == 0 else self.r_tmp
            insts.append(self._arith(Opcode.MUL, b, rows, dst, self.r_tap, self.r_coeff, tag))
            if a != 0:
                insts.append(self._arith(Opcode.ADD, b, rows, acc_col, acc_col, self.r_tmp, tag))
        return insts

    def volume(self, tag: str = "volume", elements=None) -> list:
        """contrib_E = (ds/eps) curl H ; contrib_H = -(ds/mu) curl E."""
        lay = self.layout
        rows = lay.compute_rows
        insts = []
        for e in (self.mapper.elements if elements is None else elements):
            e = int(e)
            b = self.mapper.block_of(e)
            for field, econst, negate in (("H", lay.col_econst[0], False),
                                          ("E", lay.col_econst[1], True)):
                target = "E" if field == "H" else "H"
                for i, j, k in _CYCLIC:
                    # curl(F)_i = dF_k/dx_j - dF_j/dx_k
                    insts += self._derivative_chain(
                        b, j, self._var_col(k, field), self.r_acc, tag)
                    insts += self._derivative_chain(
                        b, k, self._var_col(j, field), self.r_d + 0, tag)
                    first, second = (self.r_d + 0, self.r_acc) if negate else (
                        self.r_acc, self.r_d + 0)
                    insts.append(self._arith(
                        Opcode.SUB, b, rows, self.r_acc, first, second, tag))
                    insts.append(self._arith(
                        Opcode.MUL, b, rows,
                        self.layout.col_contrib[f"{target}{'xyz'[i]}"],
                        self.r_acc, econst, tag))
        return insts

    # -- Flux -------------------------------------------------------------- #

    def flux(self, faces=range(6), fetch_tag="flux:fetch", compute_tag="flux:compute",
             elements=None) -> list:
        lay = self.layout
        upwind = self.alpha != 0.0
        insts = []
        for e in (self.mapper.elements if elements is None else elements):
            e = int(e)
            b = self.mapper.block_of(e)
            for face in faces:
                fr = self.face_rows(face)
                nfr = self.neighbor_face_rows(face)
                _, axis = face_sign_axis(face)
                nbr = self.neighbor(e, face)
                if nbr is None:
                    continue
                nb = self.mapper.block_of(nbr)
                cmap = lay.face_row_map(fr, lay.row_flux0 + face)
                # only two scratch columns are free in the 6-variable
                # layout, so neighbor operands are fetched pairwise per
                # correction (one row-buffer transfer each)
                for i, j, k in _CYCLIC:
                    if i == axis:
                        continue  # corr_*_a = 0
                    # the cross-product partner index: eps_iak dX_k with
                    # a = axis fixed; the only k with eps_{i,axis,k} != 0:
                    k_idx = 3 - i - axis  # the remaining axis
                    parity = 1.0 if (i, axis, k_idx) in (
                        (0, 1, 2), (1, 2, 0), (2, 0, 1)) else -1.0
                    for field, target_const, pen_const in (("H", 0, 1), ("E", 2, 3)):
                        # corr for target field (E when sourcing H, and
                        # vice versa) at component i
                        target = "E" if field == "H" else "H"
                        partner = self._var_col(k_idx, field)
                        same = self._var_col(i, target)
                        # jumps: d_partner, d_same
                        insts.append(self._transfer(
                            b, nb, fr, nfr, self.r_nb + 0, partner, 1, fetch_tag))
                        insts.append(self._arith(
                            Opcode.SUB, b, fr, self.r_d + 0, self.r_nb + 0, partner,
                            compute_tag))
                        insts.append(self._gather(
                            b, fr, self.r_c + 0, target_const, cmap, compute_tag))
                        insts.append(self._arith(
                            Opcode.MUL, b, fr, self.r_t, self.r_c + 0, self.r_d + 0,
                            compute_tag))
                        if parity < 0:
                            # negate via 0 - x: reuse SUB with a zeroed reg
                            insts.append(self._bcast(b, fr, self.r_d + 1, 0.0,
                                                     compute_tag))
                            insts.append(self._arith(
                                Opcode.SUB, b, fr, self.r_t, self.r_d + 1, self.r_t,
                                compute_tag))
                        if upwind:
                            insts.append(self._transfer(
                                b, nb, fr, nfr, self.r_nb + 1, same, 1, fetch_tag))
                            insts.append(self._arith(
                                Opcode.SUB, b, fr, self.r_d + 1, self.r_nb + 1, same,
                                compute_tag))
                            insts.append(self._gather(
                                b, fr, self.r_c + 1, pen_const, cmap, compute_tag))
                            insts.append(self._arith(
                                Opcode.MUL, b, fr, self.r_d + 1, self.r_c + 1,
                                self.r_d + 1, compute_tag))
                            insts.append(self._arith(
                                Opcode.ADD, b, fr, self.r_t, self.r_t, self.r_d + 1,
                                compute_tag))
                        cc = lay.col_contrib[f"{target}{'xyz'[i]}"]
                        insts.append(self._arith(
                            Opcode.ADD, b, fr, cc, cc, self.r_t, compute_tag))
        return insts

    # -- Integration -------------------------------------------------------- #

    def integration(self, stage: int, dt: float, tag: str = "integration",
                    elements=None) -> list:
        lay = self.layout
        rows = lay.compute_rows
        a_s, b_s = float(self.rk.A[stage]), float(self.rk.B[stage])
        insts = []
        for e in (self.mapper.elements if elements is None else elements):
            e = int(e)
            b = self.mapper.block_of(e)
            insts.append(self._bcast(b, rows, self.r_ic + 0, a_s, tag))
            insts.append(self._bcast(b, rows, self.r_ic + 1, float(dt), tag))
            insts.append(self._bcast(b, rows, self.r_t, b_s, tag))
            for v in _VARS:
                aux, contrib, var = lay.col_aux[v], lay.col_contrib[v], lay.col_var[v]
                insts.append(self._arith(Opcode.MUL, b, rows, aux, aux, self.r_ic + 0, tag))
                insts.append(self._arith(
                    Opcode.MUL, b, rows, self.r_tmp, contrib, self.r_ic + 1, tag))
                insts.append(self._arith(Opcode.ADD, b, rows, aux, aux, self.r_tmp, tag))
                insts.append(self._arith(Opcode.MUL, b, rows, self.r_tmp, aux, self.r_t, tag))
                insts.append(self._arith(Opcode.ADD, b, rows, var, var, self.r_tmp, tag))
        return insts

    def rk_stage(self, stage: int, dt: float) -> list:
        insts = self.volume()
        insts.append(Instruction(Opcode.BARRIER, tag="sync"))
        insts += self.flux()
        insts.append(Instruction(Opcode.BARRIER, tag="sync"))
        insts += self.integration(stage, dt)
        insts.append(Instruction(Opcode.BARRIER, tag="sync"))
        return insts

    def time_step(self, dt: float) -> list:
        insts = []
        for s in range(5):
            insts += self.rk_stage(s, dt)
        return insts
