"""Shared infrastructure for kernel generators."""

from __future__ import annotations

import numpy as np

from repro.core.layout import ElementLayout
from repro.core.mapper import ElementMapper
from repro.dg.mesh import HexMesh
from repro.dg.reference_element import FACE_NORMALS, ReferenceElement, opposite_face
from repro.dg.timestepping import LSRK45
from repro.pim.isa import Instruction, Opcode

__all__ = ["KernelBase", "face_sign_axis"]


_FACE_SIGN_AXIS: dict = {}


def face_sign_axis(face: int) -> tuple[float, int]:
    """(outward-normal sign, axis index) of a reference face (memoized —
    six faces, requested once per emitted flux instruction)."""
    out = _FACE_SIGN_AXIS.get(face)
    if out is None:
        normal = FACE_NORMALS[face]
        axis = int(np.argmax(np.abs(normal)))
        out = _FACE_SIGN_AXIS[face] = (float(normal[axis]), axis)
    return out


class KernelBase:
    """Common state and emit helpers for the per-physics kernel builders.

    Subclasses own the flux coefficient tables (host-precomputed, §4.3)
    and the per-kernel instruction emitters.
    """

    def __init__(
        self,
        mesh: HexMesh,
        element: ReferenceElement,
        mapper: ElementMapper,
        flux_kind: str = "riemann",
    ):
        self.mesh = mesh
        self.element = element
        self.mapper = mapper
        self.flux_kind = flux_kind
        self.order = element.order
        self.dscale = 2.0 / mesh.h
        self.lift = self.dscale / element.w_end
        self.rk = LSRK45(rhs=None)

    # -- emit helpers ---------------------------------------------------- #

    @staticmethod
    def _bcast(block, rows, dst, value, tag) -> Instruction:
        return Instruction(
            Opcode.BROADCAST, block=block, rows=rows, dst=dst, value=value, tag=tag
        )

    #: row-map distinct-row counts keyed by array identity; the value holds
    #: the array itself so the id stays pinned.  Row maps come from the
    #: (memoized) ElementLayout producers, so the same handful of arrays
    #: recur for every element of every compile; the size cap only guards
    #: against a caller streaming fresh arrays.
    _GATHER_STATS: dict = {}

    @staticmethod
    def _gather(block, rows, dst, src, row_map, tag) -> Instruction:
        cache = KernelBase._GATHER_STATS
        hit = cache.get(id(row_map))
        if hit is not None and hit[0] is row_map:
            n_unique = hit[1]
        else:
            # row maps are small non-negative row indices: a boolean
            # occupancy mask counts the distinct rows without np.unique's
            # sort.
            rm = np.asarray(row_map)
            seen = np.zeros(int(rm.max()) + 1 if rm.size else 0, dtype=bool)
            seen[rm] = True
            n_unique = int(np.count_nonzero(seen))
            if len(cache) > 4096:
                cache.clear()
            cache[id(row_map)] = (row_map, n_unique)
        return Instruction(
            Opcode.GATHER, block=block, rows=rows, dst=dst, src1=src, row_map=row_map,
            n_unique_rows=n_unique, tag=tag,
        )

    @staticmethod
    def _arith(op, block, rows, dst, src1, src2, tag) -> Instruction:
        return Instruction(op, block=block, rows=rows, dst=dst, src1=src1, src2=src2, tag=tag)

    @staticmethod
    def _transfer(dst_block, src_block, dst_rows, src_rows, dst_col, src_col, words, tag):
        return Instruction(
            Opcode.TRANSFER,
            block=dst_block,
            src_block=src_block,
            rows=dst_rows,
            src_rows=src_rows,
            dst=dst_col,
            src1=src_col,
            words=words,
            tag=tag,
        )

    # -- geometry helpers -------------------------------------------------- #

    def face_rows(self, face: int) -> np.ndarray:
        """Compute-row ids of a face's nodes (= face node ids)."""
        return self.element.face_nodes[face]

    def neighbor_face_rows(self, face: int) -> np.ndarray:
        """Matching rows in the neighbor block (its opposite face)."""
        return self.element.face_nodes[opposite_face(face)]

    def neighbor(self, e: int, face: int) -> int | None:
        """Mapped neighbor across ``face``, or None when it is off-batch.

        Off-batch faces are reconciled by the Fig. 7 sliced-flux schedule
        (an extra streamed pass), so per-stage kernels simply skip them.
        """
        nbr = int(self.mesh.neighbors[e, face])
        if nbr < 0:
            raise NotImplementedError(
                "PIM kernel generation currently assumes periodic meshes; "
                "physical boundaries are handled by the numpy reference solver"
            )
        return nbr if nbr in self.mapper else None
