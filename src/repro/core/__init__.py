"""Wave-PIM core: mapping wave simulation onto the PIM substrate.

This subpackage is the paper's primary contribution:

* :mod:`layout` — the Fig. 5 single-element block layout (compute rows +
  constants storage rows, per-node column map);
* :mod:`mapper` — element-to-block placement (naive / expanded), Morton
  ordered so mesh neighbors share low H-tree switches;
* :mod:`kernels` — instruction-stream generators for the Volume, Flux and
  Integration computations (Fig. 2), in one-block and expanded forms
  (Figs. 8/9);
* :mod:`planner` — the capacity planner that reproduces Table 5's
  naive / expansion / batching configuration matrix;
* :mod:`batching` — §6.1 folding, including the Fig. 7 sliced Flux
  schedule;
* :mod:`pipeline` — §6.3 overlap of host pre-processing, neighbor
  fetches and compute (Figs. 10/13);
* :mod:`compiler` / :mod:`runtime` — end-to-end: benchmark + chip ->
  timing and energy estimates, plus a functional mode that executes the
  compiled acoustic kernels on the chip model and reproduces the numpy
  dG solver bit-for-bit (up to float32 rounding).
"""

from repro.core.layout import ElementLayout, AXIS_NAMES
from repro.core.mapper import ElementMapper, morton3_encode, morton3_decode
from repro.core.planner import Plan, plan_configuration, TABLE5_BENCHMARKS
from repro.core.batching import flux_slice_schedule, batch_dram_traffic, BatchStep
from repro.core.pipeline import StageTimes, pipelined_stage_time, serial_stage_time, pipeline_timeline
from repro.core.compiler import WavePimCompiler, CompiledBenchmark
from repro.core.runtime import PimRunEstimate, estimate_benchmark
from repro.core.folding import FoldedAcousticRunner

__all__ = [
    "ElementLayout",
    "AXIS_NAMES",
    "ElementMapper",
    "morton3_encode",
    "morton3_decode",
    "Plan",
    "plan_configuration",
    "TABLE5_BENCHMARKS",
    "flux_slice_schedule",
    "batch_dram_traffic",
    "BatchStep",
    "StageTimes",
    "pipelined_stage_time",
    "serial_stage_time",
    "pipeline_timeline",
    "WavePimCompiler",
    "CompiledBenchmark",
    "PimRunEstimate",
    "estimate_benchmark",
    "FoldedAcousticRunner",
]
