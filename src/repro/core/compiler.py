"""The Wave-PIM compiler: benchmark + chip -> costed deployment.

``WavePimCompiler.compile`` resolves the Table 5 plan, builds the mapper
and kernel generators, and measures per-RK-stage lane times by executing
representative instruction streams on the chip model:

* Volume / Flux-compute / Integration are row-parallel and identical for
  every element, so one interior element's stream gives the lane time;
* Flux *fetch* contends for the tile interconnect, so the transfer
  streams of every element in one tile are scheduled together (all tiles
  are statistically identical for a uniform mesh) — this is where the
  H-tree/Bus gap of Fig. 14 comes from;
* host sqrt/inverse pre-processing and batching DRAM traffic are priced
  by their models.

The result feeds :mod:`repro.core.runtime` for end-to-end time/energy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.batching import batch_dram_traffic
from repro.core.cache import compile_fingerprint
from repro.obs import get_logger, get_metrics, get_tracer
from repro.core.kernels.acoustic import AcousticFourBlockKernels, AcousticOneBlockKernels
from repro.core.kernels.elastic import ElasticFourBlockKernels
from repro.core.mapper import ElementMapper
from repro.core.pipeline import StageTimes
from repro.core.planner import Plan, plan_configuration
from repro.dg.materials import AcousticMaterial, ElasticMaterial
from repro.dg.mesh import HexMesh
from repro.dg.reference_element import ReferenceElement
from repro.pim.chip import PimChip
from repro.pim.executor import ChipExecutor
from repro.pim.isa import Opcode
from repro.pim.plan import plan_enabled
from repro.pim.schedule import schedule_enabled, schedule_plan
from repro.pim.params import ChipConfig

__all__ = ["WavePimCompiler", "CompiledBenchmark"]

log = get_logger(__name__)

#: Host pre-processing per element per RK stage (sqrt + inverse refresh
#: for the flux coefficients; materials are per-element constants).
HOST_OPS_PER_ELEMENT_STAGE = 2

#: Fig. 13's fetch split: faces with -1 normals, then +1 normals.
MINUS_FACES = (0, 2, 4)
PLUS_FACES = (1, 3, 5)


@dataclass
class CompiledBenchmark:
    """A fully costed benchmark deployment."""

    physics: str
    refinement_level: int
    flux_kind: str
    order: int
    plan: Plan
    chip: ChipConfig
    stage_times: StageTimes
    #: dynamic energy per element per RK stage (J), by kernel tag
    stage_energy_per_element: dict
    #: per-element instruction counts per RK stage, by opcode
    op_counts_per_element: dict
    #: off-chip traffic per time-step (bytes) from batching
    dram_bytes_per_step: float
    n_elements: int = 0
    elements_per_batch: int = 0

    @property
    def name(self) -> str:
        flux = {"central": "Central", "riemann": "Riemann"}[self.flux_kind]
        if self.physics == "acoustic":
            return f"Acoustic_{self.refinement_level}"
        return f"Elastic-{flux}_{self.refinement_level}"


class WavePimCompiler:
    """Compiles the paper's six benchmarks onto a chip configuration."""

    def __init__(self, order: int = 7):
        self.order = order
        self._element_cache: dict = {}

    def _ref_element(self, order: int) -> ReferenceElement:
        if order not in self._element_cache:
            self._element_cache[order] = ReferenceElement(order)
        return self._element_cache[order]

    # ------------------------------------------------------------------ #

    def _build_kernels(self, physics, flux_kind, mesh, element, mapper):
        if physics == "acoustic":
            material = AcousticMaterial.homogeneous(mesh.n_elements)
            if mapper.g == 1:
                return AcousticOneBlockKernels(mesh, element, material, mapper, flux_kind)
            return AcousticFourBlockKernels(mesh, element, material, mapper, flux_kind)
        material = ElasticMaterial.homogeneous(mesh.n_elements)
        if mapper.g == 12:
            # E_r&E_p: nine variable blocks + three buffers; the kernel
            # streams are the 4-block ones re-spread, which divides the
            # arithmetic lanes by ~3 — modeled by a parallelism factor in
            # compile() rather than a third generator.
            mapper = ElementMapper(mesh.m, mapper.chip, 4, elements=mapper.elements)
            return ElasticFourBlockKernels(mesh, element, material, mapper, flux_kind)
        return ElasticFourBlockKernels(mesh, element, material, mapper, flux_kind)

    @staticmethod
    def _interior_elements(mapper, mesh):
        """Elements whose six neighbors are all present in the mapper.

        Vectorized: one ``np.isin`` over the batch's neighbor table instead
        of ~57k per-element membership probes.
        """
        elems = np.asarray(mapper.elements)
        nbrs = mesh.neighbors[elems]  # (B, 6)
        ok = np.isin(nbrs, elems).all(axis=1)
        return [int(e) for e in elems[ok]]

    @classmethod
    def representative_elements(cls, mapper, mesh):
        """``(rep, interior, true_interior)`` of one batch.

        ``true_interior`` are the fully-interior elements (all six
        neighbors mapped); ``interior`` falls back to the best-connected
        elements for thin batch slabs that have none; ``rep`` is the
        single element whose stream stands in for the whole batch (every
        element's stream has the same shape).  Shared by the costing pass
        and the static checker's program builder.
        """
        interior = true_interior = cls._interior_elements(mapper, mesh)
        if not interior:
            # thin batch slabs (e.g. one y-slice, elastic_5 on 512MB) have
            # no fully-interior element; use the best-connected one — its
            # off-batch faces are priced by the Fig. 7 streamed passes.
            def connectivity(e):
                return sum(int(n) in mapper for n in mesh.neighbors[e])

            interior = sorted(map(int, mapper.elements), key=connectivity)[-64:]
        rep = [interior[len(interior) // 2]]
        return rep, interior, true_interior

    def _prepare(self, physics, refinement_level, chip, flux_kind, order):
        """Resolve the plan and build mesh/element/mapper/kernels.

        The front half of a compile, shared with the static checker
        (:mod:`repro.analysis.programs`), which audits the same streams the
        costing pass prices.  Note the returned kernels' mapper may differ
        from the returned ``mapper`` (the g=12 elastic plan re-spreads onto
        4 blocks); address-level consumers must use ``kern.mapper``.
        """
        tracer = get_tracer()
        with tracer.span("compile/plan"):
            plan = plan_configuration(physics, refinement_level, chip)
        mesh = HexMesh.from_refinement_level(refinement_level)
        element = self._ref_element(order)
        batch_elements = (
            None
            if not plan.batched
            else np.arange(plan.elements_per_batch)
        )
        g = 4 if plan.blocks_per_element == 12 else plan.blocks_per_element
        with tracer.span("compile/kernels", plan=plan.label):
            mapper = ElementMapper(mesh.m, chip, g, elements=batch_elements)
            kern = self._build_kernels(physics, flux_kind, mesh, element, mapper)
        return plan, mesh, element, mapper, kern

    def compile(
        self,
        physics: str,
        refinement_level: int,
        chip: ChipConfig,
        flux_kind: str = "riemann",
        order: int | None = None,
        cache=None,
        verify: bool = False,
    ) -> CompiledBenchmark:
        """Cost one benchmark on one chip configuration.

        ``cache`` is an optional :class:`~repro.core.cache.CompileCache`;
        when given, a fingerprint hit skips the whole costing pass and a
        miss stores the fresh result for future processes.

        With ``verify=True`` the static checker audits the benchmark's
        representative streams first — *before* the cache lookup, so a
        stale-but-cached deployment of a since-broken kernel still fails —
        raising :class:`~repro.analysis.checker.ProgramCheckError` on any
        error finding.
        """
        order = self.order if order is None else order
        if verify:
            # imported lazily: repro.analysis depends on this module.
            from repro.analysis.programs import verify_benchmark

            verify_benchmark(
                physics, refinement_level, chip,
                flux_kind=flux_kind, order=order, compiler=self,
            )
        with get_tracer().span(
            f"compile/{physics}_{refinement_level}",
            chip=chip.name, flux=flux_kind, order=order,
            interconnect=chip.interconnect,
        ) as sp:
            if cache is not None:
                key = compile_fingerprint(physics, refinement_level, chip, flux_kind, order)
                hit = cache.get(key)
                if hit is not None:
                    sp.set(cache="hit")
                    return hit
                result = self._compile_uncached(physics, refinement_level, chip, flux_kind, order)
                cache.put(key, result)
                sp.set(cache="miss")
                return result
            sp.set(cache="off")
            return self._compile_uncached(physics, refinement_level, chip, flux_kind, order)

    def _compile_uncached(
        self,
        physics: str,
        refinement_level: int,
        chip: ChipConfig,
        flux_kind: str,
        order: int,
    ) -> CompiledBenchmark:
        tracer = get_tracer()
        log.debug("compiling %s_%d on %s (%s flux, order %d)",
                  physics, refinement_level, chip.name, flux_kind, order)
        plan, mesh, element, mapper, kern = self._prepare(
            physics, refinement_level, chip, flux_kind, order
        )
        rep, interior, true_interior = self.representative_elements(mapper, mesh)

        chip_model = PimChip(chip)
        emitted = 0

        use_plan = plan_enabled()
        use_sched = use_plan and schedule_enabled()

        def run(insts, label):
            nonlocal emitted
            emitted += len(insts)
            with tracer.span(f"compile/{label}", instructions=len(insts)):
                ex = ChipExecutor(chip_model)
                if use_plan:
                    # lower + vectorized replay; bit-identical to serial
                    # dispatch (REPRO_PLAN=off restores the audit path).
                    lowered = ex.lower(insts)
                    if use_sched:
                        # REPRO_SCHED: makespan-schedule the lowered plan
                        # (best-of: never worse than emission order).
                        lowered = schedule_plan(ex, lowered)
                        ex.reset_clocks()
                    return ex.run(lowered, functional=False)
                return ex.run(insts, functional=False, serial=True)

        # -- lane times from representative streams ----------------------- #
        vol = run(kern.volume(elements=rep), "volume_kernel")
        integ = run(kern.integration(0, 1e-4, elements=rep), "integration_kernel")

        def sans_fetch(insts):
            """Compute lane: the flux stream with its fetches stripped
            (they are scheduled on their own Fig. 13 lane)."""
            return [i for i in insts if not (i.op is Opcode.TRANSFER and "fetch" in i.tag)]

        flux_m_c = run(sans_fetch(kern.flux(faces=MINUS_FACES, elements=rep)),
                       "flux_minus_kernel")
        flux_p_c = run(sans_fetch(kern.flux(faces=PLUS_FACES, elements=rep)),
                       "flux_plus_kernel")

        # -- tile-level fetch contention ---------------------------------- #
        # the fetch stream covers fully-interior elements only (thin-batch
        # fallbacks have their off-batch faces priced by the Fig. 7 passes),
        # so filter the *true* interior set, reused instead of recomputed.
        rep_tile = mapper.tile_of(interior[0])
        tile_elems = [e for e in true_interior if mapper.tile_of(e) == rep_tile]
        fetch_m = run(self._fetch_only(kern, MINUS_FACES, tile_elems),
                      "fetch_minus_kernel").total_time_s
        fetch_p = run(self._fetch_only(kern, PLUS_FACES, tile_elems),
                      "fetch_plus_kernel").total_time_s

        metrics = get_metrics()
        if metrics.enabled:
            metrics.inc("compiler.compiles")
            metrics.inc("compiler.instructions_emitted", emitted)
            metrics.inc(f"compiler.instructions_emitted.{type(kern).__name__}", emitted)

        host_t = ChipExecutor(chip_model).host.time_s(
            HOST_OPS_PER_ELEMENT_STAGE * mapper.n_elements
        )

        parallel_boost = 3.0 if plan.blocks_per_element == 12 else 1.0
        st = StageTimes(
            volume=vol.total_time_s / parallel_boost,
            flux_fetch_minus=fetch_m,
            flux_compute_minus=flux_m_c.total_time_s / parallel_boost,
            flux_fetch_plus=fetch_p,
            flux_compute_plus=flux_p_c.total_time_s / parallel_boost,
            integration=integ.total_time_s,
            host=host_t,
        )

        # -- per-element per-stage dynamic energy and op counts ----------- #
        energy = {}
        ops = {}
        for rep_report in (vol, integ, flux_m_c, flux_p_c):
            for tag, e_j in rep_report.energy_by_tag.items():
                energy[tag] = energy.get(tag, 0.0) + e_j
            for op, n in rep_report.op_counts.items():
                ops[op] = ops.get(op, 0) + n

        n_vars = kern.n_vars
        traffic = batch_dram_traffic(
            n_elements=mesh.n_elements,
            n_nodes=element.n_nodes,
            n_vars=n_vars,
            n_batches=plan.n_batches,
        )

        return CompiledBenchmark(
            physics=physics,
            refinement_level=refinement_level,
            flux_kind=flux_kind,
            order=order,
            plan=plan,
            chip=chip,
            stage_times=st,
            stage_energy_per_element=energy,
            op_counts_per_element=ops,
            dram_bytes_per_step=traffic.bytes_per_step,
            n_elements=mesh.n_elements,
            elements_per_batch=plan.elements_per_batch,
        )

    @staticmethod
    def _fetch_only(kern, faces, elements):
        """The TRANSFER sub-stream of the flux kernel for a set of elements."""
        insts = kern.flux(faces=faces, elements=elements)
        return [i for i in insts if i.op is Opcode.TRANSFER and "fetch" in i.tag]
