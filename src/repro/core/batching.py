"""Batching: fitting big problems on small chips (paper §6.1, Figs. 6/7).

*Volume/Integration* batching is trivial — "executing our initial solution
multiple times, since there is no inter-element data dependency" — with
two extra off-chip transactions per additional batch (store outputs, load
inputs) and constants broadcast only for the first batch (Fig. 6).

*Flux* batching is the interesting part (Fig. 7): when only half the
y-slices fit on chip, x- and z-axis flux is purely intra-slice, and the
y-axis (-1) normal pairs slices (0,1),(2,3),... while the (+1) normal
pairs (1,2),(3,4),... — the (+1) pass needs one extra slice streamed in
before the resident window is written back.  :func:`flux_slice_schedule`
generates the paper's 12-step schedule for the 32-slice / 16-resident
example and generalizes it to any batch count; tests verify that every
y-interface is computed exactly once with both operands resident.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["BatchStep", "flux_slice_schedule", "batch_dram_traffic", "volume_batch_steps"]


@dataclass(frozen=True)
class BatchStep:
    """One step of a batched schedule (matches Fig. 7's numbered steps)."""

    action: str  # "load" | "store" | "flux" | "compute"
    slices: tuple
    axis: str = ""  # "x" | "y" | "z" for flux steps
    normals: tuple = ()
    note: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        core = f"{self.action} slices {self.slices[0]}..{self.slices[-1]}"
        if self.axis:
            core += f" axis {self.axis} normals {self.normals}"
        return core


def _rng(a: int, b: int) -> tuple:
    return tuple(range(a, b))


def flux_slice_schedule(n_slices: int, resident_slices: int) -> list:
    """The Fig. 7 sliding-window Flux schedule.

    Parameters
    ----------
    n_slices:
        Total y-slices in the model (``2^level`` for the paper meshes).
    resident_slices:
        How many slices fit on chip at once.  Must be even so that the
        (-1)-normal pairs never straddle the window edge.

    Returns the ordered step list; with ``resident_slices >= n_slices``
    the schedule degenerates to the unbatched one (single load, all axes,
    single store).
    """
    if n_slices < 1:
        raise ValueError("n_slices must be >= 1")
    if resident_slices < 2:
        raise ValueError("need at least 2 resident slices for y-flux pairs")
    if resident_slices % 2:
        raise ValueError("resident_slices must be even (y-pairs must not straddle)")

    steps: list = []
    if resident_slices >= n_slices:
        steps.append(BatchStep("load", _rng(0, n_slices)))
        steps.append(BatchStep("flux", _rng(0, n_slices), "x", (-1, +1)))
        steps.append(BatchStep("flux", _rng(0, n_slices), "z", (-1, +1)))
        steps.append(BatchStep("flux", _rng(0, n_slices), "y", (-1,)))
        steps.append(BatchStep("flux", _rng(0, n_slices), "y", (+1,)))
        steps.append(BatchStep("store", _rng(0, n_slices)))
        return steps

    w = resident_slices
    lo = 0
    steps.append(BatchStep("load", _rng(0, w), note="initial window"))
    while True:
        hi = min(lo + w, n_slices)  # resident window is [lo, hi)
        window = _rng(lo, hi)
        # intra-slice axes: no inter-slice dependence (Fig. 7 steps 2-3, 8-9)
        steps.append(BatchStep("flux", window, "x", (-1, +1)))
        steps.append(BatchStep("flux", window, "z", (-1, +1)))
        # y-axis, -1 normal: pairs (lo,lo+1),(lo+2,lo+3),... stay in-window
        steps.append(BatchStep("flux", window, "y", (-1,)))
        last_window = hi >= n_slices
        if last_window:
            # +1 normal pairs (lo+1,lo+2).. ; at the model boundary the top
            # slice has no +1 partner inside (or wraps — handled by caller).
            steps.append(BatchStep("flux", _rng(lo + 1, n_slices - 1 + 1), "y", (+1,)))
            steps.append(BatchStep("store", window, note="final window"))
            break
        # stream one slice: store the lowest, load slice `hi` (Fig. 7 step 5)
        steps.append(BatchStep("store", (lo,), note="evict lowest slice"))
        steps.append(BatchStep("load", (hi,), note="prefetch next slice"))
        # +1 normal for pairs (lo+1,lo+2) ... (hi-1,hi) — all resident now
        steps.append(BatchStep("flux", _rng(lo + 1, hi), "y", (+1,)))
        # write back the rest of the old window, load the next one
        steps.append(BatchStep("store", _rng(lo + 1, hi), note="evict window"))
        nxt = min(hi + w, n_slices)
        if hi + 1 < nxt:
            steps.append(BatchStep("load", _rng(hi + 1, nxt), note="next window"))
        lo = hi
    return steps


def covered_y_interfaces(steps, n_slices: int, periodic: bool = False) -> list:
    """Which y-interfaces (s, s+1) a schedule computes (for validation)."""
    covered = []
    for st in steps:
        if st.action != "flux" or st.axis != "y":
            continue
        for normal in st.normals:
            for s in st.slices:
                if normal == -1 and s % 2 == 0 and (s + 1) in st.slices:
                    covered.append((s, s + 1))
                if normal == +1 and s % 2 == 1:
                    if s + 1 < n_slices or periodic:
                        covered.append((s, (s + 1) % n_slices))
    return covered


def volume_batch_steps(n_batches: int) -> list:
    """Fig. 6: the folded Volume/Integration flow.

    Constants broadcast happens only in batch 0 ("for the second batch,
    step 1, i.e. broadcasting constants, can be removed").
    """
    steps = []
    for b in range(n_batches):
        if b == 0:
            steps.append(BatchStep("broadcast", (b,), note="constants (first batch only)"))
        steps.append(BatchStep("load", (b,), note="inputs"))
        steps.append(BatchStep("compute", (b,)))
        steps.append(BatchStep("store", (b,), note="outputs"))
    return steps


@dataclass
class DramTraffic:
    """Per-time-step off-chip traffic induced by batching."""

    bytes_per_step: float
    transactions_per_step: int
    setup_bytes: float = 0.0


def batch_dram_traffic(
    n_elements: int,
    n_nodes: int,
    n_vars: int,
    n_batches: int,
    stages_per_step: int = 5,
    word_bytes: int = 4,
    constants_words_per_node: int = 4,
) -> DramTraffic:
    """Off-chip bytes per time-step caused by folding into batches.

    With one batch everything stays resident: zero steady-state traffic
    ("zero overhead DRAM data transfer since batching is not needed",
    §7.4).  With ``n_batches > 1``, every kernel stage must stream each
    element's state in and out once per stage.
    """
    if n_batches < 1:
        raise ValueError("n_batches must be >= 1")
    state_bytes = n_elements * n_nodes * n_vars * word_bytes
    setup = n_elements * n_nodes * constants_words_per_node * word_bytes
    if n_batches == 1:
        return DramTraffic(bytes_per_step=0.0, transactions_per_step=0, setup_bytes=setup)
    # per stage: load inputs + store outputs for the whole model, plus the
    # auxiliaries that integration needs (2x state in practice).
    per_stage = 2.0 * state_bytes
    return DramTraffic(
        bytes_per_step=stages_per_step * per_stage,
        transactions_per_step=stages_per_step * 2 * n_batches,
        setup_bytes=setup,
    )
