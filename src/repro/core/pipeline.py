"""Pipelining: overlapping fetch, host pre-processing and compute (§6.3).

Per RK stage the Wave-PIM dataflow has seven lanes (Figs. 10/13):

* host sqrt/inverse pre-processing for the *next* Flux (CPU lane),
* neighbor-data fetch for the (-1) and (+1) normals (interconnect lane),
* Flux compute for each normal, Volume compute, Integration (PIM lane).

Volume and Integration cannot pipeline internally ("both intra-block data
movement and computation are implemented by applying different voltages on
bitlines and wordlines" — a structural hazard), but across kernels:

* host work and the (-1) fetch hide under Volume;
* the (+1) fetch hides under the (-1) Flux compute.

Without pipelining everything serializes; the paper reports the
unpipelined design reaches only ~0.77x of the pipelined throughput (§7.5).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "StageTimes",
    "pipelined_stage_time",
    "serial_stage_time",
    "pipeline_timeline",
    "timeline_trace_events",
    "TimelineEntry",
]


@dataclass(frozen=True)
class StageTimes:
    """Per-RK-stage lane durations (seconds)."""

    volume: float
    flux_fetch_minus: float
    flux_compute_minus: float
    flux_fetch_plus: float
    flux_compute_plus: float
    integration: float
    host: float = 0.0

    def scaled(self, factor: float) -> "StageTimes":
        return StageTimes(*(getattr(self, f) * factor for f in (
            "volume", "flux_fetch_minus", "flux_compute_minus",
            "flux_fetch_plus", "flux_compute_plus", "integration", "host")))


def serial_stage_time(st: StageTimes) -> float:
    """No pipelining: every lane serializes (the §7.5 baseline)."""
    return (
        st.volume
        + st.host
        + st.flux_fetch_minus
        + st.flux_compute_minus
        + st.flux_fetch_plus
        + st.flux_compute_plus
        + st.integration
    )


def pipelined_stage_time(st: StageTimes) -> float:
    """Overlapped schedule of Figs. 10/13.

    ``max(volume, host, fetch-) + max(flux-, fetch+) + flux+ + integration``
    """
    return (
        max(st.volume, st.host, st.flux_fetch_minus)
        + max(st.flux_compute_minus, st.flux_fetch_plus)
        + st.flux_compute_plus
        + st.integration
    )


def pipeline_speedup(st: StageTimes) -> float:
    """Pipelined over serial throughput ratio (> 1)."""
    return serial_stage_time(st) / pipelined_stage_time(st)


@dataclass(frozen=True)
class TimelineEntry:
    """One bar of the Fig. 13 breakdown chart."""

    lane: str
    label: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


def pipeline_timeline(st: StageTimes) -> list:
    """The Fig. 13 timeline: per-lane (start, end) bars for one stage."""
    t1 = max(st.volume, st.host, st.flux_fetch_minus)
    t2 = t1 + max(st.flux_compute_minus, st.flux_fetch_plus)
    t3 = t2 + st.flux_compute_plus
    t4 = t3 + st.integration
    return [
        TimelineEntry("cpu_host", "sqrt/inverse", 0.0, st.host),
        TimelineEntry("volume", "Volume", 0.0, st.volume),
        TimelineEntry("flux_fetch", "Flux (-1) data fetch", 0.0, st.flux_fetch_minus),
        TimelineEntry("flux_compute", "Flux (-1) compute", t1, t1 + st.flux_compute_minus),
        TimelineEntry("flux_fetch", "Flux (+1) data fetch", t1, t1 + st.flux_fetch_plus),
        TimelineEntry("flux_compute", "Flux (+1) compute", t2, t3),
        TimelineEntry("integration", "Integration", t3, t4),
    ]


#: stable Chrome-trace lane (tid) per Fig. 13 lane name.
_LANE_TIDS = {
    "cpu_host": 100, "volume": 101, "flux_fetch": 102,
    "flux_compute": 103, "integration": 104,
}


def timeline_trace_events(st: StageTimes, origin_s: float = 0.0) -> list:
    """The Fig. 13 timeline as Chrome ``trace_event`` dicts.

    Each lane becomes its own ``tid`` so Perfetto renders the overlap
    structure exactly like the paper's figure; ``origin_s`` places the
    stage on an absolute trace timeline (e.g. the enclosing span's start).
    """
    events = []
    for entry in pipeline_timeline(st):
        events.append(
            {
                "name": entry.label,
                "cat": "pipeline",
                "ph": "X",
                "ts": (origin_s + entry.start) * 1e6,
                "dur": entry.duration * 1e6,
                "pid": 0,
                "tid": _LANE_TIDS.get(entry.lane, 105),
                "args": {"lane": entry.lane},
            }
        )
    return events
