"""End-to-end runtime and energy estimation for compiled benchmarks.

Composes the compiler's per-stage lane times with the §6.3 pipeline
overlap, the §6.1 batching traffic, static power (Table 3), per-op
switching energy, HBM and host energy — producing the numbers behind
Figs. 11 and 12.  The §7.3 28 nm -> 12 nm process scaling is applied on
request ("3.81x performance improvement and 2.0x energy savings").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.compiler import CompiledBenchmark, WavePimCompiler
from repro.core.pipeline import pipelined_stage_time, serial_stage_time
from repro.obs import get_metrics, get_tracer
from repro.pim.chip import PimChip
from repro.pim.energy import EnergyAccount
from repro.pim.hbm import HbmModel
from repro.pim.params import DEFAULT_SCALING, ChipConfig, ProcessScaling

__all__ = ["PimRunEstimate", "estimate_benchmark", "RK_STAGES_PER_STEP"]

#: "In each time-step, each kernel is launched five times." (Table 6 note)
RK_STAGES_PER_STEP = 5


@dataclass
class PimRunEstimate:
    """Timing/energy of one benchmark run on one PIM configuration."""

    compiled: CompiledBenchmark
    n_steps: int
    pipelined: bool
    scaled_to_12nm: bool
    time_s: float
    energy_j: float
    stage_time_s: float
    dram_time_per_step_s: float
    #: modeled seconds of one full time-step (all RK stages of every batch
    #: plus the DRAM traffic) — ``time_s / n_steps`` before the fault and
    #: checkpoint overheads; the unit the plan-replay benchmarks compare
    #: wall-clock against.
    step_time_s: float
    dynamic_energy_j: float
    static_energy_j: float
    hbm_energy_j: float
    host_energy_j: float
    #: expected fault-mitigation time (retries + parity + recomputes);
    #: zero unless a fault model was supplied to the estimate.
    fault_overhead_s: float = 0.0
    #: time spent writing periodic restart checkpoints to HBM.
    checkpoint_overhead_s: float = 0.0

    @property
    def name(self) -> str:
        node = "12nm" if self.scaled_to_12nm else "28nm"
        return f"PIM-{self.compiled.chip.name}-{node}"

    @property
    def power_w(self) -> float:
        return self.energy_j / self.time_s if self.time_s else 0.0


def estimate_benchmark(
    compiled: CompiledBenchmark,
    n_steps: int = 1024,
    pipelined: bool = True,
    scale_to_12nm: bool = False,
    scaling: ProcessScaling = DEFAULT_SCALING,
    faults=None,
    checkpoint_every: int | None = None,
) -> PimRunEstimate:
    """Turn a compiled benchmark into wall-clock time and energy.

    With a :class:`~repro.faults.model.FaultModel` the estimate includes
    the *expected* mitigation overhead (transfer retries on the fetch
    lanes, parity upkeep and flip recomputes on the compute lanes); with
    ``checkpoint_every`` it adds the HBM time of periodic restart
    snapshots.  Both default off and leave the numbers bit-identical.
    """
    with get_tracer().span(
        "execute/estimate", benchmark=compiled.name, chip=compiled.chip.name,
        n_steps=n_steps, pipelined=pipelined, scaled_12nm=scale_to_12nm,
    ) as sp:
        est = _estimate(
            compiled, n_steps, pipelined, scale_to_12nm, scaling,
            faults, checkpoint_every,
        )
        sp.set(time_s=est.time_s, energy_j=est.energy_j)
    return est


#: state variables per physics (checkpoint sizing).
_N_VARS = {"acoustic": 4, "elastic": 9}


def _fault_overhead_per_stage(compiled, faults) -> float:
    """Expected mitigation seconds added to one RK stage of one batch."""
    from repro.pim.arithmetic import default_op_costs
    from repro.pim.executor import _COPY_NORS

    cfg = faults.config
    st = compiled.stage_times
    costs = default_op_costs(compiled.chip.device)
    overhead = 0.0
    # transfer retries stretch the fetch lanes by p/(1-p) on expectation.
    p_retry = cfg.transfer_drop_rate + (cfg.transfer_corrupt_rate if cfg.protect else 0.0)
    if p_retry > 0.0:
        p_retry = min(p_retry, 0.99)
        overhead += (st.flux_fetch_minus + st.flux_fetch_plus) * p_retry / (1.0 - p_retry)
    compute = st.volume + st.flux_compute_minus + st.flux_compute_plus + st.integration
    if cfg.protect:
        # parity upkeep: one 2-NOR copy per compute op, vs ~add-sized ops.
        overhead += compute * _COPY_NORS / costs.nor_count("add")
    if cfg.flip_rate > 0.0:
        # each detected flip recomputes one op: expected redo fraction is
        # flip_rate x NORs x active rows per op (first order, small rates).
        n_rows = (compiled.order + 1) ** 3
        redo = min(cfg.flip_rate * costs.nor_count("add") * n_rows, 1.0)
        if cfg.protect:
            overhead += compute * redo
    return overhead


def _estimate(compiled, n_steps, pipelined, scale_to_12nm, scaling,
              faults=None, checkpoint_every=None) -> PimRunEstimate:
    st = compiled.stage_times
    stage = pipelined_stage_time(st) if pipelined else serial_stage_time(st)

    hbm = HbmModel()
    plan = compiled.plan
    dram_per_step = hbm.transfer_time_s(compiled.dram_bytes_per_step)
    # per time-step: all batches run serially (batching), stages pipelined
    step_time = stage * RK_STAGES_PER_STEP * plan.n_batches + dram_per_step
    total_time = step_time * n_steps

    fault_overhead = 0.0
    if faults is not None and faults.config.enabled:
        fault_overhead = (
            _fault_overhead_per_stage(compiled, faults)
            * RK_STAGES_PER_STEP * plan.n_batches * n_steps
        )
        total_time += fault_overhead
    checkpoint_overhead = 0.0
    if checkpoint_every:
        n_vars = _N_VARS.get(compiled.physics, 4)
        state_bytes = compiled.n_elements * (compiled.order + 1) ** 3 * n_vars * 4
        n_ckpts = n_steps // int(checkpoint_every)
        checkpoint_overhead = n_ckpts * hbm.transfer_time_s(state_bytes)
        total_time += checkpoint_overhead

    # -- energy --------------------------------------------------------- #
    chip_model = PimChip(compiled.chip)
    # dynamic: per-element per-stage energy (all tags) x elements x stages
    per_elem_stage = sum(compiled.stage_energy_per_element.values())
    dynamic = per_elem_stage * compiled.n_elements * RK_STAGES_PER_STEP * n_steps
    static = chip_model.static_power_w(include_host=False) * total_time
    hbm_energy = hbm.transfer_energy_j(compiled.dram_bytes_per_step) * n_steps
    host_power = compiled.chip.power.cpu_host_w
    host_energy = host_power * total_time

    time_s = total_time
    energy_j = dynamic + static + hbm_energy + host_energy
    if scale_to_12nm:
        time_s /= scaling.performance
        energy_j /= scaling.energy

    metrics = get_metrics()
    if metrics.enabled:
        metrics.inc("runtime.estimates")
        account = EnergyAccount()
        account.add("dynamic", dynamic)
        account.add("static", static)
        account.add("hbm", hbm_energy)
        account.add("host", host_energy)
        account.publish(metrics, prefix="runtime.energy_j")

    return PimRunEstimate(
        compiled=compiled,
        n_steps=n_steps,
        pipelined=pipelined,
        scaled_to_12nm=scale_to_12nm,
        time_s=time_s,
        energy_j=energy_j,
        stage_time_s=stage,
        dram_time_per_step_s=dram_per_step,
        step_time_s=step_time,
        dynamic_energy_j=dynamic,
        static_energy_j=static,
        hbm_energy_j=hbm_energy,
        host_energy_j=host_energy,
        fault_overhead_s=fault_overhead,
        checkpoint_overhead_s=checkpoint_overhead,
    )
