"""End-to-end runtime and energy estimation for compiled benchmarks.

Composes the compiler's per-stage lane times with the §6.3 pipeline
overlap, the §6.1 batching traffic, static power (Table 3), per-op
switching energy, HBM and host energy — producing the numbers behind
Figs. 11 and 12.  The §7.3 28 nm -> 12 nm process scaling is applied on
request ("3.81x performance improvement and 2.0x energy savings").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.compiler import CompiledBenchmark, WavePimCompiler
from repro.core.pipeline import pipelined_stage_time, serial_stage_time
from repro.obs import get_metrics, get_tracer
from repro.pim.chip import PimChip
from repro.pim.energy import EnergyAccount
from repro.pim.hbm import HbmModel
from repro.pim.params import DEFAULT_SCALING, ChipConfig, ProcessScaling

__all__ = ["PimRunEstimate", "estimate_benchmark", "RK_STAGES_PER_STEP"]

#: "In each time-step, each kernel is launched five times." (Table 6 note)
RK_STAGES_PER_STEP = 5


@dataclass
class PimRunEstimate:
    """Timing/energy of one benchmark run on one PIM configuration."""

    compiled: CompiledBenchmark
    n_steps: int
    pipelined: bool
    scaled_to_12nm: bool
    time_s: float
    energy_j: float
    stage_time_s: float
    dram_time_per_step_s: float
    dynamic_energy_j: float
    static_energy_j: float
    hbm_energy_j: float
    host_energy_j: float

    @property
    def name(self) -> str:
        node = "12nm" if self.scaled_to_12nm else "28nm"
        return f"PIM-{self.compiled.chip.name}-{node}"

    @property
    def power_w(self) -> float:
        return self.energy_j / self.time_s if self.time_s else 0.0


def estimate_benchmark(
    compiled: CompiledBenchmark,
    n_steps: int = 1024,
    pipelined: bool = True,
    scale_to_12nm: bool = False,
    scaling: ProcessScaling = DEFAULT_SCALING,
) -> PimRunEstimate:
    """Turn a compiled benchmark into wall-clock time and energy."""
    with get_tracer().span(
        "execute/estimate", benchmark=compiled.name, chip=compiled.chip.name,
        n_steps=n_steps, pipelined=pipelined, scaled_12nm=scale_to_12nm,
    ) as sp:
        est = _estimate(compiled, n_steps, pipelined, scale_to_12nm, scaling)
        sp.set(time_s=est.time_s, energy_j=est.energy_j)
    return est


def _estimate(compiled, n_steps, pipelined, scale_to_12nm, scaling) -> PimRunEstimate:
    st = compiled.stage_times
    stage = pipelined_stage_time(st) if pipelined else serial_stage_time(st)

    hbm = HbmModel()
    plan = compiled.plan
    dram_per_step = hbm.transfer_time_s(compiled.dram_bytes_per_step)
    # per time-step: all batches run serially (batching), stages pipelined
    step_time = stage * RK_STAGES_PER_STEP * plan.n_batches + dram_per_step
    total_time = step_time * n_steps

    # -- energy --------------------------------------------------------- #
    chip_model = PimChip(compiled.chip)
    # dynamic: per-element per-stage energy (all tags) x elements x stages
    per_elem_stage = sum(compiled.stage_energy_per_element.values())
    dynamic = per_elem_stage * compiled.n_elements * RK_STAGES_PER_STEP * n_steps
    static = chip_model.static_power_w(include_host=False) * total_time
    hbm_energy = hbm.transfer_energy_j(compiled.dram_bytes_per_step) * n_steps
    host_power = compiled.chip.power.cpu_host_w
    host_energy = host_power * total_time

    time_s = total_time
    energy_j = dynamic + static + hbm_energy + host_energy
    if scale_to_12nm:
        time_s /= scaling.performance
        energy_j /= scaling.energy

    metrics = get_metrics()
    if metrics.enabled:
        metrics.inc("runtime.estimates")
        account = EnergyAccount()
        account.add("dynamic", dynamic)
        account.add("static", static)
        account.add("hbm", hbm_energy)
        account.add("host", host_energy)
        account.publish(metrics, prefix="runtime.energy_j")

    return PimRunEstimate(
        compiled=compiled,
        n_steps=n_steps,
        pipelined=pipelined,
        scaled_to_12nm=scale_to_12nm,
        time_s=time_s,
        energy_j=energy_j,
        stage_time_s=stage,
        dram_time_per_step_s=dram_per_step,
        dynamic_energy_j=dynamic,
        static_energy_j=static,
        hbm_energy_j=hbm_energy,
        host_energy_j=host_energy,
    )
