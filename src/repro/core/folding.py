"""Functional execution of *batched* deployments (paper §6.1, Figs. 6/7).

When the mesh does not fit on the chip, the state lives in off-chip DRAM
(a host numpy array here) and y-slice windows stream through the PIM:

* per RK stage, each window pass loads its slices' variables and
  auxiliaries, plus **ghost copies** of the two adjacent slices'
  variables (the functional analog of Fig. 7's prefetch step — the
  per-element flux needs both y-neighbors);
* Volume, Flux and Integration run on the resident window exactly as in
  the unbatched program;
* the window's updated variables/auxiliaries are written back to a fresh
  DRAM image, so every flux in the stage reads the stage-begin snapshot
  — the same semantics the unbatched barriers give.

``FoldedAcousticRunner`` therefore produces *bit-identical* (float32)
results to the unbatched chip and to the numpy dG solver — the test-suite
checks both — turning §6.1 from a cost model into verified machinery.
"""

from __future__ import annotations

import numpy as np

from repro.core.kernels.acoustic import AcousticOneBlockKernels
from repro.core.mapper import ElementMapper
from repro.dg.materials import AcousticMaterial
from repro.dg.mesh import HexMesh
from repro.dg.reference_element import ReferenceElement
from repro.pim.chip import PimChip
from repro.pim.executor import ChipExecutor, TimingReport
from repro.pim.params import ChipConfig

__all__ = ["FoldedAcousticRunner"]


class FoldedAcousticRunner:
    """Streams y-slice windows of an acoustic model through a small chip."""

    def __init__(
        self,
        mesh: HexMesh,
        element: ReferenceElement,
        material: AcousticMaterial,
        chip_config: ChipConfig,
        window_slices: int,
        flux_kind: str = "riemann",
    ):
        if window_slices < 1 or window_slices > mesh.m:
            raise ValueError(f"window must be in [1, {mesh.m}], got {window_slices}")
        if mesh.m % window_slices:
            raise ValueError("mesh slices must divide evenly into windows")
        resident_elements = (window_slices + 2) * mesh.m**2
        if resident_elements > chip_config.n_blocks:
            raise ValueError(
                f"window of {window_slices} slices (+2 ghosts) needs "
                f"{resident_elements} blocks; chip has {chip_config.n_blocks}"
            )
        self.mesh = mesh
        self.element = element
        self.material = material
        self.chip_config = chip_config
        self.window = window_slices
        self.flux_kind = flux_kind
        self.n_windows = mesh.m // window_slices

        nn = element.n_nodes
        #: off-chip DRAM images of the unknowns and the RK register
        self.dram_state = np.zeros((4, mesh.n_elements, nn), dtype=np.float32)
        self.dram_aux = np.zeros_like(self.dram_state)
        self.time = 0.0
        self.last_report: TimingReport | None = None

    # ------------------------------------------------------------------ #

    def set_state(self, state: np.ndarray) -> None:
        if state.shape != self.dram_state.shape:
            raise ValueError(f"state shape {state.shape} != {self.dram_state.shape}")
        self.dram_state = state.astype(np.float32, copy=True)
        self.dram_aux[:] = 0.0

    def read_state(self) -> np.ndarray:
        return self.dram_state.copy()

    # ------------------------------------------------------------------ #

    def _window_elements(self, w: int) -> tuple[np.ndarray, np.ndarray]:
        """(own elements, resident elements incl. ghost slices) of window w."""
        m = self.mesh.m
        lo = w * self.window
        own_slices = [lo + i for i in range(self.window)]
        ghost = [(lo - 1) % m, (lo + self.window) % m]
        own = np.concatenate([self.mesh.slice_elements(s, 1) for s in own_slices])
        resident_slices = list(dict.fromkeys(own_slices + ghost))
        resident = np.concatenate(
            [self.mesh.slice_elements(s, 1) for s in resident_slices]
        )
        return own, resident

    def step(self, dt: float) -> TimingReport:
        """One full LSRK time-step, window by window (5 stages x windows)."""
        report = TimingReport()
        for stage in range(5):
            new_state = self.dram_state.copy()
            new_aux = self.dram_aux.copy()
            for w in range(self.n_windows):
                own, resident = self._window_elements(w)
                rep = self._window_pass(stage, dt, own, resident, new_state, new_aux)
                report.merge(rep)
            self.dram_state = new_state
            self.dram_aux = new_aux
        self.time += dt
        self.last_report = report
        return report

    def _window_pass(self, stage, dt, own, resident, new_state, new_aux):
        """Load -> Volume -> Flux -> Integration -> store for one window."""
        chip = PimChip(self.chip_config)
        mapper = ElementMapper(self.mesh.m, self.chip_config, 1, elements=resident)
        kern = AcousticOneBlockKernels(
            self.mesh, self.element, self.material, mapper, self.flux_kind
        )
        ex = ChipExecutor(chip)
        lay = kern.layout
        nn = lay.n_nodes

        # Fig. 6 step 1-2: constants broadcast + load inputs.  Ghost slices
        # receive variables only (read-only neighbor data, Fig. 7 step 5).
        insts = kern.setup()
        insts += kern.load_state(self.dram_state)
        ex.run(insts, functional=True)
        # auxiliaries for the window's own elements (RK register round-trip)
        own_set = set(int(e) for e in own)
        for e in own_set:
            blk = chip.block(mapper.block_of(e))
            for i, v in enumerate(("p", "vx", "vy", "vz")):
                blk.data[:nn, lay.col_aux[v]] = self.dram_aux[i, e]

        # Fig. 6 step 3: compute (Volume + Flux + Integration on own elements)
        own_list = [int(e) for e in own]
        program = kern.volume(elements=own_list)
        program += kern.flux(elements=own_list)
        program += kern.integration(stage, dt, elements=own_list)
        rep = ex.run(program, functional=True)

        # Fig. 6 step 4: store outputs back to DRAM
        for e in own_list:
            blk = chip.block(mapper.block_of(e))
            for i, v in enumerate(("p", "vx", "vy", "vz")):
                new_state[i, e] = blk.data[:nn, lay.col_var[v]]
                new_aux[i, e] = blk.data[:nn, lay.col_aux[v]]
        return rep

    def run(self, n_steps: int, dt: float) -> np.ndarray:
        for _ in range(n_steps):
            self.step(dt)
        return self.read_state()
