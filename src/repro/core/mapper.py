"""Element-to-block placement.

"We layout the data in a hardware-friendly manner for the PIM architecture
to minimize the overhead of inter-element data transfer" (§1).  Elements
are ranked by a 3-D Morton code of their grid position and placed on
consecutive block groups; because the tile's H-tree uses 2-D Morton leaf
numbering, mesh-adjacent elements land under nearby switches, keeping most
Flux transfers below a low-level switch.

With ``blocks_per_element = g`` (1 naive acoustic, 4 expanded acoustic or
elastic E_r, 12 elastic E_r&E_p), element rank ``r`` owns global blocks
``[g*r, g*(r+1))``; part 0 hosts the first variable group.
"""

from __future__ import annotations

import numpy as np

from repro.pim.params import ChipConfig

__all__ = ["morton3_encode", "morton3_decode", "morton_order",
           "ElementMapper", "ShardMapper"]


def morton3_encode(ix: int, iy: int, iz: int) -> int:
    """Interleave three coordinates into a 3-D Morton code."""
    code = 0
    for bit in range(max(ix.bit_length(), iy.bit_length(), iz.bit_length(), 1)):
        code |= ((ix >> bit) & 1) << (3 * bit)
        code |= ((iy >> bit) & 1) << (3 * bit + 1)
        code |= ((iz >> bit) & 1) << (3 * bit + 2)
    return code


def _morton3_encode_array(ix: np.ndarray, iy: np.ndarray, iz: np.ndarray) -> np.ndarray:
    """Vectorized :func:`morton3_encode` over coordinate arrays."""
    ix = np.asarray(ix, dtype=np.int64)
    iy = np.asarray(iy, dtype=np.int64)
    iz = np.asarray(iz, dtype=np.int64)
    code = np.zeros(ix.shape, dtype=np.int64)
    if ix.size == 0:
        return code
    top = max(int(ix.max()), int(iy.max()), int(iz.max()))
    for bit in range(max(top.bit_length(), 1)):
        code |= ((ix >> bit) & 1) << (3 * bit)
        code |= ((iy >> bit) & 1) << (3 * bit + 1)
        code |= ((iz >> bit) & 1) << (3 * bit + 2)
    return code


def morton3_decode(code: int) -> tuple[int, int, int]:
    """Inverse of :func:`morton3_encode`."""
    ix = iy = iz = 0
    bit = 0
    while code >> (3 * bit):
        ix |= ((code >> (3 * bit)) & 1) << bit
        iy |= ((code >> (3 * bit + 1)) & 1) << bit
        iz |= ((code >> (3 * bit + 2)) & 1) << bit
        bit += 1
    return ix, iy, iz


def morton_order(mesh_m: int, elements: np.ndarray | None = None) -> np.ndarray:
    """Element ids sorted by their 3-D Morton rank (the placement order).

    The same ranking :class:`ElementMapper` applies internally, exposed so
    the multi-chip partitioner can cut the mesh into contiguous Morton
    chunks — compact boxes whose face boundaries (halos) stay small.
    """
    e = (np.arange(mesh_m**3, dtype=np.int64) if elements is None
         else np.asarray(elements, dtype=np.int64))
    ranks = _morton3_encode_array(e % mesh_m, (e // mesh_m) % mesh_m,
                                  e // (mesh_m**2))
    return e[np.argsort(ranks, kind="stable")]


class ElementMapper:
    """Maps a batch of mesh elements onto chip block groups."""

    def __init__(
        self,
        mesh_m: int,
        chip: ChipConfig,
        blocks_per_element: int = 1,
        elements: np.ndarray | None = None,
        fault_model=None,
        chip_model=None,
    ):
        """``elements`` restricts the mapping to one batch (defaults to all).

        With a :class:`~repro.faults.model.FaultModel`, blocks whose
        stuck-cell count reaches the remap threshold (or that have worn
        out) are excluded and the mapping shifts onto the healthy spares —
        graceful degradation: effective capacity shrinks, answers stay
        right.  Without faults the identity mapping is kept and
        :meth:`block_of` takes the exact fault-free fast path.

        ``chip_model`` is the live :class:`~repro.pim.chip.PimChip` the
        mapped programs will execute on (``chip`` is only its static
        config).  When a spare-block remap moves any block, the model's
        memoized transfer paths are invalidated (``routing_epoch`` bump)
        so no executor or lowered plan replays a stale route.
        """
        self.mesh_m = mesh_m
        self.chip = chip
        self.g = int(blocks_per_element)
        if self.g < 1:
            raise ValueError("blocks_per_element must be >= 1")
        self._phys: np.ndarray | None = None
        bad: set = set()
        if fault_model is not None:
            bad = fault_model.bad_blocks(
                chip.n_blocks, chip.block_rows, chip.row_words
            )
        all_elements = np.arange(mesh_m**3) if elements is None else np.asarray(elements)
        # Morton-rank the batch (vectorized bit-interleave over the whole
        # element array — this runs once per compile and used to dominate
        # mapper construction at ~350k scalar encode calls).
        ranks = _morton3_encode_array(
            all_elements % mesh_m,
            (all_elements // mesh_m) % mesh_m,
            all_elements // (mesh_m**2),
        )
        order = np.argsort(ranks, kind="stable")
        self.elements = all_elements[order]
        n_good = chip.n_blocks - len(bad)
        if self.n_blocks_needed > n_good:
            if bad:
                raise ValueError(
                    f"batch of {len(self.elements)} elements x {self.g} blocks "
                    f"exceeds the {n_good} healthy blocks left after excluding "
                    f"{len(bad)} faulty of {chip.n_blocks} — use smaller batches"
                )
            raise ValueError(
                f"batch of {len(self.elements)} elements x {self.g} blocks "
                f"exceeds chip capacity of {chip.n_blocks} blocks — use batching"
            )
        self._rank_of = {int(e): i for i, e in enumerate(self.elements)}
        if bad:
            # spare-block remap: logical slot i lands on the i-th healthy
            # physical block.  Morton locality degrades only past the first
            # excluded block; everything before keeps its identity slot.
            good = np.setdiff1d(
                np.arange(chip.n_blocks, dtype=np.int64),
                np.fromiter(bad, dtype=np.int64),
            )
            phys = good[: self.n_blocks_needed]
            if not np.array_equal(phys, np.arange(self.n_blocks_needed)):
                self._phys = phys
                n_moved = int((phys != np.arange(self.n_blocks_needed)).sum())
                fault_model.record_remaps(
                    n_moved,
                    detail=f"{n_moved}/{self.n_blocks_needed} blocks remapped "
                    f"around {len(bad)} faulty",
                )
                if chip_model is not None:
                    # block ids just changed physical location: memoized
                    # (src, dst) paths on the chip are stale.
                    chip_model.invalidate_routes()

    # ------------------------------------------------------------------ #

    @property
    def n_elements(self) -> int:
        return len(self.elements)

    @property
    def n_blocks_needed(self) -> int:
        return self.n_elements * self.g

    @property
    def utilization(self) -> float:
        """Fraction of chip blocks used — the §7.4 under-utilization metric."""
        return self.n_blocks_needed / self.chip.n_blocks

    def rank(self, element: int) -> int:
        try:
            return self._rank_of[int(element)]
        except KeyError:
            raise KeyError(f"element {element} not in this batch") from None

    def __contains__(self, element: int) -> bool:
        return int(element) in self._rank_of

    def block_ids(self, element: int) -> tuple:
        """Global block ids owned by ``element`` (length ``g``)."""
        base = self.rank(element) * self.g
        if self._phys is None:
            return tuple(range(base, base + self.g))
        return tuple(int(b) for b in self._phys[base:base + self.g])

    def block_of(self, element: int, part: int = 0) -> int:
        if not 0 <= part < self.g:
            raise IndexError(f"part {part} outside group of {self.g}")
        logical = self.rank(element) * self.g + part
        if self._phys is None:
            return logical
        return int(self._phys[logical])

    def tile_of(self, element: int, part: int = 0) -> int:
        return self.block_of(element, part) // self.chip.blocks_per_tile

    def elements_in_tile(self, tile: int) -> np.ndarray:
        """Elements whose part-0 block lives in ``tile``."""
        per_tile = self.chip.blocks_per_tile
        lo, hi = tile * per_tile, (tile + 1) * per_tile
        blocks0 = np.arange(self.n_elements) * self.g
        if self._phys is not None:
            blocks0 = self._phys[blocks0]
        mask = (blocks0 >= lo) & (blocks0 < hi)
        return self.elements[mask]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ElementMapper(K={self.n_elements}, g={self.g}, "
            f"chip={self.chip.name}, util={self.utilization:.1%})"
        )


class ShardMapper(ElementMapper):
    """One shard of a multi-chip partition: owned elements plus their halo.

    The shard's chip hosts block groups for both its ``owned`` elements
    (whose state it computes) and its ``halo`` elements (read-only ghost
    copies refreshed by the inter-chip exchange each RK stage).  Placement
    follows the same Morton ranking as :class:`ElementMapper` over the
    union, so kernels emitted against a ShardMapper lower and route
    exactly like single-chip programs — the flux emitters find halo
    neighbors through the ordinary :meth:`block_of` lookup.
    """

    def __init__(
        self,
        mesh_m: int,
        chip: ChipConfig,
        blocks_per_element: int = 1,
        *,
        owned: np.ndarray,
        halo: np.ndarray | None = None,
        shard_id: int = 0,
        fault_model=None,
        chip_model=None,
    ):
        owned = np.asarray(owned, dtype=np.int64)
        halo = (np.empty(0, dtype=np.int64) if halo is None
                else np.asarray(halo, dtype=np.int64))
        if np.intersect1d(owned, halo).size:
            raise ValueError(
                f"shard {shard_id}: owned and halo sets overlap "
                f"({np.intersect1d(owned, halo).tolist()[:4]}...)")
        try:
            super().__init__(
                mesh_m, chip, blocks_per_element,
                elements=np.concatenate([owned, halo]),
                fault_model=fault_model, chip_model=chip_model,
            )
        except ValueError as exc:
            raise ValueError(
                f"shard {shard_id}: {exc} ({len(owned)} owned + "
                f"{len(halo)} halo elements; use more shards)") from None
        self.shard_id = int(shard_id)
        self.owned = owned
        self.halo = halo
        self._owned_set = frozenset(int(e) for e in owned)

    @property
    def n_owned(self) -> int:
        return len(self.owned)

    @property
    def n_halo(self) -> int:
        return len(self.halo)

    def is_owned(self, element: int) -> bool:
        return int(element) in self._owned_set

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardMapper(shard={self.shard_id}, owned={self.n_owned}, "
            f"halo={self.n_halo}, g={self.g}, chip={self.chip.name}, "
            f"util={self.utilization:.1%})"
        )
