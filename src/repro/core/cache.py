"""Content-addressed persistent cache for compiled benchmarks.

``WavePimCompiler.compile`` costs 0.1–1 s per (benchmark, chip) cell and
every grid experiment (fig11, fig12, ...) needs 24+ cells, so each CLI or
pytest *process* used to pay the full compile matrix cold.  This module
gives :class:`~repro.core.compiler.CompiledBenchmark` a content-addressed
on-disk home:

* the **fingerprint** hashes everything the result depends on — physics,
  refinement level, flux kind, element order, the complete chip parameter
  set (capacity, geometry, interconnect, device constants, power table,
  clock), and a schema version — so any model-knob change invalidates
  stale entries by construction;
* entries are pickles written atomically (tmp file + rename), and a
  corrupted or unreadable entry is treated as a miss (and deleted), never
  an error: the worst case is a recompile;
* the cache directory defaults to ``~/.cache/wave-pim-repro`` and is
  overridden with ``REPRO_CACHE_DIR``; ``REPRO_NO_CACHE=1`` (or the CLI
  ``--no-cache`` flag) bypasses it entirely.

Bump :data:`SCHEMA_VERSION` whenever the compiler's cost model or the
``CompiledBenchmark`` layout changes meaning.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.obs import get_metrics

__all__ = [
    "SCHEMA_VERSION",
    "CacheStats",
    "CompileCache",
    "default_cache",
    "compile_fingerprint",
    "cache_enabled",
]

#: Version of the (cost model, CompiledBenchmark layout) contract.  Any
#: change to compiler semantics that keeps the same inputs must bump this.
SCHEMA_VERSION = 1

_ENV_DIR = "REPRO_CACHE_DIR"
_ENV_NO_CACHE = "REPRO_NO_CACHE"


def _default_root() -> Path:
    env = os.environ.get(_ENV_DIR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "wave-pim-repro"


def cache_enabled() -> bool:
    """False when ``REPRO_NO_CACHE`` is set to a truthy value."""
    return os.environ.get(_ENV_NO_CACHE, "") not in ("1", "true", "yes")


def compile_fingerprint(physics: str, refinement_level: int, chip,
                        flux_kind: str, order: int) -> str:
    """Stable content hash of one compile cell.

    ``chip`` is a :class:`~repro.pim.params.ChipConfig`; every field
    (including the nested device/power dataclasses and the interconnect
    kind) lands in the digest, so two chips that differ in any knob can
    never alias.
    """
    payload = {
        "schema": SCHEMA_VERSION,
        "physics": physics,
        "level": int(refinement_level),
        "flux": flux_kind,
        "order": int(order),
        "chip": dataclasses.asdict(chip),
    }
    blob = json.dumps(payload, sort_keys=True, default=repr).encode()
    return hashlib.sha256(blob).hexdigest()


@dataclass
class CacheStats:
    """Per-instance hit/miss accounting of one :class:`CompileCache`.

    Every field is mirrored into the process-wide metrics registry
    (``cache.hits``, ``cache.misses``, ``cache.stores``, ``cache.errors``,
    ``cache.bytes_read``, ``cache.bytes_written``) so traces and the
    BENCH_perf.json guard see cache behaviour across *all* instances.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    errors: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def record(self, field_name: str, n: int = 1) -> None:
        setattr(self, field_name, getattr(self, field_name) + n)
        get_metrics().inc(f"cache.{field_name}", n)

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


class CompileCache:
    """Pickle-per-entry on-disk cache keyed by content fingerprint."""

    def __init__(self, root: Path | str | None = None, enabled: bool | None = None):
        self.root = Path(root) if root is not None else _default_root()
        self.enabled = cache_enabled() if enabled is None else enabled
        self.stats = CacheStats()

    # ------------------------------------------------------------------ #

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    def get(self, key: str):
        """Cached value for ``key`` or None; never raises on bad entries."""
        if not self.enabled:
            return None
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                blob = fh.read()
            value = pickle.loads(blob)
        except FileNotFoundError:
            self.stats.record("misses")
            return None
        except Exception:
            # truncated/corrupted/incompatible pickle: drop it and recompile
            self.stats.record("errors")
            self.stats.record("misses")
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.record("hits")
        self.stats.record("bytes_read", len(blob))
        return value

    def put(self, key: str, value) -> None:
        """Store ``value`` atomically; IO failures are silently ignored."""
        if not self.enabled:
            return
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(blob)
                os.replace(tmp, self._path(key))
            finally:
                if os.path.exists(tmp):
                    os.unlink(tmp)
        except OSError:
            self.stats.record("errors")
            return
        self.stats.record("stores")
        self.stats.record("bytes_written", len(blob))

    # ------------------------------------------------------------------ #

    def entries(self) -> list:
        """Paths of all on-disk entries (empty when the dir is absent)."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*.pkl"))

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        n = 0
        for p in self.entries():
            try:
                p.unlink()
                n += 1
            except OSError:
                pass
        return n

    def disk_stats(self) -> dict:
        """On-disk entry count and byte size plus this process's hit/miss."""
        entries = self.entries()
        size = sum(p.stat().st_size for p in entries if p.exists())
        return {
            "dir": str(self.root),
            "enabled": self.enabled,
            "entries": len(entries),
            "bytes": size,
            **self.stats.as_dict(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CompileCache({self.root}, enabled={self.enabled}, {self.stats})"


_DEFAULT: CompileCache | None = None


def default_cache(refresh: bool = False) -> CompileCache:
    """Process-wide cache instance honoring the env knobs at first use.

    ``refresh=True`` re-reads ``REPRO_CACHE_DIR``/``REPRO_NO_CACHE`` (used
    by the CLI after parsing ``--no-cache`` and by tests that monkeypatch
    the environment).
    """
    global _DEFAULT
    if _DEFAULT is None or refresh:
        _DEFAULT = CompileCache()
    return _DEFAULT
