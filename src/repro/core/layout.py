"""Single-element memory-block data layout (paper Fig. 5).

A 512-node element occupies the first 512 rows of a 1K x 1K block — one
row per node — with each row holding, in order: the node's mass inverse,
its unknown *variables*, the *auxiliaries* (the low-storage RK register),
the *contributions* (Volume + Flux increments), per-element material
constants, and scratchpad words.  The remaining rows are *storage space*
for constants: the ``dshape`` differentiation matrix, GLL weights/points,
per-element Volume constants and the host-precomputed Flux coefficients
("constants need to be copied to the scratchpad and broadcast to the
first 512 rows before the computation begins", §5.1).

The layout is parametric in element order so the functional tests can run
order-1/2 elements quickly; ``order=7`` reproduces the paper's geometry.
It also supports hosting a *subset* of the variables, which is how the
expanded (Fig. 8/9) and elastic (§6.2.2) layouts place 1 or 3 variables
per block.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ElementLayout", "AXIS_NAMES", "ScratchAllocator"]

AXIS_NAMES = ("x", "y", "z")


class ScratchAllocator:
    """Stack allocator over the layout's scratchpad columns."""

    def __init__(self, start: int, stop: int):
        self.start = start
        self.stop = stop
        self._next = start

    def alloc(self, n: int = 1) -> int:
        """Reserve ``n`` consecutive scratch columns; returns the first."""
        if self._next + n > self.stop:
            raise RuntimeError(
                f"scratchpad exhausted: need {n} more columns beyond "
                f"[{self.start}, {self.stop})"
            )
        col = self._next
        self._next += n
        return col

    def free_all(self) -> None:
        self._next = self.start

    @property
    def in_use(self) -> int:
        return self._next - self.start


@dataclass
class ElementLayout:
    """Column/row map of (part of) one dG element in one memory block.

    Parameters
    ----------
    order:
        Element polynomial order ``N``; ``(N+1)^3`` compute rows.
    variables:
        Names of the unknowns hosted in this block, in column order.
        The full acoustic element hosts ``("p","vx","vy","vz")``; an
        expanded block hosts one of them; elastic blocks host triples.
    row_words:
        32-bit words per row (32 for the 1 KiB row).
    block_rows:
        Total rows (1024).
    """

    order: int
    variables: tuple = ("p", "vx", "vy", "vz")
    row_words: int = 32
    block_rows: int = 1024

    def __post_init__(self):
        self.npts = self.order + 1
        self.n_nodes = self.npts**3
        if self.n_nodes > self.block_rows // 2:
            raise ValueError(
                f"order {self.order} needs {self.n_nodes} compute rows; a "
                f"{self.block_rows}-row block reserves half for storage "
                "(use expansion for bigger elements)"
            )
        n_vars = len(self.variables)
        # column map: mass | vars | aux | contrib | elem consts | scratch
        self.col_mass = 0
        self.col_var = {v: 1 + i for i, v in enumerate(self.variables)}
        self.col_aux = {v: 1 + n_vars + i for i, v in enumerate(self.variables)}
        self.col_contrib = {v: 1 + 2 * n_vars + i for i, v in enumerate(self.variables)}
        self.col_const0 = 1 + 3 * n_vars
        #: two persistent per-element constant columns (e.g. -kappa*2/h and
        #: -(2/h)/rho for acoustic Volume), broadcast at setup.
        self.col_econst = (self.col_const0, self.col_const0 + 1)
        self.scratch0 = self.col_const0 + 2
        if self.scratch0 + 4 > self.row_words:
            raise ValueError(
                f"{n_vars} variables leave no scratchpad in a {self.row_words}-"
                "word row — the elastic case that forces row-size expansion (§5.1)"
            )
        self.scratch = ScratchAllocator(self.scratch0, self.row_words)

        # storage region rows
        self.storage0 = max(self.n_nodes, self.block_rows // 2)
        #: rows storage0 .. storage0+N hold dshape: D[i, a] at column a.
        self.row_dshape0 = self.storage0
        #: one row of misc per-element constants (GLL weights live here too).
        self.row_econst = self.storage0 + self.npts
        #: six rows of host-precomputed flux coefficients, one per face,
        #: columns 0..3 (filled through the LUT path at setup).
        self.row_flux0 = self.row_econst + 1
        if self.row_flux0 + 6 > self.block_rows:
            raise ValueError("storage region overflow")
        #: memoized row-map arrays: the producers below are pure functions
        #: of the layout geometry, and the kernel generators request the
        #: same handful of maps for every element of every compile — the
        #: memo also keeps the returned arrays id-stable, which downstream
        #: per-array caches (gather stats) key on.  Callers must treat the
        #: returned arrays as read-only.
        self._rowmap_cache: dict = {}

    # ------------------------------------------------------------------ #
    # node index helpers (flat node id n = i + (N+1) j + (N+1)^2 k)
    # ------------------------------------------------------------------ #

    @property
    def compute_rows(self) -> tuple:
        return (0, self.n_nodes)

    def axis_index(self, axis: int) -> np.ndarray:
        """Per-node coordinate index along ``axis`` (0=x,1=y,2=z)."""
        out = self._rowmap_cache.get(("axis", axis))
        if out is None:
            n = np.arange(self.n_nodes)
            p = self.npts
            out = (n % p, (n // p) % p, n // (p * p))[axis]
            self._rowmap_cache[("axis", axis)] = out
        return out

    def tap_row_map(self, axis: int, tap: int) -> np.ndarray:
        """Row of the ``tap``-th derivative stencil point along ``axis``.

        For node ``(i,j,k)`` and axis x this is node ``(tap,j,k)`` — the
        "subset of the element's nodes" whose dot product with a
        derivative vector forms the Volume computation (§1 fn. 2).
        """
        if not 0 <= tap < self.npts:
            raise IndexError(f"tap {tap} outside [0, {self.npts})")
        key = ("tap", axis, tap)
        out = self._rowmap_cache.get(key)
        if out is None:
            n = np.arange(self.n_nodes)
            p = self.npts
            stride = p**axis
            out = n + (tap - self.axis_index(axis)) * stride
            self._rowmap_cache[key] = out
        return out

    def dshape_row_map(self, axis: int) -> np.ndarray:
        """Storage row holding each node's derivative coefficient.

        Node ``n`` needs ``D[idx_axis(n), tap]``, stored at storage row
        ``row_dshape0 + idx_axis(n)``, column ``tap``.
        """
        key = ("dshape", axis)
        out = self._rowmap_cache.get(key)
        if out is None:
            out = self.row_dshape0 + self.axis_index(axis)
            self._rowmap_cache[key] = out
        return out

    def const_row_map(self, storage_row: int) -> np.ndarray:
        """Gather map that broadcasts one storage row to all compute rows."""
        key = ("const", storage_row)
        out = self._rowmap_cache.get(key)
        if out is None:
            out = np.full(self.n_nodes, storage_row, dtype=np.int64)
            self._rowmap_cache[key] = out
        return out

    def face_row_map(self, face_nodes: np.ndarray, storage_row: int) -> np.ndarray:
        """Gather map broadcasting one storage row to a face's rows."""
        key = ("face", len(face_nodes), storage_row)
        out = self._rowmap_cache.get(key)
        if out is None:
            out = np.full(len(face_nodes), storage_row, dtype=np.int64)
            self._rowmap_cache[key] = out
        return out

    # ------------------------------------------------------------------ #

    def describe(self) -> dict:
        """Human-readable summary (used by docs/tests)."""
        return {
            "order": self.order,
            "n_nodes": self.n_nodes,
            "variables": self.variables,
            "col_var": dict(self.col_var),
            "col_aux": dict(self.col_aux),
            "col_contrib": dict(self.col_contrib),
            "col_econst": self.col_econst,
            "scratch_cols": (self.scratch0, self.row_words),
            "storage_rows": (self.storage0, self.block_rows),
        }
