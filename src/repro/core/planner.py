"""Capacity planner: choose naive / expansion / batching (paper Table 5).

The decision procedure is derived from first principles and reproduces
all sixteen cells of Table 5 exactly (a unit test checks this):

1. **Row-size expansion (E_r)** is *forced* for elastic simulation: nine
   variables x (variable + auxiliary + contribution) = 27 words plus the
   mass inverse and element constants leave no scratchpad in a 32-word
   row (§5.1) — :class:`~repro.core.layout.ElementLayout` raises on it.
   The elastic element therefore always occupies 4 blocks (three variable
   triples + the Fig. 9 neighbor-buffer block).
2. **Batching (B)** whenever the needed blocks exceed the chip
   (``n_batches = ceil(needed / available)``, §6.1).
3. **Parallelism expansion (E_p)** whenever the expanded footprint still
   fits: acoustic 1 -> 4 blocks (one per variable group, Fig. 8), elastic
   4 -> 12 blocks (nine variable blocks + three buffers, §6.2.2) —
   "deploying a refinement-level 4 model on a 2 GB chip will only utilize
   25% of available PIM resources" (§6.2.1).
4. Otherwise **naive (N)**.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs import get_logger, get_metrics
from repro.pim.params import CHIP_CONFIGS, ChipConfig

__all__ = ["Plan", "plan_configuration", "TABLE5_BENCHMARKS", "PAPER_TABLE5"]

log = get_logger(__name__)

#: blocks per element before/after parallelism expansion
_BASE_BPE = {"acoustic": 1, "elastic": 4}
_EXPANDED_BPE = {"acoustic": 4, "elastic": 12}


@dataclass(frozen=True)
class Plan:
    """A resolved deployment plan for one benchmark on one chip."""

    physics: str
    refinement_level: int
    chip: ChipConfig
    blocks_per_element: int
    expansion_parallel: bool  # E_p
    expansion_row: bool  # E_r (elastic only)
    n_batches: int

    @property
    def batched(self) -> bool:
        return self.n_batches > 1

    @property
    def n_elements(self) -> int:
        return (2**self.refinement_level) ** 3

    @property
    def elements_per_batch(self) -> int:
        return -(-self.n_elements // self.n_batches)

    @property
    def utilization(self) -> float:
        per_batch = self.elements_per_batch * self.blocks_per_element
        return per_batch / self.chip.n_blocks

    @property
    def label(self) -> str:
        """Table 5 notation: N / E_p / E_r / B combinations."""
        parts = []
        if self.expansion_row:
            parts.append("E_r")
        if self.expansion_parallel:
            parts.append("E_p")
        if self.batched:
            parts.append("B")
        return "&".join(parts) if parts else "N"


def plan_configuration(physics: str, refinement_level: int, chip: ChipConfig) -> Plan:
    """Resolve the Table 5 technique choice for one benchmark/chip pair."""
    plan = _resolve_plan(physics, refinement_level, chip)
    get_metrics().inc("planner.plans")
    log.debug(
        "plan %s_%d on %s: %s (blocks/elt=%d, batches=%d, utilization=%.0f%%)",
        physics, refinement_level, chip.name, plan.label,
        plan.blocks_per_element, plan.n_batches, 100 * plan.utilization,
    )
    return plan


def _resolve_plan(physics: str, refinement_level: int, chip: ChipConfig) -> Plan:
    if physics not in _BASE_BPE:
        raise ValueError(f"physics must be 'acoustic' or 'elastic', got {physics!r}")
    n_elements = (2**refinement_level) ** 3
    base = _BASE_BPE[physics]
    expanded = _EXPANDED_BPE[physics]
    available = chip.n_blocks
    needed = n_elements * base

    expansion_row = physics == "elastic"
    if needed > available:
        n_batches = -(-needed // available)
        return Plan(
            physics,
            refinement_level,
            chip,
            blocks_per_element=base,
            expansion_parallel=False,
            expansion_row=expansion_row,
            n_batches=n_batches,
        )
    if n_elements * expanded <= available:
        return Plan(
            physics,
            refinement_level,
            chip,
            blocks_per_element=expanded,
            expansion_parallel=True,
            expansion_row=expansion_row,
            n_batches=1,
        )
    return Plan(
        physics,
        refinement_level,
        chip,
        blocks_per_element=base,
        expansion_parallel=False,
        expansion_row=expansion_row,
        n_batches=1,
    )


#: The four Table 5 rows (physics, refinement level).
TABLE5_BENCHMARKS = (
    ("acoustic", 4),
    ("elastic", 4),
    ("acoustic", 5),
    ("elastic", 5),
)

#: The paper's printed Table 5, for the reproduction test:
#: row -> chip -> label.
PAPER_TABLE5 = {
    ("acoustic", 4): {"512MB": "N", "2GB": "E_p", "8GB": "E_p", "16GB": "E_p"},
    ("elastic", 4): {
        "512MB": "E_r&B",
        "2GB": "E_r",
        "8GB": "E_r&E_p",
        "16GB": "E_r&E_p",
    },
    ("acoustic", 5): {"512MB": "B", "2GB": "B", "8GB": "N", "16GB": "E_p"},
    ("elastic", 5): {
        "512MB": "E_r&B",
        "2GB": "E_r&B",
        "8GB": "E_r&B",
        "16GB": "E_r",
    },
}


def full_table5() -> dict:
    """Compute the whole Table 5 grid from the planner."""
    out = {}
    for physics, level in TABLE5_BENCHMARKS:
        row = {}
        for name, chip in CHIP_CONFIGS.items():
            row[name] = plan_configuration(physics, level, chip).label
        out[(physics, level)] = row
    return out
