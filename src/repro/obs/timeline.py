"""Per-resource Gantt timeline: hardware-counter intervals as Chrome tracks.

:func:`counter_track_events` turns a :class:`~repro.obs.counters.
HardwareCounters` recording into Chrome ``trace_event`` entries — one
track (``tid``) per block, link and channel under a dedicated "hardware
counters" process (``pid`` :data:`COUNTERS_PID`), each labeled through
``process_name``/``thread_name`` metadata events so Perfetto shows
resource names instead of bare ids.

The intervals are *modeled* chip time (the executor's analytic clocks),
not wall clock; the caller anchors them with ``origin_s`` (normally the
owning span's ``start_s``) so the Gantt lines up beside the wall-clock
span tracks.  The events ride the existing exporter unmodified via the
``chrome_events`` span-attribute smuggling that the Fig. 13 pipeline
lanes already use.
"""

from __future__ import annotations

from typing import Callable, Hashable, List, Optional

from repro.obs.counters import HardwareCounters, default_link_label

__all__ = ["COUNTERS_PID", "SHARD_PID0", "INTERCHIP_PID",
           "counter_track_events", "sharded_track_events"]

#: Chrome pid of the counter Gantt; span tracks use pid 0, the Fig. 13
#: pipeline lanes tid 100+, so a dedicated process keeps them separable.
COUNTERS_PID = 1

#: pid band of per-shard counter Gantts (shard k renders as pid
#: ``SHARD_PID0 + k``) and the inter-chip link process between them.
SHARD_PID0 = 100
INTERCHIP_PID = 99

#: track (tid) bands per resource kind — stable ordering in the Perfetto
#: track list: blocks first, then links, then the two channels.
_BLOCK_TID0 = 10
_LINK_TID0 = 10_000
_HOST_TID = 2
_DRAM_TID = 3

_KIND_NAMES = {"block": "compute", "stage": "dram-stage",
               "link": "xfer", "host": "host", "dram": "dram"}


def counter_track_events(
    counters: HardwareCounters,
    origin_s: float = 0.0,
    link_label: Optional[Callable[[Hashable], str]] = None,
    max_events: int = 200_000,
    pid: int = COUNTERS_PID,
    process_label: str = "hardware counters",
) -> List[dict]:
    """Chrome events (``ph:"M"`` labels + ``ph:"X"`` busy slices).

    ``max_events`` caps the slice count (label metadata is always kept):
    beyond it the remaining intervals are dropped and a final instant
    event notes how many — a truncated Gantt renders, a 10M-event JSON
    does not.  ``pid``/``process_label`` relocate the whole track group
    under a different Chrome process — the multi-chip Gantt renders one
    process per shard (:func:`sharded_track_events`).
    """
    label = link_label or default_link_label
    COUNTERS_PID = pid  # noqa: N806 - keep the emit sites below unchanged
    events: List[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": COUNTERS_PID,
            "tid": 0,
            "args": {"name": process_label},
        }
    ]

    # stable tid per resource, labeled via thread_name metadata
    tids: dict = {}
    link_next = _LINK_TID0

    def tid_for(kind: str, key: Hashable) -> int:
        nonlocal link_next
        if kind in ("block", "stage"):
            rkey = ("block", key)
            name = f"block:{key}"
            tid = _BLOCK_TID0 + int(key)
        elif kind == "link":
            rkey = ("link", key)
            name = label(key)
            tid = tids.get(rkey, link_next)
        elif kind == "host":
            rkey, name, tid = ("host", None), "host", _HOST_TID
        else:
            rkey, name, tid = ("dram", None), "dram", _DRAM_TID
        if rkey not in tids:
            tids[rkey] = tid
            if kind == "link" and tid == link_next:
                link_next += 1
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": COUNTERS_PID,
                    "tid": tid,
                    "args": {"name": name},
                }
            )
        return tids[rkey]

    slices = 0
    dropped = 0
    for kind, key, start, end in counters.events:
        if end <= start:
            continue
        if slices >= max_events:
            dropped += 1
            continue
        slices += 1
        events.append(
            {
                "name": _KIND_NAMES.get(kind, kind),
                "cat": "counters",
                "ph": "X",
                "ts": (origin_s + start) * 1e6,
                "dur": (end - start) * 1e6,
                "pid": COUNTERS_PID,
                "tid": tid_for(kind, key),
            }
        )
    if dropped:
        events.append(
            {
                "name": f"timeline truncated (+{dropped} intervals)",
                "cat": "counters",
                "ph": "i",
                "s": "p",
                "ts": origin_s * 1e6,
                "pid": COUNTERS_PID,
                "tid": 0,
            }
        )
    return events


def sharded_track_events(
    shard_counters: List[Optional[HardwareCounters]],
    link_events: Optional[List] = None,
    origin_s: float = 0.0,
    link_label: Optional[Callable[[Hashable], str]] = None,
    max_events: int = 200_000,
) -> List[dict]:
    """Merged multi-chip Gantt: one Chrome process per shard + link lanes.

    ``shard_counters[k]`` renders under pid ``SHARD_PID0 + k`` labeled
    ``shard k``; ``link_events`` (the :class:`~repro.pim.multichip.
    ShardedResult` ``(src, dst, start_s, end_s, n_bytes)`` schedule)
    render as ``halo src->dst`` slices under a dedicated ``inter-chip
    links`` process, one track per directed pair.  All intervals share
    the modeled-time origin, so the overlap of a link slice with the
    destination shard's compute lane *is* the pipelining — the picture
    the measured ``exchange_overlap_s`` number summarizes.
    """
    events: List[dict] = []
    for k, cnt in enumerate(shard_counters):
        if cnt is None:
            continue
        events.extend(counter_track_events(
            cnt, origin_s=origin_s, link_label=link_label,
            max_events=max_events, pid=SHARD_PID0 + k,
            process_label=f"shard {k}",
        ))
    if link_events:
        events.append({
            "name": "process_name", "ph": "M", "pid": INTERCHIP_PID,
            "tid": 0, "args": {"name": "inter-chip links"},
        })
        tids: dict = {}
        for (src, dst, start, end, n_bytes) in link_events:
            pair = (src, dst)
            tid = tids.get(pair)
            if tid is None:
                tid = tids[pair] = len(tids) + 1
                events.append({
                    "name": "thread_name", "ph": "M", "pid": INTERCHIP_PID,
                    "tid": tid, "args": {"name": f"link {src}->{dst}"},
                })
            if end <= start:
                continue
            events.append({
                "name": f"halo {src}->{dst}",
                "cat": "counters",
                "ph": "X",
                "ts": (origin_s + start) * 1e6,
                "dur": (end - start) * 1e6,
                "pid": INTERCHIP_PID,
                "tid": tid,
                "args": {"bytes": int(n_bytes)},
            })
    return events
