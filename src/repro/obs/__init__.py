"""``repro.obs`` — observability for the compile → execute → evaluate pipeline.

Zero-dependency tracing, metrics and logging, wired through the hot paths
(:mod:`repro.core.compiler`, :mod:`repro.core.cache`,
:mod:`repro.pim.executor`, :mod:`repro.eval.experiments`):

* :func:`get_tracer` / :class:`~repro.obs.tracer.Tracer` — nested spans
  with attributes; off by default (``REPRO_TRACE=1`` or ``--profile``);
* :func:`get_metrics` / :class:`~repro.obs.metrics.MetricsRegistry` —
  counters + histograms (cache hits, instructions emitted, per-phase
  executor cycles, interconnect hop counts, ...);
* :func:`configure_logging` / :func:`get_logger` — the package ``logging``
  config behind the CLI's ``--log-level``;
* :mod:`repro.obs.export` — stderr tree, JSON (``REPRO_TRACE_FILE``) and
  Chrome ``trace_event`` exporters.

This package imports nothing from the rest of ``repro`` (and no third
party code), so any module may instrument itself without import cycles.
"""

from repro.obs.counters import (
    HardwareCounters,
    MakespanAttribution,
    attribute_makespan,
    counters_enabled,
)
from repro.obs.log import ROOT_LOGGER_NAME, configure_logging, get_logger
from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    get_metrics,
    set_metrics,
)
from repro.obs.timeline import (
    COUNTERS_PID,
    INTERCHIP_PID,
    SHARD_PID0,
    counter_track_events,
    sharded_track_events,
)
from repro.obs.tracer import NULL_SPAN, Span, Tracer, get_tracer, set_tracer, trace_span
from repro.obs.export import (
    TRACE_SCHEMA_VERSION,
    build_document,
    chrome_trace,
    default_trace_path,
    format_duration,
    load_trace,
    render_tree,
    summarize,
    write_trace,
)

__all__ = [
    # tracing
    "NULL_SPAN",
    "Span",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "trace_span",
    # hardware counters + timeline
    "COUNTERS_PID",
    "INTERCHIP_PID",
    "SHARD_PID0",
    "HardwareCounters",
    "MakespanAttribution",
    "attribute_makespan",
    "counter_track_events",
    "sharded_track_events",
    "counters_enabled",
    # metrics
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "set_metrics",
    # logging
    "ROOT_LOGGER_NAME",
    "configure_logging",
    "get_logger",
    # export
    "TRACE_SCHEMA_VERSION",
    "build_document",
    "chrome_trace",
    "default_trace_path",
    "format_duration",
    "load_trace",
    "render_tree",
    "summarize",
    "write_trace",
]
