"""Hardware counters: per-resource occupancy recording + makespan attribution.

:class:`HardwareCounters` is the recorder the executor (and the batched
transfer scheduler) feed while a plan replays: per-block busy seconds and
NOR-op counts, per-interconnect-link flit/occupancy accounting, host/DRAM
channel busy and stall time, and transfer queueing delay.  It is a passive
side-channel — recording only *reads* values the executor already computed,
so a counters-on run produces bit-identical
:class:`~repro.pim.executor.TimingReport` and block state to a counters-off
run (asserted across the six paper benchmarks in ``tests/test_counters.py``).

Counters are **off by default** (``REPRO_COUNTERS=1`` or the CLI
``--counters`` flag enables them) and deliberately cheap when on: the
replay-side record is a *single tuple append to a raw log* per
segment/transfer — never per instruction on the vectorized path, and never
a dict update — with all aggregation deferred to the first read
(:meth:`HardwareCounters._finalize`).  That keeps enabled-replay overhead
within the ~2% budget the bench's ``counters_overhead`` field tracks.

:func:`attribute_makespan` rolls a recording up into a
:class:`MakespanAttribution`: an interval sweep partitions the makespan
among the busy resources (each elementary slice of the timeline is
attributed to the busiest resource active during it, idle gaps to
``"idle"``), so the shares *sum to the makespan exactly* and the binding
resource — the one holding the largest share — names what actually bounds
the run.  :mod:`repro.obs.timeline` renders the same intervals as a
per-resource Gantt chart through the Chrome-trace exporter.

Like everything in ``repro.obs``, this module imports nothing from the
rest of ``repro``: resources are opaque keys (the executor uses block ids
and ``(tile, switch)`` link tuples) plus the two channel singletons
``"host"`` and ``"dram"``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Tuple

__all__ = [
    "HardwareCounters",
    "MakespanAttribution",
    "attribute_makespan",
    "counters_enabled",
    "default_link_label",
]

_ENV_COUNTERS = "REPRO_COUNTERS"

_TRUTHY = ("1", "true", "yes", "on")


def counters_enabled() -> bool:
    """The ``REPRO_COUNTERS`` knob: default off, ``1``/``true``/``on`` enables."""
    return os.environ.get(_ENV_COUNTERS, "").strip().lower() in _TRUTHY


def default_link_label(key: Hashable) -> str:
    """``(tile, switch) -> "link:t0.s5"`` (fallback when no chip labeler)."""
    if isinstance(key, tuple) and len(key) == 2:
        return f"link:t{key[0]}.s{key[1]}"
    return f"link:{key}"


class HardwareCounters:
    """One replay's per-resource occupancy recording.

    Scalar totals mirror the :class:`~repro.pim.executor.TimingReport`
    interconnect fields exactly (``transfers``/``flits``/``hops``/
    ``bytes_moved`` — the cross-check in ``tests/test_counters.py``), and
    the per-resource dicts add what the report cannot see: *which* block,
    link or channel the time went to.

    ``events`` keeps the raw busy intervals for the Gantt timeline; set
    ``timeline=False`` to keep only the aggregates (long campaign runs).

    **Hot-path contract.**  The recording methods do nothing but append one
    tuple to a raw log (``compute_log``/``xfer_log``/``chan_log``); every
    aggregate attribute is a property that drains the logs on first read
    (:meth:`_finalize`, incremental — repeated reads are free).  The
    executor's replay loop appends through bound ``log.append`` references
    directly, skipping even the method call: it records each counted plan
    *once* (``plan_log``) plus one start clock per ``(segment, block)``
    into the flat ``start_log`` — no per-segment tuple is built at all;
    :meth:`_finalize` re-walks the plan's own step list to recover the
    intervals.  Records are stored by reference and must not be mutated by
    the caller afterwards (plan steps and memoized chip routes are stable;
    the batched scheduler passes fresh lists).
    """

    __slots__ = (
        "timeline",
        "compute_log", "xfer_log", "chan_log", "start_log", "plan_log",
        "_fold", "_seg_kind",
        "_done_compute", "_done_xfer", "_done_chan", "_done_starts",
        "_done_plan",
        "_block_busy_s", "_block_nors", "_block_ops", "_block_stage_s",
        "_link_busy_s", "_link_flits", "_link_transfers",
        "_host_busy_s", "_host_stall_s", "_host_ops",
        "_dram_busy_s", "_dram_stall_s", "_dram_ops",
        "_transfers", "_flits", "_hops", "_bytes_moved",
        "_transfer_queue_s", "_transfers_queued",
        "_events",
    )

    def __init__(self, timeline: bool = True):
        self.timeline = timeline
        #: raw compute records ``(block, start_s, end_s, nors, ops)``
        #: (serial / fault-mode paths).
        self.compute_log: List[tuple] = []
        #: raw transfer records
        #: ``(keys, ready_s, per_link_busy_s, flits, hops, n_bytes, queue_s)``,
        #: or deferred ``(step, ready_s, ready0_s)`` records.
        self.xfer_log: List[tuple] = []
        #: raw channel records ``("host"|"dram", block, start_s, end_s, stall_s)``.
        self.chan_log: List[tuple] = []
        #: replayed plan objects, one per counted replay; :meth:`_finalize`
        #: re-walks each plan's segment steps, so the replay loop itself
        #: records nothing per segment.
        self.plan_log: List[object] = []
        #: flat stream of segment start clocks, one per ``(segment, block)``
        #: in replay order — the only per-block record the hot loop appends.
        self.start_log: List[float] = []
        #: the replay's left-fold (set by the executor before recording);
        #: recomputes each deferred segment's end clocks bit-identically.
        self._fold: Optional[Callable[..., float]] = None
        #: the executor's segment step-kind sentinel (set alongside ``_fold``).
        self._seg_kind: object = None
        self._done_compute = 0
        self._done_xfer = 0
        self._done_chan = 0
        self._done_starts = 0
        self._done_plan = 0
        self._block_busy_s: Dict[int, float] = {}
        self._block_nors: Dict[int, int] = {}
        self._block_ops: Dict[int, int] = {}
        self._block_stage_s: Dict[int, float] = {}
        self._link_busy_s: Dict[Hashable, float] = {}
        self._link_flits: Dict[Hashable, int] = {}
        self._link_transfers: Dict[Hashable, int] = {}
        self._host_busy_s = 0.0
        self._host_stall_s = 0.0
        self._host_ops = 0
        self._dram_busy_s = 0.0
        self._dram_stall_s = 0.0
        self._dram_ops = 0
        self._transfers = 0
        self._flits = 0
        self._hops = 0
        self._bytes_moved = 0
        self._transfer_queue_s = 0.0
        self._transfers_queued = 0
        self._events: List[Tuple[str, Hashable, float, float]] = []

    # -- recording (called by the executor's replay/dispatch paths) ------- #

    def compute(self, block: int, start: float, end: float,
                nors: int = 0, ops: int = 1) -> None:
        """One compute segment (or serial op) on ``block``'s clock."""
        self.compute_log.append((block, start, end, nors, ops))

    def transfer(self, keys, ready: float, per_link_busy: float,
                 flits: int, hops: int, n_bytes: int,
                 queue_s: float) -> None:
        """One routed TRANSFER/LUT: occupancy on every switch of its path."""
        self.xfer_log.append(
            (keys, ready, per_link_busy, flits, hops, n_bytes, queue_s)
        )

    def host(self, start: float, end: float, stall: float) -> None:
        self.chan_log.append(("host", None, start, end, stall))

    def dram(self, start: float, end: float, stall: float,
             block: Optional[int] = None) -> None:
        """One DRAM channel op; ``block`` marks staging coupled to a block."""
        self.chan_log.append(("dram", block, start, end, stall))

    # -- lazy aggregation -------------------------------------------------- #

    def _finalize(self) -> None:
        """Drain the raw logs into the aggregates (incremental, idempotent).

        Eager tuples come from the :meth:`compute`/:meth:`transfer` methods
        (serial, fault and scheduler paths); *deferred* records come from
        the executor's replay loop, which keeps its hot path at one bare
        append per site:

        * compute: the replay appends each counted plan to ``plan_log``
          once and one start clock per ``(segment, block)`` to the flat
          ``start_log``; this method re-walks the plan's segment steps
          consuming the starts in order, recomputing each end clock as
          ``fold(start, durs)`` — the very left-fold the replay used — so
          intervals stay bit-identical;
        * transfer: ``(step, ready, ready0)`` 3-tuples — fault-free
          transfers only; the step object carries ``keys``/``exclusive``/
          ``read_t``/``wire``/``flit_train``/``flits``/``hops``/``n_bytes``.
        """
        plog = self.plan_log
        if self._done_plan < len(plog):
            bb, bn, bo = self._block_busy_s, self._block_nors, self._block_ops
            ev = self._events if self.timeline else None
            starts = self.start_log
            si = self._done_starts
            fold = self._fold
            seg = self._seg_kind
            assert fold is not None
            for plan in plog[self._done_plan:]:
                for kind, payload in plan.steps:  # type: ignore[attr-defined]
                    if kind != seg:
                        continue
                    for block, durs, nors, ops in payload.block_groups:
                        start = starts[si]
                        si += 1
                        end = fold(start, durs)
                        busy = end - start
                        bb[block] = bb.get(block, 0.0) + busy
                        if nors:
                            bn[block] = bn.get(block, 0) + nors
                        bo[block] = bo.get(block, 0) + ops
                        if ev is not None and busy > 0.0:
                            ev.append(("block", block, start, end))
            self._done_starts = si
            self._done_plan = len(plog)

        log = self.compute_log
        if self._done_compute < len(log):
            bb, bn, bo = self._block_busy_s, self._block_nors, self._block_ops
            ev = self._events if self.timeline else None
            for block, start, end, nors, ops in log[self._done_compute:]:
                busy = end - start
                bb[block] = bb.get(block, 0.0) + busy
                if nors:
                    bn[block] = bn.get(block, 0) + nors
                bo[block] = bo.get(block, 0) + ops
                if ev is not None and busy > 0.0:
                    ev.append(("block", block, start, end))
            self._done_compute = len(log)

        log = self.xfer_log
        if self._done_xfer < len(log):
            lb, lf = self._link_busy_s, self._link_flits
            lt = self._link_transfers
            ev = self._events if self.timeline else None
            n_tr = n_fl = n_hop = n_by = n_q = 0
            q_s = 0.0
            for rec in log[self._done_xfer:]:
                if len(rec) == 3:  # deferred fault-free transfer record
                    t, ready, ready0 = rec
                    keys = t.keys
                    busy = (t.read_t + t.wire) if t.exclusive \
                        else t.flit_train
                    flits, hops, n_bytes = t.flits, t.hops, t.n_bytes
                    queue_s = ready - ready0
                else:
                    keys, ready, busy, flits, hops, n_bytes, queue_s = rec
                n_tr += 1
                n_fl += flits
                n_hop += hops
                n_by += n_bytes
                if queue_s > 0.0:
                    q_s += queue_s
                    n_q += 1
                for k in keys:
                    lb[k] = lb.get(k, 0.0) + busy
                    lf[k] = lf.get(k, 0) + flits
                    lt[k] = lt.get(k, 0) + 1
                if ev is not None and keys and busy > 0.0:
                    end = ready + busy
                    for k in keys:
                        ev.append(("link", k, ready, end))
            self._transfers += n_tr
            self._flits += n_fl
            self._hops += n_hop
            self._bytes_moved += n_by
            self._transfer_queue_s += q_s
            self._transfers_queued += n_q
            self._done_xfer = len(log)

        log = self.chan_log
        if self._done_chan < len(log):
            ev = self._events if self.timeline else None
            for chan, block, start, end, stall in log[self._done_chan:]:
                busy = end - start
                if chan == "host":
                    self._host_busy_s += busy
                    self._host_stall_s += stall
                    self._host_ops += 1
                    if ev is not None:
                        ev.append(("host", "host", start, end))
                else:
                    self._dram_busy_s += busy
                    self._dram_stall_s += stall
                    self._dram_ops += 1
                    if block is not None:
                        self._block_stage_s[block] = (
                            self._block_stage_s.get(block, 0.0) + busy
                        )
                    if ev is not None:
                        ev.append(("dram", "dram", start, end))
                        if block is not None:
                            ev.append(("stage", block, start, end))
            self._done_chan = len(log)

    @property
    def block_busy_s(self) -> Dict[int, float]:
        """Compute occupancy (arith/COPY/GATHER/BROADCAST + fault-recovery
        overhead) per block, in seconds of that block's clock."""
        self._finalize()
        return self._block_busy_s

    @property
    def block_nors(self) -> Dict[int, int]:
        """NOR cycles issued per block (arith + COPY; the wear-out currency)."""
        self._finalize()
        return self._block_nors

    @property
    def block_ops(self) -> Dict[int, int]:
        """Compute instructions retired per block."""
        self._finalize()
        return self._block_ops

    @property
    def block_stage_s(self) -> Dict[int, float]:
        """DRAM-staging time coupled onto a block's clock (kept separate
        from ``block_busy_s`` so compute busy == plan-array dur sums)."""
        self._finalize()
        return self._block_stage_s

    @property
    def link_busy_s(self) -> Dict[Hashable, float]:
        """Switch occupancy per link key: seconds each switch served."""
        self._finalize()
        return self._link_busy_s

    @property
    def link_flits(self) -> Dict[Hashable, int]:
        """Flits forwarded per link key."""
        self._finalize()
        return self._link_flits

    @property
    def link_transfers(self) -> Dict[Hashable, int]:
        """Transfers (TRANSFER + LUT micro-sequences) routed per link key."""
        self._finalize()
        return self._link_transfers

    @property
    def host_busy_s(self) -> float:
        self._finalize()
        return self._host_busy_s

    @property
    def host_stall_s(self) -> float:
        """Host time lost waiting on a BARRIER floor before starting."""
        self._finalize()
        return self._host_stall_s

    @property
    def host_ops(self) -> int:
        self._finalize()
        return self._host_ops

    @property
    def dram_busy_s(self) -> float:
        self._finalize()
        return self._dram_busy_s

    @property
    def dram_stall_s(self) -> float:
        """DRAM-channel time lost waiting on barriers / the staged block."""
        self._finalize()
        return self._dram_stall_s

    @property
    def dram_ops(self) -> int:
        self._finalize()
        return self._dram_ops

    @property
    def transfers(self) -> int:
        self._finalize()
        return self._transfers

    @property
    def flits(self) -> int:
        self._finalize()
        return self._flits

    @property
    def hops(self) -> int:
        self._finalize()
        return self._hops

    @property
    def bytes_moved(self) -> int:
        self._finalize()
        return self._bytes_moved

    @property
    def transfer_queue_s(self) -> float:
        """Total switch/port queueing delay: time transfers spent ready on
        their ports but blocked behind earlier traffic on their route."""
        self._finalize()
        return self._transfer_queue_s

    @property
    def transfers_queued(self) -> int:
        """Transfers that experienced any queueing delay at all."""
        self._finalize()
        return self._transfers_queued

    @property
    def events(self) -> List[Tuple[str, Hashable, float, float]]:
        """Raw busy intervals ``(kind, key, start_s, end_s)`` with kind in
        ``{"block", "link", "host", "dram", "stage"}`` — the Gantt feed."""
        self._finalize()
        return self._events

    # -- aggregation ------------------------------------------------------ #

    def merge(self, other: "HardwareCounters") -> None:
        """Fold another recording into this one (``--jobs`` / batch merges).

        Interval events are concatenated verbatim: merged recordings come
        from sequentially-joined runs whose clocks each start at zero, so
        the aggregate dicts stay exact while the timeline becomes a
        superposition (fine for utilization, not for Gantt rendering —
        render per run when absolute placement matters).
        """
        self._finalize()
        other._finalize()
        for mine, theirs in (
            (self._block_busy_s, other._block_busy_s),
            (self._block_stage_s, other._block_stage_s),
            (self._link_busy_s, other._link_busy_s),
        ):
            for k, v in theirs.items():
                mine[k] = mine.get(k, 0.0) + v
        for mine_i, theirs_i in (
            (self._block_nors, other._block_nors),
            (self._block_ops, other._block_ops),
            (self._link_flits, other._link_flits),
            (self._link_transfers, other._link_transfers),
        ):
            for k, v in theirs_i.items():
                mine_i[k] = mine_i.get(k, 0) + v
        self._host_busy_s += other._host_busy_s
        self._host_stall_s += other._host_stall_s
        self._host_ops += other._host_ops
        self._dram_busy_s += other._dram_busy_s
        self._dram_stall_s += other._dram_stall_s
        self._dram_ops += other._dram_ops
        self._transfers += other._transfers
        self._flits += other._flits
        self._hops += other._hops
        self._bytes_moved += other._bytes_moved
        self._transfer_queue_s += other._transfer_queue_s
        self._transfers_queued += other._transfers_queued
        if self.timeline and other.timeline:
            self._events.extend(other._events)

    def busy_by_resource(
        self, link_label: Optional[Callable[[Hashable], str]] = None
    ) -> Dict[str, float]:
        """``{resource name: busy seconds}`` over every recorded resource."""
        label = link_label or default_link_label
        out: Dict[str, float] = {}
        for b, t in self.block_busy_s.items():
            out[f"block:{b}"] = out.get(f"block:{b}", 0.0) + t
        for b, t in self.block_stage_s.items():
            out[f"block:{b}"] = out.get(f"block:{b}", 0.0) + t
        for k, t in self.link_busy_s.items():
            out[label(k)] = out.get(label(k), 0.0) + t
        if self.host_busy_s:
            out["host"] = self.host_busy_s
        if self.dram_busy_s:
            out["dram"] = self.dram_busy_s
        return out

    def compare_occupancy(
        self,
        predicted: Dict[str, float],
        rel_tol: float = 1e-9,
        abs_tol: float = 1e-15,
        link_label: Optional[Callable[[Hashable], str]] = None,
    ) -> List[str]:
        """Check a static occupancy prediction against this recording.

        ``predicted`` maps resource names (the :meth:`busy_by_resource`
        vocabulary: ``"block:N"``, link labels, ``"host"``, ``"dram"``) to
        predicted busy seconds.  Every resource present on either side must
        agree within ``max(abs_tol, rel_tol * max(|predicted|, |measured|))``
        — the epsilon absorbs fold-order/ulp drift only, not modeling error.
        Returns one message per disagreement (empty list = the static model
        and the measured hardware agree).  The predict-then-measure
        cross-validation contract of DESIGN.md §15: the caller supplies the
        prediction, this recorder supplies the measurement, and neither side
        imports the other's model.
        """
        measured = self.busy_by_resource(link_label=link_label)
        out: List[str] = []
        for name in sorted({*predicted, *measured}):
            p = predicted.get(name, 0.0)
            m = measured.get(name, 0.0)
            tol = max(abs_tol, rel_tol * max(abs(p), abs(m)))
            if abs(p - m) > tol:
                out.append(
                    f"{name}: predicted occupancy {p!r} s, measured {m!r} s "
                    f"(delta {p - m:+.3e} beyond tolerance {tol:.3e})"
                )
        return out

    def as_dict(self, link_label: Optional[Callable[[Hashable], str]] = None
                ) -> dict:
        """Plain-dict snapshot (JSON-able, intervals excluded)."""
        label = link_label or default_link_label
        return {
            "block_busy_s": {str(k): v for k, v in sorted(self.block_busy_s.items())},
            "block_nors": {str(k): v for k, v in sorted(self.block_nors.items())},
            "block_ops": {str(k): v for k, v in sorted(self.block_ops.items())},
            "block_stage_s": {str(k): v for k, v in sorted(self.block_stage_s.items())},
            "link_busy_s": {label(k): v for k, v in self.link_busy_s.items()},
            "link_flits": {label(k): v for k, v in self.link_flits.items()},
            "link_transfers": {label(k): v for k, v in self.link_transfers.items()},
            "host_busy_s": self.host_busy_s,
            "host_stall_s": self.host_stall_s,
            "host_ops": self.host_ops,
            "dram_busy_s": self.dram_busy_s,
            "dram_stall_s": self.dram_stall_s,
            "dram_ops": self.dram_ops,
            "transfers": self.transfers,
            "flits": self.flits,
            "hops": self.hops,
            "bytes_moved": self.bytes_moved,
            "transfer_queue_s": self.transfer_queue_s,
            "transfers_queued": self.transfers_queued,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HardwareCounters({len(self.block_busy_s)} blocks, "
            f"{len(self.link_busy_s)} links, {self.transfers} transfers, "
            f"{len(self.events)} events)"
        )


# --------------------------------------------------------------------- #
# makespan attribution
# --------------------------------------------------------------------- #


@dataclass
class MakespanAttribution:
    """Which resource bound the makespan, and by how much.

    ``shares`` partitions the makespan exactly: every elementary slice of
    the timeline is attributed to exactly one resource (the busiest active
    one, ties to the first by total busy), idle gaps to ``"idle"`` —
    ``sum(shares.values()) == makespan_cycles`` up to float rounding.
    ``utilization`` is the plain busy/makespan ratio per resource (these
    legitimately sum past 1.0 when resources overlap).
    """

    makespan_cycles: float
    #: per-resource attributed share of the makespan, in cycles
    #: (includes an ``"idle"`` entry for uncovered time).
    shares: Dict[str, float] = field(default_factory=dict)
    #: per-resource busy/makespan occupancy ratio.
    utilization: Dict[str, float] = field(default_factory=dict)
    binding_resource: str = "idle"
    #: the binding resource's fraction of the makespan (0..1).
    binding_share: float = 0.0
    idle_cycles: float = 0.0

    @property
    def idle_fraction(self) -> float:
        if self.makespan_cycles <= 0.0:
            return 0.0
        return self.idle_cycles / self.makespan_cycles

    def _class_util(self, prefix: str) -> Optional[float]:
        vals = [u for r, u in self.utilization.items() if r.startswith(prefix)]
        if not vals:
            return None
        return sum(vals) / len(vals)

    @property
    def block_util(self) -> Optional[float]:
        """Mean utilization of the blocks that did any work (None: no blocks)."""
        return self._class_util("block:")

    @property
    def link_util(self) -> Optional[float]:
        """Mean utilization of the links that carried any traffic."""
        return self._class_util("link:")

    def top(self, n: int = 8) -> List[Tuple[str, float]]:
        """The ``n`` largest shares ``(resource, cycles)``, idle excluded."""
        ranked = sorted(
            ((r, c) for r, c in self.shares.items() if r != "idle"),
            key=lambda rc: rc[1], reverse=True,
        )
        return ranked[:n]

    def render(self, top: int = 8) -> str:
        """Human trend table: binding resource first, then the top shares."""
        lines = [
            f"makespan {self.makespan_cycles:,.0f} cycles; binding resource "
            f"{self.binding_resource} ({self.binding_share:.1%} of makespan, "
            f"idle {self.idle_fraction:.1%})"
        ]
        for resource, cycles in self.top(top):
            util = self.utilization.get(resource, 0.0)
            lines.append(
                f"  {resource:<20} {cycles:>14,.0f} cycles attributed  "
                f"util {util:6.1%}"
            )
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "makespan_cycles": self.makespan_cycles,
            "binding_resource": self.binding_resource,
            "binding_share": self.binding_share,
            "idle_cycles": self.idle_cycles,
            "shares": dict(self.shares),
            "utilization": dict(self.utilization),
            "block_util": self.block_util,
            "link_util": self.link_util,
        }


def attribute_makespan(
    counters: HardwareCounters,
    total_time_s: float,
    clock_hz: float = 1.0,
    link_label: Optional[Callable[[Hashable], str]] = None,
) -> MakespanAttribution:
    """Sweep the recorded intervals into a :class:`MakespanAttribution`.

    Interval-sweep partition: sort every busy interval boundary, and for
    each elementary slice of ``[0, total_time_s]`` attribute the slice to
    the active resource with the greatest *total* busy time over the whole
    run (a stable proxy for "most likely to be the bottleneck here"); a
    slice during which nothing recorded is ``"idle"``.  Shares therefore
    sum to the makespan exactly — the acceptance invariant the tests and
    the CI trace check both assert.
    """
    label = link_label or default_link_label
    busy = counters.busy_by_resource(link_label=link_label)
    makespan = max(total_time_s, 0.0)

    # resource name per event
    def name_of(kind: str, key: Hashable) -> str:
        if kind in ("block", "stage"):
            return f"block:{key}"
        if kind == "link":
            return label(key)
        return str(key)  # "host" / "dram"

    # boundary sweep: +1 at start, -1 at end, per resource
    boundaries: Dict[float, List[Tuple[str, int]]] = {}
    for kind, key, start, end in counters.events:
        if end <= start:
            continue
        start = min(max(start, 0.0), makespan)
        end = min(end, makespan) if makespan else end
        if end <= start:
            continue
        r = name_of(kind, key)
        boundaries.setdefault(start, []).append((r, 1))
        boundaries.setdefault(end, []).append((r, -1))

    shares: Dict[str, float] = {}
    active: Dict[str, int] = {}
    prev = 0.0
    for t in sorted(boundaries):
        if t > prev:
            if active:
                winner = max(active, key=lambda r: (busy.get(r, 0.0), r))
            else:
                winner = "idle"
            shares[winner] = shares.get(winner, 0.0) + (t - prev)
            prev = t
        for r, delta in boundaries[t]:
            n = active.get(r, 0) + delta
            if n:
                active[r] = n
            else:
                active.pop(r, None)
    if makespan > prev:
        shares["idle"] = shares.get("idle", 0.0) + (makespan - prev)

    shares_cycles = {r: t * clock_hz for r, t in shares.items()}
    utilization = {
        r: (t / makespan if makespan else 0.0) for r, t in busy.items()
    }
    idle = shares_cycles.get("idle", 0.0)
    ranked = sorted(
        ((r, c) for r, c in shares_cycles.items() if r != "idle"),
        key=lambda rc: rc[1], reverse=True,
    )
    binding, binding_cycles = ranked[0] if ranked else ("idle", idle)
    makespan_cycles = makespan * clock_hz
    return MakespanAttribution(
        makespan_cycles=makespan_cycles,
        shares=shares_cycles,
        utilization=utilization,
        binding_resource=binding,
        binding_share=(binding_cycles / makespan_cycles) if makespan_cycles else 0.0,
        idle_cycles=idle,
    )
