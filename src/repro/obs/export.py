"""Trace exporters: human tree, JSON document, Chrome ``trace_event``.

Three views of one recording:

* :func:`render_tree` — indented span tree with adaptive durations, meant
  for stderr after ``--profile`` runs;
* :func:`build_document` / :func:`write_trace` — the canonical JSON schema
  (``{"schema": 1, "kind": "repro-trace", "spans": [...], "metrics":
  {...}}``), written to ``REPRO_TRACE_FILE``; ``scripts/validate_trace.py``
  checks it in CI;
* :func:`chrome_trace` — the Chrome ``trace_event`` array format, loadable
  in ``chrome://tracing`` or https://ui.perfetto.dev.  Spans may smuggle
  extra pre-built events through a ``chrome_events`` attribute (the Fig. 13
  pipeline timeline uses this to appear as its own lanes).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "build_document",
    "chrome_trace",
    "default_trace_path",
    "format_duration",
    "load_trace",
    "render_tree",
    "summarize",
    "write_trace",
]

TRACE_SCHEMA_VERSION = 1

_ENV_TRACE_FILE = "REPRO_TRACE_FILE"


def format_duration(seconds: float) -> str:
    """Adaptive precision: s >= 1, else ms, else us, else ns."""
    s = abs(seconds)
    if s >= 1.0:
        return f"{seconds:.2f}s"
    if s >= 1e-3:
        return f"{seconds * 1e3:.1f}ms"
    if s >= 1e-6:
        return f"{seconds * 1e6:.1f}us"
    return f"{seconds * 1e9:.0f}ns"


def default_trace_path() -> Path:
    """``REPRO_TRACE_FILE`` or ``repro_trace.json`` in the working dir."""
    return Path(os.environ.get(_ENV_TRACE_FILE) or "repro_trace.json")


# --------------------------------------------------------------------- #
# document
# --------------------------------------------------------------------- #


def build_document(tracer, metrics=None, meta=None) -> dict:
    """The canonical JSON trace document from a tracer + metrics registry."""
    return {
        "schema": TRACE_SCHEMA_VERSION,
        "kind": "repro-trace",
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "meta": dict(meta or {}),
        "spans": tracer.export(),
        "metrics": metrics.snapshot() if metrics is not None else {},
    }


def write_trace(doc: dict, path=None) -> tuple:
    """Write the JSON document and its Chrome sibling; returns both paths.

    ``trace.json`` gets a ``trace.chrome.json`` next to it — the sibling is
    the file to drop into Perfetto / ``chrome://tracing``.
    """
    path = Path(path) if path is not None else default_trace_path()
    path.write_text(json.dumps(doc, indent=2, default=repr) + "\n")
    chrome_path = path.with_name(path.stem + ".chrome.json")
    chrome_path.write_text(json.dumps(chrome_trace(doc)) + "\n")
    return path, chrome_path


def load_trace(path) -> dict:
    doc = json.loads(Path(path).read_text())
    if not isinstance(doc, dict) or doc.get("kind") != "repro-trace":
        raise ValueError(f"{path} is not a repro trace document")
    return doc


# --------------------------------------------------------------------- #
# human tree
# --------------------------------------------------------------------- #

#: span attributes worth echoing inline in the tree view.
_TREE_ATTRS = (
    "cache", "chip", "instructions", "n_instructions", "cells", "compiled",
    "jobs", "experiment", "error",
)


def _span_line(span: dict, depth: int) -> str:
    start, end = span.get("start_s", 0.0), span.get("end_s")
    dur = format_duration((end or start) - start) if end is not None else "open"
    attrs = span.get("attrs", {})
    shown = [f"{k}={attrs[k]}" for k in _TREE_ATTRS if k in attrs]
    suffix = f"  [{', '.join(shown)}]" if shown else ""
    return f"{'  ' * depth}{span.get('name', '?'):<{max(1, 44 - 2 * depth)}} {dur:>9}{suffix}"


def render_tree(doc: dict, max_depth: int = 12) -> str:
    """Indented span tree (one line per span) for stderr."""
    lines = ["trace tree (span, wall-clock):"]

    def walk(span, depth):
        lines.append(_span_line(span, depth))
        if depth + 1 < max_depth:
            for child in span.get("children", ()):
                walk(child, depth + 1)

    for root in doc.get("spans", ()):
        walk(root, 1)
    if len(lines) == 1:
        lines.append("  (no spans recorded)")
    return "\n".join(lines)


# --------------------------------------------------------------------- #
# Chrome trace_event
# --------------------------------------------------------------------- #


def chrome_trace(doc: dict) -> dict:
    """Chrome/Perfetto ``trace_event`` JSON (complete-event ``ph: "X"``).

    Emits ``process_name``/``thread_name`` metadata (``ph: "M"``) ahead of
    the span events, so Perfetto labels each track with its root span's
    name instead of a bare pid/tid.  Spans may smuggle extra pre-built
    events — the Fig. 13 pipeline lanes and the hardware-counter Gantt
    (:mod:`repro.obs.timeline`) carry their own metadata the same way.
    """
    events = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": "repro"},
        }
    ]
    for i, root in enumerate(doc.get("spans", ())):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": i,
                "args": {"name": root.get("name", f"root {i}")},
            }
        )

    def walk(span, tid):
        start = float(span.get("start_s", 0.0))
        end = span.get("end_s")
        end = start if end is None else float(end)
        attrs = dict(span.get("attrs", {}))
        extra = attrs.pop("chrome_events", None)
        events.append(
            {
                "name": span.get("name", "?"),
                "cat": "repro",
                "ph": "X",
                "ts": start * 1e6,
                "dur": max(0.0, end - start) * 1e6,
                "pid": 0,
                "tid": tid,
                "args": {k: _jsonable(v) for k, v in attrs.items()},
            }
        )
        if isinstance(extra, list):
            events.extend(extra)
        for child in span.get("children", ()):
            walk(child, tid)

    for i, root in enumerate(doc.get("spans", ())):
        walk(root, i)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"kind": "repro-trace", "schema": doc.get("schema")},
    }


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


# --------------------------------------------------------------------- #
# summary (the ``repro trace summary`` subcommand)
# --------------------------------------------------------------------- #


def _walk_spans(spans):
    for s in spans:
        yield s
        yield from _walk_spans(s.get("children", ()))


def summarize(doc: dict, top: int = 12) -> str:
    """Tree + aggregate per-span-name totals + headline metrics."""
    lines = [render_tree(doc), ""]

    totals: dict = {}
    for span in _walk_spans(doc.get("spans", ())):
        end = span.get("end_s")
        if end is None:
            continue
        dur = end - span.get("start_s", 0.0)
        name = span.get("name", "?")
        t, n = totals.get(name, (0.0, 0))
        totals[name] = (t + dur, n + 1)
    if totals:
        lines.append(f"top spans by total time (of {len(totals)} names):")
        ranked = sorted(totals.items(), key=lambda kv: kv[1][0], reverse=True)
        for name, (t, n) in ranked[:top]:
            lines.append(f"  {name:<44} {format_duration(t):>9}  x{n}")
        lines.append("")

    # executor runs: makespan / scheduler / binding-resource roll-up off
    # the pim/run span attributes (present on profiled executor runs).
    runs = [
        s for s in _walk_spans(doc.get("spans", ()))
        if s.get("name") == "pim/run" and s.get("attrs")
    ]
    if runs:
        makespan = sum(
            a.get("makespan_cycles") or 0.0
            for a in (s.get("attrs", {}) for s in runs)
        )
        emission = sum(
            a.get("emission_makespan_cycles") or 0.0
            for a in (s.get("attrs", {}) for s in runs)
        )
        lines.append(f"executor runs: {len(runs)}")
        lines.append(f"  makespan_cycles {'':<30} {makespan:,.0f}")
        if emission:
            lines.append(
                f"  emission_makespan_cycles {'':<21} {emission:,.0f}  "
                f"(scheduler {emission / makespan:.2f}x)" if makespan else
                f"  emission_makespan_cycles {'':<21} {emission:,.0f}"
            )
        bindings = [
            s["attrs"]["binding_resource"] for s in runs
            if s.get("attrs", {}).get("binding_resource")
        ]
        if bindings:
            top_binding = max(set(bindings), key=bindings.count)
            lines.append(
                f"  binding_resource {'':<29} {top_binding} "
                f"({bindings.count(top_binding)}/{len(bindings)} runs)"
            )
        lines.append("")

    counters = (doc.get("metrics") or {}).get("counters") or {}
    if counters:
        lines.append("counters:")
        for name, value in counters.items():
            shown = f"{value:.6g}" if isinstance(value, float) else f"{value:,}"
            lines.append(f"  {name:<44} {shown}")
    histograms = (doc.get("metrics") or {}).get("histograms") or {}
    if histograms:
        lines.append("histograms:")
        for name, h in histograms.items():
            mean = (h.get("sum", 0.0) / h["count"]) if h.get("count") else 0.0
            lines.append(
                f"  {name:<44} n={h.get('count', 0)} mean={mean:.6g} "
                f"min={h.get('min')} max={h.get('max')}"
            )
    return "\n".join(lines)
