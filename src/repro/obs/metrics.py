"""Process-wide metrics: named counters and histograms.

The registry is intentionally tiny — a flat namespace of monotonically
increasing :class:`Counter` values and fixed-bucket :class:`Histogram`
distributions — because every consumer (the JSON trace document, the
BENCH_perf.json guard, ``repro trace summary``) wants a plain dict
snapshot, not a scrape endpoint.

Hot paths must not pay per-instruction costs: the executor, compiler and
cache publish *aggregates* (once per run / compile / lookup), so the
always-on default costs a handful of dict operations per call.  Snapshots
merge associatively, which is how ``--jobs N`` worker processes fold their
counts back into the parent registry.

Metric namespace (see DESIGN.md "Observability"):

``compiler.*``      compiles, instructions_emitted (total + per kernel class)
``cache.*``         hits / misses / stores / errors / bytes_read / bytes_written
``executor.*``      runs, instructions, ops.<opcode>, cycles.<phase>
``interconnect.*``  <kind>.transfers / hops / flits / bytes
``runtime.*``       estimates, energy_j.<component>
``planner.plans``   resolved Table-5 decisions
``faults.*``        injected / detected / corrected / uncorrected / retries /
                    remaps / wearouts / checkpoints (fault injection + recovery)
"""

from __future__ import annotations

import threading

__all__ = ["Counter", "Histogram", "MetricsRegistry", "get_metrics", "set_metrics"]

#: default histogram bucket upper bounds (counts land in the first bucket
#: whose bound is >= the value; everything above the last bound is "inf").
DEFAULT_BOUNDS = (1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144)


class Counter:
    """A named, monotonically increasing value (int or float)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n=1) -> None:
        self.value += n


class Histogram:
    """Fixed-bucket distribution with count/sum/min/max."""

    __slots__ = ("name", "bounds", "buckets", "count", "total", "min", "max")

    def __init__(self, name: str, bounds=DEFAULT_BOUNDS):
        self.name = name
        self.bounds = tuple(bounds)
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def observe(self, value) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.buckets[i] += 1
                return
        self.buckets[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
        }


class MetricsRegistry:
    """Thread-safe flat registry of counters and histograms."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: dict = {}
        self._histograms: dict = {}

    # -- recording ------------------------------------------------------- #

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            with self._lock:
                c = self._counters.setdefault(name, Counter(name))
        return c

    def histogram(self, name: str, bounds=DEFAULT_BOUNDS) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            with self._lock:
                h = self._histograms.setdefault(name, Histogram(name, bounds))
        return h

    def inc(self, name: str, n=1) -> None:
        """Increment ``name`` by ``n`` (no-op when the registry is disabled)."""
        if self.enabled:
            self.counter(name).inc(n)

    def observe(self, name: str, value) -> None:
        if self.enabled:
            self.histogram(name).observe(value)

    # -- reading --------------------------------------------------------- #

    def value(self, name: str, default=0):
        c = self._counters.get(name)
        return default if c is None else c.value

    def snapshot(self) -> dict:
        """Plain-dict view: ``{"counters": {...}, "histograms": {...}}``."""
        with self._lock:
            return {
                "counters": {k: c.value for k, c in sorted(self._counters.items())},
                "histograms": {k: h.as_dict() for k, h in sorted(self._histograms.items())},
            }

    # -- lifecycle ------------------------------------------------------- #

    def merge(self, snapshot: dict) -> None:
        """Fold another registry's snapshot into this one (associative)."""
        for name, value in (snapshot.get("counters") or {}).items():
            self.counter(name).inc(value)
        for name, payload in (snapshot.get("histograms") or {}).items():
            h = self.histogram(name, tuple(payload.get("bounds", DEFAULT_BOUNDS)))
            if tuple(payload.get("bounds", h.bounds)) != h.bounds:
                continue  # bucket layouts disagree: counts are not mergeable
            h.count += payload.get("count", 0)
            h.total += payload.get("sum", 0.0)
            for key in ("min", "max"):
                v = payload.get(key)
                if v is None:
                    continue
                cur = getattr(h, key)
                fold = min if key == "min" else max
                setattr(h, key, v if cur is None else fold(cur, v))
            for i, n in enumerate(payload.get("buckets", ())):
                if i < len(h.buckets):
                    h.buckets[i] += n

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._histograms.clear()


_METRICS = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-wide registry (call-time lookup, swap with set_metrics)."""
    return _METRICS


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry; returns the previous one."""
    global _METRICS
    old, _METRICS = _METRICS, registry
    return old
