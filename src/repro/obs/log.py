"""Package-wide ``logging`` configuration for ``repro``.

Every module logs through a child of the ``repro`` logger::

    from repro.obs import get_logger
    log = get_logger(__name__)
    log.info("compile grid: %d missing cells", n)

Nothing is emitted until :func:`configure_logging` attaches the stderr
handler — importing the library never touches global logging state.  The
CLI wires ``--log-level`` (default ``info``, env ``REPRO_LOG_LEVEL``)
through here, so ``--log-level warning`` gives quiet batch runs.
"""

from __future__ import annotations

import logging
import os
import sys

__all__ = ["ROOT_LOGGER_NAME", "configure_logging", "get_logger"]

ROOT_LOGGER_NAME = "repro"

_ENV_LOG_LEVEL = "REPRO_LOG_LEVEL"

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
_DATEFMT = "%H:%M:%S"


def get_logger(name: str | None = None) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (module ``__name__`` is fine)."""
    if not name:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if name == ROOT_LOGGER_NAME or name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def resolve_level(level) -> int:
    """``"info"``/``"INFO"``/``20`` -> ``logging.INFO`` (ValueError otherwise)."""
    if isinstance(level, int):
        return level
    value = logging.getLevelName(str(level).upper())
    if not isinstance(value, int):
        raise ValueError(f"unknown log level {level!r}")
    return value


def configure_logging(level=None, stream=None) -> logging.Logger:
    """Attach (or retune) the stderr handler on the ``repro`` root logger.

    Idempotent: repeated calls adjust the level of the existing handler
    instead of stacking duplicates.  ``level`` defaults to
    ``REPRO_LOG_LEVEL`` and then ``info``.
    """
    if level is None:
        level = os.environ.get(_ENV_LOG_LEVEL, "info")
    resolved = resolve_level(level)
    root = logging.getLogger(ROOT_LOGGER_NAME)
    root.setLevel(resolved)
    root.propagate = False
    handler = next(
        (h for h in root.handlers if getattr(h, "_repro_handler", False)), None
    )
    if handler is None:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler._repro_handler = True
        handler.setFormatter(logging.Formatter(_FORMAT, datefmt=_DATEFMT))
        root.addHandler(handler)
    elif stream is not None:
        handler.setStream(stream)
    handler.setLevel(resolved)
    return root
