"""Zero-dependency structured tracing: nested spans with attributes.

A :class:`Span` records one named region of work — wall-clock start/end
(``time.perf_counter`` offsets from the tracer's epoch), free-form
attributes, and child spans.  Usage::

    from repro.obs import get_tracer
    with get_tracer().span("compile/volume_kernel", instructions=123) as sp:
        ...
        sp.set(total_time_s=report.total_time_s)

Tracing is **off by default** (``REPRO_TRACE=1`` or ``Tracer.enable()``
turns it on); when off, :meth:`Tracer.span` returns a shared no-op span so
instrumented hot paths pay only one attribute lookup and a method call.

Aggregation is thread-safe (each thread keeps its own span stack; finished
top-level spans land in a lock-guarded root list) and process-safe: a
worker process traces into its own :class:`Tracer`, exports with
:meth:`Tracer.export`, and the parent grafts the payload into its live
tree with :meth:`Tracer.adopt` — this is how ``--jobs N`` compile fan-out
merges child traces.
"""

from __future__ import annotations

import os
import threading
import time

__all__ = ["Span", "Tracer", "get_tracer", "set_tracer", "trace_span"]

_ENV_TRACE = "REPRO_TRACE"

_TRUTHY = ("1", "true", "yes")


def _env_enabled() -> bool:
    return os.environ.get(_ENV_TRACE, "") in _TRUTHY


class Span:
    """One timed region; context manager that nests under the active span."""

    __slots__ = ("name", "start_s", "end_s", "attrs", "children", "_tracer")

    def __init__(self, name: str, tracer: "Tracer | None" = None, attrs=None):
        self.name = name
        self.start_s = 0.0
        self.end_s: float | None = None
        self.attrs = dict(attrs) if attrs else {}
        self.children: list = []
        self._tracer = tracer

    # -- recording ------------------------------------------------------- #

    def set(self, **attrs) -> "Span":
        """Attach/overwrite attributes."""
        self.attrs.update(attrs)
        return self

    def inc(self, key: str, value=1) -> "Span":
        """Accumulate a numeric attribute (a per-span counter)."""
        self.attrs[key] = self.attrs.get(key, 0) + value
        return self

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    # -- context protocol ------------------------------------------------ #

    def __enter__(self) -> "Span":
        tracer = self._tracer
        if tracer is not None:
            tracer._stack().append(self)
            self.start_s = time.perf_counter() - tracer._epoch
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self._tracer
        if tracer is not None:
            self.end_s = time.perf_counter() - tracer._epoch
            if exc_type is not None:
                self.attrs.setdefault("error", exc_type.__name__)
            tracer._finish(self)
        return False

    # -- serialization --------------------------------------------------- #

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "attrs": dict(self.attrs),
            "children": [c.to_dict() for c in self.children],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        sp = cls(payload.get("name", "?"))
        sp.start_s = float(payload.get("start_s", 0.0))
        end = payload.get("end_s")
        sp.end_s = None if end is None else float(end)
        sp.attrs = dict(payload.get("attrs", {}))
        sp.children = [cls.from_dict(c) for c in payload.get("children", ())]
        return sp

    def shift(self, delta_s: float) -> None:
        """Translate this subtree in time (used when adopting child traces)."""
        self.start_s += delta_s
        if self.end_s is not None:
            self.end_s += delta_s
        for c in self.children:
            c.shift(delta_s)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Span({self.name!r}, {self.duration_s * 1e3:.3f}ms, {len(self.children)} children)"


class _NullSpan:
    """Shared no-op span returned while tracing is disabled."""

    __slots__ = ()
    name = ""
    attrs: dict = {}
    children: tuple = ()
    start_s = 0.0
    end_s = 0.0
    duration_s = 0.0

    def set(self, **attrs):
        return self

    def inc(self, key, value=1):
        return self

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans into per-thread trees; merges across threads/processes."""

    def __init__(self, enabled: bool | None = None):
        self._enabled = _env_enabled() if enabled is None else enabled
        self._epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._roots: list[Span] = []
        self._tls = threading.local()

    # -- state ----------------------------------------------------------- #

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def clear(self) -> None:
        """Drop recorded roots and this thread's open spans."""
        with self._lock:
            self._roots = []
        self._tls.stack = []
        self._epoch = time.perf_counter()

    # -- span lifecycle -------------------------------------------------- #

    def _stack(self) -> list:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def span(self, name: str, **attrs):
        """A new span nested under the current one (no-op when disabled)."""
        if not self._enabled:
            return NULL_SPAN
        return Span(name, self, attrs)

    def current(self):
        """The innermost open span of this thread (NULL_SPAN when none)."""
        stack = self._stack()
        return stack[-1] if stack else NULL_SPAN

    def _finish(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self._roots.append(span)

    # -- aggregation ----------------------------------------------------- #

    @property
    def roots(self) -> list:
        with self._lock:
            return list(self._roots)

    def export(self) -> list:
        """Completed root spans as plain dicts (picklable / JSON-able)."""
        return [s.to_dict() for s in self.roots]

    def adopt(self, payload, **extra_attrs) -> int:
        """Graft serialized spans (from :meth:`export`) into the live tree.

        The adopted subtrees are re-based so their earliest start aligns
        with the current span's start (their internal timing stays exact;
        absolute placement inside the parent is approximate — the child
        process ran concurrently).  Returns the number of roots adopted.
        """
        spans = [Span.from_dict(p) for p in payload or ()]
        if not spans:
            return 0
        parent = self.current()
        anchor = parent.start_s if parent is not NULL_SPAN else 0.0
        delta = anchor - min(s.start_s for s in spans)
        for sp in spans:
            sp.shift(delta)
            sp.attrs.update(extra_attrs)
            if parent is not NULL_SPAN:
                parent.children.append(sp)
            else:
                with self._lock:
                    self._roots.append(sp)
        return len(spans)


_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer (call-time lookup, swap with set_tracer)."""
    return _TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the process-wide tracer; returns the previous one.

    Worker processes use this to trace into a fresh, private tracer whose
    export excludes anything inherited from the parent across ``fork``.
    """
    global _TRACER
    old, _TRACER = _TRACER, tracer
    return old


def trace_span(name: str, **attrs):
    """Shorthand for ``get_tracer().span(...)``."""
    return _TRACER.span(name, **attrs)
