"""The six evaluation benchmarks (paper §7.2, Table 6).

Three groups — acoustic, elastic with central flux, elastic with Riemann
flux — each at refinement levels 4 (4,096 elements) and 5 (32,768
elements), all with 512-node (order-7) elements and 32-bit floats.
``PAPER_TABLE6`` holds the paper's measured per-launch instruction and
FP-op counts (nvprof on a Tesla V100, fused implementation, each kernel
launched once) for the reproduction comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BenchmarkSpec", "BENCHMARKS", "PAPER_TABLE6", "benchmark_list"]


@dataclass(frozen=True)
class BenchmarkSpec:
    """One evaluation benchmark."""

    key: str
    physics: str  # "acoustic" | "elastic"
    flux_kind: str  # "central" | "riemann"
    refinement_level: int
    order: int = 7

    @property
    def n_elements(self) -> int:
        return (2**self.refinement_level) ** 3

    @property
    def n_nodes(self) -> int:
        return (self.order + 1) ** 3

    @property
    def n_vars(self) -> int:
        return 4 if self.physics == "acoustic" else 9

    @property
    def name(self) -> str:
        if self.physics == "acoustic":
            return f"Acoustic_{self.refinement_level}"
        flux = "Central" if self.flux_kind == "central" else "Riemann"
        return f"Elastic-{flux}_{self.refinement_level}"

    @property
    def state_bytes(self) -> int:
        """One copy of the unknowns, fp32."""
        return self.n_elements * self.n_nodes * self.n_vars * 4


BENCHMARKS = {
    "acoustic_4": BenchmarkSpec("acoustic_4", "acoustic", "riemann", 4),
    "elastic_central_4": BenchmarkSpec("elastic_central_4", "elastic", "central", 4),
    "elastic_riemann_4": BenchmarkSpec("elastic_riemann_4", "elastic", "riemann", 4),
    "acoustic_5": BenchmarkSpec("acoustic_5", "acoustic", "riemann", 5),
    "elastic_central_5": BenchmarkSpec("elastic_central_5", "elastic", "central", 5),
    "elastic_riemann_5": BenchmarkSpec("elastic_riemann_5", "elastic", "riemann", 5),
}


def benchmark_list() -> list:
    """The six benchmarks in the paper's presentation order."""
    return [
        BENCHMARKS[k]
        for k in (
            "acoustic_4",
            "elastic_central_4",
            "elastic_riemann_4",
            "acoustic_5",
            "elastic_central_5",
            "elastic_riemann_5",
        )
    ]


#: Table 6 as printed: per-launch (instructions, fp ops) on the fused V100
#: implementation.
PAPER_TABLE6 = {
    "acoustic_4": {"elements": 4096, "instructions": 2_140_930_048, "fp_ops": 391_380_992},
    "elastic_central_4": {"elements": 4096, "instructions": 3_465_543_680, "fp_ops": 990_117_888},
    "elastic_riemann_4": {"elements": 4096, "instructions": 9_870_131_200, "fp_ops": 1_472_200_704},
    "acoustic_5": {"elements": 32768, "instructions": 17_127_440_384, "fp_ops": 3_131_047_936},
    "elastic_central_5": {
        "elements": 32768,
        "instructions": 27_724_349_440,
        "fp_ops": 7_920_943_104,
    },
    "elastic_riemann_5": {
        "elements": 32768,
        "instructions": 78_960_159_424,
        "fp_ops": 11_777_661_440,
    },
}
