"""The paper's six benchmarks and their operation-count model (Table 6)."""

from repro.workloads.benchmarks import BenchmarkSpec, BENCHMARKS, PAPER_TABLE6, benchmark_list
from repro.workloads.opcount import OpCount, count_benchmark

__all__ = [
    "BenchmarkSpec",
    "BENCHMARKS",
    "PAPER_TABLE6",
    "benchmark_list",
    "OpCount",
    "count_benchmark",
]
