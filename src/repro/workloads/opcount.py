"""Operation counting: the single source of truth behind Table 6.

Counts come from walking the *same instruction streams* the Wave-PIM
compiler emits (one representative interior element), so the PIM timing
model, the GPU roofline and the Table 6 reproduction cannot drift apart
(DESIGN.md §5.3).  Arithmetic instructions execute row-parallel, so one
ADD over ``r`` rows is ``r`` scalar flops.

GPU thread-level instruction counts (the paper's ``inst_executed * 32``)
are estimated as ``alpha * flops + beta * words_accessed`` — flops plus
address arithmetic, loads/stores and control; ``alpha``/``beta`` are
calibrated once against the acoustic benchmark and held fixed, so the
cross-benchmark *shape* is a genuine prediction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.kernels.acoustic import AcousticOneBlockKernels
from repro.core.kernels.elastic import ElasticFourBlockKernels
from repro.core.mapper import ElementMapper
from repro.dg.materials import AcousticMaterial, ElasticMaterial
from repro.dg.mesh import HexMesh
from repro.dg.reference_element import ReferenceElement
from repro.pim.isa import Opcode
from repro.pim.params import CHIP_CONFIGS
from repro.workloads.benchmarks import BenchmarkSpec

__all__ = ["OpCount", "count_benchmark", "INSTR_ALPHA", "INSTR_BETA"]

#: GPU thread-instructions per flop and per word moved (calibrated once).
INSTR_ALPHA = 4.0
INSTR_BETA = 12.0


@dataclass(frozen=True)
class OpCount:
    """Per-launch operation counts for one benchmark (all elements)."""

    benchmark: str
    n_elements: int
    #: scalar fp operations per kernel-launch set (Volume+Flux+Integration
    #: each launched once, as in Table 6)
    fp_ops: int
    fp_ops_volume: int
    fp_ops_flux: int
    fp_ops_integration: int
    #: 32-bit words moved per launch set (gathers, transfers, broadcasts)
    words_moved: int
    #: PIM instructions per launch set
    pim_instructions: int
    #: estimated GPU thread-level instructions per launch set
    gpu_instructions_est: int

    @property
    def arithmetic_intensity(self) -> float:
        """flops per byte of data movement."""
        return self.fp_ops / (4.0 * self.words_moved) if self.words_moved else float("inf")


_FLOP_OPS = (Opcode.ADD, Opcode.SUB, Opcode.MUL)
_MOVE_OPS = (Opcode.GATHER, Opcode.BROADCAST, Opcode.COPY, Opcode.TRANSFER)


def _stream_counts(insts) -> tuple[int, int]:
    """(scalar flops, words moved) of an instruction stream."""
    flops = sum(i.n_rows for i in insts if i.op in _FLOP_OPS)
    words = sum(i.n_rows * i.words for i in insts if i.op in _MOVE_OPS)
    return flops, words


def count_benchmark(spec: BenchmarkSpec, order: int | None = None) -> OpCount:
    """Count one benchmark's per-launch operations from its kernel streams."""
    order = spec.order if order is None else order
    mesh = HexMesh.from_refinement_level(spec.refinement_level)
    element = ReferenceElement(order)
    chip = CHIP_CONFIGS["16GB"]

    if spec.physics == "acoustic":
        mapper = ElementMapper(mesh.m, chip, 1)
        material = AcousticMaterial.homogeneous(mesh.n_elements)
        kern = AcousticOneBlockKernels(mesh, element, material, mapper, spec.flux_kind)
    else:
        mapper = ElementMapper(mesh.m, chip, 4)
        material = ElasticMaterial.homogeneous(mesh.n_elements)
        kern = ElasticFourBlockKernels(mesh, element, material, mapper, spec.flux_kind)

    rep = [int(mapper.elements[mapper.n_elements // 2])]
    vol_f, vol_w = _stream_counts(kern.volume(elements=rep))
    flux_f, flux_w = _stream_counts(kern.flux(elements=rep))
    integ_f, integ_w = _stream_counts(kern.integration(0, 1e-4, elements=rep))
    n_insts = sum(
        len(k)
        for k in (
            kern.volume(elements=rep),
            kern.flux(elements=rep),
            kern.integration(0, 1e-4, elements=rep),
        )
    )

    K = spec.n_elements
    fp_volume = vol_f * K
    fp_flux = flux_f * K
    fp_integration = integ_f * K
    fp_total = fp_volume + fp_flux + fp_integration
    words = (vol_w + flux_w + integ_w) * K
    gpu_inst = int(INSTR_ALPHA * fp_total + INSTR_BETA * words)

    return OpCount(
        benchmark=spec.name,
        n_elements=K,
        fp_ops=fp_total,
        fp_ops_volume=fp_volume,
        fp_ops_flux=fp_flux,
        fp_ops_integration=fp_integration,
        words_moved=words,
        pim_instructions=n_insts * K,
        gpu_instructions_est=gpu_inst,
    )
