"""The shard-scaling step workload (``repro bench --shards``).

Sharding pays off on the *capacity* axis: the level-2 step workload's 64
elements are deliberately paired with a proxy chip of 48 blocks (3 tiles
x 16 blocks), so a single chip must run two sequential Morton batches
(the paper's Fig. 7 batching), while each of 4 shards holds its 16 owned
elements plus exactly 32 ghost elements — a full, symmetric chip — and
all four run concurrently.  A fitting workload would shard at ~1.0x
(makespan is block-bound: max per-element serial work), so this workload
is the honest one: the speedup measures chips added to a mesh one chip
cannot hold, which is precisely the r=6-and-beyond scaling story.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.pim.params import ChipConfig

__all__ = [
    "SHARD_WORKLOAD_LEVEL",
    "SHARD_WORKLOAD_SHARDS",
    "shard_proxy_chip",
    "shard_step_workload",
]

#: refinement level of the step workload (64 elements).
SHARD_WORKLOAD_LEVEL = 2
#: default shard count of the bench entry and the CI job.
SHARD_WORKLOAD_SHARDS = 4


def shard_proxy_chip() -> ChipConfig:
    """A 48-block (3 tiles x 16) proxy chip the 64-element mesh overflows.

    Same device/power/H-tree parameters as the paper chips, scaled down so
    the capacity/batching effect is exercised at test speed; 16 H-tree
    leaves per tile keep the Morton leaf numbering intact.
    """
    block_bytes = 1024 * 1024 // 8  # one 1K x 1K bit-serial block
    return ChipConfig(
        name="shard-proxy",
        capacity_bytes=3 * 16 * block_bytes,
        blocks_per_tile=16,
    )


def shard_step_workload() -> Dict[str, Any]:
    """Mesh/element/material/chip + kernel factory of the step workload."""
    from repro.core.kernels.acoustic import AcousticOneBlockKernels
    from repro.dg import AcousticMaterial, HexMesh, ReferenceElement

    mesh = HexMesh.from_refinement_level(SHARD_WORKLOAD_LEVEL)
    element = ReferenceElement(2)
    material = AcousticMaterial.homogeneous(mesh.n_elements)

    def kernel_factory(mapper: Any) -> Any:
        return AcousticOneBlockKernels(mesh, element, material, mapper,
                                       "riemann")

    return {
        "mesh": mesh,
        "element": element,
        "material": material,
        "chip": shard_proxy_chip(),
        "kernel_factory": kernel_factory,
        "blocks_per_element": 1,
        "dt": 1e-4,
        "flux": "riemann",
        "physics": "acoustic",
    }
