"""Wave-PIM: accelerating wave simulation using processing-in-memory.

A full reproduction of Hanindhito, Li et al., ICPP 2021
(doi:10.1145/3472456.3472512): a nodal discontinuous-Galerkin wave
simulator (acoustic + elastic), a cycle-level digital PIM model built from
MAGIC NOR arithmetic with H-tree/Bus interconnects, the Wave-PIM mapping
(Fig. 5 layout, Table 5 planner, batching/expansion/pipelining), GPU/CPU
roofline baselines, and an experiment harness regenerating every table and
figure of the paper's evaluation.

Quick start::

    from repro import WaveSolver, SolverConfig
    solver = WaveSolver(SolverConfig(physics="acoustic", refinement_level=2,
                                     order=3))
    ...

    from repro import run_experiment
    print(run_experiment("table5").render())

See README.md for the architecture overview, DESIGN.md for the system
inventory, and EXPERIMENTS.md for paper-vs-measured results.
"""

from repro.dg import (
    AcousticMaterial,
    AcousticOperator,
    ElasticMaterial,
    ElasticOperator,
    HexMesh,
    LSRK45,
    ReferenceElement,
    RickerSource,
    SolverConfig,
    WaveSolver,
    cfl_timestep,
)
from repro.pim import CHIP_CONFIGS, ChipConfig, ChipExecutor, PimChip
from repro.core import (
    ElementMapper,
    Plan,
    WavePimCompiler,
    estimate_benchmark,
    plan_configuration,
)
from repro.gpu import CPU_BASELINE, GPU_SPECS
from repro.workloads import BENCHMARKS, benchmark_list, count_benchmark
from repro.eval import EXPERIMENTS, run_experiment
from repro.apps import TimeReversalImager
from repro.obs import configure_logging, get_logger, get_metrics, get_tracer

__version__ = "1.0.0"

__all__ = [
    # dG substrate
    "AcousticMaterial",
    "AcousticOperator",
    "ElasticMaterial",
    "ElasticOperator",
    "HexMesh",
    "LSRK45",
    "ReferenceElement",
    "RickerSource",
    "SolverConfig",
    "WaveSolver",
    "cfl_timestep",
    # PIM substrate
    "CHIP_CONFIGS",
    "ChipConfig",
    "ChipExecutor",
    "PimChip",
    # Wave-PIM core
    "ElementMapper",
    "Plan",
    "WavePimCompiler",
    "estimate_benchmark",
    "plan_configuration",
    # baselines
    "CPU_BASELINE",
    "GPU_SPECS",
    # workloads + evaluation
    "BENCHMARKS",
    "benchmark_list",
    "count_benchmark",
    "EXPERIMENTS",
    "run_experiment",
    "TimeReversalImager",
    # observability
    "configure_logging",
    "get_logger",
    "get_metrics",
    "get_tracer",
    "__version__",
]
