"""Halo-coverage audit (PL005): a sharding loses no faces, doubles none.

The multi-chip layer's correctness claim — N-shard execution bit-identical
to 1-shard — rests on the partition delivering exactly the ghost data
every shard's flux kernels consume.  This pass proves that statically for
a :class:`~repro.pim.multichip.Sharding`:

* **ownership** — every mesh element is owned by exactly one shard;
* **halo completeness** — each shard's halo is exactly the set of
  cross-shard face neighbors of its owned elements (a missing element is
  a *lost halo row*: the flux kernel would read a stale ghost; an extra
  element is dead exchange traffic, reported as a warning);
* **exchange delivery** — the directed exchange sets partition each
  shard's halo (every ghost element produced by exactly one owner shard,
  consumed exactly once) and ship only elements their source owns.

Run via :func:`audit_sharding` (the tests and the CI shard-bench job) —
strict-clean is an acceptance gate for ``repro bench --shards``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

import numpy as np

from repro.analysis.findings import ERROR, WARNING, Finding

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a runtime cycle
    from repro.dg.mesh import HexMesh
    from repro.pim.multichip import Sharding

__all__ = ["audit_sharding"]

PASS_NAME = "halo"


def audit_sharding(mesh: "HexMesh", sharding: "Sharding") -> List[Finding]:
    """PL005 findings for ``sharding`` over ``mesh`` (empty = clean)."""
    out: List[Finding] = []

    def add(code: str, msg: str, severity: str = ERROR, tag: str = "") -> None:
        out.append(Finding(code, msg, severity, tag=tag, passname=PASS_NAME))

    # ownership: the owned sets partition the mesh.
    counts = np.zeros(mesh.n_elements, dtype=np.int64)
    for owned in sharding.owned:
        counts[np.asarray(owned, dtype=np.int64)] += 1
    orphans = np.flatnonzero(counts == 0)
    doubled = np.flatnonzero(counts > 1)
    if orphans.size:
        add("PL005",
            f"{orphans.size} element(s) owned by no shard "
            f"(e.g. {orphans[:4].tolist()}) — their state is never advanced",
            tag="ownership")
    if doubled.size:
        add("PL005",
            f"{doubled.size} element(s) owned by multiple shards "
            f"(e.g. {doubled[:4].tolist()}) — duplicated integration "
            "diverges under exchange", tag="ownership")

    for s in range(sharding.n_shards):
        owned = np.asarray(sharding.owned[s], dtype=np.int64)
        halo = np.asarray(sharding.halo[s], dtype=np.int64)
        needed = mesh.halo_of(owned)
        lost = np.setdiff1d(needed, halo)
        extra = np.setdiff1d(halo, needed)
        if lost.size:
            add("PL005",
                f"shard {s} consumes cross-shard faces of {lost.size} "
                f"element(s) missing from its halo "
                f"(e.g. {lost[:4].tolist()}) — lost halo rows: flux would "
                "read stale ghosts", tag=f"shard{s}")
        if extra.size:
            add("PL005",
                f"shard {s} carries {extra.size} halo element(s) no owned "
                f"face consumes (e.g. {extra[:4].tolist()}) — dead "
                "exchange traffic", WARNING, tag=f"shard{s}")

        # exchange delivery: the inbound sets partition the halo.
        delivered = np.zeros(0, dtype=np.int64)
        for (src, dst), elems in sharding.exchanges.items():
            if dst != s:
                continue
            elems = np.asarray(elems, dtype=np.int64)
            not_owned = np.setdiff1d(elems, sharding.owned[src])
            if not_owned.size:
                add("PL005",
                    f"exchange {src}->{s} ships {not_owned.size} element(s) "
                    f"shard {src} does not own (e.g. {not_owned[:4].tolist()})",
                    tag=f"exchange{src}->{s}")
            dup = np.intersect1d(delivered, elems)
            if dup.size:
                add("PL005",
                    f"shard {s} receives {dup.size} ghost element(s) from "
                    f"multiple sources (e.g. {dup[:4].tolist()}) — consumed "
                    "more than once", tag=f"shard{s}")
            delivered = np.union1d(delivered, elems)
        undelivered = np.setdiff1d(halo, delivered)
        if undelivered.size:
            add("PL005",
                f"shard {s} halo has {undelivered.size} element(s) no "
                f"exchange delivers (e.g. {undelivered[:4].tolist()}) — "
                "ghosts would stay at their initial state",
                tag=f"shard{s}")
        overdelivered = np.setdiff1d(delivered, halo)
        if overdelivered.size:
            add("PL005",
                f"exchanges deliver {overdelivered.size} element(s) outside "
                f"shard {s}'s halo (e.g. {overdelivered[:4].tolist()})",
                tag=f"shard{s}")
    return out
