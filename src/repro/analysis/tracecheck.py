"""Trace-document validation (the observability side of ``repro check``).

The span-tree and Chrome ``trace_event`` validators used by CI's profiled
runs.  This module owns the logic; ``scripts/validate_trace.py`` is a thin
command-line wrapper around :func:`main` kept for back-compat with
existing CI invocations, and the ``repro check --trace`` path calls
:func:`validate_trace_file` directly.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Set, Union

from repro.obs.timeline import COUNTERS_PID

__all__ = [
    "EXPECTED_SCHEMA",
    "EXPECTED_KIND",
    "validate",
    "validate_chrome",
    "validate_counters",
    "validate_trace_file",
    "main",
]

EXPECTED_SCHEMA = 1
EXPECTED_KIND = "repro-trace"


def _check_span(span: object, path: str, errors: List[str]) -> None:
    if not isinstance(span, dict):
        errors.append(f"{path}: span is not an object")
        return
    name = span.get("name")
    if not isinstance(name, str) or not name:
        errors.append(f"{path}: missing span name")
        name = "?"
    here = f"{path}/{name}"
    start = span.get("start_s")
    end = span.get("end_s")
    if not isinstance(start, (int, float)) or not isinstance(end, (int, float)):
        errors.append(f"{here}: start_s/end_s must be numbers "
                      f"(got {start!r}, {end!r})")
    elif end < start:
        errors.append(f"{here}: end_s < start_s ({end} < {start})")
    children = span.get("children", [])
    if not isinstance(children, list):
        errors.append(f"{here}: children must be a list")
        return
    for child in children:
        _check_span(child, here, errors)


def _span_names(spans: Iterable[object]) -> Set[str]:
    names: Set[str] = set()
    stack = [s for s in spans if isinstance(s, dict)]
    while stack:
        span = stack.pop()
        name = span.get("name")
        if isinstance(name, str):
            names.add(name)
        stack.extend(c for c in span.get("children", []) if isinstance(c, dict))
    return names


def validate(doc: object, require: Sequence[str] = ()) -> List[str]:
    """Return a list of error strings; empty means the trace is valid."""
    errors: List[str] = []
    if not isinstance(doc, dict):
        return ["trace document is not a JSON object"]
    if doc.get("schema") != EXPECTED_SCHEMA:
        errors.append(f"schema must be {EXPECTED_SCHEMA}, got {doc.get('schema')!r}")
    if doc.get("kind") != EXPECTED_KIND:
        errors.append(f"kind must be {EXPECTED_KIND!r}, got {doc.get('kind')!r}")
    spans = doc.get("spans")
    if not isinstance(spans, list) or not spans:
        errors.append("trace has no spans (empty or missing 'spans' list)")
        return errors
    for i, span in enumerate(spans):
        _check_span(span, f"spans[{i}]", errors)
    names = _span_names(spans)
    for token in require:
        if not any(token in name for name in names):
            errors.append(f"required phase {token!r} not found in span tree "
                          f"(have: {', '.join(sorted(names))})")
    return errors


def validate_chrome(doc: object) -> List[str]:
    """Validate a Chrome ``trace_event`` export (the ``.chrome.json`` sibling)."""
    errors: List[str] = []
    if not isinstance(doc, dict):
        return ["chrome trace is not a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        errors.append("chrome trace has no traceEvents")
        return errors
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            errors.append(f"traceEvents[{i}]: not an object")
            continue
        if not ev.get("name") or ev.get("ph") not in ("X", "B", "E", "i", "C", "M"):
            errors.append(f"traceEvents[{i}]: missing name or bad ph {ev.get('ph')!r}")
        if ev.get("ph") == "M":
            # metadata events (process_name/thread_name) carry no timestamp
            if not isinstance(ev.get("args"), dict):
                errors.append(f"traceEvents[{i}]: metadata event missing args")
            continue
        if not isinstance(ev.get("ts"), (int, float)):
            errors.append(f"traceEvents[{i}]: ts must be a number")
        if ev.get("ph") == "X" and not isinstance(ev.get("dur"), (int, float)):
            errors.append(f"traceEvents[{i}]: complete event missing dur")
    return errors


def validate_counters(doc: object, chrome_doc: object) -> List[str]:
    """Check the hardware-counter evidence of a ``--counters`` run.

    The JSON document's metrics must carry ``counters.*`` entries, and the
    Chrome sibling must contain the counter Gantt (see
    :mod:`repro.obs.timeline`): a ``process_name`` metadata event naming
    the ``"hardware counters"`` process, at least one ``thread_name``
    track on that pid, and ``ph: "X"`` occupancy slices on it.
    """
    errors: List[str] = []
    counters: object = None
    if isinstance(doc, dict):
        metrics = doc.get("metrics")
        if isinstance(metrics, dict):
            counters = metrics.get("counters")
    has_counters = isinstance(counters, dict) and any(
        isinstance(k, str) and k.startswith("counters.") for k in counters
    )
    if not has_counters:
        errors.append(
            "metrics carry no counters.* entries (was the run profiled "
            "with --counters / REPRO_COUNTERS=1?)"
        )
    if not isinstance(chrome_doc, dict):
        errors.append("chrome trace is not a JSON object")
        return errors
    raw_events = chrome_doc.get("traceEvents")
    events = [e for e in raw_events if isinstance(e, dict)] \
        if isinstance(raw_events, list) else []
    pid_events = [e for e in events if e.get("pid") == COUNTERS_PID]
    named = any(
        e.get("ph") == "M" and e.get("name") == "process_name"
        and isinstance(e.get("args"), dict)
        and e["args"].get("name") == "hardware counters"
        for e in pid_events
    )
    if not named:
        errors.append(
            'chrome trace has no "hardware counters" process metadata '
            f"(ph M, pid {COUNTERS_PID})"
        )
    if not any(e.get("ph") == "M" and e.get("name") == "thread_name"
               for e in pid_events):
        errors.append("chrome trace has no counter thread_name tracks "
                      "(per-block/link Gantt lanes)")
    if not any(e.get("ph") == "X" for e in pid_events):
        errors.append("chrome trace has no counter occupancy slices "
                      f"(ph X on pid {COUNTERS_PID})")
    return errors


def validate_trace_file(
    path: Union[str, Path],
    require: Sequence[str] = (),
    check_chrome: bool = True,
    require_counters: bool = False,
) -> List[str]:
    """Validate a trace file on disk (and its Chrome sibling); never raises.

    ``require_counters`` additionally demands hardware-counter evidence
    (:func:`validate_counters`) and implies loading the Chrome sibling.
    """
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        return [f"cannot read {path}: {exc}"]
    errors = validate(doc, require=require)
    if check_chrome or require_counters:
        chrome_path = path.with_name(path.stem + ".chrome.json")
        if not chrome_path.exists():
            errors.append(f"missing Chrome export {chrome_path}")
        else:
            try:
                chrome_doc = json.loads(chrome_path.read_text())
            except (OSError, ValueError) as exc:
                errors.append(f"cannot read {chrome_path}: {exc}")
            else:
                if check_chrome:
                    errors.extend(validate_chrome(chrome_doc))
                if require_counters:
                    errors.extend(validate_counters(doc, chrome_doc))
    return errors


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Validate a trace written by python -m repro run --profile"
    )
    parser.add_argument("trace", help="path to the JSON trace document")
    parser.add_argument("--require", action="append", default=[],
                        metavar="TOKEN",
                        help="fail unless some span name contains TOKEN "
                             "(repeatable)")
    parser.add_argument("--no-chrome", action="store_true",
                        help="skip validating the .chrome.json sibling")
    parser.add_argument("--counters", action="store_true",
                        help="require hardware-counter evidence: counters.* "
                             "metrics plus the Gantt tracks in the Chrome "
                             "sibling (a --counters/REPRO_COUNTERS=1 run)")
    args = parser.parse_args(argv)

    path = Path(args.trace)
    if not path.exists():
        print(f"FAIL: cannot read {path}: no such file", file=sys.stderr)
        return 2
    errors = validate_trace_file(path, require=args.require,
                                 check_chrome=not args.no_chrome,
                                 require_counters=args.counters)
    if errors:
        for err in errors:
            print(f"FAIL: {err}", file=sys.stderr)
        return 1
    n = len(json.loads(path.read_text()).get("spans", []))
    print(f"OK: {path} valid ({n} root span{'s' if n != 1 else ''})")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the wrapper
    sys.exit(main())
