"""Fault-readiness pass (FT*): can the layout host the parity rows?

The fault-tolerant execution path (:mod:`repro.faults`) protects compute
results with per-block parity rows appended *below* the data layout: the
executor prices one parity-copy per compute op and the recompute path
relies on those rows existing.  A layout that packs data into every row
of the block leaves nowhere to put them — protection silently becomes
detection-only.

``FT001``
    a block's highest touched row leaves fewer than ``parity_rows`` spare
    rows.  Reported once per offending block, as a *warning*: the program
    still runs correctly, it just cannot be parity-protected.

The pass is inert unless :class:`~repro.analysis.checker.CheckContext`
sets ``parity_rows > 0`` (``repro check --parity-rows N`` from the CLI),
so existing check runs are unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.checker import CheckContext, accesses
from repro.analysis.findings import WARNING, Finding
from repro.pim.isa import Instruction

__all__ = ["FaultReadinessPass", "max_touched_row"]


def max_touched_row(rows, block_rows: int) -> Optional[int]:
    """Highest in-range row of a selector, or None for empty/whole-block.

    ``rows=None`` means data-dependent whole-block access (the LUT block);
    those blocks are storage, not compute layout, so the pass skips them.
    Out-of-range rows are the layout pass's business (LY001) — they are
    clipped here.
    """
    if rows is None:
        return None
    if isinstance(rows, tuple):
        r0, r1 = int(rows[0]), int(rows[1])
        hi = min(r1, block_rows) - 1
        return hi if hi >= max(r0, 0) else None
    idx = np.asarray(rows, dtype=np.int64).ravel()
    idx = idx[(idx >= 0) & (idx < block_rows)]
    return int(idx.max()) if idx.size else None


class FaultReadinessPass:
    """Pass (f): spare-row budget for the fault model's parity rows."""

    name = "faultready"

    def run(self, program: Sequence[Instruction], ctx: CheckContext) -> List[Finding]:
        parity = int(getattr(ctx, "parity_rows", 0) or 0)
        if parity <= 0:
            return []
        # highest row each block touches, and the instruction that did it
        high: Dict[int, Tuple[int, int]] = {}
        for i, inst in enumerate(program):
            reads, writes = accesses(inst)
            for acc in (*reads, *writes):
                if acc.block is None:
                    continue
                top = max_touched_row(acc.rows, ctx.block_rows)
                if top is None:
                    continue
                prev = high.get(acc.block)
                if prev is None or top > prev[0]:
                    high[acc.block] = (top, i)
        out: List[Finding] = []
        for block in sorted(high):
            top, i = high[block]
            spare = ctx.block_rows - (top + 1)
            if spare < parity:
                out.append(Finding(
                    "FT001",
                    f"block {block} uses rows up to {top} of {ctx.block_rows}; "
                    f"{spare} spare row{'s' if spare != 1 else ''} cannot hold "
                    f"{parity} parity row{'s' if parity != 1 else ''} — fault "
                    "protection degrades to detection-only on this block",
                    WARNING, index=i, block=block,
                    tag=program[i].tag, passname=self.name,
                ))
        return out
