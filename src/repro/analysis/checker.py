"""Pass runner and shared access model for the static program checker.

The checker consumes a compiled :class:`~repro.pim.isa.Instruction` stream
*before* execution and reports :class:`~repro.analysis.findings.Finding`
records.  A :class:`CheckContext` carries everything the passes may consult
— block geometry, the chip topology (for route resolution), the mapper's
planned occupancy and the :class:`CheckOptions` knobs.

:func:`accesses` is the shared read/write model: every pass that reasons
about dataflow (def-use, clobbers, hazards) derives its regions from the
same function, so the passes can never disagree about what an opcode
touches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.analysis.findings import Finding
from repro.pim.chip import PimChip
from repro.pim.isa import ARITHMETIC_OPS, Instruction, Opcode

__all__ = [
    "Access",
    "CheckOptions",
    "CheckContext",
    "ProgramCheckError",
    "accesses",
    "row_mask",
    "check_program",
    "raise_on_errors",
    "all_passes",
]

RowSel = Union[Tuple[int, int], np.ndarray, Sequence[int]]


@dataclass(frozen=True)
class Access:
    """One word-region touched by an instruction.

    ``col``/``words`` span columns ``[col, col + words)``; ``rows`` is the
    instruction's row selector (tuple range or index array).  ``rows=None``
    means "the whole block" (used for the LUT block, whose served rows are
    data-dependent).
    """

    block: Optional[int]
    col: Optional[int]
    words: int
    rows: Optional[RowSel]


@dataclass(frozen=True)
class CheckOptions:
    """Pass behaviour knobs.

    assume_zero_init:
        Blocks power up zeroed in the model (``np.zeros`` storage), and
        kernels legitimately rely on that (the RK auxiliary column is first
        *read* with an implicit 0).  With the default ``True`` the dataflow
        pass therefore does not report ``DF001`` read-before-write; set it
        to ``False`` for strict def-use analysis of hand-built programs.
    check_occupancy:
        Report ``LY005`` when a block id exceeds the planned occupancy
        (``CheckContext.allowed_blocks``).
    """

    assume_zero_init: bool = True
    check_occupancy: bool = True


@dataclass
class CheckContext:
    """Everything a pass may consult about the target machine."""

    n_blocks: int
    block_rows: int
    row_words: int
    chip: Optional[PimChip] = None
    #: mapper plan: block ids must stay below this (None disables LY005).
    allowed_blocks: Optional[int] = None
    #: first storage-region row; defaults to the Fig. 5 top half.  The
    #: element layout may push it up (``max(n_nodes, block_rows // 2)``).
    storage0: Optional[int] = None
    #: spare rows the fault model's parity protection needs per block;
    #: 0 (the default) disables the FT001 fault-readiness pass.
    parity_rows: int = 0
    options: CheckOptions = field(default_factory=CheckOptions)

    @classmethod
    def for_chip(
        cls,
        chip: PimChip,
        allowed_blocks: Optional[int] = None,
        storage0: Optional[int] = None,
        parity_rows: int = 0,
        options: Optional[CheckOptions] = None,
    ) -> "CheckContext":
        cfg = chip.config
        return cls(
            n_blocks=cfg.n_blocks,
            block_rows=cfg.block_rows,
            row_words=cfg.row_words,
            chip=chip,
            allowed_blocks=allowed_blocks,
            storage0=storage0,
            parity_rows=parity_rows,
            options=options or CheckOptions(),
        )

    @property
    def storage_row0(self) -> int:
        """First row of the Fig. 5 constant/storage region (top half)."""
        return self.storage0 if self.storage0 is not None else self.block_rows // 2


class ProgramCheckError(RuntimeError):
    """Raised by the ``verify=True`` paths when error findings exist."""

    def __init__(self, findings: Sequence[Finding], what: str = "program"):
        self.findings = list(findings)
        errors = [f for f in self.findings if f.is_error]
        lines = "\n  ".join(f.format() for f in errors[:20])
        more = f"\n  ... and {len(errors) - 20} more" if len(errors) > 20 else ""
        super().__init__(
            f"static checks failed for {what}: {len(errors)} error finding"
            f"{'s' if len(errors) != 1 else ''}\n  {lines}{more}"
        )


# --------------------------------------------------------------------- #
# shared access model
# --------------------------------------------------------------------- #


def accesses(inst: Instruction) -> Tuple[List[Access], List[Access]]:
    """``(reads, writes)`` word-regions of one instruction.

    BARRIER/HOSTOP/DRAM_* touch no modelled words (DRAM traffic lands via
    explicit BROADCASTs in the kernel streams, matching the executor's
    functional semantics).
    """
    op = inst.op
    reads: List[Access] = []
    writes: List[Access] = []
    if op in ARITHMETIC_OPS:
        reads.append(Access(inst.block, inst.src1, 1, inst.rows))
        reads.append(Access(inst.block, inst.src2, 1, inst.rows))
        writes.append(Access(inst.block, inst.dst, 1, inst.rows))
    elif op is Opcode.COPY:
        reads.append(Access(inst.block, inst.src1, 1, inst.rows))
        writes.append(Access(inst.block, inst.dst, 1, inst.rows))
    elif op is Opcode.GATHER:
        rm = None if inst.row_map is None else np.asarray(inst.row_map)
        reads.append(Access(inst.block, inst.src1, 1, rm))
        writes.append(Access(inst.block, inst.dst, 1, inst.rows))
    elif op is Opcode.BROADCAST:
        writes.append(Access(inst.block, inst.dst, 1, inst.rows))
    elif op is Opcode.TRANSFER:
        src_rows = inst.src_rows if inst.src_rows is not None else inst.rows
        reads.append(Access(inst.src_block, inst.src1, inst.words, src_rows))
        writes.append(Access(inst.block, inst.dst, inst.words, inst.rows))
    elif op is Opcode.LUT:
        # requester reads the index column and writes the result column;
        # the LUT block is read at data-dependent rows (whole block).
        reads.append(Access(inst.block, inst.src1, 1, inst.rows))
        reads.append(Access(inst.src_block, None, 1, None))
        writes.append(Access(inst.block, inst.dst, 1, inst.rows))
    return reads, writes


def row_mask(rows: Optional[RowSel], block_rows: int) -> np.ndarray:
    """Boolean row mask of a selector, clipped to the block.

    Out-of-range rows are *dropped* (the layout pass reports them); the
    dataflow passes only reason about the in-range part.
    """
    mask = np.zeros(block_rows, dtype=bool)
    if rows is None:
        mask[:] = True
        return mask
    if isinstance(rows, tuple):
        r0, r1 = rows
        mask[max(int(r0), 0):max(int(r1), 0)] = True
        return mask
    idx = np.asarray(rows, dtype=np.int64).ravel()
    idx = idx[(idx >= 0) & (idx < block_rows)]
    mask[idx] = True
    return mask


# --------------------------------------------------------------------- #
# pass registry
# --------------------------------------------------------------------- #


def all_passes() -> tuple:
    """The default pass roster, in execution order.

    Structural passes run first so the dataflow passes can assume the
    stream is at least shape-legal.
    """
    from repro.analysis.dataflow import DataflowPass
    from repro.analysis.faultready import FaultReadinessPass
    from repro.analysis.hazards import HazardPass
    from repro.analysis.lowering import LoweringPass
    from repro.analysis.perf import PerfPass
    from repro.analysis.phases import PhasePass
    from repro.analysis.structural import LayoutPass, TransferPass

    return (
        LayoutPass(), TransferPass(), DataflowPass(), PhasePass(),
        HazardPass(), FaultReadinessPass(), LoweringPass(), PerfPass(),
    )


def check_program(
    program: Sequence[Instruction],
    context: Union[CheckContext, PimChip],
    passes: Optional[Sequence] = None,
) -> List[Finding]:
    """Run the checker passes over ``program``; returns all findings.

    ``context`` is a :class:`CheckContext` or a bare :class:`PimChip` (a
    default context is derived).  Findings keep pass order, then program
    order.
    """
    if isinstance(context, PimChip):
        context = CheckContext.for_chip(context)
    program = program if isinstance(program, (list, tuple)) else list(program)
    findings: List[Finding] = []
    for p in all_passes() if passes is None else passes:
        findings.extend(p.run(program, context))
    return findings


def raise_on_errors(findings: Sequence[Finding], what: str = "program") -> List[Finding]:
    """Raise :class:`ProgramCheckError` when any error finding exists.

    Returns the findings unchanged otherwise (warnings pass through).
    """
    if any(f.is_error for f in findings):
        raise ProgramCheckError(findings, what=what)
    return list(findings)
