"""Phase-discipline pass (PH*): tags and barriers vs. the Fig. 13 phases.

The PR-2 TimingReport attributes every cycle through
:func:`repro.pim.executor.tag_phase`; a tag that falls through to the
``other`` bucket silently vanishes from the per-phase breakdown, and a
barrier segment that mixes two *compute* phases (Volume / Flux /
Integration / LUT) breaks the paper's phase-serial execution model that
the per-block clocks rely on.

``PH001``
    instruction tag not covered by ``tag_phase`` (lands in ``other``).
    Reported once per distinct tag.
``PH002``
    one barrier segment contains instructions from two different compute
    phases.  Interleaving a compute phase with its own fetches is fine —
    ``flux:fetch`` prices as ``transfer`` time but shares the ``flux``
    tag prefix, so a fetch+compute flux segment is one group.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from repro.analysis.checker import CheckContext
from repro.analysis.findings import ERROR, Finding
from repro.pim.executor import tag_phase
from repro.pim.isa import Instruction, Opcode

__all__ = ["PhasePass", "compute_group"]

#: the BARRIER-serialized compute phases of one RK stage.
_COMPUTE_GROUPS = ("volume", "flux", "integration", "lut")


def compute_group(tag: str) -> Optional[str]:
    """Compute group of a tag, or None for setup/transfer/host/sync/... .

    The group is the tag *prefix* (``flux:fetch`` and ``flux:compute``
    are both ``flux``), so a phase may interleave with its own staging
    traffic without tripping PH002.
    """
    prefix = tag.split(":", 1)[0]
    if prefix in _COMPUTE_GROUPS:
        return prefix
    return "lut" if tag_phase(tag) == "lut" else None


class PhasePass:
    """Pass (d): total ``tag_phase`` coverage + barrier-delimited phases."""

    name = "phases"

    def run(self, program: Sequence[Instruction], ctx: CheckContext) -> List[Finding]:
        out: List[Finding] = []
        seen_tags: Set[str] = set()
        segment: Set[str] = set()
        flagged_segment = False
        for i, inst in enumerate(program):
            if inst.op is Opcode.BARRIER:
                segment.clear()
                flagged_segment = False
                continue
            tag = inst.tag
            if tag not in seen_tags:
                seen_tags.add(tag)
                if tag_phase(tag) == "other":
                    out.append(Finding(
                        "PH001",
                        f"tag {tag!r} is not covered by tag_phase; its cycles "
                        "land in the 'other' bucket of the Fig. 13 breakdown",
                        ERROR, index=i, block=inst.block, tag=tag,
                        passname=self.name,
                    ))
            group = compute_group(tag)
            if group is not None:
                segment.add(group)
                if len(segment) > 1 and not flagged_segment:
                    out.append(Finding(
                        "PH002",
                        "barrier segment mixes compute phases "
                        f"{sorted(segment)}; each Volume/Flux/Integration/LUT "
                        "phase must be BARRIER-delimited",
                        ERROR, index=i, block=inst.block, tag=tag,
                        passname=self.name,
                    ))
                    flagged_segment = True
        return out
