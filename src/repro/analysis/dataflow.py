"""Dataflow pass: row/column def-use analysis over one program (DF*).

The pass walks the stream in program order keeping, per ``(block,
column)``, boolean row masks of what has ever been written and what has
been written-but-not-yet-read *inside the current barrier segment*:

``DF001``
    read of a location never written anywhere in the program.  Blocks
    power up zeroed in the model and the kernels rely on it (the RK
    auxiliary column is first *read* as an implicit 0), so this is only
    reported under ``CheckOptions(assume_zero_init=False)`` — the strict
    def-use mode for hand-built programs.
``DF002``
    a store overwritten by a later non-TRANSFER store with no intervening
    read of the clobbered rows, inside one barrier segment (dead store).
    Cross-segment clobbers are idiomatic scratch reuse between phases and
    are not reported.  Warning severity: a dead store wastes cycles but
    cannot corrupt results.
``DF003``
    write into the Fig. 5 constant/storage region (top rows) from an
    instruction whose phase is not the setup/load (``dram``) phase —
    compute must never scribble over dshape rows or flux coefficients.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.analysis.checker import Access, CheckContext, accesses, row_mask
from repro.analysis.findings import ERROR, WARNING, Finding
from repro.pim.executor import tag_phase
from repro.pim.isa import Instruction, Opcode

__all__ = ["DataflowPass"]

#: key of the per-location masks: (block, column).
_Loc = Tuple[int, int]


def _cols(acc: Access) -> range:
    """Column span of one access (empty for whole-block/unknown columns)."""
    if acc.col is None:
        return range(0)
    return range(acc.col, acc.col + acc.words)


class DataflowPass:
    """Pass (a): read-before-write, dead stores, storage-region writes."""

    name = "dataflow"

    def run(self, program: Sequence[Instruction], ctx: CheckContext) -> List[Finding]:
        out: List[Finding] = []
        nrows = ctx.block_rows
        ever: Dict[_Loc, np.ndarray] = {}      # written anywhere in the program
        pending: Dict[_Loc, np.ndarray] = {}   # written, unread, this segment

        def mask_of(store: Dict[_Loc, np.ndarray], loc: _Loc) -> np.ndarray:
            m = store.get(loc)
            if m is None:
                m = store[loc] = np.zeros(nrows, dtype=bool)
            return m

        for i, inst in enumerate(program):
            if inst.op is Opcode.BARRIER:
                pending.clear()
                continue
            reads, writes = accesses(inst)
            # reads first: an instruction may read and write the same
            # column (aux = aux * a), which is not a self-clobber.
            for acc in reads:
                if acc.block is None or acc.col is None:
                    continue
                rows = row_mask(acc.rows, nrows)
                for c in _cols(acc):
                    loc = (acc.block, c)
                    if not ctx.options.assume_zero_init:
                        unwritten = rows & ~mask_of(ever, loc)
                        if unwritten.any():
                            out.append(Finding(
                                "DF001",
                                f"reads column {c} rows "
                                f"{_rows_repr(unwritten)} before any write",
                                ERROR, index=i, block=acc.block, tag=inst.tag,
                                passname=self.name,
                            ))
                    if loc in pending:
                        pending[loc][rows] = False  # consumed
            for acc in writes:
                if acc.block is None or acc.col is None:
                    continue
                rows = row_mask(acc.rows, nrows)
                if rows[ctx.storage_row0:].any() and tag_phase(inst.tag) != "dram":
                    out.append(Finding(
                        "DF003",
                        f"{inst.op.value} tagged {inst.tag!r} writes storage "
                        f"rows >= {ctx.storage_row0}",
                        ERROR, index=i, block=acc.block, tag=inst.tag,
                        passname=self.name,
                    ))
                for c in _cols(acc):
                    loc = (acc.block, c)
                    if inst.op is not Opcode.TRANSFER:  # transfers -> HZ001
                        clobbered = rows & mask_of(pending, loc)
                        if clobbered.any():
                            out.append(Finding(
                                "DF002",
                                f"overwrites column {c} rows "
                                f"{_rows_repr(clobbered)} that were written "
                                "but never read in this segment",
                                WARNING, index=i, block=acc.block, tag=inst.tag,
                                passname=self.name,
                            ))
                    mask_of(ever, loc)[rows] = True
                    mask_of(pending, loc)[rows] = True
        return out


def _rows_repr(mask: np.ndarray, limit: int = 6) -> str:
    """Compact row list for messages (``[3, 4, 5, ...]``)."""
    idx = np.flatnonzero(mask)
    head = ", ".join(str(int(r)) for r in idx[:limit])
    more = ", ..." if idx.size > limit else ""
    return f"[{head}{more}]"
