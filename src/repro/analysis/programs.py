"""Representative check programs for the paper benchmarks.

A full benchmark batch compiles to millions of instructions; checking all
of them would dwarf the costing pass itself.  The checker instead audits
the same *representative streams* the compiler prices (one interior
element plus its six mapped neighbors): every kernel generator emits
identical per-element instruction shapes, so one element's stream
exercises every opcode, address pattern, transfer route and tag the full
batch would.

:func:`build_check_program` assembles ``setup + load | volume | flux |
integration`` with BARRIERs between the phases (the same delimiting
``rk_stage`` uses), and derives the :class:`CheckContext` from the
benchmark's Table 5 plan — occupancy bound from the mapper, storage-region
boundary from the element layout.

:func:`check_benchmark` is the ``repro check`` CLI entry;
:func:`verify_benchmark` the compiler's ``verify=True`` hook (raises
:class:`~repro.analysis.checker.ProgramCheckError` on error findings).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple, Union

import numpy as np

from repro.analysis.checker import (
    CheckContext,
    CheckOptions,
    check_program,
    raise_on_errors,
)
from repro.analysis.findings import Finding
from repro.obs import get_tracer
from repro.pim.chip import PimChip
from repro.pim.isa import Instruction, barrier
from repro.pim.params import CHIP_CONFIGS, ChipConfig
from repro.workloads.benchmarks import BENCHMARKS, BenchmarkSpec

__all__ = [
    "CheckedProgram",
    "build_check_program",
    "check_benchmark",
    "verify_benchmark",
]


@dataclass
class CheckedProgram:
    """A representative instruction stream plus its machine context."""

    physics: str
    refinement_level: int
    flux_kind: str
    order: int
    plan_label: str
    program: List[Instruction]
    context: CheckContext


def _resolve_chip(chip: Union[str, ChipConfig], interconnect: Optional[str]) -> ChipConfig:
    if isinstance(chip, str):
        chip = CHIP_CONFIGS[chip]
    if interconnect is not None and chip.interconnect != interconnect:
        chip = chip.with_interconnect(interconnect)
    return chip


def _storage_row0(kern: Any) -> Optional[int]:
    """Storage-region boundary from whichever layout the kernels carry."""
    for attr in ("layout", "lay_v", "lay3"):
        lay = getattr(kern, attr, None)
        if lay is not None:
            return int(lay.storage0)
    return None


def build_check_program(
    physics: str,
    refinement_level: int,
    chip: Union[str, ChipConfig] = "2GB",
    flux_kind: str = "riemann",
    order: int = 7,
    interconnect: Optional[str] = None,
    compiler: Any = None,
    parity_rows: int = 0,
) -> CheckedProgram:
    """One BARRIER-delimited RK stage for a representative element set."""
    from repro.core.compiler import WavePimCompiler

    chip = _resolve_chip(chip, interconnect)
    compiler = compiler or WavePimCompiler(order=order)
    with get_tracer().span(
        f"check/build/{physics}_{refinement_level}", chip=chip.name,
        flux=flux_kind, interconnect=chip.interconnect,
    ):
        plan, mesh, element, _mapper, kern = compiler._prepare(
            physics, refinement_level, chip, flux_kind, order
        )
        rep, _interior, _true_interior = compiler.representative_elements(
            kern.mapper, mesh
        )
        e = int(rep[0])
        elems = {e}
        for face in range(6):
            nbr = kern.neighbor(e, face)
            if nbr is not None:
                elems.add(int(nbr))
        members = sorted(elems)

        state = np.zeros(
            (kern.n_vars, mesh.n_elements, element.n_nodes), dtype=np.float32
        )
        program: List[Instruction] = []
        program += kern.setup(elements=members)
        program += kern.load_state(state, elements=members)
        program.append(barrier())
        program += kern.volume(elements=[e])
        program.append(barrier())
        program += kern.flux(elements=[e])
        program.append(barrier())
        program += kern.integration(0, 1e-4, elements=[e])
        program.append(barrier())

        context = CheckContext.for_chip(
            PimChip(chip),
            allowed_blocks=kern.mapper.n_blocks_needed,
            storage0=_storage_row0(kern),
            parity_rows=parity_rows,
        )
    return CheckedProgram(
        physics=physics,
        refinement_level=refinement_level,
        flux_kind=flux_kind,
        order=order,
        plan_label=plan.label,
        program=program,
        context=context,
    )


def check_benchmark(
    benchmark: Union[str, BenchmarkSpec],
    chip: Union[str, ChipConfig] = "2GB",
    interconnect: Optional[str] = None,
    options: Optional[CheckOptions] = None,
    order: Optional[int] = None,
    compiler: Any = None,
    parity_rows: int = 0,
) -> Tuple[CheckedProgram, List[Finding]]:
    """Run every checker pass over one benchmark's representative stream."""
    spec = BENCHMARKS[benchmark] if isinstance(benchmark, str) else benchmark
    checked = build_check_program(
        spec.physics,
        spec.refinement_level,
        chip=chip,
        flux_kind=spec.flux_kind,
        order=spec.order if order is None else order,
        interconnect=interconnect,
        compiler=compiler,
        parity_rows=parity_rows,
    )
    if options is not None:
        checked.context.options = options
    with get_tracer().span(
        f"check/passes/{spec.key}", instructions=len(checked.program)
    ) as sp:
        findings = check_program(checked.program, checked.context)
        sp.set(findings=len(findings))
    return checked, findings


def verify_benchmark(
    physics: str,
    refinement_level: int,
    chip: Union[str, ChipConfig],
    flux_kind: str = "riemann",
    order: int = 7,
    compiler: Any = None,
) -> List[Finding]:
    """Compiler hook: check the stream, raise on any error finding."""
    checked = build_check_program(
        physics, refinement_level, chip=chip, flux_kind=flux_kind,
        order=order, compiler=compiler,
    )
    findings = check_program(checked.program, checked.context)
    name = chip if isinstance(chip, str) else chip.name
    return raise_on_errors(
        findings, what=f"{physics}_{refinement_level} on {name}"
    )
