"""Static analysis for compiled Wave-PIM programs and traces.

A pass-based checker that audits :class:`~repro.pim.isa.Instruction`
streams *before* execution — the executor prices whatever it is handed,
so a mis-scheduled batch slice, an out-of-range row, or an unroutable
TRANSFER would silently corrupt every downstream cycle/energy number.

Passes (see DESIGN.md "Static analysis" for the finding-code catalogue):

* ``dataflow``  — row/column def-use: DF001 read-before-write, DF002
  dead stores, DF003 storage-region writes outside setup/load;
* ``layout``    — LY001-LY006 addresses vs. the 1Kx1K block geometry,
  Fig. 4 LUT offsets, mapper occupancy;
* ``transfers`` — TR001-TR004 TRANSFER/LUT endpoint + route legality on
  the active H-tree/Bus interconnect;
* ``phases``    — PH001 total ``tag_phase`` coverage, PH002
  BARRIER-delimited compute phases;
* ``hazards``   — HZ001 lost slice updates in batched/expanded schedules;
* ``faultready``— FT001 parity-row budget for fault protection;
* ``lowering``  — PL001-PL004 plan/stream agreement, route freshness and
  scheduler reorder legality;
* ``perf``      — PF001-PF006 static cost bounds (work/span/occupancy),
  scheduler optimality gap, perf anti-patterns, and the
  predict-vs-measured counter cross-validation.

Entry points: :func:`check_program` (any stream), the per-benchmark
:func:`check_benchmark` / :func:`verify_benchmark`, the ``repro check``
CLI, and the ``verify=True`` modes of
:class:`~repro.pim.executor.ChipExecutor` and
:class:`~repro.core.compiler.WavePimCompiler`.
"""

from repro.analysis.checker import (
    Access,
    CheckContext,
    CheckOptions,
    ProgramCheckError,
    accesses,
    all_passes,
    check_program,
    raise_on_errors,
    row_mask,
)
from repro.analysis.findings import ERROR, FINDING_CODES, WARNING, Finding
from repro.analysis.perf import (
    CostBounds,
    PerfAudit,
    PerfOptions,
    PerfPass,
    audit_program,
    cost_bounds,
)
from repro.analysis.programs import (
    CheckedProgram,
    build_check_program,
    check_benchmark,
    verify_benchmark,
)

__all__ = [
    "Access",
    "CheckContext",
    "CheckOptions",
    "CheckedProgram",
    "CostBounds",
    "ERROR",
    "FINDING_CODES",
    "Finding",
    "PerfAudit",
    "PerfOptions",
    "PerfPass",
    "ProgramCheckError",
    "WARNING",
    "accesses",
    "all_passes",
    "audit_program",
    "build_check_program",
    "check_benchmark",
    "check_program",
    "cost_bounds",
    "raise_on_errors",
    "row_mask",
    "verify_benchmark",
]
