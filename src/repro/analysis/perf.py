"""Static performance analysis (PF*): cost bounds + anti-pattern audit.

The static half of the predict-then-measure loop (DESIGN.md §15).  From an
:class:`~repro.pim.plan.ExecutionPlan` plus the chip/interconnect model —
*without executing anything* — :func:`cost_bounds` computes:

work
    Total modeled duration over every instruction (the serial floor a
    single-resource machine could never beat).
span
    The dependency critical path over the DAG of
    :func:`repro.pim.schedule.dependency_edges`, propagated with the
    *typed* edge latencies of :func:`repro.pim.schedule.earliest_starts`
    (an edge only constrains through the clock entries its source
    publishes and its sink consults), so the bound holds for **any**
    legal instruction order.
resource occupancy
    Per-resource serial-demand lower bounds: each block's compute +
    DRAM-staging seconds, each transfer port's hold time (a source read
    port frees after ``read_t + flit_train``, a destination write port
    holds the full transfer), each switch's per-contribution occupancy
    (capped at the contributor's duration so the bound stays valid even
    though switch clocks are invisible to the executor's ``now()``), and
    the host/DRAM serial channel chains.

``makespan_lower_bound = max(span, per-resource bounds)`` and the argmax
names the **predicted binding resource** — a roofline read directly off
the program.  The scheduler optimality gap is then ``measured makespan /
lower bound``: 1.0 means provably optimal, and a gap beyond tolerance
means the schedule (not the hardware) is leaving time on the table.

Every static number is cross-validated against a measured replay with
:class:`~repro.obs.counters.HardwareCounters` (PF006): the bound must not
exceed the measured makespan, and the predicted occupancy must match the
recorded busy time within a fold-order epsilon — the analyzer and the
hardware model can never silently diverge.

:class:`PerfPass` (pass h, codes PF001–PF006) folds the bounds into the
checker roster alongside four anti-pattern audits: over-fencing BARRIERs
whose removal PL004's dependency machinery proves safe (PF002), transfers
that queue behind unrelated route traffic far longer than they transmit
(PF003), segments whose every write is overwritten before any read
(PF004), and streams whose compute mostly lands in segments too narrow to
amortize dispatch (PF005).  PF006 is the only error — a bound violation
is a broken model, not a slow program; everything else is advisory.

Surfaces: ``repro check`` (the pass runs with the roster), ``repro perf
audit`` (per-benchmark bounds/gap report, ``--strict``/``--json``) and
``repro bench`` (``makespan_lower_bound`` / ``optimality_gap`` /
``predicted_binding_resource`` fields, gap-regression gated in CI).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

from repro.analysis.checker import Access, CheckContext, accesses, row_mask
from repro.analysis.findings import ERROR, WARNING, Finding
from repro.obs.counters import HardwareCounters, default_link_label
from repro.pim.isa import Instruction, Opcode
from repro.pim.plan import ExecutionPlan, STEP_SEGMENT
from repro.pim.schedule import (
    _Sim,
    _item_durations,
    critical_path_span,
    dependency_edges,
    sim_items,
)

if TYPE_CHECKING:
    from repro.pim.executor import ChipExecutor

__all__ = [
    "CostBounds",
    "PerfAudit",
    "PerfOptions",
    "PerfPass",
    "audit_program",
    "cost_bounds",
    "emission_timings",
    "measure_plan",
]


@dataclass(frozen=True)
class PerfOptions:
    """Thresholds of the PF pass family.

    Defaults are tuned so the 12 representative benchmark programs (six
    benchmarks x two interconnects, order 7) run strict-clean with margin
    (``tests/test_perf_analysis.py`` pins that) while hand-built
    anti-pattern programs still trip each finding.
    """

    #: PF001 fires when measured makespan / lower bound exceeds this.
    gap_tolerance: float = 8.0
    #: PF003 fires when a transfer's queueing delay (ready behind its own
    #: ports, blocked on route traffic) exceeds ``queue_factor`` times its
    #: duration *and* the absolute floor.
    queue_factor: float = 16.0
    queue_floor_s: float = 1e-6
    #: PF005: a segment narrower than ``narrow_width`` instructions is
    #: "degenerate"; the finding fires when more than ``narrow_fraction``
    #: of all vectorizable instructions land in such segments.
    narrow_width: int = 4
    narrow_fraction: float = 0.5
    #: PF006 epsilons: bound-vs-measured slack and occupancy agreement
    #: (absorb float fold-order drift only, never modeling error).
    bound_rel_tol: float = 1e-9
    occupancy_rel_tol: float = 1e-9
    occupancy_abs_tol: float = 1e-15
    #: cap on findings reported per anti-pattern code (keeps reports sane
    #: on pathological streams; the message carries the total).
    max_findings_per_code: int = 8


@dataclass
class CostBounds:
    """Static lower bounds of one plan (all seconds, modeled clock)."""

    #: total modeled duration over every instruction.
    work_s: float
    #: typed-latency dependency critical path (order-independent).
    span_s: float
    #: per-resource serial-demand bounds, roofline vocabulary
    #: (``block:N``/``port_r:N``/``port_w:N``/``link:tX.sY``/``host``/``dram``).
    resource_bounds_s: Dict[str, float]
    #: ``max(span, resource bounds)`` — no legal order can beat this.
    makespan_lower_bound_s: float
    #: argmax of the bound: the resource (or ``"span"``) predicted to bind.
    predicted_binding_resource: str
    #: predicted measured occupancy per counters resource name (the PF006
    #: cross-validation payload; ``block:N`` merges compute + staging,
    #: exactly like :meth:`HardwareCounters.busy_by_resource`).
    predicted_occupancy_s: Dict[str, float] = field(default_factory=dict)
    n_instructions: int = 0
    n_edges: int = 0

    def as_dict(self, top_resources: int = 8) -> Dict[str, Any]:
        ranked = sorted(self.resource_bounds_s.items(),
                        key=lambda kv: kv[1], reverse=True)
        return {
            "work_s": self.work_s,
            "span_s": self.span_s,
            "makespan_lower_bound_s": self.makespan_lower_bound_s,
            "predicted_binding_resource": self.predicted_binding_resource,
            "resource_bounds_s": dict(ranked[:top_resources]),
            "n_instructions": self.n_instructions,
            "n_edges": self.n_edges,
        }


@dataclass
class PerfAudit:
    """One program's full predict-then-measure audit."""

    bounds: CostBounds
    measured_makespan_s: float
    #: measured / lower bound; >= 1.0 whenever the model is sound.
    optimality_gap: float
    #: the measured run's busiest resource (counters vocabulary).
    measured_binding_resource: str
    findings: List[Finding] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        return {
            **self.bounds.as_dict(),
            "measured_makespan_s": self.measured_makespan_s,
            "optimality_gap": self.optimality_gap,
            "measured_binding_resource": self.measured_binding_resource,
            "findings": [f.as_dict() for f in self.findings],
        }


# --------------------------------------------------------------------- #
# static bounds
# --------------------------------------------------------------------- #

def cost_bounds(
    ex: "ChipExecutor", plan: ExecutionPlan,
    preds: Optional[Sequence[Sequence[int]]] = None,
    link_label: Optional[Callable[[Hashable], str]] = None,
) -> CostBounds:
    """Compute every static lower bound of ``plan`` (no execution).

    Soundness sketch (each bound <= any measured makespan):

    * **span** — :func:`~repro.pim.schedule.critical_path_span` only
      propagates waits the executor enforces, and every instruction's
      completion lands on a ``now()``-visible clock.
    * **block** — compute durations fold onto the block clock serially;
      DRAM staging couples the same clock, so their sum is a floor on
      that clock's final value.
    * **ports** — a source read port holds ``read_t + flit_train`` per
      outgoing transfer and a destination write port the full duration,
      strictly serially (each hold starts at or after the previous
      release); LUT micro-sequences hold both endpoints' ports for their
      whole duration.
    * **links** — each routed contribution advances the switch clock by at
      least ``min(occupancy, duration)``, and the last contributor's
      write-port publication puts the accumulated total back under
      ``now()`` (the cap keeps this valid even though switch clocks are
      invisible to the makespan directly).
    * **host/DRAM** — single serial channels; busy time is additive.
    """
    insts = plan.instructions
    if preds is None:
        preds = dependency_edges(insts)
    items = sim_items(ex, plan)
    durs = _item_durations(items)
    label = link_label or default_link_label

    bounds: Dict[str, float] = {}
    link_occ: Dict[str, float] = {}
    stage: Dict[Any, float] = {}
    host_occ = 0.0
    dram_occ = 0.0

    def badd(name: str, v: float) -> None:
        bounds[name] = bounds.get(name, 0.0) + v

    for it, d in zip(items, durs):
        kind = it[0]
        if kind == "c":
            badd(f"block:{it[1]}", d)
        elif kind == "t":
            t = it[1]
            badd(f"port_r:{t.src}", t.read_t + t.flit_train)
            badd(f"port_w:{t.dst}", t.dur)
            occ = (t.read_t + t.wire) if t.exclusive else t.flit_train
            contrib = occ if occ < t.dur else t.dur
            for k in t.keys:
                name = label(k)
                badd(name, contrib)
                link_occ[name] = link_occ.get(name, 0.0) + occ
        elif kind == "l":
            _, _d, req, lut, keys = it
            badd(f"port_w:{req}", d)
            badd(f"port_r:{lut}", d)
            for k in keys:
                name = label(k)
                badd(name, d)
                link_occ[name] = link_occ.get(name, 0.0) + d
        elif kind == "h":
            badd("host", d)
            host_occ += d
        elif kind == "d":
            badd("dram", d)
            dram_occ += d
            if it[2] is not None:
                badd(f"block:{it[2]}", d)
                stage[it[2]] = stage.get(it[2], 0.0) + d

    span = critical_path_span(ex, plan, preds)
    best_name, best_val = "span", span
    for name in sorted(bounds):
        v = bounds[name]
        if v > best_val:
            best_name, best_val = name, v

    # predicted measured occupancy (counters vocabulary): block compute
    # busy from the plan footprint (the same left-folds replay performs),
    # merged with DRAM staging exactly as busy_by_resource merges them.
    occupancy: Dict[str, float] = {}
    fp_busy = plan.footprint()["block_busy_s"]
    for b, v in fp_busy.items():
        occupancy[f"block:{b}"] = v
    for b, v in stage.items():
        occupancy[f"block:{b}"] = occupancy.get(f"block:{b}", 0.0) + v
    occupancy.update(link_occ)
    if host_occ:
        occupancy["host"] = host_occ
    if dram_occ:
        occupancy["dram"] = dram_occ

    return CostBounds(
        work_s=float(np.sum(np.asarray(durs))) if durs else 0.0,
        span_s=span,
        resource_bounds_s=bounds,
        makespan_lower_bound_s=best_val,
        predicted_binding_resource=best_name,
        predicted_occupancy_s=occupancy,
        n_instructions=len(insts),
        n_edges=sum(len(ps) for ps in preds),
    )


def emission_timings(
    ex: "ChipExecutor", plan: ExecutionPlan
) -> Tuple[np.ndarray, np.ndarray]:
    """``(start_s, queue_s)`` per instruction under emission order.

    Walks the scheduler's executor-faithful resource model; ``queue_s`` is
    the extra wait a routed op (TRANSFER/LUT) spent blocked on its route's
    switches *after* its own ports and blocks were ready — the same
    quantity the hardware counters record as ``transfer_queue_s``.
    """
    items = sim_items(ex, plan)
    n = len(items)
    sim = _Sim()
    starts = np.zeros(n)
    queues = np.zeros(n)
    for j, it in enumerate(items):
        kind = it[0]
        ready = sim.est(it)
        if kind == "t":
            t = it[1]
            ready0 = max(
                sim._g(sim.port, ("r", t.src)),
                sim._g(sim.port, ("w", t.dst)),
                sim._g(sim.block, t.src),
                sim._g(sim.block, t.dst),
                sim.barrier,
            )
            queues[j] = ready - ready0
        elif kind == "l":
            _, _d, req, lut, _keys = it
            ready0 = max(sim.compute_start(req), sim.compute_start(lut))
            queues[j] = ready - ready0
        starts[j] = ready
        sim.commit(it)
    return starts, queues


def measure_plan(
    ex: "ChipExecutor", plan: ExecutionPlan
) -> Tuple[float, HardwareCounters]:
    """Measured makespan + hardware counters of one cold analytic replay."""
    from repro.pim.executor import ChipExecutor

    fresh = ChipExecutor(ex.chip, op_costs=ex.costs, host=ex.host, counters=True)
    report = fresh.run(plan, functional=False)
    counters = fresh.counters
    assert counters is not None
    return float(report.total_time_s), counters


# --------------------------------------------------------------------- #
# anti-pattern analyses
# --------------------------------------------------------------------- #

_Region = Tuple[Any, Optional[int], int, float, float]  # block, col, words, lo, hi


def _fence_regions(inst: Instruction) -> Tuple[List[_Region], List[_Region]]:
    """``(reads, writes)`` of one instruction as flat overlap regions.

    DRAM staging pins the whole target block (read+write), mirroring the
    executor's block-clock coupling — exactly the model
    :func:`~repro.pim.schedule.dependency_edges` uses, so "no conflict"
    here means "the DAG has no edge across the fence".
    """
    from repro.pim.schedule import _row_bounds

    reads, writes = accesses(inst)
    if inst.op in (Opcode.DRAM_LOAD, Opcode.DRAM_STORE) and inst.block is not None:
        whole = Access(inst.block, None, 1, None)
        reads = list(reads) + [whole]
        writes = list(writes) + [whole]
    def flat(accs: List[Access]) -> List[_Region]:
        out: List[_Region] = []
        for a in accs:
            if a.block is None:
                continue
            lo, hi = _row_bounds(a.rows)
            out.append((a.block, a.col, a.words, lo, hi))
        return out
    return flat(reads), flat(writes)


def _regions_overlap(a: _Region, b: _Region) -> bool:
    if a[0] != b[0]:
        return False
    # columns: None is a whole-block wildcard
    if a[1] is not None and b[1] is not None:
        if not (a[1] < b[1] + b[2] and b[1] < a[1] + a[2]):
            return False
    return a[3] < b[4] and b[3] < a[4]


def _overfencing_barriers(program: Sequence[Instruction]) -> List[int]:
    """Indices of BARRIERs no data dependency crosses (removable fences).

    A fence is load-bearing when some access before it conflicts
    (write-write, write-read or read-write on an overlapping word region)
    with some access after it, within the neighboring fence-to-fence
    regions; host-host and DRAM-DRAM pairs order themselves through their
    serial channels regardless of fences.  Leading/trailing barriers
    (an empty region on either side) are skipped — they fence nothing,
    and phase discipline (PH*) owns their style questions.
    """
    fence_idx = [i for i, inst in enumerate(program)
                 if inst.op is Opcode.BARRIER]
    out: List[int] = []
    for bi in fence_idx:
        prev_f = max((i for i in fence_idx if i < bi), default=-1)
        next_f = min((i for i in fence_idx if i > bi), default=len(program))
        before = list(range(prev_f + 1, bi))
        after = list(range(bi + 1, next_f))
        if not before or not after:
            continue
        a_reads: List[_Region] = []
        a_writes: List[_Region] = []
        for i in before:
            r, w = _fence_regions(program[i])
            a_reads.extend(r)
            a_writes.extend(w)
        conflict = False
        for j in after:
            r, w = _fence_regions(program[j])
            for reg in w:  # B writes vs A reads+writes (WAR/WAW)
                if any(_regions_overlap(reg, x) for x in a_writes) or \
                        any(_regions_overlap(reg, x) for x in a_reads):
                    conflict = True
                    break
            if conflict:
                break
            for reg in r:  # B reads vs A writes (RAW)
                if any(_regions_overlap(reg, x) for x in a_writes):
                    conflict = True
                    break
            if conflict:
                break
        if not conflict:
            out.append(bi)
    return out


def _dead_segments(
    program: Sequence[Instruction], plan: ExecutionPlan, block_rows: int
) -> List[Tuple[int, int, int]]:
    """``(segment start, segment stop, first dead write index)`` per dead segment.

    Backward row-resolution liveness: a write is dead when every row it
    writes is overwritten later with no intervening read.  Rows default to
    live (values reaching the program end are the output), whole-block
    reads (the LUT block's data-dependent rows) revive every column of the
    block, and a segment is dead when it writes at least once and every
    one of its writes is dead.
    """
    n = len(program)
    dead = [False] * n
    wrote = [False] * n
    live: Dict[Tuple[Any, int], np.ndarray] = {}

    def live_mask(block: Any, col: int) -> np.ndarray:
        m = live.get((block, col))
        if m is None:
            m = np.ones(block_rows, dtype=bool)
            live[(block, col)] = m
        return m

    for i in range(n - 1, -1, -1):
        reads, writes = accesses(program[i])
        all_dead = True
        any_write = False
        for a in writes:
            if a.block is None or a.col is None:
                continue
            any_write = True
            m = row_mask(a.rows, block_rows)
            for col in range(a.col, a.col + a.words):
                lm = live_mask(a.block, col)
                if bool(np.any(m & lm)):
                    all_dead = False
                lm &= ~m
        wrote[i] = any_write
        dead[i] = any_write and all_dead
        for a in reads:
            if a.block is None:
                continue
            m = row_mask(a.rows, block_rows)
            if a.col is None:
                # whole-block read: revive every column seen so far and
                # note that untouched columns are default-live anyway.
                for (blk, _col), lm in live.items():
                    if blk == a.block:
                        lm |= m
                continue
            for col in range(a.col, a.col + a.words):
                live_mask(a.block, col)[...] |= m

    out: List[Tuple[int, int, int]] = []
    for kind, payload in plan.steps:
        if kind != STEP_SEGMENT:
            continue
        idxs = [i for i in range(payload.start, payload.stop) if wrote[i]]
        if idxs and all(dead[i] for i in idxs):
            out.append((payload.start, payload.stop, idxs[0]))
    return out


# --------------------------------------------------------------------- #
# the audit
# --------------------------------------------------------------------- #

def audit_program(
    program: Sequence[Instruction],
    ex: "ChipExecutor",
    options: Optional[PerfOptions] = None,
    block_rows: Optional[int] = None,
    passname: str = "perf",
) -> PerfAudit:
    """Full predict-then-measure audit of one instruction stream.

    Lowers (or reuses the executor's lowering of) ``program``, computes
    the static bounds, replays once with hardware counters and emits the
    PF001–PF006 findings.  The caller owns lowering failures — this
    function assumes a lowerable stream.
    """
    opts = options or PerfOptions()
    program = program if isinstance(program, (list, tuple)) else list(program)
    plan = ex.lower(program)
    preds = dependency_edges(plan.instructions)
    bounds = cost_bounds(ex, plan, preds)
    measured_s, counters = measure_plan(ex, plan)
    gap = (measured_s / bounds.makespan_lower_bound_s
           if bounds.makespan_lower_bound_s > 0.0 else 1.0)
    busy = counters.busy_by_resource()
    measured_binding = max(busy, key=lambda r: (busy[r], r)) if busy else "idle"

    findings: List[Finding] = []

    def add(code: str, msg: str, severity: str = WARNING,
            index: Optional[int] = None, block: Optional[int] = None,
            tag: str = "") -> None:
        findings.append(Finding(code, msg, severity, index=index,
                                block=block, tag=tag, passname=passname))

    # PF006 — the model-soundness contract, checked on every audit.
    slack = opts.bound_rel_tol * max(abs(measured_s), 1e-30)
    if bounds.makespan_lower_bound_s > measured_s + slack:
        add("PF006",
            f"static lower bound {bounds.makespan_lower_bound_s:.6e}s "
            f"({bounds.predicted_binding_resource}) exceeds the measured "
            f"makespan {measured_s:.6e}s — the bound is unsound",
            severity=ERROR)
    occ_mismatches = counters.compare_occupancy(
        bounds.predicted_occupancy_s,
        rel_tol=opts.occupancy_rel_tol,
        abs_tol=opts.occupancy_abs_tol,
    )
    for msg in occ_mismatches[:opts.max_findings_per_code]:
        add("PF006", f"occupancy prediction diverged: {msg}", severity=ERROR)
    if len(occ_mismatches) > opts.max_findings_per_code:
        add("PF006",
            f"... and {len(occ_mismatches) - opts.max_findings_per_code} "
            f"more occupancy divergences", severity=ERROR)

    # PF001 — optimality gap.
    if gap > opts.gap_tolerance:
        add("PF001",
            f"measured makespan {measured_s:.6e}s is {gap:.2f}x the static "
            f"lower bound {bounds.makespan_lower_bound_s:.6e}s (tolerance "
            f"{opts.gap_tolerance:.2f}x; predicted binding resource "
            f"{bounds.predicted_binding_resource}) — the schedule leaves "
            f"most of the hardware idle")

    # PF002 — removable over-fencing barriers.
    removable = _overfencing_barriers(program)
    for bi in removable[:opts.max_findings_per_code]:
        add("PF002",
            "no data dependency crosses this BARRIER (both neighboring "
            "regions touch disjoint data); removing it lets the regions "
            "overlap", index=bi, tag=program[bi].tag)
    if len(removable) > opts.max_findings_per_code:
        add("PF002",
            f"... and {len(removable) - opts.max_findings_per_code} more "
            f"removable barriers")

    # PF003 — transfers serialized behind unrelated route traffic.
    items = sim_items(ex, plan)
    durs = _item_durations(items)
    _starts, queues = emission_timings(ex, plan)
    hits: List[int] = []
    for j, it in enumerate(items):
        if it[0] != "t":
            continue
        q = float(queues[j])
        if q > max(opts.queue_factor * durs[j], opts.queue_floor_s):
            hits.append(j)
    for j in hits[:opts.max_findings_per_code]:
        inst = program[j]
        add("PF003",
            f"transfer queues {float(queues[j]):.3e}s behind unrelated "
            f"traffic on its route — {float(queues[j]) / durs[j]:.0f}x its "
            f"own {durs[j]:.3e}s duration; reroute or reorder to overlap",
            index=j, block=inst.block, tag=inst.tag)
    if len(hits) > opts.max_findings_per_code:
        add("PF003",
            f"... and {len(hits) - opts.max_findings_per_code} more "
            f"serialized transfers")

    # PF004 — dead segments.
    rows = block_rows if block_rows is not None else ex.chip.config.block_rows
    for start, stop, first in _dead_segments(
            program, plan, rows)[:opts.max_findings_per_code]:
        inst = program[first]
        add("PF004",
            f"segment [{start}, {stop}) computes only values overwritten "
            f"before any read (first dead write at instruction {first})",
            index=first, block=inst.block, tag=inst.tag)

    # PF005 — degenerate vectorization.
    widths: List[int] = plan.footprint()["segment_widths"]
    total = sum(widths)
    narrow = sum(w for w in widths if w < opts.narrow_width)
    if total and narrow / total > opts.narrow_fraction:
        add("PF005",
            f"{narrow} of {total} vectorizable instructions "
            f"({narrow / total:.0%}) sit in segments narrower than "
            f"{opts.narrow_width} — per-segment dispatch overhead dominates; "
            f"hoist coupling ops (TRANSFER/BARRIER/LUT) out of inner loops")

    return PerfAudit(
        bounds=bounds,
        measured_makespan_s=measured_s,
        optimality_gap=gap,
        measured_binding_resource=measured_binding,
        findings=findings,
    )


class PerfPass:
    """Pass (h): static cost bounds, optimality gap, perf anti-patterns."""

    name = "perf"

    def __init__(self, options: Optional[PerfOptions] = None) -> None:
        self.options = options or PerfOptions()

    def run(self, program: Sequence[Instruction],
            ctx: CheckContext) -> List[Finding]:
        chip = ctx.chip
        if chip is None:
            return []  # no cost model to bound against
        program = program if isinstance(program, (list, tuple)) else list(program)
        try:
            from repro.pim.executor import ChipExecutor

            ex = ChipExecutor(chip)
            audit = audit_program(
                program, ex, options=self.options,
                block_rows=ctx.block_rows, passname=self.name,
            )
        except (ValueError, IndexError):
            # shape/legality defects — the structural passes own those.
            return []
        except Exception:
            # a stream the lowerer rejects outright: PL001 reports it.
            return []
        return audit.findings
