"""Batching/expansion hazard pass (HZ*): lost updates in sliced schedules.

The Fig. 7 sliced-Flux schedule and the Figs. 8/9 four-block expansion
both stage remote data with TRANSFERs into per-block buffer columns.  If
a later slice's TRANSFER overwrites an earlier slice's *entire* payload
before any instruction has read a single word of it, the earlier fetch
was pure lost traffic — the executor prices both transfers but the
functional model only ever sees the second, so the schedule is broken.

Partial clobbers are deliberately tolerated: the kernels over-fetch on
purpose (one row-buffer TRANSFER moves all four/nine variable words even
when a face only consumes two), and faces sharing edge rows legitimately
overwrite each other's *unused* words.  Only a transfer whose payload is
completely overwritten while completely unread is a hazard.

``HZ001``
    a TRANSFER (within one barrier segment) finishes overwriting the
    full payload of an earlier TRANSFER that nothing ever read.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.analysis.checker import CheckContext, accesses, row_mask
from repro.analysis.findings import ERROR, Finding
from repro.pim.isa import Instruction, Opcode

__all__ = ["HazardPass"]


@dataclass
class _TransferRecord:
    """One in-flight transfer payload inside the current segment."""

    index: int
    tag: str
    block: int
    #: column -> rows still holding this transfer's (unclobbered) data.
    remaining: Dict[int, np.ndarray] = field(default_factory=dict)
    consumed: bool = False  # any word of the payload was read
    reported: bool = False

    def live_rows(self) -> int:
        return int(sum(m.sum() for m in self.remaining.values()))


class HazardPass:
    """Pass (e): overlapping slice writes in batched/expanded schedules."""

    name = "hazards"

    def run(self, program: Sequence[Instruction], ctx: CheckContext) -> List[Finding]:
        out: List[Finding] = []
        nrows = ctx.block_rows
        active: List[_TransferRecord] = []

        for i, inst in enumerate(program):
            if inst.op is Opcode.BARRIER:
                active.clear()
                continue
            reads, writes = accesses(inst)
            for acc in reads:
                if acc.block is None or acc.col is None:
                    continue
                rows = row_mask(acc.rows, nrows)
                for rec in active:
                    if rec.consumed or rec.block != acc.block:
                        continue
                    for c in range(acc.col, acc.col + acc.words):
                        m = rec.remaining.get(c)
                        if m is not None and (m & rows).any():
                            rec.consumed = True
                            break
            for acc in writes:
                if acc.block is None or acc.col is None:
                    continue
                rows = row_mask(acc.rows, nrows)
                for rec in active:
                    if rec.reported or rec.block != acc.block:
                        continue
                    for c in range(acc.col, acc.col + acc.words):
                        m = rec.remaining.get(c)
                        if m is not None:
                            m &= ~rows
                    if (inst.op is Opcode.TRANSFER and not rec.consumed
                            and rec.live_rows() == 0):
                        rec.reported = True
                        out.append(Finding(
                            "HZ001",
                            f"transfer overwrites the entire unread payload "
                            f"of the transfer at instruction {rec.index} "
                            f"(tag {rec.tag!r}) — lost slice update",
                            ERROR, index=i, block=acc.block, tag=inst.tag,
                            passname=self.name,
                        ))
                if inst.op is Opcode.TRANSFER:
                    active.append(_TransferRecord(
                        index=i, tag=inst.tag, block=acc.block,
                        remaining={
                            c: rows.copy()
                            for c in range(acc.col, acc.col + acc.words)
                        },
                    ))
        return out
