"""Finding model of the static program checker.

Every checker pass reports :class:`Finding` records identified by a short
stable *code* (``DF001``, ``LY003``, ...).  Codes are the contract between
the passes, the tests (which assert exact codes for known-bad programs),
the ``repro check`` CLI (whose JSON report serializes them) and DESIGN.md's
"Static analysis" section.  Add new codes to :data:`FINDING_CODES`; never
recycle a code for a different defect class.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Optional

__all__ = ["ERROR", "WARNING", "FINDING_CODES", "Finding"]

#: severity levels — errors corrupt downstream cycle/energy numbers,
#: warnings flag suspicious-but-survivable constructs.
ERROR = "error"
WARNING = "warning"

#: The finding-code catalogue (code -> one-line description).
FINDING_CODES: Dict[str, str] = {
    # dataflow (pass a)
    "DF001": "read of a never-written location (reported with assume_zero_init=False)",
    "DF002": "store clobbered by a later store with no intervening read",
    "DF003": "write into the constant/storage region (top rows) outside setup/load",
    # layout / capacity (pass b)
    "LY001": "row selection outside the 1Kx1K block",
    "LY002": "column selection outside the row's 32 words",
    "LY003": "LUT word offset does not fit the 5-bit Fig. 4 field",
    "LY004": "block id outside the chip (or missing where required)",
    "LY005": "block id beyond the mapper's planned occupancy",
    "LY006": "BROADCAST value shape does not match the row selection",
    # transfer legality (pass c)
    "TR001": "TRANSFER without a source block",
    "TR002": "TRANSFER endpoint outside the chip topology",
    "TR003": "TRANSFER route does not resolve on the active interconnect",
    "TR004": "TRANSFER source/destination row counts differ",
    # phase discipline (pass d)
    "PH001": "instruction tag not covered by tag_phase (cycles land in 'other')",
    "PH002": "barrier segment mixes two compute phases (Volume/Flux/Integration/LUT)",
    # batching / expansion hazards (pass e)
    "HZ001": "transfer write overlaps an unconsumed earlier write (lost update)",
    # fault readiness (pass f)
    "FT001": "layout leaves no spare rows for parity; fault protection cannot "
             "place its check rows",
    # lowering audit (pass g)
    "PL001": "lowered execution plan diverges from the instruction stream "
             "(instruction count, opcode, or vectorization coverage mismatch)",
    "PL002": "lowered TRANSFER route disagrees with the chip's current "
             "topology (stale or mis-resolved path)",
    "PL003": "lowered plan was built under a different routing epoch than "
             "the chip's current one (stale-route hazard)",
    "PL004": "scheduler reordering violates the dependency DAG (illegal "
             "permutation of the instruction stream)",
    "PL005": "halo coverage broken in a multi-chip sharding: an element "
             "owned by zero/multiple shards, a consumed cross-shard face "
             "missing from the halo (lost halo rows), or an exchange set "
             "that does not deliver each ghost element exactly once",
    # static performance analysis (pass h)
    "PF001": "scheduler optimality gap exceeds tolerance (measured makespan "
             "far above the static work/span/resource lower bound)",
    "PF002": "removable over-fencing BARRIER: no data dependency crosses the "
             "fence, so it only serializes independent work",
    "PF003": "TRANSFER serializes behind unrelated traffic (resource queueing "
             "delay far exceeds its own duration; reroute or reorder to overlap)",
    "PF004": "dead segment: every value the segment writes is overwritten "
             "before any read (compute contributes nothing to the result)",
    "PF005": "degenerate vectorization: most compute lands in segments below "
             "the width threshold, paying per-segment dispatch overhead",
    "PF006": "static cost bound disagrees with measured hardware counters "
             "(bound exceeds the measured makespan, or predicted occupancy "
             "diverges beyond epsilon — analyzer and hardware model diverged)",
    # repo-invariant lint (scripts/lint_repo.py; reported there, registered
    # here so the RL namespace shares the one catalogue and RL006 can vet
    # every emitted code against it)
    "RL001": "Instruction() constructed outside pim/isa.py and core/kernels/",
    "RL002": ".span(...) used outside a `with` context manager",
    "RL003": "module-level repro.analysis import outside the analysis package",
    "RL004": "per-instruction Python dispatch loop outside the executor/"
             "lowering/analysis layers",
    "RL005": "._dispatch referenced outside pim/executor.py",
    "RL006": "finding code emitted in analysis/ but not registered in "
             "FINDING_CODES",
    "RL007": "broad `except Exception:`/bare `except:` that silently "
             "swallows (body is only pass/...) — log via repro.obs or "
             "re-raise",
    "RL008": "ExecutionPlan replay internals (._run_plan) referenced "
             "outside ChipExecutor/ShardedExecutor",
}


@dataclass(frozen=True)
class Finding:
    """One defect reported by a checker pass."""

    code: str
    message: str
    severity: str = ERROR
    #: index of the offending instruction in the checked program (None for
    #: program-level findings).
    index: Optional[int] = None
    block: Optional[int] = None
    tag: str = ""
    passname: str = ""

    def __post_init__(self) -> None:
        if self.code not in FINDING_CODES:
            raise ValueError(f"unknown finding code {self.code!r}")
        if self.severity not in (ERROR, WARNING):
            raise ValueError(f"severity must be error|warning, got {self.severity!r}")

    @property
    def is_error(self) -> bool:
        return self.severity == ERROR

    def format(self) -> str:
        """``CODE [severity] @inst/block: message`` one-liner."""
        where = []
        if self.index is not None:
            where.append(f"inst {self.index}")
        if self.block is not None:
            where.append(f"block {self.block}")
        loc = f" ({', '.join(where)})" if where else ""
        return f"{self.code} [{self.severity}]{loc}: {self.message}"

    def as_dict(self) -> Dict[str, Any]:
        return asdict(self)
