"""Structural passes: layout/capacity (LY*) and TRANSFER legality (TR*).

Layout checks pin every address to the Fig. 3/Fig. 5 geometry — rows inside
the 1Kx1K block, columns inside the 32-word row, LUT offsets inside the
5-bit Fig. 4 fields, block ids inside the chip and inside the mapper's
planned occupancy.  Transfer checks prove each TRANSFER names a real
source, moves equal row counts, and resolves a route on the active
H-tree/Bus interconnect (including the cross-tile controller hop).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.analysis.checker import CheckContext, RowSel, accesses
from repro.analysis.findings import ERROR, Finding
from repro.pim.isa import Instruction, LutInstructionFormat, Opcode

__all__ = ["LayoutPass", "TransferPass"]

#: opcodes that must name a target block.
_NEEDS_BLOCK = {
    Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.GATHER, Opcode.BROADCAST,
    Opcode.COPY, Opcode.TRANSFER, Opcode.LUT,
}

_LUT_OFFSET_MAX = 1 << LutInstructionFormat.OFFSET_BITS


def _rows_bounds(rows: Optional[RowSel], block_rows: int) -> Optional[str]:
    """Error text when a row selector leaves the block, else None."""
    if rows is None:
        return None
    if isinstance(rows, tuple):
        r0, r1 = rows
        if not (0 <= r0 <= r1 <= block_rows):
            return f"row range {rows} outside block of {block_rows} rows"
        return None
    idx = np.asarray(rows)
    if idx.size and (int(idx.min()) < 0 or int(idx.max()) >= block_rows):
        return (
            f"row indices [{int(idx.min())}, {int(idx.max())}] outside "
            f"block of {block_rows} rows"
        )
    return None


class LayoutPass:
    """Pass (b): addresses vs. the block geometry and the mapper's plan."""

    name = "layout"

    def run(self, program: Sequence[Instruction], ctx: CheckContext) -> List[Finding]:
        out: List[Finding] = []

        def add(code: str, msg: str, i: int, inst: Instruction) -> None:
            out.append(Finding(code, msg, ERROR, index=i, block=inst.block,
                               tag=inst.tag, passname=self.name))

        for i, inst in enumerate(program):
            op = inst.op
            # -- block ids --------------------------------------------- #
            blocks = [inst.block]
            if op in (Opcode.TRANSFER, Opcode.LUT):
                blocks.append(inst.src_block)
            for b in blocks:
                if b is None:
                    if op in _NEEDS_BLOCK and b is inst.block:
                        add("LY004", f"{op.value} requires a block id", i, inst)
                    continue
                if not 0 <= b < ctx.n_blocks:
                    add("LY004", f"block {b} outside chip of {ctx.n_blocks} blocks",
                        i, inst)
                elif (ctx.options.check_occupancy and ctx.allowed_blocks is not None
                        and b >= ctx.allowed_blocks):
                    add("LY005",
                        f"block {b} beyond the mapper's planned occupancy of "
                        f"{ctx.allowed_blocks} blocks", i, inst)
            # -- rows --------------------------------------------------- #
            reads, writes = accesses(inst)
            for acc in (*reads, *writes):
                err = _rows_bounds(acc.rows, ctx.block_rows)
                if err is not None:
                    add("LY001", err, i, inst)
            # -- columns ------------------------------------------------ #
            for acc in (*reads, *writes):
                if acc.col is None:
                    continue
                if not (0 <= acc.col and acc.col + acc.words <= ctx.row_words):
                    add("LY002",
                        f"columns [{acc.col}, {acc.col + acc.words}) outside "
                        f"row of {ctx.row_words} words", i, inst)
            # -- LUT 5-bit offsets (Fig. 4) ----------------------------- #
            if op is Opcode.LUT:
                for fname, off in (("offset_s", inst.src1), ("offset_d", inst.dst)):
                    if off is None or not 0 <= off < _LUT_OFFSET_MAX:
                        add("LY003",
                            f"LUT {fname}={off} does not fit the "
                            f"{LutInstructionFormat.OFFSET_BITS}-bit Fig. 4 field",
                            i, inst)
            # -- BROADCAST value shape ---------------------------------- #
            if op is Opcode.BROADCAST and inst.value is not None:
                value = np.asarray(inst.value)
                if value.ndim == 1 and value.shape[0] != inst.n_rows:
                    add("LY006",
                        f"broadcast vector of {value.shape[0]} entries into "
                        f"{inst.n_rows} rows", i, inst)
        return out


class TransferPass:
    """Pass (c): every TRANSFER is well-formed and routable."""

    name = "transfers"

    def run(self, program: Sequence[Instruction], ctx: CheckContext) -> List[Finding]:
        out: List[Finding] = []

        def add(code: str, msg: str, i: int, inst: Instruction) -> None:
            out.append(Finding(code, msg, ERROR, index=i, block=inst.block,
                               tag=inst.tag, passname=self.name))

        for i, inst in enumerate(program):
            if inst.op not in (Opcode.TRANSFER, Opcode.LUT):
                continue
            src, dst = inst.src_block, inst.block
            if src is None:
                add("TR001", f"{inst.op.value} without a source block", i, inst)
                continue
            in_range = all(b is not None and 0 <= b < ctx.n_blocks for b in (src, dst))
            if not in_range:
                add("TR002",
                    f"endpoints {src}->{dst} outside chip of {ctx.n_blocks} blocks",
                    i, inst)
            elif ctx.chip is not None:
                # the topology is static: a resolvable route is a pure
                # function of (src, dst) on this chip model.
                try:
                    ctx.chip.transfer_path(src, dst)
                except Exception as exc:  # noqa: BLE001 - any failure = unroutable
                    add("TR003",
                        f"route {src}->{dst} does not resolve on the "
                        f"{ctx.chip.config.interconnect} interconnect: {exc}", i, inst)
            if inst.op is Opcode.TRANSFER:
                src_rows = inst.src_rows if inst.src_rows is not None else inst.rows
                n_src = (max(0, src_rows[1] - src_rows[0])
                         if isinstance(src_rows, tuple) else len(np.asarray(src_rows)))
                if n_src != inst.n_rows:
                    add("TR004",
                        f"source selects {n_src} rows but destination {inst.n_rows}",
                        i, inst)
        return out
