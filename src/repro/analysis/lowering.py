"""Lowering audit pass (PL*): the execution plan agrees with its stream.

The plan engine (:mod:`repro.pim.plan`) promises that lowering is a pure
re-encoding: one plan row per instruction, the same opcodes, and TRANSFER
routes that match what the chip's topology resolves *today*.  This pass
re-lowers the checked program against the context's chip and audits those
invariants, so ``repro check`` exercises the exact lowered form every
benchmark replays — a plan that drifted from its stream (or carries routes
from a pre-remap epoch) is a silent corruption of every downstream cycle
count, which is precisely the class of defect the static checker exists
to catch before execution.

PL004 extends the audit to reordering: the makespan scheduler
(:mod:`repro.pim.schedule`) may permute the stream, and this pass proves
the permutation it would produce respects every data dependency —
RAW/WAW/WAR word-region edges, host/DRAM channel chains, and BARRIER
fences.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.analysis.checker import CheckContext
from repro.analysis.findings import ERROR, Finding
from repro.pim.isa import Instruction, Opcode
from repro.pim.plan import OP_IDS, STEP_TRANSFER, lower_program

__all__ = ["LoweringPass"]


class LoweringPass:
    """Pass (g): lower the stream and prove the plan mirrors it."""

    name = "lowering"

    def run(self, program: Sequence[Instruction], ctx: CheckContext) -> List[Finding]:
        chip = ctx.chip
        if chip is None:
            return []  # no topology to lower against
        out: List[Finding] = []

        def add(code: str, msg: str, index=None, block=None, tag="") -> None:
            out.append(Finding(code, msg, ERROR, index=index, block=block,
                               tag=tag, passname=self.name))

        program = program if isinstance(program, (list, tuple)) else list(program)
        try:
            from repro.pim.executor import ChipExecutor

            plan = ChipExecutor(chip).lower(program)
        except (ValueError, IndexError):
            # shape/legality defects — the structural passes own those
            # (TR001/TR002/LY004...); a second report here would be noise.
            return out
        except Exception as exc:  # a stream the lowerer rejects outright
            add("PL001", f"lowering failed: {exc}")
            return out

        if plan.n_instructions != len(program):
            add("PL001",
                f"plan has {plan.n_instructions} rows for a stream of "
                f"{len(program)} instructions")
            return out
        if plan.routing_epoch != chip.routing_epoch:
            add("PL003",
                f"plan lowered under routing epoch {plan.routing_epoch}, "
                f"chip is at {chip.routing_epoch}")

        # one row per instruction with the matching opcode; every step the
        # replay engine walks must be accounted for exactly once.
        ops = plan.array["op"]
        for i, inst in enumerate(program):
            if int(ops[i]) != OP_IDS[inst.op]:
                add("PL001",
                    f"plan row {i} encodes opcode id {int(ops[i])}, stream "
                    f"has {inst.op.value}", index=i, block=inst.block,
                    tag=inst.tag)
        covered = plan.n_dispatch + plan.n_transfers + sum(
            payload.n for kind, payload in plan.steps if kind == 0
        )
        if covered != len(program):
            add("PL001",
                f"plan steps cover {covered} of {len(program)} instructions")

        # every lowered TRANSFER route must match a fresh resolution on the
        # chip's current topology (hops, flit count, switch keys).
        transfer_steps = [p for k, p in plan.steps if k == STEP_TRANSFER]
        ti = iter(transfer_steps)
        for i, inst in enumerate(program):
            if inst.op is not Opcode.TRANSFER:
                continue
            step = next(ti, None)
            if step is None:
                add("PL001", "plan has fewer TRANSFER steps than the stream",
                    index=i, block=inst.block, tag=inst.tag)
                break
            try:
                keys, hops, _extra, ic = chip.transfer_path(
                    inst.src_block, inst.block
                )
            except Exception as exc:
                add("PL002", f"route {inst.src_block}->{inst.block} no longer "
                    f"resolves: {exc}", index=i, block=inst.block, tag=inst.tag)
                continue
            flits = -(-(inst.n_rows * inst.words) // ic.flit_words)
            if (step.src, step.dst) != (inst.src_block, inst.block):
                add("PL002",
                    f"plan transfer routes {step.src}->{step.dst}, stream "
                    f"says {inst.src_block}->{inst.block}",
                    index=i, block=inst.block, tag=inst.tag)
            elif step.keys != tuple(keys) or step.hops != hops or step.flits != flits:
                add("PL002",
                    f"route {inst.src_block}->{inst.block}: plan has "
                    f"{step.hops} hops/{step.flits} flits over {len(step.keys)} "
                    f"switches, topology resolves {hops} hops/{flits} flits "
                    f"over {len(keys)}",
                    index=i, block=inst.block, tag=inst.tag)

        # PL004: reorder legality — the makespan scheduler's permutation of
        # this stream must respect every RAW/WAW/WAR edge, the host/DRAM
        # chains and each BARRIER fence (repro.pim.schedule recomputes the
        # DAG and re-runs the list scheduler here, so the audit covers the
        # exact order a `--schedule` run would replay).
        try:
            from repro.pim.schedule import audit_reorder

            for msg in audit_reorder(program, plan, chip):
                add("PL004", f"scheduler reordering is illegal: {msg}")
        except Exception as exc:
            add("PL004", f"reorder-legality audit failed: {exc}")
        return out
