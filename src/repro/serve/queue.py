"""Crash-safe job store for the wave-sim service.

The store is a bounded in-memory index over an append-only JSONL
*journal* — the single source of truth for every job's lifecycle.  Each
state transition appends one fsynced record, so a SIGKILLed service
loses at most the record being written; replay tolerates exactly one
torn trailing line (the crash artifact), never silent mid-file damage,
and reopening for append first truncates such a torn tail so the next
record can never merge into it.  Snapshot-style writes
(per-job result files, compaction) use the temp-write + fsync + rename
discipline of :mod:`repro.faults.checkpoint`.

Invariants the store enforces:

* **idempotent submission** — a job's id is a content hash of
  ``(kind, params)``; resubmitting the same request returns the existing
  job instead of duplicating work.
* **zero lost / zero duplicated** — recovery turns ``running`` jobs
  (their worker died with the service) back into ``pending`` with the
  attempt count preserved; ``done``/``quarantined`` jobs are terminal
  and are never re-dispatched.
* **bounded queue** — submissions beyond ``max_pending`` live jobs
  raise :class:`QueueFull` (explicit backpressure) instead of growing
  the journal without bound or deadlocking a full pipeline.
* **deterministic retries** — :func:`backoff_delay` derives the
  exponential-backoff jitter from ``(seed, job_id, attempt)`` only, so
  a re-run campaign schedules byte-identical retry delays.

The normalized :func:`journal_digest` hashes only the deterministic
fields of the lifecycle (never wall-clock timestamps, worker pids or
traceback text), which is what lets two runs of the same seeded
workload — even under injected crashes — be compared byte-for-byte.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

__all__ = [
    "DONE",
    "FAILED",
    "PENDING",
    "QUARANTINED",
    "RUNNING",
    "JOB_KINDS",
    "TERMINAL_STATES",
    "Job",
    "JobStore",
    "Journal",
    "QueueFull",
    "UnknownJob",
    "backoff_delay",
    "compute_job_id",
    "journal_digest",
]

# -- job model --------------------------------------------------------- #

PENDING = "pending"
RUNNING = "running"
FAILED = "failed"  # transient: awaiting its scheduled retry
DONE = "done"
QUARANTINED = "quarantined"

TERMINAL_STATES = (DONE, QUARANTINED)

#: job kinds the worker knows how to execute.  The ``_test_*`` kinds are
#: deterministic self-test payloads used by the chaos harness and tests.
JOB_KINDS = ("simulate", "experiment", "sweep", "_test_flaky", "_test_sleep")


class QueueFull(RuntimeError):
    """Backpressure: the bounded job store refuses new submissions."""


class UnknownJob(KeyError):
    """A job id that does not exist in the store."""


def compute_job_id(kind: str, params: dict) -> str:
    """Content-keyed job id: same request -> same id (idempotent submits)."""
    blob = json.dumps({"kind": kind, "params": params}, sort_keys=True,
                      separators=(",", ":")).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def backoff_delay(seed: int, job_id: str, attempt: int,
                  base: float = 0.05, cap: float = 2.0) -> float:
    """Seeded exponential backoff with deterministic jitter.

    Pure in ``(seed, job_id, attempt)``: the delay before retry
    ``attempt`` (1-based) is ``min(cap, base * 2**(attempt-1))`` scaled
    by a jitter in ``[0.5, 1.0)`` drawn from a keyed substream, so
    campaigns replay identical schedules while unrelated jobs still
    decorrelate.
    """
    if attempt < 1:
        raise ValueError(f"attempt must be >= 1, got {attempt}")
    rng = random.Random(f"{seed}:{job_id}:{attempt}")
    return min(cap, base * (2.0 ** (attempt - 1))) * (0.5 + 0.5 * rng.random())


@dataclass
class Job:
    """One unit of work and its full lifecycle state."""

    id: str
    kind: str
    params: dict
    max_retries: int = 3
    deadline_s: float = 60.0
    status: str = PENDING
    #: attempts *started* so far (the running attempt counts).
    attempt: int = 0
    result: Optional[dict] = None
    error: Optional[str] = None
    #: wall-clock time before which a failed job may not be retried.
    not_before: float = 0.0
    #: submission order (dispatch is FIFO over ready jobs).
    seq: int = 0

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATES


# -- journal ----------------------------------------------------------- #

#: event fields that survive into the normalized digest.  Everything
#: else (timestamps, pids, worker ids, tracebacks, durations) is
#: nondeterministic across runs and must stay out of it.
_DIGEST_FIELDS = ("event", "job", "attempt", "kind", "status", "reason",
                  "retry_delay_s", "result_digest", "max_retries")

#: events excluded from the digest entirely: they describe *this
#: process's* lifecycle (recovery after a service kill), not the jobs'.
_DIGEST_SKIP_EVENTS = ("recovered", "service_start")


class Journal:
    """Append-only fsynced JSONL event log (crash-safe, torn-tail tolerant).

    Opening for append first *repairs* the tail: a SIGKILL mid-append can
    leave a torn final line, and appending onto it would merge two
    records into one mid-file garbage line — unreadable forever, since
    :meth:`load` only tolerates damage on the *last* line.  The repair
    truncates a torn tail (matching what ``load`` would have dropped) or
    newline-terminates a record that made it to disk whole but lost only
    its terminator, so every append starts on a fresh line.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        dropped = self._repair_tail(self.path)
        if dropped:
            from repro.obs import get_logger
            get_logger(__name__).warning(
                "journal %s: dropped %d-byte torn tail (crash artifact) "
                "before reopening for append", self.path, dropped)
        self._fh = open(self.path, "a", encoding="utf-8")

    @staticmethod
    def _repair_tail(path: Path) -> int:
        """Make the journal end on a clean record boundary; returns bytes dropped.

        * last line torn (invalid JSON) -> truncate it, whether or not the
          crash left a trailing newline;
        * last record complete but missing only its ``\\n`` -> terminate it
          (its data fully reached disk; dropping it would lose an event).
        """
        if not path.exists():
            return 0
        with open(path, "rb+") as fh:
            data = fh.read()
            if not data:
                return 0

            def _valid(chunk: bytes) -> bool:
                try:
                    json.loads(chunk.decode("utf-8"))
                    return True
                except (ValueError, UnicodeDecodeError):
                    return False

            if data.endswith(b"\n"):
                start = data.rfind(b"\n", 0, len(data) - 1) + 1
                last = data[start:].strip()
                if not last or _valid(last):
                    return 0
            else:
                start = data.rfind(b"\n") + 1
                if _valid(data[start:]):
                    fh.write(b"\n")
                    fh.flush()
                    os.fsync(fh.fileno())
                    return 0
            fh.truncate(start)
            fh.flush()
            os.fsync(fh.fileno())
            return len(data) - start

    def append(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        self._fh.write(line + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        try:
            self._fh.close()
        except OSError as exc:  # pragma: no cover - close on a dead fd
            from repro.obs import get_logger
            get_logger(__name__).warning("journal close failed: %s", exc)

    @staticmethod
    def load(path: Union[str, Path]) -> List[dict]:
        """Replay a journal; tolerates one torn trailing line (crash artifact)."""
        path = Path(path)
        if not path.exists():
            return []
        events: List[dict] = []
        lines = path.read_text(encoding="utf-8").splitlines()
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                events.append(json.loads(line))
            except ValueError as exc:
                if i == len(lines) - 1:
                    break  # torn tail: the record being written at the kill
                raise ValueError(
                    f"journal {path} corrupt at line {i + 1} (not the tail): {exc}"
                ) from exc
        return events


def journal_digest(events_or_path: Union[str, Path, Iterable[dict]]) -> str:
    """Order-insensitive sha256 over the deterministic journal fields.

    Two runs of the same seeded workload — even with different worker
    interleavings — produce the same digest iff every job went through
    the same attempts with the same outcomes, retry delays and result
    digests.
    """
    if isinstance(events_or_path, (str, Path)):
        events: Iterable[dict] = Journal.load(events_or_path)
    else:
        events = events_or_path
    normalized = sorted(
        json.dumps({k: e[k] for k in _DIGEST_FIELDS if k in e},
                   sort_keys=True, separators=(",", ":"))
        for e in events
        if e.get("event") not in _DIGEST_SKIP_EVENTS
    )
    h = hashlib.sha256()
    for line in normalized:
        h.update(line.encode())
        h.update(b"\n")
    return h.hexdigest()


def write_json_atomic(path: Union[str, Path], payload: dict) -> Path:
    """Temp-write + fsync + rename a JSON document (checkpoint discipline)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


# -- store ------------------------------------------------------------- #

class JobStore:
    """Journal-backed bounded job index (the supervisor's scheduling state)."""

    def __init__(self, workdir: Union[str, Path], max_pending: int = 256):
        self.workdir = Path(workdir)
        self.max_pending = max_pending
        self.jobs: Dict[str, Job] = {}
        self._seq = 0
        self._recovered_events = 0
        # eager, so clients can poll results/ before the first completion
        self.results_dir.mkdir(parents=True, exist_ok=True)
        recovered = self._recover(self.journal_path)
        self.journal = Journal(self.journal_path)
        for job in recovered:
            # a worker died holding this job when the service itself was
            # killed: back to pending, attempt count preserved.
            self.journal.append({"event": "recovered", "job": job.id,
                                 "attempt": job.attempt, "ts": time.time()})

    @property
    def journal_path(self) -> Path:
        return self.workdir / "journal.jsonl"

    @property
    def results_dir(self) -> Path:
        return self.workdir / "results"

    def _recover(self, path: Path) -> List[Job]:
        """Replay the journal into the in-memory index; returns re-queued jobs."""
        events = Journal.load(path)
        self._recovered_events = len(events)
        for e in events:
            job = self.jobs.get(e.get("job", ""))
            event = e.get("event")
            if event == "submit":
                self._seq += 1
                self.jobs[e["job"]] = Job(
                    id=e["job"], kind=e["kind"], params=e["params"],
                    max_retries=e.get("max_retries", 3),
                    deadline_s=e.get("deadline_s", 60.0), seq=self._seq,
                )
            elif job is None:
                continue  # event for an unknown job: skip, never crash recovery
            elif event == "start":
                job.status = RUNNING
                job.attempt = e.get("attempt", job.attempt + 1)
            elif event == "done":
                job.status = DONE
                job.result = e.get("result")
            elif event == "fail":
                job.status = FAILED
                job.error = e.get("reason")
                job.not_before = 0.0  # the clock died with the service
            elif event == "quarantine":
                job.status = QUARANTINED
                job.error = e.get("reason")
        requeued = []
        for job in self.jobs.values():
            if job.status == RUNNING:
                job.status = PENDING
                requeued.append(job)
            elif job.status == FAILED:
                job.status = PENDING  # retry immediately: backoff clock is gone
        return requeued

    # -- submission ----------------------------------------------------- #

    def live_count(self) -> int:
        return sum(1 for j in self.jobs.values() if not j.terminal)

    def submit(self, kind: str, params: dict, max_retries: int = 3,
               deadline_s: float = 60.0) -> Job:
        """Admit a job (idempotent by content id; raises QueueFull when bounded out)."""
        if kind not in JOB_KINDS:
            raise ValueError(f"unknown job kind {kind!r}; known: {JOB_KINDS}")
        job_id = compute_job_id(kind, params)
        existing = self.jobs.get(job_id)
        if existing is not None:
            return existing
        if self.live_count() >= self.max_pending:
            raise QueueFull(
                f"job store full ({self.live_count()} live jobs >= "
                f"max_pending={self.max_pending}); drain or resize the service"
            )
        self._seq += 1
        job = Job(id=job_id, kind=kind, params=params, max_retries=max_retries,
                  deadline_s=deadline_s, seq=self._seq)
        self.jobs[job_id] = job
        self.journal.append({"event": "submit", "job": job.id, "kind": kind,
                             "params": params, "max_retries": max_retries,
                             "deadline_s": deadline_s, "ts": time.time()})
        return job

    def get(self, job_id: str) -> Job:
        try:
            return self.jobs[job_id]
        except KeyError:
            raise UnknownJob(job_id) from None

    # -- lifecycle transitions (journaled) ------------------------------ #

    def mark_started(self, job: Job, worker: int) -> None:
        job.status = RUNNING
        job.attempt += 1
        self.journal.append({"event": "start", "job": job.id,
                             "attempt": job.attempt, "worker": worker,
                             "ts": time.time()})

    def mark_done(self, job: Job, result: dict) -> None:
        job.status = DONE
        job.result = result
        self.journal.append({"event": "done", "job": job.id,
                             "attempt": job.attempt, "status": "ok",
                             "result_digest": result.get("digest"),
                             "result": result, "ts": time.time()})
        write_json_atomic(self.results_dir / f"{job.id}.json",
                          {"job": job.id, "status": DONE, "result": result})

    def mark_failed(self, job: Job, reason: str, retry_delay_s: float,
                    traceback_text: str = "") -> None:
        job.status = FAILED
        job.error = reason
        job.not_before = time.time() + retry_delay_s
        self.journal.append({"event": "fail", "job": job.id,
                             "attempt": job.attempt, "reason": reason,
                             "retry_delay_s": retry_delay_s,
                             "traceback": traceback_text, "ts": time.time()})

    def mark_quarantined(self, job: Job, reason: str,
                         traceback_text: str = "") -> None:
        job.status = QUARANTINED
        job.error = reason
        self.journal.append({"event": "quarantine", "job": job.id,
                             "attempt": job.attempt, "reason": reason,
                             "traceback": traceback_text, "ts": time.time()})
        write_json_atomic(self.results_dir / f"{job.id}.json",
                          {"job": job.id, "status": QUARANTINED,
                           "reason": reason, "traceback": traceback_text})

    # -- scheduling queries --------------------------------------------- #

    def ready_jobs(self, now: Optional[float] = None) -> List[Job]:
        """Dispatchable jobs in FIFO order (failed ones gated by their backoff)."""
        now = time.time() if now is None else now
        out = [j for j in self.jobs.values()
               if j.status == PENDING
               or (j.status == FAILED and j.not_before <= now)]
        return sorted(out, key=lambda j: j.seq)

    def all_terminal(self) -> bool:
        return all(j.terminal for j in self.jobs.values())

    def counts(self) -> Dict[str, int]:
        out = {s: 0 for s in (PENDING, RUNNING, FAILED, DONE, QUARANTINED)}
        for j in self.jobs.values():
            out[j.status] += 1
        return out

    def digest(self) -> str:
        return journal_digest(self.journal_path)

    def close(self) -> None:
        self.journal.close()
