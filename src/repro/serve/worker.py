"""Worker-side job execution for the wave-sim service.

A worker is one OS process in the supervisor's pool.  It pulls task
messages off its private task queue, executes them, and pushes one
result record per attempt onto the shared result queue.  Robustness
contract with the supervisor:

* **heartbeats** — the worker stamps a shared ``multiprocessing.Value``
  with ``time.time()`` from *inside* the work loop (once per solver
  step / sweep item), never from a side thread: a genuinely hung job
  stops the heartbeat, which is exactly what the supervisor's monitor
  keys on.
* **crash-only** — the worker never tries to out-clever a failure.  A
  job exception is reported (with traceback) and the worker moves on;
  anything worse (SIGKILL, OOM) simply kills the process and the
  supervisor reaps + restarts it.
* **resumable simulation** — simulate jobs checkpoint every
  ``checkpoint_every`` steps through :mod:`repro.faults.checkpoint`
  (``keep_previous`` rotation on) and resume from the newest intact
  snapshot, so a retried job on a *different* worker reproduces the
  uninterrupted run bit-identically.

Chaos injections (see :mod:`repro.serve.chaos`) arrive inside the task
message and execute at deterministic points in the computation.
"""

from __future__ import annotations

import hashlib
import os
import signal
import time
import traceback
from pathlib import Path

import numpy as np

__all__ = ["worker_main", "execute_job", "simulate_result_digest"]

#: queue-poll granularity for an idle worker (also its idle heartbeat rate).
_IDLE_POLL_S = 0.05


def simulate_result_digest(state: np.ndarray, t: float, steps: int) -> str:
    """Bit-exact digest of a finished simulation (the resume invariant)."""
    h = hashlib.sha256()
    h.update(state.tobytes())
    h.update(np.float64(t).tobytes())
    h.update(str(int(steps)).encode())
    return h.hexdigest()[:16]


def _self_kill() -> None:
    os.kill(os.getpid(), signal.SIGKILL)


def _install_checkpoint_killer(target: Path) -> None:
    """Arm a SIGKILL that fires inside the next checkpoint's atomic rename.

    Emulates the real crash window: the temp file is fully written and
    fsynced, the process dies before ``os.replace`` lands the rename.
    Only ever called in a worker that is about to die, so patching the
    process-wide ``os.replace`` is safe — nothing else runs after it.
    """
    real_replace = os.replace

    def killing_replace(src, dst, *args, **kwargs):
        if Path(dst) == target:
            _self_kill()
        return real_replace(src, dst, *args, **kwargs)

    os.replace = killing_replace  # type: ignore[assignment]


# -- job kinds --------------------------------------------------------- #

def _run_simulate(params: dict, job_id: str, workdir: Path, beat,
                  injection) -> dict:
    from repro.dg.solver import SolverConfig, WaveSolver
    from repro.dg.sources import RickerSource
    from repro.faults.checkpoint import CheckpointCorrupt

    cfg = SolverConfig(
        physics=params["physics"],
        refinement_level=int(params.get("level", 1)),
        order=int(params.get("order", 1)),
        flux=params.get("flux", "riemann"),
    )
    solver = WaveSolver(cfg)
    src = params.get("source")
    if src:
        solver.add_source(RickerSource(position=tuple(src["position"]),
                                       peak_frequency=src["peak_frequency"]))
    steps_total = int(params["steps"])
    checkpoint_every = int(params.get("checkpoint_every", 0))
    ckpt_path = workdir / "ckpt" / f"{job_id}.npz"

    resumed_from = 0
    if checkpoint_every:
        try:
            resumed_from = solver.restore_checkpoint(ckpt_path, recover=True)
        except (CheckpointCorrupt, FileNotFoundError, ValueError):
            resumed_from = 0  # cold start: no intact snapshot survived

    n_checkpoints = 0
    while solver.steps_taken < steps_total:
        if (injection is not None and injection.kind == "kill"
                and solver.steps_taken == injection.at_step):
            _self_kill()
        solver.run(1)
        beat()
        if checkpoint_every and solver.steps_taken % checkpoint_every == 0 \
                and solver.steps_taken < steps_total:
            n_checkpoints += 1
            if (injection is not None
                    and injection.kind == "kill_in_checkpoint"
                    and n_checkpoints == injection.at_step):
                _install_checkpoint_killer(ckpt_path)
            solver.save_checkpoint(ckpt_path, keep_previous=True)
    return {
        "digest": simulate_result_digest(solver.state, solver.time,
                                         solver.steps_taken),
        "steps": solver.steps_taken,
        "time": solver.time,
        "energy": solver.energy(),
        "resumed_from_step": resumed_from,
    }


def _run_experiment(params: dict, beat) -> dict:
    from repro.eval.experiments import run_experiment

    beat()
    kwargs = dict(params.get("kwargs") or {})
    table = run_experiment(params["name"], **kwargs)
    beat()
    text = table.render()
    return {
        "digest": hashlib.sha256(text.encode()).hexdigest()[:16],
        "experiment": params["name"],
        "rows": len(getattr(table, "rows", [])),
    }


def _run_sweep(params: dict, job_id: str, workdir: Path, beat,
               injection) -> dict:
    base = dict(params.get("base") or {})
    overrides = params.get("overrides") or [{}]
    items = []
    for i, override in enumerate(overrides):
        item_params = {**base, **override}
        # each sweep point checkpoints under its own derived id
        res = _run_simulate(item_params, f"{job_id}-{i}", workdir, beat,
                            injection if i == 0 else None)
        items.append(res)
        beat()
    h = hashlib.sha256()
    for r in items:
        h.update(r["digest"].encode())
    out = {"digest": h.hexdigest()[:16], "items": items}
    shards = int(params.get("shards") or 0)
    if shards > 1:
        # a sweep may request multi-chip sharding (shards=N): attach the
        # deterministic partition plan for the sweep's mesh level so the
        # result records how the job would shard.  Pure partition
        # arithmetic — the digest chain above is untouched, keeping
        # resumed/uninterrupted bit-identity intact.
        out["sharding"] = _shard_plan(int(base.get("level", 1)), shards)
        beat()
    return out


def _shard_plan(level: int, n_shards: int) -> dict:
    """Partition summary for a sweep requesting ``shards=N``."""
    from repro.dg import HexMesh
    from repro.pim.multichip import partition_mesh

    mesh = HexMesh.from_refinement_level(level)
    n_shards = min(n_shards, mesh.n_elements)
    sharding = partition_mesh(mesh, n_shards)
    return {
        "level": level,
        "n_shards": n_shards,
        "owned": [len(o) for o in sharding.owned],
        "halo": [len(h) for h in sharding.halo],
        "exchange_pairs": len(sharding.exchanges),
    }


def _run_test_flaky(params: dict, attempt: int) -> dict:
    fail_attempts = int(params.get("fail_attempts", 0))
    if attempt <= fail_attempts:
        raise RuntimeError(
            f"_test_flaky: induced failure on attempt {attempt} "
            f"(fails through attempt {fail_attempts})"
        )
    blob = f"flaky:{params.get('value')}".encode()
    return {"digest": hashlib.sha256(blob).hexdigest()[:16]}


def _run_test_sleep(params: dict, beat) -> dict:
    seconds = float(params.get("seconds", 0.0))
    keep_beating = bool(params.get("beat", True))
    deadline = time.time() + seconds
    while time.time() < deadline:
        time.sleep(min(_IDLE_POLL_S, max(0.0, deadline - time.time())))
        if keep_beating:
            beat()
    blob = f"sleep:{seconds}".encode()
    return {"digest": hashlib.sha256(blob).hexdigest()[:16]}


def execute_job(task: dict, workdir: Path, beat) -> dict:
    """Dispatch one task message to its job-kind runner."""
    from repro.serve.chaos import Injection

    injection = (Injection.from_dict(task["injection"])
                 if task.get("injection") else None)
    if injection is not None and injection.kind == "hang":
        # stop heartbeating entirely: the supervisor must detect this
        time.sleep(injection.hold_s)
    elif injection is not None and injection.kind == "slow":
        # keep beating but blow the deadline (simulated slow IO)
        deadline = time.time() + injection.hold_s
        while time.time() < deadline:
            time.sleep(_IDLE_POLL_S)
            beat()

    kind, params = task["kind"], task["params"]
    if kind == "simulate":
        return _run_simulate(params, task["job"], workdir, beat, injection)
    if kind == "experiment":
        return _run_experiment(params, beat)
    if kind == "sweep":
        return _run_sweep(params, task["job"], workdir, beat, injection)
    if kind == "_test_flaky":
        return _run_test_flaky(params, task["attempt"])
    if kind == "_test_sleep":
        return _run_test_sleep(params, beat)
    raise ValueError(f"unknown job kind {kind!r}")


# -- process main ------------------------------------------------------- #

def worker_main(worker_id: int, task_q, result_q, heartbeat, workdir: str,
                log_level=None) -> None:
    """Entry point of one pool process (started by the supervisor)."""
    import queue as stdlib_queue

    from repro.obs import configure_logging, get_logger

    configure_logging(log_level or "warning")
    log = get_logger(__name__)
    workdir_path = Path(workdir)

    def beat() -> None:
        heartbeat.value = time.time()

    beat()
    log.info("worker %d up (pid %d)", worker_id, os.getpid())
    while True:
        try:
            task = task_q.get(timeout=_IDLE_POLL_S)
        except stdlib_queue.Empty:
            beat()
            continue
        if task is None:  # shutdown sentinel
            log.info("worker %d shutting down", worker_id)
            return
        beat()
        t0 = time.perf_counter()
        record = {"job": task["job"], "attempt": task["attempt"],
                  "worker": worker_id}
        try:
            result = execute_job(task, workdir_path, beat)
            record.update(status="ok", result=result)
        except Exception as exc:
            record.update(status="error", reason=f"{type(exc).__name__}: {exc}",
                          traceback=traceback.format_exc())
        record["elapsed_s"] = time.perf_counter() - t0
        beat()
        result_q.put(record)
