"""Crash-safe wave-sim-as-a-service: a supervised multiprocessing job layer.

The package turns the single-run reproduction into a long-lived service
that accepts simulation / experiment / sweep requests and survives
arbitrary worker failure:

* :mod:`repro.serve.queue` — bounded job store over an append-only,
  fsynced JSONL journal: idempotent content-keyed submission, torn-tail
  tolerant recovery, deterministic seeded retry backoff, explicit
  :class:`~repro.serve.queue.QueueFull` backpressure.
* :mod:`repro.serve.worker` — the pool process: heartbeats from inside
  the work loop, checkpointed simulations that resume bit-identically
  on any worker, crash-only error reporting.
* :mod:`repro.serve.supervisor` — heartbeat-monitored pool: wall-clock
  deadlines and hang detection enforced by SIGKILL, dead workers reaped
  and restarted, failures retried with backoff or quarantined past
  ``max_retries``, ``serve.*`` metrics through :mod:`repro.obs`.
* :mod:`repro.serve.client` — file-based submission/await API behind
  ``repro submit`` (atomic request drops, published terminal results).
* :mod:`repro.serve.chaos` — seeded deterministic failure injection
  (worker SIGKILLs, mid-checkpoint kills, hangs, slow IO) and the
  acceptance harness proving zero lost / zero duplicated jobs and
  bit-identical resumed results.

See DESIGN.md §16 for the failure-mode table.
"""

from repro.serve.chaos import ChaosSchedule, Injection, run_chaos_check
from repro.serve.client import status, submit, wait
from repro.serve.queue import (
    Job,
    JobStore,
    Journal,
    QueueFull,
    UnknownJob,
    backoff_delay,
    compute_job_id,
    journal_digest,
)
from repro.serve.supervisor import ServiceConfig, Supervisor

__all__ = [
    "ChaosSchedule",
    "Injection",
    "Job",
    "JobStore",
    "Journal",
    "QueueFull",
    "ServiceConfig",
    "Supervisor",
    "UnknownJob",
    "backoff_delay",
    "compute_job_id",
    "journal_digest",
    "run_chaos_check",
    "status",
    "submit",
    "wait",
]
