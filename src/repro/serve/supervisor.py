"""Heartbeat-monitored worker pool for the wave-sim service.

The supervisor owns the :class:`~repro.serve.queue.JobStore` and a pool
of worker processes.  Each scheduling step it

1. drains the shared result queue (marking jobs done / failed),
2. enforces per-job wall-clock **deadlines** and the **heartbeat**
   timeout — both by SIGKILL, never by asking nicely (a hung worker
   cannot cooperate),
3. reaps dead workers (crashed, killed, or chaos-injected), charges the
   failure to the job they held, and **restarts** the pool slot,
4. schedules **retries** with the store's seeded exponential backoff, or
   quarantines jobs that exhausted ``max_retries``,
5. ingests client submissions from the workdir inbox (backpressure:
   a full store leaves the request file in place for a later pass),
6. dispatches ready jobs to idle workers.

Dispatch is per-worker (each worker has a private task queue), so the
supervisor always knows which job died with which process — a shared
task queue would make crash attribution ambiguous.

Everything observable flows through ``repro.obs``: ``serve.*`` counters
(submitted, done, retries, quarantined, worker_restarts, deadline/hang
kills), queue-depth and job-latency histograms, and a ``serve/run`` span
around the drain loop.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path
from queue import Empty
from typing import Dict, List, Optional

from repro.obs import get_logger, get_metrics, get_tracer
from repro.serve.queue import (
    DONE,
    FAILED,
    JobStore,
    QUARANTINED,
    QueueFull,
    RUNNING,
    backoff_delay,
    write_json_atomic,
)

__all__ = ["ServiceConfig", "Supervisor", "WorkerHandle"]

log = get_logger(__name__)


@dataclass
class ServiceConfig:
    """Tunables of one service instance (all robustness knobs in one place)."""

    workdir: Path
    workers: int = 2
    max_pending: int = 256
    #: default per-job wall-clock deadline (jobs may carry their own).
    deadline_s: float = 60.0
    #: a worker whose heartbeat is older than this is considered hung.
    heartbeat_timeout_s: float = 5.0
    max_retries: int = 3
    #: seed for the deterministic retry-backoff jitter.
    seed: int = 0
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    poll_s: float = 0.02
    log_level: Optional[str] = None

    def __post_init__(self) -> None:
        self.workdir = Path(self.workdir)


@dataclass
class WorkerHandle:
    """Supervisor-side view of one pool slot."""

    id: int
    process: multiprocessing.process.BaseProcess
    task_q: object
    heartbeat: object
    #: (job_id, attempt, started_at) of the dispatched task, if any.
    current: Optional[tuple] = None
    started_at: float = 0.0
    deadline_s: float = 0.0
    killed: bool = False

    @property
    def busy(self) -> bool:
        return self.current is not None

    def heartbeat_age(self, now: float) -> float:
        return now - float(self.heartbeat.value)


class Supervisor:
    """Owns the store and the pool; drives jobs to a terminal state."""

    def __init__(self, config: ServiceConfig, chaos=None):
        self.config = config
        self.chaos = chaos
        self.store = JobStore(config.workdir, max_pending=config.max_pending)
        # fork keeps worker startup cheap and inherits the warm import
        # state; spawn is the portable fallback.
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")
        self.result_q = self._ctx.Queue()
        self.workers: Dict[int, WorkerHandle] = {}
        self._next_worker_id = 0
        self._running = False
        self.store.journal.append({"event": "service_start", "pid": os.getpid(),
                                   "workers": config.workers, "ts": time.time()})

    # -- pool management ------------------------------------------------ #

    def _spawn_worker(self) -> WorkerHandle:
        from repro.serve.worker import worker_main

        wid = self._next_worker_id
        self._next_worker_id += 1
        task_q = self._ctx.Queue()
        heartbeat = self._ctx.Value("d", time.time())
        proc = self._ctx.Process(
            target=worker_main,
            args=(wid, task_q, self.result_q, heartbeat,
                  str(self.config.workdir), self.config.log_level),
            daemon=True,
            name=f"repro-serve-worker-{wid}",
        )
        proc.start()
        handle = WorkerHandle(id=wid, process=proc, task_q=task_q,
                              heartbeat=heartbeat)
        self.workers[wid] = handle
        log.info("worker %d spawned (pid %s)", wid, proc.pid)
        return handle

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        while len(self.workers) < self.config.workers:
            self._spawn_worker()

    def _kill_worker(self, handle: WorkerHandle, why: str) -> None:
        """SIGKILL a pool slot (deadline/hang enforcement — no cooperation)."""
        log.warning("killing worker %d (pid %s): %s",
                    handle.id, handle.process.pid, why)
        handle.killed = True
        try:
            if handle.process.pid is not None:
                os.kill(handle.process.pid, signal.SIGKILL)
        except (ProcessLookupError, OSError) as exc:
            log.warning("worker %d kill racing its exit: %s", handle.id, exc)

    # -- scheduling step ------------------------------------------------ #

    def _drain_results(self) -> None:
        while True:
            try:
                record = self.result_q.get_nowait()
            except Empty:
                return
            job_id = record["job"]
            job = self.store.jobs.get(job_id)
            if job is None:
                log.warning("result for unknown job %s dropped", job_id)
                continue
            # clear the slot that ran it
            for handle in self.workers.values():
                if handle.current and handle.current[0] == job_id \
                        and handle.current[1] == record["attempt"]:
                    handle.current = None
                    break
            if record["status"] == "ok":
                # accept an ok result while RUNNING, and also while FAILED
                # or QUARANTINED *for the same attempt* (the reaper charged
                # a kill that raced this record's delivery): rescuing it
                # cancels the redundant retry — or supersedes a quarantine
                # whose final charged attempt actually completed — and
                # keeps results single-computed.
                if job.status == RUNNING or (
                        job.status in (FAILED, QUARANTINED)
                        and job.attempt == record["attempt"]):
                    if job.status == QUARANTINED:
                        log.warning(
                            "job %s: ok result for attempt %d arrived after "
                            "quarantine; superseding quarantine with done",
                            job.id, record["attempt"])
                        get_metrics().inc("serve.quarantine_rescues")
                    self.store.mark_done(job, record["result"])
                    get_metrics().inc("serve.done")
                    get_metrics().observe("serve.job_latency_s",
                                          record.get("elapsed_s", 0.0))
            elif job.status == RUNNING:
                # an error record for an already-FAILED attempt is the
                # reaper's duplicate: charge each attempt exactly once.
                self._handle_failure(job, record.get("reason", "worker error"),
                                     record.get("traceback", ""))

    def _handle_failure(self, job, reason: str, traceback_text: str) -> None:
        """Retry with seeded backoff, or quarantine past max_retries."""
        if job.attempt > job.max_retries:
            self.store.mark_quarantined(job, reason, traceback_text)
            get_metrics().inc("serve.quarantined")
            log.error("job %s quarantined after %d attempts: %s",
                      job.id, job.attempt, reason)
            return
        delay = backoff_delay(self.config.seed, job.id, job.attempt,
                              base=self.config.backoff_base_s,
                              cap=self.config.backoff_cap_s)
        self.store.mark_failed(job, reason, delay, traceback_text)
        get_metrics().inc("serve.retries")
        log.warning("job %s attempt %d failed (%s); retry in %.3fs",
                    job.id, job.attempt, reason, delay)

    def _enforce_timeouts(self, now: float) -> None:
        for handle in self.workers.values():
            if handle.killed or not handle.process.is_alive():
                continue
            if handle.busy and now - handle.started_at > handle.deadline_s:
                self._kill_worker(
                    handle, f"deadline exceeded ({handle.deadline_s:.1f}s)")
                get_metrics().inc("serve.deadline_kills")
            elif handle.heartbeat_age(now) > self.config.heartbeat_timeout_s:
                state = "busy" if handle.busy else "idle"
                self._kill_worker(
                    handle,
                    f"heartbeat stale {handle.heartbeat_age(now):.1f}s ({state})")
                get_metrics().inc("serve.hang_kills")

    def _reap_and_restart(self) -> None:
        dead = [h for h in self.workers.values() if not h.process.is_alive()]
        for handle in dead:
            handle.process.join(timeout=0.1)
            if handle.current is not None:
                job_id, attempt, _ = handle.current
                job = self.store.jobs.get(job_id)
                if job is not None and job.status == RUNNING \
                        and job.attempt == attempt:
                    reason = ("killed by supervisor (deadline/heartbeat)"
                              if handle.killed else "worker died (SIGKILL/crash)")
                    self._handle_failure(job, reason, "")
            del self.workers[handle.id]
            if self._running:
                self._spawn_worker()
                get_metrics().inc("serve.worker_restarts")

    def _ingest_inbox(self) -> None:
        """Admit client-submitted request files (see repro.serve.client)."""
        inbox = self.config.workdir / "inbox"
        if not inbox.is_dir():
            return
        for path in sorted(inbox.glob("*.json")):
            try:
                request = json.loads(path.read_text())
            except ValueError:
                continue  # partially visible write: picked up next pass
            try:
                self.store.submit(
                    request["kind"], request["params"],
                    max_retries=request.get("max_retries",
                                            self.config.max_retries),
                    deadline_s=request.get("deadline_s",
                                           self.config.deadline_s),
                )
            except QueueFull:
                # backpressure: leave the file; the client sees a growing
                # inbox and the next drain pass retries admission.
                get_metrics().inc("serve.backpressure_deferrals")
                return
            except (ValueError, KeyError, TypeError) as exc:
                # ValueError: unknown job kind; KeyError/TypeError: valid
                # JSON that is not a {"kind", "params"} request (missing
                # keys, non-dict payload).  All are rejected and unlinked —
                # a malformed drop must never become a permanent poison
                # pill that crashes every ingest pass.
                reason = str(exc) if isinstance(exc, ValueError) \
                    else f"malformed request ({type(exc).__name__}: {exc})"
                log.error("rejecting inbox request %s: %s", path.name, reason)
                write_json_atomic(
                    self.store.results_dir / f"{path.stem}.json",
                    {"job": path.stem, "status": "rejected", "reason": reason})
                get_metrics().inc("serve.rejected")
                path.unlink(missing_ok=True)
                continue
            get_metrics().inc("serve.submitted")
            path.unlink(missing_ok=True)

    def _assign_jobs(self, now: float) -> None:
        idle = [h for h in self.workers.values()
                if not h.busy and not h.killed and h.process.is_alive()]
        if not idle:
            return
        ready = self.store.ready_jobs(now)
        get_metrics().observe("serve.queue_depth", len(ready))
        for handle, job in zip(idle, ready):
            injection = None
            if self.chaos is not None:
                inj = self.chaos.injection_for(job.id, job.attempt + 1)
                injection = inj.as_dict() if inj is not None else None
            self.store.mark_started(job, handle.id)
            handle.current = (job.id, job.attempt, now)
            handle.started_at = now
            handle.deadline_s = job.deadline_s
            handle.task_q.put({
                "job": job.id, "attempt": job.attempt, "kind": job.kind,
                "params": job.params, "injection": injection,
                "deadline_s": job.deadline_s,
            })

    def step(self) -> None:
        """One scheduling iteration (drain -> enforce -> reap -> admit -> dispatch)."""
        now = time.time()
        self._drain_results()
        self._enforce_timeouts(now)
        self._reap_and_restart()
        self._ingest_inbox()
        self._assign_jobs(now)

    # -- main loop ------------------------------------------------------ #

    def run(self, until_idle: bool = True,
            max_wall_s: Optional[float] = None) -> None:
        """Drive the pool; returns when the store is drained (``until_idle``)
        or ``max_wall_s`` elapses (service mode keeps polling the inbox)."""
        self.start()
        t0 = time.time()
        with get_tracer().span("serve/run", workers=self.config.workers):
            while True:
                self.step()
                busy = any(h.busy for h in self.workers.values())
                inbox = self.config.workdir / "inbox"
                inbox_empty = not inbox.is_dir() \
                    or not any(inbox.glob("*.json"))
                if until_idle and not busy and inbox_empty \
                        and self.store.all_terminal():
                    break
                if max_wall_s is not None and time.time() - t0 > max_wall_s:
                    if until_idle and not self.store.all_terminal():
                        log.error("serve run hit max_wall_s=%.1fs with %s",
                                  max_wall_s, self.store.counts())
                    break
                time.sleep(self.config.poll_s)
        self.export_metrics()

    def shutdown(self) -> None:
        """Stop the pool: polite sentinel, then SIGKILL stragglers."""
        self._running = False
        for handle in self.workers.values():
            try:
                handle.task_q.put_nowait(None)
            except (OSError, ValueError) as exc:
                log.warning("worker %d sentinel failed: %s", handle.id, exc)
        deadline = time.time() + 1.0
        for handle in self.workers.values():
            handle.process.join(timeout=max(0.0, deadline - time.time()))
            if handle.process.is_alive():
                self._kill_worker(handle, "shutdown straggler")
                handle.process.join(timeout=1.0)
        self.workers.clear()
        self.store.close()

    # -- observability --------------------------------------------------- #

    def metrics_snapshot(self) -> dict:
        return get_metrics().snapshot()

    def export_metrics(self) -> Path:
        """Atomically publish the service metrics (CI uploads this)."""
        payload = {
            "kind": "repro-serve-metrics",
            "schema": 1,
            "counts": self.store.counts(),
            "metrics": self.metrics_snapshot(),
        }
        return write_json_atomic(self.config.workdir / "metrics.json", payload)
