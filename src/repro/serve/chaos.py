"""Deterministic chaos harness for the job service.

Chaos here is *scheduled*, not random-at-runtime: a seeded
:class:`ChaosSchedule` maps ``(job_id, attempt)`` pairs to injections,
and the injection executes inside the worker at an exact point in the
job (a solver step index, the N-th checkpoint rename, ...).  Because the
trigger is a position in the deterministic computation rather than a
wall-clock timer, two runs with the same seed inject byte-identical
failures — which is what lets the acceptance check compare journal
digests across runs.

Injection kinds
---------------
``kill``                 SIGKILL the worker process after ``at_step``
                         completed solver steps (between checkpoints).
``kill_in_checkpoint``   SIGKILL mid-checkpoint: the temp file is
                         written and fsynced but the process dies before
                         the atomic rename — the crash window the
                         checkpoint durability discipline must survive.
``hang``                 stop heartbeating and sleep; the supervisor's
                         heartbeat monitor must detect and SIGKILL it.
``slow``                 sleep ``hold_s`` inside the job (simulated slow
                         IO); with ``hold_s`` beyond the job deadline the
                         supervisor's deadline enforcement fires.

All injections target attempt 1 only (by construction in :meth:`plan`),
so every victim's retry runs clean and the workload always converges.

:func:`run_chaos_check` is the acceptance harness behind the
``repro serve chaos`` CLI and the ``serve-chaos`` CI job: it runs the
same seeded workload once uninterrupted and once under chaos, then
verifies the service invariants (all jobs terminal, zero lost / zero
duplicated, bit-identical resumed results, journal-resume without
re-running completed jobs).
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

__all__ = ["Injection", "ChaosSchedule", "build_workload", "run_chaos_check"]


@dataclass(frozen=True)
class Injection:
    kind: str  # "kill" | "kill_in_checkpoint" | "hang" | "slow"
    #: for "kill": SIGKILL after this many completed solver steps.
    #: for "kill_in_checkpoint": die inside the N-th checkpoint write.
    at_step: int = 0
    #: for "hang"/"slow": how long to stall.
    hold_s: float = 3600.0

    def as_dict(self) -> dict:
        return asdict(self)

    @staticmethod
    def from_dict(d: dict) -> "Injection":
        return Injection(kind=d["kind"], at_step=d.get("at_step", 0),
                         hold_s=d.get("hold_s", 3600.0))


class ChaosSchedule:
    """Seeded map of ``(job_id, attempt)`` to the injection to perform."""

    def __init__(self, seed: int, plan: Dict[Tuple[str, int], Injection]):
        self.seed = seed
        self.plan = dict(plan)

    def injection_for(self, job_id: str, attempt: int) -> Optional[Injection]:
        return self.plan.get((job_id, attempt))

    @property
    def n_kills(self) -> int:
        return sum(1 for inj in self.plan.values()
                   if inj.kind in ("kill", "kill_in_checkpoint"))

    @classmethod
    def plan_kills(cls, seed: int, job_ids: List[str], kills: int = 5,
                   mid_checkpoint: int = 1, hangs: int = 0, slow: int = 0,
                   steps: int = 10, checkpoint_every: int = 4,
                   hold_s: float = 3600.0) -> "ChaosSchedule":
        """Deterministically pick victims and injection points.

        ``kills`` includes ``mid_checkpoint`` of the kind that dies inside
        the checkpoint rename; the rest die between checkpoints.  All
        injections land on attempt 1, so retries always run clean.
        """
        total = kills + hangs + slow
        if total > len(job_ids):
            raise ValueError(
                f"{total} injections over {len(job_ids)} jobs: "
                "at most one injection per job (attempt 1)"
            )
        if mid_checkpoint > kills:
            raise ValueError("mid_checkpoint kills cannot exceed total kills")
        # checkpoints land at multiples of checkpoint_every strictly below
        # the final step — an injection point past that count never fires.
        n_checkpoints = (steps - 1) // checkpoint_every if checkpoint_every else 0
        if mid_checkpoint > 0 and n_checkpoints < 1:
            raise ValueError(
                f"mid-checkpoint kills need at least one checkpoint "
                f"(steps={steps}, checkpoint_every={checkpoint_every})"
            )
        rng = random.Random(f"chaos:{seed}")
        victims = rng.sample(sorted(job_ids), total)
        plan: Dict[Tuple[str, int], Injection] = {}
        between = [s for s in range(1, steps) if s % checkpoint_every != 0]
        for i, job_id in enumerate(victims):
            if i < mid_checkpoint:
                # die inside the N-th checkpoint write of the run
                nth = rng.randrange(1, n_checkpoints + 1)
                plan[(job_id, 1)] = Injection("kill_in_checkpoint", at_step=nth)
            elif i < kills:
                at = rng.choice(between) if between else 1
                plan[(job_id, 1)] = Injection("kill", at_step=at)
            elif i < kills + hangs:
                plan[(job_id, 1)] = Injection("hang", hold_s=hold_s)
            else:
                plan[(job_id, 1)] = Injection("slow", hold_s=hold_s)
        return cls(seed, plan)

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "plan": [{"job": j, "attempt": a, **inj.as_dict()}
                     for (j, a), inj in sorted(self.plan.items())],
        }


# -- acceptance harness ------------------------------------------------- #

def build_workload(benchmarks: List[str], n_jobs: int = 20, steps: int = 10,
                   level: int = 1, order: int = 1,
                   checkpoint_every: int = 4) -> List[dict]:
    """A deterministic n-job simulate workload over the named benchmarks.

    Jobs vary physics/flux (from the benchmark specs) and the source
    placement/frequency (by job index), so every job id — and every
    result digest — is distinct and reproducible.
    """
    from repro.workloads.benchmarks import BENCHMARKS

    specs = [BENCHMARKS[k] for k in benchmarks]
    jobs = []
    for i in range(n_jobs):
        spec = specs[i % len(specs)]
        jobs.append({
            "kind": "simulate",
            "params": {
                "physics": spec.physics,
                "flux": spec.flux_kind,
                "level": level,
                "order": order,
                "steps": steps,
                "checkpoint_every": checkpoint_every,
                "source": {
                    "position": [0.25 + 0.5 * ((i // 4) % 2) / 1.0,
                                 0.25 + 0.125 * (i % 4),
                                 0.75],
                    "peak_frequency": 4.0 + 0.5 * i,
                },
            },
        })
    return jobs


def _run_workload(workdir: Path, jobs: List[dict], workers: int, seed: int,
                  chaos: Optional[ChaosSchedule], max_wall_s: float,
                  deadline_s: float = 120.0, max_retries: int = 3) -> dict:
    """Submit ``jobs`` into a fresh service at ``workdir`` and drain it.

    Runs against a *private* metrics registry swapped in for the duration
    of the run: baseline and chaos execute in the same process, and the
    invariant checks (e.g. ``worker_restarts >= kills``) must see this
    run's counters only — never the other run's, never the process's
    prior history.
    """
    from repro.obs import MetricsRegistry, set_metrics
    from repro.serve.supervisor import ServiceConfig, Supervisor

    registry = MetricsRegistry()
    previous = set_metrics(registry)
    try:
        config = ServiceConfig(workdir=workdir, workers=workers, seed=seed,
                               max_pending=max(len(jobs) + 8, 32))
        sup = Supervisor(config, chaos=chaos)
        try:
            for j in jobs:
                sup.store.submit(j["kind"], j["params"],
                                 max_retries=max_retries,
                                 deadline_s=deadline_s)
            sup.run(until_idle=True, max_wall_s=max_wall_s)
            counts = sup.store.counts()
            results = {jid: job.result for jid, job in sup.store.jobs.items()}
            attempts = {jid: job.attempt for jid, job in sup.store.jobs.items()}
            digest = sup.store.digest()
        finally:
            sup.shutdown()
    finally:
        set_metrics(previous)
    return {"counts": counts, "results": results, "attempts": attempts,
            "journal_digest": digest, "metrics": registry.snapshot()}


def run_chaos_check(benchmarks: List[str], n_jobs: int = 20, kills: int = 5,
                    mid_checkpoint: int = 1, hangs: int = 0, seed: int = 11,
                    steps: int = 10, level: int = 1, order: int = 1,
                    checkpoint_every: int = 4, workers: int = 4,
                    workdir=None, max_wall_s: float = 600.0) -> dict:
    """Baseline vs chaos run of one seeded workload; verifies the invariants.

    Returns a report dict whose ``violations`` list is empty iff:

    * every job reached a terminal ``done`` state in both runs,
    * no result was lost and none computed twice (exactly one ``done``
      journal event per job),
    * every chaos-run result digest is bit-identical to the baseline
      (checkpoint-resumed jobs included),
    * ≥ ``kills`` worker SIGKILLs actually happened (worker restarts),
    * restarting the service on the chaos journal re-runs nothing.
    """
    import tempfile

    from repro.serve.queue import DONE, Journal, compute_job_id
    from repro.serve.supervisor import ServiceConfig, Supervisor

    workdir = Path(tempfile.mkdtemp(prefix="repro-chaos-")) if workdir is None \
        else Path(workdir)
    jobs = build_workload(benchmarks, n_jobs=n_jobs, steps=steps, level=level,
                          order=order, checkpoint_every=checkpoint_every)
    job_ids = [compute_job_id(j["kind"], j["params"]) for j in jobs]
    schedule = ChaosSchedule.plan_kills(
        seed, job_ids, kills=kills, mid_checkpoint=mid_checkpoint, hangs=hangs,
        steps=steps, checkpoint_every=checkpoint_every,
        hold_s=30.0,  # hangs: long enough to trip the heartbeat monitor
    )

    baseline = _run_workload(workdir / "baseline", jobs, workers, seed,
                             chaos=None, max_wall_s=max_wall_s)
    chaotic = _run_workload(workdir / "chaos", jobs, workers, seed,
                            chaos=schedule, max_wall_s=max_wall_s)

    violations: List[str] = []
    for name, run in (("baseline", baseline), ("chaos", chaotic)):
        not_done = {k: v for k, v in run["counts"].items() if k != DONE and v}
        if not_done:
            violations.append(f"{name}: jobs not done: {not_done}")

    # zero lost / zero duplicated: exactly one 'done' per job in the journal
    events = Journal.load(workdir / "chaos" / "journal.jsonl")
    done_by_job: Dict[str, int] = {}
    for e in events:
        if e.get("event") == "done":
            done_by_job[e["job"]] = done_by_job.get(e["job"], 0) + 1
    lost = [j for j in job_ids if done_by_job.get(j, 0) == 0]
    duplicated = [j for j, n in done_by_job.items() if n > 1]
    if lost:
        violations.append(f"chaos: {len(lost)} job(s) lost (no done event)")
    if duplicated:
        violations.append(f"chaos: {len(duplicated)} job(s) computed twice")

    # bit-identical results, interrupted (resumed) or not
    mismatches = [
        jid for jid in job_ids
        if (baseline["results"].get(jid) or {}).get("digest")
        != (chaotic["results"].get(jid) or {}).get("digest")
    ]
    if mismatches:
        violations.append(
            f"chaos: {len(mismatches)} result digest(s) differ from baseline"
        )

    killed = [jid for (jid, _a), inj in schedule.plan.items()
              if inj.kind in ("kill", "kill_in_checkpoint")]
    restarts = int(chaotic["metrics"].get("counters", {})
                   .get("serve.worker_restarts", 0))
    if restarts < len(killed):
        violations.append(
            f"chaos: only {restarts} worker restart(s) observed for "
            f"{len(killed)} scheduled kills"
        )
    not_retried = [jid for jid in killed if chaotic["attempts"].get(jid, 0) < 2]
    if not_retried:
        violations.append(
            f"chaos: {len(not_retried)} killed job(s) never retried"
        )

    # service restart against the existing journal: nothing re-runs.
    # Same registry isolation as _run_workload; afterwards republish the
    # chaos run's metrics.json, which the restart's export overwrote
    # (CI uploads that file as the chaos-run artifact).
    from repro.obs import MetricsRegistry, set_metrics
    from repro.serve.queue import write_json_atomic

    previous = set_metrics(MetricsRegistry())
    try:
        config = ServiceConfig(workdir=workdir / "chaos", workers=1, seed=seed,
                               max_pending=max(len(jobs) + 8, 32))
        sup = Supervisor(config, chaos=None)
        try:
            before = len(Journal.load(sup.store.journal_path))
            sup.run(until_idle=True, max_wall_s=30.0)
            after_events = Journal.load(sup.store.journal_path)
        finally:
            sup.shutdown()
    finally:
        set_metrics(previous)
    write_json_atomic(workdir / "chaos" / "metrics.json", {
        "kind": "repro-serve-metrics",
        "schema": 1,
        "counts": chaotic["counts"],
        "metrics": chaotic["metrics"],
    })
    new = [e for e in after_events[before:]
           if e.get("event") in ("start", "done", "fail", "quarantine")]
    if new:
        violations.append(
            f"restart: {len(new)} lifecycle event(s) after resume — completed "
            "jobs must not re-run"
        )

    return {
        "kind": "repro-serve-chaos",
        "schema": 1,
        "benchmarks": benchmarks,
        "n_jobs": n_jobs,
        "seed": seed,
        "schedule": schedule.as_dict(),
        "baseline": {"counts": baseline["counts"],
                     "journal_digest": baseline["journal_digest"]},
        "chaos": {"counts": chaotic["counts"],
                  "journal_digest": chaotic["journal_digest"],
                  "worker_restarts": restarts,
                  "attempts": chaotic["attempts"]},
        "violations": violations,
        "workdir": str(workdir),
    }
