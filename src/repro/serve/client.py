"""Thin client for the wave-sim service (file-based, no sockets).

The service's public surface is its *workdir*:

``inbox/<job_id>.json``    submission requests (clients write these
                           atomically; the supervisor ingests and
                           unlinks them)
``results/<job_id>.json``  terminal outcomes (done / quarantined /
                           rejected), written atomically by the service
``journal.jsonl``          the authoritative job lifecycle log
``metrics.json``           the service's ``serve.*`` metrics export

A file drop is deliberately the whole protocol: it inherits the
journal's crash-safety (atomic rename, idempotent content-keyed names —
double-submitting a request is a no-op), works across containers that
share a volume, and keeps the client dependency-free.  ``repro submit``
wraps :func:`submit` / :func:`wait`; ``repro serve status`` wraps
:func:`status`.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Optional, Union

from repro.serve.queue import (
    Journal,
    TERMINAL_STATES,
    compute_job_id,
    journal_digest,
    write_json_atomic,
)

__all__ = ["submit", "wait", "result_path", "status"]


def submit(workdir: Union[str, Path], kind: str, params: dict,
           max_retries: Optional[int] = None,
           deadline_s: Optional[float] = None) -> str:
    """Drop a job request into the service inbox; returns the job id.

    Idempotent: the request file is named by the content-keyed job id,
    so resubmission overwrites the same pending file (or is deduplicated
    by the store if the job was already admitted).
    """
    job_id = compute_job_id(kind, params)
    request: dict = {"kind": kind, "params": params}
    if max_retries is not None:
        request["max_retries"] = max_retries
    if deadline_s is not None:
        request["deadline_s"] = deadline_s
    write_json_atomic(Path(workdir) / "inbox" / f"{job_id}.json", request)
    return job_id


def result_path(workdir: Union[str, Path], job_id: str) -> Path:
    return Path(workdir) / "results" / f"{job_id}.json"


def wait(workdir: Union[str, Path], job_id: str, timeout_s: float = 60.0,
         poll_s: float = 0.05) -> dict:
    """Block until the service publishes a terminal outcome for ``job_id``.

    Returns the result document; raises ``TimeoutError`` if none appears
    within ``timeout_s``.
    """
    path = result_path(workdir, job_id)
    deadline = time.time() + timeout_s
    while time.time() < deadline:
        if path.exists():
            try:
                return json.loads(path.read_text())
            except ValueError:
                pass  # racing the atomic rename; next poll sees it whole
        time.sleep(poll_s)
    raise TimeoutError(
        f"job {job_id}: no terminal result in {path} after {timeout_s:.1f}s "
        "(is `repro serve run` active on this workdir?)"
    )


def status(workdir: Union[str, Path]) -> dict:
    """Summarize a service workdir from its journal (service need not run)."""
    workdir = Path(workdir)
    events = Journal.load(workdir / "journal.jsonl")
    jobs: dict = {}
    attempts: dict = {}
    for e in events:
        job_id = e.get("job")
        event = e.get("event")
        if event == "submit":
            jobs[job_id] = "pending"
        elif event == "start":
            jobs[job_id] = "running"
            attempts[job_id] = e.get("attempt", 0)
        elif event == "done":
            jobs[job_id] = "done"
        elif event == "fail":
            jobs[job_id] = "failed"
        elif event == "quarantine":
            jobs[job_id] = "quarantined"
    counts: dict = {}
    for state in jobs.values():
        counts[state] = counts.get(state, 0) + 1
    inbox = sorted(p.stem for p in (workdir / "inbox").glob("*.json")) \
        if (workdir / "inbox").is_dir() else []
    return {
        "workdir": str(workdir),
        "events": len(events),
        "jobs": len(jobs),
        "counts": counts,
        "terminal": sum(1 for s in jobs.values() if s in TERMINAL_STATES),
        "retries_total": sum(max(0, a - 1) for a in attempts.values()),
        "inbox_pending": inbox,
        "journal_digest": journal_digest(events),
    }
